// Package geo provides the small amount of planar computational geometry
// the NObLe reproduction needs: points, rectangles, polygons with
// containment tests, closest-point projection onto segments/polygons (the
// Deep Regression Projection baseline projects off-map predictions to the
// nearest position on the map), and polylines for IMU walking paths.
//
// Coordinates are planar meters (longitude/latitude in the paper's datasets
// are already projected); Y grows north, X grows east.
package geo

import (
	"fmt"
	"math"
)

// Point is a position in the plane, in meters.
type Point struct {
	X, Y float64
}

// Add returns p + q component-wise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q component-wise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q — the paper's
// position-error metric.
func Dist(p, q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance (avoids the square root in
// comparisons).
func Dist2(p, q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Lerp linearly interpolates from p to q; t=0 gives p, t=1 gives q.
func Lerp(p, q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Rect is an axis-aligned rectangle spanning [Min.X, Max.X] × [Min.Y, Max.Y].
type Rect struct {
	Min, Max Point
}

// NewRect builds a rectangle from any two opposite corners.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Center returns the rectangle's midpoint.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Width returns the X extent.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the Y extent.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Expand returns r grown by d on every side.
func (r Rect) Expand(d float64) Rect {
	return Rect{Point{r.Min.X - d, r.Min.Y - d}, Point{r.Max.X + d, r.Max.Y + d}}
}

// Corners returns the rectangle's four corners counter-clockwise starting
// at Min.
func (r Rect) Corners() []Point {
	return []Point{
		r.Min,
		{r.Max.X, r.Min.Y},
		r.Max,
		{r.Min.X, r.Max.Y},
	}
}

// Polygon converts the rectangle to a Polygon.
func (r Rect) Polygon() Polygon { return Polygon(r.Corners()) }

// ClosestPoint returns the point in r (interior included) nearest to p.
func (r Rect) ClosestPoint(p Point) Point {
	return Point{clamp(p.X, r.Min.X, r.Max.X), clamp(p.Y, r.Min.Y, r.Max.Y)}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClosestOnSegment returns the point on segment [a, b] nearest to p.
func ClosestOnSegment(p, a, b Point) Point {
	ab := b.Sub(a)
	denom := ab.Dot(ab)
	if denom == 0 {
		return a
	}
	t := clamp(p.Sub(a).Dot(ab)/denom, 0, 1)
	return a.Add(ab.Scale(t))
}

// Polygon is a simple polygon given by its vertices in order (either
// winding); the edge list closes implicitly from the last vertex back to
// the first.
type Polygon []Point

// Contains reports whether p lies strictly inside or on the boundary of the
// polygon, via the even-odd ray casting rule with an explicit boundary
// check for robustness at edges.
func (poly Polygon) Contains(p Point) bool {
	n := len(poly)
	if n < 3 {
		return false
	}
	// Boundary counts as inside.
	for i := 0; i < n; i++ {
		a, b := poly[i], poly[(i+1)%n]
		if Dist(ClosestOnSegment(p, a, b), p) < 1e-9 {
			return true
		}
	}
	inside := false
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		a, b := poly[i], poly[j]
		if (a.Y > p.Y) != (b.Y > p.Y) {
			xCross := (b.X-a.X)*(p.Y-a.Y)/(b.Y-a.Y) + a.X
			if p.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// ClosestBoundaryPoint returns the point on the polygon's boundary nearest
// to p.
func (poly Polygon) ClosestBoundaryPoint(p Point) Point {
	if len(poly) == 0 {
		panic("geo: ClosestBoundaryPoint on empty polygon")
	}
	best := poly[0]
	bestD := math.Inf(1)
	n := len(poly)
	for i := 0; i < n; i++ {
		c := ClosestOnSegment(p, poly[i], poly[(i+1)%n])
		if d := Dist2(c, p); d < bestD {
			bestD, best = d, c
		}
	}
	return best
}

// Bounds returns the polygon's axis-aligned bounding box.
func (poly Polygon) Bounds() Rect {
	if len(poly) == 0 {
		return Rect{}
	}
	r := Rect{poly[0], poly[0]}
	for _, p := range poly[1:] {
		r.Min.X = math.Min(r.Min.X, p.X)
		r.Min.Y = math.Min(r.Min.Y, p.Y)
		r.Max.X = math.Max(r.Max.X, p.X)
		r.Max.Y = math.Max(r.Max.Y, p.Y)
	}
	return r
}

// Area returns the polygon's unsigned area (shoelace formula).
func (poly Polygon) Area() float64 {
	n := len(poly)
	if n < 3 {
		return 0
	}
	var s float64
	for i := 0; i < n; i++ {
		a, b := poly[i], poly[(i+1)%n]
		s += a.X*b.Y - b.X*a.Y
	}
	return math.Abs(s) / 2
}

// Polyline is an open chain of points, used for IMU walking paths.
type Polyline []Point

// Length returns the total arc length.
func (pl Polyline) Length() float64 {
	var s float64
	for i := 1; i < len(pl); i++ {
		s += Dist(pl[i-1], pl[i])
	}
	return s
}

// PointAt returns the point at arc-length distance d from the start,
// clamped to the ends.
func (pl Polyline) PointAt(d float64) Point {
	if len(pl) == 0 {
		panic("geo: PointAt on empty polyline")
	}
	if d <= 0 {
		return pl[0]
	}
	for i := 1; i < len(pl); i++ {
		seg := Dist(pl[i-1], pl[i])
		if d <= seg {
			if seg == 0 {
				return pl[i]
			}
			return Lerp(pl[i-1], pl[i], d/seg)
		}
		d -= seg
	}
	return pl[len(pl)-1]
}

// HeadingAt returns the walking direction (radians, CCW from +X) of the
// segment containing arc-length position d.
func (pl Polyline) HeadingAt(d float64) float64 {
	if len(pl) < 2 {
		return 0
	}
	if d < 0 {
		d = 0
	}
	for i := 1; i < len(pl); i++ {
		seg := Dist(pl[i-1], pl[i])
		if d <= seg || i == len(pl)-1 {
			v := pl[i].Sub(pl[i-1])
			return math.Atan2(v.Y, v.X)
		}
		d -= seg
	}
	v := pl[len(pl)-1].Sub(pl[len(pl)-2])
	return math.Atan2(v.Y, v.X)
}

// String renders the point for debugging.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// WrapAngle normalizes an angle to (-π, π].
func WrapAngle(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}
