package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p, q := Point{1, 2}, Point{3, 4}
	if p.Add(q) != (Point{4, 6}) {
		t.Fatal("Add")
	}
	if q.Sub(p) != (Point{2, 2}) {
		t.Fatal("Sub")
	}
	if p.Scale(2) != (Point{2, 4}) {
		t.Fatal("Scale")
	}
	if p.Dot(q) != 11 {
		t.Fatal("Dot")
	}
	if math.Abs(Point{3, 4}.Norm()-5) > 1e-15 {
		t.Fatal("Norm")
	}
}

func TestDist(t *testing.T) {
	if Dist(Point{0, 0}, Point{3, 4}) != 5 {
		t.Fatal("Dist")
	}
	if Dist2(Point{0, 0}, Point{3, 4}) != 25 {
		t.Fatal("Dist2")
	}
}

func TestLerp(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 20}
	if Lerp(a, b, 0) != a || Lerp(a, b, 1) != b {
		t.Fatal("Lerp endpoints")
	}
	if Lerp(a, b, 0.5) != (Point{5, 10}) {
		t.Fatal("Lerp midpoint")
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Point{5, 1}, Point{1, 3}) // corners any order
	if r.Min != (Point{1, 1}) || r.Max != (Point{5, 3}) {
		t.Fatalf("NewRect normalized wrong: %+v", r)
	}
	if !r.Contains(Point{3, 2}) || r.Contains(Point{0, 0}) {
		t.Fatal("Contains")
	}
	if !r.Contains(r.Min) || !r.Contains(r.Max) {
		t.Fatal("Rect boundary must be inclusive")
	}
	if r.Center() != (Point{3, 2}) {
		t.Fatal("Center")
	}
	if r.Width() != 4 || r.Height() != 2 || r.Area() != 8 {
		t.Fatal("dims")
	}
}

func TestRectUnionExpand(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{1, 1})
	b := NewRect(Point{2, -1}, Point{3, 4})
	u := a.Union(b)
	if u.Min != (Point{0, -1}) || u.Max != (Point{3, 4}) {
		t.Fatalf("Union=%+v", u)
	}
	e := a.Expand(1)
	if e.Min != (Point{-1, -1}) || e.Max != (Point{2, 2}) {
		t.Fatalf("Expand=%+v", e)
	}
}

func TestRectClosestPoint(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{2, 2})
	if r.ClosestPoint(Point{1, 1}) != (Point{1, 1}) {
		t.Fatal("inner point should project to itself")
	}
	if r.ClosestPoint(Point{5, 1}) != (Point{2, 1}) {
		t.Fatal("right side projection")
	}
	if r.ClosestPoint(Point{-3, -3}) != (Point{0, 0}) {
		t.Fatal("corner projection")
	}
}

func TestRectCornersAndPolygon(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{1, 2})
	c := r.Corners()
	if len(c) != 4 || c[0] != r.Min || c[2] != r.Max {
		t.Fatalf("Corners=%v", c)
	}
	poly := r.Polygon()
	if !poly.Contains(Point{0.5, 1}) {
		t.Fatal("rect polygon containment")
	}
	if math.Abs(poly.Area()-2) > 1e-12 {
		t.Fatalf("rect polygon area=%v", poly.Area())
	}
}

func TestClosestOnSegment(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 0}
	if ClosestOnSegment(Point{5, 3}, a, b) != (Point{5, 0}) {
		t.Fatal("perpendicular foot")
	}
	if ClosestOnSegment(Point{-5, 3}, a, b) != a {
		t.Fatal("clamp to start")
	}
	if ClosestOnSegment(Point{15, 3}, a, b) != b {
		t.Fatal("clamp to end")
	}
	if ClosestOnSegment(Point{1, 1}, a, a) != a {
		t.Fatal("degenerate segment")
	}
}

func TestClosestOnSegmentIsMinimalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		a := Point{rng.Float64() * 10, rng.Float64() * 10}
		b := Point{rng.Float64() * 10, rng.Float64() * 10}
		p := Point{rng.Float64()*20 - 5, rng.Float64()*20 - 5}
		c := ClosestOnSegment(p, a, b)
		dc := Dist(p, c)
		// No sampled point on the segment may be closer.
		for i := 0; i <= 50; i++ {
			s := Lerp(a, b, float64(i)/50)
			if Dist(p, s) < dc-1e-9 {
				return false
			}
		}
		return true
	}
	for i := 0; i < 100; i++ {
		if !f() {
			t.Fatal("found a closer point than ClosestOnSegment's answer")
		}
	}
}

func TestPolygonContainsSquare(t *testing.T) {
	sq := Polygon{{0, 0}, {4, 0}, {4, 4}, {0, 4}}
	if !sq.Contains(Point{2, 2}) {
		t.Fatal("center must be inside")
	}
	if sq.Contains(Point{5, 2}) || sq.Contains(Point{-1, -1}) {
		t.Fatal("outside points must not be inside")
	}
	if !sq.Contains(Point{0, 2}) || !sq.Contains(Point{4, 4}) {
		t.Fatal("boundary must count as inside")
	}
}

func TestPolygonContainsLShape(t *testing.T) {
	// L-shaped building footprint: notch at top-right.
	l := Polygon{{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}}
	if !l.Contains(Point{1, 3}) || !l.Contains(Point{3, 1}) {
		t.Fatal("points in L arms must be inside")
	}
	if l.Contains(Point{3, 3}) {
		t.Fatal("notch must be outside")
	}
}

func TestPolygonDegenerate(t *testing.T) {
	if (Polygon{{0, 0}, {1, 1}}).Contains(Point{0.5, 0.5}) {
		t.Fatal("2-vertex polygon contains nothing")
	}
	if (Polygon{}).Area() != 0 {
		t.Fatal("empty polygon area")
	}
}

func TestPolygonClosestBoundaryPoint(t *testing.T) {
	sq := Polygon{{0, 0}, {4, 0}, {4, 4}, {0, 4}}
	got := sq.ClosestBoundaryPoint(Point{2, 6})
	if got != (Point{2, 4}) {
		t.Fatalf("projection=%v want (2,4)", got)
	}
	// From the inside the closest boundary point is the nearest wall.
	got = sq.ClosestBoundaryPoint(Point{1, 2})
	if got != (Point{0, 2}) {
		t.Fatalf("inner projection=%v want (0,2)", got)
	}
}

func TestPolygonClosestBoundaryEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Polygon{}.ClosestBoundaryPoint(Point{0, 0})
}

func TestPolygonProjectionOnBoundaryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sq := Polygon{{0, 0}, {10, 0}, {10, 10}, {0, 10}}
	f := func(x8, y8 uint8) bool {
		p := Point{float64(x8%40) - 15, float64(y8%40) - 15}
		c := sq.ClosestBoundaryPoint(p)
		// The projection must lie on the polygon (boundary inclusive).
		if !sq.Contains(c) {
			return false
		}
		// And be no farther than any vertex.
		for _, v := range sq {
			if Dist(p, v) < Dist(p, c)-1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPolygonBoundsArea(t *testing.T) {
	tri := Polygon{{0, 0}, {4, 0}, {0, 3}}
	b := tri.Bounds()
	if b.Min != (Point{0, 0}) || b.Max != (Point{4, 3}) {
		t.Fatalf("Bounds=%+v", b)
	}
	if math.Abs(tri.Area()-6) > 1e-12 {
		t.Fatalf("Area=%v want 6", tri.Area())
	}
}

func TestPolylineLengthPointAt(t *testing.T) {
	pl := Polyline{{0, 0}, {3, 0}, {3, 4}}
	if pl.Length() != 7 {
		t.Fatalf("Length=%v", pl.Length())
	}
	if pl.PointAt(0) != (Point{0, 0}) {
		t.Fatal("start")
	}
	if pl.PointAt(3) != (Point{3, 0}) {
		t.Fatal("vertex")
	}
	if pl.PointAt(5) != (Point{3, 2}) {
		t.Fatal("mid second segment")
	}
	if pl.PointAt(100) != (Point{3, 4}) {
		t.Fatal("clamp to end")
	}
	if pl.PointAt(-5) != (Point{0, 0}) {
		t.Fatal("clamp to start")
	}
}

func TestPolylineHeading(t *testing.T) {
	pl := Polyline{{0, 0}, {3, 0}, {3, 4}}
	if pl.HeadingAt(1) != 0 {
		t.Fatal("east heading")
	}
	if math.Abs(pl.HeadingAt(5)-math.Pi/2) > 1e-12 {
		t.Fatal("north heading")
	}
}

func TestWrapAngle(t *testing.T) {
	if math.Abs(WrapAngle(3*math.Pi)-math.Pi) > 1e-12 {
		t.Fatalf("WrapAngle(3π)=%v", WrapAngle(3*math.Pi))
	}
	if math.Abs(WrapAngle(-3*math.Pi)-math.Pi) > 1e-12 {
		t.Fatalf("WrapAngle(-3π)=%v", WrapAngle(-3*math.Pi))
	}
	if WrapAngle(0.5) != 0.5 {
		t.Fatal("in-range angle must be unchanged")
	}
}

func TestPointAtEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Polyline{}.PointAt(1)
}

func TestPointString(t *testing.T) {
	if (Point{1, 2}).String() != "(1.00, 2.00)" {
		t.Fatalf("String=%q", Point{1, 2}.String())
	}
}
