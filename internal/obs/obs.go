// Package obs is the serving stack's in-process observability layer: a
// lightweight, allocation-conscious tracer that follows one request
// across its full lifecycle — HTTP ingress, decode, batch-queue wait,
// the coalesced forward pass, session lock, journal append/fsync,
// encode — as explicit spans with monotonic timings.
//
// The design optimizes for the serving hot path (millions of tiny
// requests), not for distributed-tracing generality:
//
//   - A Trace is a small struct with a preallocated span slice; starting
//     one costs a couple of allocations, and recording a span under the
//     trace mutex costs none in steady state.
//   - Traces ride the request's context.Context. A nil Trace (tracing
//     off, or a code path outside any request) makes every operation a
//     cheap no-op, so instrumented code never branches on "is tracing
//     on".
//   - Spans recorded from other goroutines — the batcher's dispatcher
//     stitching a request into the shared pass it coalesced into — go
//     through AddSpan/AddBatchSpan with explicit wall-clock bounds.
//   - Completed traces feed fixed-size per-stage histograms (atomic,
//     lock-free) and a bounded in-memory ring with tail-sampling: the
//     recent ring is sampled, but the slowest and errored traces are
//     always retained, because those are the ones worth reading after
//     the fact.
//
// The Tracer surfaces everything three ways: WritePrometheus renders
// the per-stage histograms for /metrics, Dump returns the retained
// traces for /debug/traces, and a sampled slow-request line goes to the
// structured logger. WriteRuntimePrometheus adds process runtime
// metrics (goroutines, heap, GC pauses) alongside.
package obs

import (
	"context"
	"sync"
	"time"
)

// Stage names, in request-lifecycle order. The batcher boundary spans
// (queue_wait, batch_pass) are recorded by the dispatcher goroutine
// into every request the pass coalesced; everything else is recorded by
// the request's own goroutine.
const (
	StageDecode        = "decode"         // request body read + JSON parse
	StageQueueWait     = "queue_wait"     // enqueue to forward-pass start
	StageBatchPass     = "batch_pass"     // the coalesced forward pass
	StageSessionLock   = "session_lock"   // waiting on the session mutex
	StageJournalAppend = "journal_append" // WAL buffered append
	StageJournalFsync  = "journal_fsync"  // request-boundary group commit
	StageEncode        = "encode"         // response encode + write
	// StageTotal is the whole request, recorded implicitly at Finish.
	StageTotal = "total"
)

// stages is the pre-registered set; unknown stage names still work (the
// tracer creates their histograms on first use) but these never take
// the registration lock.
var stages = []string{
	StageDecode, StageQueueWait, StageBatchPass, StageSessionLock,
	StageJournalAppend, StageJournalFsync, StageEncode, StageTotal,
}

// Span is one timed stage within a trace. Start is the offset from the
// trace's begin time, so a dumped trace reads as a timeline without
// storing absolute stamps per span.
type Span struct {
	Stage string
	Start time.Duration // offset from trace start
	Dur   time.Duration
	Kind  string // batcher kind, batch_pass spans only
	Rows  int    // total rows in the coalesced pass, batch_pass spans only
}

// maxSpans caps one trace's span count. Request/response traces stay
// far below it; the cap exists for the long-lived NDJSON stream, where
// one connection is one trace — past the cap spans are counted, not
// stored, so a day-long stream cannot grow without bound.
const maxSpans = 512

// Trace is one request's span record. The zero value is not used;
// Tracer.Start builds traces. A nil *Trace is valid everywhere and does
// nothing, which is how untraced code paths stay branch-free.
type Trace struct {
	tracer *Tracer
	id     string
	name   string
	begin  time.Time

	mu        sync.Mutex
	reqID     string
	spans     []Span
	truncated int
	finished  bool
}

// ID returns the trace ID (client-supplied X-Trace-Id or generated).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// SetRequestID attaches the server-assigned request ID (the /v2
// X-Request-Id value), correlating the trace with response envelopes
// and logs.
func (t *Trace) SetRequestID(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.reqID = id
	t.mu.Unlock()
}

// add records one finished span. Safe from any goroutine.
func (t *Trace) add(sp Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.finished || len(t.spans) >= maxSpans {
		if !t.finished {
			t.truncated++
		}
		t.mu.Unlock()
		return
	}
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// Finish completes the trace: the total duration and every span feed
// the tracer's stage histograms, and the trace enters the retention
// rings per the tail-sampling policy. status is the HTTP status code
// (>= 500 marks the trace errored). Idempotent; spans recorded after
// Finish are dropped.
func (t *Trace) Finish(status int) {
	if t == nil {
		return
	}
	dur := time.Since(t.begin)
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return
	}
	t.finished = true
	spans := t.spans
	reqID := t.reqID
	truncated := t.truncated
	t.mu.Unlock()
	t.tracer.record(t, reqID, spans, truncated, dur, status)
}

// ctxKey carries the *Trace through a request's context.
type ctxKey struct{}

// With returns ctx carrying t.
func With(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// From extracts the trace from ctx; nil when the request is untraced.
func From(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// ActiveSpan is an in-progress span: Begin stamps the start, End
// records it. It is a value type so the begin/end pair costs no
// allocation.
type ActiveSpan struct {
	t     *Trace
	stage string
	start time.Time
}

// Begin starts a span on ctx's trace; on an untraced context the
// returned ActiveSpan (and its End) are no-ops.
func Begin(ctx context.Context, stage string) ActiveSpan {
	t := From(ctx)
	if t == nil {
		return ActiveSpan{}
	}
	return ActiveSpan{t: t, stage: stage, start: time.Now()}
}

// End records the span.
func (s ActiveSpan) End() {
	if s.t == nil {
		return
	}
	s.t.add(Span{Stage: s.stage, Start: s.start.Sub(s.t.begin), Dur: time.Since(s.start)})
}

// AddSpan records a completed [start, end] span on ctx's trace — the
// cross-goroutine entry point (e.g. the batcher's dispatcher recording
// a request's queue wait).
func AddSpan(ctx context.Context, stage string, start, end time.Time) {
	t := From(ctx)
	if t == nil {
		return
	}
	t.add(Span{Stage: stage, Start: start.Sub(t.begin), Dur: end.Sub(start)})
}

// AddBatchSpan stitches a request's trace into the shared forward pass
// it coalesced into: kind is the batcher kind ("localize", "track") and
// rows the total row count of the pass — so a dumped trace shows not
// just that the request waited and ran, but how big the pass it rode
// in was.
func AddBatchSpan(ctx context.Context, kind string, rows int, start, end time.Time) {
	t := From(ctx)
	if t == nil {
		return
	}
	t.add(Span{Stage: StageBatchPass, Start: start.Sub(t.begin), Dur: end.Sub(start), Kind: kind, Rows: rows})
}

// SetRequestID attaches the server-assigned request ID to ctx's trace.
func SetRequestID(ctx context.Context, id string) { From(ctx).SetRequestID(id) }
