package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// finishAfter backdates a trace's begin stamp so Finish observes a
// chosen duration without sleeping.
func finishAfter(tr *Trace, d time.Duration, status int) {
	tr.begin = time.Now().Add(-d)
	tr.Finish(status)
}

func TestBucketBoundsPairing(t *testing.T) {
	if numStageBuckets != len(stageBounds)+1 {
		t.Fatalf("numStageBuckets = %d, want len(stageBounds)+1 = %d", numStageBuckets, len(stageBounds)+1)
	}
	if bucketFor(0) != 0 {
		t.Fatalf("zero seconds must land in the first bucket")
	}
	if bucketFor(10) != len(stageBounds) {
		t.Fatalf("10s must land in the overflow bucket")
	}
}

func TestSpansFeedHistograms(t *testing.T) {
	tr0 := NewTracer(Options{})
	ctx, tr := tr0.Start(context.Background(), "localize", "")
	sp := Begin(ctx, StageDecode)
	sp.End()
	now := time.Now()
	AddBatchSpan(ctx, "localize", 32, now.Add(-2*time.Millisecond), now)
	finishAfter(tr, 5*time.Millisecond, 200)

	snap := tr0.StageSnapshot()
	if snap[StageDecode].Count != 1 {
		t.Fatalf("decode count = %d, want 1", snap[StageDecode].Count)
	}
	bp := snap[StageBatchPass]
	if bp.Count != 1 || bp.SumSeconds < 0.0015 || bp.SumSeconds > 0.01 {
		t.Fatalf("batch_pass stats = %+v, want one ~2ms observation", bp)
	}
	if snap[StageTotal].Count != 1 {
		t.Fatalf("total count = %d, want 1", snap[StageTotal].Count)
	}

	d := tr0.Dump()
	if len(d.Recent) != 1 {
		t.Fatalf("recent = %d traces, want 1", len(d.Recent))
	}
	var gotBatch bool
	for _, s := range d.Recent[0].Spans {
		if s.Stage == StageBatchPass {
			gotBatch = true
			if s.Kind != "localize" || s.Rows != 32 {
				t.Fatalf("batch span = %+v, want kind=localize rows=32", s)
			}
		}
	}
	if !gotBatch {
		t.Fatalf("dumped trace lacks its batch_pass span: %+v", d.Recent[0].Spans)
	}
}

// TestTailSampling is the ring-buffer retention contract: slowest and
// errored traces survive eviction even when the recent ring has long
// since recycled them, and even when probabilistic sampling admits
// (almost) nothing.
func TestTailSampling(t *testing.T) {
	tr0 := NewTracer(Options{RingSize: 4, SlowKeep: 2, ErrKeep: 2, SlowThreshold: time.Hour})

	// One errored and two uniquely slow traces, early on.
	_, e1 := tr0.Start(context.Background(), "track", "err-1")
	finishAfter(e1, time.Millisecond, 500)
	_, s1 := tr0.Start(context.Background(), "track", "slow-1")
	finishAfter(s1, 900*time.Millisecond, 200)
	_, s2 := tr0.Start(context.Background(), "track", "slow-2")
	finishAfter(s2, 800*time.Millisecond, 200)

	// Then far more fast, successful traffic than the recent ring holds.
	for i := 0; i < 50; i++ {
		_, tr := tr0.Start(context.Background(), "track", "")
		finishAfter(tr, time.Millisecond, 200)
	}

	d := tr0.Dump()
	if len(d.Recent) != 4 {
		t.Fatalf("recent ring holds %d, want 4", len(d.Recent))
	}
	for _, r := range d.Recent {
		if r.ID == "slow-1" || r.ID == "slow-2" || r.ID == "err-1" {
			t.Fatalf("recent ring should have recycled the early traces, still holds %q", r.ID)
		}
	}
	if len(d.Slowest) != 2 || d.Slowest[0].ID != "slow-1" || d.Slowest[1].ID != "slow-2" {
		t.Fatalf("slowest = %+v, want [slow-1 slow-2]", ids(d.Slowest))
	}
	if len(d.ErroredRing) != 1 || d.ErroredRing[0].ID != "err-1" {
		t.Fatalf("errored = %v, want [err-1]", ids(d.ErroredRing))
	}

	// Near-zero sampling: histograms and tail retention still see
	// everything.
	tr1 := NewTracer(Options{RingSize: 4, SlowKeep: 2, ErrKeep: 2, SampleRate: 1e-12, SlowThreshold: time.Hour})
	_, e2 := tr1.Start(context.Background(), "track", "err-2")
	finishAfter(e2, time.Millisecond, 503)
	_, s3 := tr1.Start(context.Background(), "track", "slow-3")
	finishAfter(s3, time.Second, 200)
	for i := 0; i < 20; i++ {
		_, tr := tr1.Start(context.Background(), "track", "")
		finishAfter(tr, time.Microsecond, 200)
	}
	d1 := tr1.Dump()
	if len(d1.ErroredRing) != 1 || d1.ErroredRing[0].ID != "err-2" {
		t.Fatalf("errored under sampling = %v, want [err-2]", ids(d1.ErroredRing))
	}
	if len(d1.Slowest) == 0 || d1.Slowest[0].ID != "slow-3" {
		t.Fatalf("slowest under sampling = %v, want slow-3 first", ids(d1.Slowest))
	}
	if got := tr1.StageSnapshot()[StageTotal].Count; got != 22 {
		t.Fatalf("histograms must count every trace regardless of sampling: total count = %d, want 22", got)
	}
}

func ids(ds []TraceDump) []string {
	out := make([]string, len(ds))
	for i := range ds {
		out[i] = ds[i].ID
	}
	return out
}

func TestSpanTruncation(t *testing.T) {
	tr0 := NewTracer(Options{})
	ctx, tr := tr0.Start(context.Background(), "stream", "")
	now := time.Now()
	for i := 0; i < maxSpans+10; i++ {
		AddSpan(ctx, StageDecode, now, now)
	}
	finishAfter(tr, time.Millisecond, 200)
	d := tr0.Dump()
	if len(d.Recent[0].Spans) != maxSpans {
		t.Fatalf("kept %d spans, want cap %d", len(d.Recent[0].Spans), maxSpans)
	}
	if d.Recent[0].Truncated != 10 {
		t.Fatalf("truncated = %d, want 10", d.Recent[0].Truncated)
	}
}

func TestNilSafety(t *testing.T) {
	var tr0 *Tracer
	ctx, tr := tr0.Start(context.Background(), "x", "")
	if tr != nil {
		t.Fatalf("nil tracer must start nil traces")
	}
	if From(ctx) != nil {
		t.Fatalf("nil tracer must not attach a trace to ctx")
	}
	sp := Begin(ctx, StageDecode)
	sp.End()
	AddSpan(ctx, StageDecode, time.Now(), time.Now())
	AddBatchSpan(ctx, "localize", 1, time.Now(), time.Now())
	SetRequestID(ctx, "r")
	tr.Finish(200)
	tr0.Dump()
	tr0.StageSnapshot()
	tr0.WritePrometheus(new(bytes.Buffer))
}

func TestSanitizeID(t *testing.T) {
	if got := sanitizeID("abc-123.X:ok"); got != "abc-123.X:ok" {
		t.Fatalf("clean ID mangled: %q", got)
	}
	if got := sanitizeID("a b\nc"); got != "a_b_c" {
		t.Fatalf("dirty ID = %q, want a_b_c", got)
	}
	if got := sanitizeID(strings.Repeat("x", 200)); len(got) != 64 {
		t.Fatalf("long ID kept %d bytes, want 64", len(got))
	}
}

func TestConcurrentRecord(t *testing.T) {
	tr0 := NewTracer(Options{RingSize: 8, SlowKeep: 4, ErrKeep: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ctx, tr := tr0.Start(context.Background(), "localize", "")
				sp := Begin(ctx, StageDecode)
				sp.End()
				AddBatchSpan(ctx, "localize", 4, time.Now(), time.Now())
				status := 200
				if i%10 == 0 {
					status = 500
				}
				tr.Finish(status)
			}
		}(g)
	}
	wg.Wait()
	snap := tr0.StageSnapshot()
	if snap[StageTotal].Count != 800 {
		t.Fatalf("total = %d, want 800", snap[StageTotal].Count)
	}
	var buf bytes.Buffer
	tr0.WritePrometheus(&buf)
	for _, want := range []string{"noble_stage_seconds_bucket", "noble_traces_total{class=\"errored\"} 80"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("prometheus output missing %q", want)
		}
	}
	WriteRuntimePrometheus(&buf)
	if !strings.Contains(buf.String(), "noble_goroutines") {
		t.Fatalf("runtime metrics missing noble_goroutines")
	}
}

func TestFinishIdempotent(t *testing.T) {
	tr0 := NewTracer(Options{})
	_, tr := tr0.Start(context.Background(), "x", "")
	tr.Finish(200)
	tr.Finish(500)
	if got := tr0.StageSnapshot()[StageTotal].Count; got != 1 {
		t.Fatalf("double Finish recorded %d traces, want 1", got)
	}
	if tr0.Dump().Errored != 0 {
		t.Fatalf("second Finish must be ignored")
	}
}
