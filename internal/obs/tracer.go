package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// stageBounds are the per-stage latency histogram's upper bounds in
// seconds: exponential from 100µs to 5s, matching the spread between a
// buffered journal append (microseconds) and a saturated forward pass
// (milliseconds to seconds). Observations past the last bound land in
// the implicit +Inf bucket.
var stageBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// numStageBuckets = len(stageBounds) + 1 (the +Inf slot); array sizes
// need a constant, so the pairing is asserted in the package tests.
const numStageBuckets = 16

// StageBounds returns the histogram upper bounds in seconds (the final
// +Inf bucket is implicit). Consumers diffing StageSnapshot bucket
// counts (the benchmark rig) use these to approximate quantiles.
func StageBounds() []float64 { return append([]float64(nil), stageBounds...) }

// stageHist is one stage's latency aggregate. Everything on the record
// path is atomic — Finish never takes a lock to update histograms; the
// mutex only guards the exemplar trace ID, taken when a new maximum is
// observed (rare by construction).
type stageHist struct {
	buckets [numStageBuckets]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
	maxNs   atomic.Int64

	mu       sync.Mutex
	exemplar string // trace ID of the max observation
}

// bucketFor maps a duration onto its histogram slot.
func bucketFor(sec float64) int {
	for i, le := range stageBounds {
		if sec <= le {
			return i
		}
	}
	return len(stageBounds)
}

// observe records one duration for one trace.
func (h *stageHist) observe(d time.Duration, traceID string) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketFor(float64(ns)/1e9)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
	for {
		cur := h.maxNs.Load()
		if ns <= cur {
			return
		}
		if h.maxNs.CompareAndSwap(cur, ns) {
			h.mu.Lock()
			h.exemplar = traceID
			h.mu.Unlock()
			return
		}
	}
}

// Options configures a Tracer. The zero value is usable: full sampling,
// default ring sizes, no logger (slow requests are retained but not
// logged).
type Options struct {
	// RingSize bounds the recent-trace ring (default 256).
	RingSize int
	// SlowKeep bounds the always-retained slowest set (default 16).
	SlowKeep int
	// ErrKeep bounds the always-retained errored ring (default 64).
	ErrKeep int
	// SampleRate is the admission probability for the recent ring, in
	// [0, 1]. Values <= 0 mean 1.0 (sample everything); the slowest and
	// errored sets ignore it — tail sampling keeps what matters even at
	// low rates. Histograms always record every trace.
	SampleRate float64
	// SlowThreshold marks a trace slow: it competes for the slowest set
	// regardless, but past this duration it is also logged (default
	// 250ms).
	SlowThreshold time.Duration
	// SlowLogEvery rate-limits slow-request log lines (default 1s; the
	// traces themselves are all retained, only the log line is sampled).
	SlowLogEvery time.Duration
	// Logger receives the sampled slow-request line; nil disables
	// logging entirely.
	Logger *slog.Logger
	// IDPrefix namespaces generated trace IDs (default "t").
	IDPrefix string
}

// Tracer owns the process's trace aggregation: per-stage histograms,
// the tail-sampled retention rings, and the slow-request log. All
// methods are safe for concurrent use, and all methods on a nil
// *Tracer are no-ops, so a server with tracing disabled carries no
// branches at call sites.
type Tracer struct {
	opt Options

	seq       atomic.Int64 // generated trace IDs
	sampleSeq atomic.Int64 // deterministic sampling counter
	lastSlow  atomic.Int64 // unix-nano of the last slow log line

	stageMu sync.RWMutex
	stageH  map[string]*stageHist

	traces    atomic.Int64 // finished traces
	errored   atomic.Int64 // finished with status >= 500
	slow      atomic.Int64 // finished past SlowThreshold
	truncSpan atomic.Int64 // spans dropped past maxSpans

	mu      sync.Mutex
	recent  []TraceDump // ring; recentN indexes it
	recentN int64
	errRing []TraceDump // ring; errN indexes it
	errN    int64
	slowest []TraceDump // up to SlowKeep, unordered; min replaced on insert
}

// NewTracer builds a tracer from opt.
func NewTracer(opt Options) *Tracer {
	if opt.RingSize <= 0 {
		opt.RingSize = 256
	}
	if opt.SlowKeep <= 0 {
		opt.SlowKeep = 16
	}
	if opt.ErrKeep <= 0 {
		opt.ErrKeep = 64
	}
	if opt.SampleRate <= 0 || opt.SampleRate > 1 {
		opt.SampleRate = 1
	}
	if opt.SlowThreshold <= 0 {
		opt.SlowThreshold = 250 * time.Millisecond
	}
	if opt.SlowLogEvery <= 0 {
		opt.SlowLogEvery = time.Second
	}
	if opt.IDPrefix == "" {
		opt.IDPrefix = "t"
	}
	t := &Tracer{opt: opt, stageH: make(map[string]*stageHist, len(stages))}
	for _, s := range stages {
		t.stageH[s] = &stageHist{}
	}
	return t
}

// SampleRate reports the configured recent-ring admission rate.
func (t *Tracer) SampleRate() float64 {
	if t == nil {
		return 0
	}
	return t.opt.SampleRate
}

// Start begins a trace named name (the endpoint). id is the
// client-supplied trace ID (X-Trace-Id), sanitized; empty generates
// one. The returned context carries the trace for every downstream
// span. On a nil tracer both returns are pass-throughs (ctx unchanged,
// trace nil), so a server with tracing off traces nothing at no cost.
func (t *Tracer) Start(ctx context.Context, name, id string) (context.Context, *Trace) {
	if t == nil {
		return ctx, nil
	}
	if id == "" {
		id = t.nextID()
	} else {
		id = sanitizeID(id)
	}
	tr := &Trace{tracer: t, id: id, name: name, begin: time.Now(), spans: make([]Span, 0, 8)}
	return With(ctx, tr), tr
}

// record aggregates one finished trace.
func (t *Tracer) record(tr *Trace, reqID string, spans []Span, truncated int, dur time.Duration, status int) {
	if t == nil {
		return
	}
	t.traces.Add(1)
	if truncated > 0 {
		t.truncSpan.Add(int64(truncated))
	}
	for i := range spans {
		t.hist(spans[i].Stage).observe(spans[i].Dur, tr.id)
	}
	t.hist(StageTotal).observe(dur, tr.id)

	isErr := status >= 500
	isSlow := dur >= t.opt.SlowThreshold
	if isErr {
		t.errored.Add(1)
	}
	if isSlow {
		t.slow.Add(1)
	}

	// Admission: errored and slow traces are always retained (tail
	// sampling); the recent ring is probabilistic.
	sampled := t.sampleHit()
	if !sampled && !isErr && !isSlow {
		// Still a candidate for the slowest set: "slowest" means slowest
		// observed, not slowest sampled.
		t.mu.Lock()
		if len(t.slowest) < t.opt.SlowKeep || dur > t.slowestMinLocked() {
			d := dumpTrace(tr, reqID, spans, truncated, dur, status)
			t.insertSlowestLocked(d)
		}
		t.mu.Unlock()
		return
	}

	d := dumpTrace(tr, reqID, spans, truncated, dur, status)
	t.mu.Lock()
	if sampled {
		if len(t.recent) < t.opt.RingSize {
			t.recent = append(t.recent, d)
		} else {
			t.recent[t.recentN%int64(t.opt.RingSize)] = d
		}
		t.recentN++
	}
	if isErr {
		if len(t.errRing) < t.opt.ErrKeep {
			t.errRing = append(t.errRing, d)
		} else {
			t.errRing[t.errN%int64(t.opt.ErrKeep)] = d
		}
		t.errN++
	}
	t.insertSlowestLocked(d)
	t.mu.Unlock()

	if isSlow {
		t.logSlow(d)
	}
}

// slowestMinLocked returns the smallest duration in the slowest set
// (0 when empty). Caller holds t.mu.
func (t *Tracer) slowestMinLocked() time.Duration {
	var min time.Duration = -1
	for i := range t.slowest {
		d := time.Duration(t.slowest[i].DurationMs * float64(time.Millisecond))
		if min < 0 || d < min {
			min = d
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// insertSlowestLocked adds d to the slowest set, evicting the current
// minimum when full. SlowKeep is small, so the linear scan is cheaper
// than a heap. Caller holds t.mu.
func (t *Tracer) insertSlowestLocked(d TraceDump) {
	if len(t.slowest) < t.opt.SlowKeep {
		t.slowest = append(t.slowest, d)
		return
	}
	minIdx, minDur := -1, d.DurationMs
	for i := range t.slowest {
		if t.slowest[i].DurationMs < minDur {
			minIdx, minDur = i, t.slowest[i].DurationMs
		}
	}
	if minIdx >= 0 {
		t.slowest[minIdx] = d
	}
}

// sampleHit decides recent-ring admission. Deterministic (a golden-ratio
// hash over a counter) rather than math/rand: no lock, no seed state,
// and an exact long-run rate.
func (t *Tracer) sampleHit() bool {
	if t.opt.SampleRate >= 1 {
		return true
	}
	x := uint64(t.sampleSeq.Add(1)) * 0x9E3779B97F4A7C15
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < t.opt.SampleRate
}

// hist resolves a stage's histogram, creating it on first use for
// stages outside the pre-registered set.
func (t *Tracer) hist(stage string) *stageHist {
	t.stageMu.RLock()
	h := t.stageH[stage]
	t.stageMu.RUnlock()
	if h != nil {
		return h
	}
	t.stageMu.Lock()
	defer t.stageMu.Unlock()
	if h = t.stageH[stage]; h == nil {
		h = &stageHist{}
		t.stageH[stage] = h
	}
	return h
}

// logSlow emits the rate-limited slow-request line.
func (t *Tracer) logSlow(d TraceDump) {
	lg := t.opt.Logger
	if lg == nil {
		return
	}
	now := time.Now().UnixNano()
	for {
		last := t.lastSlow.Load()
		if now-last < int64(t.opt.SlowLogEvery) {
			return
		}
		if t.lastSlow.CompareAndSwap(last, now) {
			break
		}
	}
	attrs := []any{
		slog.String("trace_id", d.ID),
		slog.String("endpoint", d.Name),
		slog.Int("status", d.Status),
		slog.Float64("duration_ms", d.DurationMs),
	}
	if d.RequestID != "" {
		attrs = append(attrs, slog.String("request_id", d.RequestID))
	}
	// The per-stage breakdown is the point of the line: where the time
	// went, summed per stage.
	perStage := map[string]float64{}
	for _, sp := range d.Spans {
		perStage[sp.Stage] += sp.DurationMs
	}
	for _, s := range stages {
		if s == StageTotal {
			continue
		}
		if ms, ok := perStage[s]; ok {
			attrs = append(attrs, slog.Float64(s+"_ms", ms))
		}
	}
	lg.Warn("slow request", attrs...)
}

// StageStats is one stage's aggregate, as data: the benchmark rig diffs
// two snapshots around a measured pass to attribute scenario latency to
// pipeline stages. Buckets aligns with StageBounds() plus a final +Inf
// slot, raw (non-cumulative) counts.
type StageStats struct {
	Count      int64
	SumSeconds float64
	MaxSeconds float64
	Buckets    []int64
}

// StageSnapshot copies every stage's aggregate.
func (t *Tracer) StageSnapshot() map[string]StageStats {
	if t == nil {
		return nil
	}
	t.stageMu.RLock()
	defer t.stageMu.RUnlock()
	out := make(map[string]StageStats, len(t.stageH))
	for name, h := range t.stageH {
		s := StageStats{
			Count:      h.count.Load(),
			SumSeconds: float64(h.sumNs.Load()) / 1e9,
			MaxSeconds: float64(h.maxNs.Load()) / 1e9,
			Buckets:    make([]int64, numStageBuckets),
		}
		for i := range s.Buckets {
			s.Buckets[i] = h.buckets[i].Load()
		}
		out[name] = s
	}
	return out
}

// TraceDump is one retained trace in /debug/traces wire shape.
type TraceDump struct {
	ID         string     `json:"id"`
	RequestID  string     `json:"request_id,omitempty"`
	Name       string     `json:"name"`
	Start      time.Time  `json:"start"`
	DurationMs float64    `json:"duration_ms"`
	Status     int        `json:"status"`
	Truncated  int        `json:"truncated_spans,omitempty"`
	Spans      []SpanDump `json:"spans"`
}

// SpanDump is one span in wire shape: offset and duration in
// fractional milliseconds relative to the trace start.
type SpanDump struct {
	Stage      string  `json:"stage"`
	OffsetMs   float64 `json:"offset_ms"`
	DurationMs float64 `json:"duration_ms"`
	Kind       string  `json:"kind,omitempty"`
	Rows       int     `json:"rows,omitempty"`
}

// dumpTrace freezes a finished trace into wire shape.
func dumpTrace(tr *Trace, reqID string, spans []Span, truncated int, dur time.Duration, status int) TraceDump {
	d := TraceDump{
		ID:         tr.id,
		RequestID:  reqID,
		Name:       tr.name,
		Start:      tr.begin,
		DurationMs: float64(dur) / float64(time.Millisecond),
		Status:     status,
		Truncated:  truncated,
		Spans:      make([]SpanDump, len(spans)),
	}
	for i, sp := range spans {
		d.Spans[i] = SpanDump{
			Stage:      sp.Stage,
			OffsetMs:   float64(sp.Start) / float64(time.Millisecond),
			DurationMs: float64(sp.Dur) / float64(time.Millisecond),
			Kind:       sp.Kind,
			Rows:       sp.Rows,
		}
	}
	return d
}

// DumpResult is the /debug/traces response body.
type DumpResult struct {
	Traces      int64       `json:"traces_total"`
	Errored     int64       `json:"errored_total"`
	Slow        int64       `json:"slow_total"`
	SampleRate  float64     `json:"sample_rate"`
	SlowMs      float64     `json:"slow_threshold_ms"`
	Recent      []TraceDump `json:"recent"`
	Slowest     []TraceDump `json:"slowest"`
	ErroredRing []TraceDump `json:"errored"`
}

// Dump returns the retained traces: recent newest-first, slowest by
// descending duration, errored newest-first.
func (t *Tracer) Dump() DumpResult {
	if t == nil {
		return DumpResult{}
	}
	t.mu.Lock()
	recent := ringNewestFirst(t.recent, t.recentN, t.opt.RingSize)
	errored := ringNewestFirst(t.errRing, t.errN, t.opt.ErrKeep)
	slowest := append([]TraceDump(nil), t.slowest...)
	t.mu.Unlock()
	sort.Slice(slowest, func(i, k int) bool { return slowest[i].DurationMs > slowest[k].DurationMs })
	return DumpResult{
		Traces:      t.traces.Load(),
		Errored:     t.errored.Load(),
		Slow:        t.slow.Load(),
		SampleRate:  t.opt.SampleRate,
		SlowMs:      float64(t.opt.SlowThreshold) / float64(time.Millisecond),
		Recent:      recent,
		Slowest:     slowest,
		ErroredRing: errored,
	}
}

// ringNewestFirst copies a ring out newest-first. n is the total ever
// inserted, size the ring capacity.
func ringNewestFirst(ring []TraceDump, n int64, size int) []TraceDump {
	out := make([]TraceDump, 0, len(ring))
	for i := int64(1); i <= int64(len(ring)); i++ {
		out = append(out, ring[(n-i)%int64(size)])
	}
	return out
}

// nextID generates a trace ID.
func (t *Tracer) nextID() string {
	return t.opt.IDPrefix + "-" + strconv.FormatInt(t.seq.Add(1), 10)
}

// sanitizeID bounds and cleans a client-supplied trace ID so arbitrary
// header bytes never land in logs or the dump endpoint verbatim.
func sanitizeID(id string) string {
	const maxIDLen = 64
	if len(id) > maxIDLen {
		id = id[:maxIDLen]
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '.' || c == ':' {
			continue
		}
		// Rebuild with offending bytes replaced.
		b := []byte(id)
		for k := i; k < len(b); k++ {
			c := b[k]
			if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
				c == '-' || c == '_' || c == '.' || c == ':' {
				continue
			}
			b[k] = '_'
		}
		return string(b)
	}
	return id
}

// WritePrometheus renders the stage histograms and trace counters in
// the Prometheus text exposition format.
func (t *Tracer) WritePrometheus(w io.Writer) {
	if t == nil {
		return
	}
	snap := t.StageSnapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintln(w, "# HELP noble_stage_seconds Per-stage request latency (total = whole request).")
	fmt.Fprintln(w, "# TYPE noble_stage_seconds histogram")
	for _, name := range names {
		s := snap[name]
		var cum int64
		for i, le := range stageBounds {
			cum += s.Buckets[i]
			fmt.Fprintf(w, "noble_stage_seconds_bucket{stage=%q,le=\"%g\"} %d\n", name, le, cum)
		}
		fmt.Fprintf(w, "noble_stage_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", name, s.Count)
		fmt.Fprintf(w, "noble_stage_seconds_sum{stage=%q} %.6f\n", name, s.SumSeconds)
		fmt.Fprintf(w, "noble_stage_seconds_count{stage=%q} %d\n", name, s.Count)
	}
	fmt.Fprintln(w, "# HELP noble_stage_max_seconds Largest single observation per stage, with its trace ID as exemplar.")
	fmt.Fprintln(w, "# TYPE noble_stage_max_seconds gauge")
	t.stageMu.RLock()
	for _, name := range names {
		h := t.stageH[name]
		h.mu.Lock()
		ex := h.exemplar
		h.mu.Unlock()
		fmt.Fprintf(w, "noble_stage_max_seconds{stage=%q,trace_id=%q} %.6f\n", name, ex, snap[name].MaxSeconds)
	}
	t.stageMu.RUnlock()
	fmt.Fprintln(w, "# HELP noble_traces_total Finished traces, by outcome class.")
	fmt.Fprintln(w, "# TYPE noble_traces_total counter")
	fmt.Fprintf(w, "noble_traces_total{class=\"all\"} %d\n", t.traces.Load())
	fmt.Fprintf(w, "noble_traces_total{class=\"errored\"} %d\n", t.errored.Load())
	fmt.Fprintf(w, "noble_traces_total{class=\"slow\"} %d\n", t.slow.Load())
	fmt.Fprintln(w, "# HELP noble_trace_truncated_spans_total Spans dropped past the per-trace cap.")
	fmt.Fprintln(w, "# TYPE noble_trace_truncated_spans_total counter")
	fmt.Fprintf(w, "noble_trace_truncated_spans_total %d\n", t.truncSpan.Load())
}
