package obs

import (
	"fmt"
	"io"
	"runtime"
	"time"
)

// RuntimeSnapshot is the process runtime view for /debug/runtime: the
// numbers an operator wants next to a latency regression — is the heap
// growing, is GC pausing the world, are goroutines leaking.
type RuntimeSnapshot struct {
	Goroutines     int     `json:"goroutines"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64  `json:"heap_sys_bytes"`
	HeapObjects    uint64  `json:"heap_objects"`
	StackSysBytes  uint64  `json:"stack_sys_bytes"`
	NumGC          uint32  `json:"num_gc"`
	GCPauseTotalMs float64 `json:"gc_pause_total_ms"`
	GCLastPauseMs  float64 `json:"gc_last_pause_ms"`
	GCCPUFraction  float64 `json:"gc_cpu_fraction"`
	NextGCBytes    uint64  `json:"next_gc_bytes"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
}

// processStart anchors the uptime gauge.
var processStart = time.Now()

// ReadRuntime captures the current runtime state. ReadMemStats stops
// the world briefly, so this belongs on scrape/debug paths, never per
// request.
func ReadRuntime() RuntimeSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	var lastPause uint64
	if ms.NumGC > 0 {
		lastPause = ms.PauseNs[(ms.NumGC+255)%256]
	}
	return RuntimeSnapshot{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		HeapObjects:    ms.HeapObjects,
		StackSysBytes:  ms.StackSys,
		NumGC:          ms.NumGC,
		GCPauseTotalMs: float64(ms.PauseTotalNs) / 1e6,
		GCLastPauseMs:  float64(lastPause) / 1e6,
		GCCPUFraction:  ms.GCCPUFraction,
		NextGCBytes:    ms.NextGC,
		UptimeSeconds:  time.Since(processStart).Seconds(),
	}
}

// WriteRuntimePrometheus renders the runtime gauges in the Prometheus
// text exposition format, for the /metrics endpoint.
func WriteRuntimePrometheus(w io.Writer) {
	s := ReadRuntime()
	fmt.Fprintln(w, "# HELP noble_goroutines Live goroutines.")
	fmt.Fprintln(w, "# TYPE noble_goroutines gauge")
	fmt.Fprintf(w, "noble_goroutines %d\n", s.Goroutines)
	fmt.Fprintln(w, "# HELP noble_heap_alloc_bytes Live heap bytes.")
	fmt.Fprintln(w, "# TYPE noble_heap_alloc_bytes gauge")
	fmt.Fprintf(w, "noble_heap_alloc_bytes %d\n", s.HeapAllocBytes)
	fmt.Fprintln(w, "# HELP noble_heap_sys_bytes Heap bytes obtained from the OS.")
	fmt.Fprintln(w, "# TYPE noble_heap_sys_bytes gauge")
	fmt.Fprintf(w, "noble_heap_sys_bytes %d\n", s.HeapSysBytes)
	fmt.Fprintln(w, "# HELP noble_heap_objects Live heap objects.")
	fmt.Fprintln(w, "# TYPE noble_heap_objects gauge")
	fmt.Fprintf(w, "noble_heap_objects %d\n", s.HeapObjects)
	fmt.Fprintln(w, "# HELP noble_gc_runs_total Completed GC cycles.")
	fmt.Fprintln(w, "# TYPE noble_gc_runs_total counter")
	fmt.Fprintf(w, "noble_gc_runs_total %d\n", s.NumGC)
	fmt.Fprintln(w, "# HELP noble_gc_pause_seconds_total Cumulative stop-the-world GC pause.")
	fmt.Fprintln(w, "# TYPE noble_gc_pause_seconds_total counter")
	fmt.Fprintf(w, "noble_gc_pause_seconds_total %.6f\n", s.GCPauseTotalMs/1e3)
	fmt.Fprintln(w, "# HELP noble_gc_last_pause_seconds Most recent stop-the-world GC pause.")
	fmt.Fprintln(w, "# TYPE noble_gc_last_pause_seconds gauge")
	fmt.Fprintf(w, "noble_gc_last_pause_seconds %.6f\n", s.GCLastPauseMs/1e3)
	fmt.Fprintln(w, "# HELP noble_gc_cpu_fraction Fraction of CPU spent in GC since process start.")
	fmt.Fprintln(w, "# TYPE noble_gc_cpu_fraction gauge")
	fmt.Fprintf(w, "noble_gc_cpu_fraction %.6f\n", s.GCCPUFraction)
}
