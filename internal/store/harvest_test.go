package store

import (
	"reflect"
	"testing"
)

// TestReAnchorFixesMatchRecoveredHistories: harvesting is a pure
// projection of the same Recovery that noble-replay scores, so every
// harvested field must match the recovered event exactly, and the
// returned slices must be copies — mutating a fix must never corrupt
// the replayable history.
func TestReAnchorFixesMatchRecoveredHistories(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir, func(c *Config) { c.Shards = 1 })
	// dev-a: create (seq 1), one steps batch (seq 2), fingerprint fix
	// (seq 3) — the fix carries the steps batch as its motion window.
	writeSession(t, j, "dev-a", 100, 1)
	if err := j.Append(ev(EvReAnchor, "dev-a", 100, 3)); err != nil {
		t.Fatal(err)
	}
	// dev-b: a fix BEFORE any steps (no window), then an explicit
	// anchor (no fingerprint) that must not be harvested.
	if err := j.Append(ev(EvCreate, "dev-b", 200, 1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(ev(EvReAnchor, "dev-b", 200, 2)); err != nil {
		t.Fatal(err)
	}
	bare := ev(EvReAnchor, "dev-b", 200, 3)
	bare.ReAnchor.Fingerprint = nil
	if err := j.Append(bare); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	fixes := rec.ReAnchorFixes()
	if len(fixes) != 2 {
		t.Fatalf("%d fixes harvested, want 2 (fingerprint-less anchors excluded): %+v", len(fixes), fixes)
	}
	byID := map[string]ReAnchorFix{}
	for _, f := range fixes {
		byID[f.Session] = f
	}

	// dev-a: every field mirrors the recovered events.
	var hist *SessionHistory
	for _, h := range rec.Histories {
		if h.ID == "dev-a" {
			hist = h
		}
	}
	if hist == nil {
		t.Fatal("dev-a history missing")
	}
	steps := hist.Events[1].Steps
	anchor := hist.Events[2]
	fa := byID["dev-a"]
	if fa.Gen != anchor.Gen || fa.Seq != anchor.Seq || fa.Time != anchor.Time {
		t.Fatalf("identity fields diverge from the record: %+v vs %+v", fa, anchor)
	}
	if fa.WiFiModel != anchor.ReAnchor.WiFiModel || fa.X != anchor.ReAnchor.X || fa.Y != anchor.ReAnchor.Y {
		t.Fatalf("fix payload diverges: %+v vs %+v", fa, anchor.ReAnchor)
	}
	if !reflect.DeepEqual(fa.Fingerprint, anchor.ReAnchor.Fingerprint) {
		t.Fatalf("fingerprint diverges: %v vs %v", fa.Fingerprint, anchor.ReAnchor.Fingerprint)
	}
	if fa.SegDim != steps.SegDim || !reflect.DeepEqual(fa.Window, steps.Features) {
		t.Fatalf("motion window diverges: dim=%d %v vs dim=%d %v", fa.SegDim, fa.Window, steps.SegDim, steps.Features)
	}

	// dev-b's fix arrived before any steps: no motion window.
	fb := byID["dev-b"]
	if fb.SegDim != 0 || fb.Window != nil {
		t.Fatalf("pre-steps fix must carry no window: %+v", fb)
	}

	// Copy semantics: harvested slices are independent of the history.
	fa.Fingerprint[0] = 42
	fa.Window[0] = 42
	if anchor.ReAnchor.Fingerprint[0] == 42 || steps.Features[0] == 42 {
		t.Fatal("mutating a harvested fix corrupted the recovered history")
	}
}
