// Package store is the durability layer for tracking sessions: a
// per-shard append-only write-ahead log of session lifecycle events
// (create, IMU segment batch, WiFi re-anchor, close/evict) with
// CRC-framed binary records, size-based log rotation, and periodic
// compacted snapshots so recovery cost is bounded by the live-session
// count rather than total history.
//
// The package knows nothing about models or trackers — events and
// snapshots are plain data (floats, strings, ints) that the serving
// layer maps onto core.PathTracker state. That keeps the wire format
// free of model dependencies: a journal recorded by one build restores
// under any build whose models accept the same segment shapes.
//
// Layout on disk, under one state directory:
//
//	shard-00/wal-0000000001.log      CRC-framed event records
//	shard-00/wal-0000000002.log      (rotated when a segment exceeds RotateBytes)
//	shard-00/snapshot-0000000002.snap  compacted state as of the start of wal 2
//	shard-01/...
//
// Sessions hash onto shards by ID, so all events for one session live
// in one shard file sequence and are totally ordered there; the serving
// layer serializes a session's events under the session lock and stamps
// each with a per-session sequence number, which is what makes
// snapshot/WAL overlap safe to replay (see Load).
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// File magics: eight bytes at the start of every segment and snapshot
// file, versioned so a future format bump can coexist during recovery.
const (
	walMagic  = "NOBWAL01"
	snapMagic = "NOBSNP01"
	magicLen  = 8
)

// maxRecordBytes caps one framed record. The largest legitimate record
// is a snapshot of a session with a wide window (window × segDim
// float64s plus anchors), far under this; anything bigger is framing
// corruption and ends the scan of that segment.
const maxRecordBytes = 16 << 20

// frameHeaderLen is the per-record framing overhead: u32 payload length
// plus u32 CRC-32 (IEEE) of the payload.
const frameHeaderLen = 8

// EventType tags one journal record.
type EventType uint8

const (
	// EvCreate starts a session: model binding, origin anchor, window.
	EvCreate EventType = 1
	// EvSteps is one batch of committed IMU segments with their decoded
	// predictions — everything needed to re-Commit them at restore
	// without running inference.
	EvSteps EventType = 2
	// EvReAnchor fuses an absolute fix into the trajectory. The decoded
	// fix position is stored (restore must not need a WiFi model); the
	// fingerprint that produced it rides along for provenance.
	EvReAnchor EventType = 3
	// EvClose ends a session (explicit delete or TTL eviction).
	EvClose EventType = 4

	// recSnapshot tags a compacted per-session state record inside a
	// snapshot file. Never appears in WAL segments.
	recSnapshot EventType = 5

	// EvLifecycle records a model-generation stage transition (shadow →
	// canary → active → retired) made by the serving layer's deployment
	// pipeline. Unlike the session events above it is keyed by model, not
	// session: Session carries a reserved "\x00lifecycle\x00<model>" key so
	// the event shards consistently per model, and recovery collects these
	// records separately instead of folding them into session histories.
	EvLifecycle EventType = 6
)

// String names the event type for logs and metrics labels.
func (t EventType) String() string {
	switch t {
	case EvCreate:
		return "create"
	case EvSteps:
		return "steps"
	case EvReAnchor:
		return "reanchor"
	case EvClose:
		return "close"
	case recSnapshot:
		return "snapshot"
	case EvLifecycle:
		return "lifecycle"
	}
	return fmt.Sprintf("event(%d)", uint8(t))
}

// Event is one journal record. Exactly one of the payload pointers is
// set, matching Type. Seq is the per-session sequence number (1 for the
// create event, monotonically increasing under the session lock); Gen
// identifies the session incarnation (its creation time in unix
// nanoseconds), so a session ID deleted and re-created is never stitched
// together from two lifetimes' records.
type Event struct {
	Type    EventType
	Session string
	Gen     int64 // incarnation: session CreatedAt, unix nanoseconds
	Seq     int64 // per-session sequence, 1-based
	Time    int64 // wall clock of the append, unix nanoseconds

	Create    *CreateEvent
	Steps     *StepsEvent
	ReAnchor  *ReAnchorEvent
	Close     *CloseEvent
	Lifecycle *LifecycleEvent
}

// CreateEvent binds a new session to an IMU model and an origin.
type CreateEvent struct {
	Model  string
	StartX float64
	StartY float64
	Window int // decode window, already clamped by the tracker
	SegDim int
}

// PredRecord is one decoded step estimate: the fields of a
// core.IMUPrediction as plain numbers.
type PredRecord struct {
	EndX, EndY   float64
	Class        int32
	DispX, DispY float64
}

// StepsEvent is a batch of committed tracking steps: Count segments of
// SegDim features each (flat, in commit order) and their predictions.
// Replaying Commit(seg[i], pred[i]) in order reproduces the tracker
// mutation exactly, with no model in the loop.
type StepsEvent struct {
	SegDim   int
	Count    int
	Features []float64    // Count × SegDim
	Preds    []PredRecord // len Count
}

// ReAnchorEvent snaps the trajectory to an absolute fix. WiFiModel and
// Fingerprint record what produced the fix when it came from the
// localize path; both are empty for an explicit anchor.
type ReAnchorEvent struct {
	X, Y        float64
	WiFiModel   string
	Fingerprint []float64
}

// CloseEvent ends a session.
type CloseEvent struct {
	Evicted bool // true for TTL eviction, false for explicit delete
}

// LifecycleEvent is one model-generation stage transition. BundleID is
// the content fingerprint of the bundle the stage applies to — the
// durable identity that survives restarts (in-memory generation numbers
// do not). From is empty for the initial placement of a generation.
type LifecycleEvent struct {
	Model    string
	BundleID string
	From     string
	To       string
	Reason   string
}

// LifecycleKey returns the reserved Session key lifecycle events for a
// model are appended under, so all of one model's transitions land in
// one shard and replay in append order. The NUL framing cannot collide
// with real session IDs arriving over HTTP paths.
func LifecycleKey(model string) string { return "\x00lifecycle\x00" + model }

// TrackerSnapshot is a core.PathTracker's full mutable state as plain
// data: enough to rebuild the tracker bit-identically (window contents,
// per-segment anchors, latest estimate, origin, lifetime step count).
type TrackerSnapshot struct {
	Window   int
	SegDim   int
	OriginX  float64
	OriginY  float64
	Est      PredRecord
	Steps    int
	Segments []float64 // windowed features, oldest first, n × SegDim
	Anchors  []float64 // n anchor points, flat x,y pairs
}

// SessionSnapshot is one live session's compacted state: everything a
// restore needs without replaying the session's event history. Seq is
// the last event sequence folded into this state — WAL records with
// Seq <= this are already reflected and are skipped at load.
type SessionSnapshot struct {
	ID        string
	Model     string
	Gen       int64 // CreatedAt, unix nanoseconds (the incarnation id)
	LastUsed  int64 // unix nanoseconds
	Seq       int64
	Steps     int64 // lifetime committed segments (the session counter)
	ReAnchors int64
	Tracker   TrackerSnapshot
}

// --- binary encoding -------------------------------------------------
//
// Records are little-endian with length-prefixed strings and slices.
// The framing (length + CRC) lives in frame/readFrame; everything below
// is payload layout.

// enc accumulates one record payload. Payloads built here never reach
// disk directly: every caller hands the finished buffer to frame(),
// which prefixes the length and the CRC that covers it.
//
//vet:walframe-codec
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) i32(v int32)  { e.u32(uint32(v)) }
func (e *enc) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *enc) str(s string) {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16] // IDs and model names are short; never hit
	}
	e.u16(uint16(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) floats(v []float64) {
	e.u32(uint32(len(v)))
	for _, f := range v {
		e.f64(f)
	}
}

type dec struct {
	b   []byte
	off int
	bad bool
}

func (d *dec) fail() { d.bad = true }

func (d *dec) take(n int) []byte {
	if d.bad || n < 0 || d.off+n > len(d.b) {
		d.fail()
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

func (d *dec) u8() uint8 {
	v := d.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}
func (d *dec) u16() uint16 {
	v := d.take(2)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(v)
}
func (d *dec) u32() uint32 {
	v := d.take(4)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(v)
}
func (d *dec) u64() uint64 {
	v := d.take(8)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}
func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) i32() int32   { return int32(d.u32()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *dec) str() string  { return string(d.take(int(d.u16()))) }
func (d *dec) floats() []float64 {
	n := int(d.u32())
	// Bound by the remaining bytes before allocating: a corrupt length
	// must not balloon memory.
	if d.bad || n*8 > len(d.b)-d.off {
		d.fail()
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

// done reports a fully-consumed, error-free decode.
func (d *dec) done() bool { return !d.bad && d.off == len(d.b) }

// encodeEvent lays out one event payload.
func encodeEvent(ev *Event) []byte {
	var e enc
	e.u8(uint8(ev.Type))
	e.i64(ev.Time)
	e.i64(ev.Gen)
	e.str(ev.Session)
	e.i64(ev.Seq)
	switch ev.Type {
	case EvCreate:
		c := ev.Create
		e.str(c.Model)
		e.f64(c.StartX)
		e.f64(c.StartY)
		e.u16(uint16(c.Window))
		e.u16(uint16(c.SegDim))
	case EvSteps:
		s := ev.Steps
		e.u16(uint16(s.SegDim))
		e.u16(uint16(s.Count))
		for _, f := range s.Features {
			e.f64(f)
		}
		for _, p := range s.Preds {
			e.f64(p.EndX)
			e.f64(p.EndY)
			e.i32(p.Class)
			e.f64(p.DispX)
			e.f64(p.DispY)
		}
	case EvReAnchor:
		r := ev.ReAnchor
		e.f64(r.X)
		e.f64(r.Y)
		e.str(r.WiFiModel)
		e.floats(r.Fingerprint)
	case EvClose:
		v := uint8(0)
		if ev.Close.Evicted {
			v = 1
		}
		e.u8(v)
	case EvLifecycle:
		l := ev.Lifecycle
		e.str(l.Model)
		e.str(l.BundleID)
		e.str(l.From)
		e.str(l.To)
		e.str(l.Reason)
	}
	return e.b
}

// decodeEvent parses one event payload. A record that does not consume
// its payload exactly is corrupt.
func decodeEvent(b []byte) (Event, error) {
	d := dec{b: b}
	ev := Event{Type: EventType(d.u8())}
	ev.Time = d.i64()
	ev.Gen = d.i64()
	ev.Session = d.str()
	ev.Seq = d.i64()
	switch ev.Type {
	case EvCreate:
		c := &CreateEvent{}
		c.Model = d.str()
		c.StartX = d.f64()
		c.StartY = d.f64()
		c.Window = int(d.u16())
		c.SegDim = int(d.u16())
		ev.Create = c
	case EvSteps:
		s := &StepsEvent{}
		s.SegDim = int(d.u16())
		s.Count = int(d.u16())
		if d.bad || s.SegDim <= 0 || s.Count < 0 || s.Count*s.SegDim*8 > len(b) {
			return ev, fmt.Errorf("store: steps record with implausible shape %d×%d", s.Count, s.SegDim)
		}
		s.Features = make([]float64, s.Count*s.SegDim)
		for i := range s.Features {
			s.Features[i] = d.f64()
		}
		s.Preds = make([]PredRecord, s.Count)
		for i := range s.Preds {
			s.Preds[i] = PredRecord{
				EndX: d.f64(), EndY: d.f64(),
				Class: d.i32(),
				DispX: d.f64(), DispY: d.f64(),
			}
		}
		ev.Steps = s
	case EvReAnchor:
		r := &ReAnchorEvent{}
		r.X = d.f64()
		r.Y = d.f64()
		r.WiFiModel = d.str()
		r.Fingerprint = d.floats()
		ev.ReAnchor = r
	case EvClose:
		ev.Close = &CloseEvent{Evicted: d.u8() == 1}
	case EvLifecycle:
		l := &LifecycleEvent{}
		l.Model = d.str()
		l.BundleID = d.str()
		l.From = d.str()
		l.To = d.str()
		l.Reason = d.str()
		ev.Lifecycle = l
	default:
		return ev, fmt.Errorf("store: unknown record type %d", uint8(ev.Type))
	}
	if !d.done() {
		return ev, fmt.Errorf("store: %s record has %d trailing or missing bytes", ev.Type, len(b)-d.off)
	}
	return ev, nil
}

// encodeSnapshot lays out one session snapshot payload.
func encodeSnapshot(s *SessionSnapshot) []byte {
	var e enc
	e.u8(uint8(recSnapshot))
	e.str(s.ID)
	e.str(s.Model)
	e.i64(s.Gen)
	e.i64(s.LastUsed)
	e.i64(s.Seq)
	e.i64(s.Steps)
	e.i64(s.ReAnchors)
	t := &s.Tracker
	e.u16(uint16(t.Window))
	e.u16(uint16(t.SegDim))
	e.f64(t.OriginX)
	e.f64(t.OriginY)
	e.f64(t.Est.EndX)
	e.f64(t.Est.EndY)
	e.i32(t.Est.Class)
	e.f64(t.Est.DispX)
	e.f64(t.Est.DispY)
	e.u32(uint32(t.Steps))
	e.floats(t.Segments)
	e.floats(t.Anchors)
	return e.b
}

// decodeSnapshot parses one session snapshot payload.
func decodeSnapshot(b []byte) (SessionSnapshot, error) {
	d := dec{b: b}
	var s SessionSnapshot
	if t := EventType(d.u8()); t != recSnapshot {
		return s, fmt.Errorf("store: record type %s in snapshot file", t)
	}
	s.ID = d.str()
	s.Model = d.str()
	s.Gen = d.i64()
	s.LastUsed = d.i64()
	s.Seq = d.i64()
	s.Steps = d.i64()
	s.ReAnchors = d.i64()
	t := &s.Tracker
	t.Window = int(d.u16())
	t.SegDim = int(d.u16())
	t.OriginX = d.f64()
	t.OriginY = d.f64()
	t.Est = PredRecord{
		EndX: d.f64(), EndY: d.f64(),
		Class: d.i32(),
		DispX: d.f64(), DispY: d.f64(),
	}
	t.Steps = int(d.u32())
	t.Segments = d.floats()
	t.Anchors = d.floats()
	if !d.done() {
		return s, fmt.Errorf("store: snapshot record has %d trailing or missing bytes", len(b)-d.off)
	}
	return s, nil
}

// frame wraps a payload in the on-disk record framing.
func frame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}
