package store

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// FsyncPolicy decides when appended records become crash-durable.
type FsyncPolicy int

const (
	// FsyncInterval flushes and fsyncs every Config.SyncInterval from the
	// background Run loop: the default, bounding loss to one interval of
	// appends while keeping fsync entirely off the request path.
	FsyncInterval FsyncPolicy = iota
	// FsyncNever leaves flushing to the buffered writer (when its buffer
	// fills, on rotation, and on Close) and never calls fsync. Fastest;
	// a crash loses the buffered tail and the OS page cache.
	FsyncNever
	// FsyncAlways flushes and fsyncs before each request's Commit
	// returns, with group commit: concurrent committers on one shard
	// share a single fsync, so the cost amortizes under load.
	FsyncAlways
)

// String renders the policy as its flag spelling.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncNever:
		return "never"
	case FsyncAlways:
		return "always"
	default:
		return "interval"
	}
}

// ParseFsyncPolicy parses the -fsync flag value.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "never":
		return FsyncNever, nil
	case "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want never, interval, or always)", s)
}

// Config assembles a Journal.
type Config struct {
	// Dir is the state directory; created if absent. Required.
	Dir string
	// Shards is the number of independent log sequences (default 8).
	// Sessions hash onto shards by ID; one shard's appends serialize on
	// one mutex, so more shards mean less append contention and more
	// open files. Changing the count across restarts is safe — recovery
	// scans whatever shard directories exist.
	Shards int
	// RotateBytes caps one WAL segment (default 8 MiB); an append that
	// would exceed it rotates to a fresh segment first.
	RotateBytes int64
	// Fsync is the durability policy (default FsyncInterval).
	Fsync FsyncPolicy
	// SyncInterval is the Run loop's flush+fsync cadence for
	// FsyncInterval (default 100ms).
	SyncInterval time.Duration
	// Logf receives operational messages (default log.Printf).
	Logf func(format string, args ...any)
}

// Journal is the write side of the session WAL: Append records events,
// Commit applies the fsync policy at request boundaries, Compact writes
// snapshots and prunes replayed segments, Recover reads the directory
// back into a Recovery. All methods are safe for concurrent use.
type Journal struct {
	cfg    Config
	shards []*walShard

	// Counters for /metrics; the per-shard dirty state backs the lag and
	// unsynced-bytes gauges.
	appends      [7]atomic.Int64 // indexed by EventType (0 and recSnapshot unused)
	appendErrors atomic.Int64
	bytes        atomic.Int64
	rotations    atomic.Int64
	syncs        atomic.Int64
	syncErrors   atomic.Int64
	snapshots    atomic.Int64
	recovered    atomic.Int64 // sessions restored at startup
	recSkipped   atomic.Int64 // sessions dropped at restore (model gone, damaged)
	recTorn      atomic.Int64 // torn/corrupt records dropped at startup
}

// walShard is one independent log sequence. mu guards the open segment
// (file, buffered writer, size, seq); syncMu serializes fsyncs so that
// concurrent Commit callers group-commit on one sync.
type walShard struct {
	idx int
	dir string

	mu         sync.Mutex
	closed     bool // Close ran: no append or rotation may reopen a segment
	f          *os.File
	w          *bufio.Writer
	seq        int64 // current segment number
	size       int64
	dirtySince time.Time // zero when everything written is synced
	unsynced   int64     // bytes appended since the last sync
	appended   int64     // records appended since the last compaction

	syncMu sync.Mutex
}

// Open prepares dir for appends: shard directories are created, the
// next segment number per shard is chosen past everything on disk, and
// a fresh segment is opened (appends never share a file with a previous
// process's tail, so recovery and appending are independent). Call
// Recover before serving traffic to read the previous state back.
func Open(cfg Config) (*Journal, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("store: Config.Dir is required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.RotateBytes <= 0 {
		cfg.RotateBytes = 8 << 20
	}
	if cfg.SyncInterval <= 0 {
		cfg.SyncInterval = 100 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	j := &Journal{cfg: cfg}
	for i := 0; i < cfg.Shards; i++ {
		dir := filepath.Join(cfg.Dir, shardDirName(i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: creating shard dir: %w", err)
		}
		files, err := listShardFiles(dir)
		if err != nil {
			return nil, err
		}
		sh := &walShard{idx: i, dir: dir, seq: files.maxSeq() + 1}
		if len(files.wals) > 0 || files.snapSeq > 0 {
			// Pre-existing history: force the first compaction pass to
			// run even before new appends, so stale segments get folded
			// into a snapshot and pruned.
			sh.appended = 1
		}
		if err := sh.openSegment(); err != nil {
			return nil, err
		}
		j.shards = append(j.shards, sh)
	}
	return j, nil
}

// Shards returns the shard count.
func (j *Journal) Shards() int { return len(j.shards) }

// ShardFor hashes a session ID onto its shard (FNV-1a, like the session
// store's striping but over the journal's own width).
func (j *Journal) ShardFor(id string) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return int(h % uint32(len(j.shards)))
}

// Dir returns the state directory.
func (j *Journal) Dir() string { return j.cfg.Dir }

// Fsync returns the configured durability policy.
func (j *Journal) Fsync() FsyncPolicy { return j.cfg.Fsync }

// Append writes one event record into the session's shard. The write
// lands in the shard's buffered writer; durability follows the fsync
// policy (see Commit and Run). Append itself never fsyncs, so it is
// cheap enough to run under the session lock, which is what keeps one
// session's records in mutation order.
func (j *Journal) Append(ev *Event) error {
	if (ev.Type < EvCreate || ev.Type > EvClose) && ev.Type != EvLifecycle {
		return fmt.Errorf("store: appending record of type %s", ev.Type)
	}
	payload := encodeEvent(ev)
	sh := j.shards[j.ShardFor(ev.Session)]
	n, err := sh.append(j, payload)
	if err != nil {
		j.appendErrors.Add(1)
		return err
	}
	j.appends[ev.Type].Add(1)
	j.bytes.Add(int64(n))
	return nil
}

// append frames and writes one payload, rotating first when the segment
// is full.
func (sh *walShard) append(j *Journal, payload []byte) (int, error) {
	rec := frame(make([]byte, 0, frameHeaderLen+len(payload)), payload)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed || sh.f == nil {
		// Close won the race against a straggling handler (drain timeout
		// expired): fail the append instead of panicking on a nil writer;
		// the caller logs and counts it.
		return 0, fmt.Errorf("store: journal is closed")
	}
	if sh.size > magicLen && sh.size+int64(len(rec)) > j.cfg.RotateBytes {
		if err := sh.rotateLocked(j); err != nil {
			return 0, err
		}
	}
	if _, err := sh.w.Write(rec); err != nil {
		return 0, err
	}
	sh.size += int64(len(rec))
	sh.unsynced += int64(len(rec))
	sh.appended++
	if sh.dirtySince.IsZero() {
		sh.dirtySince = time.Now()
	}
	return len(rec), nil
}

// rotateLocked closes the current segment (flushed and fsynced — a
// closed segment is always durable and never torn mid-file) and opens
// the next. Caller holds sh.mu.
func (sh *walShard) rotateLocked(j *Journal) error {
	if sh.closed {
		// A compaction in flight at shutdown must fail cleanly here: were
		// rotation allowed to proceed it would reopen a fresh segment after
		// Journal.Close, leaking an open file past process teardown.
		return fmt.Errorf("store: journal is closed")
	}
	if err := sh.closeSegmentLocked(); err != nil {
		return err
	}
	sh.seq++
	if err := sh.openSegment(); err != nil {
		return err
	}
	j.rotations.Add(1)
	return nil
}

// closeSegmentLocked flushes, fsyncs, and closes the open segment.
func (sh *walShard) closeSegmentLocked() error {
	if sh.f == nil {
		return nil
	}
	if err := sh.w.Flush(); err != nil {
		return err
	}
	if err := sh.f.Sync(); err != nil {
		return err
	}
	sh.dirtySince = time.Time{}
	sh.unsynced = 0
	err := sh.f.Close()
	sh.f, sh.w = nil, nil
	return err
}

// openSegment creates wal-<seq> and writes the file magic.
func (sh *walShard) openSegment() error {
	if sh.closed {
		// Defense in depth behind rotateLocked's guard: no path may
		// re-materialise segment files after Close (the PR-6 compaction
		// resurrection bug), including any future caller added here.
		return fmt.Errorf("store: journal is closed")
	}
	path := filepath.Join(sh.dir, walFileName(sh.seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening segment: %w", err)
	}
	sh.f = f
	sh.w = bufio.NewWriterSize(f, 64<<10)
	if _, err := sh.w.WriteString(walMagic); err != nil {
		return err
	}
	// Flush the magic immediately: a scan of the directory (Recover on
	// this very process's freshly-opened segments, or an operator's
	// offline Load) must see a well-formed empty segment, not a 0-byte
	// file that reads as a torn header.
	if err := sh.w.Flush(); err != nil {
		return err
	}
	sh.size = magicLen
	return nil
}

// syncNow flushes the shard's buffer and fsyncs the segment. The sync
// mutex gives group commit: callers that pile up behind an in-flight
// sync find their bytes already durable when they acquire it and return
// without a second fsync. On failure the shard stays (or goes back to)
// dirty, so the gauges keep showing the unsynced bytes and the next
// sync retries — an acked-but-not-durable window is never silent.
func (sh *walShard) syncNow(j *Journal) error {
	sh.syncMu.Lock()
	defer sh.syncMu.Unlock()
	sh.mu.Lock()
	if sh.dirtySince.IsZero() || sh.f == nil {
		sh.mu.Unlock()
		return nil
	}
	f := sh.f
	err := sh.w.Flush()
	var cleared int64
	if err == nil {
		cleared = sh.unsynced
		sh.dirtySince = time.Time{}
		sh.unsynced = 0
	}
	sh.mu.Unlock()
	if err != nil {
		j.syncErrors.Add(1)
		return err
	}
	// fsync outside sh.mu: appends continue into the buffer while the
	// kernel writes; syncMu still serializes against the next sync.
	if err := f.Sync(); err != nil {
		// A rotation may have closed f after we released sh.mu — its own
		// flush+fsync already made every byte in that file durable, so a
		// closed file is success, not failure.
		if !errors.Is(err, os.ErrClosed) {
			j.syncErrors.Add(1)
			sh.mu.Lock()
			sh.unsynced += cleared
			if sh.dirtySince.IsZero() {
				sh.dirtySince = time.Now()
			}
			sh.mu.Unlock()
			return err
		}
	}
	j.syncs.Add(1)
	return nil
}

// Commit marks a request boundary for one session's shard: under
// FsyncAlways the caller's appended records are flushed and fsynced
// (group-committed) before it returns; under the other policies it is a
// no-op and durability rides the Run loop or the buffer.
func (j *Journal) Commit(id string) error {
	if j.cfg.Fsync != FsyncAlways {
		return nil
	}
	return j.shards[j.ShardFor(id)].syncNow(j)
}

// Sync flushes and fsyncs every shard regardless of policy.
func (j *Journal) Sync() error {
	var firstErr error
	for _, sh := range j.shards {
		if err := sh.syncNow(j); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Run drives the FsyncInterval policy: flush+fsync all dirty shards
// every SyncInterval until ctx is done. Under other policies it returns
// immediately.
func (j *Journal) Run(ctx context.Context) {
	if j.cfg.Fsync != FsyncInterval {
		return
	}
	t := time.NewTicker(j.cfg.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := j.Sync(); err != nil {
				j.cfg.Logf("store: journal sync: %v", err)
			}
		}
	}
}

// Close flushes, fsyncs, and closes every shard. The journal must not
// be appended to afterwards: the closed flag makes any straggling
// append, rotation, or in-flight compaction fail cleanly instead of
// writing into (or reopening) a segment behind the shutdown.
func (j *Journal) Close() error {
	var firstErr error
	for _, sh := range j.shards {
		sh.syncMu.Lock()
		sh.mu.Lock()
		sh.closed = true
		if err := sh.closeSegmentLocked(); err != nil && firstErr == nil {
			firstErr = err
		}
		sh.mu.Unlock()
		sh.syncMu.Unlock()
	}
	return firstErr
}

// Recover reads the state directory (snapshots plus WAL segments) back
// into a Recovery and records the restore stats for /metrics. Call once
// after Open, before serving traffic.
func (j *Journal) Recover() (*Recovery, error) {
	rec, err := Load(j.cfg.Dir)
	if err != nil {
		return nil, err
	}
	j.recTorn.Store(rec.Stats.TornRecords + rec.Stats.BadRecords)
	return rec, nil
}

// NoteRecovered records the outcome of the serving layer's session
// restore for the recovered-session gauges.
func (j *Journal) NoteRecovered(restored, skipped int) {
	j.recovered.Store(int64(restored))
	j.recSkipped.Store(int64(skipped))
}

// Compact bounds recovery cost, in two phases. Phase one, per shard:
// rotate to a fresh segment, ask collect for snapshots of the live
// sessions hashing to that shard, and write them to a snapshot file
// (atomically, via rename). Phase two — only if EVERY shard's snapshot
// landed — prune the WAL segments and snapshots the new snapshots
// supersede. The all-or-nothing prune matters when the shard count
// changed across a restart: a session's base state may still live in
// another shard's old snapshot, so nothing is deleted until every
// session's new home is durable; a crash between the phases merely
// leaves stale files whose records Load skips by sequence number.
//
// collect runs without any journal lock held, so it may take session
// locks (and append retained records) freely; appends racing the
// collection land in the fresh segment and are replay-deduplicated by
// per-session sequence numbers (a snapshot taken after such an append
// carries a Seq at or past it, so Load skips the duplicate record).
func (j *Journal) Compact(collect func(shard int) []SessionSnapshot) error {
	boundaries := make([]int64, len(j.shards)) // 0 = skipped (idle shard)
	for i, sh := range j.shards {
		b, err := j.snapshotShard(sh, collect)
		if err != nil {
			j.cfg.Logf("store: snapshotting shard %d: %v", i, err)
			return err // prune nothing this round; retry next tick
		}
		boundaries[i] = b
	}
	var firstErr error
	for i, sh := range j.shards {
		if boundaries[i] == 0 {
			continue
		}
		if err := sh.prune(boundaries[i]); err != nil {
			j.cfg.Logf("store: pruning shard %d: %v", i, err)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// snapshotShard writes one shard's compaction snapshot and returns the
// boundary segment number it covers up to (0 when the shard was idle
// and skipped).
func (j *Journal) snapshotShard(sh *walShard, collect func(shard int) []SessionSnapshot) (int64, error) {
	sh.mu.Lock()
	if sh.appended == 0 {
		// Nothing recorded since the last compaction: a fresh snapshot
		// would say exactly what the last one said. Skipping also stops
		// an idle server from churning snapshot files forever.
		sh.mu.Unlock()
		return 0, nil
	}
	if err := sh.rotateLocked(j); err != nil {
		sh.mu.Unlock()
		return 0, err
	}
	sh.appended = 0
	boundary := sh.seq // snapshot covers everything before wal-<boundary>
	sh.mu.Unlock()

	snaps := collect(sh.idx)
	final := filepath.Join(sh.dir, snapFileName(boundary))
	tmp := final + ".tmp"
	if err := writeSnapshotFile(tmp, snaps); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, final); err != nil {
		return 0, err
	}
	syncDir(sh.dir)
	j.snapshots.Add(1)
	return boundary, nil
}

// writeSnapshotFile writes one complete snapshot file: magic, a framed
// record per session, flushed, fsynced, closed. The Close error is
// propagated on every path — a close can be the first place write-back
// failure surfaces, and swallowing it would let the caller rename a
// snapshot whose buffered bytes never reached disk and then prune the
// WAL segments that held the only durable copy.
func writeSnapshotFile(path string, snaps []SessionSnapshot) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 64<<10)
	err = func() error {
		if _, err := w.WriteString(snapMagic); err != nil {
			return err
		}
		for i := range snaps {
			if _, err := w.Write(frame(nil, encodeSnapshot(&snaps[i]))); err != nil {
				return err
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// prune removes the files a snapshot at the given boundary supersedes.
func (sh *walShard) prune(boundary int64) error {
	files, err := listShardFiles(sh.dir)
	if err != nil {
		return err
	}
	for _, wf := range files.wals {
		if wf.seq < boundary {
			os.Remove(filepath.Join(sh.dir, wf.name))
		}
	}
	for _, sf := range files.snaps {
		if sf.seq < boundary {
			os.Remove(filepath.Join(sh.dir, sf.name))
		}
	}
	return nil
}

// syncDir fsyncs a directory so renames and removals are durable; best
// effort (some filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// WritePrometheus renders the journal gauges and counters in the
// Prometheus text exposition format.
func (j *Journal) WritePrometheus(w io.Writer) {
	var unsynced int64
	var lag time.Duration
	now := time.Now()
	for _, sh := range j.shards {
		sh.mu.Lock()
		unsynced += sh.unsynced
		if !sh.dirtySince.IsZero() {
			if d := now.Sub(sh.dirtySince); d > lag {
				lag = d
			}
		}
		sh.mu.Unlock()
	}
	fmt.Fprintln(w, "# HELP noble_journal_appends_total Events appended to the journal, by event type.")
	fmt.Fprintln(w, "# TYPE noble_journal_appends_total counter")
	for _, t := range []EventType{EvCreate, EvSteps, EvReAnchor, EvClose, EvLifecycle} {
		fmt.Fprintf(w, "noble_journal_appends_total{event=%q} %d\n", t.String(), j.appends[t].Load())
	}
	fmt.Fprintln(w, "# HELP noble_journal_append_errors_total Journal append failures (events lost to the journal, serving unaffected).")
	fmt.Fprintln(w, "# TYPE noble_journal_append_errors_total counter")
	fmt.Fprintf(w, "noble_journal_append_errors_total %d\n", j.appendErrors.Load())
	fmt.Fprintln(w, "# HELP noble_journal_bytes_total Framed record bytes appended.")
	fmt.Fprintln(w, "# TYPE noble_journal_bytes_total counter")
	fmt.Fprintf(w, "noble_journal_bytes_total %d\n", j.bytes.Load())
	fmt.Fprintln(w, "# HELP noble_journal_unsynced_bytes Appended bytes not yet flushed+fsynced.")
	fmt.Fprintln(w, "# TYPE noble_journal_unsynced_bytes gauge")
	fmt.Fprintf(w, "noble_journal_unsynced_bytes %d\n", unsynced)
	fmt.Fprintln(w, "# HELP noble_journal_lag_seconds Age of the oldest unsynced append (0 when clean).")
	fmt.Fprintln(w, "# TYPE noble_journal_lag_seconds gauge")
	fmt.Fprintf(w, "noble_journal_lag_seconds %.6f\n", lag.Seconds())
	fmt.Fprintln(w, "# HELP noble_journal_rotations_total WAL segment rotations.")
	fmt.Fprintln(w, "# TYPE noble_journal_rotations_total counter")
	fmt.Fprintf(w, "noble_journal_rotations_total %d\n", j.rotations.Load())
	fmt.Fprintln(w, "# HELP noble_journal_syncs_total Explicit flush+fsync operations.")
	fmt.Fprintln(w, "# TYPE noble_journal_syncs_total counter")
	fmt.Fprintf(w, "noble_journal_syncs_total %d\n", j.syncs.Load())
	fmt.Fprintln(w, "# HELP noble_journal_sync_errors_total Failed flush+fsync attempts (the shard stays dirty and is retried).")
	fmt.Fprintln(w, "# TYPE noble_journal_sync_errors_total counter")
	fmt.Fprintf(w, "noble_journal_sync_errors_total %d\n", j.syncErrors.Load())
	fmt.Fprintln(w, "# HELP noble_journal_snapshots_total Compaction snapshots written.")
	fmt.Fprintln(w, "# TYPE noble_journal_snapshots_total counter")
	fmt.Fprintf(w, "noble_journal_snapshots_total %d\n", j.snapshots.Load())
	fmt.Fprintln(w, "# HELP noble_journal_recovered_sessions Sessions restored from the journal at startup.")
	fmt.Fprintln(w, "# TYPE noble_journal_recovered_sessions gauge")
	fmt.Fprintf(w, "noble_journal_recovered_sessions %d\n", j.recovered.Load())
	fmt.Fprintln(w, "# HELP noble_journal_recovery_skipped_sessions Sessions in the journal that could not be restored (model missing or history damaged).")
	fmt.Fprintln(w, "# TYPE noble_journal_recovery_skipped_sessions gauge")
	fmt.Fprintf(w, "noble_journal_recovery_skipped_sessions %d\n", j.recSkipped.Load())
	fmt.Fprintln(w, "# HELP noble_journal_torn_records_total Torn or corrupt records dropped at the last recovery.")
	fmt.Fprintln(w, "# TYPE noble_journal_torn_records_total gauge")
	fmt.Fprintf(w, "noble_journal_torn_records_total %d\n", j.recTorn.Load())
}

// --- file naming -----------------------------------------------------

func shardDirName(i int) string     { return fmt.Sprintf("shard-%02d", i) }
func walFileName(seq int64) string  { return fmt.Sprintf("wal-%010d.log", seq) }
func snapFileName(seq int64) string { return fmt.Sprintf("snapshot-%010d.snap", seq) }

// shardFile is one parsed directory entry.
type shardFile struct {
	name string
	seq  int64
}

// shardFiles is a shard directory listing split by kind, ascending seq.
type shardFiles struct {
	wals    []shardFile
	snaps   []shardFile
	snapSeq int64 // largest snapshot seq (0 if none)
}

func (f *shardFiles) maxSeq() int64 {
	max := f.snapSeq
	for _, w := range f.wals {
		if w.seq > max {
			max = w.seq
		}
	}
	return max
}

// listShardFiles parses a shard directory. Unrecognized files are
// ignored (a .tmp snapshot from a crashed compaction, stray editors).
func listShardFiles(dir string) (*shardFiles, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := &shardFiles{}
	for _, e := range entries {
		name := e.Name()
		var seq int64
		switch {
		case parseSeq(name, "wal-", ".log", &seq):
			out.wals = append(out.wals, shardFile{name: name, seq: seq})
		case parseSeq(name, "snapshot-", ".snap", &seq):
			out.snaps = append(out.snaps, shardFile{name: name, seq: seq})
			if seq > out.snapSeq {
				out.snapSeq = seq
			}
		}
	}
	sortShardFiles(out.wals)
	sortShardFiles(out.snaps)
	return out, nil
}

func sortShardFiles(files []shardFile) {
	for i := 1; i < len(files); i++ { // tiny lists; insertion sort
		for k := i; k > 0 && files[k].seq < files[k-1].seq; k-- {
			files[k], files[k-1] = files[k-1], files[k]
		}
	}
}

// parseSeq extracts the sequence number from "<prefix><digits><suffix>".
func parseSeq(name, prefix, suffix string, out *int64) bool {
	if len(name) <= len(prefix)+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return false
	}
	digits := name[len(prefix) : len(name)-len(suffix)]
	var n int64
	for i := 0; i < len(digits); i++ {
		c := digits[i]
		if c < '0' || c > '9' {
			return false
		}
		n = n*10 + int64(c-'0')
	}
	*out = n
	return true
}
