package store

// This file is the journal's read-side harvest API: it turns a loaded
// Recovery into the training evidence the retraining loop consumes
// (see internal/retrain). A WiFi re-anchor fix is the paper's free
// supervision — a fingerprint labeled by the position the deployment
// accepted as ground truth — and the WAL already records both halves
// of that pair, so harvesting is a pure scan over recovered histories:
// no new on-disk format, no write path, and the exact same view of the
// journal that noble-replay's scorer replays.

// ReAnchorFix is one harvested supervision pair: the WiFi fingerprint
// a session submitted and the absolute fix the trajectory was snapped
// to, plus the committed IMU segment batch that immediately preceded
// the fix (the motion context, kept for provenance and future IMU
// retraining). Explicit anchors (no fingerprint) are not fixes and are
// never harvested.
type ReAnchorFix struct {
	Session string // session ID
	Gen     int64  // session incarnation (CreatedAt unix nanoseconds)
	Seq     int64  // per-session sequence of the re-anchor record
	Time    int64  // wall clock of the append, unix nanoseconds

	WiFiModel   string    // model that produced the fix
	Fingerprint []float64 // normalized model-input vector, as served
	X, Y        float64   // the accepted fix position

	// Preceding committed IMU window (zero/nil when the fix arrived
	// before any steps, or when the steps were compacted away).
	SegDim int
	Window []float64
}

// ReAnchorFixes scans every recovered session history — live and
// closed — and extracts the fingerprint-carrying re-anchor fixes in
// per-session (Gen, Seq) order. Fixes folded into a compacted snapshot
// are unrecoverable (snapshots keep tracker state, not fingerprints),
// which is why the retraining harvester runs on a schedule instead of
// once: each harvest drains the fixes still visible in the segment
// files before compaction retires them.
func (r *Recovery) ReAnchorFixes() []ReAnchorFix {
	var out []ReAnchorFix
	for _, h := range r.Histories {
		var lastSteps *StepsEvent
		for i := range h.Events {
			ev := &h.Events[i]
			switch ev.Type {
			case EvSteps:
				lastSteps = ev.Steps
			case EvReAnchor:
				ra := ev.ReAnchor
				if ra == nil || len(ra.Fingerprint) == 0 {
					continue
				}
				fix := ReAnchorFix{
					Session:     h.ID,
					Gen:         ev.Gen,
					Seq:         ev.Seq,
					Time:        ev.Time,
					WiFiModel:   ra.WiFiModel,
					Fingerprint: append([]float64(nil), ra.Fingerprint...),
					X:           ra.X,
					Y:           ra.Y,
				}
				if lastSteps != nil {
					fix.SegDim = lastSteps.SegDim
					fix.Window = append([]float64(nil), lastSteps.Features...)
				}
				out = append(out, fix)
			}
		}
	}
	return out
}
