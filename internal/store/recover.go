package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// SessionHistory is everything the journal knows about one session
// incarnation: an optional compacted snapshot plus the event records
// appended after it, in order. Closed marks a session that ended (delete
// or eviction) — recovery skips it, replay tears it down at the recorded
// moment.
type SessionHistory struct {
	ID       string
	Gen      int64 // incarnation (CreatedAt unix nanoseconds)
	Snapshot *SessionSnapshot
	Events   []Event // post-snapshot records, per-session order
	Closed   bool
	Evicted  bool  // how it closed, when Closed
	LastSeq  int64 // last applied sequence number
	LastTime int64 // timestamp of the last record (or snapshot LastUsed)
	Damaged  bool  // sequence gap observed; state not trustworthy
}

// RestoreStats summarizes a Load.
type RestoreStats struct {
	Shards       int
	Segments     int   // WAL segment files scanned
	Records      int64 // event records decoded
	TornRecords  int64 // frames dropped at torn tails (crash mid-write)
	BadRecords   int64 // frames whose payload failed to decode
	SkippedStale int64 // records superseded by a snapshot or an older incarnation
	OrphanEvents int64 // events for sessions with no visible create/snapshot
	Damaged      int   // sessions dropped for sequence gaps
	Live         int
	Closed       int
}

// Recovery is a loaded state directory: one history per session ID (the
// latest incarnation), in first-seen order for deterministic restores.
type Recovery struct {
	Histories []*SessionHistory
	Stats     RestoreStats

	// Lifecycle holds the model-generation stage transitions scanned from
	// the WAL, in scan order (segments ascend within a shard, and one
	// model's events all live in one shard, so per-model order is append
	// order). These never fold into session histories; the serving layer
	// reduces them to the latest stage per (model, bundle).
	Lifecycle []Event

	byID    map[string]*SessionHistory
	pending map[string][]Event // raw scanned events, folded by finish()
	order   []string           // session first-seen order
}

// Live returns the restorable (non-closed, non-damaged) histories.
func (r *Recovery) Live() []*SessionHistory {
	out := make([]*SessionHistory, 0, len(r.Histories))
	for _, h := range r.Histories {
		if !h.Closed && !h.Damaged {
			out = append(out, h)
		}
	}
	return out
}

// Span returns the earliest and latest record timestamps observed
// (unix nanoseconds); zeros when the journal is empty.
func (r *Recovery) Span() (first, last int64) {
	for _, h := range r.Histories {
		for _, ev := range h.Events {
			if first == 0 || ev.Time < first {
				first = ev.Time
			}
			if ev.Time > last {
				last = ev.Time
			}
		}
	}
	return first, last
}

// Load reads a state directory written by a Journal: for every shard
// directory it loads the newest fully-valid snapshot and scans the WAL
// segments at or past the snapshot boundary; the scanned records are
// then sorted per session by (Gen, Seq) and folded into histories.
//
// The sort makes recovery independent of where and in what order
// records landed on disk: per-session sequence numbers are a total
// order assigned under the session lock, so records may arrive from
// different shard files (the shard count changed across restarts) or
// slightly out of file order (a create published before its record was
// appended) and still fold correctly.
//
// Crash tolerance: a torn or corrupt frame ends the scan of that one
// segment (dropping only the tail — rotation fsyncs closed segments, so
// mid-file tears only ever appear in the segment open at the crash);
// records already covered by a snapshot or belonging to an older
// incarnation of a re-used session ID are skipped by (Gen, Seq); a
// sequence gap — a lost or hand-deleted file — marks the session
// Damaged rather than restoring a half-true state.
func Load(dir string) (*Recovery, error) {
	rec := &Recovery{
		byID:    map[string]*SessionHistory{},
		pending: map[string][]Event{},
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return rec, nil
		}
		return nil, err
	}
	var shardDirs []string
	for _, e := range entries {
		var n int64
		if e.IsDir() && parseSeq(e.Name(), "shard-", "", &n) {
			shardDirs = append(shardDirs, e.Name())
		}
	}
	sort.Strings(shardDirs)

	rec.Stats.Shards = len(shardDirs)
	for _, sd := range shardDirs {
		if err := loadShard(rec, filepath.Join(dir, sd)); err != nil {
			return nil, fmt.Errorf("store: loading %s: %w", sd, err)
		}
	}
	rec.finish()
	return rec, nil
}

// finish folds the scanned events — per session, in (Gen, Seq) order —
// and settles the stats.
func (r *Recovery) finish() {
	for _, id := range r.order {
		evs := r.pending[id]
		sort.SliceStable(evs, func(i, k int) bool {
			if evs[i].Gen != evs[k].Gen {
				return evs[i].Gen < evs[k].Gen
			}
			return evs[i].Seq < evs[k].Seq
		})
		for i := range evs {
			fold(r, evs[i])
		}
	}
	r.pending, r.order = nil, nil
	for _, h := range r.Histories {
		switch {
		case h.Damaged:
			r.Stats.Damaged++
		case h.Closed:
			r.Stats.Closed++
		default:
			r.Stats.Live++
		}
	}
}

// enqueue stages one scanned record for the sorted fold. Lifecycle
// records are model-keyed, not session-keyed: they are collected aside,
// never entering the per-session (Gen, Seq) fold.
func (r *Recovery) enqueue(ev Event) {
	if ev.Type == EvLifecycle {
		if ev.Lifecycle != nil {
			r.Lifecycle = append(r.Lifecycle, ev)
		}
		return
	}
	if _, seen := r.pending[ev.Session]; !seen {
		r.order = append(r.order, ev.Session)
	}
	r.pending[ev.Session] = append(r.pending[ev.Session], ev)
}

func loadShard(rec *Recovery, dir string) error {
	files, err := listShardFiles(dir)
	if err != nil {
		return err
	}

	// Newest fully-valid snapshot wins; on any parse failure fall back
	// to the next older one (and replay correspondingly older segments).
	boundary := int64(0)
	for i := len(files.snaps) - 1; i >= 0; i-- {
		sf := files.snaps[i]
		snaps, err := readSnapshotFile(filepath.Join(dir, sf.name))
		if err != nil {
			rec.Stats.BadRecords++
			continue
		}
		for k := range snaps {
			seedSnapshot(rec, &snaps[k])
		}
		boundary = sf.seq
		break
	}

	for _, wf := range files.wals {
		if wf.seq < boundary {
			continue // fully covered by the snapshot; normally pruned
		}
		rec.Stats.Segments++
		if err := scanSegment(rec, filepath.Join(dir, wf.name)); err != nil {
			return err
		}
	}
	return nil
}

// seedSnapshot installs a compacted session state as the base of its
// history. When two snapshots describe the same incarnation (a stale
// one lingering after an interrupted compaction, or the session's home
// shard changed with the shard count), the one with the higher Seq —
// more folded history — wins.
func seedSnapshot(rec *Recovery, s *SessionSnapshot) {
	h := rec.byID[s.ID]
	if h != nil && (h.Gen > s.Gen || (h.Gen == s.Gen && h.LastSeq >= s.Seq)) {
		return
	}
	if h == nil {
		h = &SessionHistory{ID: s.ID}
		rec.byID[s.ID] = h
		rec.Histories = append(rec.Histories, h)
	}
	*h = SessionHistory{
		ID:       s.ID,
		Gen:      s.Gen,
		Snapshot: s,
		LastSeq:  s.Seq,
		LastTime: s.LastUsed,
	}
}

// fold applies one WAL record to its session history.
func fold(rec *Recovery, ev Event) {
	h := rec.byID[ev.Session]
	if ev.Type == EvCreate {
		switch {
		case h == nil:
			h = &SessionHistory{ID: ev.Session}
			rec.byID[ev.Session] = h
			rec.Histories = append(rec.Histories, h)
		case ev.Gen > h.Gen:
			// Same ID, newer incarnation: the old lifetime is over
			// (closed, or lost to an unclean shutdown) — restart the
			// history from this create.
			*h = SessionHistory{ID: ev.Session}
		case ev.Gen < h.Gen:
			rec.Stats.SkippedStale++
			return
		default: // same incarnation, duplicate create (snapshot overlap)
			if ev.Seq <= h.LastSeq {
				rec.Stats.SkippedStale++
				return
			}
			h.Damaged = true // a second create mid-incarnation is nonsense
			return
		}
		h.Gen = ev.Gen
		h.Events = append(h.Events, ev)
		h.LastSeq = ev.Seq
		h.LastTime = ev.Time
		return
	}

	switch {
	case h == nil:
		// No create and no snapshot in view: either the session closed
		// before the last compaction (its create was pruned with the
		// segment) or records were lost. Nothing to attach to.
		rec.Stats.OrphanEvents++
		return
	case ev.Gen != h.Gen:
		rec.Stats.SkippedStale++
		return
	case ev.Seq <= h.LastSeq:
		rec.Stats.SkippedStale++ // already folded into the snapshot
		return
	case ev.Seq != h.LastSeq+1:
		h.Damaged = true
		return
	case h.Closed:
		h.Damaged = true // records after close within one incarnation
		return
	}
	h.Events = append(h.Events, ev)
	h.LastSeq = ev.Seq
	h.LastTime = ev.Time
	if ev.Type == EvClose {
		h.Closed = true
		h.Evicted = ev.Close.Evicted
	}
}

// scanSegment replays one WAL segment record by record. A torn or
// corrupt frame drops the rest of the segment.
func scanSegment(rec *Recovery, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 256<<10)

	var magic [magicLen]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		if err == io.EOF {
			return nil // zero-byte segment: created, nothing ever written
		}
		if err == io.ErrUnexpectedEOF {
			rec.Stats.TornRecords++ // crash mid-magic
			return nil
		}
		return err
	}
	if string(magic[:]) != walMagic {
		rec.Stats.BadRecords++
		return nil // not ours; skip the file
	}

	for {
		payload, ok, torn := readFrame(r)
		if !ok {
			if torn {
				rec.Stats.TornRecords++
			}
			return nil
		}
		ev, err := decodeEvent(payload)
		if err != nil {
			// A frame with a valid CRC but an undecodable payload means
			// a writer bug or version skew, not a torn tail; still stop
			// here — later records may build on it.
			rec.Stats.BadRecords++
			return nil
		}
		rec.Stats.Records++
		rec.enqueue(ev)
	}
}

// readFrame reads one length+CRC framed record. ok is false at a clean
// EOF or a torn/corrupt frame; torn distinguishes the latter.
func readFrame(r *bufio.Reader) (payload []byte, ok, torn bool) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, false, false
		}
		return nil, false, true // header torn mid-write
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if n == 0 || n > maxRecordBytes {
		return nil, false, true
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, false, true
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, false, true
	}
	return payload, true, false
}

// readSnapshotFile parses a whole snapshot file, failing on any
// imperfection — snapshots are written atomically, so a damaged one
// means the fallback (older snapshot + more WAL) is the safer base.
func readSnapshotFile(path string) ([]SessionSnapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 256<<10)

	var magic [magicLen]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("reading snapshot magic: %w", err)
	}
	if string(magic[:]) != snapMagic {
		return nil, fmt.Errorf("bad snapshot magic %q", magic)
	}
	var out []SessionSnapshot
	for {
		payload, ok, torn := readFrame(r)
		if !ok {
			if torn {
				return nil, fmt.Errorf("torn snapshot record")
			}
			return out, nil
		}
		s, err := decodeSnapshot(payload)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}
