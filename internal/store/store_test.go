package store

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// ev builds one journal event with sensible defaults.
func ev(t EventType, id string, gen, seq int64) *Event {
	e := &Event{Type: t, Session: id, Gen: gen, Seq: seq, Time: gen + seq}
	switch t {
	case EvCreate:
		e.Create = &CreateEvent{Model: "imu-m", StartX: 1.25, StartY: -3.5, Window: 2, SegDim: 3}
	case EvSteps:
		e.Steps = &StepsEvent{
			SegDim:   3,
			Count:    2,
			Features: []float64{1, 2, 3, 4, 5, 6},
			Preds: []PredRecord{
				{EndX: 0.5, EndY: 1.5, Class: 7, DispX: 0.1, DispY: 0.2},
				{EndX: 2.5, EndY: 3.5, Class: 9, DispX: 0.3, DispY: 0.4},
			},
		}
	case EvReAnchor:
		e.ReAnchor = &ReAnchorEvent{X: 9.75, Y: -0.125, WiFiModel: "wifi-m", Fingerprint: []float64{0.1, 0, 0.9}}
	case EvClose:
		e.Close = &CloseEvent{Evicted: true}
	case EvLifecycle:
		e.Session = LifecycleKey("wifi-m")
		e.Gen = 0
		e.Lifecycle = &LifecycleEvent{
			Model: "wifi-m", BundleID: "ab54c0ffee", From: "shadow", To: "canary",
			Reason: "shadow window complete (200 samples)",
		}
	}
	return e
}

func TestEventEncodeDecodeRoundTrip(t *testing.T) {
	for _, typ := range []EventType{EvCreate, EvSteps, EvReAnchor, EvClose, EvLifecycle} {
		in := ev(typ, "dev-42", 1000, 3)
		out, err := decodeEvent(encodeEvent(in))
		if err != nil {
			t.Fatalf("%s: decode: %v", typ, err)
		}
		if !reflect.DeepEqual(*in, out) {
			t.Fatalf("%s round trip:\n in  %+v\n out %+v", typ, in, out)
		}
	}
}

func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	in := SessionSnapshot{
		ID: "dev-1", Model: "imu-m", Gen: 77, LastUsed: 99, Seq: 12, Steps: 34, ReAnchors: 2,
		Tracker: TrackerSnapshot{
			Window: 2, SegDim: 3,
			OriginX: 1, OriginY: 2,
			Est:      PredRecord{EndX: 3, EndY: 4, Class: 5, DispX: 6, DispY: 7},
			Steps:    11,
			Segments: []float64{1, 2, 3, 4, 5, 6},
			Anchors:  []float64{0.5, 0.25, 1.5, 1.25},
		},
	}
	out, err := decodeSnapshot(encodeSnapshot(&in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("snapshot round trip:\n in  %+v\n out %+v", in, out)
	}
}

func TestDecodeEventRejectsDamage(t *testing.T) {
	good := encodeEvent(ev(EvSteps, "dev", 1, 2))
	if _, err := decodeEvent(good[:len(good)-1]); err == nil {
		t.Fatal("truncated payload must not decode")
	}
	if _, err := decodeEvent(append(append([]byte(nil), good...), 0)); err == nil {
		t.Fatal("payload with trailing bytes must not decode")
	}
	bad := append([]byte(nil), good...)
	bad[0] = 200
	if _, err := decodeEvent(bad); err == nil {
		t.Fatal("unknown record type must not decode")
	}
}

func openTestJournal(t *testing.T, dir string, mut func(*Config)) *Journal {
	t.Helper()
	cfg := Config{Dir: dir, Shards: 2, Fsync: FsyncNever, Logf: t.Logf}
	if mut != nil {
		mut(&cfg)
	}
	j, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j
}

// writeSession appends a create + n steps for one session.
func writeSession(t *testing.T, j *Journal, id string, gen int64, nsteps int) {
	t.Helper()
	if err := j.Append(ev(EvCreate, id, gen, 1)); err != nil {
		t.Fatalf("append create: %v", err)
	}
	for i := 0; i < nsteps; i++ {
		if err := j.Append(ev(EvSteps, id, gen, int64(i)+2)); err != nil {
			t.Fatalf("append steps: %v", err)
		}
	}
	if err := j.Commit(id); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

func TestJournalAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir, nil)
	writeSession(t, j, "dev-a", 100, 3)
	writeSession(t, j, "dev-b", 200, 1)
	if err := j.Append(ev(EvReAnchor, "dev-a", 100, 5)); err != nil {
		t.Fatal(err)
	}
	// dev-c lives and dies: must come back closed.
	writeSession(t, j, "dev-c", 300, 1)
	if err := j.Append(ev(EvClose, "dev-c", 300, 3)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	rec, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if rec.Stats.Live != 2 || rec.Stats.Closed != 1 || rec.Stats.Damaged != 0 {
		t.Fatalf("stats %+v, want 2 live / 1 closed / 0 damaged", rec.Stats)
	}
	byID := map[string]*SessionHistory{}
	for _, h := range rec.Histories {
		byID[h.ID] = h
	}
	a := byID["dev-a"]
	if a == nil || len(a.Events) != 5 || a.LastSeq != 5 || a.Closed {
		t.Fatalf("dev-a history %+v", a)
	}
	if a.Events[0].Type != EvCreate || a.Events[4].Type != EvReAnchor {
		t.Fatalf("dev-a event order: %v ... %v", a.Events[0].Type, a.Events[4].Type)
	}
	if got := a.Events[1].Steps; !reflect.DeepEqual(got, ev(EvSteps, "dev-a", 100, 2).Steps) {
		t.Fatalf("steps payload mutated: %+v", got)
	}
	if c := byID["dev-c"]; c == nil || !c.Closed || !c.Evicted {
		t.Fatalf("dev-c must be closed+evicted: %+v", c)
	}
}

// TestLifecycleEventsRecoveredSeparately: lifecycle transitions share
// the WAL with session events but are keyed under the reserved
// lifecycle namespace — recovery must collect them into rec.Lifecycle,
// never as session histories, and must preserve order and payload.
func TestLifecycleEventsRecoveredSeparately(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir, nil)
	writeSession(t, j, "dev-a", 100, 2)
	lc := func(seq int64, from, to string) *Event {
		return &Event{
			Type: EvLifecycle, Session: LifecycleKey("m"), Seq: seq, Time: seq,
			Lifecycle: &LifecycleEvent{Model: "m", BundleID: "cafe01", From: from, To: to, Reason: "test"},
		}
	}
	if err := j.Append(lc(1, "", "shadow")); err != nil {
		t.Fatal(err)
	}
	writeSession(t, j, "dev-b", 200, 1)
	if err := j.Append(lc(2, "shadow", "canary")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if rec.Stats.Live != 2 {
		t.Fatalf("stats %+v: lifecycle events must not count as sessions", rec.Stats)
	}
	for _, h := range rec.Histories {
		if strings.HasPrefix(h.ID, "\x00") {
			t.Fatalf("lifecycle key %q leaked into session histories", h.ID)
		}
	}
	if len(rec.Lifecycle) != 2 {
		t.Fatalf("%d lifecycle events recovered, want 2: %+v", len(rec.Lifecycle), rec.Lifecycle)
	}
	got := []*LifecycleEvent{rec.Lifecycle[0].Lifecycle, rec.Lifecycle[1].Lifecycle}
	if got[0].To != "shadow" || got[1].To != "canary" || got[1].BundleID != "cafe01" {
		t.Fatalf("lifecycle payloads: %+v %+v", got[0], got[1])
	}
}

// TestTornTailDropsOnlyTail kills the journal mid-write: the final
// record is truncated, and recovery must keep every record before it.
func TestTornTailDropsOnlyTail(t *testing.T) {
	for _, mode := range []string{"truncate", "flip-crc"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			// One shard so the torn file is deterministic.
			j := openTestJournal(t, dir, func(c *Config) { c.Shards = 1 })
			writeSession(t, j, "dev-a", 100, 3)
			writeSession(t, j, "dev-b", 200, 2)
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}

			// Damage the tail of the single segment file.
			seg := filepath.Join(dir, "shard-00", walFileName(1))
			raw, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			switch mode {
			case "truncate": // crash mid-write: half the last record missing
				if err := os.WriteFile(seg, raw[:len(raw)-11], 0o644); err != nil {
					t.Fatal(err)
				}
			case "flip-crc": // bit rot in the last record's payload
				raw[len(raw)-1] ^= 0xff
				if err := os.WriteFile(seg, raw, 0o644); err != nil {
					t.Fatal(err)
				}
			}

			rec, err := Load(dir)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			if rec.Stats.TornRecords == 0 {
				t.Fatalf("stats %+v: torn tail not detected", rec.Stats)
			}
			byID := map[string]*SessionHistory{}
			for _, h := range rec.Histories {
				byID[h.ID] = h
			}
			// dev-a (3 steps, written first) survives in full; dev-b lost
			// exactly its final record.
			a := byID["dev-a"]
			if a == nil || a.LastSeq != 4 || a.Damaged {
				t.Fatalf("dev-a must survive intact: %+v", a)
			}
			b := byID["dev-b"]
			if b == nil || b.LastSeq != 2 || b.Damaged {
				t.Fatalf("dev-b must keep the pre-tear prefix: %+v", b)
			}
		})
	}
}

func TestRotationAndRecoveryAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir, func(c *Config) {
		c.Shards = 1
		c.RotateBytes = 512 // force many rotations
	})
	writeSession(t, j, "dev-a", 100, 40)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	files, err := listShardFiles(filepath.Join(dir, "shard-00"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files.wals) < 3 {
		t.Fatalf("only %d segments; rotation did not trigger", len(files.wals))
	}
	rec, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := rec.Histories[0]
	if h.ID != "dev-a" || h.LastSeq != 41 || h.Damaged || len(h.Events) != 41 {
		t.Fatalf("cross-segment history %+v", h)
	}
}

// TestCompactionPrunesAndDedupes drives the full snapshot cycle: events
// appended before a compaction are covered by the snapshot, events
// racing it (same state, lower seq in an old segment would double-apply
// without the seq filter) are skipped, and old segments are pruned.
func TestCompactionPrunesAndDedupes(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir, func(c *Config) { c.Shards = 1 })
	writeSession(t, j, "dev-a", 100, 3) // seqs 1..4

	// A request racing the compaction: rotation has happened when collect
	// runs, so its record goes to the NEW segment while its effect is
	// folded into the snapshot (Seq 5). Without the seq filter, replay
	// would apply that record on top of the snapshot twice.
	err := j.Compact(func(shard int) []SessionSnapshot {
		if err := j.Append(ev(EvSteps, "dev-a", 100, 5)); err != nil {
			t.Fatal(err)
		}
		return []SessionSnapshot{{
			ID: "dev-a", Model: "imu-m", Gen: 100, LastUsed: 105, Seq: 5, Steps: 8,
			Tracker: TrackerSnapshot{
				Window: 2, SegDim: 3,
				Est:      PredRecord{EndX: 2.5, EndY: 3.5, Class: 9},
				Steps:    8,
				Segments: []float64{1, 2, 3, 4, 5, 6},
				Anchors:  []float64{0, 0, 0.5, 1.5},
			},
		}}
	})
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	// Post-compaction traffic.
	if err := j.Append(ev(EvSteps, "dev-a", 100, 6)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	files, err := listShardFiles(filepath.Join(dir, "shard-00"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files.snaps) != 1 {
		t.Fatalf("want 1 snapshot, have %v", files.snaps)
	}
	for _, wf := range files.wals {
		if wf.seq < files.snapSeq {
			t.Fatalf("segment %s not pruned (snapshot %d)", wf.name, files.snapSeq)
		}
	}

	rec, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := rec.Histories[0]
	if h.Snapshot == nil || h.Snapshot.Seq != 5 {
		t.Fatalf("snapshot not used as base: %+v", h)
	}
	// Only seq 6 replays on top; seq 5 (racing record, same segment as
	// the boundary) is deduplicated by the seq filter.
	if len(h.Events) != 1 || h.Events[0].Seq != 6 || h.Damaged {
		t.Fatalf("post-snapshot events %+v", h.Events)
	}
	if rec.Stats.SkippedStale == 0 {
		t.Fatal("racing record was not seq-filtered")
	}
}

// TestSessionIDReuseAcrossIncarnations: close then re-create under the
// same ID; recovery must restore only the new incarnation.
func TestSessionIDReuseAcrossIncarnations(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir, func(c *Config) { c.Shards = 1 })
	writeSession(t, j, "dev-a", 100, 2)
	if err := j.Append(ev(EvClose, "dev-a", 100, 4)); err != nil {
		t.Fatal(err)
	}
	writeSession(t, j, "dev-a", 500, 1) // reborn
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Stats.Live != 1 || rec.Stats.Closed != 0 {
		t.Fatalf("stats %+v", rec.Stats)
	}
	h := rec.Histories[0]
	if h.Gen != 500 || h.LastSeq != 2 || h.Closed || h.Damaged {
		t.Fatalf("incarnation not reset: %+v", h)
	}
}

// TestJournalReopenContinues: a second process run (Open on the same
// dir) must append into fresh segments and recovery must stitch both
// runs' records together.
func TestJournalReopenContinues(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir, func(c *Config) { c.Shards = 1 })
	writeSession(t, j, "dev-a", 100, 2) // seqs 1..3
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := openTestJournal(t, dir, func(c *Config) { c.Shards = 1 })
	if err := j2.Append(ev(EvSteps, "dev-a", 100, 4)); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := rec.Histories[0]
	if h.LastSeq != 4 || h.Damaged || len(h.Events) != 4 {
		t.Fatalf("cross-run history %+v", h)
	}
}

// TestSeqGapMarksDamaged: a vanished middle segment must not silently
// restore a half-true tracker.
func TestSeqGapMarksDamaged(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir, func(c *Config) { c.Shards = 1 })
	writeSession(t, j, "dev-a", 100, 1)                            // seqs 1,2
	if err := j.Append(ev(EvSteps, "dev-a", 100, 4)); err != nil { // 3 never written
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Stats.Damaged != 1 || rec.Stats.Live != 0 {
		t.Fatalf("gap not detected: %+v", rec.Stats)
	}
}

func TestFsyncAlwaysGroupCommit(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir, func(c *Config) { c.Fsync = FsyncAlways })
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		id := string(rune('a' + w))
		go func() {
			var err error
			for i := 0; i < 20 && err == nil; i++ {
				if aerr := j.Append(ev(EvSteps, id, 1, int64(i)+1)); aerr != nil {
					err = aerr
					break
				}
				err = j.Commit(id)
			}
			done <- err
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent commit: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRunIntervalSync(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir, func(c *Config) {
		c.Fsync = FsyncInterval
		c.SyncInterval = 5 * time.Millisecond
	})
	ctx, cancel := context.WithCancel(context.Background())
	loopDone := make(chan struct{})
	go func() { j.Run(ctx); close(loopDone) }()
	writeSession(t, j, "dev-a", 100, 1)
	deadline := time.Now().Add(2 * time.Second)
	for j.syncs.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval sync never fired")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-loopDone
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWritePrometheusShape(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir, nil)
	writeSession(t, j, "dev-a", 100, 1)
	j.NoteRecovered(3, 1)
	var sb strings.Builder
	j.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`noble_journal_appends_total{event="create"} 1`,
		`noble_journal_appends_total{event="steps"} 1`,
		"noble_journal_recovered_sessions 3",
		"noble_journal_recovery_skipped_sessions 1",
		"noble_journal_lag_seconds",
		"noble_journal_rotations_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, out)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryIsFileOrderIndependent: recovery folds by (Gen, Seq), not
// file order — a create record appended after a faster racer's step
// record, or even landing in a different shard directory because the
// shard count changed across restarts, must still restore exactly.
func TestRecoveryIsFileOrderIndependent(t *testing.T) {
	t.Run("out-of-order within a shard", func(t *testing.T) {
		dir := t.TempDir()
		j := openTestJournal(t, dir, func(c *Config) { c.Shards = 1 })
		// The racer's step hits the file before the create record.
		if err := j.Append(ev(EvSteps, "dev-a", 100, 2)); err != nil {
			t.Fatal(err)
		}
		if err := j.Append(ev(EvCreate, "dev-a", 100, 1)); err != nil {
			t.Fatal(err)
		}
		if err := j.Append(ev(EvSteps, "dev-a", 100, 3)); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		rec, err := Load(dir)
		if err != nil {
			t.Fatal(err)
		}
		h := rec.Histories[0]
		if h.Damaged || h.LastSeq != 3 || len(h.Events) != 3 || h.Events[0].Type != EvCreate {
			t.Fatalf("out-of-order fold failed: %+v", h)
		}
		if rec.Stats.OrphanEvents != 0 {
			t.Fatalf("stats %+v: records dropped as orphans", rec.Stats)
		}
	})

	t.Run("shard count change across restarts", func(t *testing.T) {
		dir := t.TempDir()
		ids := []string{"dev-a", "dev-b", "dev-c", "dev-d", "dev-e"}
		j := openTestJournal(t, dir, func(c *Config) { c.Shards = 8 })
		for _, id := range ids {
			writeSession(t, j, id, 100, 2) // seqs 1..3
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		// Restart with a different shard count: sessions rehash, so the
		// continuation records land in different shard directories.
		j2 := openTestJournal(t, dir, func(c *Config) { c.Shards = 3 })
		for _, id := range ids {
			if err := j2.Append(ev(EvSteps, id, 100, 4)); err != nil {
				t.Fatal(err)
			}
		}
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
		rec, err := Load(dir)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Stats.Live != len(ids) || rec.Stats.OrphanEvents != 0 || rec.Stats.Damaged != 0 {
			t.Fatalf("re-sharded recovery stats %+v", rec.Stats)
		}
		for _, h := range rec.Histories {
			if h.LastSeq != 4 || len(h.Events) != 4 {
				t.Fatalf("session %s lost records across the reshard: %+v", h.ID, h)
			}
		}
	})
}

// TestClosedJournalRejectsCompaction: a compaction still in flight when
// Close runs must fail cleanly — before the closed flag, snapshotShard's
// rotation would reopen a fresh WAL segment after shutdown, leaking an
// open file past process teardown.
func TestClosedJournalRejectsCompaction(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir, func(c *Config) { c.Shards = 1 })
	writeSession(t, j, "dev-a", 100, 2)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	before, err := listShardFiles(filepath.Join(dir, shardDirName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(func(int) []SessionSnapshot { return nil }); err == nil {
		t.Fatal("Compact after Close succeeded; want journal-closed error")
	}
	if err := j.Append(ev(EvSteps, "dev-a", 100, 4)); err == nil {
		t.Fatal("Append after Close succeeded; want journal-closed error")
	}
	after, err := listShardFiles(filepath.Join(dir, shardDirName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if len(after.wals) != len(before.wals) || len(after.snaps) != len(before.snaps) {
		t.Fatalf("shard files changed after Close: %d->%d wals, %d->%d snaps",
			len(before.wals), len(after.wals), len(before.snaps), len(after.snaps))
	}
}
