// Package loadshape is the shared vocabulary of synthetic device
// traffic: payload synthesis and failure classification used by both
// cmd/noble-loadgen (ad-hoc load runs) and internal/benchrig (the gated
// noble-perf harness), so the two tools replay the same traffic shape
// and bucket the identical failure identically. It is deliberately a
// leaf package — stdlib plus the client SDK's error type only — so the
// load generator does not link the server, WAL, or training stacks just
// to share three helpers.
package loadshape

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"

	"noble/client"
)

// SynthFingerprint synthesizes one normalized WiFi scan: ~30% of WAPs
// heard, values rounded to 4 significant digits (integer dBm over a
// ~75 dB span carries no more — full mantissas would triple the wire
// size for precision no scan possesses).
func SynthFingerprint(rng *rand.Rand, dim int) []float64 {
	fp := make([]float64, dim)
	for j := range fp {
		if rng.Float64() < 0.7 {
			continue
		}
		fp[j] = math.Round(rng.Float64()*1e4) / 1e4
	}
	return fp
}

// SynthSegment synthesizes one IMU segment's feature row: values shape
// the decoded positions, not the cost of a step, so rounded noise is
// fine.
func SynthSegment(rng *rand.Rand, dim int) []float64 {
	seg := make([]float64, dim)
	for j := range seg {
		seg[j] = math.Round(rng.NormFloat64()*1e3) / 1e3
	}
	return seg
}

// Error classes failures bucket into, in reports and BENCH.json.
const (
	ErrClass4xx      = "http_4xx"
	ErrClass5xx      = "http_5xx"
	ErrClassDeadline = "deadline"
	ErrClassConn     = "conn"
)

// Classify maps a wire-exchange outcome onto an error class ("" =
// success). A 504 is the server-side face of the same event as a
// client-side deadline expiry (whichever side notices first is
// scheduling luck), so both land in the deadline class — keeping
// deadline-scenario numbers independent of which side won the race.
// Client-side expiry wears several shapes depending on transport:
// context.DeadlineExceeded (net/http), os.ErrDeadlineExceeded or a
// timeout net.Error (the SDK's fast transport enforces deadlines via
// conn.SetDeadline).
func Classify(status int, err error) string {
	switch {
	case err == nil && status < 400:
		return ""
	case status == http.StatusGatewayTimeout || isDeadlineErr(err):
		return ErrClassDeadline
	case status >= 500:
		return ErrClass5xx
	case status >= 400:
		return ErrClass4xx
	default:
		return ErrClassConn
	}
}

// ClassifyError classifies from an error alone: an *APIError carries
// its HTTP status, anything else is a transport-level failure.
func ClassifyError(err error) string {
	if err == nil {
		return ""
	}
	var ae *client.APIError
	if errors.As(err, &ae) {
		return Classify(ae.Status, nil)
	}
	return Classify(0, err)
}

// isDeadlineErr recognizes every shape a client-side deadline expiry
// takes across the SDK's transports.
func isDeadlineErr(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
