package loadshape

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"testing"

	"noble/client"
)

// timeoutErr mimics the net.Error a transport surfaces when a socket
// deadline fires (the fast transport's shape).
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

func TestClassify(t *testing.T) {
	cases := []struct {
		status int
		err    error
		want   string
	}{
		{200, nil, ""},
		{404, nil, ErrClass4xx},
		{500, nil, ErrClass5xx},
		{503, nil, ErrClass5xx},
		// Every face of a deadline expiry lands in one class: the
		// server-side 504, the net/http context error, and both shapes
		// the fast transport's conn.SetDeadline produces.
		{http.StatusGatewayTimeout, nil, ErrClassDeadline},
		{0, context.DeadlineExceeded, ErrClassDeadline},
		{0, fmt.Errorf("read: %w", os.ErrDeadlineExceeded), ErrClassDeadline},
		{0, timeoutErr{}, ErrClassDeadline},
		{0, errors.New("connection refused"), ErrClassConn},
	}
	for _, c := range cases {
		if got := Classify(c.status, c.err); got != c.want {
			t.Fatalf("Classify(%d, %v) = %q, want %q", c.status, c.err, got, c.want)
		}
	}
}

func TestClassifyError(t *testing.T) {
	if got := ClassifyError(nil); got != "" {
		t.Fatalf("nil error classified %q", got)
	}
	// An APIError is classified by its carried status, not its text.
	if got := ClassifyError(&client.APIError{Status: 504}); got != ErrClassDeadline {
		t.Fatalf("504 APIError classified %q", got)
	}
	if got := ClassifyError(&client.APIError{Status: 429}); got != ErrClass4xx {
		t.Fatalf("429 APIError classified %q", got)
	}
	if got := ClassifyError(errors.New("boom")); got != ErrClassConn {
		t.Fatalf("plain error classified %q", got)
	}
}

func TestSynthDeterminism(t *testing.T) {
	// Same seed, same stream — the property every BENCH comparison and
	// cross-machine replay rests on.
	a := SynthFingerprint(rand.New(rand.NewSource(7)), 32)
	b := SynthFingerprint(rand.New(rand.NewSource(7)), 32)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fingerprint diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	s1 := SynthSegment(rand.New(rand.NewSource(7)), 12)
	s2 := SynthSegment(rand.New(rand.NewSource(7)), 12)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("segment diverged at %d", i)
		}
	}
	// And the scan shape holds: a fair share of WAPs unheard (zero).
	zeros := 0
	for _, v := range SynthFingerprint(rand.New(rand.NewSource(1)), 1000) {
		if v == 0 {
			zeros++
		}
	}
	if zeros < 500 || zeros > 900 {
		t.Fatalf("%d/1000 WAPs unheard, want ~700", zeros)
	}
}
