// Package radio simulates Wi-Fi received-signal-strength fingerprints, the
// input modality of the paper's first application. It substitutes for the
// proprietary UJIIndoorLoc / IPIN2016 surveys with a physically grounded
// model: log-distance path loss, wall and floor attenuation, static
// log-normal shadow fading (consistent per location, which is what makes
// fingerprinting possible at all), per-measurement noise, and heterogeneous
// device biases. Undetected access points report the UJIIndoorLoc sentinel
// value +100.
package radio

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"noble/internal/floorplan"
	"noble/internal/geo"
	"noble/internal/mat"
)

// NotDetected is the RSSI sentinel for an access point that is out of
// range, matching the UJIIndoorLoc encoding (+100 dBm).
const NotDetected = 100.0

// WAP is one wireless access point: a position, the floor and building it
// is mounted in (building -1 for outdoor), and its reference transmit
// power.
type WAP struct {
	ID       int
	Pos      geo.Point
	Building int
	Floor    int
	TxPower  float64 // dBm at 1 m
}

// Config holds the propagation model parameters.
type Config struct {
	// PathLossExponent is the log-distance exponent n; ~3.0 indoors.
	PathLossExponent float64
	// WallAttenuation is the dB penalty when the receiver is in a
	// different building than the access point.
	WallAttenuation float64
	// FloorAttenuation is the dB penalty per floor of separation.
	FloorAttenuation float64
	// FloorHeight is the vertical distance per floor in meters.
	FloorHeight float64
	// ShadowSigma is the standard deviation (dB) of the static,
	// location-consistent shadow fading field.
	ShadowSigma float64
	// NoiseSigma is the standard deviation (dB) of independent
	// per-measurement noise.
	NoiseSigma float64
	// DetectionThreshold is the dBm floor below which a WAP is reported
	// as NotDetected.
	DetectionThreshold float64
	// DeviceCount and DeviceBiasSigma model heterogeneous phones: each
	// simulated device has a fixed dB offset drawn from N(0, bias²).
	DeviceCount     int
	DeviceBiasSigma float64
}

// DefaultConfig returns propagation parameters typical of indoor office
// deployments (exponent 3, 8 dB walls, 12 dB floors, 4 dB shadowing).
func DefaultConfig() Config {
	return Config{
		PathLossExponent:   3.0,
		WallAttenuation:    8,
		FloorAttenuation:   12,
		FloorHeight:        3.5,
		ShadowSigma:        4,
		NoiseSigma:         2,
		DetectionThreshold: -93,
		DeviceCount:        4,
		DeviceBiasSigma:    3,
	}
}

// Simulator produces RSSI fingerprints for positions on a plan.
type Simulator struct {
	Plan *floorplan.Plan
	WAPs []WAP
	Cfg  Config

	shadowSeed  int64
	deviceBias  []float64
	shadowCellM float64
}

// NewSimulator places count access points on the plan (spread across
// buildings and floors at accessible positions) and returns a simulator
// with the given propagation config. All placement randomness comes from
// seed.
func NewSimulator(plan *floorplan.Plan, cfg Config, count int, seed int64) *Simulator {
	if count <= 0 {
		panic(fmt.Sprintf("radio: WAP count %d must be positive", count))
	}
	rng := mat.NewRand(seed)
	sim := &Simulator{
		Plan:        plan,
		Cfg:         cfg,
		shadowSeed:  seed*2654435761 + 1,
		shadowCellM: 2.0,
	}
	bounds := plan.Bounds()
	for len(sim.WAPs) < count {
		p := geo.Point{
			X: bounds.Min.X + rng.Float64()*bounds.Width(),
			Y: bounds.Min.Y + rng.Float64()*bounds.Height(),
		}
		b := plan.BuildingAt(p)
		if b == -1 && !plan.Accessible(p) {
			continue
		}
		floors := 1
		if b >= 0 {
			floors = plan.Buildings[b].Floors
		}
		sim.WAPs = append(sim.WAPs, WAP{
			ID:       len(sim.WAPs),
			Pos:      p,
			Building: b,
			Floor:    rng.Intn(floors),
			TxPower:  -28 - rng.Float64()*6,
		})
	}
	n := cfg.DeviceCount
	if n < 1 {
		n = 1
	}
	sim.deviceBias = make([]float64, n)
	for i := range sim.deviceBias {
		sim.deviceBias[i] = rng.NormFloat64() * cfg.DeviceBiasSigma
	}
	return sim
}

// NumWAPs returns the fingerprint dimensionality W.
func (s *Simulator) NumWAPs() int { return len(s.WAPs) }

// shadow returns the static shadow-fading value (dB) for a WAP at a
// location, deterministic in (wap, quantized position, floor). Consistency
// across repeated visits to the same spot is what gives fingerprints their
// discriminative texture.
func (s *Simulator) shadow(wapID int, p geo.Point, floor int) float64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	put(s.shadowSeed)
	put(int64(wapID))
	put(int64(math.Floor(p.X / s.shadowCellM)))
	put(int64(math.Floor(p.Y / s.shadowCellM)))
	put(int64(floor))
	local := mat.NewRand(int64(h.Sum64()))
	return local.NormFloat64() * s.Cfg.ShadowSigma
}

// Measure returns one RSSI fingerprint (length NumWAPs) for a receiver at
// planar position p on the given building/floor. rng drives the
// per-measurement noise and the random device pick; the underlying radio
// map (path loss + shadowing) is deterministic.
func (s *Simulator) Measure(p geo.Point, building, floor int, rng *rand.Rand) []float64 {
	bias := s.deviceBias[rng.Intn(len(s.deviceBias))]
	out := make([]float64, len(s.WAPs))
	for i := range s.WAPs {
		out[i] = s.measureOne(&s.WAPs[i], p, building, floor, bias, rng)
	}
	return out
}

func (s *Simulator) measureOne(w *WAP, p geo.Point, building, floor int, bias float64, rng *rand.Rand) float64 {
	dFloors := floor - w.Floor
	if building != w.Building {
		// Different buildings: treat vertical separation as unknown,
		// dominated by wall losses.
		dFloors = 0
	}
	dz := float64(dFloors) * s.Cfg.FloorHeight
	d := math.Hypot(geo.Dist(p, w.Pos), dz)
	if d < 1 {
		d = 1
	}
	rssi := w.TxPower - 10*s.Cfg.PathLossExponent*math.Log10(d)
	if building != w.Building {
		rssi -= s.Cfg.WallAttenuation
	}
	if dFloors != 0 {
		rssi -= s.Cfg.FloorAttenuation * math.Abs(float64(dFloors))
	}
	rssi += s.shadow(w.ID, p, floor)
	rssi += bias
	if rng != nil {
		rssi += rng.NormFloat64() * s.Cfg.NoiseSigma
	}
	if rssi < s.Cfg.DetectionThreshold {
		return NotDetected
	}
	return rssi
}

// RadioMap returns the noise-free expected fingerprint at a position —
// the "offline radio map" entry a classical fingerprinting system stores.
func (s *Simulator) RadioMap(p geo.Point, building, floor int) []float64 {
	out := make([]float64, len(s.WAPs))
	for i := range s.WAPs {
		out[i] = s.measureOne(&s.WAPs[i], p, building, floor, 0, nil)
	}
	return out
}

// Normalize maps a raw RSSI vector to [0,1] features for the network:
// NotDetected becomes 0 and detected powers map linearly from the
// detection threshold (→ small positive) up to -20 dBm (→ 1). The paper
// normalizes inputs the same way ("We normalize the input vector").
func Normalize(rssi []float64, threshold float64) []float64 {
	out := make([]float64, len(rssi))
	lo, hi := threshold, -20.0
	span := hi - lo
	for i, v := range rssi {
		switch {
		case v == NotDetected:
			out[i] = 0
		default:
			n := (v - lo) / span
			if n < 0 {
				n = 0
			}
			if n > 1 {
				n = 1
			}
			out[i] = n
		}
	}
	return out
}
