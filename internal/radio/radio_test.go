package radio

import (
	"math"
	"testing"
	"testing/quick"

	"noble/internal/floorplan"
	"noble/internal/geo"
	"noble/internal/mat"
)

func testSim(t *testing.T, numWAPs int) *Simulator {
	t.Helper()
	return NewSimulator(floorplan.UJICampus(), DefaultConfig(), numWAPs, 42)
}

func TestSimulatorPlacesRequestedWAPs(t *testing.T) {
	sim := testSim(t, 50)
	if sim.NumWAPs() != 50 {
		t.Fatalf("NumWAPs=%d", sim.NumWAPs())
	}
	buildings := map[int]int{}
	for _, w := range sim.WAPs {
		buildings[w.Building]++
		if w.TxPower > -28 || w.TxPower < -34 {
			t.Fatalf("TxPower %v out of range", w.TxPower)
		}
	}
	if len(buildings) < 3 {
		t.Fatalf("WAPs concentrated in %d buildings", len(buildings))
	}
}

func TestSimulatorZeroWAPsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSimulator(floorplan.UJICampus(), DefaultConfig(), 0, 1)
}

func TestMeasureVectorShapeAndRange(t *testing.T) {
	sim := testSim(t, 40)
	rng := mat.NewRand(1)
	p := geo.Point{X: 30, Y: 200}
	rssi := sim.Measure(p, 0, 1, rng)
	if len(rssi) != 40 {
		t.Fatalf("len=%d", len(rssi))
	}
	detected := 0
	for _, v := range rssi {
		if v == NotDetected {
			continue
		}
		detected++
		if v < sim.Cfg.DetectionThreshold-1e-9 || v > 0 {
			t.Fatalf("detected RSSI %v outside (threshold, 0]", v)
		}
	}
	if detected == 0 {
		t.Fatal("no WAP detected at an indoor position")
	}
	if detected == 40 {
		t.Fatal("all 40 WAPs detected — censoring not working")
	}
}

func TestSignalDecaysWithDistance(t *testing.T) {
	plan := floorplan.IPINBuilding()
	cfg := DefaultConfig()
	cfg.ShadowSigma = 0
	cfg.NoiseSigma = 0
	cfg.DeviceBiasSigma = 0
	cfg.DetectionThreshold = -500 // never censor for this test
	sim := NewSimulator(plan, cfg, 1, 7)
	w := sim.WAPs[0]
	near := sim.RadioMap(w.Pos.Add(geo.Point{X: 2, Y: 0}), w.Building, w.Floor)
	far := sim.RadioMap(w.Pos.Add(geo.Point{X: 20, Y: 0}), w.Building, w.Floor)
	if near[0] <= far[0] {
		t.Fatalf("RSSI must decay with distance: near %v far %v", near[0], far[0])
	}
	// Log-distance slope: doubling distance costs 10·n·log10(2) ≈ 9 dB.
	d4 := sim.RadioMap(w.Pos.Add(geo.Point{X: 4, Y: 0}), w.Building, w.Floor)
	drop := near[0] - d4[0]
	want := 10 * cfg.PathLossExponent * math.Log10(2)
	if math.Abs(drop-want) > 1e-9 {
		t.Fatalf("2→4 m drop %v want %v", drop, want)
	}
}

func TestFloorAttenuation(t *testing.T) {
	plan := floorplan.IPINBuilding()
	cfg := DefaultConfig()
	cfg.ShadowSigma, cfg.NoiseSigma, cfg.DeviceBiasSigma = 0, 0, 0
	cfg.DetectionThreshold = -500
	sim := NewSimulator(plan, cfg, 1, 8)
	w := sim.WAPs[0]
	p := w.Pos.Add(geo.Point{X: 5, Y: 0})
	same := sim.RadioMap(p, w.Building, w.Floor)
	var other int
	if w.Floor == 0 {
		other = 1
	}
	diff := sim.RadioMap(p, w.Building, other)
	if same[0]-diff[0] < cfg.FloorAttenuation-1 {
		t.Fatalf("floor change must cost ≥ %v dB, got %v", cfg.FloorAttenuation, same[0]-diff[0])
	}
}

func TestWallAttenuationAcrossBuildings(t *testing.T) {
	plan := floorplan.UJICampus()
	cfg := DefaultConfig()
	cfg.ShadowSigma, cfg.NoiseSigma, cfg.DeviceBiasSigma = 0, 0, 0
	cfg.DetectionThreshold = -500
	sim := NewSimulator(plan, cfg, 30, 9)
	// Find a WAP in building 0.
	var w *WAP
	for i := range sim.WAPs {
		if sim.WAPs[i].Building == 0 {
			w = &sim.WAPs[i]
			break
		}
	}
	if w == nil {
		t.Skip("no WAP landed in building 0")
	}
	p := w.Pos.Add(geo.Point{X: 3, Y: 0})
	inside := sim.measureOne(w, p, 0, w.Floor, 0, nil)
	outside := sim.measureOne(w, p, 1, w.Floor, 0, nil)
	if inside-outside < cfg.WallAttenuation-1e-9 {
		t.Fatalf("cross-building penalty %v < %v", inside-outside, cfg.WallAttenuation)
	}
}

func TestShadowFadingIsLocationConsistent(t *testing.T) {
	sim := testSim(t, 10)
	p := geo.Point{X: 40, Y: 180}
	a := sim.RadioMap(p, 0, 2)
	b := sim.RadioMap(p, 0, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("radio map must be deterministic")
		}
	}
	// Different nearby cell gives different shadowing for at least one WAP.
	q := geo.Point{X: 47, Y: 187}
	c := sim.RadioMap(q, 0, 2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("shadow field must vary across space")
	}
}

func TestMeasurementNoiseVariesPerSample(t *testing.T) {
	sim := testSim(t, 10)
	rng := mat.NewRand(2)
	p := geo.Point{X: 40, Y: 180}
	a := sim.Measure(p, 0, 2, rng)
	b := sim.Measure(p, 0, 2, rng)
	diff := false
	for i := range a {
		if a[i] != b[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("repeated measurements must differ (noise)")
	}
}

func TestMeasureDeterministicPerSeed(t *testing.T) {
	sim := testSim(t, 10)
	p := geo.Point{X: 40, Y: 180}
	a := sim.Measure(p, 0, 2, mat.NewRand(5))
	b := sim.Measure(p, 0, 2, mat.NewRand(5))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same rng seed must give identical measurements")
		}
	}
}

func TestNormalize(t *testing.T) {
	th := -93.0
	in := []float64{NotDetected, -93, -20, -10, -56.5}
	out := Normalize(in, th)
	if out[0] != 0 {
		t.Fatal("NotDetected must map to 0")
	}
	if out[1] != 0 {
		t.Fatal("threshold must map to 0")
	}
	if out[2] != 1 || out[3] != 1 {
		t.Fatal("strong signals must clamp to 1")
	}
	if out[4] <= 0 || out[4] >= 1 {
		t.Fatalf("mid signal %v must be in (0,1)", out[4])
	}
	want := (-56.5 + 93) / 73
	if math.Abs(out[4]-want) > 1e-12 {
		t.Fatalf("normalize(-56.5)=%v want %v", out[4], want)
	}
}

func TestNormalizeMonotone(t *testing.T) {
	th := -93.0
	prev := -1.0
	for rssi := -92.0; rssi <= -21; rssi += 1 {
		v := Normalize([]float64{rssi}, th)[0]
		if v < prev {
			t.Fatalf("Normalize not monotone at %v", rssi)
		}
		prev = v
	}
}

func TestNearbyPositionsHaveSimilarFingerprints(t *testing.T) {
	// The manifold premise: fingerprint distance correlates with physical
	// distance at short range.
	sim := testSim(t, 60)
	p := geo.Point{X: 40, Y: 180}
	near := geo.Point{X: 41, Y: 180}
	far := geo.Point{X: 90, Y: 180}
	fp := Normalize(sim.RadioMap(p, 0, 1), sim.Cfg.DetectionThreshold)
	fnear := Normalize(sim.RadioMap(near, 0, 1), sim.Cfg.DetectionThreshold)
	ffar := Normalize(sim.RadioMap(far, 0, 1), sim.Cfg.DetectionThreshold)
	dNear, dFar := l2(fp, fnear), l2(fp, ffar)
	if dNear >= dFar {
		t.Fatalf("fingerprint distance should grow with physical distance: %v vs %v", dNear, dFar)
	}
}

func l2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestNormalizeRangeProperty(t *testing.T) {
	f := func(raw []int16) bool {
		rssi := make([]float64, len(raw))
		for i, v := range raw {
			rssi[i] = float64(v) / 100
		}
		out := Normalize(rssi, -93)
		for _, v := range out {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRadioMapDeterministicAcrossSimulators(t *testing.T) {
	// Two simulators with the same seed must build the same radio map.
	a := NewSimulator(floorplan.UJICampus(), DefaultConfig(), 12, 99)
	b := NewSimulator(floorplan.UJICampus(), DefaultConfig(), 12, 99)
	p := geo.Point{X: 40, Y: 180}
	fa, fb := a.RadioMap(p, 0, 1), b.RadioMap(p, 0, 1)
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatal("same seed must give identical radio maps")
		}
	}
	c := NewSimulator(floorplan.UJICampus(), DefaultConfig(), 12, 100)
	fc := c.RadioMap(p, 0, 1)
	same := true
	for i := range fa {
		if fa[i] != fc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds must differ")
	}
}
