package quantize

import (
	"math"
	"testing"
	"testing/quick"

	"noble/internal/geo"
	"noble/internal/mat"
)

func gridPoints() []geo.Point {
	// Two clusters with a hole between them.
	var pts []geo.Point
	for x := 0.0; x < 2; x += 0.5 {
		for y := 0.0; y < 2; y += 0.5 {
			pts = append(pts, geo.Point{X: x, Y: y})
		}
	}
	for x := 10.0; x < 12; x += 0.5 {
		for y := 10.0; y < 12; y += 0.5 {
			pts = append(pts, geo.Point{X: x, Y: y})
		}
	}
	return pts
}

func TestNewGridDiscardsEmptyCells(t *testing.T) {
	g := NewGrid(1, gridPoints())
	// 4 populated cells per cluster → 8 classes; the 10×10 hole adds none.
	if g.Classes() != 8 {
		t.Fatalf("classes=%d want 8", g.Classes())
	}
	// A point in the hole is in no populated cell.
	if _, ok := g.ClassOf(geo.Point{X: 5, Y: 5}); ok {
		t.Fatal("dead-space cell must not be a class")
	}
}

func TestClassOfRoundTrip(t *testing.T) {
	pts := gridPoints()
	g := NewGrid(1, pts)
	for _, p := range pts {
		id, ok := g.ClassOf(p)
		if !ok {
			t.Fatalf("training point %v lost its class", p)
		}
		if d := geo.Dist(g.Decode(id), p); d > math.Sqrt2 {
			t.Fatalf("decode error %v exceeds cell diagonal", d)
		}
	}
}

func TestDecodeWithinCellProperty(t *testing.T) {
	rng := mat.NewRand(1)
	f := func(tauSel uint8) bool {
		tau := []float64{0.2, 0.4, 1.0, 2.0}[tauSel%4]
		pts := make([]geo.Point, 200)
		for i := range pts {
			pts[i] = geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
		}
		g := NewGrid(tau, pts)
		for _, p := range pts {
			id, ok := g.ClassOf(p)
			if !ok {
				return false
			}
			// Centroid must lie in the same cell ⇒ error ≤ τ√2.
			if geo.Dist(g.Decode(id), p) > tau*math.Sqrt2+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCentroidIsMeanOfCellPoints(t *testing.T) {
	pts := []geo.Point{{X: 0.1, Y: 0.1}, {X: 0.3, Y: 0.5}, {X: 0.5, Y: 0.3}}
	g := NewGrid(1, pts)
	if g.Classes() != 1 {
		t.Fatalf("classes=%d", g.Classes())
	}
	c := g.Decode(0)
	if math.Abs(c.X-0.3) > 1e-12 || math.Abs(c.Y-0.3) > 1e-12 {
		t.Fatalf("centroid=%v want (0.3,0.3)", c)
	}
	if g.Count(0) != 3 {
		t.Fatalf("count=%d", g.Count(0))
	}
}

func TestCellCenterVsCentroid(t *testing.T) {
	pts := []geo.Point{{X: 0.1, Y: 0.1}}
	g := NewGrid(1, pts)
	center := g.CellCenter(0)
	if math.Abs(center.X-0.6) > 1e-12 || math.Abs(center.Y-0.6) > 1e-12 {
		// origin is (0.1,0.1); cell [0.1,1.1) → center (0.6,0.6)
		t.Fatalf("cell center=%v", center)
	}
	if g.Decode(0) != pts[0] {
		t.Fatal("centroid of single point is the point")
	}
}

func TestClassIDsDeterministic(t *testing.T) {
	a := NewGrid(1, gridPoints())
	b := NewGrid(1, gridPoints())
	for id := 0; id < a.Classes(); id++ {
		if a.Decode(id) != b.Decode(id) {
			t.Fatal("class IDs must be deterministic")
		}
	}
}

func TestNearestClassFallback(t *testing.T) {
	g := NewGrid(1, gridPoints())
	// Hole point snaps to some populated class.
	id := g.NearestClass(geo.Point{X: 5, Y: 5})
	if id < 0 || id >= g.Classes() {
		t.Fatalf("NearestClass=%d", id)
	}
	// For a populated point, NearestClass agrees with ClassOf.
	p := geo.Point{X: 0.5, Y: 0.5}
	want, _ := g.ClassOf(p)
	if g.NearestClass(p) != want {
		t.Fatal("NearestClass must match ClassOf for populated cells")
	}
	// Point just right of cluster 2 snaps to a cluster-2 class.
	near := g.NearestClass(geo.Point{X: 12.4, Y: 11})
	c := g.Decode(near)
	if c.X < 10 {
		t.Fatalf("nearest class centroid %v should be in cluster 2", c)
	}
}

func TestAdjacentClasses(t *testing.T) {
	// 3×3 block of cells, all populated.
	var pts []geo.Point
	for x := 0; x < 3; x++ {
		for y := 0; y < 3; y++ {
			pts = append(pts, geo.Point{X: float64(x) + 0.5, Y: float64(y) + 0.5})
		}
	}
	g := NewGrid(1, pts)
	if g.Classes() != 9 {
		t.Fatalf("classes=%d", g.Classes())
	}
	centerID, _ := g.ClassOf(geo.Point{X: 1.5, Y: 1.5})
	adj := g.AdjacentClasses(centerID)
	if len(adj) != 8 {
		t.Fatalf("center cell adjacency=%d want 8", len(adj))
	}
	cornerID, _ := g.ClassOf(geo.Point{X: 0.5, Y: 0.5})
	if len(g.AdjacentClasses(cornerID)) != 3 {
		t.Fatalf("corner adjacency=%d want 3", len(g.AdjacentClasses(cornerID)))
	}
}

func TestAdjacencyIsSymmetricProperty(t *testing.T) {
	rng := mat.NewRand(2)
	pts := make([]geo.Point, 120)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
	}
	g := NewGrid(1.5, pts)
	for id := 0; id < g.Classes(); id++ {
		for _, nb := range g.AdjacentClasses(id) {
			found := false
			for _, back := range g.AdjacentClasses(nb) {
				if back == id {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: %d→%d", id, nb)
			}
		}
	}
}

func TestLabelsAndOneHot(t *testing.T) {
	g := NewGrid(1, gridPoints())
	pts := []geo.Point{{X: 0.5, Y: 0.5}, {X: 11, Y: 11}}
	labels := g.Labels(pts)
	oh := g.OneHot(labels)
	if oh.Rows != 2 || oh.Cols != g.Classes() {
		t.Fatalf("one-hot %d×%d", oh.Rows, oh.Cols)
	}
	for i, c := range labels {
		if oh.At(i, c) != 1 {
			t.Fatal("one-hot must mark the label")
		}
	}
}

func TestAdjacencyTargets(t *testing.T) {
	var pts []geo.Point
	for x := 0; x < 3; x++ {
		for y := 0; y < 3; y++ {
			pts = append(pts, geo.Point{X: float64(x) + 0.5, Y: float64(y) + 0.5})
		}
	}
	g := NewGrid(1, pts)
	centerID, _ := g.ClassOf(geo.Point{X: 1.5, Y: 1.5})
	targets := g.AdjacencyTargets([]int{centerID}, 0.3)
	if targets.At(0, centerID) != 1 {
		t.Fatal("true class weight must be 1")
	}
	var adjSum float64
	for j := 0; j < targets.Cols; j++ {
		if j != centerID {
			adjSum += targets.At(0, j)
		}
	}
	if math.Abs(adjSum-8*0.3) > 1e-12 {
		t.Fatalf("adjacent weights sum %v want 2.4", adjSum)
	}
	// Zero weight reduces to one-hot.
	plain := g.AdjacencyTargets([]int{centerID}, 0)
	oh := g.OneHot([]int{centerID})
	if !mat.Equal(plain, oh, 0) {
		t.Fatal("zero adjacency weight must equal one-hot")
	}
}

func TestMultiRes(t *testing.T) {
	mr := NewMultiRes(0.5, 4, gridPoints())
	if mr.Fine.Classes() <= mr.Coarse.Classes() {
		t.Fatalf("fine grid (%d) must have more classes than coarse (%d)",
			mr.Fine.Classes(), mr.Coarse.Classes())
	}
}

func TestMultiResBadSidesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMultiRes(2, 1, gridPoints())
}

func TestNewGridBadInputsPanic(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"zero tau", func() { NewGrid(0, gridPoints()) }},
		{"no points", func() { NewGrid(1, nil) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

func TestTauControlsClassCount(t *testing.T) {
	pts := gridPoints()
	fine := NewGrid(0.25, pts)
	coarse := NewGrid(4, pts)
	if fine.Classes() <= coarse.Classes() {
		t.Fatalf("τ=0.25 (%d classes) must beat τ=4 (%d classes)",
			fine.Classes(), coarse.Classes())
	}
	if coarse.Classes() < 2 {
		t.Fatal("two separated clusters must stay separate at τ=4")
	}
}
