// Package quantize implements the paper's space quantization (§III-B): the
// continuous output space is divided into non-overlapping square grid cells
// of side τ; cells containing no training data are discarded — which is
// precisely how inaccessible space (courtyards, gaps between buildings)
// disappears from the output space — and the surviving cells become
// neighborhood class IDs. At inference the predicted class is decoded to
// its central coordinates.
//
// The package also provides the paper's two refinements for class-data
// sparsity: multi-resolution grids (a fine grid of side τ plus a coarse
// grid of side l > τ, giving the model output-manifold structure at two
// granularities) are built by simply constructing two Grids, and
// multi-label adjacency targets (a sample is additionally labeled with the
// populated cells adjacent to its true cell) come from AdjacencyTargets.
package quantize

import (
	"fmt"
	"math"
	"sort"

	"noble/internal/geo"
	"noble/internal/mat"
)

// cellKey identifies a grid cell by its integer coordinates.
type cellKey struct {
	ix, iy int
}

// Grid is a fitted space quantizer: a set of populated τ-cells with stable
// class IDs and per-class centroids.
type Grid struct {
	Tau    float64
	Origin geo.Point

	cells     []cellKey
	byCell    map[cellKey]int
	centroids []geo.Point
	counts    []int
}

// NewGrid fits a quantizer of cell side tau to the given training
// positions. Only populated cells receive class IDs; IDs are assigned in
// row-major cell order so they are deterministic for a given point set.
// The centroid of each class is the mean of the training points inside the
// cell (the "central coordinates" used for decoding).
func NewGrid(tau float64, points []geo.Point) *Grid {
	if tau <= 0 {
		panic(fmt.Sprintf("quantize: non-positive tau %v", tau))
	}
	if len(points) == 0 {
		panic("quantize: NewGrid with no points")
	}
	origin := points[0]
	for _, p := range points[1:] {
		origin.X = math.Min(origin.X, p.X)
		origin.Y = math.Min(origin.Y, p.Y)
	}
	g := &Grid{Tau: tau, Origin: origin, byCell: make(map[cellKey]int)}
	sums := make(map[cellKey]geo.Point)
	counts := make(map[cellKey]int)
	for _, p := range points {
		k := g.key(p)
		sums[k] = sums[k].Add(p)
		counts[k]++
	}
	g.cells = make([]cellKey, 0, len(sums))
	for k := range sums {
		g.cells = append(g.cells, k)
	}
	sort.Slice(g.cells, func(a, b int) bool {
		if g.cells[a].iy != g.cells[b].iy {
			return g.cells[a].iy < g.cells[b].iy
		}
		return g.cells[a].ix < g.cells[b].ix
	})
	g.centroids = make([]geo.Point, len(g.cells))
	g.counts = make([]int, len(g.cells))
	for id, k := range g.cells {
		g.byCell[k] = id
		g.centroids[id] = sums[k].Scale(1 / float64(counts[k]))
		g.counts[id] = counts[k]
	}
	return g
}

func (g *Grid) key(p geo.Point) cellKey {
	return cellKey{
		ix: int(math.Floor((p.X - g.Origin.X) / g.Tau)),
		iy: int(math.Floor((p.Y - g.Origin.Y) / g.Tau)),
	}
}

// Classes returns the number of populated neighborhood classes.
func (g *Grid) Classes() int { return len(g.cells) }

// ClassOf returns the class ID of the cell containing p, and whether that
// cell is populated. Training labels use this; it is an error (ok=false)
// for positions in discarded dead space.
func (g *Grid) ClassOf(p geo.Point) (id int, ok bool) {
	id, ok = g.byCell[g.key(p)]
	return id, ok
}

// NearestClass returns the class whose centroid is nearest to p; unlike
// ClassOf it always succeeds. Useful for labeling points that fall just
// outside any populated cell.
func (g *Grid) NearestClass(p geo.Point) int {
	if id, ok := g.ClassOf(p); ok {
		return id
	}
	best, bestD := 0, math.Inf(1)
	for id, c := range g.centroids {
		if d := geo.Dist2(c, p); d < bestD {
			bestD, best = d, id
		}
	}
	return best
}

// Decode returns the central coordinates of a class — the position NObLe
// reports when the classifier predicts that class.
func (g *Grid) Decode(id int) geo.Point {
	return g.centroids[id]
}

// CellCenter returns the geometric center of the class's cell (as opposed
// to the training-data centroid returned by Decode).
func (g *Grid) CellCenter(id int) geo.Point {
	k := g.cells[id]
	return geo.Point{
		X: g.Origin.X + (float64(k.ix)+0.5)*g.Tau,
		Y: g.Origin.Y + (float64(k.iy)+0.5)*g.Tau,
	}
}

// Count returns how many training points populated the class's cell.
func (g *Grid) Count(id int) int { return g.counts[id] }

// AdjacentClasses returns the populated classes among the 8 neighbors of
// the given class's cell, in deterministic order.
func (g *Grid) AdjacentClasses(id int) []int {
	k := g.cells[id]
	var out []int
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			if nb, ok := g.byCell[cellKey{k.ix + dx, k.iy + dy}]; ok {
				out = append(out, nb)
			}
		}
	}
	return out
}

// Labels quantizes a batch of positions to class IDs, falling back to the
// nearest populated class for stray points.
func (g *Grid) Labels(points []geo.Point) []int {
	out := make([]int, len(points))
	for i, p := range points {
		out[i] = g.NearestClass(p)
	}
	return out
}

// OneHot returns a len(classes)×Classes one-hot label matrix for the
// softmax-CE heads.
func (g *Grid) OneHot(classes []int) *mat.Dense {
	out := mat.New(len(classes), g.Classes())
	for i, c := range classes {
		out.Set(i, c, 1)
	}
	return out
}

// AdjacencyTargets builds the multi-label targets of §III-B: each sample's
// row has 1 at its true class and adjacentWeight at every populated
// adjacent class. With adjacentWeight 0 this reduces to one-hot. Intended
// for the BCEWithLogits multi-label head.
func (g *Grid) AdjacencyTargets(classes []int, adjacentWeight float64) *mat.Dense {
	out := mat.New(len(classes), g.Classes())
	for i, c := range classes {
		out.Set(i, c, 1)
		if adjacentWeight > 0 {
			for _, nb := range g.AdjacentClasses(c) {
				out.Set(i, nb, adjacentWeight)
			}
		}
	}
	return out
}

// MultiRes couples the paper's fine grid (side τ) with a coarse grid
// (side l > τ), the "different levels of granularity of the output
// manifold" of §III-B.
type MultiRes struct {
	Fine   *Grid
	Coarse *Grid
}

// NewMultiRes fits both grids to the same training positions. It panics
// unless coarse > fine > 0.
func NewMultiRes(fine, coarse float64, points []geo.Point) *MultiRes {
	if !(coarse > fine) {
		panic(fmt.Sprintf("quantize: coarse side %v must exceed fine side %v", coarse, fine))
	}
	return &MultiRes{Fine: NewGrid(fine, points), Coarse: NewGrid(coarse, points)}
}
