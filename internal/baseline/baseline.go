// Package baseline implements the comparison systems of Table II and
// Table III: Deep Regression (same trunk as NObLe, MSE onto coordinates),
// Deep Regression Projection (the same predictions snapped to the nearest
// on-map position, after [8]), Isomap/LLE Deep Regression (neighbor-based
// manifold embeddings fed to a coordinate regressor), a classical
// weighted-kNN fingerprinting baseline, and the IMU Deep Regression model.
package baseline

import (
	"fmt"

	"noble/internal/dataset"
	"noble/internal/floorplan"
	"noble/internal/geo"
	"noble/internal/mat"
	"noble/internal/nn"
)

// Scaler standardizes 2-D coordinate targets; regression is trained in
// standardized space and predictions are mapped back.
type Scaler struct {
	Mean [2]float64
	Std  [2]float64
}

// FitScaler computes per-axis mean and standard deviation of the points.
func FitScaler(points []geo.Point) *Scaler {
	if len(points) == 0 {
		panic("baseline: FitScaler with no points")
	}
	xs := make([]float64, len(points))
	ys := make([]float64, len(points))
	for i, p := range points {
		xs[i], ys[i] = p.X, p.Y
	}
	s := &Scaler{
		Mean: [2]float64{mat.Mean(xs), mat.Mean(ys)},
		Std:  [2]float64{mat.Std(xs), mat.Std(ys)},
	}
	for i := range s.Std {
		if s.Std[i] < 1e-9 {
			s.Std[i] = 1
		}
	}
	return s
}

// Transform standardizes points into an n×2 target matrix.
func (s *Scaler) Transform(points []geo.Point) *mat.Dense {
	out := mat.New(len(points), 2)
	for i, p := range points {
		out.Set(i, 0, (p.X-s.Mean[0])/s.Std[0])
		out.Set(i, 1, (p.Y-s.Mean[1])/s.Std[1])
	}
	return out
}

// Inverse maps one standardized prediction row back to coordinates.
func (s *Scaler) Inverse(row []float64) geo.Point {
	return geo.Point{
		X: row[0]*s.Std[0] + s.Mean[0],
		Y: row[1]*s.Std[1] + s.Mean[1],
	}
}

// RegConfig configures the deep regression trainers.
type RegConfig struct {
	Hidden    []int
	Epochs    int
	BatchSize int
	LR        float64
	LRDecay   float64
	Seed      int64
	Logf      func(format string, args ...any)
}

// DefaultRegConfig mirrors NObLe's capacity ("It is the same network size
// as NObLe", §IV-B) so the comparison isolates the objective.
func DefaultRegConfig() RegConfig {
	return RegConfig{
		Hidden:    []int{128, 128},
		Epochs:    30,
		BatchSize: 64,
		LR:        0.003,
		LRDecay:   0.95,
		Seed:      1,
	}
}

// WiFiRegressor is the Deep Regression baseline: trunk + linear head onto
// standardized (longitude, latitude), trained with mean squared error.
type WiFiRegressor struct {
	net    *nn.Sequential
	scaler *Scaler
}

// TrainWiFiRegression fits the Deep Regression baseline on the dataset's
// training split.
func TrainWiFiRegression(ds *dataset.WiFi, cfg RegConfig) *WiFiRegressor {
	x := dataset.FeaturesMatrix(ds.Train)
	positions := dataset.Positions(ds.Train)
	return trainRegressor(x, positions, ds.NumWAPs, cfg)
}

func trainRegressor(x *mat.Dense, positions []geo.Point, inDim int, cfg RegConfig) *WiFiRegressor {
	if len(cfg.Hidden) == 0 || cfg.Epochs <= 0 {
		panic(fmt.Sprintf("baseline: bad regression config %+v", cfg))
	}
	rng := mat.NewRand(cfg.Seed)
	net := nn.NewMLP("reg", inDim, cfg.Hidden, true, rng)
	net.Add(nn.NewDense("reg.out", cfg.Hidden[len(cfg.Hidden)-1], 2, nn.InitXavier, rng))
	scaler := FitScaler(positions)
	y := scaler.Transform(positions)
	loss := nn.NewMSE()
	params := net.Params()
	nn.Train(nn.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: cfg.BatchSize,
		Seed:      cfg.Seed + 1,
		Optimizer: nn.NewAdam(cfg.LR),
		LRDecay:   cfg.LRDecay,
		ClipNorm:  5,
		Logf:      cfg.Logf,
	}, x.Rows, params, func(batch []int) float64 {
		bx, by := nn.SelectRows(x, batch), nn.SelectRows(y, batch)
		out := net.Forward(bx, true)
		l := loss.Forward(out, by)
		net.Backward(loss.Backward())
		return l
	}, nil)
	return &WiFiRegressor{net: net, scaler: scaler}
}

// PredictBatch returns predicted coordinates for a batch of fingerprints.
func (r *WiFiRegressor) PredictBatch(x *mat.Dense) []geo.Point {
	out := r.net.Forward(x, false)
	preds := make([]geo.Point, x.Rows)
	for i := range preds {
		preds[i] = r.scaler.Inverse(out.Row(i))
	}
	return preds
}

// FLOPs estimates multiply-accumulates per inference.
func (r *WiFiRegressor) FLOPs() int64 { return r.net.FLOPs() }

// ProjectPredictions applies the Deep Regression Projection step: every
// prediction outside the plan's accessible space is replaced by the
// nearest on-map point.
func ProjectPredictions(plan *floorplan.Plan, preds []geo.Point) []geo.Point {
	out := make([]geo.Point, len(preds))
	for i, p := range preds {
		out[i] = plan.Project(p)
	}
	return out
}

// KNNFingerprint is the classical online-phase matcher of §II: the offline
// radio map is stored verbatim and queries are answered by the weighted
// centroid of the k nearest stored fingerprints (weights 1/d).
type KNNFingerprint struct {
	x   *mat.Dense
	pos []geo.Point
	k   int
}

// NewKNNFingerprint indexes the training samples.
func NewKNNFingerprint(ds *dataset.WiFi, k int) *KNNFingerprint {
	if k < 1 {
		panic("baseline: kNN fingerprint needs k ≥ 1")
	}
	return &KNNFingerprint{
		x:   dataset.FeaturesMatrix(ds.Train),
		pos: dataset.Positions(ds.Train),
		k:   k,
	}
}

// Predict returns the weighted-kNN position estimate for one fingerprint.
func (f *KNNFingerprint) Predict(features []float64) geo.Point {
	type cand struct {
		idx int
		d2  float64
	}
	best := make([]cand, 0, f.k+1)
	for i := 0; i < f.x.Rows; i++ {
		row := f.x.Row(i)
		var d2 float64
		for j := range features {
			diff := features[j] - row[j]
			d2 += diff * diff
		}
		inserted := false
		for b := range best {
			if d2 < best[b].d2 {
				best = append(best[:b], append([]cand{{i, d2}}, best[b:]...)...)
				inserted = true
				break
			}
		}
		if !inserted {
			best = append(best, cand{i, d2})
		}
		if len(best) > f.k {
			best = best[:f.k]
		}
	}
	var wx, wy, wsum float64
	for _, c := range best {
		w := 1 / (1e-6 + c.d2)
		wx += w * f.pos[c.idx].X
		wy += w * f.pos[c.idx].Y
		wsum += w
	}
	return geo.Point{X: wx / wsum, Y: wy / wsum}
}

// PredictBatch applies Predict to every row.
func (f *KNNFingerprint) PredictBatch(x *mat.Dense) []geo.Point {
	out := make([]geo.Point, x.Rows)
	for i := range out {
		out[i] = f.Predict(x.Row(i))
	}
	return out
}
