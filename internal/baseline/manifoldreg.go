package baseline

import (
	"fmt"

	"noble/internal/dataset"
	"noble/internal/geo"
	"noble/internal/manifold"
	"noble/internal/mat"
	"noble/internal/nn"
)

// ManifoldMethod selects which neighbor-based embedding backs the
// regressor.
type ManifoldMethod int

// Supported manifold embeddings (Table II rows 3 and 4).
const (
	MethodIsomap ManifoldMethod = iota
	MethodLLE
)

// String names the method for report tables.
func (m ManifoldMethod) String() string {
	switch m {
	case MethodIsomap:
		return "Isomap"
	case MethodLLE:
		return "LLE"
	default:
		return fmt.Sprintf("ManifoldMethod(%d)", int(m))
	}
}

// ManifoldRegConfig configures TrainManifoldRegression.
type ManifoldRegConfig struct {
	Method    ManifoldMethod
	Landmarks int // subsample size for the O(m³) eigen stage
	K         int // neighborhood size
	EmbedDim  int // embedding dimensionality (paper: 400 on full UJI)
	Reg       RegConfig
}

// DefaultManifoldRegConfig returns a tractable landmark configuration.
func DefaultManifoldRegConfig(method ManifoldMethod) ManifoldRegConfig {
	return ManifoldRegConfig{
		Method:    method,
		Landmarks: 300,
		K:         8,
		EmbedDim:  16,
		Reg:       DefaultRegConfig(),
	}
}

// embedder is the common surface of Isomap and LLE models.
type embedder interface {
	Transform(q []float64) []float64
	TransformBatch(q *mat.Dense) *mat.Dense
}

// ManifoldRegressor is the Table II "Isomap/LLE Deep Regression" baseline:
// fingerprints are first embedded with a neighbor-based manifold method,
// then a DNN regresses coordinates from the embedding. It is the
// neighbor-*aware* counterpart that NObLe's neighbor-oblivious objective is
// compared against.
type ManifoldRegressor struct {
	Method ManifoldMethod
	emb    embedder
	reg    *WiFiRegressor
	dim    int
}

// TrainManifoldRegression subsamples landmarks from the training split,
// fits the chosen embedding, embeds all training fingerprints, and trains
// the coordinate regressor on the embeddings.
func TrainManifoldRegression(ds *dataset.WiFi, cfg ManifoldRegConfig) (*ManifoldRegressor, error) {
	x := dataset.FeaturesMatrix(ds.Train)
	positions := dataset.Positions(ds.Train)
	m := cfg.Landmarks
	if m > x.Rows {
		m = x.Rows
	}
	if cfg.EmbedDim >= m {
		return nil, fmt.Errorf("baseline: embed dim %d must be < landmarks %d", cfg.EmbedDim, m)
	}
	rng := mat.NewRand(cfg.Reg.Seed + 7)
	perm := rng.Perm(x.Rows)[:m]
	landmarks := nn.SelectRows(x, perm)

	var emb embedder
	switch cfg.Method {
	case MethodIsomap:
		iso, err := manifold.FitIsomap(landmarks, cfg.K, cfg.EmbedDim)
		if err != nil {
			return nil, fmt.Errorf("baseline: fitting Isomap: %w", err)
		}
		emb = iso
	case MethodLLE:
		lle, err := manifold.FitLLE(landmarks, cfg.K, cfg.EmbedDim, 1e-3)
		if err != nil {
			return nil, fmt.Errorf("baseline: fitting LLE: %w", err)
		}
		emb = lle
	default:
		return nil, fmt.Errorf("baseline: unknown manifold method %v", cfg.Method)
	}
	embedded := emb.TransformBatch(x)
	reg := trainRegressor(embedded, positions, cfg.EmbedDim, cfg.Reg)
	return &ManifoldRegressor{Method: cfg.Method, emb: emb, reg: reg, dim: cfg.EmbedDim}, nil
}

// PredictBatch embeds the queries and regresses coordinates.
func (r *ManifoldRegressor) PredictBatch(x *mat.Dense) []geo.Point {
	return r.reg.PredictBatch(r.emb.TransformBatch(x))
}
