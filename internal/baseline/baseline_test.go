package baseline

import (
	"math"
	"testing"

	"noble/internal/dataset"
	"noble/internal/eval"
	"noble/internal/geo"
	"noble/internal/imu"
)

func tinyWiFi() *dataset.WiFi {
	cfg := dataset.SmallIPINConfig()
	cfg.NumWAPs = 25
	cfg.RefSpacing = 4
	cfg.SamplesPerRef = 5
	cfg.TestSamplesPerRef = 2
	cfg.Seed = 3
	return dataset.SynthIPIN(cfg)
}

func tinyRegConfig() RegConfig {
	cfg := DefaultRegConfig()
	cfg.Hidden = []int{32, 32}
	cfg.Epochs = 25
	return cfg
}

func TestScalerRoundTrip(t *testing.T) {
	pts := []geo.Point{{X: 10, Y: 100}, {X: 20, Y: 300}, {X: 30, Y: 200}}
	s := FitScaler(pts)
	m := s.Transform(pts)
	for i, p := range pts {
		back := s.Inverse(m.Row(i))
		if geo.Dist(back, p) > 1e-9 {
			t.Fatalf("round trip %v → %v", p, back)
		}
	}
	// Standardized coordinates have zero mean.
	var sx, sy float64
	for i := 0; i < m.Rows; i++ {
		sx += m.At(i, 0)
		sy += m.At(i, 1)
	}
	if math.Abs(sx) > 1e-9 || math.Abs(sy) > 1e-9 {
		t.Fatal("standardized targets must have zero mean")
	}
}

func TestScalerDegenerateAxis(t *testing.T) {
	pts := []geo.Point{{X: 5, Y: 1}, {X: 5, Y: 2}}
	s := FitScaler(pts)
	if s.Std[0] != 1 {
		t.Fatal("constant axis must fall back to unit std")
	}
}

func TestScalerEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FitScaler(nil)
}

func TestDeepRegressionLearns(t *testing.T) {
	ds := tinyWiFi()
	r := TrainWiFiRegression(ds, tinyRegConfig())
	x := dataset.FeaturesMatrix(ds.Test)
	preds := r.PredictBatch(x)
	stats := eval.Stats(eval.Errors(preds, dataset.Positions(ds.Test)))
	// Building is 40×17 m: regression should beat random (~15 m) but
	// stays behind NObLe.
	if stats.Mean > 10 {
		t.Fatalf("deep regression mean error %v", stats.Mean)
	}
	if r.FLOPs() <= 0 {
		t.Fatal("FLOPs must be positive")
	}
}

func TestProjectionNeverLeavesMap(t *testing.T) {
	ds := tinyWiFi()
	r := TrainWiFiRegression(ds, tinyRegConfig())
	x := dataset.FeaturesMatrix(ds.Test)
	raw := r.PredictBatch(x)
	projected := ProjectPredictions(ds.Plan, raw)
	if eval.OnMapRate(ds.Plan, projected) != 1 {
		t.Fatal("projected predictions must all be on-map")
	}
	// Projection must not hurt on-map predictions.
	for i, p := range raw {
		if ds.Plan.Accessible(p) && projected[i] != p {
			t.Fatal("on-map predictions must be unchanged")
		}
	}
}

func TestProjectionImprovesErrorOnAverage(t *testing.T) {
	// The paper found marginal improvement (Table II). Verify "not
	// worse" on the synthetic set.
	ds := tinyWiFi()
	r := TrainWiFiRegression(ds, tinyRegConfig())
	x := dataset.FeaturesMatrix(ds.Test)
	truth := dataset.Positions(ds.Test)
	rawStats := eval.Stats(eval.Errors(r.PredictBatch(x), truth))
	projStats := eval.Stats(eval.Errors(ProjectPredictions(ds.Plan, r.PredictBatch(x)), truth))
	if projStats.Mean > rawStats.Mean*1.15 {
		t.Fatalf("projection made things much worse: %v → %v", rawStats.Mean, projStats.Mean)
	}
}

func TestKNNFingerprintExactOnTrainingPoints(t *testing.T) {
	ds := tinyWiFi()
	f := NewKNNFingerprint(ds, 1)
	// A training fingerprint's nearest neighbor is itself.
	for i := 0; i < 10; i++ {
		p := f.Predict(ds.Train[i].Features)
		if geo.Dist(p, ds.Train[i].Pos) > 1e-9 {
			t.Fatalf("1-NN of a stored fingerprint must be its own position, got %v want %v",
				p, ds.Train[i].Pos)
		}
	}
}

func TestKNNFingerprintReasonableOnTest(t *testing.T) {
	ds := tinyWiFi()
	f := NewKNNFingerprint(ds, 5)
	x := dataset.FeaturesMatrix(ds.Test)
	stats := eval.Stats(eval.Errors(f.PredictBatch(x), dataset.Positions(ds.Test)))
	if stats.Mean > 8 {
		t.Fatalf("WkNN mean error %v", stats.Mean)
	}
}

func TestKNNFingerprintBadKPanics(t *testing.T) {
	ds := tinyWiFi()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewKNNFingerprint(ds, 0)
}

func TestManifoldRegressionIsomap(t *testing.T) {
	ds := tinyWiFi()
	cfg := DefaultManifoldRegConfig(MethodIsomap)
	cfg.Landmarks = 120
	cfg.EmbedDim = 8
	cfg.Reg = tinyRegConfig()
	r, err := TrainManifoldRegression(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := dataset.FeaturesMatrix(ds.Test)
	stats := eval.Stats(eval.Errors(r.PredictBatch(x), dataset.Positions(ds.Test)))
	if stats.Mean > 12 {
		t.Fatalf("Isomap regression mean error %v", stats.Mean)
	}
}

func TestManifoldRegressionLLE(t *testing.T) {
	ds := tinyWiFi()
	cfg := DefaultManifoldRegConfig(MethodLLE)
	cfg.Landmarks = 120
	cfg.EmbedDim = 8
	cfg.Reg = tinyRegConfig()
	r, err := TrainManifoldRegression(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := dataset.FeaturesMatrix(ds.Test)
	stats := eval.Stats(eval.Errors(r.PredictBatch(x), dataset.Positions(ds.Test)))
	if stats.Mean > 12 {
		t.Fatalf("LLE regression mean error %v", stats.Mean)
	}
}

func TestManifoldRegressionBadDim(t *testing.T) {
	ds := tinyWiFi()
	cfg := DefaultManifoldRegConfig(MethodIsomap)
	cfg.Landmarks = 50
	cfg.EmbedDim = 50
	if _, err := TrainManifoldRegression(ds, cfg); err == nil {
		t.Fatal("embed dim ≥ landmarks must error")
	}
}

func TestManifoldMethodString(t *testing.T) {
	if MethodIsomap.String() != "Isomap" || MethodLLE.String() != "LLE" {
		t.Fatal("method names")
	}
	if ManifoldMethod(99).String() == "" {
		t.Fatal("unknown method must still render")
	}
}

func tinyIMU() *imu.PathDataset {
	net := imu.NewCampusNetwork(6)
	cfg := imu.DefaultConfig()
	cfg.ReadingsPerSegment = 64
	cfg.TotalSegments = 120
	cfg.Walks = 2
	track := imu.Synthesize(net, cfg, 11)
	return imu.BuildPaths(track, imu.PathConfig{
		NumPaths: 500, MaxLen: 8, Frames: 4,
		TrainFrac: 0.64, ValFrac: 0.16, Seed: 5,
	})
}

func TestIMURegressionLearns(t *testing.T) {
	ds := tinyIMU()
	cfg := tinyRegConfig()
	cfg.Epochs = 30
	r := TrainIMURegression(ds, cfg)
	preds := r.PredictPaths(ds.Test)
	truth := make([]geo.Point, len(ds.Test))
	for i := range ds.Test {
		truth[i] = ds.Test[i].End
	}
	stats := eval.Stats(eval.Errors(preds, truth))
	// Campus is 160×60; blind guessing is tens of meters.
	if stats.Mean > 30 {
		t.Fatalf("IMU regression mean error %v", stats.Mean)
	}
	if r.FLOPs() <= 0 {
		t.Fatal("FLOPs must be positive")
	}
}
