package baseline

import (
	"noble/internal/geo"
	"noble/internal/imu"
	"noble/internal/mat"
	"noble/internal/nn"
)

// IMURegressor is the Table III Deep Regression baseline for tracking: it
// consumes the same padded per-segment features as NObLe plus the start
// coordinates, and regresses the end coordinates directly with MSE — no
// quantization, no structure.
type IMURegressor struct {
	net    *nn.Sequential
	scaler *Scaler
	frames int
	maxLen int
	segDim int
}

// TrainIMURegression fits the baseline on the dataset's training paths.
func TrainIMURegression(ds *imu.PathDataset, cfg RegConfig) *IMURegressor {
	segDim := imu.SegmentFeatureDim(ds.Frames)
	inDim := ds.MaxLen*segDim + 2
	rng := mat.NewRand(cfg.Seed)
	net := nn.NewMLP("imureg", inDim, cfg.Hidden, true, rng)
	net.Add(nn.NewDense("imureg.out", cfg.Hidden[len(cfg.Hidden)-1], 2, nn.InitXavier, rng))

	r := &IMURegressor{net: net, frames: ds.Frames, maxLen: ds.MaxLen, segDim: segDim}
	ends := make([]geo.Point, len(ds.Train))
	for i := range ds.Train {
		ends[i] = ds.Train[i].End
	}
	r.scaler = FitScaler(ends)
	x := r.featureMatrix(ds.Train)
	y := r.scaler.Transform(ends)
	loss := nn.NewMSE()
	params := net.Params()
	nn.Train(nn.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: cfg.BatchSize,
		Seed:      cfg.Seed + 1,
		Optimizer: nn.NewAdam(cfg.LR),
		LRDecay:   cfg.LRDecay,
		ClipNorm:  5,
		Logf:      cfg.Logf,
	}, x.Rows, params, func(batch []int) float64 {
		bx, by := nn.SelectRows(x, batch), nn.SelectRows(y, batch)
		out := net.Forward(bx, true)
		l := loss.Forward(out, by)
		net.Backward(loss.Backward())
		return l
	}, nil)
	return r
}

// featureMatrix stacks padded IMU features and start coordinates.
func (r *IMURegressor) featureMatrix(paths []imu.Path) *mat.Dense {
	width := r.maxLen*r.segDim + 2
	x := mat.New(len(paths), width)
	for i := range paths {
		p := &paths[i]
		row := x.Row(i)
		copy(row, p.PaddedFeatures(r.maxLen, r.frames))
		row[width-2] = p.Start.X
		row[width-1] = p.Start.Y
	}
	return x
}

// PredictPaths returns predicted end coordinates for the paths.
func (r *IMURegressor) PredictPaths(paths []imu.Path) []geo.Point {
	x := r.featureMatrix(paths)
	out := r.net.Forward(x, false)
	preds := make([]geo.Point, len(paths))
	for i := range preds {
		preds[i] = r.scaler.Inverse(out.Row(i))
	}
	return preds
}

// FLOPs estimates multiply-accumulates per inference.
func (r *IMURegressor) FLOPs() int64 { return r.net.FLOPs() }
