package imu

import "fmt"

// FeatureWindow is a fixed-capacity sliding window over per-segment
// feature vectors: the incremental counterpart of Path.Features for
// long-lived tracking sessions, where segments stream in one at a time
// and only the most recent Cap() segments matter. Appends are O(segDim)
// into a flat ring with no per-segment allocation; Concat materializes
// the window in arrival order for Path-style consumers.
type FeatureWindow struct {
	segDim  int
	maxSegs int
	buf     []float64 // flat ring of maxSegs × segDim values
	start   int       // ring slot (in segments) of the oldest entry
	count   int
}

// NewFeatureWindow returns an empty window holding at most maxSegs
// segments of segDim features each.
func NewFeatureWindow(maxSegs, segDim int) *FeatureWindow {
	if maxSegs <= 0 || segDim <= 0 {
		panic(fmt.Sprintf("imu: bad feature window %d segments × %d features", maxSegs, segDim))
	}
	return &FeatureWindow{
		segDim:  segDim,
		maxSegs: maxSegs,
		buf:     make([]float64, maxSegs*segDim),
	}
}

// Append adds one segment's features, evicting the oldest segment when
// the window is full. It panics when feats is not exactly one segment
// wide, mirroring SegmentFeatures' contract.
func (w *FeatureWindow) Append(feats []float64) {
	if len(feats) != w.segDim {
		panic(fmt.Sprintf("imu: appending %d features to a window of %d-wide segments", len(feats), w.segDim))
	}
	slot := (w.start + w.count) % w.maxSegs
	if w.count == w.maxSegs {
		slot = w.start
		w.start = (w.start + 1) % w.maxSegs
	} else {
		w.count++
	}
	copy(w.buf[slot*w.segDim:(slot+1)*w.segDim], feats)
}

// Len returns the number of segments currently windowed.
func (w *FeatureWindow) Len() int { return w.count }

// Cap returns the maximum number of segments the window holds.
func (w *FeatureWindow) Cap() int { return w.maxSegs }

// SegmentDim returns the per-segment feature width.
func (w *FeatureWindow) SegmentDim() int { return w.segDim }

// Reset empties the window.
func (w *FeatureWindow) Reset() { w.start, w.count = 0, 0 }

// Concat appends the windowed features to dst in arrival order and
// returns the extended slice.
func (w *FeatureWindow) Concat(dst []float64) []float64 { return w.ConcatFrom(0, dst) }

// ConcatFrom appends the windowed features from segment index skip
// onward (in arrival order) to dst and returns the extended slice —
// what a caller building a would-be-slid window needs without mutating
// this one.
func (w *FeatureWindow) ConcatFrom(skip int, dst []float64) []float64 {
	for i := skip; i < w.count; i++ {
		slot := (w.start + i) % w.maxSegs
		dst = append(dst, w.buf[slot*w.segDim:(slot+1)*w.segDim]...)
	}
	return dst
}
