package imu

import (
	"fmt"
	"math"

	"noble/internal/geo"
	"noble/internal/mat"
)

// FeaturesPerFrame is the per-frame summary width: the mean of each of the
// six channels plus the standard deviation of the accelerometer magnitude
// (a step-energy proxy).
const FeaturesPerFrame = Channels + 1

// SegmentFeatureDim returns the feature width of one segment summarized
// into frames time windows.
func SegmentFeatureDim(frames int) int { return frames * FeaturesPerFrame }

// SegmentFeatures summarizes raw readings into frames equal time windows.
// This is the fixed preprocessing in front of the paper's projection
// module: g_i stays a per-segment tensor, just at a tractable width. The
// gyro means preserve integrated turn rate; the accel-magnitude deviation
// preserves step energy (stride/speed); both are what dead reckoning needs.
func SegmentFeatures(readings *mat.Dense, frames int) []float64 {
	if frames <= 0 {
		panic(fmt.Sprintf("imu: non-positive frame count %d", frames))
	}
	n := readings.Rows
	out := make([]float64, SegmentFeatureDim(frames))
	for f := 0; f < frames; f++ {
		lo := f * n / frames
		hi := (f + 1) * n / frames
		if hi <= lo {
			hi = lo + 1
			if hi > n {
				lo, hi = n-1, n
			}
		}
		count := float64(hi - lo)
		base := f * FeaturesPerFrame
		var mags []float64
		for i := lo; i < hi; i++ {
			row := readings.Row(i)
			for c := 0; c < Channels; c++ {
				out[base+c] += row[c]
			}
			mags = append(mags, math.Sqrt(row[0]*row[0]+row[1]*row[1]+row[2]*row[2]))
		}
		for c := 0; c < Channels; c++ {
			out[base+c] /= count
		}
		out[base+Channels] = mat.Std(mags)
	}
	return out
}

// Path is one training example built by the paper's protocol: a start
// reference, a run of consecutive segments from one walk, and the end
// reference reached.
type Path struct {
	StartRef, EndRef int
	Start, End       geo.Point
	NumSegments      int
	Features         []float64 // NumSegments × SegmentFeatureDim, not padded
}

// PathDataset is the materialized path collection with the paper's splits.
type PathDataset struct {
	Net        *Network
	Frames     int
	MaxLen     int
	Train      []Path
	Validation []Path
	Test       []Path
}

// PathConfig controls BuildPaths.
type PathConfig struct {
	NumPaths int // 6857 in the paper
	MaxLen   int // path length strictly less than 50 segments
	Frames   int // time windows per segment for feature extraction
	// TrainFrac and ValFrac partition the paths (paper: 4389/1096/1372
	// ≈ 64%/16%/20%).
	TrainFrac, ValFrac float64
	Seed               int64
}

// DefaultPathConfig mirrors the paper's numbers.
func DefaultPathConfig() PathConfig {
	return PathConfig{
		NumPaths:  6857,
		MaxLen:    50,
		Frames:    8,
		TrainFrac: 4389.0 / 6857.0,
		ValFrac:   1096.0 / 6857.0,
		Seed:      7,
	}
}

// BuildPaths constructs the path dataset from a track following §V-A:
// (1) randomly choose a reference location (a position within a walk) as
// start, (2) randomly choose a path length less than MaxLen, (3)
// concatenate the IMU readings between start and end. Per-segment features
// are extracted once and shared across overlapping paths.
func BuildPaths(track *Track, cfg PathConfig) *PathDataset {
	if cfg.NumPaths <= 0 || cfg.MaxLen < 2 {
		panic(fmt.Sprintf("imu: bad path config %+v", cfg))
	}
	rng := mat.NewRand(cfg.Seed)
	// Pre-extract features per walk segment.
	segFeats := make([][][]float64, len(track.Walks))
	for wi, w := range track.Walks {
		segFeats[wi] = make([][]float64, len(w.Segments))
		for si, s := range w.Segments {
			segFeats[wi][si] = SegmentFeatures(s.Readings, cfg.Frames)
		}
	}
	dim := SegmentFeatureDim(cfg.Frames)
	paths := make([]Path, 0, cfg.NumPaths)
	for len(paths) < cfg.NumPaths {
		wi := rng.Intn(len(track.Walks))
		w := track.Walks[wi]
		if len(w.Segments) < 1 {
			continue
		}
		length := 1 + rng.Intn(cfg.MaxLen-1) // 1 .. MaxLen-1 segments
		if length > len(w.Segments) {
			length = len(w.Segments)
		}
		start := rng.Intn(len(w.Segments) - length + 1)
		feats := make([]float64, 0, length*dim)
		for s := start; s < start+length; s++ {
			feats = append(feats, segFeats[wi][s]...)
		}
		startRef := w.RefSeq[start]
		endRef := w.RefSeq[start+length]
		paths = append(paths, Path{
			StartRef:    startRef,
			EndRef:      endRef,
			Start:       track.Net.Refs[startRef],
			End:         track.Net.Refs[endRef],
			NumSegments: length,
			Features:    feats,
		})
	}
	nTrain := int(cfg.TrainFrac * float64(len(paths)))
	nVal := int(cfg.ValFrac * float64(len(paths)))
	perm := rng.Perm(len(paths))
	shuffled := make([]Path, len(paths))
	for i, p := range perm {
		shuffled[i] = paths[p]
	}
	return &PathDataset{
		Net:        track.Net,
		Frames:     cfg.Frames,
		MaxLen:     cfg.MaxLen,
		Train:      shuffled[:nTrain],
		Validation: shuffled[nTrain : nTrain+nVal],
		Test:       shuffled[nTrain+nVal:],
	}
}

// PaddedFeatures returns the path's features zero-padded to maxLen
// segments, the fixed-width input the projection module expects.
func (p *Path) PaddedFeatures(maxLen, frames int) []float64 {
	dim := SegmentFeatureDim(frames)
	out := make([]float64, maxLen*dim)
	copy(out, p.Features)
	return out
}

// Displacement returns the ground-truth displacement vector (end - start),
// the target of the displacement module.
func (p *Path) Displacement() geo.Point { return p.End.Sub(p.Start) }
