// Package imu synthesizes inertial measurement traces for the device
// tracking application of §V. The paper's dataset is a private campus walk
// (160 m × 60 m, 50 Hz, 177 reference locations, 768 readings per sensor
// axis between consecutive references, two walks totalling ~75 minutes);
// this package reproduces that collection protocol on the synthetic
// outdoor campus: a walker follows the sidewalk network, and each segment
// between reference locations yields 768 six-channel readings (3-axis
// accelerometer + 3-axis gyroscope) from a gait model with step impulses,
// turn-rate spikes, white noise, and slowly drifting gyro bias — the same
// error modes that make raw double-integration useless and motivate
// learned tracking.
package imu

import (
	"fmt"
	"math"
	"math/rand"

	"noble/internal/geo"
	"noble/internal/mat"
)

// Channels is the number of inertial channels per reading: accelerometer
// x/y/z then gyroscope x/y/z.
const Channels = 6

// Coordinate convention: accelerometer channels hold *orientation-fused,
// gravity-separated* linear acceleration in the world frame (x east,
// y north), plus gravity on z — what a phone's attitude/rotation-vector
// filter exposes. The gyroscope channels stay in the body frame (z = yaw
// rate). This substitution (documented in DESIGN.md) keeps the tracking
// problem well-posed: with raw body-frame accelerometry alone, a path's
// absolute initial heading is unobservable and *no* model — the paper's
// included — could recover the displacement direction.

// Config holds the collection-protocol and sensor-model parameters. The
// defaults mirror the paper's protocol.
type Config struct {
	SampleRateHz       float64 // 50 Hz in the paper
	ReadingsPerSegment int     // 768 readings between reference locations
	RefSpacing         float64 // meters between reference locations along routes
	TotalSegments      int     // total recorded segments across all walks
	Walks              int     // number of independent walks (2 in the paper)

	// Gait model.
	StepFreqHz  float64 // nominal step frequency
	StepAccAmp  float64 // vertical step impulse amplitude (m/s²)
	AccNoise    float64 // accelerometer white noise σ (m/s²)
	GyroNoise   float64 // gyroscope white noise σ (rad/s)
	GyroBiasRW  float64 // gyro bias random-walk σ per sample (rad/s)
	TurnSeconds float64 // time spent executing a turn at segment start
}

// DefaultConfig returns the paper-protocol configuration.
func DefaultConfig() Config {
	return Config{
		SampleRateHz:       50,
		ReadingsPerSegment: 768,
		RefSpacing:         3,
		TotalSegments:      293,
		Walks:              2,
		StepFreqHz:         1.8,
		StepAccAmp:         3.0,
		AccNoise:           1.2,
		GyroNoise:          0.08,
		GyroBiasRW:         0.001,
		TurnSeconds:        1.0,
	}
}

// Network is the walkable reference-location graph: positions plus
// adjacency, built along the campus sidewalk routes.
type Network struct {
	Refs []geo.Point
	Adj  [][]int
}

// NewCampusNetwork lays reference locations along the outdoor campus
// sidewalk midlines (outer loop plus the central cut-through between the
// two lawns) at the given spacing, and connects consecutive and coincident
// references. The default spacing of 3 m yields ≈177 references, matching
// the paper's count.
func NewCampusNetwork(spacing float64) *Network {
	if spacing <= 0 {
		panic(fmt.Sprintf("imu: non-positive ref spacing %v", spacing))
	}
	routes := []geo.Polyline{
		// Outer sidewalk loop (midline of the 12 m-wide walkway ring).
		{{X: 6, Y: 6}, {X: 154, Y: 6}, {X: 154, Y: 54}, {X: 6, Y: 54}, {X: 6, Y: 6}},
		// Central cut-through between the lawns.
		{{X: 80, Y: 6}, {X: 80, Y: 54}},
	}
	n := &Network{}
	addRef := func(p geo.Point) int {
		for i, q := range n.Refs {
			if geo.Dist(p, q) < spacing/2 {
				return i
			}
		}
		n.Refs = append(n.Refs, p)
		n.Adj = append(n.Adj, nil)
		return len(n.Refs) - 1
	}
	connect := func(a, b int) {
		if a == b {
			return
		}
		for _, x := range n.Adj[a] {
			if x == b {
				return
			}
		}
		n.Adj[a] = append(n.Adj[a], b)
		n.Adj[b] = append(n.Adj[b], a)
	}
	for _, route := range routes {
		length := route.Length()
		var prev = -1
		for d := 0.0; d <= length+1e-9; d += spacing {
			id := addRef(route.PointAt(d))
			if prev >= 0 {
				connect(prev, id)
			}
			prev = id
		}
	}
	return n
}

// Segment is the recording between two consecutive reference locations of
// a walk: ReadingsPerSegment × Channels samples in the device body frame.
type Segment struct {
	From, To int
	Readings *mat.Dense // rows: time, cols: [ax ay az gx gy gz]
}

// Walk is one continuous recording session.
type Walk struct {
	RefSeq   []int // visited reference indices, len = len(Segments)+1
	Segments []Segment
}

// Track is the full collected dataset: the reference network plus the
// recorded walks.
type Track struct {
	Net   *Network
	Walks []*Walk
	Cfg   Config
}

// Synthesize records cfg.Walks random walks over the network totalling
// cfg.TotalSegments segments. Each walk gets its own gait personality
// (stride, step frequency and noise multipliers), mirroring how different
// sessions/walkers differ.
func Synthesize(net *Network, cfg Config, seed int64) *Track {
	if cfg.Walks <= 0 || cfg.TotalSegments < cfg.Walks {
		panic(fmt.Sprintf("imu: bad walk plan %d walks / %d segments", cfg.Walks, cfg.TotalSegments))
	}
	rng := mat.NewRand(seed)
	track := &Track{Net: net, Cfg: cfg}
	per := cfg.TotalSegments / cfg.Walks
	for w := 0; w < cfg.Walks; w++ {
		count := per
		if w == cfg.Walks-1 {
			count = cfg.TotalSegments - per*(cfg.Walks-1)
		}
		track.Walks = append(track.Walks, synthesizeWalk(net, cfg, count, rng))
	}
	return track
}

// gait is a per-walk personality.
type gait struct {
	stepFreq float64
	stepAmp  float64
	accNoise float64
	gyrNoise float64
	biasRW   float64
}

func synthesizeWalk(net *Network, cfg Config, segments int, rng *rand.Rand) *Walk {
	g := gait{
		stepFreq: cfg.StepFreqHz * (0.9 + 0.2*rng.Float64()),
		stepAmp:  cfg.StepAccAmp * (0.85 + 0.3*rng.Float64()),
		accNoise: cfg.AccNoise * (0.8 + 0.4*rng.Float64()),
		gyrNoise: cfg.GyroNoise * (0.8 + 0.4*rng.Float64()),
		biasRW:   cfg.GyroBiasRW * (0.8 + 0.4*rng.Float64()),
	}
	walk := &Walk{}
	cur := rng.Intn(len(net.Refs))
	prev := -1
	walk.RefSeq = append(walk.RefSeq, cur)
	heading := 0.0
	first := true
	bias := [3]float64{}
	for s := 0; s < segments; s++ {
		next := pickNext(net, cur, prev, rng)
		dir := net.Refs[next].Sub(net.Refs[cur])
		newHeading := math.Atan2(dir.Y, dir.X)
		prevHeading := heading
		if first {
			prevHeading = newHeading
		}
		first = false
		heading = newHeading
		seg := Segment{
			From:     cur,
			To:       next,
			Readings: synthesizeSegment(cfg, g, prevHeading, newHeading, &bias, rng),
		}
		walk.Segments = append(walk.Segments, seg)
		walk.RefSeq = append(walk.RefSeq, next)
		prev, cur = cur, next
	}
	return walk
}

// pickNext chooses the next reference, avoiding an immediate U-turn when
// possible.
func pickNext(net *Network, cur, prev int, rng *rand.Rand) int {
	nbrs := net.Adj[cur]
	if len(nbrs) == 0 {
		panic(fmt.Sprintf("imu: reference %d has no neighbors", cur))
	}
	candidates := make([]int, 0, len(nbrs))
	for _, nb := range nbrs {
		if nb != prev {
			candidates = append(candidates, nb)
		}
	}
	if len(candidates) == 0 {
		candidates = nbrs
	}
	return candidates[rng.Intn(len(candidates))]
}

// synthesizeSegment produces the readings for one segment. The heading
// rotates from prevHeading to newHeading over the first TurnSeconds (the
// corner turn); gravity sits on the accelerometer z axis together with the
// vertical step bounce; the horizontal channels carry the world-frame
// walking surge (positive pulses along the heading, the output of an
// orientation filter — see the package comment) plus lateral sway; the
// gyro z channel integrates to the executed turn and, like all gyro
// channels, carries a drifting bias.
func synthesizeSegment(cfg Config, g gait, prevHeading, newHeading float64, bias *[3]float64, rng *rand.Rand) *mat.Dense {
	n := cfg.ReadingsPerSegment
	dt := 1 / cfg.SampleRateHz
	out := mat.New(n, Channels)
	turnSamples := int(cfg.TurnSeconds * cfg.SampleRateHz)
	if turnSamples < 1 {
		turnSamples = 1
	}
	if turnSamples > n {
		turnSamples = n
	}
	turn := geo.WrapAngle(newHeading - prevHeading)
	turnRate := turn / (float64(turnSamples) * dt)
	phase := rng.Float64() * 2 * math.Pi
	for i := 0; i < n; i++ {
		row := out.Row(i)
		t := float64(i) * dt
		heading := newHeading
		if i < turnSamples {
			heading = prevHeading + turn*float64(i+1)/float64(turnSamples)
		}
		stepPhase := 2*math.Pi*g.stepFreq*t + phase
		// Positive surge pulses during each stance phase, directed
		// along the walking heading; sway is perpendicular.
		surge := 0.5 * g.stepAmp * math.Max(0, math.Sin(stepPhase))
		sway := 0.15 * g.stepAmp * math.Sin(stepPhase)
		row[0] = surge*math.Cos(heading) - sway*math.Sin(heading) + rng.NormFloat64()*g.accNoise
		row[1] = surge*math.Sin(heading) + sway*math.Cos(heading) + rng.NormFloat64()*g.accNoise
		row[2] = 9.81 + g.stepAmp*math.Max(0, math.Sin(stepPhase)) + rng.NormFloat64()*g.accNoise

		// Gyro bias random walk.
		for a := 0; a < 3; a++ {
			bias[a] += rng.NormFloat64() * g.biasRW
		}
		row[3] = bias[0] + rng.NormFloat64()*g.gyrNoise
		row[4] = bias[1] + rng.NormFloat64()*g.gyrNoise
		gz := bias[2] + rng.NormFloat64()*g.gyrNoise
		if i < turnSamples {
			gz += turnRate
		}
		row[5] = gz
	}
	return out
}

// TotalReadings returns the total number of readings across all walks.
func (t *Track) TotalReadings() int {
	total := 0
	for _, w := range t.Walks {
		for _, s := range w.Segments {
			total += s.Readings.Rows
		}
	}
	return total
}

// Duration returns the recorded wall-clock time in seconds.
func (t *Track) Duration() float64 {
	return float64(t.TotalReadings()) / t.Cfg.SampleRateHz
}
