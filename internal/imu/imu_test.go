package imu

import (
	"math"
	"testing"

	"noble/internal/floorplan"
	"noble/internal/geo"
	"noble/internal/mat"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.ReadingsPerSegment = 64
	cfg.TotalSegments = 24
	cfg.Walks = 2
	return cfg
}

func TestNetworkRefCountNearPaper(t *testing.T) {
	net := NewCampusNetwork(3)
	// The paper's dataset has 177 reference locations.
	if len(net.Refs) < 140 || len(net.Refs) > 210 {
		t.Fatalf("refs=%d, want ≈177", len(net.Refs))
	}
}

func TestNetworkRefsAreAccessible(t *testing.T) {
	net := NewCampusNetwork(3)
	plan := floorplan.OutdoorCampus()
	for i, r := range net.Refs {
		if !plan.Accessible(r) {
			t.Fatalf("ref %d at %v is off the sidewalk", i, r)
		}
	}
}

func TestNetworkConnectivity(t *testing.T) {
	net := NewCampusNetwork(3)
	for i, adj := range net.Adj {
		if len(adj) == 0 {
			t.Fatalf("ref %d isolated", i)
		}
	}
	// BFS from 0 must reach everything (single connected component).
	seen := make([]bool, len(net.Refs))
	queue := []int{0}
	seen[0] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range net.Adj[cur] {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("ref %d unreachable", i)
		}
	}
}

func TestNetworkAdjacentRefsClose(t *testing.T) {
	spacing := 3.0
	net := NewCampusNetwork(spacing)
	for i, adj := range net.Adj {
		for _, j := range adj {
			if d := geo.Dist(net.Refs[i], net.Refs[j]); d > 2.5*spacing {
				t.Fatalf("adjacent refs %d-%d are %v m apart", i, j, d)
			}
		}
	}
}

func TestNetworkBadSpacingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCampusNetwork(0)
}

func TestSynthesizeShape(t *testing.T) {
	net := NewCampusNetwork(3)
	cfg := smallConfig()
	track := Synthesize(net, cfg, 1)
	if len(track.Walks) != 2 {
		t.Fatalf("walks=%d", len(track.Walks))
	}
	total := 0
	for _, w := range track.Walks {
		total += len(w.Segments)
		if len(w.RefSeq) != len(w.Segments)+1 {
			t.Fatal("RefSeq must have one more entry than Segments")
		}
		for i, s := range w.Segments {
			if s.Readings.Rows != cfg.ReadingsPerSegment || s.Readings.Cols != Channels {
				t.Fatalf("segment readings %d×%d", s.Readings.Rows, s.Readings.Cols)
			}
			if s.From != w.RefSeq[i] || s.To != w.RefSeq[i+1] {
				t.Fatal("segment endpoints disagree with RefSeq")
			}
			// Consecutive refs must be graph neighbors.
			ok := false
			for _, nb := range net.Adj[s.From] {
				if nb == s.To {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("segment %d-%d not an edge", s.From, s.To)
			}
		}
	}
	if total != cfg.TotalSegments {
		t.Fatalf("total segments=%d want %d", total, cfg.TotalSegments)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	net := NewCampusNetwork(3)
	cfg := smallConfig()
	a := Synthesize(net, cfg, 5)
	b := Synthesize(net, cfg, 5)
	if a.Walks[0].RefSeq[0] != b.Walks[0].RefSeq[0] {
		t.Fatal("same seed must give same walk")
	}
	if !mat.Equal(a.Walks[0].Segments[0].Readings, b.Walks[0].Segments[0].Readings, 0) {
		t.Fatal("same seed must give identical readings")
	}
	c := Synthesize(net, cfg, 6)
	if mat.Equal(a.Walks[0].Segments[0].Readings, c.Walks[0].Segments[0].Readings, 0) {
		t.Fatal("different seeds must differ")
	}
}

func TestGravityOnZAxis(t *testing.T) {
	net := NewCampusNetwork(3)
	track := Synthesize(net, smallConfig(), 2)
	seg := track.Walks[0].Segments[0]
	az := mat.Mean(seg.Readings.Col(2))
	if az < 9 || az > 12 {
		t.Fatalf("mean vertical accel %v, want ≈ 9.81 + step energy", az)
	}
	ax := mat.Mean(seg.Readings.Col(0))
	if math.Abs(ax) > 1.5 {
		t.Fatalf("mean forward accel %v should be near zero", ax)
	}
}

func TestGyroIntegratesTurn(t *testing.T) {
	// Build a track long enough to contain turns, find a segment whose
	// heading change is significant, and verify ∫gyro_z ≈ turn.
	net := NewCampusNetwork(3)
	cfg := smallConfig()
	cfg.TotalSegments = 120
	track := Synthesize(net, cfg, 3)
	dt := 1 / cfg.SampleRateHz
	checked := 0
	for _, w := range track.Walks {
		heading := math.NaN()
		for _, s := range w.Segments {
			dir := net.Refs[s.To].Sub(net.Refs[s.From])
			newHeading := math.Atan2(dir.Y, dir.X)
			if !math.IsNaN(heading) {
				turn := geo.WrapAngle(newHeading - heading)
				if math.Abs(turn) > 0.5 { // a real corner
					var integ float64
					for i := 0; i < s.Readings.Rows; i++ {
						integ += s.Readings.At(i, 5) * dt
					}
					if math.Abs(integ-turn) > 0.35 {
						t.Fatalf("∫gyro=%v for turn %v", integ, turn)
					}
					checked++
				}
			}
			heading = newHeading
		}
	}
	if checked == 0 {
		t.Fatal("no turns found in 120 segments — network walk broken")
	}
}

func TestTrackDuration(t *testing.T) {
	net := NewCampusNetwork(3)
	cfg := DefaultConfig()
	cfg.TotalSegments = 293
	cfg.ReadingsPerSegment = 768
	// Don't synthesize the full track (slow); verify arithmetic on a
	// small one instead.
	cfg.TotalSegments = 10
	cfg.ReadingsPerSegment = 100
	track := Synthesize(net, cfg, 4)
	if track.TotalReadings() != 1000 {
		t.Fatalf("TotalReadings=%d", track.TotalReadings())
	}
	if track.Duration() != 20 {
		t.Fatalf("Duration=%v want 20s", track.Duration())
	}
}

func TestPaperProtocolDuration(t *testing.T) {
	// 293 segments × 768 readings at 50 Hz ≈ 75 minutes, the paper's
	// "around 1 hour and 15 minutes".
	secs := 293.0 * 768.0 / 50.0
	if secs < 70*60 || secs > 80*60 {
		t.Fatalf("protocol duration %v s disagrees with the paper", secs)
	}
}

func TestSegmentFeaturesShape(t *testing.T) {
	net := NewCampusNetwork(3)
	track := Synthesize(net, smallConfig(), 5)
	f := SegmentFeatures(track.Walks[0].Segments[0].Readings, 8)
	if len(f) != SegmentFeatureDim(8) {
		t.Fatalf("features len=%d want %d", len(f), SegmentFeatureDim(8))
	}
	if SegmentFeatureDim(8) != 8*7 {
		t.Fatalf("SegmentFeatureDim(8)=%d", SegmentFeatureDim(8))
	}
}

func TestSegmentFeaturesCaptureGravity(t *testing.T) {
	net := NewCampusNetwork(3)
	track := Synthesize(net, smallConfig(), 6)
	f := SegmentFeatures(track.Walks[0].Segments[0].Readings, 4)
	// Every frame's az mean (index 2 within each frame) should be ≈ g.
	for frame := 0; frame < 4; frame++ {
		az := f[frame*FeaturesPerFrame+2]
		if az < 9 || az > 12 {
			t.Fatalf("frame %d az mean %v", frame, az)
		}
	}
}

func TestSegmentFeaturesBadFramesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SegmentFeatures(mat.New(10, Channels), 0)
}

func TestBuildPathsProtocol(t *testing.T) {
	net := NewCampusNetwork(3)
	cfg := smallConfig()
	cfg.TotalSegments = 60
	track := Synthesize(net, cfg, 7)
	pcfg := PathConfig{NumPaths: 300, MaxLen: 10, Frames: 4, TrainFrac: 0.6, ValFrac: 0.2, Seed: 1}
	ds := BuildPaths(track, pcfg)
	if got := len(ds.Train) + len(ds.Validation) + len(ds.Test); got != 300 {
		t.Fatalf("total paths=%d", got)
	}
	if len(ds.Train) != 180 || len(ds.Validation) != 60 {
		t.Fatalf("split %d/%d/%d", len(ds.Train), len(ds.Validation), len(ds.Test))
	}
	dim := SegmentFeatureDim(4)
	for _, p := range ds.Train {
		if p.NumSegments < 1 || p.NumSegments >= 10 {
			t.Fatalf("path length %d outside [1,10)", p.NumSegments)
		}
		if len(p.Features) != p.NumSegments*dim {
			t.Fatalf("features len=%d want %d", len(p.Features), p.NumSegments*dim)
		}
		if p.Start != net.Refs[p.StartRef] || p.End != net.Refs[p.EndRef] {
			t.Fatal("path endpoints must match referenced locations")
		}
	}
}

func TestBuildPathsPaperSplitFractions(t *testing.T) {
	cfg := DefaultPathConfig()
	if math.Abs(cfg.TrainFrac*6857-4389) > 1 || math.Abs(cfg.ValFrac*6857-1096) > 1 {
		t.Fatal("default split must reproduce 4389/1096/1372")
	}
}

func TestPaddedFeatures(t *testing.T) {
	p := Path{NumSegments: 2, Features: []float64{1, 2, 3, 4}}
	out := p.PaddedFeatures(4, 1) // dim per segment = 7 → wait, frames=1 ⇒ dim=7
	if len(out) != 4*SegmentFeatureDim(1) {
		t.Fatalf("padded len=%d", len(out))
	}
	if out[0] != 1 || out[3] != 4 {
		t.Fatal("padded features must start with the raw features")
	}
	for _, v := range out[4:] {
		if v != 0 {
			t.Fatal("padding must be zero")
		}
	}
}

func TestDisplacement(t *testing.T) {
	p := Path{Start: geo.Point{X: 1, Y: 2}, End: geo.Point{X: 4, Y: 6}}
	if p.Displacement() != (geo.Point{X: 3, Y: 4}) {
		t.Fatalf("Displacement=%v", p.Displacement())
	}
}

func TestBuildPathsBadConfigPanics(t *testing.T) {
	net := NewCampusNetwork(3)
	track := Synthesize(net, smallConfig(), 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildPaths(track, PathConfig{NumPaths: 0, MaxLen: 10, Frames: 4})
}

func TestSynthesizeBadPlanPanics(t *testing.T) {
	net := NewCampusNetwork(3)
	cfg := smallConfig()
	cfg.Walks = 0
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Synthesize(net, cfg, 1)
}
