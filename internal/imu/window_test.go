package imu

import (
	"reflect"
	"testing"
)

func TestFeatureWindowSlides(t *testing.T) {
	w := NewFeatureWindow(3, 2)
	if w.Len() != 0 || w.Cap() != 3 || w.SegmentDim() != 2 {
		t.Fatalf("fresh window: len=%d cap=%d dim=%d", w.Len(), w.Cap(), w.SegmentDim())
	}
	w.Append([]float64{1, 1})
	w.Append([]float64{2, 2})
	if got := w.Concat(nil); !reflect.DeepEqual(got, []float64{1, 1, 2, 2}) {
		t.Fatalf("partial window concat %v", got)
	}
	w.Append([]float64{3, 3})
	w.Append([]float64{4, 4}) // evicts {1,1}
	if w.Len() != 3 {
		t.Fatalf("full window len %d, want 3", w.Len())
	}
	if got := w.Concat(nil); !reflect.DeepEqual(got, []float64{2, 2, 3, 3, 4, 4}) {
		t.Fatalf("slid window concat %v", got)
	}
	w.Append([]float64{5, 5})
	if got := w.Concat(nil); !reflect.DeepEqual(got, []float64{3, 3, 4, 4, 5, 5}) {
		t.Fatalf("second slide concat %v", got)
	}
	w.Reset()
	if w.Len() != 0 || len(w.Concat(nil)) != 0 {
		t.Fatalf("reset window not empty")
	}
	// Refill after reset starts clean.
	w.Append([]float64{9, 9})
	if got := w.Concat(nil); !reflect.DeepEqual(got, []float64{9, 9}) {
		t.Fatalf("post-reset concat %v", got)
	}
}

func TestFeatureWindowRejectsWrongDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("appending a wrong-width segment must panic")
		}
	}()
	NewFeatureWindow(2, 3).Append([]float64{1, 2})
}
