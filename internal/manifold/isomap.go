package manifold

import (
	"fmt"
	"math"

	"noble/internal/mat"
)

// Isomap is a fitted isometric-mapping model [14]: landmark inputs, their
// graph-geodesic distance matrix, and the Nyström machinery for embedding
// unseen points.
type Isomap struct {
	X   *mat.Dense // m×d landmark inputs
	Emb *mat.Dense // m×dim landmark embedding
	K   int
	Dim int

	geo     *mat.Dense // m×m geodesic distances
	eigVals []float64
	eigVecs *mat.Dense // m×dim
	colMean []float64  // column means of squared geodesic distances
}

// FitIsomap fits Isomap with a k-neighbor graph and a dim-dimensional
// embedding on the rows of x (the landmarks).
func FitIsomap(x *mat.Dense, k, dim int) (*Isomap, error) {
	if dim < 1 || dim >= x.Rows {
		return nil, fmt.Errorf("manifold: Isomap dim %d outside [1,%d)", dim, x.Rows)
	}
	geo := GeodesicDistances(x, k)
	b := gramFromDistances(geo)
	vals, vecs, err := mat.TopEig(b, dim)
	if err != nil {
		return nil, err
	}
	m := x.Rows
	emb := mat.New(m, dim)
	for a := 0; a < dim; a++ {
		scale := 0.0
		if vals[a] > 0 {
			scale = math.Sqrt(vals[a])
		}
		for i := 0; i < m; i++ {
			emb.Set(i, a, vecs.At(i, a)*scale)
		}
	}
	colMean := make([]float64, m)
	for i := 0; i < m; i++ {
		var s float64
		for j := 0; j < m; j++ {
			g := geo.At(i, j)
			s += g * g
		}
		colMean[i] = s / float64(m)
	}
	return &Isomap{
		X: x, Emb: emb, K: k, Dim: dim,
		geo: geo, eigVals: vals, eigVecs: vecs, colMean: colMean,
	}, nil
}

// Transform embeds an unseen point by the landmark-MDS (Nyström) formula:
// the point's geodesic distance to each landmark is approximated through
// its nearest landmarks, then z_a = v_aᵀ(colMean - δ)/(2√λ_a).
func (iso *Isomap) Transform(q []float64) []float64 {
	m := iso.X.Rows
	// Geodesic estimate: hop to one of the k nearest landmarks, then
	// follow the landmark graph.
	near := NearestTo(iso.X, q, iso.K)
	d2 := make([]float64, m)
	for i := 0; i < m; i++ {
		best := math.Inf(1)
		for _, j := range near {
			d := math.Sqrt(sqDist(q, iso.X.Row(j))) + iso.geo.At(j, i)
			if d < best {
				best = d
			}
		}
		d2[i] = best * best
	}
	z := make([]float64, iso.Dim)
	for a := 0; a < iso.Dim; a++ {
		if iso.eigVals[a] <= 0 {
			continue
		}
		var s float64
		for i := 0; i < m; i++ {
			s += iso.eigVecs.At(i, a) * (iso.colMean[i] - d2[i])
		}
		z[a] = s / (2 * math.Sqrt(iso.eigVals[a]))
	}
	return z
}

// TransformBatch embeds every row of q.
func (iso *Isomap) TransformBatch(q *mat.Dense) *mat.Dense {
	out := mat.New(q.Rows, iso.Dim)
	for i := 0; i < q.Rows; i++ {
		copy(out.Row(i), iso.Transform(q.Row(i)))
	}
	return out
}
