package manifold

import (
	"math"
	"testing"

	"noble/internal/mat"
)

// lineData returns n points along a 1-D line embedded in 3-D with tiny
// off-axis noise.
func lineData(n int, seed int64) *mat.Dense {
	rng := mat.NewRand(seed)
	x := mat.New(n, 3)
	for i := 0; i < n; i++ {
		t := float64(i)
		x.Set(i, 0, t)
		x.Set(i, 1, rng.NormFloat64()*0.01)
		x.Set(i, 2, rng.NormFloat64()*0.01)
	}
	return x
}

// arcData returns points along a semicircular arc in 2-D: a 1-D manifold
// whose geodesic distances exceed Euclidean chords.
func arcData(n int) *mat.Dense {
	x := mat.New(n, 2)
	for i := 0; i < n; i++ {
		theta := math.Pi * float64(i) / float64(n-1)
		x.Set(i, 0, math.Cos(theta))
		x.Set(i, 1, math.Sin(theta))
	}
	return x
}

func TestKNNOnLine(t *testing.T) {
	x := lineData(10, 1)
	idx := KNN(x, 2)
	// Interior point 5: neighbors must be 4 and 6.
	n5 := map[int]bool{idx[5][0]: true, idx[5][1]: true}
	if !n5[4] || !n5[6] {
		t.Fatalf("neighbors of 5 = %v want {4,6}", idx[5])
	}
	// Endpoint 0: nearest is 1 then 2.
	if idx[0][0] != 1 || idx[0][1] != 2 {
		t.Fatalf("neighbors of 0 = %v", idx[0])
	}
}

func TestKNNExcludesSelf(t *testing.T) {
	x := lineData(6, 2)
	idx := KNN(x, 3)
	for i, nbrs := range idx {
		for _, j := range nbrs {
			if j == i {
				t.Fatal("KNN must exclude the query point")
			}
		}
	}
}

func TestKNNClampsK(t *testing.T) {
	x := lineData(4, 3)
	idx := KNN(x, 99)
	if len(idx[0]) != 3 {
		t.Fatalf("k should clamp to n-1=3, got %d", len(idx[0]))
	}
}

func TestKNNDistancesSorted(t *testing.T) {
	x := lineData(12, 4)
	_, dist := KNNDistances(x, 5)
	for i, ds := range dist {
		for a := 1; a < len(ds); a++ {
			if ds[a] < ds[a-1] {
				t.Fatalf("distances for %d not ascending: %v", i, ds)
			}
		}
	}
}

func TestKNNBadKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KNN(lineData(5, 5), 0)
}

func TestNearestTo(t *testing.T) {
	x := lineData(10, 6)
	got := NearestTo(x, []float64{4.1, 0, 0}, 3)
	if got[0] != 4 {
		t.Fatalf("nearest to 4.1 is %d want 4", got[0])
	}
	if len(got) != 3 {
		t.Fatalf("len=%d", len(got))
	}
}

func TestGeodesicLineEqualsArcLength(t *testing.T) {
	x := lineData(10, 7)
	g := GeodesicDistances(x, 2)
	// Geodesic 0→9 must be ≈ 9 (hop along the line), not the direct 9.0
	// (same here since it's a line) — but for each adjacent pair exactly
	// the gap.
	if math.Abs(g.At(0, 9)-9) > 0.1 {
		t.Fatalf("geodesic(0,9)=%v want ≈9", g.At(0, 9))
	}
	if g.At(3, 3) != 0 {
		t.Fatal("self geodesic must be 0")
	}
	// Symmetry.
	if math.Abs(g.At(2, 7)-g.At(7, 2)) > 1e-12 {
		t.Fatal("geodesics must be symmetric")
	}
}

func TestGeodesicExceedsChordOnArc(t *testing.T) {
	x := arcData(40)
	g := GeodesicDistances(x, 2)
	chord := math.Sqrt(sqDist(x.Row(0), x.Row(39))) // = 2 (diameter)
	if g.At(0, 39) < chord+0.5 {
		t.Fatalf("arc geodesic %v should exceed chord %v by ≈π-2", g.At(0, 39), chord)
	}
	if math.Abs(g.At(0, 39)-math.Pi) > 0.2 {
		t.Fatalf("arc geodesic %v want ≈π", g.At(0, 39))
	}
}

func TestGeodesicConnectsComponents(t *testing.T) {
	// Two well-separated clusters: kNN graph is disconnected, the
	// builder must bridge it.
	rng := mat.NewRand(8)
	x := mat.New(20, 2)
	for i := 0; i < 10; i++ {
		x.Set(i, 0, rng.Float64())
		x.Set(i, 1, rng.Float64())
		x.Set(i+10, 0, 100+rng.Float64())
		x.Set(i+10, 1, rng.Float64())
	}
	g := GeodesicDistances(x, 3)
	if math.IsInf(g.At(0, 15), 0) {
		t.Fatal("cross-cluster geodesic must be finite after bridging")
	}
	if g.At(0, 15) < 90 {
		t.Fatalf("cross-cluster geodesic %v suspiciously small", g.At(0, 15))
	}
}

func TestMDSRecoversPlanarConfiguration(t *testing.T) {
	// Points in 2-D; MDS from their exact distance matrix must
	// reproduce all pairwise distances.
	pts := mat.FromRows([][]float64{{0, 0}, {3, 0}, {3, 4}, {0, 4}, {1.5, 2}})
	n := pts.Rows
	dist := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dist.Set(i, j, math.Sqrt(sqDist(pts.Row(i), pts.Row(j))))
		}
	}
	z, err := MDS(dist, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			got := math.Sqrt(sqDist(z.Row(i), z.Row(j)))
			want := dist.At(i, j)
			if math.Abs(got-want) > 1e-6 {
				t.Fatalf("embedded distance (%d,%d)=%v want %v", i, j, got, want)
			}
		}
	}
	if s := MDSStress(z, dist); s > 1e-6 {
		t.Fatalf("stress=%v", s)
	}
}

func TestMDSBadInputs(t *testing.T) {
	if _, err := MDS(mat.New(3, 4), 2); err == nil {
		t.Fatal("non-square must error")
	}
	if _, err := MDS(mat.New(3, 3), 0); err == nil {
		t.Fatal("dim 0 must error")
	}
	if _, err := MDS(mat.New(3, 3), 3); err == nil {
		t.Fatal("dim ≥ n must error")
	}
}

func TestIsomapUnrollsArc(t *testing.T) {
	x := arcData(30)
	iso, err := FitIsomap(x, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A 1-D embedding of an arc must be monotone in arc order.
	sign := 0.0
	for i := 1; i < 30; i++ {
		d := iso.Emb.At(i, 0) - iso.Emb.At(i-1, 0)
		if sign == 0 && d != 0 {
			sign = d
		}
		if d*sign < 0 {
			t.Fatalf("embedding not monotone at %d", i)
		}
	}
	// Embedded span ≈ arc length π.
	span := math.Abs(iso.Emb.At(29, 0) - iso.Emb.At(0, 0))
	if math.Abs(span-math.Pi) > 0.3 {
		t.Fatalf("embedded span %v want ≈π", span)
	}
}

func TestIsomapTransformConsistentOnTrainingPoints(t *testing.T) {
	x := arcData(25)
	iso, err := FitIsomap(x, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 7, 12, 24} {
		z := iso.Transform(x.Row(i))
		if math.Abs(z[0]-iso.Emb.At(i, 0)) > 0.25 {
			t.Fatalf("transform(train %d)=%v emb=%v", i, z[0], iso.Emb.At(i, 0))
		}
	}
}

func TestIsomapTransformInterpolates(t *testing.T) {
	x := arcData(25)
	iso, err := FitIsomap(x, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Query between points 10 and 11 must embed between them.
	q := []float64{
		(x.At(10, 0) + x.At(11, 0)) / 2,
		(x.At(10, 1) + x.At(11, 1)) / 2,
	}
	z := iso.Transform(q)[0]
	lo := math.Min(iso.Emb.At(10, 0), iso.Emb.At(11, 0)) - 0.2
	hi := math.Max(iso.Emb.At(10, 0), iso.Emb.At(11, 0)) + 0.2
	if z < lo || z > hi {
		t.Fatalf("midpoint embeds at %v outside [%v,%v]", z, lo, hi)
	}
}

func TestIsomapBatchShape(t *testing.T) {
	x := arcData(20)
	iso, err := FitIsomap(x, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := iso.TransformBatch(x)
	if out.Rows != 20 || out.Cols != 2 {
		t.Fatalf("batch shape %d×%d", out.Rows, out.Cols)
	}
}

func TestIsomapBadDim(t *testing.T) {
	if _, err := FitIsomap(arcData(10), 2, 0); err == nil {
		t.Fatal("dim 0 must error")
	}
	if _, err := FitIsomap(arcData(10), 2, 10); err == nil {
		t.Fatal("dim ≥ m must error")
	}
}

func TestLLEPreservesLineOrder(t *testing.T) {
	x := lineData(20, 9)
	lle, err := FitLLE(x, 3, 1, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	sign := 0.0
	for i := 1; i < 20; i++ {
		d := lle.Emb.At(i, 0) - lle.Emb.At(i-1, 0)
		if sign == 0 && d != 0 {
			sign = d
		}
		if d*sign < -1e-9 {
			t.Fatalf("LLE embedding not monotone at %d", i)
		}
	}
}

func TestLLEWeightsSumToOne(t *testing.T) {
	x := lineData(10, 10)
	neighbors := KNN(x, 3)
	w, err := reconstructionWeights(x, x.Row(4), neighbors[4], 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range w {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum %v", sum)
	}
}

func TestLLETransformNearTrainingEmbedding(t *testing.T) {
	x := lineData(20, 11)
	lle, err := FitLLE(x, 3, 1, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	z := lle.Transform(x.Row(7))
	if math.Abs(z[0]-lle.Emb.At(7, 0)) > 0.5 {
		t.Fatalf("transform(train)=%v emb=%v", z[0], lle.Emb.At(7, 0))
	}
}

func TestLLETransformBatchShape(t *testing.T) {
	x := lineData(15, 12)
	lle, err := FitLLE(x, 3, 2, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	out := lle.TransformBatch(x)
	if out.Rows != 15 || out.Cols != 2 {
		t.Fatalf("batch %d×%d", out.Rows, out.Cols)
	}
}

func TestLLEBadDim(t *testing.T) {
	if _, err := FitLLE(lineData(8, 13), 2, 0, 1e-3); err == nil {
		t.Fatal("dim 0 must error")
	}
	if _, err := FitLLE(lineData(8, 13), 2, 8, 1e-3); err == nil {
		t.Fatal("dim ≥ m must error")
	}
}
