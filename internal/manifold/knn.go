// Package manifold implements the classical neighbor-based manifold
// learning methods the paper compares against (§II, Table II): k-nearest
// neighbor graphs, Dijkstra geodesic distances, classical multidimensional
// scaling, Isomap [14] and locally linear embedding [13], each with a
// Nyström-style out-of-sample transform so they can embed test
// fingerprints. These methods actively use input-space Euclidean
// neighborhoods — exactly the information NObLe deliberately ignores — and
// the contrast between them is the paper's central ablation.
//
// Following standard practice at scale, both Isomap and LLE are fitted on a
// landmark subsample (the paper used the full 20k-point UJI set with a
// d=400 embedding, which is an O(n³) eigenproblem; landmarks preserve the
// estimator's character at tractable cost — see DESIGN.md).
package manifold

import (
	"container/heap"
	"fmt"
	"math"

	"noble/internal/mat"
)

// KNN returns, for each row of x, the indices of its k nearest other rows
// by Euclidean distance, nearest first. k is clamped to n-1.
func KNN(x *mat.Dense, k int) [][]int {
	idx, _ := KNNDistances(x, k)
	return idx
}

// KNNDistances returns the k nearest neighbor indices and their distances
// for every row of x (self excluded), nearest first.
func KNNDistances(x *mat.Dense, k int) ([][]int, [][]float64) {
	n := x.Rows
	if k >= n {
		k = n - 1
	}
	if k < 1 {
		panic(fmt.Sprintf("manifold: KNN with k=%d over %d points", k, n))
	}
	idx := make([][]int, n)
	dist := make([][]float64, n)
	d2 := make([]float64, n)
	for i := 0; i < n; i++ {
		xi := x.Row(i)
		for j := 0; j < n; j++ {
			if j == i {
				d2[j] = math.Inf(1)
				continue
			}
			d2[j] = sqDist(xi, x.Row(j))
		}
		order := argsortK(d2, k)
		idx[i] = order
		dist[i] = make([]float64, k)
		for a, j := range order {
			dist[i][a] = math.Sqrt(d2[j])
		}
	}
	return idx, dist
}

// NearestTo returns the indices of the k rows of x nearest to the external
// query point q, nearest first.
func NearestTo(x *mat.Dense, q []float64, k int) []int {
	n := x.Rows
	if k > n {
		k = n
	}
	d2 := make([]float64, n)
	for j := 0; j < n; j++ {
		d2[j] = sqDist(q, x.Row(j))
	}
	return argsortK(d2, k)
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// argsortK returns the indices of the k smallest values, ascending, using
// a simple selection over a copied index slice (n is small in this
// repository's use).
func argsortK(vals []float64, k int) []int {
	n := len(vals)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort: k passes of O(n).
	for a := 0; a < k; a++ {
		best := a
		for b := a + 1; b < n; b++ {
			if vals[idx[b]] < vals[idx[best]] {
				best = b
			}
		}
		idx[a], idx[best] = idx[best], idx[a]
	}
	return idx[:k]
}

// edge is one weighted, undirected neighborhood-graph edge.
type edge struct {
	to int
	w  float64
}

// buildGraph symmetrizes the kNN relation into an adjacency list and
// guarantees connectivity by linking each disconnected component to the
// component of node 0 through the nearest inter-component pair (standard
// Isomap practice — without it geodesics are infinite).
func buildGraph(x *mat.Dense, k int) [][]edge {
	idx, dist := KNNDistances(x, k)
	n := x.Rows
	adj := make([][]edge, n)
	add := func(a, b int, w float64) {
		for _, e := range adj[a] {
			if e.to == b {
				return
			}
		}
		adj[a] = append(adj[a], edge{b, w})
	}
	for i := range idx {
		for a, j := range idx[i] {
			add(i, j, dist[i][a])
			add(j, i, dist[i][a])
		}
	}
	// Connectivity repair.
	comp := components(adj)
	for {
		maxComp := 0
		for _, c := range comp {
			if c > maxComp {
				maxComp = c
			}
		}
		if maxComp == 0 {
			break
		}
		// Nearest pair bridging component 0 and any other component.
		bi, bj, bd := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if comp[i] != 0 {
				continue
			}
			for j := 0; j < n; j++ {
				if comp[j] == 0 {
					continue
				}
				if d := sqDist(x.Row(i), x.Row(j)); d < bd {
					bd, bi, bj = d, i, j
				}
			}
		}
		w := math.Sqrt(bd)
		add(bi, bj, w)
		add(bj, bi, w)
		comp = components(adj)
	}
	return adj
}

func components(adj [][]edge) []int {
	n := len(adj)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = next
		queue := []int{s}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, e := range adj[cur] {
				if comp[e.to] == -1 {
					comp[e.to] = next
					queue = append(queue, e.to)
				}
			}
		}
		next++
	}
	return comp
}

// pqItem is a Dijkstra priority-queue entry.
type pqItem struct {
	node int
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// dijkstra returns single-source shortest path distances over adj.
func dijkstra(adj [][]edge, src int) []float64 {
	n := len(adj)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	q := &pq{{src, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.dist > dist[it.node] {
			continue
		}
		for _, e := range adj[it.node] {
			if nd := it.dist + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(q, pqItem{e.to, nd})
			}
		}
	}
	return dist
}

// GeodesicDistances returns the n×n matrix of shortest-path distances over
// the symmetrized k-nearest-neighbor graph of x — the Isomap approximation
// of manifold distance.
func GeodesicDistances(x *mat.Dense, k int) *mat.Dense {
	adj := buildGraph(x, k)
	n := x.Rows
	out := mat.New(n, n)
	for i := 0; i < n; i++ {
		copy(out.Row(i), dijkstra(adj, i))
	}
	return out
}
