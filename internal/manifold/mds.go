package manifold

import (
	"fmt"
	"math"

	"noble/internal/mat"
)

// MDS performs classical multidimensional scaling (§III-C introduces its
// objective as the manifold-learning template NObLe implicitly optimizes):
// given an n×n matrix of pairwise distances, it double-centers the squared
// distances into a Gram matrix B = -½·J·D²·J and returns the embedding
// Z = V·Λ^½ from B's top dim eigenpairs. Negative eigenvalues (non-
// Euclidean distance data) are clamped to zero.
func MDS(dist *mat.Dense, dim int) (*mat.Dense, error) {
	n := dist.Rows
	if dist.Cols != n {
		return nil, fmt.Errorf("manifold: MDS needs a square distance matrix, got %d×%d", dist.Rows, dist.Cols)
	}
	if dim < 1 || dim >= n {
		return nil, fmt.Errorf("manifold: MDS dim %d outside [1,%d)", dim, n)
	}
	b := gramFromDistances(dist)
	vals, vecs, err := mat.TopEig(b, dim)
	if err != nil {
		return nil, err
	}
	z := mat.New(n, dim)
	for a := 0; a < dim; a++ {
		scale := 0.0
		if vals[a] > 0 {
			scale = math.Sqrt(vals[a])
		}
		for i := 0; i < n; i++ {
			z.Set(i, a, vecs.At(i, a)*scale)
		}
	}
	return z, nil
}

// gramFromDistances double-centers squared distances: B = -½·J·D²·J with
// J = I - 11ᵀ/n.
func gramFromDistances(dist *mat.Dense) *mat.Dense {
	n := dist.Rows
	d2 := mat.New(n, n)
	for i, v := range dist.Data {
		d2.Data[i] = v * v
	}
	rowMean := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		row := d2.Row(i)
		var s float64
		for _, v := range row {
			s += v
		}
		rowMean[i] = s / float64(n)
		total += s
	}
	grand := total / float64(n*n)
	b := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, -0.5*(d2.At(i, j)-rowMean[i]-rowMean[j]+grand))
		}
	}
	return b
}

// MDSStress returns the normalized stress between an embedding and target
// distances: ‖d_emb - d_target‖_F / ‖d_target‖_F over all pairs. Used in
// tests and diagnostics.
func MDSStress(z, dist *mat.Dense) float64 {
	n := dist.Rows
	var num, den float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			de := math.Sqrt(sqDist(z.Row(i), z.Row(j)))
			dt := dist.At(i, j)
			num += (de - dt) * (de - dt)
			den += dt * dt
		}
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}
