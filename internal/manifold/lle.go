package manifold

import (
	"fmt"
	"math"

	"noble/internal/mat"
)

// LLE is a fitted locally-linear-embedding model [13]: each landmark is
// expressed as an affine combination of its k nearest landmarks, and the
// embedding preserves those reconstruction weights. Out-of-sample points
// are embedded by reconstructing them from their nearest landmarks with
// freshly solved weights — the standard LLE extension.
type LLE struct {
	X   *mat.Dense // m×d landmark inputs
	Emb *mat.Dense // m×dim landmark embedding
	K   int
	Dim int
	Reg float64
}

// FitLLE fits LLE with k neighbors, a dim-dimensional embedding, and
// Tikhonov regularization reg (relative to the local Gram trace) for the
// weight solves.
func FitLLE(x *mat.Dense, k, dim int, reg float64) (*LLE, error) {
	m := x.Rows
	if dim < 1 || dim >= m {
		return nil, fmt.Errorf("manifold: LLE dim %d outside [1,%d)", dim, m)
	}
	if reg <= 0 {
		reg = 1e-3
	}
	neighbors := KNN(x, k)
	// Reconstruction weight matrix W (sparse rows over neighbors).
	w := mat.New(m, m)
	for i := 0; i < m; i++ {
		weights, err := reconstructionWeights(x, x.Row(i), neighbors[i], reg)
		if err != nil {
			return nil, fmt.Errorf("manifold: LLE weights for landmark %d: %w", i, err)
		}
		for a, j := range neighbors[i] {
			w.Set(i, j, weights[a])
		}
	}
	// M = (I-W)ᵀ(I-W); embedding = eigenvectors of the smallest nonzero
	// eigenvalues.
	iw := mat.Identity(m)
	iw.SubInPlace(w)
	mm := mat.MatMulATB(iw, iw)
	_, vecs, err := mat.EigSym(mm)
	if err != nil {
		return nil, err
	}
	// vals are descending; the constant eigenvector sits at the very end
	// (eigenvalue ≈ 0). Take the dim columns before it.
	emb := mat.New(m, dim)
	for a := 0; a < dim; a++ {
		col := m - 2 - a
		if col < 0 {
			return nil, fmt.Errorf("manifold: LLE ran out of eigenvectors (m=%d dim=%d)", m, dim)
		}
		scale := math.Sqrt(float64(m)) // conventional scaling
		for i := 0; i < m; i++ {
			emb.Set(i, a, vecs.At(i, col)*scale)
		}
	}
	return &LLE{X: x, Emb: emb, K: k, Dim: dim, Reg: reg}, nil
}

// reconstructionWeights solves the constrained least squares for the
// affine weights reconstructing point p from the given neighbor rows of x:
// minimize ‖p - Σ w_j x_j‖² subject to Σ w_j = 1.
func reconstructionWeights(x *mat.Dense, p []float64, neighbors []int, reg float64) ([]float64, error) {
	k := len(neighbors)
	g := mat.New(k, k)
	diffs := make([][]float64, k)
	for a, j := range neighbors {
		row := x.Row(j)
		d := make([]float64, len(p))
		for c := range p {
			d[c] = p[c] - row[c]
		}
		diffs[a] = d
	}
	var trace float64
	for a := 0; a < k; a++ {
		for b := a; b < k; b++ {
			var s float64
			for c := range diffs[a] {
				s += diffs[a][c] * diffs[b][c]
			}
			g.Set(a, b, s)
			g.Set(b, a, s)
			if a == b {
				trace += s
			}
		}
	}
	lambda := reg * trace / float64(k)
	if lambda <= 0 {
		lambda = reg
	}
	ones := make([]float64, k)
	for i := range ones {
		ones[i] = 1
	}
	w, err := mat.SolveRegularized(g, ones, lambda)
	if err != nil {
		return nil, err
	}
	var sum float64
	for _, v := range w {
		sum += v
	}
	if sum == 0 {
		return nil, fmt.Errorf("degenerate reconstruction weights")
	}
	for i := range w {
		w[i] /= sum
	}
	return w, nil
}

// Transform embeds an unseen point: solve reconstruction weights against
// its k nearest landmarks, then combine those landmarks' embeddings.
func (l *LLE) Transform(q []float64) []float64 {
	near := NearestTo(l.X, q, l.K)
	w, err := reconstructionWeights(l.X, q, near, l.Reg)
	if err != nil {
		// Degenerate geometry: fall back to the nearest landmark.
		out := make([]float64, l.Dim)
		copy(out, l.Emb.Row(near[0]))
		return out
	}
	out := make([]float64, l.Dim)
	for a, j := range near {
		emb := l.Emb.Row(j)
		for c := 0; c < l.Dim; c++ {
			out[c] += w[a] * emb[c]
		}
	}
	return out
}

// TransformBatch embeds every row of q.
func (l *LLE) TransformBatch(q *mat.Dense) *mat.Dense {
	out := mat.New(q.Rows, l.Dim)
	for i := 0; i < q.Rows; i++ {
		copy(out.Row(i), l.Transform(q.Row(i)))
	}
	return out
}
