package eval

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"noble/internal/floorplan"
	"noble/internal/geo"
)

func TestErrorsAndStats(t *testing.T) {
	pred := []geo.Point{{X: 0, Y: 0}, {X: 3, Y: 4}}
	truth := []geo.Point{{X: 0, Y: 0}, {X: 0, Y: 0}}
	errs := Errors(pred, truth)
	if errs[0] != 0 || errs[1] != 5 {
		t.Fatalf("errors=%v", errs)
	}
	s := Stats(errs)
	if s.N != 2 || s.Mean != 2.5 || s.Median != 2.5 || s.Max != 5 {
		t.Fatalf("stats=%+v", s)
	}
}

func TestErrorsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Errors(make([]geo.Point, 2), make([]geo.Point, 3))
}

func TestHitRate(t *testing.T) {
	if got := HitRate([]int{1, 2, 3, 4}, []int{1, 2, 0, 4}); got != 0.75 {
		t.Fatalf("HitRate=%v", got)
	}
	if HitRate(nil, nil) != 0 {
		t.Fatal("empty hit rate must be 0")
	}
}

func TestCDF(t *testing.T) {
	errs := []float64{0.5, 1.5, 2.5, 3.5}
	got := CDF(errs, []float64{1, 2, 3, 4})
	want := []float64{0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("CDF=%v want %v", got, want)
		}
	}
	if out := CDF(nil, []float64{1}); out[0] != 0 {
		t.Fatal("empty CDF must be 0")
	}
}

func TestOnMapRate(t *testing.T) {
	plan := floorplan.IPINBuilding()
	preds := []geo.Point{
		{X: 20, Y: 8},  // inside
		{X: 100, Y: 8}, // far outside
	}
	if got := OnMapRate(plan, preds); got != 0.5 {
		t.Fatalf("OnMapRate=%v", got)
	}
	if OnMapRate(plan, nil) != 0 {
		t.Fatal("empty rate must be 0")
	}
}

func TestStructureScore(t *testing.T) {
	plan := floorplan.IPINBuilding()
	inside := []geo.Point{{X: 20, Y: 8}}
	if StructureScore(plan, inside) != 0 {
		t.Fatal("on-map prediction must score 0")
	}
	outside := []geo.Point{{X: 50, Y: 8}} // 10 m east of the 40 m building
	if got := StructureScore(plan, outside); math.Abs(got-10) > 1e-9 {
		t.Fatalf("StructureScore=%v want 10", got)
	}
}

func TestScatterASCII(t *testing.T) {
	bounds := geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 10, Y: 10})
	out := ScatterASCII([]geo.Point{{X: 1, Y: 1}, {X: 9, Y: 9}}, bounds, 10, 5)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 || len(lines[0]) != 10 {
		t.Fatalf("grid %dx%d", len(lines), len(lines[0]))
	}
	// (1,1) is bottom-left → last row; (9,9) is top-right → first row.
	if lines[4][1] != '#' {
		t.Fatal("bottom-left point missing")
	}
	if lines[0][9] != '#' {
		t.Fatal("top-right point missing")
	}
	// Out-of-bounds points are silently skipped.
	out2 := ScatterASCII([]geo.Point{{X: -5, Y: -5}}, bounds, 4, 4)
	if strings.Contains(out2, "#") {
		t.Fatal("out-of-bounds point must be skipped")
	}
}

func TestScatterASCIIBadGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ScatterASCII(nil, geo.Rect{}, 0, 5)
}

func TestScatterCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := ScatterCSV(&buf, []geo.Point{{X: 1.5, Y: 2.5}}); err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1.5,2.5\n"
	if buf.String() != want {
		t.Fatalf("CSV=%q want %q", buf.String(), want)
	}
}
