package eval

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestConfusionCounts(t *testing.T) {
	pred := []int{0, 1, 1, 2, 0}
	truth := []int{0, 1, 2, 2, 1}
	m := Confusion(pred, truth, 3)
	if m[0][0] != 1 || m[1][1] != 1 || m[2][1] != 1 || m[2][2] != 1 || m[1][0] != 1 {
		t.Fatalf("confusion=%v", m)
	}
	// Total count preserved.
	var total int
	for _, row := range m {
		for _, v := range row {
			total += v
		}
	}
	if total != 5 {
		t.Fatalf("total=%d", total)
	}
}

func TestConfusionDiagonalEqualsHitRateProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		k := 4
		pred := make([]int, len(raw)/2)
		truth := make([]int, len(raw)/2)
		for i := range pred {
			pred[i] = int(raw[2*i]) % k
			truth[i] = int(raw[2*i+1]) % k
		}
		m := Confusion(pred, truth, k)
		diag := 0
		for i := 0; i < k; i++ {
			diag += m[i][i]
		}
		want := HitRate(pred, truth)
		got := float64(diag) / float64(len(pred))
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConfusionPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"len mismatch": func() { Confusion([]int{1}, []int{1, 2}, 3) },
		"out of range": func() { Confusion([]int{5}, []int{0}, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFormatConfusion(t *testing.T) {
	out := FormatConfusion([][]int{{2, 0}, {1, 3}})
	if !strings.Contains(out, "true\\pred") || !strings.Contains(out, "3") {
		t.Fatalf("format: %q", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 3 {
		t.Fatal("expected header + 2 rows")
	}
}

func TestGroupStats(t *testing.T) {
	errs := []float64{1, 2, 3, 10}
	groups := []int{0, 0, 1, 1}
	stats := GroupStats(errs, groups)
	if len(stats) != 2 {
		t.Fatalf("groups=%d", len(stats))
	}
	if stats[0].Mean != 1.5 || stats[0].N != 2 {
		t.Fatalf("group 0 = %+v", stats[0])
	}
	if stats[1].Mean != 6.5 {
		t.Fatalf("group 1 = %+v", stats[1])
	}
}

func TestGroupStatsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GroupStats([]float64{1}, []int{1, 2})
}

func TestFormatGroupStats(t *testing.T) {
	out := FormatGroupStats("floor", GroupStats([]float64{1, 2}, []int{3, 0}))
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines=%d", len(lines))
	}
	// Sorted by key: group 0 before group 3.
	if !strings.HasPrefix(lines[1], "0") || !strings.HasPrefix(lines[2], "3") {
		t.Fatalf("not sorted:\n%s", out)
	}
}
