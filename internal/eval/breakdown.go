package eval

import (
	"fmt"
	"sort"
	"strings"
)

// Confusion builds a k×k confusion-count matrix: element [t][p] counts
// samples of true class t predicted as p. Used to inspect the floor and
// building heads beyond the single hit-rate number in Table I.
func Confusion(pred, truth []int, k int) [][]int {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("eval: %d predictions vs %d truths", len(pred), len(truth)))
	}
	out := make([][]int, k)
	for i := range out {
		out[i] = make([]int, k)
	}
	for i := range pred {
		t, p := truth[i], pred[i]
		if t < 0 || t >= k || p < 0 || p >= k {
			panic(fmt.Sprintf("eval: label (%d,%d) outside [0,%d)", t, p, k))
		}
		out[t][p]++
	}
	return out
}

// FormatConfusion renders a confusion matrix with row/column labels.
func FormatConfusion(m [][]int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "true\\pred")
	for j := range m {
		fmt.Fprintf(&b, "%8d", j)
	}
	b.WriteByte('\n')
	for i, row := range m {
		fmt.Fprintf(&b, "%9d", i)
		for _, v := range row {
			fmt.Fprintf(&b, "%8d", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// GroupStats computes error statistics per integer group key (e.g. per
// floor or per building), answering questions such as "is the model worse
// on upper floors?".
func GroupStats(errs []float64, groups []int) map[int]ErrorStats {
	if len(errs) != len(groups) {
		panic(fmt.Sprintf("eval: %d errors vs %d groups", len(errs), len(groups)))
	}
	byGroup := map[int][]float64{}
	for i, e := range errs {
		byGroup[groups[i]] = append(byGroup[groups[i]], e)
	}
	out := make(map[int]ErrorStats, len(byGroup))
	for g, es := range byGroup {
		out[g] = Stats(es)
	}
	return out
}

// FormatGroupStats renders per-group statistics sorted by group key.
func FormatGroupStats(name string, stats map[int]ErrorStats) string {
	keys := make([]int, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %6s %8s %8s %8s\n", name, "n", "mean", "median", "p90")
	for _, k := range keys {
		s := stats[k]
		fmt.Fprintf(&b, "%-10d %6d %8.2f %8.2f %8.2f\n", k, s.N, s.Mean, s.Median, s.P90)
	}
	return b.String()
}
