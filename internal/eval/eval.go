// Package eval computes the paper's evaluation quantities: position error
// distances (mean/median, following "the Euclidean distance between
// predicted and true coordinates"), classification hit rates, error CDFs,
// and the structure-awareness measures that quantify what Fig. 4 shows
// visually (how much of a model's predicted mass lies on the map). It also
// renders ASCII scatter plots and CSV dumps so every figure in the paper
// has a reproducible artifact.
package eval

import (
	"fmt"
	"io"
	"strings"

	"noble/internal/floorplan"
	"noble/internal/geo"
	"noble/internal/mat"
)

// Errors returns per-sample Euclidean position errors.
func Errors(pred, truth []geo.Point) []float64 {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("eval: %d predictions vs %d truths", len(pred), len(truth)))
	}
	out := make([]float64, len(pred))
	for i := range pred {
		out[i] = geo.Dist(pred[i], truth[i])
	}
	return out
}

// ErrorStats summarizes an error distribution.
type ErrorStats struct {
	N      int
	Mean   float64
	Median float64
	P75    float64
	P90    float64
	Max    float64
}

// Stats computes summary statistics of the error distances.
func Stats(errs []float64) ErrorStats {
	_, maxV := mat.MinMax(errs)
	return ErrorStats{
		N:      len(errs),
		Mean:   mat.Mean(errs),
		Median: mat.Median(errs),
		P75:    mat.Percentile(errs, 75),
		P90:    mat.Percentile(errs, 90),
		Max:    maxV,
	}
}

// HitRate returns the fraction of positions where pred equals truth.
func HitRate(pred, truth []int) float64 {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("eval: %d predictions vs %d truths", len(pred), len(truth)))
	}
	if len(pred) == 0 {
		return 0
	}
	hits := 0
	for i := range pred {
		if pred[i] == truth[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(pred))
}

// CDF returns, for each level, the fraction of errors at or below it.
func CDF(errs []float64, levels []float64) []float64 {
	out := make([]float64, len(levels))
	if len(errs) == 0 {
		return out
	}
	for i, lv := range levels {
		n := 0
		for _, e := range errs {
			if e <= lv {
				n++
			}
		}
		out[i] = float64(n) / float64(len(errs))
	}
	return out
}

// OnMapRate returns the fraction of predictions that fall inside the
// plan's accessible space — the quantitative version of Fig. 4's visual
// "outputs lie on the buildings" comparison. Deep Regression predicts into
// courtyards and dead space; NObLe cannot, by construction.
func OnMapRate(plan *floorplan.Plan, preds []geo.Point) float64 {
	if len(preds) == 0 {
		return 0
	}
	n := 0
	for _, p := range preds {
		if plan.Accessible(p) {
			n++
		}
	}
	return float64(n) / float64(len(preds))
}

// StructureScore returns the mean distance from each prediction to the
// nearest accessible position (0 for on-map predictions). Lower is more
// structure-aware.
func StructureScore(plan *floorplan.Plan, preds []geo.Point) float64 {
	if len(preds) == 0 {
		return 0
	}
	var s float64
	for _, p := range preds {
		s += geo.Dist(p, plan.Project(p))
	}
	return s / float64(len(preds))
}

// ScatterASCII renders points as a w×h character grid over the given
// bounds ('#' marks occupied cells), the terminal stand-in for the
// scatter plots of Figs. 1, 4 and 5.
func ScatterASCII(points []geo.Point, bounds geo.Rect, w, h int) string {
	if w < 1 || h < 1 {
		panic(fmt.Sprintf("eval: scatter grid %d×%d", w, h))
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", w))
	}
	sx := bounds.Width()
	sy := bounds.Height()
	if sx <= 0 {
		sx = 1
	}
	if sy <= 0 {
		sy = 1
	}
	for _, p := range points {
		cx := int((p.X - bounds.Min.X) / sx * float64(w))
		cy := int((p.Y - bounds.Min.Y) / sy * float64(h))
		if cx < 0 || cx >= w || cy < 0 || cy >= h {
			continue
		}
		// Flip Y so north is up.
		grid[h-1-cy][cx] = '#'
	}
	var b strings.Builder
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

// ScatterCSV writes "x,y" rows (with header) for external plotting of the
// paper's figures.
func ScatterCSV(w io.Writer, points []geo.Point) error {
	if _, err := fmt.Fprintln(w, "x,y"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%g,%g\n", p.X, p.Y); err != nil {
			return err
		}
	}
	return nil
}
