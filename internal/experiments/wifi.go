package experiments

import (
	"strconv"

	"noble/internal/baseline"
	"noble/internal/core"
	"noble/internal/dataset"
	"noble/internal/eval"
	"noble/internal/geo"
)

// ujiDataset builds the synthetic UJIIndoorLoc stand-in for a preset.
func ujiDataset(p Preset) *dataset.WiFi {
	if p == Full {
		return dataset.SynthUJI(dataset.DefaultUJIConfig())
	}
	return dataset.SynthUJI(dataset.SmallUJIConfig())
}

// ipinDataset builds the synthetic IPIN2016 stand-in for a preset.
func ipinDataset(p Preset) *dataset.WiFi {
	if p == Full {
		return dataset.SynthIPIN(dataset.DefaultIPINConfig())
	}
	return dataset.SynthIPIN(dataset.SmallIPINConfig())
}

// nobleWiFiConfig returns the NObLe training configuration for a preset.
func nobleWiFiConfig(p Preset) core.WiFiConfig {
	cfg := core.DefaultWiFiConfig()
	if p == Small {
		cfg.Hidden = []int{64, 64}
		cfg.Epochs = 15
	}
	return cfg
}

// regConfig returns the baseline regression configuration for a preset.
func regConfig(p Preset) baseline.RegConfig {
	cfg := baseline.DefaultRegConfig()
	if p == Small {
		cfg.Hidden = []int{64, 64}
		cfg.Epochs = 15
	}
	return cfg
}

// wifiEval scores predicted positions against a test split.
func wifiEval(preds []geo.Point, samples []dataset.WiFiSample) eval.ErrorStats {
	return eval.Stats(eval.Errors(preds, dataset.Positions(samples)))
}

// noblePositions extracts decoded coordinates from NObLe predictions.
func noblePositions(preds []core.WiFiPrediction) []geo.Point {
	out := make([]geo.Point, len(preds))
	for i, p := range preds {
		out[i] = p.Pos
	}
	return out
}

// RunTable1 reproduces Table I: NObLe's classification accuracies and
// position error on the UJI-like campus.
func RunTable1(p Preset) *Report {
	ds := ujiDataset(p)
	model := core.TrainWiFi(ds, nobleWiFiConfig(p))
	x := dataset.FeaturesMatrix(ds.Test)
	preds := model.PredictMatrix(x)

	buildings := make([]int, len(preds))
	floors := make([]int, len(preds))
	classes := make([]int, len(preds))
	for i, pr := range preds {
		buildings[i] = pr.Building
		floors[i] = pr.Floor
		classes[i] = pr.Class
	}
	trueClasses := model.Grids.Fine.Labels(dataset.Positions(ds.Test))
	stats := wifiEval(noblePositions(preds), ds.Test)

	r := &Report{
		ID:     "T1",
		Title:  "NObLe on UJIIndoorLoc (synthetic stand-in)",
		Header: []string{"metric", "paper", "measured"},
	}
	r.AddRow("building accuracy", "99.74%", pct(eval.HitRate(buildings, dataset.BuildingLabels(ds.Test))))
	r.AddRow("floor accuracy", "94.25%", pct(eval.HitRate(floors, dataset.FloorLabels(ds.Test))))
	r.AddRow("quantize class accuracy", "61.63%", pct(eval.HitRate(classes, trueClasses)))
	r.AddRow("mean error (m)", "4.45", f2(stats.Mean))
	r.AddRow("median error (m)", "0.23", f2(stats.Median))
	r.AddNote("preset=%s classes=%d train=%d test=%d", p, model.Classes(), len(ds.Train), len(ds.Test))
	return r
}

// RunTable2 reproduces Table II: comparative position errors of the four
// baselines against NObLe on the UJI-like campus.
func RunTable2(p Preset) *Report {
	ds := ujiDataset(p)
	x := dataset.FeaturesMatrix(ds.Test)
	truth := ds.Test

	r := &Report{
		ID:     "T2",
		Title:  "Comparative distance errors on UJIIndoorLoc (synthetic stand-in)",
		Header: []string{"model", "paper mean", "paper median", "mean", "median"},
	}

	reg := baseline.TrainWiFiRegression(ds, regConfig(p))
	regPreds := reg.PredictBatch(x)
	regStats := wifiEval(regPreds, truth)
	r.AddRow("Deep Regression", "10.17", "7.84", f2(regStats.Mean), f2(regStats.Median))

	projStats := wifiEval(baseline.ProjectPredictions(ds.Plan, regPreds), truth)
	r.AddRow("Regression Projection", "9.76", "7.16", f2(projStats.Mean), f2(projStats.Median))

	isoCfg := baseline.DefaultManifoldRegConfig(baseline.MethodIsomap)
	isoCfg.Reg = regConfig(p)
	if p == Small {
		isoCfg.Landmarks = 150
		isoCfg.EmbedDim = 12
	}
	if iso, err := baseline.TrainManifoldRegression(ds, isoCfg); err == nil {
		s := wifiEval(iso.PredictBatch(x), truth)
		r.AddRow("Isomap Deep Regression", "11.01", "7.56", f2(s.Mean), f2(s.Median))
	} else {
		r.AddRow("Isomap Deep Regression", "11.01", "7.56", "error", err.Error())
	}

	lleCfg := baseline.DefaultManifoldRegConfig(baseline.MethodLLE)
	lleCfg.Reg = regConfig(p)
	if p == Small {
		lleCfg.Landmarks = 150
		lleCfg.EmbedDim = 12
	}
	if lle, err := baseline.TrainManifoldRegression(ds, lleCfg); err == nil {
		s := wifiEval(lle.PredictBatch(x), truth)
		r.AddRow("LLE Deep Regression", "10.05", "7.43", f2(s.Mean), f2(s.Median))
	} else {
		r.AddRow("LLE Deep Regression", "10.05", "7.43", "error", err.Error())
	}

	noble := core.TrainWiFi(ds, nobleWiFiConfig(p))
	nobleStats := wifiEval(noblePositions(noble.PredictMatrix(x)), truth)
	r.AddRow("NObLe", "4.45", "0.23", f2(nobleStats.Mean), f2(nobleStats.Median))

	r.AddNote("shape target: NObLe < Projection ≤ Regression ≈ manifold baselines")
	return r
}

// RunIPIN reproduces the §IV-B IPIN2016 comparison: NObLe vs Deep
// Regression on the single-building dataset.
func RunIPIN(p Preset) *Report {
	ds := ipinDataset(p)
	x := dataset.FeaturesMatrix(ds.Test)

	noble := core.TrainWiFi(ds, nobleWiFiConfig(p))
	nobleStats := wifiEval(noblePositions(noble.PredictMatrix(x)), ds.Test)
	reg := baseline.TrainWiFiRegression(ds, regConfig(p))
	regStats := wifiEval(reg.PredictBatch(x), ds.Test)

	r := &Report{
		ID:     "T2b",
		Title:  "IPIN2016 (synthetic stand-in)",
		Header: []string{"model", "paper mean", "paper median", "mean", "median"},
	}
	r.AddRow("NObLe", "1.13", "0.046", f2(nobleStats.Mean), f2(nobleStats.Median))
	r.AddRow("Deep Regression", "3.83", "-", f2(regStats.Mean), f2(regStats.Median))
	r.AddNote("site leaderboard best mean on real IPIN2016: 3.71 m")
	return r
}

// RunFigure1 reproduces Fig. 1: the ground-truth structure of the
// offline-collected data.
func RunFigure1(p Preset) *Report {
	ds := ujiDataset(p)
	pts := dataset.Positions(ds.Train)
	bounds := ds.Plan.Bounds().Expand(10)
	r := &Report{
		ID:     "F1",
		Title:  "Ground-truth collection locations (cf. Fig. 1 right)",
		Header: []string{"quantity", "value"},
	}
	r.AddRow("training samples", itoa(len(pts)))
	r.AddRow("on-map fraction", pct(eval.OnMapRate(ds.Plan, pts)))
	r.AddArtifact("ground-truth scatter", eval.ScatterASCII(pts, bounds, 96, 28))
	return r
}

// RunFigure4 reproduces Fig. 4: predicted-coordinate scatters for Deep
// Regression, Regression Projection, Isomap regression and NObLe, plus the
// quantitative structure metrics behind the visual comparison.
func RunFigure4(p Preset) *Report {
	ds := ujiDataset(p)
	x := dataset.FeaturesMatrix(ds.Test)
	bounds := ds.Plan.Bounds().Expand(10)

	r := &Report{
		ID:     "F4",
		Title:  "Structure of predicted coordinates (cf. Fig. 4)",
		Header: []string{"model", "on-map rate", "structure score (m)"},
	}
	addModel := func(name string, preds []geo.Point) {
		r.AddRow(name, pct(eval.OnMapRate(ds.Plan, preds)), f2(eval.StructureScore(ds.Plan, preds)))
		r.AddArtifact(name+" predictions", eval.ScatterASCII(preds, bounds, 96, 28))
	}

	reg := baseline.TrainWiFiRegression(ds, regConfig(p))
	regPreds := reg.PredictBatch(x)
	addModel("(a) Deep Regression", regPreds)
	addModel("(b) Regression Projection", baseline.ProjectPredictions(ds.Plan, regPreds))

	isoCfg := baseline.DefaultManifoldRegConfig(baseline.MethodIsomap)
	isoCfg.Reg = regConfig(p)
	if p == Small {
		isoCfg.Landmarks = 150
		isoCfg.EmbedDim = 12
	}
	if iso, err := baseline.TrainManifoldRegression(ds, isoCfg); err == nil {
		addModel("(c) Isomap Regression", iso.PredictBatch(x))
	}

	noble := core.TrainWiFi(ds, nobleWiFiConfig(p))
	addModel("(d) NObLe", noblePositions(noble.PredictMatrix(x)))

	r.AddNote("shape target: on-map rate (a) < (c) < (b) = (d) = 100%%; NObLe matches the floor plan")
	return r
}

// RunAblationTau sweeps the quantization cell side τ (§III-B: grid
// granularity trades class sparsity against decode precision).
func RunAblationTau(p Preset) *Report {
	ds := ujiDataset(p)
	x := dataset.FeaturesMatrix(ds.Test)
	truth := dataset.Positions(ds.Test)

	r := &Report{
		ID:     "A1",
		Title:  "Ablation: quantization granularity τ",
		Header: []string{"tau (m)", "classes", "class acc", "mean (m)", "median (m)"},
	}
	// Informative τ values depend on the survey spacing: cells must grow
	// past the reference spacing before classes merge.
	taus := []float64{0.4, 12, 24}
	if p == Full {
		taus = []float64{0.4, 2, 4, 8, 16, 24}
	}
	for _, tau := range taus {
		cfg := nobleWiFiConfig(p)
		cfg.TauFine = tau
		if cfg.TauCoarse <= tau {
			cfg.TauCoarse = tau * 4
		}
		model := core.TrainWiFi(ds, cfg)
		preds := model.PredictMatrix(x)
		classes := make([]int, len(preds))
		for i, pr := range preds {
			classes[i] = pr.Class
		}
		trueClasses := model.Grids.Fine.Labels(truth)
		stats := wifiEval(noblePositions(preds), ds.Test)
		r.AddRow(f2(tau), itoa(model.Classes()),
			pct(eval.HitRate(classes, trueClasses)), f2(stats.Mean), f2(stats.Median))
	}
	r.AddNote("small τ: exact-cell decoding but sparse classes; large τ: dense classes but coarse decode")
	return r
}

// RunAblationHeads toggles the auxiliary heads and the multi-label
// objective (§III-B / §IV-A design choices).
func RunAblationHeads(p Preset) *Report {
	ds := ujiDataset(p)
	x := dataset.FeaturesMatrix(ds.Test)

	r := &Report{
		ID:     "A2",
		Title:  "Ablation: head configuration",
		Header: []string{"variant", "mean (m)", "median (m)", "floor acc"},
	}
	variants := []struct {
		name string
		mod  func(*core.WiFiConfig)
	}{
		{"full multi-head (paper)", func(c *core.WiFiConfig) {}},
		{"no coarse head", func(c *core.WiFiConfig) { c.CoarseHead = false }},
		{"no building/floor heads", func(c *core.WiFiConfig) { c.BuildingHead = false; c.FloorHead = false }},
		{"fine head only", func(c *core.WiFiConfig) {
			c.CoarseHead = false
			c.BuildingHead = false
			c.FloorHead = false
		}},
		// The BCE objective lacks softmax's class competition and needs
		// a higher learning rate and more epochs to sharpen.
		{"multi-label BCE + adjacency", func(c *core.WiFiConfig) {
			c.MultiLabel = true
			c.LR = 0.01
			c.Epochs = c.Epochs * 5 / 2
		}},
	}
	for _, v := range variants {
		cfg := nobleWiFiConfig(p)
		v.mod(&cfg)
		model := core.TrainWiFi(ds, cfg)
		preds := model.PredictMatrix(x)
		floors := make([]int, len(preds))
		for i, pr := range preds {
			floors[i] = pr.Floor
		}
		stats := wifiEval(noblePositions(preds), ds.Test)
		floorAcc := "-"
		if cfg.FloorHead {
			floorAcc = pct(eval.HitRate(floors, dataset.FloorLabels(ds.Test)))
		}
		r.AddRow(v.name, f2(stats.Mean), f2(stats.Median), floorAcc)
	}
	return r
}

// RunAblationNoise sweeps the input noise level to probe the paper's core
// claim (§III-A): Euclidean input-space neighborhoods degrade with noise,
// so neighbor-aware methods suffer more than neighbor-oblivious NObLe.
func RunAblationNoise(p Preset) *Report {
	r := &Report{
		ID:     "A3",
		Title:  "Ablation: input noise vs neighbor-aware baselines",
		Header: []string{"noise x", "NObLe mean", "kNN mean", "Isomap mean"},
	}
	multipliers := []float64{0.5, 1, 2}
	if p == Full {
		multipliers = []float64{0.25, 0.5, 1, 2, 4}
	}
	for _, mult := range multipliers {
		var cfg dataset.WiFiConfig
		if p == Full {
			cfg = dataset.DefaultUJIConfig()
		} else {
			cfg = dataset.SmallUJIConfig()
		}
		cfg.Radio.NoiseSigma *= mult
		cfg.Radio.ShadowSigma *= mult
		ds := dataset.SynthUJI(cfg)
		x := dataset.FeaturesMatrix(ds.Test)

		noble := core.TrainWiFi(ds, nobleWiFiConfig(p))
		nobleStats := wifiEval(noblePositions(noble.PredictMatrix(x)), ds.Test)

		knn := baseline.NewKNNFingerprint(ds, 5)
		knnStats := wifiEval(knn.PredictBatch(x), ds.Test)

		isoCfg := baseline.DefaultManifoldRegConfig(baseline.MethodIsomap)
		isoCfg.Reg = regConfig(p)
		if p == Small {
			isoCfg.Landmarks = 120
			isoCfg.EmbedDim = 10
		}
		isoMean := "-"
		if iso, err := baseline.TrainManifoldRegression(ds, isoCfg); err == nil {
			isoMean = f2(wifiEval(iso.PredictBatch(x), ds.Test).Mean)
		}
		r.AddRow(f2(mult), f2(nobleStats.Mean), f2(knnStats.Mean), isoMean)
	}
	r.AddNote("shape target: the gap between NObLe and neighbor-based methods widens with noise")
	return r
}

func itoa(n int) string { return strconv.Itoa(n) }

// RunErrorCDF is an extension figure (X2): the cumulative error
// distribution of NObLe vs Deep Regression on the UJI-like campus — the
// standard localization-paper presentation that makes NObLe's bimodal
// error profile (cell-exact hits vs class misses) visible.
func RunErrorCDF(p Preset) *Report {
	ds := ujiDataset(p)
	x := dataset.FeaturesMatrix(ds.Test)
	truth := dataset.Positions(ds.Test)

	noble := core.TrainWiFi(ds, nobleWiFiConfig(p))
	nobleErrs := eval.Errors(noblePositions(noble.PredictMatrix(x)), truth)
	reg := baseline.TrainWiFiRegression(ds, regConfig(p))
	regErrs := eval.Errors(reg.PredictBatch(x), truth)

	levels := []float64{0.5, 1, 2, 4, 8, 16, 32}
	nobleCDF := eval.CDF(nobleErrs, levels)
	regCDF := eval.CDF(regErrs, levels)

	r := &Report{
		ID:     "X2",
		Title:  "Extension: error CDF, NObLe vs Deep Regression",
		Header: []string{"error ≤ (m)", "NObLe", "Deep Regression"},
	}
	for i, lv := range levels {
		r.AddRow(f2(lv), pct(nobleCDF[i]), pct(regCDF[i]))
	}
	r.AddNote("NObLe's mass concentrates at ≈0 (cell-exact decodes) with a thin tail of class misses;")
	r.AddNote("regression has no exact hits but also no structural tail")
	return r
}
