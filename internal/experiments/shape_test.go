package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// These tests pin the *reproduction shape* — the paper's qualitative
// claims — as CI assertions at the Small preset. If a refactor breaks the
// method (or a substrate), the ordering flips and these fail.

// cell parses a float table cell.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(s), "%"), 64)
	if err != nil {
		t.Fatalf("unparseable cell %q: %v", s, err)
	}
	return v
}

// row finds the first row whose first cell contains name.
func row(t *testing.T, r *Report, name string) []string {
	t.Helper()
	for _, row := range r.Rows {
		if strings.Contains(row[0], name) {
			return row
		}
	}
	t.Fatalf("report %s has no row %q", r.ID, name)
	return nil
}

func TestShapeTable2NObLeWins(t *testing.T) {
	if testing.Short() {
		t.Skip("trains five models")
	}
	r := RunTable2(Small)
	nobleMean := cell(t, row(t, r, "NObLe")[3])
	regMean := cell(t, row(t, r, "Deep Regression")[3])
	projMean := cell(t, row(t, r, "Regression Projection")[3])

	// Paper claim 1: NObLe beats Deep Regression by a wide margin.
	if nobleMean >= regMean/1.5 {
		t.Fatalf("NObLe mean %v not clearly below regression %v", nobleMean, regMean)
	}
	// Paper claim 2: projection helps only marginally.
	if projMean > regMean*1.05 {
		t.Fatalf("projection (%v) should not be worse than regression (%v)", projMean, regMean)
	}
	if projMean < regMean/2 {
		t.Fatalf("projection (%v) improved too much over regression (%v) — 'marginal' claim broken", projMean, regMean)
	}
	// Paper claim 3: NObLe's median collapses to the sub-meter regime.
	nobleMedian := cell(t, row(t, r, "NObLe")[4])
	regMedian := cell(t, row(t, r, "Deep Regression")[4])
	if nobleMedian > 1 || nobleMedian >= regMedian/2 {
		t.Fatalf("NObLe median %v (regression %v) lost the cell-exact property", nobleMedian, regMedian)
	}
}

func TestShapeTable3NObLeWins(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two models")
	}
	r := RunTable3(Small)
	nobleMean := cell(t, row(t, r, "NObLe")[3])
	regMean := cell(t, row(t, r, "Deep Regression")[3])
	if nobleMean >= regMean {
		t.Fatalf("IMU NObLe mean %v must beat regression %v", nobleMean, regMean)
	}
	nobleMedian := cell(t, row(t, r, "NObLe")[4])
	if nobleMedian > 1 {
		t.Fatalf("IMU NObLe median %v lost the snap-to-reference property", nobleMedian)
	}
}

func TestShapeFigure4StructureOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("trains four models")
	}
	r := RunFigure4(Small)
	regRate := cell(t, row(t, r, "Deep Regression")[1])
	nobleRate := cell(t, row(t, r, "NObLe")[1])
	projRate := cell(t, row(t, r, "Regression Projection")[1])
	if nobleRate < 99.9 || projRate < 99.9 {
		t.Fatalf("NObLe (%v%%) and projection (%v%%) must be fully on-map", nobleRate, projRate)
	}
	if regRate > 95 {
		t.Fatalf("regression on-map rate %v%% — dead-space leakage disappeared, Fig. 4 contrast lost", regRate)
	}
}

func TestShapeEnergyRatioNearPaper(t *testing.T) {
	r := RunEnergyIMU(Small)
	ratio := cell(t, strings.TrimSuffix(row(t, r, "GPS / total")[2], "x"))
	if ratio < 15 || ratio > 45 {
		t.Fatalf("paper-scale GPS ratio %v far from the paper's 27", ratio)
	}
}
