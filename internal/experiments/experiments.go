// Package experiments contains one runner per table and figure in the
// paper's evaluation (see DESIGN.md §3 for the full index). Every runner
// prints a text table with the paper's reported numbers side by side with
// the values measured on the synthetic substrates, so the reproduction
// target — the *shape* of each result, who wins and by roughly what factor
// — is auditable at a glance. Runners come in two presets: Small (seconds,
// used by `go test -bench`) and Full (the numbers recorded in
// EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Preset selects the experiment scale.
type Preset int

// Available presets.
const (
	Small Preset = iota
	Full
)

// String names the preset.
func (p Preset) String() string {
	if p == Full {
		return "full"
	}
	return "small"
}

// Report is a rendered experiment result.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Artifacts holds named text blocks (ASCII scatters, CSV dumps).
	Artifacts []Artifact
}

// Artifact is one named text artifact attached to a report.
type Artifact struct {
	Name string
	Text string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// AddNote appends a free-text note line.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// AddArtifact attaches a named text block.
func (r *Report) AddArtifact(name, text string) {
	r.Artifacts = append(r.Artifacts, Artifact{Name: name, Text: text})
}

// Fprint renders the report as an aligned text table.
func (r *Report) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s — %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			parts[i] = c + strings.Repeat(" ", pad)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if len(r.Header) > 0 {
		if _, err := fmt.Fprintln(w, line(r.Header)); err != nil {
			return err
		}
		total := len(widths) - 1
		for _, wd := range widths {
			total += wd + 1
		}
		if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
			return err
		}
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	for _, a := range r.Artifacts {
		if _, err := fmt.Fprintf(w, "\n-- %s --\n%s", a.Name, a.Text); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// f2 formats a float with 2 decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// f5 formats a float with 5 decimals (energy values).
func f5(v float64) string { return fmt.Sprintf("%.5f", v) }

// pct formats a ratio as a percentage with 2 decimals.
func pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

// Runner is one registered experiment.
type Runner struct {
	ID   string
	Name string
	Run  func(Preset) *Report
}

// All returns every experiment in the paper order of DESIGN.md §3.
func All() []Runner {
	return []Runner{
		{"T1", "Table I — NObLe on UJIIndoorLoc", RunTable1},
		{"T2", "Table II — comparative baselines", RunTable2},
		{"T2b", "IPIN2016 comparison", RunIPIN},
		{"T3", "Table III — IMU tracking", RunTable3},
		{"F1", "Figure 1 — ground-truth structure", RunFigure1},
		{"F4", "Figure 4 — prediction structure", RunFigure4},
		{"F5", "Figure 5 — IMU prediction structure", RunFigure5},
		{"E1", "§IV-C — Wi-Fi energy", RunEnergyWiFi},
		{"E2", "§V-D — IMU energy & GPS ratio", RunEnergyIMU},
		{"A1", "Ablation — quantization τ", RunAblationTau},
		{"A2", "Ablation — head configuration", RunAblationHeads},
		{"A3", "Ablation — input noise", RunAblationNoise},
		{"A4", "Ablation — IMU location module", RunAblationIMUArch},
		{"X1", "Extension — online trajectory decoding", RunOnlineTracking},
		{"X2", "Extension — error CDF", RunErrorCDF},
	}
}

// RunAll executes every experiment at the preset and writes each report to
// w as it completes.
func RunAll(p Preset, w io.Writer) error {
	for _, r := range All() {
		rep := r.Run(p)
		if err := rep.Fprint(w); err != nil {
			return err
		}
	}
	return nil
}
