package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestReportFprintAlignment(t *testing.T) {
	r := &Report{
		ID:     "X1",
		Title:  "test table",
		Header: []string{"model", "value"},
	}
	r.AddRow("short", "1.00")
	r.AddRow("a much longer model name", "2.00")
	r.AddNote("a note with %d args", 2)
	r.AddArtifact("art", "###\n")
	var buf bytes.Buffer
	if err := r.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== X1 — test table ==", "model", "short", "a much longer model name", "note: a note with 2 args", "-- art --", "###"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Columns align: both value cells start at the same offset.
	lines := strings.Split(out, "\n")
	var col1, col2 int
	for _, ln := range lines {
		if strings.HasPrefix(ln, "short") {
			col1 = strings.Index(ln, "1.00")
		}
		if strings.HasPrefix(ln, "a much longer") {
			col2 = strings.Index(ln, "2.00")
		}
	}
	if col1 != col2 || col1 == -1 {
		t.Fatalf("columns misaligned: %d vs %d", col1, col2)
	}
}

func TestReportWithoutHeader(t *testing.T) {
	r := &Report{ID: "X2", Title: "headerless"}
	r.AddRow("a", "b")
	var buf bytes.Buffer
	if err := r.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "---") {
		t.Fatal("headerless report must not print a rule")
	}
}

func TestPresetString(t *testing.T) {
	if Small.String() != "small" || Full.String() != "full" {
		t.Fatal("preset names")
	}
}

func TestAllRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, r := range All() {
		if r.Run == nil {
			t.Fatalf("%s has no runner", r.ID)
		}
		ids[r.ID] = true
	}
	// Every paper artifact in DESIGN.md §3 must be present.
	for _, id := range []string{"T1", "T2", "T2b", "T3", "F1", "F4", "F5", "E1", "E2", "A1", "A2", "A3", "A4"} {
		if !ids[id] {
			t.Fatalf("experiment %s missing", id)
		}
	}
}

func TestRunFigure1SmallProducesArtifact(t *testing.T) {
	rep := RunFigure1(Small)
	if len(rep.Artifacts) == 0 {
		t.Fatal("Figure 1 must attach a scatter artifact")
	}
	if !strings.Contains(rep.Artifacts[0].Text, "#") {
		t.Fatal("scatter artifact empty")
	}
	// The three-building structure shows as three separate clusters —
	// at minimum, the scatter must have blank (dead-space) regions.
	if !strings.Contains(rep.Artifacts[0].Text, ".") {
		t.Fatal("scatter has no dead space — structure missing")
	}
}

func TestRunEnergyWiFiSmall(t *testing.T) {
	rep := RunEnergyWiFi(Small)
	var buf bytes.Buffer
	if err := rep.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"0.00518", "paper-scale"} {
		if !strings.Contains(out, want) {
			t.Fatalf("energy report missing %q", want)
		}
	}
}

func TestPaperScaleMACEstimates(t *testing.T) {
	// §IV-A: 520 inputs, 2×128 trunk, ≈1100 outputs ⇒ ≈0.23 MMAC.
	if m := paperWiFiMACs(); m < 150_000 || m > 400_000 {
		t.Fatalf("paper WiFi MACs %d implausible", m)
	}
	// §V-B: 50 segments of 768×6 readings through a shared projection
	// ⇒ several MMAC.
	if m := paperIMUMACs(); m < 2_000_000 || m > 10_000_000 {
		t.Fatalf("paper IMU MACs %d implausible", m)
	}
}
