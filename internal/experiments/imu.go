package experiments

import (
	"noble/internal/baseline"
	"noble/internal/core"
	"noble/internal/energy"
	"noble/internal/eval"
	"noble/internal/floorplan"
	"noble/internal/geo"
	"noble/internal/imu"
)

// imuPathDataset builds the synthetic campus-walk dataset for a preset,
// following the paper's collection protocol (§V-A).
func imuPathDataset(p Preset) *imu.PathDataset {
	if p == Full {
		net := imu.NewCampusNetwork(3)
		cfg := imu.DefaultConfig() // 293 segments × 768 readings @ 50 Hz ≈ 75 min
		track := imu.Synthesize(net, cfg, 2021)
		return imu.BuildPaths(track, imu.DefaultPathConfig())
	}
	net := imu.NewCampusNetwork(6)
	cfg := imu.DefaultConfig()
	cfg.ReadingsPerSegment = 96
	cfg.TotalSegments = 160
	track := imu.Synthesize(net, cfg, 2021)
	pcfg := imu.PathConfig{
		NumPaths: 1200, MaxLen: 12, Frames: 6,
		TrainFrac: 4389.0 / 6857.0, ValFrac: 1096.0 / 6857.0, Seed: 7,
	}
	return imu.BuildPaths(track, pcfg)
}

// nobleIMUConfig returns the NObLe tracking configuration for a preset.
func nobleIMUConfig(p Preset) core.IMUConfig {
	cfg := core.DefaultIMUConfig()
	if p == Small {
		cfg.Hidden = []int{64, 64}
		cfg.Epochs = 40
		cfg.Tau = 1.0
	}
	return cfg
}

// imuEnds extracts ground-truth end positions.
func imuEnds(paths []imu.Path) []geo.Point {
	out := make([]geo.Point, len(paths))
	for i := range paths {
		out[i] = paths[i].End
	}
	return out
}

// RunTable3 reproduces Table III: IMU tracking end-position errors for
// Deep Regression, the paper's map-heuristic comparator [8] (quoted), and
// NObLe.
func RunTable3(p Preset) *Report {
	ds := imuPathDataset(p)
	truth := imuEnds(ds.Test)

	r := &Report{
		ID:     "T3",
		Title:  "IMU tracking position error (synthetic campus walks)",
		Header: []string{"model", "paper mean", "paper median", "mean", "median"},
	}

	regCfg := regConfig(p)
	reg := baseline.TrainIMURegression(ds, regCfg)
	regStats := eval.Stats(eval.Errors(reg.PredictPaths(ds.Test), truth))
	r.AddRow("Deep Regression", "10.41", "10.05", f2(regStats.Mean), f2(regStats.Median))

	r.AddRow("IMU+map heuristics [8]", "4.3", "-", "(quoted)", "(quoted)")

	noble := core.TrainIMU(ds, nobleIMUConfig(p))
	preds := noble.PredictPaths(ds.Test)
	ends := make([]geo.Point, len(preds))
	for i, pr := range preds {
		ends[i] = pr.End
	}
	nobleStats := eval.Stats(eval.Errors(ends, truth))
	r.AddRow("NObLe", "2.52", "0.40", f2(nobleStats.Mean), f2(nobleStats.Median))

	r.AddNote("paths=%d (train %d / val %d / test %d), refs=%d",
		len(ds.Train)+len(ds.Validation)+len(ds.Test),
		len(ds.Train), len(ds.Validation), len(ds.Test), len(ds.Net.Refs))
	r.AddNote("shape target: NObLe < [8] < Deep Regression")
	return r
}

// RunFigure5 reproduces Fig. 5(b–d): the test-path ground truth and the
// predicted end-point scatters of Deep Regression vs NObLe.
func RunFigure5(p Preset) *Report {
	ds := imuPathDataset(p)
	plan := floorplan.OutdoorCampus()
	bounds := plan.Bounds().Expand(8)
	truth := imuEnds(ds.Test)

	r := &Report{
		ID:     "F5",
		Title:  "IMU predicted coordinates (cf. Fig. 5)",
		Header: []string{"model", "on-map rate", "structure score (m)"},
	}
	r.AddArtifact("(b) ground-truth end positions", eval.ScatterASCII(truth, bounds, 96, 24))

	reg := baseline.TrainIMURegression(ds, regConfig(p))
	regPreds := reg.PredictPaths(ds.Test)
	r.AddRow("(c) Deep Regression", pct(eval.OnMapRate(plan, regPreds)), f2(eval.StructureScore(plan, regPreds)))
	r.AddArtifact("(c) Deep Regression predictions", eval.ScatterASCII(regPreds, bounds, 96, 24))

	noble := core.TrainIMU(ds, nobleIMUConfig(p))
	preds := noble.PredictPaths(ds.Test)
	ends := make([]geo.Point, len(preds))
	for i, pr := range preds {
		ends[i] = pr.End
	}
	r.AddRow("(d) NObLe", pct(eval.OnMapRate(plan, ends)), f2(eval.StructureScore(plan, ends)))
	r.AddArtifact("(d) NObLe predictions", eval.ScatterASCII(ends, bounds, 96, 24))

	r.AddNote("shape target: regression scatters into the lawns; NObLe stays on the walkway network")
	return r
}

// paperWiFiMACs estimates the multiply-accumulate count of the paper's
// actual Wi-Fi architecture: 520 RSSI inputs → two 128-unit hidden layers
// → multi-hot output over ≈933 fine classes + coarse classes + 3 buildings
// + 5 floors (§IV-A). Energy depends on architecture, not on trained
// weights, so the paper-scale network is what the device model consumes.
func paperWiFiMACs() int64 {
	const (
		inputs  = 520
		hidden  = 128
		fine    = 933
		coarse  = 200
		bld     = 3
		floors  = 5
		outputs = fine + coarse + bld + floors
	)
	return int64(inputs*hidden + hidden*hidden + hidden*outputs)
}

// paperIMUMACs estimates the paper's IMU architecture: a shared projection
// over 50 segments of 768×6 raw readings into 16 dims, a two-layer
// displacement network, and the location network over 177 classes (§V-B).
func paperIMUMACs() int64 {
	const (
		segments = 50
		segIn    = 768 * 6
		projDim  = 16
		hidden   = 128
		classes  = 177
	)
	proj := int64(segments) * int64(segIn*projDim)
	disp := int64(segments*projDim*hidden + hidden*hidden + hidden*2)
	loc := int64((2 + classes) * classes)
	return proj + disp + loc
}

// RunEnergyWiFi reproduces §IV-C: per-inference energy and latency of the
// Wi-Fi model on the TX2-class device model, using the paper-scale
// architecture. The preset's (smaller) trained model is reported alongside.
func RunEnergyWiFi(p Preset) *Report {
	profile := energy.JetsonTX2()
	paperEst := profile.Inference(paperWiFiMACs())

	ds := ujiDataset(p)
	cfg := nobleWiFiConfig(p)
	cfg.Epochs = 1 // energy depends on architecture, not weights
	model := core.TrainWiFi(ds, cfg)
	presetEst := profile.Inference(model.FLOPs())

	r := &Report{
		ID:     "E1",
		Title:  "Wi-Fi inference cost on Jetson TX2 (device model)",
		Header: []string{"metric", "paper", "paper-scale model", "this preset's model"},
	}
	r.AddRow("energy per inference (J)", "0.00518", f5(paperEst.Energy), f5(presetEst.Energy))
	r.AddRow("latency (ms)", "2", f2(paperEst.Latency*1000), f2(presetEst.Latency*1000))
	r.AddNote("paper-scale MACs=%d, preset MACs=%d", paperWiFiMACs(), model.FLOPs())
	return r
}

// RunEnergyIMU reproduces §V-D: the full path-tracking energy budget and
// the ≈27× GPS comparison, using the paper-scale architecture.
func RunEnergyIMU(p Preset) *Report {
	profile := energy.JetsonTX2()
	budget := profile.TrackPath(paperIMUMACs(), 8)

	ds := imuPathDataset(p)
	cfg := nobleIMUConfig(p)
	cfg.Epochs = 1
	model := core.TrainIMU(ds, cfg)
	presetBudget := profile.TrackPath(model.FLOPs(), 8)

	r := &Report{
		ID:     "E2",
		Title:  "IMU path energy budget on Jetson TX2 (device model, 8 s path)",
		Header: []string{"metric", "paper", "paper-scale model", "this preset's model"},
	}
	r.AddRow("inference energy (J)", "0.08599", f5(budget.Inference.Energy), f5(presetBudget.Inference.Energy))
	r.AddRow("inference latency (ms)", "5", f2(budget.Inference.Latency*1000), f2(presetBudget.Inference.Latency*1000))
	r.AddRow("sensor energy (J)", "0.1356", f5(budget.Sensor), f5(presetBudget.Sensor))
	r.AddRow("total energy (J)", "0.22159", f5(budget.Total), f5(presetBudget.Total))
	r.AddRow("GPS energy (J)", "5.925", f5(budget.GPS), f5(presetBudget.GPS))
	r.AddRow("GPS / total ratio", "27x", f2(budget.Ratio)+"x", f2(presetBudget.Ratio)+"x")
	r.AddNote("paper-scale MACs=%d, preset MACs=%d; sensor and GPS constants quoted from [8] as in the paper",
		paperIMUMACs(), model.FLOPs())
	return r
}

// RunAblationIMUArch ablates the location-module design (§V-B): the wired
// end-estimate input, the geometric-decoder initialization, and the
// one-hot start encoding.
func RunAblationIMUArch(p Preset) *Report {
	ds := imuPathDataset(p)
	truth := imuEnds(ds.Test)

	r := &Report{
		ID:     "A4",
		Title:  "Ablation: IMU location-module design",
		Header: []string{"variant", "mean (m)", "median (m)", "class acc"},
	}
	variants := []struct {
		name string
		mod  func(*core.IMUConfig)
	}{
		{"full (wired sum + geo init + one-hot)", func(c *core.IMUConfig) {}},
		{"no geometric init", func(c *core.IMUConfig) { c.GeoInit = false }},
		{"no wired sum (paper input only)", func(c *core.IMUConfig) { c.WireSum = false; c.GeoInit = false; c.LocHidden = 96 }},
		{"no one-hot start", func(c *core.IMUConfig) { c.StartOneHot = false }},
		{"MLP location head", func(c *core.IMUConfig) { c.LocHidden = 96; c.GeoInit = false }},
	}
	for _, v := range variants {
		cfg := nobleIMUConfig(p)
		v.mod(&cfg)
		model := core.TrainIMU(ds, cfg)
		preds := model.PredictPaths(ds.Test)
		ends := make([]geo.Point, len(preds))
		hits := 0
		for i, pr := range preds {
			ends[i] = pr.End
			if pr.Class == model.Grid.NearestClass(ds.Test[i].End) {
				hits++
			}
		}
		stats := eval.Stats(eval.Errors(ends, truth))
		r.AddRow(v.name, f2(stats.Mean), f2(stats.Median),
			pct(float64(hits)/float64(len(preds))))
	}
	r.AddNote("the wired sum and geometric init are this reproduction's trainability fixes; see DESIGN.md")
	return r
}
