package experiments

import (
	"noble/internal/core"
	"noble/internal/eval"
	"noble/internal/floorplan"
	"noble/internal/geo"
	"noble/internal/imu"
)

// RunOnlineTracking is an extension experiment (X1): it compares three
// online trajectory decoders built on the trained NObLe IMU model —
// greedy chaining with a long window, greedy chaining with single-segment
// re-anchoring, and map-constrained Viterbi decoding over the walkway
// graph. The Viterbi decoder is the probabilistic analogue of the
// hand-written map heuristics in the paper's comparators [8] and LocMe
// [19].
func RunOnlineTracking(p Preset) *Report {
	// A dedicated evaluation walk, disjoint from the training track.
	var net *imu.Network
	var trainTrack, evalTrack *imu.Track
	if p == Full {
		net = imu.NewCampusNetwork(3)
		cfg := imu.DefaultConfig()
		trainTrack = imu.Synthesize(net, cfg, 2021)
		evalCfg := cfg
		evalCfg.TotalSegments = 80
		evalCfg.Walks = 1
		evalTrack = imu.Synthesize(net, evalCfg, 4242)
	} else {
		net = imu.NewCampusNetwork(6)
		cfg := imu.DefaultConfig()
		cfg.ReadingsPerSegment = 96
		cfg.TotalSegments = 160
		trainTrack = imu.Synthesize(net, cfg, 2021)
		evalCfg := cfg
		evalCfg.TotalSegments = 60
		evalCfg.Walks = 1
		evalTrack = imu.Synthesize(net, evalCfg, 4242)
	}
	var pcfg imu.PathConfig
	if p == Full {
		pcfg = imu.DefaultPathConfig()
	} else {
		pcfg = imu.PathConfig{
			NumPaths: 1200, MaxLen: 12, Frames: 6,
			TrainFrac: 4389.0 / 6857.0, ValFrac: 1096.0 / 6857.0, Seed: 7,
		}
	}
	ds := imu.BuildPaths(trainTrack, pcfg)
	model := core.TrainIMU(ds, nobleIMUConfig(p))

	walk := evalTrack.Walks[0]
	meanErr := func(preds []core.IMUPrediction) float64 {
		var s float64
		for i, pr := range preds {
			s += geo.Dist(pr.End, net.Refs[walk.RefSeq[i+1]])
		}
		return s / float64(len(preds))
	}
	plan := floorplan.OutdoorCampus()
	onMap := func(preds []core.IMUPrediction) float64 {
		pts := make([]geo.Point, len(preds))
		for i, pr := range preds {
			pts[i] = pr.End
		}
		return eval.OnMapRate(plan, pts)
	}

	r := &Report{
		ID:     "X1",
		Title:  "Extension: online trajectory decoding on an unseen walk",
		Header: []string{"decoder", "mean error (m)", "on-map rate"},
	}
	greedyLong := model.TrackWalk(net, walk, 1<<30) // clamped to trained max
	r.AddRow("greedy chaining (max window)", f2(meanErr(greedyLong)), pct(onMap(greedyLong)))
	greedyShort := model.TrackWalk(net, walk, 1)
	r.AddRow("greedy chaining (1-segment)", f2(meanErr(greedyShort)), pct(onMap(greedyShort)))
	viterbi := model.TrackWalkViterbi(net, walk)
	r.AddRow("map-constrained Viterbi", f2(meanErr(viterbi)), pct(onMap(viterbi)))
	r.AddNote("walk: %d segments, unseen during training; the Viterbi decoder replaces the hand heuristics of [8]/[19]", len(walk.Segments))
	return r
}
