// Package train is the callable Wi-Fi training path behind
// cmd/noble-train: materialize a dataset, fit the NObLe model, run the
// optional int8 calibration gate, and save or publish the result as a
// noble-serve bundle. The command keeps only flag parsing; everything
// below the flags lives here so the retraining loop
// (internal/retrain) can invoke the exact same path — including the
// publish-blocking accuracy gate — on seed data augmented with
// harvested re-anchor fixes.
//
// Boundary rule (see docs/LINT.md): this package TRAINS. It may
// construct and fit models and write bundles, but it must never reach
// into the serving registry or mutate deployment state — a retrained
// bundle reaches traffic only by being published to the bundle
// directory and earning promotion through the lifecycle controller.
package train

import (
	"encoding/json"
	"fmt"
	"os"

	"noble/internal/core"
	"noble/internal/dataset"
	"noble/internal/eval"
	"noble/internal/geo"
	"noble/internal/serve"
)

// DataOptions selects the training dataset the way the noble-train
// flags do: a named synthetic survey, or a UJIIndoorLoc-format CSV
// pair.
type DataOptions struct {
	Dataset   string // synthetic dataset: uji or ipin
	Size      string // synthetic dataset size: small or full
	TrainCSV  string // overrides Dataset when set
	TestCSV   string // required with TrainCSV
	Threshold float64
}

// LoadData materializes the requested dataset. For synthetic datasets
// the returned spec records how to regenerate it (for serving
// bundles); it is nil for CSV input.
func LoadData(o DataOptions) (*dataset.WiFi, *serve.WiFiBundle, error) {
	if o.TrainCSV != "" {
		if o.TestCSV == "" {
			return nil, nil, fmt.Errorf("-train-csv requires -test-csv")
		}
		train, err := loadCSV(o.TrainCSV, o.Threshold)
		if err != nil {
			return nil, nil, err
		}
		test, err := loadCSV(o.TestCSV, o.Threshold)
		if err != nil {
			return nil, nil, err
		}
		maxB, maxF := 0, 0
		for _, s := range append(append([]dataset.WiFiSample{}, train...), test...) {
			if s.Building > maxB {
				maxB = s.Building
			}
			if s.Floor > maxF {
				maxF = s.Floor
			}
		}
		return &dataset.WiFi{
			NumWAPs:      len(train[0].RSSI),
			NumBuildings: maxB + 1,
			NumFloors:    maxF + 1,
			Train:        train,
			Test:         test,
		}, nil, nil
	}
	var cfg dataset.WiFiConfig
	switch {
	case o.Dataset == "uji" && o.Size == "full":
		cfg = dataset.DefaultUJIConfig()
	case o.Dataset == "uji":
		cfg = dataset.SmallUJIConfig()
	case o.Dataset == "ipin" && o.Size == "full":
		cfg = dataset.DefaultIPINConfig()
	case o.Dataset == "ipin":
		cfg = dataset.SmallIPINConfig()
	default:
		return nil, nil, fmt.Errorf("unknown dataset %q (want uji or ipin)", o.Dataset)
	}
	if o.Dataset == "uji" {
		return dataset.SynthUJI(cfg), &serve.WiFiBundle{Plan: "uji", Dataset: cfg}, nil
	}
	return dataset.SynthIPIN(cfg), &serve.WiFiBundle{Plan: "ipin", Dataset: cfg}, nil
}

func loadCSV(path string, threshold float64) ([]dataset.WiFiSample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening %s: %v", path, err)
	}
	defer f.Close()
	samples, err := dataset.LoadUJICSV(f, threshold)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("%s contains no samples", path)
	}
	return samples, nil
}

// Options is one training run. Data and Config are required; everything
// else is opt-in.
type Options struct {
	Data   *dataset.WiFi
	Spec   *serve.WiFiBundle // generation spec; nil for CSV input
	Config core.WiFiConfig

	// Extra augments the training split with harvested serving-time
	// samples (re-anchor fixes). The architecture is still built from
	// Data alone, so the result stays load-compatible with bundles
	// published from the same spec; see core.TrainWiFiAugmented.
	Extra []dataset.WiFiSample

	// Precision selects the published serving tier: core.PrecisionFP64
	// (default when empty) or core.PrecisionInt8, which runs
	// calibration plus the publish-blocking accuracy gate.
	Precision       string
	CalibMethod     string  // absmax or percentile
	CalibPercentile float64 // for percentile calibration
	CalibSamples    int     // max validation rows consumed (0 = default)
	ErrorBudgetPct  float64 // int8 gate budget in percent (0 = default)

	SavePath string // write raw weights here when set

	// BundleDir/BundleName publish the model as a noble-serve bundle at
	// <dir>/<name>/. Requires Spec (the manifest must record a
	// reproducible generation spec).
	BundleDir  string
	BundleName string
	// Lifecycle, when set with BundleDir, is written as the bundle's
	// lifecycle.json sidecar — the promotion policy the deployment
	// pipeline enforces on the new generation.
	Lifecycle *serve.LifecycleSpec

	// Printf receives the run's progress lines (nil discards them).
	// cmd/noble-train passes fmt.Printf, keeping its output
	// byte-identical to the pre-refactor command.
	Printf func(format string, args ...any)
}

// Result is what a run produced.
type Result struct {
	Model      *core.WiFiModel
	TestStats  *eval.ErrorStats       // nil when Data.Test is empty
	Calib      *serve.CalibrationFile // nil for fp64 runs
	BundlePath string                 // "" unless published
}

// Run trains, evaluates, gates, and saves/publishes per Options. A
// model that fails the int8 gate is never saved or published.
func Run(o Options) (*Result, error) {
	printf := o.Printf
	if printf == nil {
		printf = func(string, ...any) {}
	}
	if o.Precision == "" {
		o.Precision = core.PrecisionFP64
	}
	if o.Precision != core.PrecisionFP64 && o.Precision != core.PrecisionInt8 {
		return nil, fmt.Errorf("precision %q: want fp64 or int8", o.Precision)
	}
	if o.BundleDir != "" && o.Spec == nil {
		return nil, fmt.Errorf("-bundle requires a synthetic dataset (the manifest must record a reproducible generation spec)")
	}
	if o.BundleDir != "" && o.BundleName == "" {
		return nil, fmt.Errorf("publishing a bundle requires a bundle name")
	}

	ds, cfg := o.Data, o.Config
	if len(o.Extra) > 0 {
		printf("training on %d samples + %d harvested fixes (%d WAPs, %d buildings, %d floors)\n",
			len(ds.Train), len(o.Extra), ds.NumWAPs, ds.NumBuildings, ds.NumFloors)
	} else {
		printf("training on %d samples (%d WAPs, %d buildings, %d floors)\n",
			len(ds.Train), ds.NumWAPs, ds.NumBuildings, ds.NumFloors)
	}
	model := core.TrainWiFiAugmented(ds, o.Extra, cfg)
	printf("model: %d neighborhood classes, %d MACs/inference\n", model.Classes(), model.FLOPs())

	res := &Result{Model: model}
	if len(ds.Test) > 0 {
		x := dataset.FeaturesMatrix(ds.Test)
		preds := model.PredictMatrix(x)
		pos := make([]geo.Point, len(preds))
		floors := make([]int, len(preds))
		buildings := make([]int, len(preds))
		for i, p := range preds {
			pos[i] = p.Pos
			floors[i] = p.Floor
			buildings[i] = p.Building
		}
		stats := eval.Stats(eval.Errors(pos, dataset.Positions(ds.Test)))
		res.TestStats = &stats
		printf("test: mean %.2f m, median %.2f m, p90 %.2f m (n=%d)\n",
			stats.Mean, stats.Median, stats.P90, stats.N)
		printf("test: building acc %.2f%%, floor acc %.2f%%\n",
			100*eval.HitRate(buildings, dataset.BuildingLabels(ds.Test)),
			100*eval.HitRate(floors, dataset.FloorLabels(ds.Test)))
	}

	// The quantized tier: calibrate on the validation split and enforce
	// the accuracy gate BEFORE anything is written. A model that fails
	// the gate is never saved or published as int8 — that is the entire
	// point of the gate.
	if o.Precision == core.PrecisionInt8 {
		calib, err := serve.QuantizeWiFiModel(model, ds, serve.QuantizeOptions{
			Method:       o.CalibMethod,
			Percentile:   o.CalibPercentile,
			CalibSamples: o.CalibSamples,
			BudgetPct:    o.ErrorBudgetPct,
		})
		if err != nil {
			return nil, fmt.Errorf("int8 publish blocked: %v", err)
		}
		budget := o.ErrorBudgetPct
		if budget == 0 {
			budget = serve.DefaultErrorBudgetPct
		}
		printf("int8 gate passed: mean error %.2f m (fp64) -> %.2f m (int8), delta %+.2f%% (budget %.2f%%)\n",
			calib.FP64MeanErr, calib.Int8MeanErr, calib.DeltaPct, budget)
		res.Calib = calib
	}

	if o.SavePath != "" {
		f, err := os.Create(o.SavePath)
		if err != nil {
			return nil, fmt.Errorf("creating %s: %v", o.SavePath, err)
		}
		if err := model.Save(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("saving model: %v", err)
		}
		// Close errors carry write-back failures (full disk): check them
		// instead of deferring, so we never report success over a
		// truncated weights file.
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("closing %s: %v", o.SavePath, err)
		}
		printf("weights written to %s\n", o.SavePath)
	}

	if o.BundleDir != "" {
		o.Spec.Config = cfg
		man := serve.Manifest{Kind: serve.KindWiFi, WiFi: o.Spec}
		var extras []serve.ExtraFile
		if res.Calib != nil {
			man.Precision = &serve.PrecisionBlock{
				Mode:           core.PrecisionInt8,
				ErrorBudgetPct: o.ErrorBudgetPct,
			}
			extras = append(extras, serve.CalibrationExtra("calibration.json", res.Calib))
		}
		if o.Lifecycle != nil {
			spec := o.Lifecycle
			extras = append(extras, serve.ExtraFile{Name: "lifecycle.json", Write: func(f *os.File) error {
				raw, err := json.MarshalIndent(spec, "", "  ")
				if err != nil {
					return err
				}
				_, err = f.Write(append(raw, '\n'))
				return err
			}})
		}
		if err := serve.WriteBundle(o.BundleDir, o.BundleName, man, func(f *os.File) error {
			return model.Save(f)
		}, extras...); err != nil {
			return nil, fmt.Errorf("publishing bundle: %v", err)
		}
		res.BundlePath = o.BundleDir + "/" + o.BundleName
		printf("bundle published to %s\n", res.BundlePath)
	}
	return res, nil
}
