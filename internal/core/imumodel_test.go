package core

import (
	"bytes"
	"math"
	"testing"

	"noble/internal/eval"
	"noble/internal/geo"
	"noble/internal/imu"
	"noble/internal/nn"
)

// tinyIMU builds a fast tracking dataset for unit tests.
func tinyIMU() *imu.PathDataset {
	net := imu.NewCampusNetwork(6)
	cfg := imu.DefaultConfig()
	cfg.ReadingsPerSegment = 64
	cfg.TotalSegments = 120
	cfg.Walks = 2
	track := imu.Synthesize(net, cfg, 11)
	pcfg := imu.PathConfig{
		NumPaths: 500, MaxLen: 8, Frames: 4,
		TrainFrac: 0.64, ValFrac: 0.16, Seed: 5,
	}
	return imu.BuildPaths(track, pcfg)
}

func tinyIMUConfig() IMUConfig {
	cfg := DefaultIMUConfig()
	cfg.Hidden = []int{48, 48}
	cfg.ProjDim = 6
	cfg.Tau = 1.0
	cfg.Epochs = 30
	return cfg
}

func TestTrainIMULearnsTracking(t *testing.T) {
	ds := tinyIMU()
	m := TrainIMU(ds, tinyIMUConfig())
	preds := m.PredictPaths(ds.Test)
	truth := make([]geo.Point, len(ds.Test))
	for i := range ds.Test {
		truth[i] = ds.Test[i].End
	}
	errs := eval.Errors(imuPositions(preds), truth)
	stats := eval.Stats(errs)
	// The campus is 160×60 m; uninformed guessing gives tens of meters.
	if stats.Mean > 20 {
		t.Fatalf("mean end-position error %v m — model did not learn", stats.Mean)
	}
}

func TestIMUPredictionsDecodeToCentroids(t *testing.T) {
	ds := tinyIMU()
	cfg := tinyIMUConfig()
	cfg.Epochs = 2
	m := TrainIMU(ds, cfg)
	for _, p := range m.PredictPaths(ds.Test[:10]) {
		if p.Class < 0 || p.Class >= m.Grid.Classes() {
			t.Fatalf("class %d out of range", p.Class)
		}
		if p.End != m.Grid.Decode(p.Class) {
			t.Fatal("end position must decode to the class centroid")
		}
	}
}

func TestIMUEndPositionsOnNetwork(t *testing.T) {
	// Every decoded end position must be (near) a reference location —
	// the structural property regression lacks.
	ds := tinyIMU()
	cfg := tinyIMUConfig()
	cfg.Epochs = 5
	m := TrainIMU(ds, cfg)
	for _, p := range m.PredictPaths(ds.Test[:20]) {
		best := 1e18
		for _, r := range ds.Net.Refs {
			if d := geo.Dist(p.End, r); d < best {
				best = d
			}
		}
		if best > cfg.Tau {
			t.Fatalf("decoded end %v is %v m from any reference", p.End, best)
		}
	}
}

func TestIMUDisplacementHeadLearns(t *testing.T) {
	ds := tinyIMU()
	m := TrainIMU(ds, tinyIMUConfig())
	preds := m.PredictPaths(ds.Test)
	var sumErr, sumMag float64
	for i, p := range preds {
		want := ds.Test[i].Displacement()
		sumErr += geo.Dist(p.Displacement, want)
		sumMag += want.Norm()
	}
	meanErr := sumErr / float64(len(preds))
	meanMag := sumMag / float64(len(preds))
	// Displacement estimates must beat the trivial zero predictor.
	if meanErr > meanMag {
		t.Fatalf("displacement error %v exceeds mean displacement %v", meanErr, meanMag)
	}
}

func TestIMUDeterministic(t *testing.T) {
	ds := tinyIMU()
	cfg := tinyIMUConfig()
	cfg.Epochs = 3
	a := TrainIMU(ds, cfg)
	b := TrainIMU(ds, cfg)
	pa, pb := a.PredictPaths(ds.Test[:10]), b.PredictPaths(ds.Test[:10])
	for i := range pa {
		if pa[i].Class != pb[i].Class {
			t.Fatal("IMU training must be deterministic per seed")
		}
	}
}

func TestIMUSaveLoad(t *testing.T) {
	ds := tinyIMU()
	cfg := tinyIMUConfig()
	cfg.Epochs = 3
	m := TrainIMU(ds, cfg)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := NewIMUModel(ds, cfg)
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	pa, pb := m.PredictPaths(ds.Test[:10]), m2.PredictPaths(ds.Test[:10])
	for i := range pa {
		if pa[i].Class != pb[i].Class {
			t.Fatal("loaded IMU model must reproduce predictions")
		}
	}
}

func TestIMUFLOPsPositive(t *testing.T) {
	ds := tinyIMU()
	cfg := tinyIMUConfig()
	m := NewIMUModel(ds, cfg)
	if m.FLOPs() <= 0 {
		t.Fatal("FLOPs must be positive")
	}
}

func TestIMUBadConfigPanics(t *testing.T) {
	ds := tinyIMU()
	cfg := tinyIMUConfig()
	cfg.ProjDim = 0
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewIMUModel(ds, cfg)
}

func imuPositions(preds []IMUPrediction) []geo.Point {
	out := make([]geo.Point, len(preds))
	for i, p := range preds {
		out[i] = p.End
	}
	return out
}

// TestIMUStepGradientCheck validates the hand-wired backward pass of the
// three-module graph — including the gradient routed through the wired
// end-estimate — against central differences.
func TestIMUStepGradientCheck(t *testing.T) {
	net := imu.NewCampusNetwork(10)
	icfg := imu.DefaultConfig()
	icfg.ReadingsPerSegment = 32
	icfg.TotalSegments = 20
	track := imu.Synthesize(net, icfg, 21)
	ds := imu.BuildPaths(track, imu.PathConfig{
		NumPaths: 24, MaxLen: 3, Frames: 2,
		TrainFrac: 1, ValFrac: 0, Seed: 9,
	})
	cfg := DefaultIMUConfig()
	cfg.Hidden = []int{6}
	cfg.ProjDim = 3
	cfg.Tau = 2.0
	m := NewIMUModel(ds, cfg)

	paths := ds.Train[:8]
	x, startOH, starts, disp, endClass := m.inputs(paths)
	locT := m.Grid.OneHot(endClass)

	lossOnly := func() float64 {
		v, logits := m.forward(x, startOH, starts, true)
		return m.Cfg.DispWeight*m.dispLoss.Forward(v, disp) +
			m.Cfg.LocWeight*m.locLoss.Forward(logits, locT)
	}
	params := m.Params()
	nn.ZeroGrads(params)
	m.step(x, startOH, starts, disp, locT)

	const eps = 1e-5
	checked := 0
	for _, p := range params {
		stride := len(p.W.Data)/3 + 1
		for i := 0; i < len(p.W.Data); i += stride {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			plus := lossOnly()
			p.W.Data[i] = orig - eps
			minus := lossOnly()
			p.W.Data[i] = orig
			want := (plus - minus) / (2 * eps)
			got := p.G.Data[i]
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("param %s[%d]: analytic %g numeric %g", p.Name, i, got, want)
			}
			checked++
		}
	}
	if checked < 10 {
		t.Fatalf("only %d gradient entries checked", checked)
	}
}
