package core

import (
	"fmt"

	"noble/internal/imu"
	"noble/internal/mat"
	"noble/internal/nn"
	"noble/internal/nn/qlinear"
)

// This file threads the int8 quantized-inference tier (nn/qlinear)
// through both NObLe models. Quantization is an inference-time overlay
// on a trained fp64 model: EnableInt8 derives the int8 mirror — per-
// channel weight codes re-derived deterministically from the fp64
// weights, activation scales drawn from the given source — and from
// then on the model's serving entry points (PredictMatrix /
// PredictPaths) run the integer path. The fp64 network stays intact
// underneath: weight snapshots, Save/Load, and Embed are unaffected,
// and callers that need a side-by-side comparison (the accuracy gate)
// evaluate in fp64 first and call EnableInt8 after.

// Precision labels reported by the models and carried through bundle
// manifests, the serving API, and metrics.
const (
	PrecisionFP64 = "fp64"
	PrecisionInt8 = "int8"
)

// drained rejects a scale source with unconsumed values: stored
// calibration must match the model's quantized-layer count exactly, in
// both directions.
func drained(src qlinear.ScaleSource) error {
	if s, ok := src.(*qlinear.Scales); ok && s.Remaining() != 0 {
		return fmt.Errorf("core: calibration has %d unconsumed activation scales", s.Remaining())
	}
	return nil
}

// EnableInt8 switches the model's serving path to int8. src supplies
// activation scales in canonical order — a qlinear.Calibrator measuring
// them from calib (train time) or qlinear.Scales replaying stored
// values with calib nil (bundle load). calib rows are normalized
// fingerprints, e.g. the validation split's feature matrix.
func (m *WiFiModel) EnableInt8(src qlinear.ScaleSource, calib *mat.Dense) error {
	qnet, err := qlinear.FromMultiHead(m.net, src, calib)
	if err != nil {
		return fmt.Errorf("core: quantize wifi model: %w", err)
	}
	if err := drained(src); err != nil {
		return err
	}
	m.qnet = qnet
	return nil
}

// Precision reports which arithmetic the serving path runs.
func (m *WiFiModel) Precision() string {
	if m.qnet != nil {
		return PrecisionInt8
	}
	return PrecisionFP64
}

// headOutputs runs the precision-dispatched forward pass for serving.
func (m *WiFiModel) headOutputs(x *mat.Dense) []*mat.Dense {
	if m.qnet != nil {
		_, outs := m.qnet.Forward(x)
		return outs
	}
	_, outs := m.net.Forward(x, false)
	return outs
}

// EnableInt8 switches the IMU model's serving path to int8, quantizing
// the projection, displacement, and location modules in that canonical
// order. The location module's input wiring (the fixed start +
// displacement affine) stays in fp64 — it is a handful of adds per
// path, not a GEMM. calibPaths provide activation data for a
// Calibrator (e.g. the validation paths); with stored Scales they may
// be nil.
func (m *IMUModel) EnableInt8(src qlinear.ScaleSource, calibPaths []imu.Path) error {
	var x, startOH, starts *mat.Dense
	if len(calibPaths) > 0 {
		x, startOH, starts, _, _ = m.inputs(calibPaths)
	}
	qproj, h, err := qlinear.FromSequential(nn.NewSequential(m.proj), src, x)
	if err != nil {
		return fmt.Errorf("core: quantize imu projection: %w", err)
	}
	qdisp, v, err := qlinear.FromSequential(m.dispNet, src, h)
	if err != nil {
		return fmt.Errorf("core: quantize imu displacement module: %w", err)
	}
	var locIn *mat.Dense
	if v != nil {
		locIn = m.locInput(v, startOH, starts)
	}
	qloc, _, err := qlinear.FromSequential(m.locNet, src, locIn)
	if err != nil {
		return fmt.Errorf("core: quantize imu location module: %w", err)
	}
	if err := drained(src); err != nil {
		return err
	}
	m.qproj, m.qdispNet, m.qlocNet = qproj, qdisp, qloc
	return nil
}

// Precision reports which arithmetic the serving path runs.
func (m *IMUModel) Precision() string {
	if m.qproj != nil {
		return PrecisionInt8
	}
	return PrecisionFP64
}

// qforward mirrors forward on the quantized modules.
func (m *IMUModel) qforward(x, startOH, starts *mat.Dense) (v, logits *mat.Dense) {
	h := m.qproj.Forward(x)
	v = m.qdispNet.Forward(h)
	logits = m.qlocNet.Forward(m.locInput(v, startOH, starts))
	return v, logits
}
