package core

import (
	"fmt"
	"math"

	"noble/internal/geo"
	"noble/internal/imu"
	"noble/internal/mat"
	"noble/internal/nn"
)

// This file implements extensions beyond the paper's headline experiments,
// built on hooks the paper itself describes: hierarchical decoding uses
// the coarse grid of §III-B ("different levels of granularity of the
// output manifold") at inference time, top-k decoding exposes the
// classifier's calibrated alternatives, and TrackWalk turns the
// path-level IMU model into an online tracker by sliding it along a walk
// and re-anchoring on its own decoded positions.

// ClassProb is one ranked decoding alternative.
type ClassProb struct {
	Class int
	Prob  float64
	Pos   geo.Point
}

// PredictTopK returns the k most probable neighborhood classes for one
// fingerprint with softmax probabilities and decoded positions, most
// probable first.
func (m *WiFiModel) PredictTopK(features []float64, k int) []ClassProb {
	if k < 1 {
		panic(fmt.Sprintf("core: PredictTopK with k=%d", k))
	}
	x := mat.FromSlice(1, len(features), append([]float64(nil), features...))
	_, outs := m.net.Forward(x, false)
	probs := nn.Softmax(outs[m.fineHead]).Row(0)
	idx := mat.TopK(probs, k)
	out := make([]ClassProb, len(idx))
	for i, c := range idx {
		out[i] = ClassProb{Class: c, Prob: probs[c], Pos: m.Grids.Fine.Decode(c)}
	}
	return out
}

// PredictBatchHierarchical decodes with the coarse head as a gate: the
// fine class is chosen among the classes belonging to the predicted
// coarse cell (falling back to the global argmax when the gate is empty
// or the coarse head is disabled). This exploits the paper's
// multi-granularity output at inference time: coarse mistakes are rarer
// than fine mistakes, so gating suppresses long-range fine errors.
func (m *WiFiModel) PredictBatchHierarchical(x *mat.Dense) []WiFiPrediction {
	if m.coarseHead < 0 {
		return m.PredictMatrix(x)
	}
	fineToCoarse := m.fineToCoarse()
	_, outs := m.net.Forward(x, false)
	preds := make([]WiFiPrediction, x.Rows)
	for i := range preds {
		coarse := mat.ArgMax(outs[m.coarseHead].Row(i))
		fineLogits := outs[m.fineHead].Row(i)
		best, bestVal := -1, 0.0
		for c, logit := range fineLogits {
			if fineToCoarse[c] != coarse {
				continue
			}
			if best == -1 || logit > bestVal {
				best, bestVal = c, logit
			}
		}
		if best == -1 {
			best = mat.ArgMax(fineLogits)
		}
		p := WiFiPrediction{Class: best, Pos: m.Grids.Fine.Decode(best)}
		if m.buildingHead >= 0 {
			p.Building = mat.ArgMax(outs[m.buildingHead].Row(i))
		}
		if m.floorHead >= 0 {
			p.Floor = mat.ArgMax(outs[m.floorHead].Row(i))
		}
		preds[i] = p
	}
	return preds
}

// fineToCoarse maps every fine class to the coarse class containing its
// centroid.
func (m *WiFiModel) fineToCoarse() []int {
	out := make([]int, m.Grids.Fine.Classes())
	for c := range out {
		out[c] = m.Grids.Coarse.NearestClass(m.Grids.Fine.Decode(c))
	}
	return out
}

// TrackWalk applies the path model online along one recorded walk: after
// every segment it decodes the walker's position from a window of the
// `window` most recent segments (clamped to [1, trained maximum]),
// anchored at the model's own estimate from before that window — true
// dead-reckoning-with-snapping. The first windows anchor at the walk's
// known start. Short windows (1–2 segments) keep per-window displacement
// error below the reference spacing, so the snap to the class codebook
// corrects drift at every step; long windows accumulate more displacement
// error between corrections. It returns one prediction per segment.
func (m *IMUModel) TrackWalk(net *imu.Network, walk *imu.Walk, window int) []IMUPrediction {
	if len(walk.Segments) == 0 {
		return nil
	}
	if window < 1 {
		window = 1
	}
	if window > m.maxLen {
		window = m.maxLen
	}
	segFeats := make([][]float64, len(walk.Segments))
	for i, s := range walk.Segments {
		segFeats[i] = imu.SegmentFeatures(s.Readings, m.frames)
	}
	trueStart := net.Refs[walk.RefSeq[0]]
	// anchor(i) = estimated position before segment i.
	anchors := make([]geo.Point, len(walk.Segments)+1)
	anchors[0] = trueStart
	out := make([]IMUPrediction, len(walk.Segments))
	for t := range walk.Segments {
		lo := t + 1 - window
		if lo < 0 {
			lo = 0
		}
		var feats []float64
		for s := lo; s <= t; s++ {
			feats = append(feats, segFeats[s]...)
		}
		path := imu.Path{
			Start:       anchors[lo],
			NumSegments: t - lo + 1,
			Features:    feats,
		}
		pred := m.PredictPaths([]imu.Path{path})[0]
		out[t] = pred
		anchors[t+1] = pred.End
	}
	return out
}

// TrackWalkViterbi decodes a whole walk jointly with map-constrained
// Viterbi over the reference graph: states are neighborhood classes,
// transitions are restricted to graph-adjacent references (a walker can
// only move along walkways — the constraint that [8] and LocMe enforce
// with hand-written heuristics), and emissions are the location head's
// log-softmax for each single-segment window conditioned on the previous
// state. Unlike greedy chaining (TrackWalk), a locally wrong decode is
// repaired as soon as later evidence contradicts it.
func (m *IMUModel) TrackWalkViterbi(net *imu.Network, walk *imu.Walk) []IMUPrediction {
	if len(walk.Segments) == 0 {
		return nil
	}
	k := m.Grid.Classes()
	// Class adjacency from network adjacency.
	classOf := make([]int, len(net.Refs))
	for i, r := range net.Refs {
		classOf[i] = m.Grid.NearestClass(r)
	}
	adj := make(map[int]map[int]bool, k)
	for i, nbrs := range net.Adj {
		ci := classOf[i]
		if adj[ci] == nil {
			adj[ci] = make(map[int]bool)
		}
		for _, j := range nbrs {
			adj[ci][classOf[j]] = true
		}
	}

	negInf := math.Inf(-1)
	delta := make([]float64, k)
	for s := range delta {
		delta[s] = negInf
	}
	delta[m.Grid.NearestClass(net.Refs[walk.RefSeq[0]])] = 0
	backptr := make([][]int, len(walk.Segments))

	for t, seg := range walk.Segments {
		feats := imu.SegmentFeatures(seg.Readings, m.frames)
		// Active previous states.
		var active []int
		for s, d := range delta {
			if d > negInf {
				active = append(active, s)
			}
		}
		// Batched emission: one path per active previous state, each
		// anchored at that state's centroid.
		paths := make([]imu.Path, len(active))
		for i, prev := range active {
			paths[i] = imu.Path{
				Start:       m.Grid.Decode(prev),
				NumSegments: 1,
				Features:    feats,
			}
		}
		logProbs := m.locLogSoftmax(paths)
		next := make([]float64, k)
		ptr := make([]int, k)
		for s := range next {
			next[s] = negInf
			ptr[s] = -1
		}
		for i, prev := range active {
			row := logProbs.Row(i)
			for s := range adj[prev] {
				if cand := delta[prev] + row[s]; cand > next[s] {
					next[s] = cand
					ptr[s] = prev
				}
			}
		}
		delta = next
		backptr[t] = ptr
	}

	// Backtrace.
	best := mat.ArgMax(delta)
	classes := make([]int, len(walk.Segments))
	for t := len(walk.Segments) - 1; t >= 0; t-- {
		classes[t] = best
		best = backptr[t][best]
		if best < 0 {
			break
		}
	}
	out := make([]IMUPrediction, len(classes))
	for t, c := range classes {
		out[t] = IMUPrediction{End: m.Grid.Decode(c), Class: c}
	}
	return out
}

// locLogSoftmax runs the full graph for a batch of single-segment paths
// and returns row-wise log-softmax location scores.
func (m *IMUModel) locLogSoftmax(paths []imu.Path) *mat.Dense {
	x, startOH, starts, _, _ := m.inputs(paths)
	_, logits := m.forward(x, startOH, starts, false)
	probs := nn.Softmax(logits)
	probs.Apply(func(p float64) float64 { return math.Log(p + 1e-12) })
	return probs
}
