package core

import (
	"fmt"
	"testing"

	"noble/internal/dataset"
)

// benchWiFiModel trains a paper-capacity model (two 128-unit hidden
// layers) on the small synthetic UJI campus — the shape noble-serve's
// micro-batcher runs in production.
func benchWiFiModel(b *testing.B) (*WiFiModel, *dataset.WiFi) {
	b.Helper()
	ds := dataset.SynthUJI(dataset.SmallUJIConfig())
	cfg := DefaultWiFiConfig()
	cfg.Epochs = 1
	return TrainWiFi(ds, cfg), ds
}

// BenchmarkWiFiPredictRowByRow is the unbatched serving cost: one forward
// pass per fingerprint.
func BenchmarkWiFiPredictRowByRow(b *testing.B) {
	m, ds := benchWiFiModel(b)
	feats := ds.Test[0].Features
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(feats)
	}
}

// BenchmarkWiFiPredictBatch measures amortized per-fingerprint cost when
// requests are coalesced, at the batch sizes the micro-batcher produces.
func BenchmarkWiFiPredictBatch(b *testing.B) {
	m, ds := benchWiFiModel(b)
	for _, size := range []int{8, 32, 64} {
		rows := make([][]float64, size)
		for i := range rows {
			rows[i] = ds.Test[i%len(ds.Test)].Features
		}
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.PredictBatch(rows)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/fingerprint")
		})
	}
}
