package core

import (
	"bytes"
	"testing"

	"noble/internal/dataset"
	"noble/internal/eval"
	"noble/internal/geo"
)

// tinyWiFi builds a fast single-building dataset for unit tests.
func tinyWiFi() *dataset.WiFi {
	cfg := dataset.SmallIPINConfig()
	cfg.NumWAPs = 25
	cfg.RefSpacing = 4
	cfg.SamplesPerRef = 5
	cfg.TestSamplesPerRef = 2
	cfg.Seed = 3
	return dataset.SynthIPIN(cfg)
}

func tinyWiFiConfig() WiFiConfig {
	cfg := DefaultWiFiConfig()
	cfg.Hidden = []int{32, 32}
	cfg.Epochs = 25
	cfg.TauFine = 0.5
	cfg.TauCoarse = 6
	cfg.Seed = 1
	return cfg
}

func TestTrainWiFiLearnsLocalization(t *testing.T) {
	ds := tinyWiFi()
	m := TrainWiFi(ds, tinyWiFiConfig())
	x := dataset.FeaturesMatrix(ds.Test)
	preds := m.PredictMatrix(x)
	errs := eval.Errors(predPositions(preds), dataset.Positions(ds.Test))
	stats := eval.Stats(errs)
	// The building is 40×17 m; random guessing would give ≈15 m mean.
	if stats.Mean > 6 {
		t.Fatalf("mean error %v m — model did not learn", stats.Mean)
	}
	if stats.Median > 3 {
		t.Fatalf("median error %v m", stats.Median)
	}
}

func TestWiFiFloorHeadLearns(t *testing.T) {
	ds := tinyWiFi()
	m := TrainWiFi(ds, tinyWiFiConfig())
	x := dataset.FeaturesMatrix(ds.Test)
	preds := m.PredictMatrix(x)
	floors := make([]int, len(preds))
	for i, p := range preds {
		floors[i] = p.Floor
	}
	rate := eval.HitRate(floors, dataset.FloorLabels(ds.Test))
	if rate < 0.6 {
		t.Fatalf("floor hit rate %v", rate)
	}
}

func TestWiFiPredictSingleMatchesBatch(t *testing.T) {
	ds := tinyWiFi()
	m := TrainWiFi(ds, tinyWiFiConfig())
	x := dataset.FeaturesMatrix(ds.Test[:3])
	batch := m.PredictMatrix(x)
	for i := 0; i < 3; i++ {
		single := m.Predict(ds.Test[i].Features)
		if single.Class != batch[i].Class || single.Pos != batch[i].Pos {
			t.Fatal("single and batch prediction disagree")
		}
	}
}

func TestWiFiPredictBatchMatchesPredict(t *testing.T) {
	// The serving layer's micro-batcher answers requests from one
	// coalesced PredictBatch pass; a device must get bit-for-bit the
	// same answer it would have gotten alone.
	ds := tinyWiFi()
	m := TrainWiFi(ds, tinyWiFiConfig())
	rows := make([][]float64, len(ds.Test))
	for i, s := range ds.Test {
		rows[i] = s.Features
	}
	batch := m.PredictBatch(rows)
	if len(batch) != len(rows) {
		t.Fatalf("PredictBatch returned %d results for %d rows", len(batch), len(rows))
	}
	for i, s := range ds.Test {
		single := m.Predict(s.Features)
		if single != batch[i] {
			t.Fatalf("sample %d: batch %+v != single %+v", i, batch[i], single)
		}
	}
	if m.PredictBatch(nil) != nil {
		t.Fatal("empty batch must return nil")
	}
}

func TestNewWiFiModelLoadsTrainedWeights(t *testing.T) {
	// NewWiFiModel must build the identical architecture TrainWiFi
	// trains, so Save/Load round-trips through an untrained model — the
	// path the serving registry takes when loading a bundle.
	ds := tinyWiFi()
	cfg := tinyWiFiConfig()
	cfg.Epochs = 4
	trained := TrainWiFi(ds, cfg)
	var buf bytes.Buffer
	if err := trained.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := NewWiFiModel(ds, cfg)
	if err := fresh.Load(&buf); err != nil {
		t.Fatal(err)
	}
	x := dataset.FeaturesMatrix(ds.Test)
	pa, pb := trained.PredictMatrix(x), fresh.PredictMatrix(x)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("sample %d: restored model predicts %+v, trained predicts %+v", i, pb[i], pa[i])
		}
	}
	if fresh.InputDim() != ds.NumWAPs {
		t.Fatalf("InputDim %d, want %d", fresh.InputDim(), ds.NumWAPs)
	}
}

func TestWiFiPredictionsAreOnGridCentroids(t *testing.T) {
	ds := tinyWiFi()
	m := TrainWiFi(ds, tinyWiFiConfig())
	x := dataset.FeaturesMatrix(ds.Test)
	for _, p := range m.PredictMatrix(x) {
		if p.Class < 0 || p.Class >= m.Classes() {
			t.Fatalf("class %d out of range", p.Class)
		}
		if p.Pos != m.Grids.Fine.Decode(p.Class) {
			t.Fatal("prediction must decode to the class centroid")
		}
	}
}

func TestWiFiStructureAwareness(t *testing.T) {
	// By construction every NObLe output is a populated-cell centroid,
	// so (almost) everything lies on the map.
	ds := tinyWiFi()
	m := TrainWiFi(ds, tinyWiFiConfig())
	x := dataset.FeaturesMatrix(ds.Test)
	preds := m.PredictMatrix(x)
	rate := eval.OnMapRate(ds.Plan, predPositions(preds))
	if rate < 0.99 {
		t.Fatalf("on-map rate %v — NObLe outputs must lie on the map", rate)
	}
}

func TestWiFiMultiLabelVariantTrains(t *testing.T) {
	ds := tinyWiFi()
	cfg := tinyWiFiConfig()
	cfg.MultiLabel = true
	cfg.AdjacentWeight = 0.3
	m := TrainWiFi(ds, cfg)
	x := dataset.FeaturesMatrix(ds.Test)
	errs := eval.Errors(predPositions(m.PredictMatrix(x)), dataset.Positions(ds.Test))
	if eval.Stats(errs).Mean > 8 {
		t.Fatalf("multi-label variant mean error %v", eval.Stats(errs).Mean)
	}
}

func TestWiFiHeadsCanBeDisabled(t *testing.T) {
	ds := tinyWiFi()
	cfg := tinyWiFiConfig()
	cfg.Epochs = 3
	cfg.CoarseHead = false
	cfg.BuildingHead = false
	cfg.FloorHead = false
	m := TrainWiFi(ds, cfg)
	x := dataset.FeaturesMatrix(ds.Test[:2])
	preds := m.PredictMatrix(x)
	for _, p := range preds {
		if p.Building != 0 || p.Floor != 0 {
			t.Fatal("disabled heads must report 0")
		}
	}
}

func TestWiFiDeterministicTraining(t *testing.T) {
	ds := tinyWiFi()
	cfg := tinyWiFiConfig()
	cfg.Epochs = 4
	a := TrainWiFi(ds, cfg)
	b := TrainWiFi(ds, cfg)
	x := dataset.FeaturesMatrix(ds.Test[:5])
	pa, pb := a.PredictMatrix(x), b.PredictMatrix(x)
	for i := range pa {
		if pa[i].Class != pb[i].Class {
			t.Fatal("training must be deterministic per seed")
		}
	}
}

func TestWiFiSaveLoadRoundTrip(t *testing.T) {
	ds := tinyWiFi()
	cfg := tinyWiFiConfig()
	cfg.Epochs = 4
	m := TrainWiFi(ds, cfg)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Epochs = 1 // different training, same architecture
	m2 := TrainWiFi(ds, cfg2)
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	x := dataset.FeaturesMatrix(ds.Test[:5])
	pa, pb := m.PredictMatrix(x), m2.PredictMatrix(x)
	for i := range pa {
		if pa[i].Class != pb[i].Class || pa[i].Floor != pb[i].Floor {
			t.Fatal("loaded model must reproduce saved predictions")
		}
	}
}

func TestWiFiEmbedShape(t *testing.T) {
	ds := tinyWiFi()
	cfg := tinyWiFiConfig()
	cfg.Epochs = 2
	m := TrainWiFi(ds, cfg)
	x := dataset.FeaturesMatrix(ds.Test[:4])
	emb := m.Embed(x)
	if emb.Rows != 4 || emb.Cols != 32 {
		t.Fatalf("embedding %d×%d", emb.Rows, emb.Cols)
	}
	if m.FLOPs() <= 0 {
		t.Fatal("FLOPs must be positive")
	}
}

func TestWiFiBadConfigPanics(t *testing.T) {
	ds := tinyWiFi()
	cfg := tinyWiFiConfig()
	cfg.Hidden = nil
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TrainWiFi(ds, cfg)
}

func predPositions(preds []WiFiPrediction) []geo.Point {
	out := make([]geo.Point, len(preds))
	for i, p := range preds {
		out[i] = p.Pos
	}
	return out
}
