package core

import (
	"bytes"
	"testing"

	"noble/internal/dataset"
	"noble/internal/eval"
	"noble/internal/geo"
	"noble/internal/nn/qlinear"
)

// TestWiFiInt8PredictBatchMatchesPredict mirrors the fp64 contract for
// the quantized path: micro-batched serving must be bit-for-bit
// identical to single-sample inference. Static calibrated activation
// scales make this hold by construction; this test pins it.
func TestWiFiInt8PredictBatchMatchesPredict(t *testing.T) {
	ds := tinyWiFi()
	m := TrainWiFi(ds, tinyWiFiConfig())
	if err := m.EnableInt8(&qlinear.Calibrator{Method: qlinear.CalibAbsMax}, dataset.FeaturesMatrix(ds.Val)); err != nil {
		t.Fatal(err)
	}
	if m.Precision() != PrecisionInt8 {
		t.Fatalf("precision = %q after EnableInt8", m.Precision())
	}
	rows := make([][]float64, len(ds.Test))
	for i, s := range ds.Test {
		rows[i] = s.Features
	}
	batch := m.PredictBatch(rows)
	for i, s := range ds.Test {
		if single := m.Predict(s.Features); single != batch[i] {
			t.Fatalf("sample %d: int8 batch %+v != single %+v", i, batch[i], single)
		}
	}
}

// TestWiFiInt8AccuracyAndReplay checks the two lifecycle properties the
// serving tier depends on: quantization costs little localization
// accuracy, and replaying the calibrator's recorded scales into a
// freshly restored model (the bundle-load path) reproduces the int8
// predictions exactly.
func TestWiFiInt8AccuracyAndReplay(t *testing.T) {
	ds := tinyWiFi()
	m := TrainWiFi(ds, tinyWiFiConfig())
	x := dataset.FeaturesMatrix(ds.Test)
	truth := dataset.Positions(ds.Test)
	fpMean := eval.Stats(eval.Errors(predPositions(m.PredictMatrix(x)), truth)).Mean

	cal := &qlinear.Calibrator{Method: qlinear.CalibPercentile, Percentile: 99.9}
	if err := m.EnableInt8(cal, dataset.FeaturesMatrix(ds.Val)); err != nil {
		t.Fatal(err)
	}
	int8Preds := m.PredictMatrix(x)
	int8Mean := eval.Stats(eval.Errors(predPositions(int8Preds), truth)).Mean
	if int8Mean > fpMean*1.10+0.2 {
		t.Fatalf("int8 mean error %v m vs fp64 %v m — quantization destroyed accuracy", int8Mean, fpMean)
	}

	// Save/Load + stored-scale replay must reproduce int8 predictions.
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := NewWiFiModel(ds, tinyWiFiConfig())
	if err := fresh.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if err := fresh.EnableInt8(&qlinear.Scales{Values: cal.Scales}, nil); err != nil {
		t.Fatal(err)
	}
	replay := fresh.PredictMatrix(x)
	for i := range int8Preds {
		if replay[i] != int8Preds[i] {
			t.Fatalf("sample %d: replayed int8 %+v != calibrated int8 %+v", i, replay[i], int8Preds[i])
		}
	}
}

// TestWiFiInt8ScaleMismatchRejected: the stored-scale path must refuse
// a calibration whose scale count does not match the model.
func TestWiFiInt8ScaleMismatchRejected(t *testing.T) {
	ds := tinyWiFi()
	m := NewWiFiModel(ds, tinyWiFiConfig())
	if err := m.EnableInt8(&qlinear.Scales{Values: []float32{0.1}}, nil); err == nil {
		t.Fatal("expected error for too-few stored scales")
	}
	if m.Precision() != PrecisionFP64 {
		t.Fatalf("failed EnableInt8 must leave precision fp64, got %q", m.Precision())
	}
	cal := &qlinear.Calibrator{}
	if err := m.EnableInt8(cal, dataset.FeaturesMatrix(ds.Val)); err != nil {
		t.Fatal(err)
	}
	extra := append(append([]float32(nil), cal.Scales...), 0.5)
	fresh := NewWiFiModel(ds, tinyWiFiConfig())
	if err := fresh.EnableInt8(&qlinear.Scales{Values: extra}, nil); err == nil {
		t.Fatal("expected error for too-many stored scales")
	}
}

// TestIMUInt8AccuracyAndReplay is the IMU mirror: quantized tracking
// stays close to fp64 and stored-scale replay is exact.
func TestIMUInt8AccuracyAndReplay(t *testing.T) {
	ds := tinyIMU()
	m := TrainIMU(ds, tinyIMUConfig())
	truth := make([]geo.Point, len(ds.Test))
	for i := range ds.Test {
		truth[i] = ds.Test[i].End
	}
	fpMean := eval.Stats(eval.Errors(imuPositions(m.PredictPaths(ds.Test)), truth)).Mean

	cal := &qlinear.Calibrator{Method: qlinear.CalibAbsMax}
	if err := m.EnableInt8(cal, ds.Validation); err != nil {
		t.Fatal(err)
	}
	if m.Precision() != PrecisionInt8 {
		t.Fatalf("precision = %q after EnableInt8", m.Precision())
	}
	int8Preds := m.PredictPaths(ds.Test)
	int8Mean := eval.Stats(eval.Errors(imuPositions(int8Preds), truth)).Mean
	if int8Mean > fpMean*1.15+0.5 {
		t.Fatalf("int8 mean error %v m vs fp64 %v m", int8Mean, fpMean)
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := NewIMUModel(ds, tinyIMUConfig())
	if err := fresh.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if err := fresh.EnableInt8(&qlinear.Scales{Values: cal.Scales}, nil); err != nil {
		t.Fatal(err)
	}
	replay := fresh.PredictPaths(ds.Test)
	for i := range int8Preds {
		if replay[i] != int8Preds[i] {
			t.Fatalf("path %d: replayed int8 %+v != calibrated int8 %+v", i, replay[i], int8Preds[i])
		}
	}
}
