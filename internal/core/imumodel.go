package core

import (
	"fmt"
	"io"

	"noble/internal/geo"
	"noble/internal/imu"
	"noble/internal/mat"
	"noble/internal/nn"
	"noble/internal/nn/qlinear"
	"noble/internal/quantize"
)

// IMUConfig configures TrainIMU.
type IMUConfig struct {
	ProjDim   int   // per-segment projection width (projection module output)
	Hidden    []int // displacement-module hidden sizes
	LocHidden int   // location-module hidden size
	Tau       float64

	DispWeight float64 // weight of the displacement MSE loss
	LocWeight  float64 // weight of the location cross-entropy loss

	// WireSum feeds the location module the standardized estimated end
	// position start + V (a fixed, differentiable sum wired inside the
	// module) alongside the displacement vector and the one-hot start
	// class. The information content is identical to the paper's
	// [V ⊕ one-hot] input — the sum is computable from it — but the
	// smooth encoding makes "start + displacement → end class" far
	// easier to optimize (ablation A2-IMU quantifies this; see
	// DESIGN.md).
	WireSum bool

	// StartOneHot includes the one-hot start class in the location
	// module input (the paper's encoding). Disabling it leaves only the
	// displacement vector and the wired end estimate.
	StartOneHot bool

	// GeoInit initializes the location module's output layer as the
	// geometric nearest-centroid decoder over the wired end estimate
	// (the closed-form classifier derivable from the quantizer's own
	// codebook); training then refines it. Requires WireSum and
	// LocHidden == 0.
	GeoInit bool

	Epochs    int
	BatchSize int
	LR        float64
	LRDecay   float64
	Seed      int64
	Logf      func(format string, args ...any) `json:"-"`
}

// DefaultIMUConfig returns the §V training configuration (τ = 0.4 m).
func DefaultIMUConfig() IMUConfig {
	return IMUConfig{
		ProjDim:     16,
		Hidden:      []int{128, 128},
		LocHidden:   0,
		Tau:         0.4,
		DispWeight:  3.0,
		LocWeight:   1.0,
		WireSum:     true,
		StartOneHot: true,
		GeoInit:     true,
		Epochs:      60,
		BatchSize:   64,
		LR:          0.01,
		LRDecay:     0.95,
		Seed:        1,
	}
}

// IMUModel is the trained Fig. 5(a) architecture: a shared projection over
// IMU segments, a displacement network regressing the (standardized)
// travel vector, and a location network classifying the quantized end
// position from the displacement vector plus the one-hot start class.
type IMUModel struct {
	Cfg  IMUConfig
	Grid *quantize.Grid

	proj    *nn.BlockDense
	dispNet *nn.Sequential // projection output → standardized displacement (2)
	locNet  *nn.Sequential // [displacement ⊕ one-hot start] → end class

	// int8 serving mirrors of the three modules; nil until EnableInt8.
	qproj    *qlinear.Seq
	qdispNet *qlinear.Seq
	qlocNet  *qlinear.Seq

	frames int
	maxLen int
	segDim int

	dispMean [2]float64
	dispStd  [2]float64

	startMean [2]float64
	startStd  [2]float64

	dispLoss *nn.MSE
	locLoss  *nn.SoftmaxCE
}

// IMUPrediction is one decoded tracking result.
type IMUPrediction struct {
	End          geo.Point
	Class        int
	Displacement geo.Point
}

// NewIMUModel builds the architecture for a path dataset with the given
// feature layout. The quantizer is fitted on the network's reference
// locations at τ, so every reachable end position has a class; the
// displacement scaler is fitted on the training paths.
func NewIMUModel(ds *imu.PathDataset, cfg IMUConfig) *IMUModel {
	if cfg.ProjDim <= 0 || len(cfg.Hidden) == 0 {
		panic(fmt.Sprintf("core: bad IMU config %+v", cfg))
	}
	rng := mat.NewRand(cfg.Seed)
	grid := quantize.NewGrid(cfg.Tau, ds.Net.Refs)
	segDim := imu.SegmentFeatureDim(ds.Frames)
	m := &IMUModel{
		Cfg:      cfg,
		Grid:     grid,
		frames:   ds.Frames,
		maxLen:   ds.MaxLen,
		segDim:   segDim,
		dispLoss: nn.NewMSE(),
		locLoss:  nn.NewSoftmaxCE(),
	}
	m.fitDispScaler(ds.Train)
	m.fitStartScaler(ds.Net.Refs)
	m.proj = nn.NewBlockDense("proj", ds.MaxLen, segDim, cfg.ProjDim, nn.InitXavier, rng)
	m.dispNet = nn.NewSequential()
	prev := ds.MaxLen * cfg.ProjDim
	for i, h := range cfg.Hidden {
		m.dispNet.Add(nn.NewDense(fmt.Sprintf("disp.fc%d", i), prev, h, nn.InitXavier, rng))
		m.dispNet.Add(nn.NewBatchNorm(fmt.Sprintf("disp.bn%d", i), h))
		m.dispNet.Add(nn.NewTanh())
		prev = h
	}
	m.dispNet.Add(nn.NewDense("disp.out", prev, 2, nn.InitXavier, rng))
	locIn := 2
	if cfg.WireSum {
		locIn += 2
	}
	if cfg.StartOneHot {
		locIn += grid.Classes()
	}
	if cfg.LocHidden > 0 {
		m.locNet = nn.NewSequential(
			nn.NewDense("loc.fc0", locIn, cfg.LocHidden, nn.InitXavier, rng),
			nn.NewTanh(),
			nn.NewDense("loc.out", cfg.LocHidden, grid.Classes(), nn.InitXavier, rng),
		)
	} else {
		head := nn.NewDense("loc.out", locIn, grid.Classes(), nn.InitXavier, rng)
		if cfg.GeoInit && cfg.WireSum {
			m.geoInit(head)
		}
		m.locNet = nn.NewSequential(head)
	}
	return m
}

// geoInit sets the linear location head to the closed-form nearest-
// centroid decoder over the wired end estimate ẽ: with standardized
// centroids μ̃_c, argmin_c ‖ẽ-μ̃_c‖² = argmax_c (2μ̃_c·ẽ - ‖μ̃_c‖²), which a
// softmax layer represents exactly. The displacement and one-hot columns
// start at zero and learn residual corrections (e.g. reachability priors).
func (m *IMUModel) geoInit(head *nn.Dense) {
	const sharpness = 2.0
	head.Weight.W.Zero()
	head.Bias.W.Zero()
	for c := 0; c < m.Grid.Classes(); c++ {
		mu := m.Grid.Decode(c)
		mx := (mu.X - m.startMean[0]) / m.startStd[0]
		my := (mu.Y - m.startMean[1]) / m.startStd[1]
		// Columns 2,3 of the location input are the wired estimate.
		head.Weight.W.Set(2, c, sharpness*2*mx)
		head.Weight.W.Set(3, c, sharpness*2*my)
		head.Bias.W.Set(0, c, -sharpness*(mx*mx+my*my))
	}
}

// fitStartScaler centers coordinates on the reference cloud and scales
// both axes by the typical nearest-neighbor spacing between references, so
// that adjacent location classes sit ≈1 apart in standardized space —
// the scale at which the location module separates classes.
func (m *IMUModel) fitStartScaler(refs []geo.Point) {
	m.startMean = [2]float64{}
	m.startStd = [2]float64{1, 1}
	if len(refs) == 0 {
		return
	}
	xs := make([]float64, len(refs))
	ys := make([]float64, len(refs))
	nn := make([]float64, len(refs))
	for i, r := range refs {
		xs[i], ys[i] = r.X, r.Y
		best := 1e18
		for j, q := range refs {
			if i == j {
				continue
			}
			if d := geo.Dist(r, q); d < best {
				best = d
			}
		}
		nn[i] = best
	}
	m.startMean = [2]float64{mat.Mean(xs), mat.Mean(ys)}
	spacing := mat.Median(nn)
	if spacing < 1e-9 {
		spacing = 1
	}
	m.startStd = [2]float64{spacing, spacing}
}

// fitDispScaler standardizes displacement targets so the MSE head trains
// at unit scale regardless of path lengths in meters.
func (m *IMUModel) fitDispScaler(paths []imu.Path) {
	m.dispMean = [2]float64{}
	m.dispStd = [2]float64{1, 1}
	if len(paths) == 0 {
		return
	}
	xs := make([]float64, len(paths))
	ys := make([]float64, len(paths))
	for i := range paths {
		d := paths[i].Displacement()
		xs[i], ys[i] = d.X, d.Y
	}
	m.dispMean = [2]float64{mat.Mean(xs), mat.Mean(ys)}
	m.dispStd = [2]float64{mat.Std(xs), mat.Std(ys)}
	for i := range m.dispStd {
		if m.dispStd[i] < 1e-9 {
			m.dispStd[i] = 1
		}
	}
}

// Params returns all learnable parameters.
func (m *IMUModel) Params() []*nn.Param {
	out := m.proj.Params()
	out = append(out, m.dispNet.Params()...)
	out = append(out, m.locNet.Params()...)
	return out
}

// stateParams returns parameters plus serializable layer state.
func (m *IMUModel) stateParams() []*nn.Param {
	out := m.Params()
	out = append(out, m.dispNet.StatParams()...)
	out = append(out, m.locNet.StatParams()...)
	return out
}

// inputs assembles the padded feature matrix, start descriptors (one-hot
// matrix plus raw start coordinates), standardized displacement targets
// and end classes for a slice of paths.
func (m *IMUModel) inputs(paths []imu.Path) (x, startOH, starts, disp *mat.Dense, endClass []int) {
	n := len(paths)
	x = mat.New(n, m.maxLen*m.segDim)
	startOH = mat.New(n, m.Grid.Classes())
	starts = mat.New(n, 2)
	disp = mat.New(n, 2)
	endClass = make([]int, n)
	for i := range paths {
		p := &paths[i]
		copy(x.Row(i), p.PaddedFeatures(m.maxLen, m.frames))
		startClass := m.Grid.NearestClass(p.Start)
		startOH.Set(i, startClass, 1)
		c := m.Grid.Decode(startClass)
		starts.Set(i, 0, c.X)
		starts.Set(i, 1, c.Y)
		d := p.Displacement()
		disp.Set(i, 0, (d.X-m.dispMean[0])/m.dispStd[0])
		disp.Set(i, 1, (d.Y-m.dispMean[1])/m.dispStd[1])
		endClass[i] = m.Grid.NearestClass(p.End)
	}
	return x, startOH, starts, disp, endClass
}

// locInput assembles the location module's input: the (standardized)
// displacement vector, optionally the wired standardized end estimate
// start + V, and the one-hot start class.
func (m *IMUModel) locInput(v, startOH, starts *mat.Dense) *mat.Dense {
	head := v
	if m.Cfg.WireSum {
		est := mat.New(v.Rows, 2)
		for i := 0; i < v.Rows; i++ {
			ex := starts.At(i, 0) + v.At(i, 0)*m.dispStd[0] + m.dispMean[0]
			ey := starts.At(i, 1) + v.At(i, 1)*m.dispStd[1] + m.dispMean[1]
			est.Set(i, 0, (ex-m.startMean[0])/m.startStd[0])
			est.Set(i, 1, (ey-m.startMean[1])/m.startStd[1])
		}
		head = nn.Concat(v, est)
	}
	if m.Cfg.StartOneHot {
		head = nn.Concat(head, startOH)
	}
	return head
}

// forward runs the full graph. With train=true intermediate activations
// are cached for backward.
func (m *IMUModel) forward(x, startOH, starts *mat.Dense, train bool) (v, logits *mat.Dense) {
	h := m.proj.Forward(x, train)
	v = m.dispNet.Forward(h, train)
	logits = m.locNet.Forward(m.locInput(v, startOH, starts), train)
	return v, logits
}

// step performs one training forward/backward pass and returns the
// combined loss. Gradients from the location loss flow back through the
// displacement vector (directly, and through the wired sum) into the
// displacement and projection modules, as in Fig. 5(a).
func (m *IMUModel) step(x, startOH, starts, dispTarget, locTarget *mat.Dense) float64 {
	v, logits := m.forward(x, startOH, starts, true)
	loss := m.Cfg.DispWeight*m.dispLoss.Forward(v, dispTarget) +
		m.Cfg.LocWeight*m.locLoss.Forward(logits, locTarget)

	dLogits := m.locLoss.Backward()
	dLogits.Scale(m.Cfg.LocWeight)
	dLocIn := m.locNet.Backward(dLogits)
	dVfromLoc, _ := nn.SplitCols(dLocIn, 2)
	if m.Cfg.WireSum {
		// Route the estimated-end gradient back into V through the
		// fixed affine e = (start + V·σ_d + μ_d - μ_s)/σ_s.
		rest, _ := nn.SplitCols(dLocIn, 4)
		for i := 0; i < dVfromLoc.Rows; i++ {
			dVfromLoc.Set(i, 0, dVfromLoc.At(i, 0)+rest.At(i, 2)*m.dispStd[0]/m.startStd[0])
			dVfromLoc.Set(i, 1, dVfromLoc.At(i, 1)+rest.At(i, 3)*m.dispStd[1]/m.startStd[1])
		}
	}

	dV := m.dispLoss.Backward()
	dV.Scale(m.Cfg.DispWeight)
	dV.AddInPlace(dVfromLoc)

	dH := m.dispNet.Backward(dV)
	m.proj.Backward(dH)
	return loss
}

// TrainIMU builds and trains the IMU tracking model on the dataset's
// training paths.
func TrainIMU(ds *imu.PathDataset, cfg IMUConfig) *IMUModel {
	m := NewIMUModel(ds, cfg)
	x, startOH, starts, disp, endClass := m.inputs(ds.Train)
	locTargets := m.Grid.OneHot(endClass)
	params := m.Params()
	trainCfg := nn.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: cfg.BatchSize,
		Seed:      cfg.Seed + 1,
		Optimizer: nn.NewAdam(cfg.LR),
		LRDecay:   cfg.LRDecay,
		ClipNorm:  5,
		Logf:      cfg.Logf,
	}
	nn.Train(trainCfg, x.Rows, params, func(batch []int) float64 {
		return m.step(
			nn.SelectRows(x, batch),
			nn.SelectRows(startOH, batch),
			nn.SelectRows(starts, batch),
			nn.SelectRows(disp, batch),
			nn.SelectRows(locTargets, batch),
		)
	}, nil)
	return m
}

// PredictPaths decodes end positions for the given paths: the location
// head's argmax class is looked up for its central coordinates, and the
// displacement head's output is mapped back to meters. An empty input
// yields an empty result, so library callers need no guard of their own.
func (m *IMUModel) PredictPaths(paths []imu.Path) []IMUPrediction {
	if len(paths) == 0 {
		return nil
	}
	x, startOH, starts, _, _ := m.inputs(paths)
	var v, logits *mat.Dense
	if m.qproj != nil {
		v, logits = m.qforward(x, startOH, starts)
	} else {
		v, logits = m.forward(x, startOH, starts, false)
	}
	out := make([]IMUPrediction, len(paths))
	for i := range out {
		cls := mat.ArgMax(logits.Row(i))
		out[i] = IMUPrediction{
			End:   m.Grid.Decode(cls),
			Class: cls,
			Displacement: geo.Point{
				X: v.At(i, 0)*m.dispStd[0] + m.dispMean[0],
				Y: v.At(i, 1)*m.dispStd[1] + m.dispMean[1],
			},
		}
	}
	return out
}

// FLOPs estimates multiply-accumulates per single inference.
func (m *IMUModel) FLOPs() int64 {
	return m.proj.FLOPs() + m.dispNet.FLOPs() + m.locNet.FLOPs()
}

// Frames returns the per-segment time-window count the model's features
// were extracted with.
func (m *IMUModel) Frames() int { return m.frames }

// MaxLen returns the maximum path length in segments.
func (m *IMUModel) MaxLen() int { return m.maxLen }

// SegmentDim returns the per-segment feature width.
func (m *IMUModel) SegmentDim() int { return m.segDim }

// Classes returns the location-head class count.
func (m *IMUModel) Classes() int { return m.Grid.Classes() }

// DisplacementScale reports the fitted target standardization (for
// diagnostics).
func (m *IMUModel) DisplacementScale() (mean, std [2]float64) {
	return m.dispMean, m.dispStd
}

// Save persists the model weights and batch-norm statistics.
func (m *IMUModel) Save(w io.Writer) error { return nn.SaveParams(w, m.stateParams()) }

// Load restores weights saved by Save into an identically configured model
// built from the same dataset.
func (m *IMUModel) Load(r io.Reader) error { return nn.LoadParams(r, m.stateParams()) }
