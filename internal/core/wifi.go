// Package core implements NObLe itself — Neighbor Oblivious Learning — for
// both of the paper's applications. The Wi-Fi model (§IV) is a multi-head
// classifier over a shared two-hidden-layer tanh trunk: the continuous
// output space is quantized into fine neighborhood classes (τ) and coarse
// classes (l), and building and floor are predicted jointly ("we can
// naturally include floor/building classification in our model without
// extra effort"). The IMU model (§V) is the projection → displacement →
// location architecture of Fig. 5(a). Neither model ever consumes
// input-space neighborhoods: closeness supervision comes only from the
// quantized output space, which is the method's defining property.
package core

import (
	"fmt"
	"io"

	"noble/internal/dataset"
	"noble/internal/geo"
	"noble/internal/mat"
	"noble/internal/nn"
	"noble/internal/nn/qlinear"
	"noble/internal/quantize"
)

// WiFiConfig configures TrainWiFi. Zero values are replaced by the paper's
// settings via Defaults.
type WiFiConfig struct {
	Hidden    []int   // trunk layer sizes; paper uses {128, 128}
	TauFine   float64 // fine grid side τ (paper: < 0.2 m... 0.4 m here; see DESIGN.md)
	TauCoarse float64 // coarse grid side l > τ

	// Head toggles (all on by default; ablation A2 switches them off).
	CoarseHead   bool
	BuildingHead bool
	FloorHead    bool

	// MultiLabel switches the fine head from softmax cross-entropy to
	// the paper's binary cross-entropy multi-label formulation with
	// adjacent cells as soft positives.
	MultiLabel     bool
	AdjacentWeight float64

	Epochs    int
	BatchSize int
	LR        float64
	LRDecay   float64
	Seed      int64
	Logf      func(format string, args ...any) `json:"-"`
}

// DefaultWiFiConfig returns the paper's Wi-Fi training configuration.
func DefaultWiFiConfig() WiFiConfig {
	return WiFiConfig{
		Hidden:         []int{128, 128},
		TauFine:        0.4,
		TauCoarse:      24,
		CoarseHead:     true,
		BuildingHead:   true,
		FloorHead:      true,
		MultiLabel:     false,
		AdjacentWeight: 0.3,
		Epochs:         30,
		BatchSize:      64,
		LR:             0.003,
		LRDecay:        0.95,
		Seed:           1,
	}
}

// WiFiModel is a trained NObLe Wi-Fi localizer.
type WiFiModel struct {
	Cfg   WiFiConfig
	Grids *quantize.MultiRes

	net          *nn.MultiHead
	qnet         *qlinear.MultiHead // int8 serving mirror; nil until EnableInt8
	numWAPs      int
	numBuildings int
	numFloors    int

	// head indices into net.Heads (-1 when disabled)
	fineHead, coarseHead, buildingHead, floorHead int
}

// WiFiPrediction is one decoded inference result.
type WiFiPrediction struct {
	Pos      geo.Point
	Class    int
	Building int
	Floor    int
}

// NewWiFiModel builds the untrained NObLe architecture for a dataset: it
// quantizes the training positions (empty cells — dead space — get no
// class) and assembles the multi-head network. The construction is
// deterministic in cfg.Seed and the dataset, so a model built twice from
// the same inputs has identical shapes — the property Load relies on when
// restoring weights from a snapshot.
func NewWiFiModel(ds *dataset.WiFi, cfg WiFiConfig) *WiFiModel {
	if len(cfg.Hidden) == 0 || cfg.Epochs <= 0 {
		panic(fmt.Sprintf("core: bad WiFi config %+v", cfg))
	}
	rng := mat.NewRand(cfg.Seed)
	positions := dataset.Positions(ds.Train)
	grids := quantize.NewMultiRes(cfg.TauFine, cfg.TauCoarse, positions)

	trunk := nn.NewMLP("trunk", ds.NumWAPs, cfg.Hidden, true, rng)
	embDim := cfg.Hidden[len(cfg.Hidden)-1]

	m := &WiFiModel{
		Cfg: cfg, Grids: grids,
		numWAPs:      ds.NumWAPs,
		numBuildings: ds.NumBuildings,
		numFloors:    ds.NumFloors,
		fineHead:     -1, coarseHead: -1, buildingHead: -1, floorHead: -1,
	}
	var heads []*nn.Head
	addHead := func(name string, classes int, loss nn.Loss, weight float64) int {
		heads = append(heads, &nn.Head{
			Name:   name,
			Layer:  nn.NewDense("head."+name, embDim, classes, nn.InitXavier, rng),
			Loss:   loss,
			Weight: weight,
		})
		return len(heads) - 1
	}
	var fineLoss nn.Loss = nn.NewSoftmaxCE()
	if cfg.MultiLabel {
		fineLoss = nn.NewBCEWithLogits()
	}
	m.fineHead = addHead("fine", grids.Fine.Classes(), fineLoss, 1.0)
	if cfg.CoarseHead {
		m.coarseHead = addHead("coarse", grids.Coarse.Classes(), nn.NewSoftmaxCE(), 0.3)
	}
	if cfg.BuildingHead {
		m.buildingHead = addHead("building", ds.NumBuildings, nn.NewSoftmaxCE(), 0.3)
	}
	if cfg.FloorHead {
		m.floorHead = addHead("floor", ds.NumFloors, nn.NewSoftmaxCE(), 0.3)
	}
	m.net = nn.NewMultiHead(trunk, heads...)
	return m
}

// TrainWiFi fits NObLe on the dataset's training split: it builds the
// architecture with NewWiFiModel and optimizes the summed cross-entropy
// objective.
func TrainWiFi(ds *dataset.WiFi, cfg WiFiConfig) *WiFiModel {
	return TrainWiFiAugmented(ds, nil, cfg)
}

// TrainWiFiAugmented fits NObLe on the dataset's training split plus
// extra samples harvested at serving time (re-anchor fixes with their
// fingerprints — the paper's free supervision). The architecture is
// built from ds alone: the quantization grids, codebook, and head sizes
// come from the seed survey, so a model retrained with any extra set
// stays load-compatible with bundles published from the same manifest
// spec. Extra positions are labeled on those fixed grids via
// nearest-class lookup (Labels never rejects a position), and extra
// building/floor labels must already lie within the dataset's
// cardinalities. With a nil extra set it is exactly TrainWiFi.
func TrainWiFiAugmented(ds *dataset.WiFi, extra []dataset.WiFiSample, cfg WiFiConfig) *WiFiModel {
	m := NewWiFiModel(ds, cfg)
	grids := m.Grids
	train := ds.Train
	if len(extra) > 0 {
		train = make([]dataset.WiFiSample, 0, len(ds.Train)+len(extra))
		train = append(train, ds.Train...)
		train = append(train, extra...)
	}
	positions := dataset.Positions(train)

	// Targets.
	x := dataset.FeaturesMatrix(train)
	fineLabels := grids.Fine.Labels(positions)
	var fineTargets *mat.Dense
	if cfg.MultiLabel {
		fineTargets = grids.Fine.AdjacencyTargets(fineLabels, cfg.AdjacentWeight)
	} else {
		fineTargets = grids.Fine.OneHot(fineLabels)
	}
	targets := make([]*mat.Dense, len(m.net.Heads))
	targets[m.fineHead] = fineTargets
	if m.coarseHead >= 0 {
		targets[m.coarseHead] = grids.Coarse.OneHot(grids.Coarse.Labels(positions))
	}
	if m.buildingHead >= 0 {
		targets[m.buildingHead] = nn.OneHotBatch(dataset.BuildingLabels(train), ds.NumBuildings)
	}
	if m.floorHead >= 0 {
		targets[m.floorHead] = nn.OneHotBatch(dataset.FloorLabels(train), ds.NumFloors)
	}

	params := m.net.Params()
	trainCfg := nn.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: cfg.BatchSize,
		Seed:      cfg.Seed + 1,
		Optimizer: nn.NewAdam(cfg.LR),
		LRDecay:   cfg.LRDecay,
		ClipNorm:  5,
		Logf:      cfg.Logf,
	}
	nn.Train(trainCfg, x.Rows, params, func(batch []int) float64 {
		bx := nn.SelectRows(x, batch)
		bt := make([]*mat.Dense, len(targets))
		for i, tgt := range targets {
			if tgt != nil {
				bt[i] = nn.SelectRows(tgt, batch)
			}
		}
		return m.net.Step(bx, bt)
	}, nil)
	return m
}

// PredictMatrix runs inference on a batch of normalized fingerprints
// stacked as matrix rows and decodes each sample: the fine head's argmax
// class is looked up in the codebook for its central coordinates (§III-B),
// and the building/floor heads report their argmax (falling back to 0 when
// the head is disabled). After EnableInt8 the forward pass runs the
// quantized mirror; decoding is identical either way.
func (m *WiFiModel) PredictMatrix(x *mat.Dense) []WiFiPrediction {
	outs := m.headOutputs(x)
	preds := make([]WiFiPrediction, x.Rows)
	for i := range preds {
		cls := mat.ArgMax(outs[m.fineHead].Row(i))
		p := WiFiPrediction{Class: cls, Pos: m.Grids.Fine.Decode(cls)}
		if m.buildingHead >= 0 {
			p.Building = mat.ArgMax(outs[m.buildingHead].Row(i))
		}
		if m.floorHead >= 0 {
			p.Floor = mat.ArgMax(outs[m.floorHead].Row(i))
		}
		preds[i] = p
	}
	return preds
}

// PredictBatch runs inference on a batch of normalized fingerprints given
// as raw feature rows. The rows are packed into a single matrix and pushed
// through one batched forward pass — the matmul cost is amortized across
// the whole batch instead of paying N row-by-row passes — which is what
// the serving layer's micro-batcher relies on. Every row must have
// InputDim features; it panics otherwise, mirroring FeaturesMatrix.
func (m *WiFiModel) PredictBatch(rows [][]float64) []WiFiPrediction {
	if len(rows) == 0 {
		return nil
	}
	x := mat.New(len(rows), m.numWAPs)
	for i, row := range rows {
		if len(row) != m.numWAPs {
			panic(fmt.Sprintf("core: fingerprint %d has %d features, want %d", i, len(row), m.numWAPs))
		}
		copy(x.Row(i), row)
	}
	return m.PredictMatrix(x)
}

// Predict runs single-sample inference.
func (m *WiFiModel) Predict(features []float64) WiFiPrediction {
	x := mat.FromSlice(1, len(features), append([]float64(nil), features...))
	return m.PredictMatrix(x)[0]
}

// InputDim returns the fingerprint dimensionality (number of WAPs) the
// model consumes.
func (m *WiFiModel) InputDim() int { return m.numWAPs }

// NumBuildings returns the building-head cardinality the model was built
// with.
func (m *WiFiModel) NumBuildings() int { return m.numBuildings }

// NumFloors returns the floor-head cardinality the model was built with.
func (m *WiFiModel) NumFloors() int { return m.numFloors }

// Embed returns the trunk's penultimate-layer embedding for a batch — the
// learned manifold representation of §III-C.
func (m *WiFiModel) Embed(x *mat.Dense) *mat.Dense {
	emb, _ := m.net.Forward(x, false)
	return emb
}

// FLOPs estimates multiply-accumulate operations per single inference,
// consumed by the energy model.
func (m *WiFiModel) FLOPs() int64 { return m.net.FLOPs() }

// Classes returns the fine neighborhood class count.
func (m *WiFiModel) Classes() int { return m.Grids.Fine.Classes() }

// Save serializes the network parameters and batch-norm statistics (the
// quantization codebook is reconstructed deterministically from the
// dataset, so it is not persisted).
func (m *WiFiModel) Save(w io.Writer) error {
	return nn.SaveParams(w, append(m.net.Params(), m.net.StatParams()...))
}

// Load restores parameters saved by Save into a model built with the same
// configuration and dataset.
func (m *WiFiModel) Load(r io.Reader) error {
	return nn.LoadParams(r, append(m.net.Params(), m.net.StatParams()...))
}
