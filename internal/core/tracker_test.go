package core

import (
	"reflect"
	"testing"

	"noble/internal/geo"
	"noble/internal/imu"
)

func TestPredictPathsEmptyInput(t *testing.T) {
	ds := tinyIMU()
	cfg := tinyIMUConfig()
	cfg.Epochs = 1
	m := TrainIMU(ds, cfg)
	if got := m.PredictPaths(nil); len(got) != 0 {
		t.Fatalf("PredictPaths(nil) returned %d predictions", len(got))
	}
	if got := m.PredictPaths([]imu.Path{}); len(got) != 0 {
		t.Fatalf("PredictPaths(empty) returned %d predictions", len(got))
	}
}

// TestPathTrackerMatchesTrackWalk pins the incremental entry to the
// batch reference: stepping a PathTracker segment by segment must
// reproduce TrackWalk's dead-reckoning-with-snapping bit for bit, for
// both a short snapping window and a longer accumulating one.
func TestPathTrackerMatchesTrackWalk(t *testing.T) {
	net := imu.NewCampusNetwork(6)
	icfg := imu.DefaultConfig()
	icfg.ReadingsPerSegment = 64
	icfg.TotalSegments = 60
	icfg.Walks = 1
	track := imu.Synthesize(net, icfg, 17)
	ds := imu.BuildPaths(track, imu.PathConfig{
		NumPaths: 400, MaxLen: 6, Frames: 4,
		TrainFrac: 0.8, ValFrac: 0.1, Seed: 3,
	})
	cfg := tinyIMUConfig()
	cfg.Epochs = 5
	m := TrainIMU(ds, cfg)

	walk := track.Walks[0]
	for _, window := range []int{1, 3, 100 /* clamped to MaxLen */} {
		want := m.TrackWalk(net, walk, window)
		tr := m.NewPathTracker(net.Refs[walk.RefSeq[0]], window)
		for i, seg := range walk.Segments {
			feats := imu.SegmentFeatures(seg.Readings, m.Frames())
			path, err := tr.Step(feats)
			if err != nil {
				t.Fatalf("window %d step %d: %v", window, i, err)
			}
			pred := m.PredictPaths([]imu.Path{path})[0]
			tr.Commit(feats, pred)
			if pred != want[i] {
				t.Fatalf("window %d step %d: incremental %+v, TrackWalk %+v", window, i, pred, want[i])
			}
		}
		if tr.Steps() != len(walk.Segments) {
			t.Fatalf("window %d: %d steps committed, want %d", window, tr.Steps(), len(walk.Segments))
		}
	}
}

func TestPathTrackerReAnchor(t *testing.T) {
	ds := tinyIMU()
	cfg := tinyIMUConfig()
	cfg.Epochs = 3
	m := TrainIMU(ds, cfg)

	start := ds.Net.Refs[0]
	tr := m.NewPathTracker(start, 2)
	if tr.Estimate().End != start || tr.Origin() != start {
		t.Fatalf("fresh tracker at %v: est %v origin %v", start, tr.Estimate().End, tr.Origin())
	}

	// Drive a few segments so the window and anchors are populated.
	p := ds.Test[0]
	segDim := m.SegmentDim()
	for s := 0; s < p.NumSegments && s < 3; s++ {
		seg := p.Features[s*segDim : (s+1)*segDim]
		path, err := tr.Step(seg)
		if err != nil {
			t.Fatal(err)
		}
		tr.Commit(seg, m.PredictPaths([]imu.Path{path})[0])
	}
	drifted := tr.Estimate().End

	// Step is pure: proposing a step without committing leaves the
	// tracker unchanged (the retry contract the serving layer relies on).
	stepsBefore := tr.Steps()
	if _, err := tr.Step(p.Features[:segDim]); err != nil {
		t.Fatal(err)
	}
	if tr.Steps() != stepsBefore || tr.Estimate().End != drifted {
		t.Fatal("Step must not mutate the tracker")
	}

	// A fix far from the current estimate must move the estimate to the
	// fix, restart the window, and reset the travel origin.
	fix := ds.Net.Refs[len(ds.Net.Refs)/2]
	tr.ReAnchor(fix)
	if tr.Estimate().End != fix {
		t.Fatalf("after fix at %v the estimate is %v (was %v)", fix, tr.Estimate().End, drifted)
	}
	if tr.Origin() != fix || tr.Traveled() != (geo.Point{}) {
		t.Fatalf("fix must reset origin: origin %v traveled %v", tr.Origin(), tr.Traveled())
	}
	// The next step dead-reckons from the fix: its path anchors there
	// with a single-segment window.
	path, err := tr.Step(p.Features[:segDim])
	if err != nil {
		t.Fatal(err)
	}
	if path.Start != fix || path.NumSegments != 1 {
		t.Fatalf("post-fix path starts at %v with %d segments, want %v with 1", path.Start, path.NumSegments, fix)
	}

	// Wrong-width segments are rejected, not panicked on.
	if _, err := tr.Step(p.Features[:segDim-1]); err == nil {
		t.Fatal("stepping a wrong-width segment must error")
	}
}

// TestTrackerStateRoundTrip pins the durability contract: capturing a
// mid-walk tracker's State, restoring it on the same model, and
// continuing the walk must be indistinguishable — equal State at the
// capture point, and bit-identical predictions for every remaining
// step — including immediately after a ReAnchor (empty window) and at a
// full sliding window.
func TestTrackerStateRoundTrip(t *testing.T) {
	ds := tinyIMU()
	cfg := tinyIMUConfig()
	cfg.Epochs = 3
	m := TrainIMU(ds, cfg)

	net := ds.Net
	icfg := imu.DefaultConfig()
	icfg.ReadingsPerSegment = 32
	icfg.TotalSegments = 24
	icfg.Walks = 1
	walk := imu.Synthesize(net, icfg, 23).Walks[0]

	tr := m.NewPathTracker(net.Refs[walk.RefSeq[0]], 3)
	step := func(pt *PathTracker, i int) IMUPrediction {
		feats := imu.SegmentFeatures(walk.Segments[i].Readings, m.Frames())
		path, err := pt.Step(feats)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		pred := m.PredictPaths([]imu.Path{path})[0]
		pt.Commit(feats, pred)
		return pred
	}

	for _, splitAt := range []int{0, 2, 8 /* window full */} {
		tr = m.NewPathTracker(net.Refs[walk.RefSeq[0]], 3)
		for i := 0; i < splitAt; i++ {
			step(tr, i)
		}
		if splitAt == 2 {
			tr.ReAnchor(net.Refs[walk.RefSeq[0]]) // empty-window edge
		}
		st := tr.State()
		restored, err := m.RestoreTracker(st)
		if err != nil {
			t.Fatalf("split %d: RestoreTracker: %v", splitAt, err)
		}
		if got := restored.State(); !reflect.DeepEqual(st, got) {
			t.Fatalf("split %d: State round trip:\n want %+v\n got  %+v", splitAt, st, got)
		}
		for i := splitAt; i < len(walk.Segments); i++ {
			want := step(tr, i)
			if got := step(restored, i); got != want {
				t.Fatalf("split %d step %d: restored %+v, original %+v", splitAt, i, got, want)
			}
		}
	}

	// Shape validation must reject mismatched states loudly.
	bad := tr.State()
	bad.SegDim++
	if _, err := m.RestoreTracker(bad); err == nil {
		t.Fatal("RestoreTracker must reject a segment_dim mismatch")
	}
	bad = tr.State()
	bad.Anchors = bad.Anchors[:len(bad.Anchors)-1]
	if _, err := m.RestoreTracker(bad); err == nil {
		t.Fatal("RestoreTracker must reject anchors/segments disagreement")
	}
}
