package core

import (
	"math"
	"testing"

	"noble/internal/dataset"
	"noble/internal/eval"
	"noble/internal/geo"
	"noble/internal/imu"
)

func TestPredictTopKOrderedAndNormalized(t *testing.T) {
	ds := tinyWiFi()
	cfg := tinyWiFiConfig()
	cfg.Epochs = 10
	m := TrainWiFi(ds, cfg)
	top := m.PredictTopK(ds.Test[0].Features, 5)
	if len(top) != 5 {
		t.Fatalf("top-k len %d", len(top))
	}
	var sum float64
	for i, cp := range top {
		if cp.Class < 0 || cp.Class >= m.Classes() {
			t.Fatalf("class %d out of range", cp.Class)
		}
		if cp.Prob < 0 || cp.Prob > 1 {
			t.Fatalf("prob %v out of range", cp.Prob)
		}
		if i > 0 && cp.Prob > top[i-1].Prob {
			t.Fatal("top-k must be sorted by probability")
		}
		if cp.Pos != m.Grids.Fine.Decode(cp.Class) {
			t.Fatal("top-k position must decode the class")
		}
		sum += cp.Prob
	}
	if sum > 1+1e-9 {
		t.Fatalf("top-5 probability mass %v exceeds 1", sum)
	}
	// Rank 1 must agree with Predict.
	if got := m.Predict(ds.Test[0].Features); got.Class != top[0].Class {
		t.Fatal("top-1 disagrees with Predict")
	}
}

func TestPredictTopKBadKPanics(t *testing.T) {
	ds := tinyWiFi()
	cfg := tinyWiFiConfig()
	cfg.Epochs = 2
	m := TrainWiFi(ds, cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.PredictTopK(ds.Test[0].Features, 0)
}

func TestHierarchicalDecodeRespectsCoarseGate(t *testing.T) {
	ds := tinyWiFi()
	cfg := tinyWiFiConfig()
	m := TrainWiFi(ds, cfg)
	x := dataset.FeaturesMatrix(ds.Test)
	preds := m.PredictBatchHierarchical(x)
	if len(preds) != len(ds.Test) {
		t.Fatalf("preds %d", len(preds))
	}
	// Accuracy must stay in the same league as flat decoding.
	flat := m.PredictMatrix(x)
	truth := dataset.Positions(ds.Test)
	flatPos := make([]geo.Point, len(flat))
	hierPos := make([]geo.Point, len(preds))
	for i := range flat {
		flatPos[i] = flat[i].Pos
		hierPos[i] = preds[i].Pos
	}
	flatMean := eval.Stats(eval.Errors(flatPos, truth)).Mean
	hierMean := eval.Stats(eval.Errors(hierPos, truth)).Mean
	if hierMean > flatMean*1.5+1 {
		t.Fatalf("hierarchical decode much worse: %v vs %v", hierMean, flatMean)
	}
}

func TestHierarchicalDecodeWithoutCoarseHeadFallsBack(t *testing.T) {
	ds := tinyWiFi()
	cfg := tinyWiFiConfig()
	cfg.CoarseHead = false
	cfg.Epochs = 3
	m := TrainWiFi(ds, cfg)
	x := dataset.FeaturesMatrix(ds.Test[:5])
	flat := m.PredictMatrix(x)
	hier := m.PredictBatchHierarchical(x)
	for i := range flat {
		if flat[i].Class != hier[i].Class {
			t.Fatal("without a coarse head hierarchical must equal flat")
		}
	}
}

func TestFineToCoarseMappingConsistent(t *testing.T) {
	ds := tinyWiFi()
	cfg := tinyWiFiConfig()
	cfg.Epochs = 2
	m := TrainWiFi(ds, cfg)
	mapping := m.fineToCoarse()
	if len(mapping) != m.Grids.Fine.Classes() {
		t.Fatalf("mapping len %d", len(mapping))
	}
	for fine, coarse := range mapping {
		// The fine centroid must be no farther from its mapped coarse
		// centroid than from any other (nearest-class property).
		c := m.Grids.Fine.Decode(fine)
		want := m.Grids.Coarse.NearestClass(c)
		if coarse != want {
			t.Fatalf("fine %d maps to %d want %d", fine, coarse, want)
		}
	}
}

func TestTrackWalkFollowsWalk(t *testing.T) {
	net := imu.NewCampusNetwork(6)
	icfg := imu.DefaultConfig()
	icfg.ReadingsPerSegment = 64
	icfg.TotalSegments = 140
	track := imu.Synthesize(net, icfg, 11)
	ds := imu.BuildPaths(track, imu.PathConfig{
		NumPaths: 500, MaxLen: 8, Frames: 4,
		TrainFrac: 0.7, ValFrac: 0.1, Seed: 5,
	})
	cfg := tinyIMUConfig()
	m := TrainIMU(ds, cfg)

	walk := track.Walks[0]
	preds := m.TrackWalk(net, walk, 1)
	if len(preds) != len(walk.Segments) {
		t.Fatalf("got %d predictions for %d segments", len(preds), len(walk.Segments))
	}
	meanAt := func(preds []IMUPrediction) float64 {
		var errSum float64
		for i, p := range preds {
			errSum += geo.Dist(p.End, net.Refs[walk.RefSeq[i+1]])
		}
		return errSum / float64(len(preds))
	}
	meanGreedy := meanAt(preds)

	// Viterbi decoding with the map constraint must beat greedy
	// chaining and stay within a couple of reference spacings.
	viterbi := m.TrackWalkViterbi(net, walk)
	if len(viterbi) != len(walk.Segments) {
		t.Fatalf("viterbi produced %d predictions", len(viterbi))
	}
	meanViterbi := meanAt(viterbi)
	if meanViterbi > 12 {
		t.Fatalf("viterbi tracking mean error %v m (greedy %v m)", meanViterbi, meanGreedy)
	}
	if meanViterbi > meanGreedy+1 {
		t.Fatalf("viterbi (%v m) should not lose to greedy chaining (%v m)", meanViterbi, meanGreedy)
	}
	// Every estimate must decode onto the reference network.
	for _, p := range preds {
		best := math.Inf(1)
		for _, r := range net.Refs {
			if d := geo.Dist(p.End, r); d < best {
				best = d
			}
		}
		if best > cfg.Tau {
			t.Fatalf("tracked position %v off the network", p.End)
		}
	}
}

func TestTrackWalkEmpty(t *testing.T) {
	net := imu.NewCampusNetwork(6)
	icfg := imu.DefaultConfig()
	icfg.ReadingsPerSegment = 64
	icfg.TotalSegments = 60
	track := imu.Synthesize(net, icfg, 12)
	ds := imu.BuildPaths(track, imu.PathConfig{
		NumPaths: 100, MaxLen: 6, Frames: 4,
		TrainFrac: 0.8, ValFrac: 0.1, Seed: 6,
	})
	cfg := tinyIMUConfig()
	cfg.Epochs = 1
	m := TrainIMU(ds, cfg)
	if got := m.TrackWalk(net, &imu.Walk{}, 1); got != nil {
		t.Fatal("empty walk must return nil")
	}
}
