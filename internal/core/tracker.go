package core

import (
	"fmt"

	"noble/internal/geo"
	"noble/internal/imu"
	"noble/internal/quantize"
)

// PathTracker is the incremental prediction entry for long-lived
// tracking sessions. Instead of resending a whole path per request
// (PredictPaths), a caller appends IMU segments one at a time and
// decodes the device position after each step. The tracker maintains
// the session's path state — the anchor before every windowed segment,
// the sliding feature window, and the latest estimate — exactly as
// TrackWalk does for a recorded walk, but split into explicit
// Step/Commit halves so the forward pass itself can run anywhere; in
// particular, the serving layer coalesces many devices' steps into one
// PredictPaths pass through its batcher. Step is pure and Commit does
// all the mutating, so a step whose prediction failed leaves no trace
// and may simply be retried.
//
// An absolute fix (e.g. a WiFi localization) re-anchors the tracker:
// the window is cleared and dead reckoning restarts from the fixed
// position, fusing the paper's two model kinds into one trajectory.
//
// A PathTracker is not safe for concurrent use; callers serialize
// access per session.
type PathTracker struct {
	grid   *quantize.Grid
	segDim int
	window int

	feats   *imu.FeatureWindow
	anchors []geo.Point // anchors[i] = estimate before windowed segment i
	est     IMUPrediction
	origin  geo.Point // session origin: start anchor or the latest fix
	steps   int
}

// NewPathTracker starts a tracker at the given position. window is the
// decode window in segments, clamped to [1, MaxLen]; short windows
// (1–2 segments) snap drift away at every step, long windows accumulate
// more displacement error between corrections (see TrackWalk).
func (m *IMUModel) NewPathTracker(start geo.Point, window int) *PathTracker {
	if window < 1 {
		window = 1
	}
	if window > m.maxLen {
		window = m.maxLen
	}
	return &PathTracker{
		grid:   m.Grid,
		segDim: m.segDim,
		window: window,
		feats:  imu.NewFeatureWindow(window, m.segDim),
		est:    IMUPrediction{End: start, Class: m.Grid.NearestClass(start)},
		origin: start,
	}
}

// Step returns the path that would decode the next step after
// appending segFeats: the windowed features (minus the oldest segment
// when the window is full) plus the new segment, anchored at the
// estimate from before the window's first remaining segment. It does
// NOT mutate the tracker — the caller runs the prediction (directly via
// PredictPaths or through a batcher) and applies it with Commit, so a
// failed prediction leaves the tracker exactly as it was and the same
// segment may be retried.
func (t *PathTracker) Step(segFeats []float64) (imu.Path, error) {
	if len(segFeats) != t.segDim {
		return imu.Path{}, fmt.Errorf("core: segment has %d features, tracker wants %d", len(segFeats), t.segDim)
	}
	skip := 0
	if t.feats.Len() == t.window {
		skip = 1 // the oldest segment slides out with this step
	}
	n := t.feats.Len() - skip + 1
	feats := make([]float64, 0, n*t.segDim)
	feats = t.feats.ConcatFrom(skip, feats)
	feats = append(feats, segFeats...)
	start := t.est.End
	if t.feats.Len() > skip {
		start = t.anchors[skip]
	}
	return imu.Path{Start: start, NumSegments: n, Features: feats}, nil
}

// Commit applies one step: segFeats must be the segment last passed to
// Step and pred its decoded prediction. The segment enters the window,
// the pre-step estimate becomes its anchor, and the estimate advances
// to pred.
func (t *PathTracker) Commit(segFeats []float64, pred IMUPrediction) {
	if t.feats.Len() == t.window {
		// Slide: drop the oldest segment together with its anchor.
		copy(t.anchors, t.anchors[1:])
		t.anchors = t.anchors[:len(t.anchors)-1]
	}
	t.anchors = append(t.anchors, t.est.End)
	t.feats.Append(segFeats)
	t.est = pred
	t.steps++
}

// ReAnchor fuses an absolute position fix: the feature window and its
// anchors are cleared and the estimate jumps to the fix, so subsequent
// segments dead-reckon from ground truth instead of the drifted
// estimate. The fix also becomes the session origin that Traveled
// measures from.
func (t *PathTracker) ReAnchor(p geo.Point) {
	t.feats.Reset()
	t.anchors = t.anchors[:0]
	t.est = IMUPrediction{End: p, Class: t.grid.NearestClass(p)}
	t.origin = p
}

// Estimate returns the latest committed prediction (or the start/fix
// position before any step).
func (t *PathTracker) Estimate() IMUPrediction { return t.est }

// Traveled returns the displacement from the session origin (the start
// anchor, or the most recent fix) to the current estimate.
func (t *PathTracker) Traveled() geo.Point { return t.est.End.Sub(t.origin) }

// Origin returns the position dead reckoning currently measures from.
func (t *PathTracker) Origin() geo.Point { return t.origin }

// Steps returns how many segments have been committed over the
// tracker's lifetime (re-anchoring does not reset it).
func (t *PathTracker) Steps() int { return t.steps }

// Window returns the decode window in segments.
func (t *PathTracker) Window() int { return t.window }

// SegmentDim returns the per-segment feature width the tracker accepts.
func (t *PathTracker) SegmentDim() int { return t.segDim }
