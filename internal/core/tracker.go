package core

import (
	"fmt"

	"noble/internal/geo"
	"noble/internal/imu"
	"noble/internal/quantize"
)

// PathTracker is the incremental prediction entry for long-lived
// tracking sessions. Instead of resending a whole path per request
// (PredictPaths), a caller appends IMU segments one at a time and
// decodes the device position after each step. The tracker maintains
// the session's path state — the anchor before every windowed segment,
// the sliding feature window, and the latest estimate — exactly as
// TrackWalk does for a recorded walk, but split into explicit
// Step/Commit halves so the forward pass itself can run anywhere; in
// particular, the serving layer coalesces many devices' steps into one
// PredictPaths pass through its batcher. Step is pure and Commit does
// all the mutating, so a step whose prediction failed leaves no trace
// and may simply be retried.
//
// An absolute fix (e.g. a WiFi localization) re-anchors the tracker:
// the window is cleared and dead reckoning restarts from the fixed
// position, fusing the paper's two model kinds into one trajectory.
//
// A PathTracker is not safe for concurrent use; callers serialize
// access per session.
type PathTracker struct {
	grid   *quantize.Grid
	segDim int
	window int

	feats   *imu.FeatureWindow
	anchors []geo.Point // anchors[i] = estimate before windowed segment i
	est     IMUPrediction
	origin  geo.Point // session origin: start anchor or the latest fix
	steps   int
}

// NewPathTracker starts a tracker at the given position. window is the
// decode window in segments, clamped to [1, MaxLen]; short windows
// (1–2 segments) snap drift away at every step, long windows accumulate
// more displacement error between corrections (see TrackWalk).
func (m *IMUModel) NewPathTracker(start geo.Point, window int) *PathTracker {
	if window < 1 {
		window = 1
	}
	if window > m.maxLen {
		window = m.maxLen
	}
	return &PathTracker{
		grid:   m.Grid,
		segDim: m.segDim,
		window: window,
		feats:  imu.NewFeatureWindow(window, m.segDim),
		est:    IMUPrediction{End: start, Class: m.Grid.NearestClass(start)},
		origin: start,
	}
}

// Step returns the path that would decode the next step after
// appending segFeats: the windowed features (minus the oldest segment
// when the window is full) plus the new segment, anchored at the
// estimate from before the window's first remaining segment. It does
// NOT mutate the tracker — the caller runs the prediction (directly via
// PredictPaths or through a batcher) and applies it with Commit, so a
// failed prediction leaves the tracker exactly as it was and the same
// segment may be retried.
func (t *PathTracker) Step(segFeats []float64) (imu.Path, error) {
	if len(segFeats) != t.segDim {
		return imu.Path{}, fmt.Errorf("core: segment has %d features, tracker wants %d", len(segFeats), t.segDim)
	}
	skip := 0
	if t.feats.Len() == t.window {
		skip = 1 // the oldest segment slides out with this step
	}
	n := t.feats.Len() - skip + 1
	feats := make([]float64, 0, n*t.segDim)
	feats = t.feats.ConcatFrom(skip, feats)
	feats = append(feats, segFeats...)
	start := t.est.End
	if t.feats.Len() > skip {
		start = t.anchors[skip]
	}
	return imu.Path{Start: start, NumSegments: n, Features: feats}, nil
}

// Commit applies one step: segFeats must be the segment last passed to
// Step and pred its decoded prediction. The segment enters the window,
// the pre-step estimate becomes its anchor, and the estimate advances
// to pred.
func (t *PathTracker) Commit(segFeats []float64, pred IMUPrediction) {
	if t.feats.Len() == t.window {
		// Slide: drop the oldest segment together with its anchor.
		copy(t.anchors, t.anchors[1:])
		t.anchors = t.anchors[:len(t.anchors)-1]
	}
	t.anchors = append(t.anchors, t.est.End)
	t.feats.Append(segFeats)
	t.est = pred
	t.steps++
}

// ReAnchor fuses an absolute position fix: the feature window and its
// anchors are cleared and the estimate jumps to the fix, so subsequent
// segments dead-reckon from ground truth instead of the drifted
// estimate. The fix also becomes the session origin that Traveled
// measures from.
func (t *PathTracker) ReAnchor(p geo.Point) {
	t.feats.Reset()
	t.anchors = t.anchors[:0]
	t.est = IMUPrediction{End: p, Class: t.grid.NearestClass(p)}
	t.origin = p
}

// TrackerState is a PathTracker's full mutable state as plain data: the
// serialization boundary for durable tracking sessions. State captures
// it; (*IMUModel).RestoreTracker rebuilds a tracker that is
// observationally identical — same window contents in arrival order,
// same anchors, estimate, origin, and step count — so a
// State → Restore → State round trip is exactly equal even though the
// internal feature ring may start at a different slot.
type TrackerState struct {
	Window   int
	SegDim   int
	Origin   geo.Point
	Est      IMUPrediction
	Steps    int
	Segments []float64 // windowed features, oldest first, n × SegDim
	Anchors  []geo.Point
}

// State captures the tracker's current state. The returned slices are
// fresh copies; mutating them does not touch the tracker.
func (t *PathTracker) State() TrackerState {
	return TrackerState{
		Window:   t.window,
		SegDim:   t.segDim,
		Origin:   t.origin,
		Est:      t.est,
		Steps:    t.steps,
		Segments: t.feats.Concat(make([]float64, 0, t.feats.Len()*t.segDim)),
		Anchors:  append([]geo.Point(nil), t.anchors...),
	}
}

// RestoreTracker rebuilds a tracker from a captured state, validating
// the state against this model's shape (a journal recorded under a
// different model generation must fail loudly, not dead-reckon from
// mismatched features).
func (m *IMUModel) RestoreTracker(st TrackerState) (*PathTracker, error) {
	if st.SegDim != m.segDim {
		return nil, fmt.Errorf("core: restoring tracker with segment_dim %d onto a model wanting %d", st.SegDim, m.segDim)
	}
	if st.Window < 1 || st.Window > m.maxLen {
		return nil, fmt.Errorf("core: restoring tracker with window %d outside the model's [1, %d]", st.Window, m.maxLen)
	}
	if len(st.Segments)%st.SegDim != 0 {
		return nil, fmt.Errorf("core: restoring %d windowed feature values, not a multiple of segment_dim %d", len(st.Segments), st.SegDim)
	}
	n := len(st.Segments) / st.SegDim
	if n > st.Window || len(st.Anchors) != n {
		return nil, fmt.Errorf("core: restoring %d windowed segments with %d anchors under window %d", n, len(st.Anchors), st.Window)
	}
	if st.Steps < n {
		return nil, fmt.Errorf("core: restoring %d lifetime steps with %d segments windowed", st.Steps, n)
	}
	t := &PathTracker{
		grid:   m.Grid,
		segDim: m.segDim,
		window: st.Window,
		feats:  imu.NewFeatureWindow(st.Window, m.segDim),
		est:    st.Est,
		origin: st.Origin,
		steps:  st.Steps,
	}
	for i := 0; i < n; i++ {
		t.feats.Append(st.Segments[i*st.SegDim : (i+1)*st.SegDim])
	}
	t.anchors = append(t.anchors, st.Anchors...)
	return t, nil
}

// Estimate returns the latest committed prediction (or the start/fix
// position before any step).
func (t *PathTracker) Estimate() IMUPrediction { return t.est }

// Traveled returns the displacement from the session origin (the start
// anchor, or the most recent fix) to the current estimate.
func (t *PathTracker) Traveled() geo.Point { return t.est.End.Sub(t.origin) }

// Origin returns the position dead reckoning currently measures from.
func (t *PathTracker) Origin() geo.Point { return t.origin }

// Steps returns how many segments have been committed over the
// tracker's lifetime (re-anchoring does not reset it).
func (t *PathTracker) Steps() int { return t.steps }

// Window returns the decode window in segments.
func (t *PathTracker) Window() int { return t.window }

// SegmentDim returns the per-segment feature width the tracker accepts.
func (t *PathTracker) SegmentDim() int { return t.segDim }
