//go:build amd64

package mat

// useAVXGemm gates the assembly GEMM tiles on runtime CPU support: AVX
// must be present and the OS must save the YMM state (OSXSAVE +
// XCR0[2:1] = 11). The kernel uses only AVX1 instructions (VBROADCASTSD
// from memory, VMULPD, VADDPD, VMOVUPD), so FMA/AVX2 are not required —
// deliberately: keeping multiplies and adds un-fused preserves the exact
// double-rounded semantics of the pure-Go kernels, so results are
// bit-identical whichever path runs.
var useAVXGemm = detectAVX()

func detectAVX() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 1 {
		return false
	}
	_, _, ecx, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx&osxsave == 0 || ecx&avx == 0 {
		return false
	}
	eax, _ := xgetbv0()
	return eax&0x6 == 0x6 // XMM and YMM state enabled by the OS
}

// cpuidex executes CPUID with the given EAX/ECX arguments.
func cpuidex(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0 (requires OSXSAVE).
func xgetbv0() (eax, edx uint32)

// gemm8x4avx accumulates an 8-row × 4-column output tile over the full
// inner dimension, same semantics as gemm4x8avx. The taller, narrower
// tile halves b-matrix traffic per output row — decisive once a class
// head outgrows L2 and the kernel would otherwise be bandwidth-bound.
func gemm8x4avx(kn int, a0, a1, a2, a3, a4, a5, a6, a7 *float64,
	b *float64, ldb int, d0, d1, d2, d3, d4, d5, d6, d7 *float64)

// gemm4x8avx accumulates a 4-row × 8-column output tile over the full
// inner dimension: for r in 0..3, j in 0..7, k in 0..kn:
// d_r[j] += a_r[k] * b[k*ldb+j], with per-element ascending-k order and
// un-fused multiply/add — bit-identical to the Go kernels. The eight
// column accumulators live in YMM registers for the whole k sweep, so
// each loaded b vector feeds four rows and nothing is stored until the
// end.
func gemm4x8avx(kn int, a0, a1, a2, a3 *float64, b *float64, ldb int, d0, d1, d2, d3 *float64)
