package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when Gaussian elimination encounters a pivot too
// small to divide by, i.e. the system is singular or numerically near it.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// Solve solves the linear system A·x = b for x using Gaussian elimination
// with partial pivoting. A must be square with len(b) == A.Rows. A and b are
// not modified. It returns ErrSingular when a pivot underflows.
func Solve(a *Dense, b []float64) ([]float64, error) {
	rhs := FromSlice(len(b), 1, append([]float64(nil), b...))
	x, err := SolveMulti(a, rhs)
	if err != nil {
		return nil, err
	}
	return x.Col(0), nil
}

// SolveMulti solves A·X = B for X with B holding multiple right-hand sides
// as columns. A must be square and B.Rows == A.Rows. Inputs are preserved.
func SolveMulti(a, b *Dense) (*Dense, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("mat: Solve on non-square %d×%d matrix", a.Rows, a.Cols)
	}
	if b.Rows != n {
		return nil, fmt.Errorf("mat: Solve rhs has %d rows, want %d", b.Rows, n)
	}
	aug := a.Clone()
	rhs := b.Clone()
	// Forward elimination with partial pivoting.
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(aug.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(aug.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-13 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(aug, pivot, col)
			swapRows(rhs, pivot, col)
		}
		pv := aug.At(col, col)
		for r := col + 1; r < n; r++ {
			f := aug.At(r, col) / pv
			if f == 0 {
				continue
			}
			arow, prow := aug.Row(r), aug.Row(col)
			for j := col; j < n; j++ {
				arow[j] -= f * prow[j]
			}
			brow, qrow := rhs.Row(r), rhs.Row(col)
			for j := range brow {
				brow[j] -= f * qrow[j]
			}
		}
	}
	// Back substitution.
	x := New(n, rhs.Cols)
	for col := n - 1; col >= 0; col-- {
		xrow := x.Row(col)
		copy(xrow, rhs.Row(col))
		arow := aug.Row(col)
		for j := col + 1; j < n; j++ {
			f := arow[j]
			if f == 0 {
				continue
			}
			xj := x.Row(j)
			for k := range xrow {
				xrow[k] -= f * xj[k]
			}
		}
		inv := 1 / arow[col]
		for k := range xrow {
			xrow[k] *= inv
		}
	}
	return x, nil
}

// SolveRegularized solves (A + λI)·x = b, the Tikhonov-damped system used by
// LLE when local Gram matrices are rank-deficient.
func SolveRegularized(a *Dense, b []float64, lambda float64) ([]float64, error) {
	damped := a.Clone()
	n := damped.Rows
	for i := 0; i < n; i++ {
		damped.Data[i*n+i] += lambda
	}
	return Solve(damped, b)
}

func swapRows(m *Dense, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}
