package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomDense(rng *rand.Rand, r, c int) *Dense {
	m := New(r, c)
	FillNormal(m, rng, 0, 1)
	return m
}

func TestNewShape(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %d×%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1,2) should panic")
		}
	}()
	New(-1, 2)
}

func TestFromSliceOwnership(t *testing.T) {
	data := []float64{1, 2, 3, 4}
	m := FromSlice(2, 2, data)
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0)=%v want 3", m.At(1, 0))
	}
	m.Set(1, 0, 9)
	if data[2] != 9 {
		t.Fatal("FromSlice must not copy")
	}
}

func TestFromSliceBadLenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float64{1})
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 || m.At(2, 1) != 6 {
		t.Fatalf("FromRows wrong: %v", m)
	}
}

func TestFromRowsRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows should panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity(3)[%d,%d]=%v", i, j, id.At(i, j))
			}
		}
	}
}

func TestRowIsView(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.Row(1)[0] = 42
	if m.At(1, 0) != 42 {
		t.Fatal("Row must be a mutable view")
	}
}

func TestColIsCopy(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Col(0)
	c[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("Col must copy")
	}
	if c[1] != 3 {
		t.Fatalf("Col(0)=%v", c)
	}
}

func TestSetRow(t *testing.T) {
	m := New(2, 3)
	m.SetRow(1, []float64{7, 8, 9})
	if m.At(1, 2) != 9 {
		t.Fatal("SetRow failed")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 5)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must deep copy")
	}
}

func TestReshapeSharesData(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3, 4}})
	r := m.Reshape(2, 2)
	r.Set(1, 1, 9)
	if m.At(0, 3) != 9 {
		t.Fatal("Reshape must share backing data")
	}
}

func TestReshapeBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).Reshape(3, 2)
}

func TestTransposeKnown(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("transpose wrong: %v", tr)
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	rng := NewRand(1)
	f := func(r8, c8 uint8) bool {
		r, c := int(r8%6)+1, int(c8%6)+1
		m := randomDense(rng, r, c)
		return Equal(m.T().T(), m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := MatMul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !Equal(got, want, 1e-12) {
		t.Fatalf("MatMul=%v want %v", got, want)
	}
}

func TestMatMulIdentityProperty(t *testing.T) {
	rng := NewRand(2)
	f := func(r8, c8 uint8) bool {
		r, c := int(r8%6)+1, int(c8%6)+1
		m := randomDense(rng, r, c)
		return Equal(MatMul(m, Identity(c)), m, 1e-12) &&
			Equal(MatMul(Identity(r), m), m, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulDistributesOverAdd(t *testing.T) {
	rng := NewRand(3)
	f := func(n8 uint8) bool {
		n := int(n8%5) + 1
		a, b, c := randomDense(rng, n, n), randomDense(rng, n, n), randomDense(rng, n, n)
		left := MatMul(Add(a, b), c)
		right := Add(MatMul(a, c), MatMul(b, c))
		return Equal(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulATBMatchesExplicitTranspose(t *testing.T) {
	rng := NewRand(4)
	a := randomDense(rng, 5, 3)
	b := randomDense(rng, 5, 4)
	got := MatMulATB(a, b)
	want := MatMul(a.T(), b)
	if !Equal(got, want, 1e-10) {
		t.Fatal("MatMulATB disagrees with aᵀ·b")
	}
}

func TestMatMulABTMatchesExplicitTranspose(t *testing.T) {
	rng := NewRand(5)
	a := randomDense(rng, 5, 3)
	b := randomDense(rng, 4, 3)
	got := MatMulABT(a, b)
	want := MatMul(a, b.T())
	if !Equal(got, want, 1e-10) {
		t.Fatal("MatMulABT disagrees with a·bᵀ")
	}
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	got := m.MulVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("MulVec=%v", got)
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	if got := Add(a, b); got.At(1, 1) != 44 {
		t.Fatalf("Add=%v", got)
	}
	if got := Sub(b, a); got.At(0, 0) != 9 {
		t.Fatalf("Sub=%v", got)
	}
	if got := MulElem(a, b); got.At(1, 0) != 90 {
		t.Fatalf("MulElem=%v", got)
	}
	c := a.Clone()
	c.AxpyInPlace(2, b)
	if c.At(0, 1) != 42 {
		t.Fatalf("Axpy=%v", c)
	}
	c.Scale(0.5)
	if c.At(0, 1) != 21 {
		t.Fatalf("Scale=%v", c)
	}
	c.Fill(7)
	if c.At(1, 1) != 7 {
		t.Fatal("Fill failed")
	}
	c.Zero()
	if c.Norm() != 0 {
		t.Fatal("Zero failed")
	}
}

func TestApplyAndMap(t *testing.T) {
	m := FromRows([][]float64{{1, 4}, {9, 16}})
	sq := m.Map(math.Sqrt)
	if sq.At(1, 1) != 4 {
		t.Fatalf("Map=%v", sq)
	}
	if m.At(1, 1) != 16 {
		t.Fatal("Map must not mutate receiver")
	}
	m.Apply(func(x float64) float64 { return -x })
	if m.At(0, 0) != -1 {
		t.Fatal("Apply failed")
	}
}

func TestAddRowVecAndSumRows(t *testing.T) {
	m := New(3, 2)
	m.AddRowVec([]float64{1, 2})
	s := m.SumRows()
	if s[0] != 3 || s[1] != 6 {
		t.Fatalf("SumRows=%v", s)
	}
}

func TestNormAndMaxAbs(t *testing.T) {
	m := FromRows([][]float64{{3, -4}})
	if !almostEqual(m.Norm(), 5, 1e-12) {
		t.Fatalf("Norm=%v", m.Norm())
	}
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs=%v", m.MaxAbs())
	}
}

func TestEqualShapes(t *testing.T) {
	if Equal(New(2, 2), New(2, 3), 1) {
		t.Fatal("different shapes must not be Equal")
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := FromRows([][]float64{{1, 2}})
	if small.String() == "" {
		t.Fatal("String empty")
	}
	large := New(20, 20)
	if large.String() != "Dense(20×20)" {
		t.Fatalf("large String=%q", large.String())
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 1, 1e-10) || !almostEqual(x[1], 3, 1e-10) {
		t.Fatalf("Solve=%v want [1 3]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("singular system must error")
	}
}

func TestSolveNonSquare(t *testing.T) {
	if _, err := SolveMulti(New(2, 3), New(2, 1)); err == nil {
		t.Fatal("non-square must error")
	}
	if _, err := SolveMulti(New(2, 2), New(3, 1)); err == nil {
		t.Fatal("rhs mismatch must error")
	}
}

func TestSolveRoundTripProperty(t *testing.T) {
	rng := NewRand(6)
	f := func(n8 uint8) bool {
		n := int(n8%6) + 2
		a := randomDense(rng, n, n)
		// Diagonal dominance guarantees well-conditioned systems.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range want {
			if !almostEqual(got[i], want[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveMultiAgainstSingle(t *testing.T) {
	rng := NewRand(7)
	a := randomDense(rng, 4, 4)
	for i := 0; i < 4; i++ {
		a.Set(i, i, a.At(i, i)+6)
	}
	b1 := []float64{1, 2, 3, 4}
	b2 := []float64{-1, 0, 1, 2}
	rhs := New(4, 2)
	for i := 0; i < 4; i++ {
		rhs.Set(i, 0, b1[i])
		rhs.Set(i, 1, b2[i])
	}
	multi, err := SolveMulti(a, rhs)
	if err != nil {
		t.Fatal(err)
	}
	x1, _ := Solve(a, b1)
	x2, _ := Solve(a, b2)
	for i := 0; i < 4; i++ {
		if !almostEqual(multi.At(i, 0), x1[i], 1e-9) || !almostEqual(multi.At(i, 1), x2[i], 1e-9) {
			t.Fatal("SolveMulti disagrees with Solve")
		}
	}
}

func TestSolveRegularized(t *testing.T) {
	// Singular matrix becomes solvable after damping.
	a := FromRows([][]float64{{1, 1}, {1, 1}})
	x, err := SolveRegularized(a, []float64{2, 2}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], x[1], 1e-9) {
		t.Fatalf("regularized solution should be symmetric, got %v", x)
	}
}

func TestSolvePreservesInputs(t *testing.T) {
	a := FromRows([][]float64{{4, 1}, {1, 3}})
	orig := a.Clone()
	b := []float64{1, 2}
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	if !Equal(a, orig, 0) {
		t.Fatal("Solve must not modify A")
	}
	if b[0] != 1 || b[1] != 2 {
		t.Fatal("Solve must not modify b")
	}
}

func TestEigSymDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, 1}})
	vals, vecs, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(vals[0], 3, 1e-10) || !almostEqual(vals[1], 1, 1e-10) {
		t.Fatalf("vals=%v", vals)
	}
	if !almostEqual(math.Abs(vecs.At(0, 0)), 1, 1e-10) {
		t.Fatalf("vecs=%v", vecs)
	}
}

func TestEigSymKnown2x2(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, _, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(vals[0], 3, 1e-10) || !almostEqual(vals[1], 1, 1e-10) {
		t.Fatalf("vals=%v want [3 1]", vals)
	}
}

func TestEigSymReconstructionProperty(t *testing.T) {
	rng := NewRand(8)
	f := func(n8 uint8) bool {
		n := int(n8%6) + 2
		b := randomDense(rng, n, n)
		a := Add(b, b.T()) // symmetric
		vals, vecs, err := EigSym(a)
		if err != nil {
			return false
		}
		// Reconstruct V·D·Vᵀ.
		vd := vecs.Clone()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				vd.Set(i, j, vd.At(i, j)*vals[j])
			}
		}
		recon := MatMulABT(vd, vecs)
		return Equal(recon, a, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEigSymOrthonormalVectors(t *testing.T) {
	rng := NewRand(9)
	b := randomDense(rng, 6, 6)
	a := Add(b, b.T())
	_, vecs, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	gram := MatMulATB(vecs, vecs)
	if !Equal(gram, Identity(6), 1e-8) {
		t.Fatal("eigenvectors are not orthonormal")
	}
}

func TestEigSymNonSquare(t *testing.T) {
	if _, _, err := EigSym(New(2, 3)); err == nil {
		t.Fatal("non-square must error")
	}
}

func TestTopEig(t *testing.T) {
	a := FromRows([][]float64{{5, 0, 0}, {0, 2, 0}, {0, 0, 1}})
	vals, vecs, err := TopEig(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vecs.Cols != 2 {
		t.Fatalf("TopEig shape vals=%d vecs=%d×%d", len(vals), vecs.Rows, vecs.Cols)
	}
	if !almostEqual(vals[0], 5, 1e-10) || !almostEqual(vals[1], 2, 1e-10) {
		t.Fatalf("vals=%v", vals)
	}
}

func TestTopEigClampsK(t *testing.T) {
	a := Identity(2)
	vals, _, err := TopEig(a, 10)
	if err != nil || len(vals) != 2 {
		t.Fatalf("TopEig clamp: vals=%v err=%v", vals, err)
	}
}

func TestStatsMeanStdMedian(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Fatalf("Mean=%v", Mean(xs))
	}
	if !almostEqual(Std(xs), math.Sqrt(1.25), 1e-12) {
		t.Fatalf("Std=%v", Std(xs))
	}
	if Median(xs) != 2.5 {
		t.Fatalf("Median=%v", Median(xs))
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd-length median")
	}
}

func TestStatsEmpty(t *testing.T) {
	if Mean(nil) != 0 || Std(nil) != 0 || Median(nil) != 0 || Percentile(nil, 50) != 0 {
		t.Fatal("empty-slice stats must be 0")
	}
	if ArgMax(nil) != -1 {
		t.Fatal("ArgMax(nil) must be -1")
	}
}

func TestPercentileBounds(t *testing.T) {
	xs := []float64{10, 20, 30}
	if Percentile(xs, 0) != 10 || Percentile(xs, 100) != 30 {
		t.Fatal("percentile bounds")
	}
	if Percentile(xs, 50) != 20 {
		t.Fatalf("p50=%v", Percentile(xs, 50))
	}
	if got := Percentile(xs, 25); !almostEqual(got, 15, 1e-12) {
		t.Fatalf("p25=%v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile must not sort in place")
	}
}

func TestArgMaxTies(t *testing.T) {
	if ArgMax([]float64{1, 3, 3, 2}) != 1 {
		t.Fatal("ArgMax must pick earliest on tie")
	}
}

func TestTopK(t *testing.T) {
	got := TopK([]float64{5, 1, 9, 7}, 2)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("TopK=%v", got)
	}
	if len(TopK([]float64{1}, 5)) != 1 {
		t.Fatal("TopK must clamp k")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax=(%v,%v)", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Fatal("MinMax(nil)")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("NewRand must be deterministic per seed")
		}
	}
}

func TestFillNormalStats(t *testing.T) {
	rng := NewRand(10)
	m := New(200, 50)
	FillNormal(m, rng, 2, 0.5)
	mean := Mean(m.Data)
	std := Std(m.Data)
	if !almostEqual(mean, 2, 0.05) {
		t.Fatalf("FillNormal mean=%v", mean)
	}
	if !almostEqual(std, 0.5, 0.05) {
		t.Fatalf("FillNormal std=%v", std)
	}
}

func TestFillUniformRange(t *testing.T) {
	rng := NewRand(11)
	m := New(100, 10)
	FillUniform(m, rng, -2, 3)
	lo, hi := MinMax(m.Data)
	if lo < -2 || hi >= 3 {
		t.Fatalf("FillUniform out of range [%v,%v)", lo, hi)
	}
}

func TestPermIsPermutation(t *testing.T) {
	rng := NewRand(12)
	p := Perm(rng, 20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm invalid: %v", p)
		}
		seen[v] = true
	}
}

// matMulReference is the plain row-at-a-time kernel (without the zero
// skip), the definition the blocked and AVX paths must reproduce exactly.
func matMulReference(a, b *Dense) *Dense {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		drow := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := a.At(i, k)
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
	return out
}

func TestMatMulBlockedMatchesReferenceBitForBit(t *testing.T) {
	// The serving layer promises a micro-batched request gets the exact
	// answer it would have gotten alone, so every MatMul path — the
	// single-row kernel with its zero skip, the pure-Go 4-row block and
	// the AVX tiles — must agree to the last bit. Shapes cover all tile
	// remainders (rows % 4, cols % 8, odd inner dims).
	rng := NewRand(77)
	for _, shape := range [][3]int{
		{1, 7, 9}, {2, 9, 12}, {3, 8, 8}, {4, 16, 24}, {5, 13, 17}, {6, 8, 16}, {7, 12, 9}, {8, 10, 11}, {9, 6, 13}, {11, 5, 21}, {12, 16, 30},
		{32, 60, 129}, {33, 31, 40}, {64, 128, 201},
	} {
		r, m, n := shape[0], shape[1], shape[2]
		a := New(r, m)
		b := New(m, n)
		FillNormal(a, rng, 0, 1)
		FillNormal(b, rng, 0, 1)
		// Sparsify a to exercise the zero-skip path.
		for i := range a.Data {
			if i%3 == 0 {
				a.Data[i] = 0
			}
		}
		got := MatMul(a, b)
		want := matMulReference(a, b)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("shape %v: element %d differs: %v != %v (kernels must be bit-identical)",
					shape, i, got.Data[i], want.Data[i])
			}
		}
	}
}
