package mat

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs (0 for fewer than two
// values).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Median returns the median of xs (0 for an empty slice). xs is not
// modified.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile (0–100) of xs using linear
// interpolation between closest ranks. xs is not modified; an empty slice
// yields 0.
func Percentile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ArgMax returns the index of the largest value in xs (-1 for empty).
// Ties resolve to the earliest index, which keeps decoding deterministic.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best, bi := xs[0], 0
	for i, v := range xs[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// TopK returns the indices of the k largest values in xs, in descending
// value order. k is clamped to len(xs).
func TopK(xs []float64, k int) []int {
	if k > len(xs) {
		k = len(xs)
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if xs[idx[a]] != xs[idx[b]] {
			return xs[idx[a]] > xs[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:k]
}

// MinMax returns the smallest and largest values in xs; for an empty slice
// it returns (0, 0).
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
