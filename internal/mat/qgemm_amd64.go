//go:build amd64

package mat

// useQGemmAVX2 gates the int8 GEMM tile on AVX2 (VPMOVSXBW/VPMADDWD on
// 256-bit registers) plus the same OS YMM-state checks the f64 kernels
// need. Unlike the f64 tiles — where un-fused AVX1 arithmetic is what
// preserves bit-identity — the int8 tile is exact integer math, so any
// ISA level that computes the sums at all computes them identically.
var useQGemmAVX2 = useAVXGemm && detectAVX2()

func detectAVX2() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, ebx, _, _ := cpuidex(7, 0)
	const avx2 = 1 << 5
	return ebx&avx2 != 0
}

// qgemm2x4avx2 computes a 2-row × 4-channel int8 dot-product tile over
// the full padded inner dimension kp (a multiple of 32): for r in {0,1}
// and c in 0..3, d_r[c] = Σ_k a_r[k]·b_c[k], storing four int32 results
// at each of d0 and d1. Activations are sign-extended in 16-value
// chunks; weights load directly from their widened int16 storage and
// feed VPMADDWD — safe from its i16 saturation because |values| ≤ 127,
// so a pair sum is at most 2·127·127 = 32258 < 2¹⁵ — accumulating in
// 8-lane int32 registers that are reduced horizontally once at the end.
// Integer addition is associative, so the result is bit-identical to
// qdotGeneric.
func qgemm2x4avx2(kp int, a0, a1 *int8, b0, b1, b2, b3 *int16, d0, d1 *int32)
