package mat

import "math/rand"

// NewRand returns a deterministic pseudo-random generator for the given
// seed. Every stochastic component in this repository draws from an explicit
// *rand.Rand created here so that experiments are bit-reproducible.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// FillNormal fills m with independent Gaussian samples of the given mean and
// standard deviation.
func FillNormal(m *Dense, rng *rand.Rand, mean, std float64) {
	for i := range m.Data {
		m.Data[i] = mean + std*rng.NormFloat64()
	}
}

// FillUniform fills m with independent uniform samples in [lo, hi).
func FillUniform(m *Dense, rng *rand.Rand, lo, hi float64) {
	span := hi - lo
	for i := range m.Data {
		m.Data[i] = lo + span*rng.Float64()
	}
}

// Perm returns a random permutation of [0, n) drawn from rng, as a
// convenience mirroring rand.Perm but documented as the canonical shuffle
// used for minibatch ordering.
func Perm(rng *rand.Rand, n int) []int {
	return rng.Perm(n)
}
