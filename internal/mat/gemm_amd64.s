//go:build amd64

#include "textflag.h"

// func cpuidex(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func gemm4x8avx(kn int, a0, a1, a2, a3 *float64, b *float64, ldb int,
//                 d0, d1, d2, d3 *float64)
//
// Register layout: Y0..Y7 hold the 4×8 accumulator tile (two YMM per
// row), Y8/Y9 the current eight b values, Y10 the broadcast a value,
// Y11 the product. Multiplies and adds stay separate (VMULPD + VADDPD,
// no FMA) so every element accumulates with exactly the same rounding
// as the pure-Go kernels.
TEXT ·gemm4x8avx(SB), NOSPLIT, $0-88
	MOVQ kn+0(FP), CX
	MOVQ a0+8(FP), R8
	MOVQ a1+16(FP), R9
	MOVQ a2+24(FP), R10
	MOVQ a3+32(FP), R11
	MOVQ b+40(FP), BX
	MOVQ ldb+48(FP), DX
	SHLQ $3, DX            // b row stride in bytes

	// Load the current accumulator tile.
	MOVQ d0+56(FP), AX
	VMOVUPD (AX), Y0
	VMOVUPD 32(AX), Y1
	MOVQ d1+64(FP), AX
	VMOVUPD (AX), Y2
	VMOVUPD 32(AX), Y3
	MOVQ d2+72(FP), AX
	VMOVUPD (AX), Y4
	VMOVUPD 32(AX), Y5
	MOVQ d3+80(FP), AX
	VMOVUPD (AX), Y6
	VMOVUPD 32(AX), Y7

	TESTQ CX, CX
	JZ    store

kloop:
	VMOVUPD (BX), Y8
	VMOVUPD 32(BX), Y9

	VBROADCASTSD (R8), Y10
	VMULPD Y8, Y10, Y11
	VADDPD Y11, Y0, Y0
	VMULPD Y9, Y10, Y11
	VADDPD Y11, Y1, Y1

	VBROADCASTSD (R9), Y10
	VMULPD Y8, Y10, Y11
	VADDPD Y11, Y2, Y2
	VMULPD Y9, Y10, Y11
	VADDPD Y11, Y3, Y3

	VBROADCASTSD (R10), Y10
	VMULPD Y8, Y10, Y11
	VADDPD Y11, Y4, Y4
	VMULPD Y9, Y10, Y11
	VADDPD Y11, Y5, Y5

	VBROADCASTSD (R11), Y10
	VMULPD Y8, Y10, Y11
	VADDPD Y11, Y6, Y6
	VMULPD Y9, Y10, Y11
	VADDPD Y11, Y7, Y7

	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $8, R11
	ADDQ DX, BX
	DECQ CX
	JNZ  kloop

store:
	MOVQ d0+56(FP), AX
	VMOVUPD Y0, (AX)
	VMOVUPD Y1, 32(AX)
	MOVQ d1+64(FP), AX
	VMOVUPD Y2, (AX)
	VMOVUPD Y3, 32(AX)
	MOVQ d2+72(FP), AX
	VMOVUPD Y4, (AX)
	VMOVUPD Y5, 32(AX)
	MOVQ d3+80(FP), AX
	VMOVUPD Y6, (AX)
	VMOVUPD Y7, 32(AX)
	VZEROUPPER
	RET

// func gemm8x4avx(kn int, a0, a1, a2, a3, a4, a5, a6, a7 *float64,
//                 b *float64, ldb int, d0, d1, d2, d3, d4, d5, d6, d7 *float64)
//
// Eight-row × four-column tile: Y0..Y7 are the per-row accumulators,
// Y8 the current four b values, Y9 the broadcast a value, Y10 the
// product. Halves the b-matrix traffic per output row relative to the
// 4×8 tile — the difference between bandwidth-bound and compute-bound
// when a class head no longer fits L2. Same un-fused ascending-k
// accumulation as everywhere else.
TEXT ·gemm8x4avx(SB), NOSPLIT, $0-152
	MOVQ kn+0(FP), CX
	MOVQ a0+8(FP), R8
	MOVQ a1+16(FP), R9
	MOVQ a2+24(FP), R10
	MOVQ a3+32(FP), R11
	MOVQ a4+40(FP), R12
	MOVQ a5+48(FP), R13
	MOVQ a6+56(FP), R14
	MOVQ a7+64(FP), R15
	MOVQ b+72(FP), BX
	MOVQ ldb+80(FP), DX
	SHLQ $3, DX            // b row stride in bytes

	MOVQ d0+88(FP), AX
	VMOVUPD (AX), Y0
	MOVQ d1+96(FP), AX
	VMOVUPD (AX), Y1
	MOVQ d2+104(FP), AX
	VMOVUPD (AX), Y2
	MOVQ d3+112(FP), AX
	VMOVUPD (AX), Y3
	MOVQ d4+120(FP), AX
	VMOVUPD (AX), Y4
	MOVQ d5+128(FP), AX
	VMOVUPD (AX), Y5
	MOVQ d6+136(FP), AX
	VMOVUPD (AX), Y6
	MOVQ d7+144(FP), AX
	VMOVUPD (AX), Y7

	XORQ SI, SI            // k index
	TESTQ CX, CX
	JZ    store8

kloop8:
	VMOVUPD (BX), Y8

	VBROADCASTSD (R8)(SI*8), Y9
	VMULPD Y8, Y9, Y10
	VADDPD Y10, Y0, Y0
	VBROADCASTSD (R9)(SI*8), Y9
	VMULPD Y8, Y9, Y10
	VADDPD Y10, Y1, Y1
	VBROADCASTSD (R10)(SI*8), Y9
	VMULPD Y8, Y9, Y10
	VADDPD Y10, Y2, Y2
	VBROADCASTSD (R11)(SI*8), Y9
	VMULPD Y8, Y9, Y10
	VADDPD Y10, Y3, Y3
	VBROADCASTSD (R12)(SI*8), Y9
	VMULPD Y8, Y9, Y10
	VADDPD Y10, Y4, Y4
	VBROADCASTSD (R13)(SI*8), Y9
	VMULPD Y8, Y9, Y10
	VADDPD Y10, Y5, Y5
	VBROADCASTSD (R14)(SI*8), Y9
	VMULPD Y8, Y9, Y10
	VADDPD Y10, Y6, Y6
	VBROADCASTSD (R15)(SI*8), Y9
	VMULPD Y8, Y9, Y10
	VADDPD Y10, Y7, Y7

	ADDQ DX, BX
	INCQ SI
	CMPQ SI, CX
	JLT  kloop8

store8:
	MOVQ d0+88(FP), AX
	VMOVUPD Y0, (AX)
	MOVQ d1+96(FP), AX
	VMOVUPD Y1, (AX)
	MOVQ d2+104(FP), AX
	VMOVUPD Y2, (AX)
	MOVQ d3+112(FP), AX
	VMOVUPD Y3, (AX)
	MOVQ d4+120(FP), AX
	VMOVUPD Y4, (AX)
	MOVQ d5+128(FP), AX
	VMOVUPD Y5, (AX)
	MOVQ d6+136(FP), AX
	VMOVUPD Y6, (AX)
	MOVQ d7+144(FP), AX
	VMOVUPD Y7, (AX)
	VZEROUPPER
	RET
