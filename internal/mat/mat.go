// Package mat implements the dense linear algebra substrate used by the
// NObLe reproduction: a row-major float64 matrix type, the handful of
// BLAS-like kernels needed for feed-forward networks (GEMM in the three
// orientations required by backpropagation), element-wise helpers,
// deterministic random fills, a Gaussian-elimination linear solver, and a
// Jacobi eigendecomposition for symmetric matrices (used by the classical
// MDS / Isomap / LLE baselines).
//
// Everything is written against the standard library only. Matrices are
// deliberately simple — a shape plus a flat backing slice — because the
// networks in this repository are small, static graphs; clarity and
// determinism matter more than peak throughput.
package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major matrix of float64 values. The zero value is an empty
// matrix; use New or FromSlice to construct a usable one. Data holds
// Rows*Cols elements with element (i,j) at Data[i*Cols+j].
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed r×c matrix. It panics if either dimension is
// negative or if both are zero in a way that would alias (r*c must be
// representable).
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: New with negative dimension %d×%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromSlice wraps data as an r×c matrix without copying. The caller must not
// reuse data independently afterwards. It panics if len(data) != r*c.
func FromSlice(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: FromSlice got %d values for %d×%d", len(data), r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: data}
}

// FromRows builds a matrix by copying the given rows. All rows must have the
// same length; it panics otherwise or when rows is empty.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		panic("mat: FromRows with no rows")
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("mat: FromRows row %d has %d values, want %d", i, len(row), c))
		}
		copy(m.Row(i), row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j). Bounds are checked by the underlying slice
// access in debug scenarios; no extra checks are performed here.
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a mutable view of row i (no copy).
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// SetRow copies v into row i; it panics if len(v) != Cols.
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("mat: SetRow len %d want %d", len(v), m.Cols))
	}
	copy(m.Row(i), v)
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Reshape returns a view of m with new shape r×c sharing the same backing
// data. It panics if r*c != Rows*Cols.
func (m *Dense) Reshape(r, c int) *Dense {
	if r*c != m.Rows*m.Cols {
		panic(fmt.Sprintf("mat: Reshape %d×%d to %d×%d", m.Rows, m.Cols, r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: m.Data}
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*out.Cols+i] = v
		}
	}
	return out
}

// Zero sets every element of m to 0.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Dense) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Apply replaces every element x with f(x).
func (m *Dense) Apply(f func(float64) float64) {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
}

// Map returns a new matrix whose elements are f applied to m's elements.
func (m *Dense) Map(f func(float64) float64) *Dense {
	out := m.Clone()
	out.Apply(f)
	return out
}

// Scale multiplies every element by s in place.
func (m *Dense) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddInPlace adds b to m element-wise. Shapes must match.
func (m *Dense) AddInPlace(b *Dense) {
	sameShape("AddInPlace", m, b)
	for i, v := range b.Data {
		m.Data[i] += v
	}
}

// SubInPlace subtracts b from m element-wise. Shapes must match.
func (m *Dense) SubInPlace(b *Dense) {
	sameShape("SubInPlace", m, b)
	for i, v := range b.Data {
		m.Data[i] -= v
	}
}

// AxpyInPlace computes m += alpha*b element-wise. Shapes must match.
func (m *Dense) AxpyInPlace(alpha float64, b *Dense) {
	sameShape("AxpyInPlace", m, b)
	for i, v := range b.Data {
		m.Data[i] += alpha * v
	}
}

// MulElemInPlace multiplies m by b element-wise (Hadamard product).
func (m *Dense) MulElemInPlace(b *Dense) {
	sameShape("MulElemInPlace", m, b)
	for i, v := range b.Data {
		m.Data[i] *= v
	}
}

// Add returns a+b as a new matrix.
func Add(a, b *Dense) *Dense {
	out := a.Clone()
	out.AddInPlace(b)
	return out
}

// Sub returns a-b as a new matrix.
func Sub(a, b *Dense) *Dense {
	out := a.Clone()
	out.SubInPlace(b)
	return out
}

// MulElem returns the Hadamard (element-wise) product of a and b.
func MulElem(a, b *Dense) *Dense {
	out := a.Clone()
	out.MulElemInPlace(b)
	return out
}

// AddRowVec adds the 1×c row vector v to every row of m in place.
func (m *Dense) AddRowVec(v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("mat: AddRowVec len %d want %d", len(v), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, x := range v {
			row[j] += x
		}
	}
}

// SumRows returns the column-wise sum of m as a length-Cols slice
// (i.e. the sum over the batch dimension).
func (m *Dense) SumRows() []float64 {
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// MatMul returns a*b. It panics if a.Cols != b.Rows.
func MatMul(a, b *Dense) *Dense {
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a*b, overwriting dst. dst must be a.Rows×b.Cols
// and must not alias a or b.
func MatMulInto(dst, a, b *Dense) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MatMul %d×%d by %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MatMulInto dst %d×%d want %d×%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	dst.Zero()
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulATB returns aᵀ*b without materializing the transpose. a is r×m,
// b is r×n; the result is m×n. Used for weight gradients (xᵀ · dout).
func MatMulATB(a, b *Dense) *Dense {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: MatMulATB %d×%d by %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	n := b.Cols
	for r := 0; r < a.Rows; r++ {
		arow := a.Row(r)
		brow := b.Row(r)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulABT returns a*bᵀ without materializing the transpose. a is r×m,
// b is n×m; the result is r×n. Used for input gradients (dout · Wᵀ).
func MatMulABT(a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MatMulABT %d×%d by %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
	return out
}

// MulVec returns m*v for a length-Cols vector v.
func (m *Dense) MulVec(v []float64) []float64 {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("mat: MulVec len %d want %d", len(v), m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out
}

// Norm returns the Frobenius norm of m.
func (m *Dense) Norm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value in m (0 for empty).
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Equal reports whether a and b have identical shape and every pair of
// elements differs by at most tol.
func Equal(a, b *Dense, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Dense) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Dense(%d×%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Dense(%d×%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}

func sameShape(op string, a, b *Dense) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %d×%d vs %d×%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
