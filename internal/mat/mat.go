// Package mat implements the dense linear algebra substrate used by the
// NObLe reproduction: a row-major float64 matrix type, the handful of
// BLAS-like kernels needed for feed-forward networks (GEMM in the three
// orientations required by backpropagation), element-wise helpers,
// deterministic random fills, a Gaussian-elimination linear solver, and a
// Jacobi eigendecomposition for symmetric matrices (used by the classical
// MDS / Isomap / LLE baselines).
//
// Everything is written against the standard library only. Matrices are
// deliberately simple — a shape plus a flat backing slice — because the
// networks in this repository are small, static graphs; clarity and
// determinism matter more than peak throughput.
package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major matrix of float64 values. The zero value is an empty
// matrix; use New or FromSlice to construct a usable one. Data holds
// Rows*Cols elements with element (i,j) at Data[i*Cols+j].
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed r×c matrix. It panics if either dimension is
// negative or if both are zero in a way that would alias (r*c must be
// representable).
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: New with negative dimension %d×%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromSlice wraps data as an r×c matrix without copying. The caller must not
// reuse data independently afterwards. It panics if len(data) != r*c.
func FromSlice(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: FromSlice got %d values for %d×%d", len(data), r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: data}
}

// FromRows builds a matrix by copying the given rows. All rows must have the
// same length; it panics otherwise or when rows is empty.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		panic("mat: FromRows with no rows")
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("mat: FromRows row %d has %d values, want %d", i, len(row), c))
		}
		copy(m.Row(i), row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j). Bounds are checked by the underlying slice
// access in debug scenarios; no extra checks are performed here.
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a mutable view of row i (no copy).
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// SetRow copies v into row i; it panics if len(v) != Cols.
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("mat: SetRow len %d want %d", len(v), m.Cols))
	}
	copy(m.Row(i), v)
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Reshape returns a view of m with new shape r×c sharing the same backing
// data. It panics if r*c != Rows*Cols.
func (m *Dense) Reshape(r, c int) *Dense {
	if r*c != m.Rows*m.Cols {
		panic(fmt.Sprintf("mat: Reshape %d×%d to %d×%d", m.Rows, m.Cols, r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: m.Data}
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*out.Cols+i] = v
		}
	}
	return out
}

// Zero sets every element of m to 0.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Dense) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Apply replaces every element x with f(x).
func (m *Dense) Apply(f func(float64) float64) {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
}

// Map returns a new matrix whose elements are f applied to m's elements.
func (m *Dense) Map(f func(float64) float64) *Dense {
	out := m.Clone()
	out.Apply(f)
	return out
}

// Scale multiplies every element by s in place.
func (m *Dense) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddInPlace adds b to m element-wise. Shapes must match.
func (m *Dense) AddInPlace(b *Dense) {
	sameShape("AddInPlace", m, b)
	for i, v := range b.Data {
		m.Data[i] += v
	}
}

// SubInPlace subtracts b from m element-wise. Shapes must match.
func (m *Dense) SubInPlace(b *Dense) {
	sameShape("SubInPlace", m, b)
	for i, v := range b.Data {
		m.Data[i] -= v
	}
}

// AxpyInPlace computes m += alpha*b element-wise. Shapes must match.
func (m *Dense) AxpyInPlace(alpha float64, b *Dense) {
	sameShape("AxpyInPlace", m, b)
	for i, v := range b.Data {
		m.Data[i] += alpha * v
	}
}

// MulElemInPlace multiplies m by b element-wise (Hadamard product).
func (m *Dense) MulElemInPlace(b *Dense) {
	sameShape("MulElemInPlace", m, b)
	for i, v := range b.Data {
		m.Data[i] *= v
	}
}

// Add returns a+b as a new matrix.
func Add(a, b *Dense) *Dense {
	out := a.Clone()
	out.AddInPlace(b)
	return out
}

// Sub returns a-b as a new matrix.
func Sub(a, b *Dense) *Dense {
	out := a.Clone()
	out.SubInPlace(b)
	return out
}

// MulElem returns the Hadamard (element-wise) product of a and b.
func MulElem(a, b *Dense) *Dense {
	out := a.Clone()
	out.MulElemInPlace(b)
	return out
}

// AddRowVec adds the 1×c row vector v to every row of m in place.
func (m *Dense) AddRowVec(v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("mat: AddRowVec len %d want %d", len(v), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, x := range v {
			row[j] += x
		}
	}
}

// SumRows returns the column-wise sum of m as a length-Cols slice
// (i.e. the sum over the batch dimension).
func (m *Dense) SumRows() []float64 {
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// MatMul returns a*b. It panics if a.Cols != b.Rows.
func MatMul(a, b *Dense) *Dense {
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a*b, overwriting dst. dst must be a.Rows×b.Cols
// and must not alias a or b.
//
// Batches of four or more rows go through a register-blocked kernel that
// shares each loaded b element across four a rows — the amortization that
// makes one coalesced PredictBatch pass cheaper per sample than row-by-row
// inference. Every element still accumulates its products in ascending-k
// order as separate statements, which Go's strict floating-point
// evaluation keeps un-reassociated, so the blocked kernel is bit-for-bit
// identical to the row-at-a-time path.
func MatMulInto(dst, a, b *Dense) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MatMul %d×%d by %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MatMulInto dst %d×%d want %d×%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	dst.Zero()
	i := 0
	for ; i+8 <= a.Rows; i += 8 {
		matMulBlock8(dst, a, b, [8]int{i, i + 1, i + 2, i + 3, i + 4, i + 5, i + 6, i + 7})
	}
	// Remaining rows still go through a block kernel with the last row
	// duplicated into the spare lanes: duplicate lanes compute — and
	// finally store — identical values, so the result is unchanged while
	// the rows keep the AVX speed. A single remaining row is the
	// latency-sensitive unbatched case and keeps the scalar kernel with
	// its sparse-input skip.
	switch rem := a.Rows - i; {
	case rem >= 5:
		idx := [8]int{}
		for l := range idx {
			r := i + l
			if r >= a.Rows {
				r = a.Rows - 1
			}
			idx[l] = r
		}
		matMulBlock8(dst, a, b, idx)
	case rem == 4:
		matMulBlock4(dst, a, b, i, i+1, i+2, i+3)
	case rem == 3:
		matMulBlock4(dst, a, b, i, i+1, i+2, i+2)
	case rem == 2:
		matMulBlock4(dst, a, b, i, i+1, i+1, i+1)
	case rem == 1:
		matMulRow(dst, a, b, i)
	}
}

// matMulBlock8 accumulates the eight output rows idx at once (indices
// may repeat for remainder padding). With AVX it runs 8×4
// register-accumulator tiles — the tall tile halves b traffic per row
// versus the 4×8 tile, which matters once the weight matrix outgrows L2;
// without AVX it falls back to two 4-row blocks. Bit-identical to
// matMulRow either way.
func matMulBlock8(dst, a, b *Dense, idx [8]int) {
	n := b.Cols
	m := a.Cols
	j := 0
	if useAVXGemm && m > 0 {
		a0, a1, a2, a3 := a.Row(idx[0]), a.Row(idx[1]), a.Row(idx[2]), a.Row(idx[3])
		a4, a5, a6, a7 := a.Row(idx[4]), a.Row(idx[5]), a.Row(idx[6]), a.Row(idx[7])
		d0, d1, d2, d3 := dst.Row(idx[0]), dst.Row(idx[1]), dst.Row(idx[2]), dst.Row(idx[3])
		d4, d5, d6, d7 := dst.Row(idx[4]), dst.Row(idx[5]), dst.Row(idx[6]), dst.Row(idx[7])
		for ; j+4 <= n; j += 4 {
			gemm8x4avx(m, &a0[0], &a1[0], &a2[0], &a3[0], &a4[0], &a5[0], &a6[0], &a7[0],
				&b.Data[j], n,
				&d0[j], &d1[j], &d2[j], &d3[j], &d4[j], &d5[j], &d6[j], &d7[j])
		}
		if j == n {
			return
		}
	}
	// Column remainder (or the whole span without AVX): two 4-row
	// passes over the leftover columns.
	matMulBlock4Cols(dst, a, b, idx[0], idx[1], idx[2], idx[3], j)
	matMulBlock4Cols(dst, a, b, idx[4], idx[5], idx[6], idx[7], j)
}

// matMulRow accumulates one output row: dst[i] += a[i] * b. Zero inputs
// are skipped — a pure optimization for sparse fingerprints, since adding
// 0*b[k] is an exact no-op for the finite values that flow through the
// networks here.
func matMulRow(dst, a, b *Dense, i int) {
	n := b.Cols
	arow := a.Row(i)
	drow := dst.Row(i)
	for k, av := range arow {
		if av == 0 {
			continue
		}
		brow := b.Data[k*n : (k+1)*n]
		for j, bv := range brow {
			drow[j] += av * bv
		}
	}
}

// matMulBlock4 accumulates the four output rows r0..r3 at once so each
// loaded b element feeds multiply-accumulates for all four rows instead
// of one — the amortization that makes a coalesced batch pass cheaper
// per sample than row-by-row inference. Row indices may repeat (the
// remainder-padding trick in MatMulInto); duplicate lanes then compute
// and store identical values. On hardware with AVX it dispatches 4×8
// register-accumulator tiles to the assembly kernel (see gemm_amd64.s);
// the pure-Go fallback unrolls k by four. Both produce bit-identical
// results to matMulRow: every output element accumulates un-fused
// products in ascending-k order.
func matMulBlock4(dst, a, b *Dense, r0, r1, r2, r3 int) {
	n := b.Cols
	m := a.Cols
	j := 0
	if useAVXGemm && m > 0 {
		a0, a1, a2, a3 := a.Row(r0), a.Row(r1), a.Row(r2), a.Row(r3)
		d0, d1, d2, d3 := dst.Row(r0), dst.Row(r1), dst.Row(r2), dst.Row(r3)
		for ; j+8 <= n; j += 8 {
			gemm4x8avx(m, &a0[0], &a1[0], &a2[0], &a3[0], &b.Data[j], n,
				&d0[j], &d1[j], &d2[j], &d3[j])
		}
	}
	if j == n {
		return
	}
	matMulBlock4Cols(dst, a, b, r0, r1, r2, r3, j)
}

// matMulBlock4Cols is the pure-Go four-row kernel over columns [j, n),
// k unrolled by four. All four lanes read before any stores, like the
// assembly kernels' register accumulators, so duplicated remainder lanes
// do not double-accumulate.
func matMulBlock4Cols(dst, a, b *Dense, r0, r1, r2, r3, j int) {
	n := b.Cols
	m := a.Cols
	a0, a1, a2, a3 := a.Row(r0), a.Row(r1), a.Row(r2), a.Row(r3)
	d0, d1, d2, d3 := dst.Row(r0), dst.Row(r1), dst.Row(r2), dst.Row(r3)
	k := 0
	for ; k+4 <= m; k += 4 {
		a00, a01, a02, a03 := a0[k], a0[k+1], a0[k+2], a0[k+3]
		a10, a11, a12, a13 := a1[k], a1[k+1], a1[k+2], a1[k+3]
		a20, a21, a22, a23 := a2[k], a2[k+1], a2[k+2], a2[k+3]
		a30, a31, a32, a33 := a3[k], a3[k+1], a3[k+2], a3[k+3]
		b0 := b.Data[k*n : (k+1)*n]
		b1 := b.Data[(k+1)*n : (k+2)*n]
		b2 := b.Data[(k+2)*n : (k+3)*n]
		b3 := b.Data[(k+3)*n : (k+4)*n]
		for jj := j; jj < n; jj++ {
			bv0, bv1, bv2, bv3 := b0[jj], b1[jj], b2[jj], b3[jj]
			// Per element, products accumulate in ascending-k order as
			// separate statements (no reassociation), matching
			// matMulRow and the assembly tiles exactly. All four lanes
			// read before any stores, like the assembly kernel's
			// register accumulators, so duplicated remainder lanes do
			// not double-accumulate.
			s0, s1, s2, s3 := d0[jj], d1[jj], d2[jj], d3[jj]
			s0 += a00 * bv0
			s0 += a01 * bv1
			s0 += a02 * bv2
			s0 += a03 * bv3
			s1 += a10 * bv0
			s1 += a11 * bv1
			s1 += a12 * bv2
			s1 += a13 * bv3
			s2 += a20 * bv0
			s2 += a21 * bv1
			s2 += a22 * bv2
			s2 += a23 * bv3
			s3 += a30 * bv0
			s3 += a31 * bv1
			s3 += a32 * bv2
			s3 += a33 * bv3
			d0[jj] = s0
			d1[jj] = s1
			d2[jj] = s2
			d3[jj] = s3
		}
	}
	for ; k < m; k++ {
		brow := b.Data[k*n : (k+1)*n]
		for jj := j; jj < n; jj++ {
			bv := brow[jj]
			s0 := d0[jj] + a0[k]*bv
			s1 := d1[jj] + a1[k]*bv
			s2 := d2[jj] + a2[k]*bv
			s3 := d3[jj] + a3[k]*bv
			d0[jj] = s0
			d1[jj] = s1
			d2[jj] = s2
			d3[jj] = s3
		}
	}
}

// MatMulATB returns aᵀ*b without materializing the transpose. a is r×m,
// b is r×n; the result is m×n. Used for weight gradients (xᵀ · dout).
func MatMulATB(a, b *Dense) *Dense {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: MatMulATB %d×%d by %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	n := b.Cols
	for r := 0; r < a.Rows; r++ {
		arow := a.Row(r)
		brow := b.Row(r)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulABT returns a*bᵀ without materializing the transpose. a is r×m,
// b is n×m; the result is r×n. Used for input gradients (dout · Wᵀ).
func MatMulABT(a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MatMulABT %d×%d by %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
	return out
}

// MulVec returns m*v for a length-Cols vector v.
func (m *Dense) MulVec(v []float64) []float64 {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("mat: MulVec len %d want %d", len(v), m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out
}

// Norm returns the Frobenius norm of m.
func (m *Dense) Norm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value in m (0 for empty).
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Equal reports whether a and b have identical shape and every pair of
// elements differs by at most tol.
func Equal(a, b *Dense, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Dense) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Dense(%d×%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Dense(%d×%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}

func sameShape(op string, a, b *Dense) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %d×%d vs %d×%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
