//go:build !amd64

package mat

// Non-amd64 builds always take the portable int8 kernel.
const useQGemmAVX2 = false

// qgemm2x4avx2 is never called when useQGemmAVX2 is false; this stub
// keeps the package compiling on other architectures.
func qgemm2x4avx2(kp int, a0, a1 *int8, b0, b1, b2, b3 *int16, d0, d1 *int32) {
	panic("mat: qgemm2x4avx2 called on non-amd64 build")
}
