package mat

import (
	"fmt"
	"math"
	"sort"
)

// EigSym computes the full eigendecomposition of the symmetric matrix a
// using the cyclic Jacobi rotation method. It returns the eigenvalues in
// descending order and a matrix whose columns are the corresponding unit
// eigenvectors, so that a ≈ V·diag(vals)·Vᵀ. a is not modified; symmetry is
// assumed, only the upper triangle drives the rotations.
//
// Jacobi is O(n³) with a small constant and excellent numerical behaviour on
// the sizes this repository needs (landmark MDS / Isomap / LLE kernels of a
// few hundred rows).
func EigSym(a *Dense) (vals []float64, vecs *Dense, err error) {
	n := a.Rows
	if a.Cols != n {
		return nil, nil, fmt.Errorf("mat: EigSym on non-square %d×%d matrix", a.Rows, a.Cols)
	}
	w := a.Clone()
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off < 1e-12*(1+w.MaxAbs()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				rotate(w, v, p, q, c, s)
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] > vals[idx[j]] })
	sortedVals := make([]float64, n)
	sortedVecs := New(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs, nil
}

// rotate applies the Jacobi rotation J(p,q,c,s) to w (two-sided) and
// accumulates it into the eigenvector matrix v (one-sided).
func rotate(w, v *Dense, p, q int, c, s float64) {
	n := w.Rows
	for i := 0; i < n; i++ {
		wip, wiq := w.At(i, p), w.At(i, q)
		w.Set(i, p, c*wip-s*wiq)
		w.Set(i, q, s*wip+c*wiq)
	}
	for j := 0; j < n; j++ {
		wpj, wqj := w.At(p, j), w.At(q, j)
		w.Set(p, j, c*wpj-s*wqj)
		w.Set(q, j, s*wpj+c*wqj)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

func offDiagNorm(m *Dense) float64 {
	var s float64
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := m.At(i, j)
			s += 2 * v * v
		}
	}
	return math.Sqrt(s)
}

// TopEig returns the k leading eigenpairs of the symmetric matrix a, as a
// convenience wrapper over EigSym for callers (MDS) that only need the top
// of the spectrum.
func TopEig(a *Dense, k int) (vals []float64, vecs *Dense, err error) {
	allVals, allVecs, err := EigSym(a)
	if err != nil {
		return nil, nil, err
	}
	if k > len(allVals) {
		k = len(allVals)
	}
	vals = allVals[:k]
	vecs = New(a.Rows, k)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < k; j++ {
			vecs.Set(i, j, allVecs.At(i, j))
		}
	}
	return vals, vecs, nil
}
