package mat

import (
	"math"
	"math/rand"
	"testing"
)

// naiveQMul is the obvious triple loop over the logical (unpadded) shape
// — the reference every packed kernel must reproduce exactly.
func naiveQMul(q *QMat, a []int8, rows int) []int32 {
	out := make([]int32, rows*q.N)
	for r := 0; r < rows; r++ {
		for j := 0; j < q.N; j++ {
			var s int32
			for k := 0; k < q.K; k++ {
				s += int32(a[r*q.Kp+k]) * int32(q.At(k, j))
			}
			out[r*q.N+j] = s
		}
	}
	return out
}

func randQMat(rng *rand.Rand, k, n int) (*QMat, []int8, int) {
	w := New(k, n)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64() * math.Exp(rng.NormFloat64())
	}
	q := QuantizeWeights(w)
	rows := 1 + rng.Intn(11)
	a := make([]int8, rows*q.Kp)
	for r := 0; r < rows; r++ {
		for i := 0; i < k; i++ {
			a[r*q.Kp+i] = int8(rng.Intn(255) - 127)
		}
	}
	return q, a, rows
}

// TestQMatMulMatchesNaive is the property test: across random shapes
// (including non-multiple-of-16 K and ragged column counts), the packed
// kernel — whichever path the CPU dispatches to — equals the naive
// reference bit-for-bit.
func TestQMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(70)
		n := 1 + rng.Intn(23)
		if trial%7 == 0 {
			k = 16 * (1 + rng.Intn(8)) // exact-chunk shapes too
		}
		q, a, rows := randQMat(rng, k, n)
		got := make([]int32, rows*q.N)
		q.MulInto(got, a, rows)
		want := naiveQMul(q, a, rows)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (K=%d N=%d rows=%d): acc[%d] = %d, want %d",
					trial, k, n, rows, i, got[i], want[i])
			}
		}
	}
}

// TestQMatMulGenericMatchesAVX2 pins the satellite requirement directly:
// on hardware with the AVX2 tile, the generic Go kernel and the assembly
// path agree bit-for-bit on every element.
func TestQMatMulGenericMatchesAVX2(t *testing.T) {
	if !useQGemmAVX2 {
		t.Skip("no AVX2 int8 kernel on this machine; generic path is the only path")
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		q, a, rows := randQMat(rng, 1+rng.Intn(200), 1+rng.Intn(40))
		simd := make([]int32, rows*q.N)
		q.mulAVX2(simd, a, rows)
		gen := make([]int32, rows*q.N)
		q.mulGeneric(gen, a, rows)
		for i := range gen {
			if simd[i] != gen[i] {
				t.Fatalf("trial %d (K=%d N=%d rows=%d): avx2 acc[%d] = %d, generic %d",
					trial, q.K, q.N, rows, i, simd[i], gen[i])
			}
		}
	}
}

// TestQMatMulRowIndependence: a row's accumulators must not depend on its
// batchmates — the kernel-level half of the batch-size determinism
// contract (TestWiFiPredictBatchInt8MatchesPredict covers the model
// level).
func TestQMatMulRowIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q, a, rows := randQMat(rng, 130, 37)
	if rows < 2 {
		a = append(a, a...)
		rows *= 2
	}
	batch := make([]int32, rows*q.N)
	q.MulInto(batch, a, rows)
	for r := 0; r < rows; r++ {
		solo := make([]int32, q.N)
		q.MulInto(solo, a[r*q.Kp:(r+1)*q.Kp], 1)
		for j, v := range solo {
			if batch[r*q.N+j] != v {
				t.Fatalf("row %d col %d: batched %d, solo %d", r, j, batch[r*q.N+j], v)
			}
		}
	}
}

// TestQuantizeWeightsRoundTrip checks the symmetric per-channel scheme:
// codes stay in [-127, 127], scales are maxabs/127, and dequantization
// reproduces each entry within half a quantization step.
func TestQuantizeWeightsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := New(45, 9)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64() * 3
	}
	// A dead channel must quantize to scale 0 and all-zero codes.
	for i := 0; i < w.Rows; i++ {
		w.Set(i, 4, 0)
	}
	q := QuantizeWeights(w)
	if q.Scale[4] != 0 {
		t.Fatalf("dead channel scale = %v, want 0", q.Scale[4])
	}
	deq := q.Dequantize()
	for j := 0; j < w.Cols; j++ {
		var amax float64
		for i := 0; i < w.Rows; i++ {
			if a := math.Abs(w.At(i, j)); a > amax {
				amax = a
			}
		}
		for i := 0; i < w.Rows; i++ {
			if c := q.At(i, j); c > 127 || c < -127 {
				t.Fatalf("code (%d,%d) = %d out of range", i, j, c)
			}
			step := amax / 127
			if diff := math.Abs(deq.At(i, j) - w.At(i, j)); step > 0 && diff > step/2+1e-12 {
				t.Fatalf("entry (%d,%d): dequant %v vs %v exceeds half step %v", i, j, deq.At(i, j), w.At(i, j), step/2)
			}
		}
	}
}

// TestQuantizeRowInto covers clamping, padding, and the degenerate
// scale.
func TestQuantizeRowInto(t *testing.T) {
	dst := make([]int8, 16)
	QuantizeRowInto(dst, []float64{0, 1, -1, 1000, -1000, 0.49, -0.51}, 1)
	want := []int8{0, 1, -1, 127, -127, 0, -1}
	for i, w := range want {
		if dst[i] != w {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], w)
		}
	}
	for i := len(want); i < len(dst); i++ {
		if dst[i] != 0 {
			t.Fatalf("padding dst[%d] = %d, want 0", i, dst[i])
		}
	}
	for i := range dst {
		dst[i] = 42
	}
	QuantizeRowInto(dst, []float64{1, 2, 3}, 0)
	for i := range dst {
		if dst[i] != 0 {
			t.Fatalf("zero-scale dst[%d] = %d, want 0", i, dst[i])
		}
	}
}

// FuzzQMatMul fuzzes raw code/activation bytes through both kernels.
func FuzzQMatMul(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(3), uint8(2))
	f.Add(make([]byte, 64), uint8(16), uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, kRaw, nRaw uint8) {
		k := 1 + int(kRaw)%64
		n := 1 + int(nRaw)%8
		kp := (k + qKChunk - 1) / qKChunk * qKChunk
		q := &QMat{K: k, N: n, Kp: kp, Data: make([]int16, n*kp), Scale: make([]float32, n)}
		at := func(i int) int8 {
			if len(raw) == 0 {
				return 0
			}
			v := int8(raw[i%len(raw)])
			if v == -128 {
				v = -127 // symmetric quantization never emits -128
			}
			return v
		}
		idx := 0
		for j := 0; j < n; j++ {
			for i := 0; i < k; i++ {
				q.Data[j*kp+i] = int16(at(idx))
				idx++
			}
		}
		rows := 3
		a := make([]int8, rows*kp)
		for r := 0; r < rows; r++ {
			for i := 0; i < k; i++ {
				a[r*kp+i] = at(idx)
				idx++
			}
		}
		got := make([]int32, rows*n)
		q.MulInto(got, a, rows)
		want := naiveQMul(q, a, rows)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("acc[%d] = %d, want %d (K=%d N=%d)", i, got[i], want[i], k, n)
			}
		}
	})
}

func BenchmarkQMatMul128x1024(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	w := New(128, 1024)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	q := QuantizeWeights(w)
	rows := 32
	a := make([]int8, rows*q.Kp)
	for i := range a {
		a[i] = int8(rng.Intn(255) - 127)
	}
	acc := make([]int32, rows*q.N)
	b.SetBytes(int64(rows * q.K * q.N))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.MulInto(acc, a, rows)
	}
}

func BenchmarkF64MatMul128x1024(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	w := New(128, 1024)
	x := New(32, 128)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	dst := New(32, 1024)
	b.SetBytes(int64(32 * 128 * 1024))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, w)
	}
}
