package mat

import (
	"fmt"
	"math"
)

// This file is the int8 quantized-inference substrate beside the f64
// kernels: a packed weight type (QMat), symmetric per-channel weight
// quantization, activation-row quantization against a static calibrated
// scale, and the int8×int8→int32 GEMM the quantized serving tier runs on.
//
// The contract mirrors the f64 kernels' bit-identity guarantee, and here
// it is strictly easier to keep: integer accumulation is exact, so the
// generic Go kernel, the AVX2 tile, and the naive reference dot product
// agree bit-for-bit regardless of summation order. Determinism across
// batch sizes also falls out of the design — weight scales are fixed per
// channel and activation scales are calibrated constants, so a row's
// quantized result never depends on its batchmates.

// qKChunk is the packed inner-dimension granularity: columns are padded
// to a multiple of 32 int8 values so the AVX2 kernel (which consumes two
// 16-byte VPMOVSXBW chunks per iteration) never needs a k remainder
// loop. The padding is zeros, and 0·w contributes exactly 0 to an
// integer accumulator, so padded and unpadded results are identical.
const qKChunk = 32

// qMaxK bounds the inner dimension so the int32 accumulator cannot
// overflow: |a·w| per term is at most 127·127 = 16129, so K terms reach
// at most K·16129, which stays far below 2³¹ for K ≤ 100000.
const qMaxK = 100000

// QMat is a weight matrix quantized to symmetric per-channel int8 with
// float32 scales, packed for the quantized GEMM: column (output channel)
// j of the logical K×N matrix is stored contiguously at
// Data[j*Kp : (j+1)*Kp], zero-padded from K to Kp. The channel-major
// layout gives the kernels unit-stride weight access, and the dequantized
// value of entry (k, j) is float64(Data[j*Kp+k]) * float64(Scale[j]).
//
// Every code is an int8 value in [-127, 127], but Data widens the
// storage to int16: the AVX2 tile then streams weights with plain vector
// loads and feeds VPMADDWD directly, leaving the (port-constrained)
// sign-extension shuffle to the activation side only, which is 4-8×
// smaller. The values are identical either way — widening the storage of
// an int8 quantity changes nothing about the arithmetic — and the packed
// form is still 4× smaller than the f64 weights it shadows.
type QMat struct {
	K, N int // logical shape: K inputs × N output channels
	Kp   int // K rounded up to a multiple of qKChunk
	Data []int16
	// Scale holds the per-channel quantization step: column j of the
	// source matrix was divided by Scale[j] and rounded. A channel that
	// is entirely zero has Scale 0 (and all-zero codes).
	Scale []float32
}

// QuantizeWeights quantizes a K×N f64 weight matrix to symmetric
// per-channel int8: Scale[j] = maxabs(column j)/127 and every entry is
// round(w/Scale[j]), which by construction lies in [-127, 127]. The
// mapping is deterministic — the same weights always produce the same
// codes and scales — so int8 artifacts never need to be persisted; they
// are re-derived from the f64 snapshot.
func QuantizeWeights(w *Dense) *QMat {
	if w.Rows > qMaxK {
		panic(fmt.Sprintf("mat: QuantizeWeights inner dimension %d exceeds %d (int32 accumulator bound)", w.Rows, qMaxK))
	}
	k, n := w.Rows, w.Cols
	kp := (k + qKChunk - 1) / qKChunk * qKChunk
	q := &QMat{K: k, N: n, Kp: kp, Data: make([]int16, n*kp), Scale: make([]float32, n)}
	for j := 0; j < n; j++ {
		var amax float64
		for i := 0; i < k; i++ {
			if a := math.Abs(w.At(i, j)); a > amax {
				amax = a
			}
		}
		if amax == 0 {
			continue // Scale stays 0, codes stay 0
		}
		scale := float32(amax / 127)
		q.Scale[j] = scale
		inv := 127 / amax
		col := q.Data[j*kp : j*kp+k]
		for i := 0; i < k; i++ {
			col[i] = int16(clampInt8(math.RoundToEven(w.At(i, j) * inv)))
		}
	}
	return q
}

// Dequantize reconstructs the f64 matrix the codes represent (scale times
// code, per channel) — the reference the accuracy gate and the tests
// compare against.
func (q *QMat) Dequantize() *Dense {
	out := New(q.K, q.N)
	for j := 0; j < q.N; j++ {
		s := float64(q.Scale[j])
		col := q.Data[j*q.Kp : j*q.Kp+q.K]
		for i, c := range col {
			out.Set(i, j, float64(c)*s)
		}
	}
	return out
}

// At returns the quantized code of logical entry (k, j); codes always
// fit int8.
func (q *QMat) At(k, j int) int8 { return int8(q.Data[j*q.Kp+k]) }

// QuantizeRowInto quantizes one activation row against the static scale:
// dst[k] = clamp(round(src[k]/scale), ±127), with dst padded to the
// packed length by zeros. dst must be at least Kp long for the target
// QMat; scale ≤ 0 (a degenerate calibration) quantizes everything to 0.
// Rounding is to nearest, ties to even — implemented with the classic
// 1.5·2⁵² add/subtract so the hot loop needs no function call; it is
// exact for any |v/scale| < 2⁵¹ and everything beyond that clamps
// anyway. This runs once per input value per quantized layer, so it is
// on the serving critical path.
func QuantizeRowInto(dst []int8, src []float64, scale float32) {
	if scale <= 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	inv := 1 / float64(scale)
	const magic = 6755399441055744.0 // 1.5·2⁵²
	for k, v := range src {
		r := v*inv + magic - magic
		if !(r >= -127) {
			if r != r { // NaN: degenerate input pins to 0
				r = 0
			} else {
				r = -127
			}
		} else if r > 127 {
			r = 127
		}
		dst[k] = int8(r)
	}
	for k := len(src); k < len(dst); k++ {
		dst[k] = 0
	}
}

func clampInt8(v float64) int8 {
	// NaN compares false on both bounds and falls through to the cast,
	// so pin it to 0 explicitly.
	switch {
	case math.IsNaN(v):
		return 0
	case v > 127:
		return 127
	case v < -127:
		return -127
	}
	return int8(v)
}

// MulInto computes the int8 GEMM: acc[r*q.N+j] = Σ_k a[r*q.Kp+k] · code(k, j)
// for r < rows, overwriting acc. a holds rows quantized activation rows
// packed at Kp stride (see QuantizeRowInto); acc must hold rows*N values.
// Dispatches to the AVX2 tile when the CPU supports it; integer
// accumulation is exact, so both paths are bit-identical by construction
// (property-tested in qgemm_test.go).
func (q *QMat) MulInto(acc []int32, a []int8, rows int) {
	if len(a) < rows*q.Kp || len(acc) < rows*q.N {
		panic(fmt.Sprintf("mat: QMat.MulInto buffers too small (%d rows, %d×%d)", rows, q.K, q.N))
	}
	if useQGemmAVX2 && q.Kp > 0 {
		q.mulAVX2(acc, a, rows)
		return
	}
	q.mulGeneric(acc, a, rows)
}

// mulGeneric is the portable kernel (and the remainder path for column
// counts the AVX2 tile does not cover).
func (q *QMat) mulGeneric(acc []int32, a []int8, rows int) {
	for r := 0; r < rows; r++ {
		arow := a[r*q.Kp : (r+1)*q.Kp]
		out := acc[r*q.N : (r+1)*q.N]
		for j := 0; j < q.N; j++ {
			out[j] = qdotGeneric(arow, q.Data[j*q.Kp:(j+1)*q.Kp])
		}
	}
}

// qdotGeneric is the scalar int8 dot product the SIMD kernel must match
// exactly (b holds int8-valued codes in widened storage).
func qdotGeneric(a []int8, b []int16) int32 {
	var s int32
	for k, av := range a {
		s += int32(av) * int32(b[k])
	}
	return s
}

// mulAVX2 runs the 2-row × 4-channel assembly tile over the bulk of the
// output and finishes ragged channel remainders with the scalar dot
// product (exact integers: the mixed paths still agree bit-for-bit).
// Odd row counts duplicate the last row into the spare lane — the same
// padding trick as the f64 kernels; duplicate lanes compute and store
// identical values.
func (q *QMat) mulAVX2(acc []int32, a []int8, rows int) {
	kp, n := q.Kp, q.N
	for r := 0; r < rows; r += 2 {
		r1 := r + 1
		if r1 >= rows {
			r1 = r
		}
		a0 := a[r*kp : (r+1)*kp]
		a1 := a[r1*kp : (r1+1)*kp]
		out0 := acc[r*n : (r+1)*n]
		out1 := acc[r1*n : (r1+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			qgemm2x4avx2(kp, &a0[0], &a1[0],
				&q.Data[j*kp], &q.Data[(j+1)*kp], &q.Data[(j+2)*kp], &q.Data[(j+3)*kp],
				&out0[j], &out1[j])
		}
		for ; j < n; j++ {
			col := q.Data[j*kp : (j+1)*kp]
			out0[j] = qdotGeneric(a0, col)
			out1[j] = qdotGeneric(a1, col)
		}
	}
}
