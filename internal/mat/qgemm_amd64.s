//go:build amd64

#include "textflag.h"

// func qgemm2x4avx2(kp int, a0, a1 *int8, b0, b1, b2, b3 *int16, d0, d1 *int32)
//
// 2-row × 4-channel int8 dot-product tile over the full padded inner
// dimension (kp is a multiple of 32; see qKChunk). Weights arrive as
// int8-valued codes in int16 storage, so the weight side is a plain
// vector load feeding VPMADDWD straight from memory; only the two
// activation rows need the VPMOVSXBW widening shuffle, which keeps the
// shuffle port off the critical path. Register layout: Y0..Y3 are
// row 0's per-channel int32 accumulators, Y4..Y7 row 1's; Y8..Y11 the
// sign-extended activation chunks for the two halves of the current
// 32-value step, Y12 the current weight chunk, Y13 the VPMADDWD
// product. Values are bounded by ±127, so a VPMADDWD pair sum is at
// most 2·127·127 = 32258 — no i16 saturation is reachable — and the
// int32 lanes are reduced once at the end with a VPHADDD tree. Integer
// sums are exact, so the result is bit-identical to the generic kernel
// regardless of accumulation order.
TEXT ·qgemm2x4avx2(SB), NOSPLIT, $0-72
	MOVQ kp+0(FP), CX
	MOVQ a0+8(FP), R8
	MOVQ a1+16(FP), R9
	MOVQ b0+24(FP), R10
	MOVQ b1+32(FP), R11
	MOVQ b2+40(FP), R12
	MOVQ b3+48(FP), R13

	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	VPXOR Y4, Y4, Y4
	VPXOR Y5, Y5, Y5
	VPXOR Y6, Y6, Y6
	VPXOR Y7, Y7, Y7

	XORQ SI, SI            // activation byte index == weight element index
	TESTQ CX, CX
	JZ    reduce

kloop:
	VPMOVSXBW (R8)(SI*1), Y8      // row 0, values [k, k+16)
	VPMOVSXBW 16(R8)(SI*1), Y9    // row 0, values [k+16, k+32)
	VPMOVSXBW (R9)(SI*1), Y10     // row 1, low half
	VPMOVSXBW 16(R9)(SI*1), Y11   // row 1, high half

	VMOVDQU  (R10)(SI*2), Y12     // channel 0 weights, low half (16 × i16)
	VPMADDWD Y12, Y8, Y13
	VPADDD   Y13, Y0, Y0
	VPMADDWD Y12, Y10, Y13
	VPADDD   Y13, Y4, Y4
	VMOVDQU  32(R10)(SI*2), Y12   // channel 0, high half
	VPMADDWD Y12, Y9, Y13
	VPADDD   Y13, Y0, Y0
	VPMADDWD Y12, Y11, Y13
	VPADDD   Y13, Y4, Y4

	VMOVDQU  (R11)(SI*2), Y12     // channel 1
	VPMADDWD Y12, Y8, Y13
	VPADDD   Y13, Y1, Y1
	VPMADDWD Y12, Y10, Y13
	VPADDD   Y13, Y5, Y5
	VMOVDQU  32(R11)(SI*2), Y12
	VPMADDWD Y12, Y9, Y13
	VPADDD   Y13, Y1, Y1
	VPMADDWD Y12, Y11, Y13
	VPADDD   Y13, Y5, Y5

	VMOVDQU  (R12)(SI*2), Y12     // channel 2
	VPMADDWD Y12, Y8, Y13
	VPADDD   Y13, Y2, Y2
	VPMADDWD Y12, Y10, Y13
	VPADDD   Y13, Y6, Y6
	VMOVDQU  32(R12)(SI*2), Y12
	VPMADDWD Y12, Y9, Y13
	VPADDD   Y13, Y2, Y2
	VPMADDWD Y12, Y11, Y13
	VPADDD   Y13, Y6, Y6

	VMOVDQU  (R13)(SI*2), Y12     // channel 3
	VPMADDWD Y12, Y8, Y13
	VPADDD   Y13, Y3, Y3
	VPMADDWD Y12, Y10, Y13
	VPADDD   Y13, Y7, Y7
	VMOVDQU  32(R13)(SI*2), Y12
	VPMADDWD Y12, Y9, Y13
	VPADDD   Y13, Y3, Y3
	VPMADDWD Y12, Y11, Y13
	VPADDD   Y13, Y7, Y7

	ADDQ $32, SI
	CMPQ SI, CX
	JLT  kloop

reduce:
	// Row 0: collapse the four 8-lane accumulators to [c0 c1 c2 c3].
	// VPHADDD(B, A) packs A's pair sums in the low half of each 128-bit
	// lane and B's in the high half, so two tree levels interleave all
	// four channels per lane; the extract+add folds the two lanes.
	VPHADDD Y1, Y0, Y13
	VPHADDD Y3, Y2, Y12
	VPHADDD Y12, Y13, Y13
	VEXTRACTI128 $1, Y13, X12
	VPADDD X12, X13, X13
	MOVQ d0+56(FP), AX
	VMOVDQU X13, (AX)

	// Row 1.
	VPHADDD Y5, Y4, Y13
	VPHADDD Y7, Y6, Y12
	VPHADDD Y12, Y13, Y13
	VEXTRACTI128 $1, Y13, X12
	VPADDD X12, X13, X13
	MOVQ d1+64(FP), AX
	VMOVDQU X13, (AX)

	VZEROUPPER
	RET
