//go:build !amd64

package mat

// Non-amd64 builds always take the pure-Go blocked kernel.
const useAVXGemm = false

// The assembly kernels are never called when useAVXGemm is false; these
// stubs keep the package compiling on other architectures.

func gemm4x8avx(kn int, a0, a1, a2, a3 *float64, b *float64, ldb int, d0, d1, d2, d3 *float64) {
	panic("mat: gemm4x8avx called on non-amd64 build")
}

func gemm8x4avx(kn int, a0, a1, a2, a3, a4, a5, a6, a7 *float64,
	b *float64, ldb int, d0, d1, d2, d3, d4, d5, d6, d7 *float64) {
	panic("mat: gemm8x4avx called on non-amd64 build")
}
