package serve

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// The golden tests pin the /v1 wire protocol byte-for-byte: every
// request/response shape (localize, track, sessions, models, errors) is
// recorded under testdata/golden and any refactor of the serving
// internals — in particular the Engine extraction — must reproduce the
// exact same bytes. Regenerate with:
//
//	go test ./internal/serve -run TestGoldenV1 -update-golden
//
// The fixture models are seeded and the numerics are bit-identical
// across GEMM paths (DESIGN §2), so recorded prediction bytes are
// stable.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden from current responses")

// goldenCase is one pinned exchange. Cases run in order against one
// server so the session cases can build on each other deterministically.
type goldenCase struct {
	name   string
	method string
	path   string
	body   string // empty for GET/DELETE
}

func goldenCases(t *testing.T) []goldenCase {
	t.Helper()
	fixtures(t)

	marshal := func(v any) string {
		raw, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	// Deterministic payloads from the seeded fixture datasets.
	fp := func(i int) []float64 { return wifiDS.Test[i].Features }
	localizeOK := marshal(LocalizeRequest{
		Model:        "wifi-test",
		Fingerprints: [][]float64{fp(0), fp(1), fp(2), fp(3)},
	})
	tooMany := LocalizeRequest{Model: "wifi-test"}
	for i := 0; i <= maxFingerprints; i++ {
		tooMany.Fingerprints = append(tooMany.Fingerprints, fp(0))
	}
	trackOK := TrackRequest{Model: "imu-test"}
	for _, p := range imuDS.Test[:3] {
		trackOK.Paths = append(trackOK.Paths, TrackPath{
			Start:    XY{X: p.Start.X, Y: p.Start.Y},
			Features: p.Features,
		})
	}
	seg := imuDS.Test[0].Features[:imuModel.SegmentDim()]
	segDim := imuModel.SegmentDim()
	scan := wifiDS.Test[4].Features

	return []goldenCase{
		// Localize: success and every error shape.
		{"localize_ok", "POST", "/v1/localize", localizeOK},
		{"localize_bad_json", "POST", "/v1/localize", `{not json`},
		{"localize_trailing_garbage", "POST", "/v1/localize", `{"model":"wifi-test","fingerprints":[]} extra`},
		{"localize_missing_model", "POST", "/v1/localize", `{"fingerprints":[[0.1]]}`},
		{"localize_unknown_model", "POST", "/v1/localize", `{"model":"nope","fingerprints":[[0.1]]}`},
		{"localize_wrong_kind", "POST", "/v1/localize", `{"model":"imu-test","fingerprints":[[0.1]]}`},
		{"localize_no_fingerprints", "POST", "/v1/localize", `{"model":"wifi-test","fingerprints":[]}`},
		{"localize_bad_dim", "POST", "/v1/localize", `{"model":"wifi-test","fingerprints":[[0.1,0.2]]}`},
		{"localize_too_many", "POST", "/v1/localize", marshal(tooMany)},

		// Track.
		{"track_ok", "POST", "/v1/track", marshal(trackOK)},
		{"track_no_paths", "POST", "/v1/track", `{"model":"imu-test","paths":[]}`},
		{"track_bad_features", "POST", "/v1/track", `{"model":"imu-test","paths":[{"start":{"x":0,"y":0},"features":[1,2,3]}]}`},
		{"track_unknown_model", "POST", "/v1/track", `{"model":"nope","paths":[{"start":{"x":0,"y":0},"features":[1]}]}`},

		// Sessions: create, append, fix, introspect, conflict, delete.
		{"session_create", "POST", "/v1/sessions/golden-dev/segments", marshal(SessionSegmentsRequest{
			Model: "imu-test", Start: &XY{X: 12, Y: 24}, Window: 2,
		})},
		{"session_append", "POST", "/v1/sessions/golden-dev/segments", marshal(SessionSegmentsRequest{
			Features: seg,
		})},
		{"session_fix", "POST", "/v1/sessions/golden-dev/segments", marshal(SessionSegmentsRequest{
			Features: seg, WiFiModel: "wifi-test", Fingerprint: scan,
		})},
		{"session_get", "GET", "/v1/sessions/golden-dev", ""},
		{"session_model_conflict", "POST", "/v1/sessions/golden-dev/segments", marshal(SessionSegmentsRequest{
			Model: "other-model",
		})},
		{"session_create_no_model", "POST", "/v1/sessions/golden-new/segments", marshal(SessionSegmentsRequest{
			Start: &XY{},
		})},
		{"session_create_no_origin", "POST", "/v1/sessions/golden-new/segments", marshal(SessionSegmentsRequest{
			Model: "imu-test", Features: seg,
		})},
		{"session_bad_multiple", "POST", "/v1/sessions/golden-dev/segments", marshal(SessionSegmentsRequest{
			Features: seg[:segDim-1],
		})},
		{"session_fingerprint_no_model", "POST", "/v1/sessions/golden-dev/segments", marshal(SessionSegmentsRequest{
			Fingerprint: scan,
		})},
		{"session_delete", "DELETE", "/v1/sessions/golden-dev", ""},
		{"session_delete_missing", "DELETE", "/v1/sessions/golden-dev", ""},
		{"session_get_missing", "GET", "/v1/sessions/golden-dev", ""},

		// Listings.
		{"models", "GET", "/v1/models", ""},
	}
}

// newGoldenServer is newTestServer with pinned LoadedAt stamps so the
// /v1/models bytes are reproducible.
func newGoldenServer(t *testing.T) *Server {
	t.Helper()
	fixtures(t)
	loaded := time.Date(2025, 1, 2, 3, 4, 5, 0, time.UTC)
	reg := NewRegistry("", t.Logf)
	reg.Add(&Model{Name: "wifi-test", Kind: KindWiFi, WiFi: wifiModel, LoadedAt: loaded})
	reg.Add(&Model{Name: "imu-test", Kind: KindIMU, IMU: imuModel, LoadedAt: loaded})
	return New(Config{Registry: reg, BatchWindow: 0, MaxBatch: 64})
}

func TestGoldenV1(t *testing.T) {
	s := newGoldenServer(t)
	dir := filepath.Join("testdata", "golden")
	if *updateGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range goldenCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			var req *http.Request
			if tc.body != "" {
				req = httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
				req.Header.Set("Content-Type", "application/json")
			} else {
				req = httptest.NewRequest(tc.method, tc.path, nil)
			}
			w := httptest.NewRecorder()
			s.Handler().ServeHTTP(w, req)

			got := fmt.Sprintf("%d %s\n%s", w.Code, w.Header().Get("Content-Type"), w.Body.Bytes())
			file := filepath.Join(dir, tc.name+".golden")
			if *updateGolden {
				if err := os.WriteFile(file, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(file)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Errorf("wire bytes changed.\n--- golden:\n%s\n--- got:\n%s", want, got)
			}
		})
	}
}
