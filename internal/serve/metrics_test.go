package serve

import (
	"strings"
	"testing"
	"time"
)

func TestSizeBucketsPairing(t *testing.T) {
	// The hist array is sized by a constant; it must track the bucket
	// bounds slice (plus the overflow slot) or counts silently misfile.
	if numSizeBuckets != len(batchSizeBuckets)+1 {
		t.Fatalf("numSizeBuckets = %d, want len(batchSizeBuckets)+1 = %d",
			numSizeBuckets, len(batchSizeBuckets)+1)
	}
}

func TestBatchSnapshotHistogram(t *testing.T) {
	m := NewMetrics()
	// One pass per bucket bound, plus one overflow pass.
	for _, size := range []int{1, 2, 3, 8, 30, 64, 65, 500} {
		m.ObserveBatch("localize", size)
	}
	m.ObserveBatchDrop("localize", 7)

	snap := m.Snapshot("localize")
	if snap.Passes != 8 || snap.MaxRows != 500 || snap.DroppedRows != 7 {
		t.Fatalf("snapshot %+v", snap)
	}
	wantRows := int64(1 + 2 + 3 + 8 + 30 + 64 + 65 + 500)
	if snap.Rows != wantRows {
		t.Fatalf("rows %d, want %d", snap.Rows, wantRows)
	}
	// Buckets are 1,2,4,8,16,32,64 + overflow: sizes 1→b0, 2→b1, 3→b2,
	// 8→b3, 30→b5, 64→b6, 65 and 500→overflow.
	want := []int64{1, 1, 1, 1, 0, 1, 1, 2}
	if len(snap.SizeCounts) != len(want) {
		t.Fatalf("%d size counts, want %d", len(snap.SizeCounts), len(want))
	}
	for i, n := range want {
		if snap.SizeCounts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, snap.SizeCounts[i], n, snap.SizeCounts)
		}
	}

	// An unknown kind diffs cleanly: zero counters, zeroed (not nil)
	// histogram of the same shape.
	empty := m.Snapshot("nope")
	if empty.Passes != 0 || len(empty.SizeCounts) != len(want) {
		t.Fatalf("empty snapshot %+v", empty)
	}

	// Snapshot returns copies: mutating one must not alias the live hist.
	snap.SizeCounts[0] = 99
	if again := m.Snapshot("localize"); again.SizeCounts[0] != 1 {
		t.Fatalf("snapshot aliases live histogram: %v", again.SizeCounts)
	}
}

func TestPrometheusBatchSizeHistogram(t *testing.T) {
	m := NewMetrics()
	m.Observe("/v1/localize", 200, 3*time.Millisecond)
	m.ObserveBatch("localize", 3)
	m.ObserveBatch("localize", 100)
	var b strings.Builder
	m.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`noble_batch_size_bucket{kind="localize",le="4"} 1`,
		`noble_batch_size_bucket{kind="localize",le="64"} 1`,
		`noble_batch_size_bucket{kind="localize",le="+Inf"} 2`,
		`noble_batch_size_sum{kind="localize"} 103`,
		`noble_batch_size_count{kind="localize"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}
