package serve

import (
	"io"
	"net/http"
)

// RetrainController is the narrow surface the serving layer needs from
// the retraining subsystem (internal/retrain implements it). The
// dependency points this way — retrain imports serve for bundles and
// lifecycle specs, serve sees only this interface — because retraining
// must go through the public publish path like any other bundle
// producer: the serving side grants it introspection and a kick
// endpoint, never a direct line to the registry.
type RetrainController interface {
	// Status is the /debug/retrain JSON view: corpus counts, last run,
	// trigger state.
	Status() any
	// Kick starts an asynchronous harvest+retrain of one model; it
	// fails fast when one is already in flight or the model has no
	// retrainable bundle.
	Kick(model, reason string) error
	// WritePrometheus appends the noble_retrain_* metric family to a
	// /metrics scrape.
	WritePrometheus(w io.Writer)
}

// SetRetrain attaches the retraining subsystem. Call before the server
// starts listening; a nil controller (the default) turns the retrain
// endpoints into 404s and adds nothing to /metrics.
func (s *Server) SetRetrain(rc RetrainController) { s.retrain = rc }

// handleDebugRetrain dumps the retraining loop's state: corpus size
// per model, harvest and run history, and the drift trigger's
// baselines.
func (s *Server) handleDebugRetrain(w http.ResponseWriter, r *http.Request) {
	if s.retrain == nil {
		fail(w, http.StatusNotFound, "retraining is not configured (noble-serve needs -state-dir)")
		return
	}
	writeJSON(w, http.StatusOK, s.retrain.Status())
}

// handleAdminRetrain kicks an asynchronous harvest+retrain of one
// model. The run publishes through the normal bundle path, so the new
// generation lands in shadow and still has to earn promotion — this
// endpoint can waste compute, but it cannot put bad weights on the
// serving path. Admin mux only.
func (s *Server) handleAdminRetrain(w http.ResponseWriter, r *http.Request) {
	if s.retrain == nil {
		fail(w, http.StatusNotFound, "retraining is not configured (noble-serve needs -state-dir)")
		return
	}
	model := r.PathValue("model")
	if err := s.retrain.Kick(model, "admin"); err != nil {
		fail(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"model": model, "status": "started"})
}
