package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"noble/internal/core"
	"noble/internal/dataset"
	"noble/internal/imu"
)

// Tiny fixtures, trained once per test binary.

var (
	fixtureOnce sync.Once
	wifiDS      *dataset.WiFi
	wifiCfg     core.WiFiConfig
	wifiModel   *core.WiFiModel
	imuBundle   *IMUBundle
	imuDS       *imu.PathDataset
	imuModel    *core.IMUModel
)

func wifiSpec() (*dataset.WiFi, core.WiFiConfig) {
	dcfg := dataset.SmallIPINConfig()
	dcfg.NumWAPs = 16
	dcfg.RefSpacing = 8
	dcfg.SamplesPerRef = 3
	dcfg.TestSamplesPerRef = 1
	dcfg.Seed = 11
	cfg := core.DefaultWiFiConfig()
	cfg.Hidden = []int{16}
	cfg.Epochs = 3
	cfg.TauFine = 1
	cfg.TauCoarse = 8
	return dataset.SynthIPIN(dcfg), cfg
}

func fixtures(t *testing.T) {
	t.Helper()
	fixtureOnce.Do(func() {
		wifiDS, wifiCfg = wifiSpec()
		wifiModel = core.TrainWiFi(wifiDS, wifiCfg)

		sensors := imu.DefaultConfig()
		sensors.ReadingsPerSegment = 32
		sensors.TotalSegments = 40
		imuBundle = &IMUBundle{
			Spacing: 12,
			Sensors: sensors,
			Seed:    5,
			Paths: imu.PathConfig{
				NumPaths: 120, MaxLen: 4, Frames: 3,
				TrainFrac: 0.7, ValFrac: 0.1, Seed: 7,
			},
		}
		cfg := core.DefaultIMUConfig()
		cfg.ProjDim = 8
		cfg.Hidden = []int{16, 16}
		cfg.Tau = 2
		cfg.Epochs = 3
		imuBundle.Config = cfg
		imuDS = imuBundle.BuildIMUDataset()
		imuModel = core.TrainIMU(imuDS, cfg)
	})
}

// newTestServer wires a server over the shared fixture models.
func newTestServer(t *testing.T, window time.Duration) *Server {
	t.Helper()
	fixtures(t)
	reg := NewRegistry("", t.Logf)
	reg.Add(&Model{Name: "wifi-test", Kind: KindWiFi, WiFi: wifiModel})
	reg.Add(&Model{Name: "imu-test", Kind: KindIMU, IMU: imuModel})
	return New(Config{Registry: reg, BatchWindow: window, MaxBatch: 64})
}

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestLocalizeBadJSON(t *testing.T) {
	s := newTestServer(t, 0)
	w := postJSON(t, s.Handler(), "/v1/localize", "{not json")
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400; body %s", w.Code, w.Body)
	}
	var e apiError
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Fatalf("error body %q must carry a JSON error message", w.Body)
	}
}

func TestLocalizeUnknownModel(t *testing.T) {
	s := newTestServer(t, 0)
	w := postJSON(t, s.Handler(), "/v1/localize", `{"model":"nope","fingerprints":[[0.1]]}`)
	if w.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404; body %s", w.Code, w.Body)
	}
}

func TestLocalizeWrongKindAndBadDims(t *testing.T) {
	s := newTestServer(t, 0)
	w := postJSON(t, s.Handler(), "/v1/localize", `{"model":"imu-test","fingerprints":[[0.1]]}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("wrong kind: status %d, want 400", w.Code)
	}
	w = postJSON(t, s.Handler(), "/v1/localize", `{"model":"wifi-test","fingerprints":[[0.1,0.2]]}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad dims: status %d, want 400; body %s", w.Code, w.Body)
	}
	w = postJSON(t, s.Handler(), "/v1/localize", `{"model":"wifi-test","fingerprints":[]}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("empty: status %d, want 400", w.Code)
	}
}

func TestLocalizeHappyPath(t *testing.T) {
	s := newTestServer(t, 0)
	samples := wifiDS.Test[:4]
	req := LocalizeRequest{Model: "wifi-test"}
	for _, smp := range samples {
		req.Fingerprints = append(req.Fingerprints, smp.Features)
	}
	raw, _ := json.Marshal(req)
	w := postJSON(t, s.Handler(), "/v1/localize", string(raw))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d; body %s", w.Code, w.Body)
	}
	var resp LocalizeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(samples) {
		t.Fatalf("%d results for %d fingerprints", len(resp.Results), len(samples))
	}
	for i, smp := range samples {
		want := wifiModel.Predict(smp.Features)
		got := resp.Results[i]
		if got.X != want.Pos.X || got.Y != want.Pos.Y ||
			got.Class != want.Class || got.Building != want.Building || got.Floor != want.Floor {
			t.Fatalf("result %d: got %+v, model predicts %+v", i, got, want)
		}
	}
}

func TestTrackHappyPath(t *testing.T) {
	s := newTestServer(t, 0)
	paths := imuDS.Test[:3]
	req := TrackRequest{Model: "imu-test"}
	for _, p := range paths {
		req.Paths = append(req.Paths, TrackPath{
			Start:    XY{X: p.Start.X, Y: p.Start.Y},
			Features: p.Features,
		})
	}
	raw, _ := json.Marshal(req)
	w := postJSON(t, s.Handler(), "/v1/track", string(raw))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d; body %s", w.Code, w.Body)
	}
	var resp TrackResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	want := imuModel.PredictPaths(paths)
	for i := range want {
		got := resp.Results[i]
		if got.End.X != want[i].End.X || got.End.Y != want[i].End.Y || got.Class != want[i].Class {
			t.Fatalf("path %d: got %+v, model predicts %+v", i, got, want[i])
		}
	}
}

func TestTrackRejectsBadFeatureLength(t *testing.T) {
	s := newTestServer(t, 0)
	w := postJSON(t, s.Handler(), "/v1/track",
		`{"model":"imu-test","paths":[{"start":{"x":0,"y":0},"features":[1,2,3]}]}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400; body %s", w.Code, w.Body)
	}
}

func TestModelsHealthzMetrics(t *testing.T) {
	s := newTestServer(t, 0)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/models", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("models: status %d", w.Code)
	}
	var listing struct {
		Models []ModelInfo `json:"models"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Models) != 2 {
		t.Fatalf("%d models listed, want 2", len(listing.Models))
	}
	byName := map[string]ModelInfo{}
	for _, m := range listing.Models {
		byName[m.Name] = m
	}
	if byName["wifi-test"].InputDim != wifiModel.InputDim() {
		t.Fatalf("wifi input_dim %d, want %d", byName["wifi-test"].InputDim, wifiModel.InputDim())
	}
	if byName["imu-test"].SegmentDim != imuModel.SegmentDim() {
		t.Fatalf("imu segment_dim %d, want %d", byName["imu-test"].SegmentDim, imuModel.SegmentDim())
	}

	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK || !bytes.Contains(w.Body.Bytes(), []byte(`"ok"`)) {
		t.Fatalf("healthz: %d %s", w.Code, w.Body)
	}

	// One request so the counters are non-empty, then scrape.
	postJSON(t, s.Handler(), "/v1/localize", `{"model":"nope","fingerprints":[[0.1]]}`)
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{
		`noble_requests_total{endpoint="localize",code="404"} 1`,
		"noble_request_latency_seconds",
		"noble_batch_rows_count",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, body)
		}
	}
}

func TestBatchedLocalizeMatchesUnbatched(t *testing.T) {
	// Concurrent single-fingerprint requests through the micro-batcher
	// must coalesce into fewer forward passes while answering each
	// device exactly what it would have gotten alone.
	s := newTestServer(t, 5*time.Millisecond)
	const n = 16
	samples := wifiDS.Test
	if len(samples) < n {
		t.Fatalf("fixture too small: %d test samples", len(samples))
	}
	var wg sync.WaitGroup
	results := make([]Position, n)
	codes := make([]int, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raw, _ := json.Marshal(LocalizeRequest{
				Model:        "wifi-test",
				Fingerprints: [][]float64{samples[i].Features},
			})
			<-start
			w := postJSON(t, s.Handler(), "/v1/localize", string(raw))
			codes[i] = w.Code
			var resp LocalizeResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err == nil && len(resp.Results) == 1 {
				results[i] = resp.Results[0]
			}
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		want := wifiModel.Predict(samples[i].Features)
		if results[i].Class != want.Class || results[i].X != want.Pos.X || results[i].Y != want.Pos.Y {
			t.Fatalf("request %d: batched result %+v != direct %+v", i, results[i], want)
		}
	}
	passes, rows := s.metrics.BatchStats("localize")
	if rows != n {
		t.Fatalf("batcher saw %d rows, want %d", rows, n)
	}
	if passes >= n {
		t.Fatalf("no coalescing: %d passes for %d concurrent requests", passes, n)
	}
	t.Logf("coalesced %d requests into %d forward passes", n, passes)
}

func TestBundleRoundTrip(t *testing.T) {
	fixtures(t)
	dir := t.TempDir()
	man := Manifest{Kind: KindWiFi, WiFi: &WiFiBundle{Plan: "ipin", Dataset: tinyWiFiDatasetCfg(), Config: wifiCfg}}
	if err := WriteBundle(dir, "rt", man, func(f *os.File) error { return wifiModel.Save(f) }); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBundle(filepath.Join(dir, "rt"))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != "rt" || loaded.Kind != KindWiFi || loaded.WiFi == nil {
		t.Fatalf("bad loaded model %+v", loaded)
	}
	for _, smp := range wifiDS.Test[:5] {
		if got, want := loaded.WiFi.Predict(smp.Features), wifiModel.Predict(smp.Features); got != want {
			t.Fatalf("restored bundle predicts %+v, original %+v", got, want)
		}
	}
}

// writeImmediateLifecycle marks a bundle for direct activation on load
// (lifecycle.json immediate), restoring the pre-lifecycle swap behavior
// for tests that pin it.
func writeImmediateLifecycle(t *testing.T, bundleDir string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(bundleDir, lifecycleFile), []byte(`{"immediate": true}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

// tinyWiFiDatasetCfg mirrors the fixture's dataset spec for manifests.
func tinyWiFiDatasetCfg() dataset.WiFiConfig {
	dcfg := dataset.SmallIPINConfig()
	dcfg.NumWAPs = 16
	dcfg.RefSpacing = 8
	dcfg.SamplesPerRef = 3
	dcfg.TestSamplesPerRef = 1
	dcfg.Seed = 11
	return dcfg
}

func TestRegistryHotReload(t *testing.T) {
	fixtures(t)
	dir := t.TempDir()
	dcfg := tinyWiFiDatasetCfg()
	man := Manifest{Kind: KindWiFi, WiFi: &WiFiBundle{Plan: "ipin", Dataset: dcfg, Config: wifiCfg}}
	if err := WriteBundle(dir, "m", man, func(f *os.File) error { return wifiModel.Save(f) }); err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry(dir, t.Logf)
	if loaded, _, err := reg.Reload(); err != nil || loaded != 1 {
		t.Fatalf("initial reload: loaded=%d err=%v", loaded, err)
	}
	gen1, ok := reg.Get("m")
	if !ok || gen1.Generation != 1 {
		t.Fatalf("generation after first load: %+v", gen1)
	}

	// Unchanged bundle must not reload.
	if loaded, _, err := reg.Reload(); err != nil || loaded != 0 {
		t.Fatalf("idempotent reload: loaded=%d err=%v", loaded, err)
	}

	// Publish new weights under the same name (a differently-seeded
	// training run) and bump mtimes past filesystem granularity.
	cfg2 := wifiCfg
	cfg2.Seed = 99
	model2 := core.TrainWiFi(wifiDS, cfg2)
	man2 := man
	man2.WiFi = &WiFiBundle{Plan: "ipin", Dataset: dcfg, Config: cfg2}
	if err := WriteBundle(dir, "m", man2, func(f *os.File) error { return model2.Save(f) }); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(2 * time.Second)
	for _, f := range []string{"manifest.json", "weights.gob"} {
		if err := os.Chtimes(filepath.Join(dir, "m", f), future, future); err != nil {
			t.Fatal(err)
		}
	}

	// A changed bundle of a served name enters SHADOW: the active
	// generation keeps answering traffic untouched.
	if loaded, _, err := reg.Reload(); err != nil || loaded != 1 {
		t.Fatalf("hot reload: loaded=%d err=%v", loaded, err)
	}
	active, _ := reg.Get("m")
	if active.Generation != 1 || active.WiFi != gen1.WiFi || active.Stage != StageActive {
		t.Fatalf("active after shadow publish: gen=%d stage=%s", active.Generation, active.Stage)
	}
	staged, ok := reg.Staged("m")
	if !ok || staged.Generation != 2 || staged.Stage != StageShadow {
		t.Fatalf("staged after publish: ok=%v %+v", ok, staged)
	}
	if staged.WiFi == gen1.WiFi {
		t.Fatal("shadow generation must be a new model instance")
	}

	// The same shadow bundle must not reload again.
	if loaded, _, err := reg.Reload(); err != nil || loaded != 0 {
		t.Fatalf("idempotent shadow reload: loaded=%d err=%v", loaded, err)
	}

	// Promote shadow → canary → active through the single transition
	// func: the canary takes over traffic atomically and gen1 retires.
	if err := reg.Transition("m", StageCanary, "test"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Transition("m", StageActive, "test"); err != nil {
		t.Fatal(err)
	}
	gen2, _ := reg.Get("m")
	if gen2.Generation != 2 || gen2.Stage != StageActive {
		t.Fatalf("generation after promotion: gen=%d stage=%s, want gen=2 active", gen2.Generation, gen2.Stage)
	}
	if gen2.WiFi == gen1.WiFi {
		t.Fatal("promotion must swap in the new model instance")
	}
	if gen1.Stage != StageRetired {
		t.Fatalf("old active stage after promotion: %s, want retired", gen1.Stage)
	}
	if _, ok := reg.Staged("m"); ok {
		t.Fatal("promotion must clear the staged slot")
	}

	// Removing the bundle dir drops the model.
	if err := os.RemoveAll(filepath.Join(dir, "m")); err != nil {
		t.Fatal(err)
	}
	if _, removed, err := reg.Reload(); err != nil || removed != 1 {
		t.Fatalf("removal: removed=%d err=%v", removed, err)
	}
	if _, ok := reg.Get("m"); ok {
		t.Fatal("removed bundle must leave the registry")
	}
}

func TestRegistryKeepsServingOnBrokenBundle(t *testing.T) {
	fixtures(t)
	dir := t.TempDir()
	man := Manifest{Kind: KindWiFi, WiFi: &WiFiBundle{Plan: "ipin", Dataset: tinyWiFiDatasetCfg(), Config: wifiCfg}}
	if err := WriteBundle(dir, "m", man, func(f *os.File) error { return wifiModel.Save(f) }); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(dir, t.Logf)
	reg.Reload()

	// Corrupt the weights; the old generation must keep serving.
	future := time.Now().Add(2 * time.Second)
	if err := os.WriteFile(filepath.Join(dir, "m", "weights.gob"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	os.Chtimes(filepath.Join(dir, "m", "weights.gob"), future, future)
	if loaded, removed, err := reg.Reload(); err != nil || loaded != 0 || removed != 0 {
		t.Fatalf("broken bundle: loaded=%d removed=%d err=%v", loaded, removed, err)
	}
	m, ok := reg.Get("m")
	if !ok || m.Generation != 1 {
		t.Fatal("previous generation must keep serving after a broken publish")
	}
}

// TestRegistryBrokenBundleLogsOncePerGeneration pins the reload backoff:
// a persistently corrupt bundle is loaded (and logged) once, then left
// alone until its bytes change on disk — no per-poll log spam, no
// per-poll rebuild of a bundle that cannot have healed.
func TestRegistryBrokenBundleLogsOncePerGeneration(t *testing.T) {
	fixtures(t)
	dir := t.TempDir()
	man := Manifest{Kind: KindWiFi, WiFi: &WiFiBundle{Plan: "ipin", Dataset: tinyWiFiDatasetCfg(), Config: wifiCfg}}
	if err := WriteBundle(dir, "m", man, func(f *os.File) error { return wifiModel.Save(f) }); err != nil {
		t.Fatal(err)
	}

	// Republishes in this test pin the pre-lifecycle direct-swap path.
	writeImmediateLifecycle(t, filepath.Join(dir, "m"))

	var mu sync.Mutex
	var failLogs int
	logf := func(format string, args ...any) {
		mu.Lock()
		if strings.Contains(fmt.Sprintf(format, args...), "keeps serving") {
			failLogs++
		}
		mu.Unlock()
		t.Logf(format, args...)
	}
	reg := NewRegistry(dir, logf)
	reg.Reload()

	corrupt := func(payload string, offset time.Duration) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, "m", "weights.gob"), []byte(payload), 0o644); err != nil {
			t.Fatal(err)
		}
		stamp := time.Now().Add(offset)
		if err := os.Chtimes(filepath.Join(dir, "m", "weights.gob"), stamp, stamp); err != nil {
			t.Fatal(err)
		}
	}
	corrupt("garbage", 2*time.Second)

	// Many polls over one broken generation: exactly one log line.
	for i := 0; i < 5; i++ {
		if loaded, removed, err := reg.Reload(); err != nil || loaded != 0 || removed != 0 {
			t.Fatalf("poll %d: loaded=%d removed=%d err=%v", i, loaded, removed, err)
		}
	}
	if failLogs != 1 {
		t.Fatalf("broken generation logged %d times, want once", failLogs)
	}

	// A DIFFERENT broken publish (new stamp) is a new generation: one
	// more log line, and still only one across further polls.
	corrupt("other garbage", 4*time.Second)
	for i := 0; i < 3; i++ {
		reg.Reload()
	}
	if failLogs != 2 {
		t.Fatalf("second broken generation logged %d times total, want 2", failLogs)
	}

	// A healthy republish loads immediately and resets the backoff.
	if err := WriteBundle(dir, "m", man, func(f *os.File) error { return wifiModel.Save(f) }); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(6 * time.Second)
	for _, f := range []string{"manifest.json", "weights.gob"} {
		if err := os.Chtimes(filepath.Join(dir, "m", f), future, future); err != nil {
			t.Fatal(err)
		}
	}
	if loaded, _, err := reg.Reload(); err != nil || loaded != 1 {
		t.Fatalf("healthy republish: loaded=%d err=%v", loaded, err)
	}
	m, ok := reg.Get("m")
	if !ok || m.Generation != 2 {
		t.Fatalf("republish generation %+v, want 2", m)
	}
	// And a later corruption logs again (the failed stamp was cleared).
	corrupt("garbage 3", 8*time.Second)
	reg.Reload()
	reg.Reload()
	if failLogs != 3 {
		t.Fatalf("post-recovery corruption logged %d times total, want 3", failLogs)
	}
}
