package serve

// This file is the shadow-evaluation half of the deployment pipeline:
// feeding staged (shadow/canary) model generations real traffic without
// ever letting them answer it, and scoring every live generation
// against the ground truth that re-anchor fixes provide.
//
// Two signals accumulate into a staged generation's GenStats:
//
//   - MIRRORING: a deterministic 1-in-N sample of localize/track
//     requests is replayed through the staged generation after the
//     active generation has already answered the user. The replay rides
//     the same micro-batchers under a generation-qualified queue key
//     (genKey), so mirrored rows coalesce into their own forward passes
//     — the active's batches never grow — and runs in a bounded pool of
//     background goroutines, so a slow staged model sheds mirrors
//     (counted as drops) instead of backing up the request path. The
//     recorded divergence is the mean distance between the staged and
//     active predictions for the same inputs.
//
//   - RE-ANCHOR SCORING: when a session fuses an absolute fix, the gap
//     between each generation's prediction and the fix measures real
//     model error with no held-out set (the NObLe loop's free labels).
//     The active IMU's dead-reckoned estimate is scored synchronously
//     (it is already computed); the staged IMU decodes the same feature
//     window asynchronously; a staged WiFi generation localizes the
//     fix's own fingerprint. Scoring runs on every fix regardless of
//     the mirror sampling rate — fixes are rare and are the only
//     ground-truth signal.
//
// Nothing here fails a user request: mirror errors and shed mirrors
// are counted on the staged generation and otherwise dropped.

import (
	"context"
	"time"

	"noble/internal/core"
	"noble/internal/geo"
	"noble/internal/imu"
	"noble/internal/serve/session"
)

const (
	// mirrorInFlightCap bounds concurrent background mirror/score
	// submissions; beyond it mirrors are shed and counted.
	mirrorInFlightCap = 64
	// mirrorTimeout bounds one background mirror submission.
	mirrorTimeout = 2 * time.Second
)

// shouldMirror deterministically samples every mirrorEvery-th request
// (a shared atomic counter, so the rate holds across goroutines).
func (e *Engine) shouldMirror() bool {
	if e.mirrorEvery <= 0 {
		return false
	}
	return e.mirrorSeq.Add(1)%e.mirrorEvery == 0
}

// acquireMirrorSlot claims an in-flight slot or sheds the mirror.
func (e *Engine) acquireMirrorSlot(st *Model) bool {
	select {
	case e.mirrorSlots <- struct{}{}:
		return true
	default:
		st.Stats.Drop()
		return false
	}
}

// mirrorLocalize replays a sampled localize request through the staged
// generation of the same name, off the request path, and records the
// positional divergence from the primary (active) predictions.
func (e *Engine) mirrorLocalize(name string, rows [][]float64, primary []core.WiFiPrediction) {
	if e.mirrorEvery <= 0 || len(rows) == 0 {
		return
	}
	st, ok := e.reg.Staged(name)
	if !ok || st.WiFi == nil || st.WiFi.InputDim() != len(rows[0]) {
		return
	}
	if !e.shouldMirror() || !e.acquireMirrorSlot(st) {
		return
	}
	prim := make([]geo.Point, len(primary))
	for i := range primary {
		prim[i] = primary[i].Pos
	}
	key := genKey(name, st.Generation)
	go func() {
		defer func() { <-e.mirrorSlots }()
		ctx, cancel := context.WithTimeout(context.Background(), mirrorTimeout)
		defer cancel()
		preds, err := e.wifiBatcher.Submit(ctx, key, rows)
		if err != nil || len(preds) != len(prim) {
			st.Stats.Drop()
			return
		}
		var sum float64
		for i := range preds {
			sum += distM(preds[i].Pos.X, preds[i].Pos.Y, prim[i].X, prim[i].Y)
		}
		st.Stats.RecordMirror(len(preds), sum/float64(len(preds)))
	}()
}

// mirrorTrack replays a sampled track request through the staged IMU
// generation, recording end-position divergence from the primary.
func (e *Engine) mirrorTrack(name string, paths []imu.Path, primary []core.IMUPrediction) {
	if e.mirrorEvery <= 0 || len(paths) == 0 {
		return
	}
	st, ok := e.reg.Staged(name)
	if !ok || st.IMU == nil {
		return
	}
	segDim, maxLen := st.IMU.SegmentDim(), st.IMU.MaxLen()
	for _, p := range paths {
		if len(p.Features) != p.NumSegments*segDim || p.NumSegments > maxLen {
			return // staged generation has a different feature layout
		}
	}
	if !e.shouldMirror() || !e.acquireMirrorSlot(st) {
		return
	}
	prim := make([]geo.Point, len(primary))
	for i := range primary {
		prim[i] = primary[i].End
	}
	key := genKey(name, st.Generation)
	go func() {
		defer func() { <-e.mirrorSlots }()
		ctx, cancel := context.WithTimeout(context.Background(), mirrorTimeout)
		defer cancel()
		preds, err := e.imuBatcher.Submit(ctx, key, paths)
		if err != nil || len(preds) != len(prim) {
			st.Stats.Drop()
			return
		}
		var sum float64
		for i := range preds {
			sum += distM(preds[i].End.X, preds[i].End.Y, prim[i].X, prim[i].Y)
		}
		st.Stats.RecordMirror(len(preds), sum/float64(len(preds)))
	}()
}

// scoreReAnchor scores every live generation against an absolute fix
// about to be fused into sess. Caller holds the session lock; the fix
// has not yet re-anchored the tracker, so the tracker state still holds
// the dead-reckoned window the fix will correct.
func (e *Engine) scoreReAnchor(sess *session.Session, fixPos geo.Point, wifiModel string, fingerprint []float64) {
	ts := sess.Tracker.State()
	if len(ts.Segments) > 0 {
		// Active IMU: its committed estimate decoded this exact window,
		// so the gap to the fix is its live error, free of charge.
		if am, ok := e.reg.Get(sess.Model); ok && am.IMU != nil && am.Stats != nil {
			am.Stats.RecordScore(distM(ts.Est.End.X, ts.Est.End.Y, fixPos.X, fixPos.Y))
		}
		e.scoreStagedIMU(sess.Model, ts, fixPos)
	}
	if len(fingerprint) > 0 && wifiModel != "" {
		e.scoreStagedWiFi(wifiModel, fingerprint, fixPos)
	}
}

// scoreStagedIMU decodes the session's current feature window through
// the staged IMU generation and scores its end against the fix. The
// window (captured under the session lock) is self-contained plain
// data, so the decode runs asynchronously like any mirror.
func (e *Engine) scoreStagedIMU(model string, ts core.TrackerState, fixPos geo.Point) {
	st, ok := e.reg.Staged(model)
	if !ok || st.IMU == nil {
		return
	}
	segDim := st.IMU.SegmentDim()
	if segDim != ts.SegDim || len(ts.Anchors) == 0 {
		return
	}
	n := len(ts.Segments) / segDim
	if n == 0 || n > st.IMU.MaxLen() {
		return
	}
	if !e.acquireMirrorSlot(st) {
		return
	}
	// The windowed path decodes from the anchor before its oldest
	// segment — the same shape the active's estimate came from.
	path := imu.Path{Start: ts.Anchors[0], NumSegments: n, Features: ts.Segments}
	key := genKey(model, st.Generation)
	go func() {
		defer func() { <-e.mirrorSlots }()
		ctx, cancel := context.WithTimeout(context.Background(), mirrorTimeout)
		defer cancel()
		preds, err := e.imuBatcher.Submit(ctx, key, []imu.Path{path})
		if err != nil || len(preds) == 0 {
			st.Stats.Drop()
			return
		}
		st.Stats.RecordScore(distM(preds[0].End.X, preds[0].End.Y, fixPos.X, fixPos.Y))
	}()
}

// scoreStagedWiFi localizes a fix's fingerprint through the staged WiFi
// generation and scores it against the fix the active produced. (The
// active WiFi generation is not scored here: the fix IS its prediction,
// so its gap is zero by construction — the comparator falls back to
// mirror divergence for WiFi deployments.)
func (e *Engine) scoreStagedWiFi(model string, fingerprint []float64, fixPos geo.Point) {
	st, ok := e.reg.Staged(model)
	if !ok || st.WiFi == nil || st.WiFi.InputDim() != len(fingerprint) {
		return
	}
	if !e.acquireMirrorSlot(st) {
		return
	}
	key := genKey(model, st.Generation)
	go func() {
		defer func() { <-e.mirrorSlots }()
		ctx, cancel := context.WithTimeout(context.Background(), mirrorTimeout)
		defer cancel()
		preds, err := e.wifiBatcher.Submit(ctx, key, [][]float64{fingerprint})
		if err != nil || len(preds) == 0 {
			st.Stats.Drop()
			return
		}
		st.Stats.RecordScore(distM(preds[0].Pos.X, preds[0].Pos.Y, fixPos.X, fixPos.Y))
	}()
}
