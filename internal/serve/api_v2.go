package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"noble/internal/geo"
	"noble/internal/obs"
)

// The /v2 wire protocol: same inference surface as /v1 over the same
// Engine, plus the serving-protocol features a device fleet needs to
// evolve against:
//
//   - Structured errors: every failure body is
//     {"error":{"code":"...","message":"...","request_id":"..."}} with a
//     machine-readable code (see errors.go), so clients branch on the
//     failure class instead of pattern-matching free text.
//   - Server-assigned request IDs: every response carries X-Request-Id
//     (and error envelopes echo it in the body), and the total assigned
//     is exported on /metrics — a cheap correlation handle for fleet
//     debugging.
//   - Per-request deadlines: X-Deadline-Ms (header) or deadline_ms
//     (body field) bound how long a request may wait end-to-end,
//     including its time queued in the micro-batcher; an expired request
//     is dropped from the batch queue without consuming forward-pass
//     rows and answered 504/deadline_exceeded.
//   - NDJSON streaming tracking: POST /v2/track/stream keeps one
//     connection per device, one JSON line per IMU segment in, one
//     decoded estimate line out.

// v2Error is the structured error object inside the /v2 envelope.
type v2Error struct {
	Code      Code   `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}

// v2Envelope is the /v2 error body.
type v2Envelope struct {
	Error v2Error `json:"error"`
}

// writeEnvelope writes a structured /v2 error response.
func writeEnvelope(w http.ResponseWriter, reqID string, err error) {
	e := AsError(err)
	if reqID != "" {
		w.Header().Set("X-Request-Id", reqID)
	}
	writeJSON(w, e.Status, v2Envelope{Error: v2Error{Code: e.Code, Message: e.Message, RequestID: reqID}})
}

// bodyError classifies a request-body read/decode failure: an oversized
// body keeps its 413, anything else is the client's malformed 400.
func bodyError(err error, format string, args ...any) *Error {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return errf(CodeBodyTooLarge, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", maxBodyBytes)
	}
	return errf(CodeBadBody, http.StatusBadRequest, format, args...)
}

// decodeStrictV2 decodes a size-capped JSON body into v, rejecting
// trailing garbage, returning the typed error instead of writing it.
//
//vet:strictdecode-impl
func decodeStrictV2(w http.ResponseWriter, r *http.Request, v any) *Error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		return bodyError(err, "decoding request: %v", err)
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return bodyError(err, "trailing data after JSON body")
	}
	return nil
}

// requestCtx derives the per-request context: the effective deadline is
// the stricter of the X-Deadline-Ms header and the body's deadline_ms
// field (either may be absent). A malformed header is rejected rather
// than silently ignored — a device that thinks it set a deadline must
// not wait forever.
func requestCtx(r *http.Request, bodyMs int64) (context.Context, context.CancelFunc, *Error) {
	ms := int64(0)
	if h := r.Header.Get("X-Deadline-Ms"); h != "" {
		v, err := strconv.ParseInt(h, 10, 64)
		if err != nil || v <= 0 {
			return nil, nil, errf(CodeBadRequest, http.StatusBadRequest,
				"invalid X-Deadline-Ms %q: want a positive integer of milliseconds", h)
		}
		ms = v
	}
	if bodyMs < 0 {
		return nil, nil, errf(CodeBadRequest, http.StatusBadRequest,
			"invalid deadline_ms %d: want a positive integer of milliseconds", bodyMs)
	}
	if bodyMs > 0 && (ms == 0 || bodyMs < ms) {
		ms = bodyMs
	}
	if ms == 0 {
		return r.Context(), func() {}, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
	return ctx, cancel, nil
}

// routesV2 installs the /v2 handlers.
func (s *Server) routesV2() {
	s.mux.HandleFunc("POST /v2/localize", s.instrument("v2_localize", s.gate(s.handleLocalizeV2)))
	s.mux.HandleFunc("POST /v2/track", s.instrument("v2_track", s.gate(s.handleTrackV2)))
	s.mux.HandleFunc("POST /v2/track/stream", s.instrument("v2_track_stream", s.gate(s.handleTrackStream)))
	s.mux.HandleFunc("POST /v2/sessions/{id}/segments", s.instrument("v2_sessions", s.gate(s.handleSessionSegmentsV2)))
	s.mux.HandleFunc("GET /v2/sessions/{id}", s.instrument("v2_sessions_get", s.handleSessionGetV2))
	s.mux.HandleFunc("DELETE /v2/sessions/{id}", s.instrument("v2_sessions_delete", s.handleSessionDeleteV2))
	s.mux.HandleFunc("GET /v2/models", s.instrument("v2_models", s.handleModelsV2))
	s.mux.HandleFunc("GET /v2/health", s.instrument("v2_health", s.handleHealthV2))
}

// localizeRequestV2 is POST /v2/localize: the /v1 shape plus an optional
// per-request deadline.
type localizeRequestV2 struct {
	LocalizeRequest
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// localizeResponseV2 answers /v2/localize.
type localizeResponseV2 struct {
	RequestID string     `json:"request_id"`
	Model     string     `json:"model"`
	Results   []Position `json:"results"`
}

func (s *Server) handleLocalizeV2(w http.ResponseWriter, r *http.Request) {
	reqID := s.engine.NextRequestID()
	obs.SetRequestID(r.Context(), reqID)
	// Localize is the production hot path on /v2 exactly as on /v1: the
	// hand-rolled parser/encoder (fastjson.go) carries the fleet load,
	// with encoding/json as the behavior-defining fallback.
	dec := obs.Begin(r.Context(), obs.StageDecode)
	//vet:ignore strictdecode -- localize fast path: the body is read whole for the hand-rolled fastjson parser; MaxBytesReader keeps the 413 cap and bodyError keeps the typed mapping (pinned by the golden-file tests)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		dec.End()
		writeEnvelope(w, reqID, bodyError(err, "reading request: %v", err))
		return
	}
	var req localizeRequestV2
	if !parseLocalizeRequestV2(body, &req) {
		req = localizeRequestV2{}
		if err := json.Unmarshal(body, &req); err != nil {
			dec.End()
			writeEnvelope(w, reqID, errf(CodeBadBody, http.StatusBadRequest, "decoding request: %v", err))
			return
		}
	}
	dec.End()
	ctx, cancel, e := requestCtx(r, req.DeadlineMs)
	if e != nil {
		writeEnvelope(w, reqID, e)
		return
	}
	defer cancel()
	preds, err := s.engine.Localize(ctx, LocalizeQuery{Model: req.Model, Fingerprints: req.Fingerprints})
	if err != nil {
		writeEnvelope(w, reqID, err)
		return
	}
	enc := obs.Begin(r.Context(), obs.StageEncode)
	resp := LocalizeResponse{Model: req.Model, Results: make([]Position, len(preds))}
	for i, p := range preds {
		resp.Results[i] = Position{X: p.Pos.X, Y: p.Pos.Y, Class: p.Class, Building: p.Building, Floor: p.Floor}
	}
	w.Header().Set("X-Request-Id", reqID)
	w.Header().Set("Content-Type", "application/json")
	w.Write(appendLocalizeResponseV2(nil, reqID, &resp))
	enc.End()
}

// trackRequestV2 is POST /v2/track.
type trackRequestV2 struct {
	TrackRequest
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// trackResponseV2 answers /v2/track.
type trackResponseV2 struct {
	RequestID string        `json:"request_id"`
	Model     string        `json:"model"`
	Results   []TrackResult `json:"results"`
}

func (s *Server) handleTrackV2(w http.ResponseWriter, r *http.Request) {
	reqID := s.engine.NextRequestID()
	obs.SetRequestID(r.Context(), reqID)
	dec := obs.Begin(r.Context(), obs.StageDecode)
	var req trackRequestV2
	if e := decodeStrictV2(w, r, &req); e != nil {
		dec.End()
		writeEnvelope(w, reqID, e)
		return
	}
	dec.End()
	ctx, cancel, e := requestCtx(r, req.DeadlineMs)
	if e != nil {
		writeEnvelope(w, reqID, e)
		return
	}
	defer cancel()
	q := TrackQuery{Model: req.Model, Paths: make([]PathQuery, len(req.Paths))}
	for i, p := range req.Paths {
		q.Paths[i] = PathQuery{Start: geo.Point{X: p.Start.X, Y: p.Start.Y}, Features: p.Features}
	}
	preds, err := s.engine.Track(ctx, q)
	if err != nil {
		writeEnvelope(w, reqID, err)
		return
	}
	enc := obs.Begin(r.Context(), obs.StageEncode)
	resp := trackResponseV2{RequestID: reqID, Model: req.Model, Results: make([]TrackResult, len(preds))}
	for i, p := range preds {
		resp.Results[i] = TrackResult{
			End:          XY{X: p.End.X, Y: p.End.Y},
			Class:        p.Class,
			Displacement: XY{X: p.Displacement.X, Y: p.Displacement.Y},
		}
	}
	w.Header().Set("X-Request-Id", reqID)
	writeJSON(w, http.StatusOK, resp)
	enc.End()
}

// sessionSegmentsRequestV2 is POST /v2/sessions/{id}/segments.
type sessionSegmentsRequestV2 struct {
	SessionSegmentsRequest
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// sessionResponseV2 answers the /v2 session endpoints. On a mid-request
// inference failure it carries status 500 with Error set (structured)
// and Results holding the steps that DID commit, mirroring the /v1
// partial-commit contract.
type sessionResponseV2 struct {
	RequestID  string              `json:"request_id"`
	Session    string              `json:"session"`
	Model      string              `json:"model"`
	Created    bool                `json:"created,omitempty"`
	ReAnchored bool                `json:"re_anchored,omitempty"`
	Anchor     *XY                 `json:"anchor,omitempty"`
	Steps      int                 `json:"steps"`
	Position   XY                  `json:"position"`
	Class      int                 `json:"class"`
	Traveled   XY                  `json:"traveled"`
	Results    []SessionStepResult `json:"results,omitempty"`
	Error      *v2Error            `json:"error,omitempty"`
}

// sessionResponseV2Of maps an Engine session state onto the /v2 shape.
func sessionResponseV2Of(reqID string, st SessionState) sessionResponseV2 {
	v1 := sessionResponse(st)
	return sessionResponseV2{
		RequestID:  reqID,
		Session:    v1.Session,
		Model:      v1.Model,
		Created:    v1.Created,
		ReAnchored: v1.ReAnchored,
		Anchor:     v1.Anchor,
		Steps:      v1.Steps,
		Position:   v1.Position,
		Class:      v1.Class,
		Traveled:   v1.Traveled,
		Results:    v1.Results,
	}
}

func (s *Server) handleSessionSegmentsV2(w http.ResponseWriter, r *http.Request) {
	reqID := s.engine.NextRequestID()
	obs.SetRequestID(r.Context(), reqID)
	id := r.PathValue("id")
	dec := obs.Begin(r.Context(), obs.StageDecode)
	var req sessionSegmentsRequestV2
	if e := decodeStrictV2(w, r, &req); e != nil {
		dec.End()
		writeEnvelope(w, reqID, e)
		return
	}
	dec.End()
	ctx, cancel, e := requestCtx(r, req.DeadlineMs)
	if e != nil {
		writeEnvelope(w, reqID, e)
		return
	}
	defer cancel()
	st, err := s.engine.AppendSegments(ctx, segmentQuery(id, &req.SessionSegmentsRequest))
	if err != nil {
		if e := AsError(err); st.Session != "" {
			// Partial commit: the committed prefix rides along with the
			// structured error, under the error's own status (500 for a
			// failed pass, 504 when the deadline expired mid-append).
			resp := sessionResponseV2Of(reqID, st)
			resp.Error = &v2Error{Code: e.Code, Message: e.Message, RequestID: reqID}
			w.Header().Set("X-Request-Id", reqID)
			writeJSON(w, e.Status, resp)
			return
		}
		writeEnvelope(w, reqID, err)
		return
	}
	enc := obs.Begin(r.Context(), obs.StageEncode)
	w.Header().Set("X-Request-Id", reqID)
	writeJSON(w, http.StatusOK, sessionResponseV2Of(reqID, st))
	enc.End()
}

func (s *Server) handleSessionGetV2(w http.ResponseWriter, r *http.Request) {
	reqID := s.engine.NextRequestID()
	st, err := s.engine.Session(r.PathValue("id"))
	if err != nil {
		writeEnvelope(w, reqID, err)
		return
	}
	w.Header().Set("X-Request-Id", reqID)
	writeJSON(w, http.StatusOK, sessionResponseV2Of(reqID, st))
}

func (s *Server) handleSessionDeleteV2(w http.ResponseWriter, r *http.Request) {
	reqID := s.engine.NextRequestID()
	id := r.PathValue("id")
	if err := s.engine.DeleteSession(id); err != nil {
		writeEnvelope(w, reqID, err)
		return
	}
	w.Header().Set("X-Request-Id", reqID)
	writeJSON(w, http.StatusOK, map[string]any{"request_id": reqID, "session": id, "deleted": true})
}

// handleModelsV2 is lifecycle-aware: unlike /v1/models (active
// generations only, legacy shape), it lists every live generation —
// staged shadow/canary candidates included — each with its lifecycle
// block (stage, target, promotion policy, and the live evaluation
// evidence the controller weighs).
func (s *Server) handleModelsV2(w http.ResponseWriter, r *http.Request) {
	reqID := s.engine.NextRequestID()
	w.Header().Set("X-Request-Id", reqID)
	writeJSON(w, http.StatusOK, map[string]any{"request_id": reqID, "models": s.engine.ModelsLifecycle()})
}

// healthResponseV2 answers /v2/health.
type healthResponseV2 struct {
	RequestID     string `json:"request_id"`
	Status        string `json:"status"`
	Models        int    `json:"models"`
	Batching      bool   `json:"batching"`
	Sessions      int    `json:"sessions"`
	UptimeSeconds int64  `json:"uptime_seconds"`
	Draining      bool   `json:"draining,omitempty"`
}

func (s *Server) handleHealthV2(w http.ResponseWriter, r *http.Request) {
	reqID := s.engine.NextRequestID()
	h := s.engine.Health()
	w.Header().Set("X-Request-Id", reqID)
	writeJSON(w, http.StatusOK, healthResponseV2{
		RequestID:     reqID,
		Status:        h.Status,
		Models:        h.Models,
		Batching:      h.Batching,
		Sessions:      h.Sessions,
		UptimeSeconds: int64(h.Uptime.Seconds()),
		Draining:      h.Draining,
	})
}

// streamOpen is the first NDJSON line of a /v2/track/stream connection:
// a session request plus an optional session name. Without one the
// server runs the stream on an ephemeral session (named after the
// request ID) that is deleted when the connection ends.
type streamOpen struct {
	Session string `json:"session,omitempty"`
	SessionSegmentsRequest
}

// streamLine is one NDJSON response line: the decoded state after the
// corresponding input line, correlated by 1-based Seq. A line-level
// failure carries Error (with any partially committed steps alongside)
// and terminates the stream.
type streamLine struct {
	Seq int `json:"seq"`
	sessionResponseV2
}

// maxStreamLineBytes caps one NDJSON input line. A stream is long-lived
// by design, so the total body is unbounded; the per-line cap matches
// the per-request cap everywhere else.
const maxStreamLineBytes = maxBodyBytes

// handleTrackStream runs the NDJSON streaming-tracking protocol: the
// device sends one JSON object per line (the first may create/name the
// session, every line may carry segments and WiFi fixes) and receives
// one decoded estimate line per input line, flushed immediately, on a
// single connection.
func (s *Server) handleTrackStream(w http.ResponseWriter, r *http.Request) {
	reqID := s.engine.NextRequestID()
	obs.SetRequestID(r.Context(), reqID)
	ctx, cancel, e := requestCtx(r, 0)
	if e != nil {
		writeEnvelope(w, reqID, e)
		return
	}
	defer cancel()

	w.Header().Set("X-Request-Id", reqID)
	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	// The stream interleaves reads of the request body with writes of
	// the response on one HTTP/1.1 connection; without full-duplex mode
	// the server holds all output until the request body is drained,
	// which would deadlock an interactive device. Best-effort: writers
	// that do not support it (HTTP/2, test recorders) are already
	// effectively full-duplex or in-memory.
	rc.EnableFullDuplex()
	// Commit the response headers before reading any input so a
	// streaming client's Do() returns immediately and it can drive the
	// connection interactively (send a line, read a line).
	w.WriteHeader(http.StatusOK)
	rc.Flush()
	enc := json.NewEncoder(w)
	writeLine := func(line streamLine) {
		enc.Encode(line)
		rc.Flush()
	}
	failLine := func(seq int, st SessionState, err error) {
		e := AsError(err)
		line := streamLine{Seq: seq}
		line.sessionResponseV2 = sessionResponseV2Of(reqID, st)
		line.Error = &v2Error{Code: e.Code, Message: e.Message, RequestID: reqID}
		writeLine(line)
	}

	sc := newLineScanner(r.Body)
	var (
		sessID    string
		ephemeral bool
		seq       int
	)
	defer func() {
		if ephemeral && sessID != "" {
			s.engine.DeleteSession(sessID)
		}
	}()
	for {
		line, err := sc.next()
		if err == io.EOF {
			return
		}
		seq++
		if err != nil {
			failLine(seq, SessionState{}, bodyError(err, "reading stream line %d: %v", seq, err))
			return
		}
		var req SessionSegmentsRequest
		if seq == 1 {
			var open streamOpen
			if err := json.Unmarshal(line, &open); err != nil {
				failLine(seq, SessionState{}, errf(CodeBadBody, http.StatusBadRequest, "decoding stream line %d: %v", seq, err))
				return
			}
			sessID = open.Session
			if sessID == "" {
				sessID = "stream-" + reqID
				ephemeral = true
			}
			req = open.SessionSegmentsRequest
		} else if err := json.Unmarshal(line, &req); err != nil {
			failLine(seq, SessionState{}, errf(CodeBadBody, http.StatusBadRequest, "decoding stream line %d: %v", seq, err))
			return
		}
		st, err := s.engine.AppendSegments(ctx, segmentQuery(sessID, &req))
		if err != nil {
			failLine(seq, st, err)
			return
		}
		line2 := streamLine{Seq: seq}
		line2.sessionResponseV2 = sessionResponseV2Of(reqID, st)
		writeLine(line2)
	}
}

// lineScanner yields non-empty NDJSON lines with a per-line byte cap
// (the stream body as a whole is unbounded by design).
type lineScanner struct {
	br *bufio.Reader
}

// newLineScanner builds a scanner over r.
func newLineScanner(r io.Reader) *lineScanner {
	return &lineScanner{br: bufio.NewReaderSize(r, 32<<10)}
}

// next returns the next non-empty line (without the trailing newline),
// io.EOF at end of stream, or an error (including oversized lines).
func (l *lineScanner) next() ([]byte, error) {
	var buf []byte
	for {
		chunk, err := l.br.ReadSlice('\n')
		buf = append(buf, chunk...)
		if len(buf) > maxStreamLineBytes {
			return nil, errf(CodeBodyTooLarge, http.StatusRequestEntityTooLarge,
				"stream line exceeds %d bytes", maxStreamLineBytes)
		}
		switch {
		case err == nil, errors.Is(err, io.EOF):
			line := bytes.TrimSpace(buf)
			if len(line) > 0 {
				return line, nil
			}
			if errors.Is(err, io.EOF) {
				return nil, io.EOF
			}
			buf = buf[:0] // blank line: keep reading
		case errors.Is(err, bufio.ErrBufferFull):
			continue // line longer than the reader buffer: accumulate
		default:
			return nil, err
		}
	}
}
