package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"noble/internal/core"
)

// Model is one registered inference target: exactly one of WiFi or IMU is
// set, matching Kind.
type Model struct {
	Name string
	Kind string
	WiFi *core.WiFiModel
	IMU  *core.IMUModel

	// Generation counts how many times this name has been (re)loaded;
	// LoadedAt stamps the last swap.
	Generation int
	LoadedAt   time.Time
}

// ModelInfo is the JSON-facing summary of a registered model.
type ModelInfo struct {
	Name       string `json:"name"`
	Kind       string `json:"kind"`
	Precision  string `json:"precision"` // "fp64" or "int8"
	Classes    int    `json:"classes"`
	FLOPs      int64  `json:"flops"`
	Generation int    `json:"generation"`
	LoadedAt   string `json:"loaded_at"`

	// Wi-Fi only.
	InputDim  int `json:"input_dim,omitempty"`
	Buildings int `json:"buildings,omitempty"`
	Floors    int `json:"floors,omitempty"`

	// IMU only.
	MaxSegments int `json:"max_segments,omitempty"`
	SegmentDim  int `json:"segment_dim,omitempty"`
}

// Info summarizes the model.
func (m *Model) Info() ModelInfo {
	info := ModelInfo{
		Name:       m.Name,
		Kind:       m.Kind,
		Generation: m.Generation,
		LoadedAt:   m.LoadedAt.UTC().Format(time.RFC3339),
	}
	switch {
	case m.WiFi != nil:
		info.Precision = m.WiFi.Precision()
		info.Classes = m.WiFi.Classes()
		info.FLOPs = m.WiFi.FLOPs()
		info.InputDim = m.WiFi.InputDim()
		info.Buildings = m.WiFi.NumBuildings()
		info.Floors = m.WiFi.NumFloors()
	case m.IMU != nil:
		info.Precision = m.IMU.Precision()
		info.Classes = m.IMU.Classes()
		info.FLOPs = m.IMU.FLOPs()
		info.MaxSegments = m.IMU.MaxLen()
		info.SegmentDim = m.IMU.SegmentDim()
	}
	return info
}

// bundleStamp fingerprints a whole bundle directory for change
// detection: one sorted line per regular payload file (name, size,
// mtime). Fingerprinting EVERY payload file — not just manifest and
// weights — matters for multi-file bundles: republishing only the
// calibration artifact of an int8 bundle must register as a change, or
// the watcher would keep serving stale scales (and the failed-load
// backoff would never retry a bundle fixed by rewriting one side file).
type bundleStamp string

// Registry holds the live models. Lookups take a read lock; reloads build
// replacement models entirely off the request path and swap them in under
// a write lock, so a hot reload is atomic from a request's point of view.
type Registry struct {
	dir  string
	logf func(format string, args ...any)

	mu     sync.RWMutex
	models map[string]*Model
	stamps map[string]bundleStamp // only names loaded from disk
	failed map[string]bundleStamp // last load failure per name (reload backoff)
}

// NewRegistry returns a registry over a bundle directory. dir may be empty
// for a purely programmatic registry (tests, demo mode). logf defaults to
// log.Printf.
func NewRegistry(dir string, logf func(format string, args ...any)) *Registry {
	if logf == nil {
		logf = log.Printf
	}
	return &Registry{
		dir:    dir,
		logf:   logf,
		models: make(map[string]*Model),
		stamps: make(map[string]bundleStamp),
		failed: make(map[string]bundleStamp),
	}
}

// Add registers (or replaces) a model programmatically.
func (r *Registry) Add(m *Model) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.models[m.Name]; ok {
		m.Generation = old.Generation + 1
	} else {
		m.Generation = 1
	}
	if m.LoadedAt.IsZero() {
		m.LoadedAt = time.Now()
	}
	r.models[m.Name] = m
}

// Get resolves a model by name.
func (r *Registry) Get(name string) (*Model, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.models[name]
	return m, ok
}

// Len returns the number of registered models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models)
}

// List returns model summaries sorted by name.
func (r *Registry) List() []ModelInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ModelInfo, 0, len(r.models))
	for _, m := range r.models {
		out = append(out, m.Info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Reload scans the bundle directory and loads new or changed bundles,
// dropping entries whose directories disappeared. Each bundle is rebuilt
// outside the lock; a bundle that fails to load is logged ONCE per
// distinct broken generation — its stamp is remembered and the bundle is
// not re-read until it changes on disk — and its previous generation (if
// any) keeps serving. It returns how many bundles were loaded or
// replaced and how many were removed.
func (r *Registry) Reload() (loaded, removed int, err error) {
	if r.dir == "" {
		return 0, 0, nil
	}
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return 0, 0, err
	}
	onDisk := make(map[string]bool)
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		dir := filepath.Join(r.dir, name)
		stamp, ok := stampBundle(dir)
		if !ok {
			continue // no manifest yet (or mid-write); not a bundle
		}
		onDisk[name] = true

		r.mu.RLock()
		prev, seen := r.stamps[name]
		badPrev, wasBad := r.failed[name]
		r.mu.RUnlock()
		if seen && prev == stamp {
			continue
		}
		if wasBad && badPrev == stamp {
			// This exact broken generation already failed and was logged;
			// re-loading it every poll would spam the log and burn CPU
			// rebuilding a bundle that cannot change without its stamp
			// changing. A republish (new stamp) retries immediately.
			continue
		}

		model, lerr := LoadBundle(dir)
		if lerr != nil {
			r.mu.Lock()
			r.failed[name] = stamp
			r.mu.Unlock()
			r.logf("%v (previous generation keeps serving; will not retry until the bundle changes)", lerr)
			continue
		}
		// A publish renames weights into place before the manifest, so a
		// scan racing a republish can read an old manifest next to new
		// weights. If the bundle changed underneath the load, discard
		// the result and leave the stamp unrecorded — the next poll sees
		// the settled bundle and loads it coherently.
		if after, ok := stampBundle(dir); !ok || after != stamp {
			r.logf("serve: bundle %s changed during load, retrying next poll", name)
			continue
		}
		r.Add(model)
		r.mu.Lock()
		r.stamps[name] = stamp
		delete(r.failed, name) // healthy again; future failures log anew
		r.mu.Unlock()
		loaded++
	}
	// Drop disk-backed models whose bundle vanished. Programmatic models
	// (no stamp) are untouched.
	r.mu.Lock()
	for name := range r.stamps {
		if !onDisk[name] {
			delete(r.stamps, name)
			delete(r.models, name)
			removed++
		}
	}
	for name := range r.failed {
		if !onDisk[name] {
			delete(r.failed, name)
		}
	}
	r.mu.Unlock()
	return loaded, removed, nil
}

// FailedBundles returns the names of bundles whose latest on-disk
// generation failed to load (sorted). A non-empty result means the
// directory contains bundles the registry refused — the signal
// `noble-serve -check-bundles` and the CI accuracy gate exit non-zero
// on.
func (r *Registry) FailedBundles() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.failed))
	for name := range r.failed {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// WritePrometheus emits one info-style gauge per registered model, so
// scrapes can tell which precision tier (and generation) each bundle is
// serving.
func (r *Registry) WritePrometheus(w io.Writer) {
	infos := r.List()
	fmt.Fprintln(w, "# HELP noble_model_info Registered models: precision tier and generation per bundle (value is always 1).")
	fmt.Fprintln(w, "# TYPE noble_model_info gauge")
	for _, info := range infos {
		fmt.Fprintf(w, "noble_model_info{name=%q,kind=%q,precision=%q,generation=\"%d\"} 1\n",
			info.Name, info.Kind, info.Precision, info.Generation)
	}
}

// Watch polls Reload at the given interval until ctx is canceled.
func (r *Registry) Watch(ctx context.Context, interval time.Duration) {
	if interval <= 0 || r.dir == "" {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if loaded, removed, err := r.Reload(); err != nil {
				r.logf("serve: reload scan: %v", err)
			} else if loaded+removed > 0 {
				r.logf("serve: hot reload: %d bundle(s) loaded, %d removed", loaded, removed)
			}
		}
	}
}

// stampBundle fingerprints every regular file in a bundle dir
// (in-progress ".tmp-*" temporaries excluded). ok is false when the dir
// is not (yet) a complete bundle: no manifest, or the manifest's
// declared weights file is missing.
func stampBundle(dir string) (bundleStamp, bool) {
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return "", false
	}
	weights := defaultWeightsFile
	var man Manifest
	if json.Unmarshal(raw, &man) == nil && man.Weights != "" {
		weights = man.Weights
	}
	if _, err := os.Stat(filepath.Join(dir, weights)); err != nil {
		return "", false
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", false
	}
	var b strings.Builder
	for _, e := range entries { // ReadDir sorts by name
		if !e.Type().IsRegular() || strings.HasPrefix(e.Name(), ".tmp-") {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			return "", false // racing a republish; settle next poll
		}
		fmt.Fprintf(&b, "%s\x00%d\x00%d\n", e.Name(), fi.Size(), fi.ModTime().UnixNano())
	}
	return bundleStamp(b.String()), true
}
