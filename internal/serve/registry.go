package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"noble/internal/core"
)

// Stage is a model generation's position in the deployment pipeline.
// New disk generations of an already-served name enter at StageShadow,
// are promoted to StageCanary once they have mirrored enough traffic,
// and reach StageActive (the only stage that answers user requests)
// through the atomic swap in Transition; a generation that regresses or
// is superseded ends at StageRetired. Every stage mutation in this
// package routes through applyStage (enforced by the stagegate vet
// rule), so there is exactly one place a generation can change state.
//
//vet:stagegate
type Stage string

const (
	// StageShadow mirrors sampled traffic and accumulates live error
	// scores; it never serves a user-visible response.
	StageShadow Stage = "shadow"
	// StageCanary is a promotion candidate under policy evaluation; it
	// still only sees mirrored traffic, but a regression here triggers
	// automatic rollback instead of an indefinite hold.
	StageCanary Stage = "canary"
	// StageActive serves user traffic.
	StageActive Stage = "active"
	// StageRetired is terminal: rolled back, superseded, or replaced.
	StageRetired Stage = "retired"
)

// legalTransition is the stage machine's edge set for staged
// generations. Activation of a brand-new name (From == "") and the
// demotion of a replaced active are handled inside Transition and
// placement, not by callers.
func legalTransition(from, to Stage) bool {
	switch from {
	case StageShadow:
		return to == StageCanary || to == StageRetired
	case StageCanary:
		return to == StageActive || to == StageRetired
	}
	return false
}

// LifecyclePolicy is a bundle's promotion contract, declared in its
// lifecycle.json sidecar. Zero fields take the defaults.
type LifecyclePolicy struct {
	// MinShadowRequests is how many mirrored rows plus re-anchor scores
	// a shadow generation must accumulate before it may become a canary.
	MinShadowRequests int64 `json:"min_shadow_requests"`
	// MinCanaryRequests is the evaluation window for promotion to
	// active, in the same units.
	MinCanaryRequests int64 `json:"min_canary_requests"`
	// MaxErrorDeltaM bounds how much worse (meters) the staged
	// generation's live error — re-anchor gap when fixes flow, mirror
	// divergence from the active otherwise — may be than the active's.
	MaxErrorDeltaM float64 `json:"max_error_delta_m"`
	// MaxP99DeltaMS bounds the staged generation's per-row forward-pass
	// p99 regression versus the active, in milliseconds.
	MaxP99DeltaMS float64 `json:"max_p99_delta_ms"`
}

// DefaultLifecyclePolicy is applied where a bundle declares none.
func DefaultLifecyclePolicy() LifecyclePolicy {
	return LifecyclePolicy{
		MinShadowRequests: 200,
		MinCanaryRequests: 200,
		MaxErrorDeltaM:    1.0,
		MaxP99DeltaMS:     5.0,
	}
}

// withDefaults fills zero fields from DefaultLifecyclePolicy.
func (p LifecyclePolicy) withDefaults() LifecyclePolicy {
	d := DefaultLifecyclePolicy()
	if p.MinShadowRequests <= 0 {
		p.MinShadowRequests = d.MinShadowRequests
	}
	if p.MinCanaryRequests <= 0 {
		p.MinCanaryRequests = d.MinCanaryRequests
	}
	if p.MaxErrorDeltaM <= 0 {
		p.MaxErrorDeltaM = d.MaxErrorDeltaM
	}
	if p.MaxP99DeltaMS <= 0 {
		p.MaxP99DeltaMS = d.MaxP99DeltaMS
	}
	return p
}

// LifecycleSpec is the lifecycle.json sidecar: the stage the bundle
// wants to reach and the policy gating each promotion. The file is part
// of the bundle stamp, so editing it re-registers the bundle.
type LifecycleSpec struct {
	// Target caps automatic promotion: "shadow" holds for manual
	// promotion, "canary" auto-advances out of shadow then holds,
	// "active" (the default) runs the full pipeline.
	Target string `json:"target"`
	// Immediate bypasses the pipeline entirely: the generation swaps
	// straight to active on load, the pre-lifecycle hot-reload behavior.
	// The escape hatch for hotfixes and for tooling that republishes
	// bundles it has already validated.
	Immediate bool            `json:"immediate"`
	Policy    LifecyclePolicy `json:"policy"`
}

// lifecycleFile is the per-bundle sidecar filename.
const lifecycleFile = "lifecycle.json"

// readLifecycleSpec loads a bundle's lifecycle sidecar; a missing file
// means the default full-auto pipeline.
func readLifecycleSpec(dir string) (LifecycleSpec, error) {
	spec := LifecycleSpec{Target: string(StageActive)}
	raw, err := os.ReadFile(filepath.Join(dir, lifecycleFile))
	if os.IsNotExist(err) {
		return spec, nil
	}
	if err != nil {
		return spec, fmt.Errorf("serve: reading %s: %w", lifecycleFile, err)
	}
	if err := json.Unmarshal(raw, &spec); err != nil {
		return spec, fmt.Errorf("serve: parsing %s: %w", lifecycleFile, err)
	}
	switch Stage(spec.Target) {
	case StageShadow, StageCanary, StageActive:
	case "":
		spec.Target = string(StageActive)
	default:
		return spec, fmt.Errorf("serve: %s: unknown target stage %q", lifecycleFile, spec.Target)
	}
	return spec, nil
}

// Model is one registered inference target: exactly one of WiFi or IMU is
// set, matching Kind. A Model is one *generation* of a name — the
// registry holds at most two per name (the active one serving traffic
// and one staged shadow/canary under evaluation).
type Model struct {
	Name string
	Kind string
	WiFi *core.WiFiModel
	IMU  *core.IMUModel

	// Generation counts how many times this name has been (re)loaded;
	// LoadedAt stamps the load.
	Generation int
	LoadedAt   time.Time

	// Lifecycle state. BundleID is the content fingerprint of the
	// on-disk bundle (empty for programmatic models) — the identity that
	// survives restarts. Stage/StageSince are written only by applyStage.
	Stage      Stage
	StageSince time.Time
	BundleID   string
	// TargetStage is configuration, not live state: the stage the
	// bundle's lifecycle.json allows this generation to reach.
	//
	//vet:stagegate-exempt
	TargetStage Stage
	Policy      LifecyclePolicy

	// Stats accumulates this generation's live evaluation evidence:
	// mirrored rows, re-anchor scores, divergence, pass latency.
	Stats *GenStats
}

// ModelInfo is the JSON-facing summary of a registered model.
type ModelInfo struct {
	Name       string `json:"name"`
	Kind       string `json:"kind"`
	Precision  string `json:"precision"` // "fp64" or "int8"
	Classes    int    `json:"classes"`
	FLOPs      int64  `json:"flops"`
	Generation int    `json:"generation"`
	LoadedAt   string `json:"loaded_at"`
	Stage      string `json:"stage"`
	BundleID   string `json:"bundle_id,omitempty"`

	// Wi-Fi only.
	InputDim  int `json:"input_dim,omitempty"`
	Buildings int `json:"buildings,omitempty"`
	Floors    int `json:"floors,omitempty"`

	// IMU only.
	MaxSegments int `json:"max_segments,omitempty"`
	SegmentDim  int `json:"segment_dim,omitempty"`

	// Lifecycle carries the live evaluation evidence and promotion
	// policy; populated by ListLifecycle (the /v2 and /debug views), not
	// by the legacy /v1 listing.
	Lifecycle *LifecycleInfo `json:"lifecycle,omitempty"`
}

// LifecycleInfo is one generation's deployment state as JSON: where it
// is in the pipeline, what it is allowed to reach, and the evidence the
// promotion controller weighs.
type LifecycleInfo struct {
	Stage           string          `json:"stage"`
	Target          string          `json:"target"`
	Since           string          `json:"since"`
	MirroredRows    int64           `json:"mirrored_rows"`
	ReAnchorScores  int64           `json:"reanchor_scores"`
	MeanErrorM      float64         `json:"mean_error_m"`
	MeanDivergenceM float64         `json:"mean_divergence_m"`
	P99PassMS       float64         `json:"p99_pass_ms"`
	DroppedMirrors  int64           `json:"dropped_mirrors"`
	Policy          LifecyclePolicy `json:"policy"`
}

// Info summarizes the model.
func (m *Model) Info() ModelInfo {
	info := ModelInfo{
		Name:       m.Name,
		Kind:       m.Kind,
		Generation: m.Generation,
		LoadedAt:   m.LoadedAt.UTC().Format(time.RFC3339),
		Stage:      string(m.Stage),
		BundleID:   m.BundleID,
	}
	switch {
	case m.WiFi != nil:
		info.Precision = m.WiFi.Precision()
		info.Classes = m.WiFi.Classes()
		info.FLOPs = m.WiFi.FLOPs()
		info.InputDim = m.WiFi.InputDim()
		info.Buildings = m.WiFi.NumBuildings()
		info.Floors = m.WiFi.NumFloors()
	case m.IMU != nil:
		info.Precision = m.IMU.Precision()
		info.Classes = m.IMU.Classes()
		info.FLOPs = m.IMU.FLOPs()
		info.MaxSegments = m.IMU.MaxLen()
		info.SegmentDim = m.IMU.SegmentDim()
	}
	return info
}

// lifecycleInfo builds the full lifecycle view of this generation.
func (m *Model) lifecycleInfo() ModelInfo {
	info := m.Info()
	snap := m.Stats.Snapshot()
	info.Lifecycle = &LifecycleInfo{
		Stage:           string(m.Stage),
		Target:          string(m.TargetStage),
		Since:           snap.Since.UTC().Format(time.RFC3339),
		MirroredRows:    snap.Mirrored,
		ReAnchorScores:  snap.Scores,
		MeanErrorM:      snap.MeanErrorM,
		MeanDivergenceM: snap.MeanDivergenceM,
		P99PassMS:       snap.P99PassMS,
		DroppedMirrors:  snap.Dropped,
		Policy:          m.Policy,
	}
	return info
}

// InputDimFor returns the model's input width for mirror-compatibility
// checks: fingerprint width for WiFi, segment width for IMU.
func (m *Model) inputWidth() int {
	switch {
	case m.WiFi != nil:
		return m.WiFi.InputDim()
	case m.IMU != nil:
		return m.IMU.SegmentDim()
	}
	return 0
}

// bundleStamp fingerprints a whole bundle directory for change
// detection: one sorted line per regular payload file (name, size,
// mtime). Fingerprinting EVERY payload file — not just manifest and
// weights — matters for multi-file bundles: republishing only the
// calibration artifact of an int8 bundle (or editing lifecycle.json)
// must register as a change, or the watcher would keep serving stale
// scales (and the failed-load backoff would never retry a bundle fixed
// by rewriting one side file).
type bundleStamp string

// bundleIDFor reduces a stamp to the short content fingerprint used as
// the generation's durable identity in WAL lifecycle events.
func bundleIDFor(stamp bundleStamp) string {
	h := fnv.New64a()
	io.WriteString(h, string(stamp))
	return strconv.FormatUint(h.Sum64(), 16)
}

// TransitionEvent describes one stage change, delivered to the
// OnTransition hook (which the engine uses to journal WAL lifecycle
// events). From is empty for a generation's initial placement.
type TransitionEvent struct {
	Model    string
	BundleID string
	From     Stage
	To       Stage
	Reason   string
	Time     time.Time
}

// deployment is one name's live generations: the active one serving
// traffic and at most one staged shadow/canary under evaluation.
type deployment struct {
	active *Model
	staged *Model
	gens   int // per-name generation counter
}

// Registry holds the live models. Lookups take a read lock; reloads build
// replacement models entirely off the request path and place them in the
// deployment pipeline under a write lock, so a hot reload is atomic from
// a request's point of view and a new generation of an existing name
// starts in shadow rather than swapping in.
type Registry struct {
	dir  string
	logf func(format string, args ...any)

	mu        sync.RWMutex
	deps      map[string]*deployment
	stamps    map[string]bundleStamp // latest placed stamp per name (disk bundles only)
	failed    map[string]bundleStamp // last load failure per name (reload backoff)
	recovered map[string]Stage       // name+NUL+bundleID → stage recovered from the WAL
	counts    map[string]int64       // transition counter per model+NUL+to-stage
	// retiredDisk remembers, per name, a rolled-back bundle whose bytes
	// are still the name's on-disk publish. Its stamp stays recorded (so
	// Reload does not resurrect it) and compaction carries its retired
	// lifecycle event forward (so a restart does not either). Cleared
	// when new bytes are published.
	retiredDisk map[string]string

	// hookMu serializes OnTransition deliveries so journaled lifecycle
	// events keep transition order without holding mu across I/O.
	hookMu       sync.Mutex
	onTransition func(TransitionEvent)
}

// NewRegistry returns a registry over a bundle directory. dir may be empty
// for a purely programmatic registry (tests, demo mode). logf defaults to
// log.Printf.
func NewRegistry(dir string, logf func(format string, args ...any)) *Registry {
	if logf == nil {
		logf = log.Printf
	}
	return &Registry{
		dir:         dir,
		logf:        logf,
		deps:        make(map[string]*deployment),
		stamps:      make(map[string]bundleStamp),
		failed:      make(map[string]bundleStamp),
		recovered:   make(map[string]Stage),
		counts:      make(map[string]int64),
		retiredDisk: make(map[string]string),
	}
}

// SetOnTransition installs the stage-change hook (at most one; the
// engine uses it to journal WAL lifecycle events). Call before serving.
func (r *Registry) SetOnTransition(fn func(TransitionEvent)) {
	r.hookMu.Lock()
	defer r.hookMu.Unlock()
	r.onTransition = fn
}

// SetRecoveredStages seeds the stages recovered from the WAL (keyed
// name+NUL+bundleID, see RecoveredStages) so the first Reload after a
// restart re-places each on-disk bundle at the stage it held at the
// crash instead of re-running the pipeline from scratch.
func (r *Registry) SetRecoveredStages(stages map[string]Stage) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range stages {
		r.recovered[k] = v
	}
}

// recoveredKey builds the recovered-stage map key.
func recoveredKey(name, bundleID string) string { return name + "\x00" + bundleID }

// fire delivers transition events to the hook, in order, and logs them.
func (r *Registry) fire(evs []TransitionEvent) {
	if len(evs) == 0 {
		return
	}
	r.hookMu.Lock()
	defer r.hookMu.Unlock()
	for _, ev := range evs {
		from := string(ev.From)
		if from == "" {
			from = "(new)"
		}
		r.logf("serve: lifecycle: model %s bundle %s %s -> %s: %s", ev.Model, ev.BundleID, from, ev.To, ev.Reason)
		if r.onTransition != nil {
			r.onTransition(ev)
		}
	}
}

// applyStage performs the raw stage write for one generation and resets
// its evaluation stats (each stage is judged on its own window). This is
// the package's single stage-mutation point — the stagegate vet rule
// refuses Stage-field writes anywhere else.
//
//vet:stagegate-transition
func applyStage(m *Model, to Stage, now time.Time) {
	m.Stage = to
	m.StageSince = now
	if m.Stats != nil && to != StageRetired {
		m.Stats.reset(now)
	}
}

// noteTransitionLocked counts a transition for the Prometheus view and
// builds its event. Caller holds r.mu.
func (r *Registry) noteTransitionLocked(m *Model, from Stage, reason string, now time.Time) TransitionEvent {
	r.counts[m.Name+"\x00"+string(m.Stage)]++
	return TransitionEvent{
		Model:    m.Name,
		BundleID: m.BundleID,
		From:     from,
		To:       m.Stage,
		Reason:   reason,
		Time:     now,
	}
}

// Transition moves a name's staged generation to the given stage — the
// single entry point for every stage change after placement. Legal
// moves: shadow→canary, canary→active (the atomic swap: the old active
// retires and the canary takes over user traffic), and shadow/canary→
// retired (rollback or supersession). The promotion controller
// (internal/serve/lifecycle) is the policy-driven caller; the admin
// endpoints call it for manual overrides.
func (r *Registry) Transition(name string, to Stage, reason string) error {
	now := time.Now()
	r.mu.Lock()
	evs, toArchive, err := r.transitionLocked(name, to, reason, now)
	r.mu.Unlock()
	if toArchive != "" {
		r.archiveActive(name, toArchive)
	}
	r.fire(evs)
	return err
}

// transitionLocked applies one staged-generation transition under r.mu,
// returning the events to deliver and (for promotions) the bundle ID
// whose payload must be archived as the new on-disk active.
func (r *Registry) transitionLocked(name string, to Stage, reason string, now time.Time) ([]TransitionEvent, string, error) {
	dep := r.deps[name]
	if dep == nil || dep.staged == nil {
		return nil, "", fmt.Errorf("serve: model %q has no staged generation", name)
	}
	st := dep.staged
	from := st.Stage
	if !legalTransition(from, to) {
		return nil, "", fmt.Errorf("serve: model %q: illegal transition %s -> %s", name, from, to)
	}
	var evs []TransitionEvent
	var toArchive string
	switch to {
	case StageCanary, StageRetired:
		applyStage(st, to, now)
		evs = append(evs, r.noteTransitionLocked(st, from, reason, now))
		if to == StageRetired {
			dep.staged = nil
			if st.BundleID != "" && r.stamps[name] != "" {
				// The staged generation is always the name's latest disk
				// publish, so its rolled-back bytes are what is on disk now.
				r.retiredDisk[name] = st.BundleID
			}
		}
	case StageActive:
		if old := dep.active; old != nil {
			oldFrom := old.Stage
			applyStage(old, StageRetired, now)
			evs = append(evs, r.noteTransitionLocked(old, oldFrom, "superseded by promoted canary "+st.BundleID, now))
		}
		applyStage(st, StageActive, now)
		dep.active = st
		dep.staged = nil
		evs = append(evs, r.noteTransitionLocked(st, from, reason, now))
		if st.BundleID != "" && r.dir != "" {
			toArchive = st.BundleID
		}
	}
	return evs, toArchive, nil
}

// PromoteStaged advances a name's staged generation one stage (shadow→
// canary, canary→active) regardless of policy — the manual override
// behind `noble-serve -promote` and POST /admin/lifecycle/{model}/promote.
func (r *Registry) PromoteStaged(name, reason string) (Stage, error) {
	r.mu.RLock()
	dep := r.deps[name]
	var from Stage
	if dep != nil && dep.staged != nil {
		from = dep.staged.Stage
	}
	r.mu.RUnlock()
	var to Stage
	switch from {
	case StageShadow:
		to = StageCanary
	case StageCanary:
		to = StageActive
	default:
		return "", fmt.Errorf("serve: model %q has no promotable staged generation", name)
	}
	if err := r.Transition(name, to, reason); err != nil {
		return "", err
	}
	return to, nil
}

// RollbackStaged retires a name's staged generation — the manual
// override behind `noble-serve -rollback` and the admin endpoint.
func (r *Registry) RollbackStaged(name, reason string) error {
	return r.Transition(name, StageRetired, reason)
}

// Add registers (or replaces) a model programmatically, straight to
// active — the pre-lifecycle semantics tests, demo mode, and the bench
// rig rely on.
func (r *Registry) Add(m *Model) {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.prepare(m)
	dep := r.ensureDepLocked(m.Name)
	dep.gens++
	m.Generation = dep.gens
	if m.LoadedAt.IsZero() {
		m.LoadedAt = now
	}
	if old := dep.active; old != nil {
		applyStage(old, StageRetired, now)
	}
	applyStage(m, StageActive, now)
	dep.active = m
}

// AddStaged registers a staged generation programmatically at the given
// stage (shadow or canary) next to the name's current active — the
// seam tests and the bench rig's shadow-mirror scenario use to stage a
// generation without a bundle directory.
func (r *Registry) AddStaged(m *Model, stage Stage) error {
	if stage != StageShadow && stage != StageCanary {
		return fmt.Errorf("serve: AddStaged wants shadow or canary, got %q", stage)
	}
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	dep := r.deps[m.Name]
	if dep == nil || dep.active == nil {
		return fmt.Errorf("serve: staging %q without an active generation", m.Name)
	}
	r.prepare(m)
	dep.gens++
	m.Generation = dep.gens
	if m.LoadedAt.IsZero() {
		m.LoadedAt = now
	}
	if old := dep.staged; old != nil {
		applyStage(old, StageRetired, now)
	}
	applyStage(m, stage, now)
	dep.staged = m
	return nil
}

// prepare fills a model's lifecycle defaults.
func (r *Registry) prepare(m *Model) {
	if m.Stats == nil {
		m.Stats = newGenStats()
	}
	if m.TargetStage == "" {
		m.TargetStage = StageActive
	}
	m.Policy = m.Policy.withDefaults()
}

func (r *Registry) ensureDepLocked(name string) *deployment {
	dep := r.deps[name]
	if dep == nil {
		dep = &deployment{}
		r.deps[name] = dep
	}
	return dep
}

// Get resolves a name to its ACTIVE generation — the only one user
// traffic may be answered from.
func (r *Registry) Get(name string) (*Model, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	dep := r.deps[name]
	if dep == nil || dep.active == nil {
		return nil, false
	}
	return dep.active, true
}

// Staged resolves a name's staged (shadow or canary) generation, if any.
func (r *Registry) Staged(name string) (*Model, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	dep := r.deps[name]
	if dep == nil || dep.staged == nil {
		return nil, false
	}
	return dep.staged, true
}

// genKey builds the batcher queue key addressing one exact generation,
// so mirrored rows coalesce into their own passes instead of the
// active's. The NUL separator cannot appear in a model name that
// arrived as an HTTP path segment.
func genKey(name string, generation int) string {
	return name + "\x00" + strconv.Itoa(generation)
}

// splitGenKey parses a batcher queue key; ok is false for plain names.
func splitGenKey(key string) (name string, generation int, ok bool) {
	i := strings.IndexByte(key, 0)
	if i < 0 {
		return key, 0, false
	}
	gen, err := strconv.Atoi(key[i+1:])
	if err != nil {
		return key[:i], 0, false
	}
	return key[:i], gen, true
}

// ResolveGen resolves a batcher queue key: a plain name maps to the
// active generation (so batches formed across a promotion run on the
// newest active), a generation-qualified key maps to that exact live
// generation (active or staged) and misses once it is retired.
func (r *Registry) ResolveGen(key string) (*Model, bool) {
	name, gen, qualified := splitGenKey(key)
	if !qualified {
		return r.Get(name)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	dep := r.deps[name]
	if dep == nil {
		return nil, false
	}
	if dep.active != nil && dep.active.Generation == gen {
		return dep.active, true
	}
	if dep.staged != nil && dep.staged.Generation == gen {
		return dep.staged, true
	}
	return nil, false
}

// Len returns the number of names with an active generation.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, dep := range r.deps {
		if dep.active != nil {
			n++
		}
	}
	return n
}

// List returns active-generation summaries sorted by name — the user
// visible catalog (/v1/models).
func (r *Registry) List() []ModelInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ModelInfo, 0, len(r.deps))
	for _, dep := range r.deps {
		if dep.active != nil {
			out = append(out, dep.active.Info())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ListLifecycle returns the full deployment view: every live generation
// (active and staged) with its lifecycle evidence, sorted by name then
// generation. This backs /v2/models and the /debug/lifecycle view.
func (r *Registry) ListLifecycle() []ModelInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ModelInfo, 0, len(r.deps)*2)
	for _, dep := range r.deps {
		if dep.active != nil {
			out = append(out, dep.active.lifecycleInfo())
		}
		if dep.staged != nil {
			out = append(out, dep.staged.lifecycleInfo())
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Generation < out[j].Generation
	})
	return out
}

// GenStatus is one generation's deployment state as data — what the
// promotion controller weighs.
type GenStatus struct {
	Name       string
	Generation int
	BundleID   string
	Kind       string
	Stage      Stage
	Target     Stage
	Policy     LifecyclePolicy
	Stats      GenStatsSnapshot
}

// DeploymentStatus pairs a name's live generations.
type DeploymentStatus struct {
	Name   string
	Active *GenStatus
	Staged *GenStatus
}

func genStatus(m *Model) *GenStatus {
	if m == nil {
		return nil
	}
	return &GenStatus{
		Name:       m.Name,
		Generation: m.Generation,
		BundleID:   m.BundleID,
		Kind:       m.Kind,
		Stage:      m.Stage,
		Target:     m.TargetStage,
		Policy:     m.Policy,
		Stats:      m.Stats.Snapshot(),
	}
}

// Deployments snapshots every name's live generations, sorted by name.
func (r *Registry) Deployments() []DeploymentStatus {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]DeploymentStatus, 0, len(r.deps))
	for name, dep := range r.deps {
		out = append(out, DeploymentStatus{
			Name:   name,
			Active: genStatus(dep.active),
			Staged: genStatus(dep.staged),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Reload scans the bundle directory, loads new or changed bundles, and
// places each in the deployment pipeline: a brand-new name (or an
// `immediate` sidecar) activates directly; a changed bundle of a served
// name enters shadow; a bundle whose stage was recovered from the WAL
// resumes at that stage, with the previously-archived active restored
// next to it. Entries whose directories disappeared are dropped. Each
// bundle is rebuilt outside the lock; a bundle that fails to load is
// logged ONCE per distinct broken generation — its stamp is remembered
// and the bundle is not re-read until it changes on disk — and its
// previous generation (if any) keeps serving. It returns how many
// bundles were loaded or replaced and how many were removed.
func (r *Registry) Reload() (loaded, removed int, err error) {
	if r.dir == "" {
		return 0, 0, nil
	}
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return 0, 0, err
	}
	onDisk := make(map[string]bool)
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		dir := filepath.Join(r.dir, name)
		stamp, ok := stampBundle(dir)
		if !ok {
			continue // no manifest yet (or mid-write); not a bundle
		}
		onDisk[name] = true

		r.mu.RLock()
		prev, seen := r.stamps[name]
		badPrev, wasBad := r.failed[name]
		r.mu.RUnlock()
		if seen && prev == stamp {
			continue
		}
		if wasBad && badPrev == stamp {
			// This exact broken generation already failed and was logged;
			// re-loading it every poll would spam the log and burn CPU
			// rebuilding a bundle that cannot change without its stamp
			// changing. A republish (new stamp) retries immediately.
			continue
		}

		model, lerr := LoadBundle(dir)
		if lerr != nil {
			r.mu.Lock()
			r.failed[name] = stamp
			r.mu.Unlock()
			r.logf("%v (previous generation keeps serving; will not retry until the bundle changes)", lerr)
			continue
		}
		spec, serr := readLifecycleSpec(dir)
		if serr != nil {
			r.mu.Lock()
			r.failed[name] = stamp
			r.mu.Unlock()
			r.logf("serve: bundle %s: %v (previous generation keeps serving; will not retry until the bundle changes)", name, serr)
			continue
		}
		// A publish renames weights into place before the manifest, so a
		// scan racing a republish can read an old manifest next to new
		// weights. If the bundle changed underneath the load, discard
		// the result and leave the stamp unrecorded — the next poll sees
		// the settled bundle and loads it coherently.
		if after, ok := stampBundle(dir); !ok || after != stamp {
			r.logf("serve: bundle %s changed during load, retrying next poll", name)
			continue
		}
		r.place(name, model, spec, stamp)
		loaded++
	}
	// Drop disk-backed models whose bundle vanished. Programmatic models
	// (no stamp) are untouched.
	r.mu.Lock()
	for name := range r.stamps {
		if !onDisk[name] {
			delete(r.stamps, name)
			delete(r.deps, name)
			delete(r.retiredDisk, name)
			removed++
		}
	}
	for name := range r.failed {
		if !onDisk[name] {
			delete(r.failed, name)
		}
	}
	r.mu.Unlock()
	return loaded, removed, nil
}

// place installs a freshly-loaded bundle generation into its name's
// deployment, picking its entry stage, and fires the resulting
// transition events.
func (r *Registry) place(name string, m *Model, spec LifecycleSpec, stamp bundleStamp) {
	now := time.Now()
	m.BundleID = bundleIDFor(stamp)
	m.Policy = spec.Policy.withDefaults()
	m.TargetStage = Stage(spec.Target)
	m.Stats = newGenStats()
	m.LoadedAt = now

	// Consult the WAL-recovered stage before deciding placement; if the
	// crash left this exact bundle staged (or rolled back), the previous
	// active's payload lives in the bundle's .active archive — load it
	// outside the lock so it can serve alongside the resumed stage.
	r.mu.RLock()
	recStage, hasRec := r.recovered[recoveredKey(name, m.BundleID)]
	r.mu.RUnlock()
	var archived *Model
	if hasRec && recStage != StageActive {
		var aerr error
		archived, aerr = r.loadArchivedActive(name)
		if aerr != nil {
			r.logf("serve: bundle %s: recovered stage %s but no usable archived active (%v); activating the on-disk bundle instead", name, recStage, aerr)
			hasRec = false
		}
	}

	r.mu.Lock()
	evs, toArchive := r.placeLocked(name, m, recStage, hasRec, archived, spec.Immediate, stamp, now)
	r.mu.Unlock()
	if toArchive != "" {
		r.archiveActive(name, toArchive)
	}
	r.fire(evs)
}

// placeLocked decides and applies a loaded generation's entry stage
// under r.mu. It returns the transition events to deliver and the
// bundle ID to archive when this placement activated a disk bundle.
func (r *Registry) placeLocked(name string, m *Model, recStage Stage, hasRec bool, archived *Model, immediate bool, stamp bundleStamp, now time.Time) ([]TransitionEvent, string) {
	dep := r.ensureDepLocked(name)
	var evs []TransitionEvent
	var toArchive string
	// New bytes on disk supersede any rolled-back publish (the retired
	// branch below re-records itself).
	delete(r.retiredDisk, name)

	install := func(mm *Model, st Stage, reason string) {
		dep.gens++
		mm.Generation = dep.gens
		applyStage(mm, st, now)
		if st == StageActive {
			if old := dep.active; old != nil && old != mm {
				oldFrom := old.Stage
				applyStage(old, StageRetired, now)
				evs = append(evs, r.noteTransitionLocked(old, oldFrom, "replaced by "+mm.BundleID, now))
			}
			dep.active = mm
		} else {
			if old := dep.staged; old != nil && old != mm {
				oldFrom := old.Stage
				applyStage(old, StageRetired, now)
				evs = append(evs, r.noteTransitionLocked(old, oldFrom, "superseded by newer publish "+mm.BundleID, now))
			}
			dep.staged = mm
		}
		evs = append(evs, r.noteTransitionLocked(mm, "", reason, now))
	}

	switch {
	case hasRec && recStage == StageActive:
		install(m, StageActive, "recovered active stage from journal")
		toArchive = m.BundleID
	case hasRec && (recStage == StageShadow || recStage == StageCanary):
		install(archived, StageActive, "restored archived active alongside recovered "+string(recStage))
		install(m, recStage, "recovered "+string(recStage)+" stage from journal")
	case hasRec && recStage == StageRetired:
		// A rolled-back bundle must not resurrect; the archived active
		// serves, and the stamp below stops per-poll reloads of the
		// retired bytes.
		install(archived, StageActive, "restored archived active; on-disk bundle "+m.BundleID+" stays retired")
		r.retiredDisk[name] = m.BundleID
	case immediate || dep.active == nil:
		reason := "initial load"
		if immediate && dep.active != nil {
			reason = "immediate swap (lifecycle.json immediate)"
		}
		install(m, StageActive, reason)
		toArchive = m.BundleID
	default:
		install(m, StageShadow, "new generation of a served model enters shadow")
	}

	r.stamps[name] = stamp
	delete(r.failed, name) // healthy again; future failures log anew
	delete(r.recovered, recoveredKey(name, m.BundleID))
	return evs, toArchive
}

// RetiredDisk returns, per name, the bundle ID of a rolled-back publish
// whose bytes are still the name's on-disk state — what compaction
// carry-forward must keep recorded as retired.
func (r *Registry) RetiredDisk() map[string]string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]string, len(r.retiredDisk))
	for k, v := range r.retiredDisk {
		out[k] = v
	}
	return out
}

// FailedBundles returns the names of bundles whose latest on-disk
// generation failed to load (sorted). A non-empty result means the
// directory contains bundles the registry refused — the signal
// `noble-serve -check-bundles` and the CI accuracy gate exit non-zero
// on, and what the noble_registry_broken_bundles gauge counts.
func (r *Registry) FailedBundles() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.failed))
	for name := range r.failed {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// WritePrometheus emits the registry's deployment state: one info-style
// gauge per live generation (active and staged), the broken-bundle
// gauge, and the lifecycle evaluation series (stage-labeled re-anchor
// error histogram, mirror divergence, pass latency, transition counts).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	type gen struct {
		info ModelInfo
		snap GenStatsSnapshot
	}
	gens := make([]gen, 0, len(r.deps)*2)
	for _, dep := range r.deps {
		if dep.active != nil {
			gens = append(gens, gen{dep.active.Info(), dep.active.Stats.Snapshot()})
		}
		if dep.staged != nil {
			gens = append(gens, gen{dep.staged.Info(), dep.staged.Stats.Snapshot()})
		}
	}
	broken := len(r.failed)
	counts := make(map[string]int64, len(r.counts))
	for k, v := range r.counts {
		counts[k] = v
	}
	r.mu.RUnlock()
	sort.Slice(gens, func(i, j int) bool {
		if gens[i].info.Name != gens[j].info.Name {
			return gens[i].info.Name < gens[j].info.Name
		}
		return gens[i].info.Generation < gens[j].info.Generation
	})

	fmt.Fprintln(w, "# HELP noble_model_info Live model generations: precision tier, generation, and lifecycle stage per bundle (value is always 1).")
	fmt.Fprintln(w, "# TYPE noble_model_info gauge")
	for _, g := range gens {
		fmt.Fprintf(w, "noble_model_info{name=%q,kind=%q,precision=%q,generation=\"%d\",stage=%q} 1\n",
			g.info.Name, g.info.Kind, g.info.Precision, g.info.Generation, g.info.Stage)
	}

	fmt.Fprintln(w, "# HELP noble_registry_broken_bundles Bundle directories whose latest on-disk generation the registry refused to load.")
	fmt.Fprintln(w, "# TYPE noble_registry_broken_bundles gauge")
	fmt.Fprintf(w, "noble_registry_broken_bundles %d\n", broken)

	fmt.Fprintln(w, "# HELP noble_lifecycle_transitions_total Generation stage transitions, by model and destination stage.")
	fmt.Fprintln(w, "# TYPE noble_lifecycle_transitions_total counter")
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		model, to, _ := strings.Cut(k, "\x00")
		fmt.Fprintf(w, "noble_lifecycle_transitions_total{model=%q,to=%q} %d\n", model, to, counts[k])
	}

	fmt.Fprintln(w, "# HELP noble_lifecycle_mirrored_rows_total Rows mirrored through shadow/canary generations, by model and stage.")
	fmt.Fprintln(w, "# TYPE noble_lifecycle_mirrored_rows_total counter")
	for _, g := range gens {
		fmt.Fprintf(w, "noble_lifecycle_mirrored_rows_total{model=%q,stage=%q} %d\n", g.info.Name, g.info.Stage, g.snap.Mirrored)
	}

	fmt.Fprintln(w, "# HELP noble_lifecycle_reanchor_error_meters Live model error at WiFi re-anchor fixes (gap between the generation's prediction and the fix), by model and stage.")
	fmt.Fprintln(w, "# TYPE noble_lifecycle_reanchor_error_meters histogram")
	for _, g := range gens {
		var cum int64
		for i, le := range lifecycleErrorBuckets {
			cum += g.snap.ErrorHist[i]
			fmt.Fprintf(w, "noble_lifecycle_reanchor_error_meters_bucket{model=%q,stage=%q,le=\"%g\"} %d\n", g.info.Name, g.info.Stage, le, cum)
		}
		fmt.Fprintf(w, "noble_lifecycle_reanchor_error_meters_bucket{model=%q,stage=%q,le=\"+Inf\"} %d\n", g.info.Name, g.info.Stage, g.snap.Scores)
		fmt.Fprintf(w, "noble_lifecycle_reanchor_error_meters_sum{model=%q,stage=%q} %.6f\n", g.info.Name, g.info.Stage, g.snap.ErrorSumM)
		fmt.Fprintf(w, "noble_lifecycle_reanchor_error_meters_count{model=%q,stage=%q} %d\n", g.info.Name, g.info.Stage, g.snap.Scores)
	}

	fmt.Fprintln(w, "# HELP noble_lifecycle_divergence_meters Mirrored-prediction divergence from the active generation, by model and stage.")
	fmt.Fprintln(w, "# TYPE noble_lifecycle_divergence_meters summary")
	for _, g := range gens {
		fmt.Fprintf(w, "noble_lifecycle_divergence_meters_sum{model=%q,stage=%q} %.6f\n", g.info.Name, g.info.Stage, g.snap.DivergenceSumM)
		fmt.Fprintf(w, "noble_lifecycle_divergence_meters_count{model=%q,stage=%q} %d\n", g.info.Name, g.info.Stage, g.snap.DivergenceN)
	}

	fmt.Fprintln(w, "# HELP noble_lifecycle_pass_latency_ms Per-row forward-pass latency p99 over a sliding window, by model generation stage.")
	fmt.Fprintln(w, "# TYPE noble_lifecycle_pass_latency_ms gauge")
	for _, g := range gens {
		fmt.Fprintf(w, "noble_lifecycle_pass_latency_ms{model=%q,stage=%q,quantile=\"0.99\"} %.6f\n", g.info.Name, g.info.Stage, g.snap.P99PassMS)
	}

	fmt.Fprintln(w, "# HELP noble_lifecycle_dropped_mirrors_total Mirror submissions dropped by the in-flight cap or mirror failures, by model.")
	fmt.Fprintln(w, "# TYPE noble_lifecycle_dropped_mirrors_total counter")
	for _, g := range gens {
		if g.info.Stage == string(StageActive) {
			continue
		}
		fmt.Fprintf(w, "noble_lifecycle_dropped_mirrors_total{model=%q} %d\n", g.info.Name, g.snap.Dropped)
	}
}

// Watch polls Reload at the given interval until ctx is canceled. Each
// poll's broken-bundle state is surfaced through the
// noble_registry_broken_bundles gauge (backed by FailedBundles), not
// just the one-shot load-failure log line, so a stuck-broken canary
// stays visible to scrapes.
func (r *Registry) Watch(ctx context.Context, interval time.Duration) {
	if interval <= 0 || r.dir == "" {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if loaded, removed, err := r.Reload(); err != nil {
				r.logf("serve: reload scan: %v", err)
			} else if loaded+removed > 0 {
				r.logf("serve: hot reload: %d bundle(s) loaded, %d removed", loaded, removed)
			}
		}
	}
}

// stampBundle fingerprints every regular file in a bundle dir
// (in-progress ".tmp-*" temporaries excluded; the .active archive
// subdirectory is invisible, like any subdirectory). ok is false when
// the dir is not (yet) a complete bundle: no manifest, or the
// manifest's declared weights file is missing.
func stampBundle(dir string) (bundleStamp, bool) {
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return "", false
	}
	weights := defaultWeightsFile
	var man Manifest
	if json.Unmarshal(raw, &man) == nil && man.Weights != "" {
		weights = man.Weights
	}
	if _, err := os.Stat(filepath.Join(dir, weights)); err != nil {
		return "", false
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", false
	}
	var b strings.Builder
	for _, e := range entries { // ReadDir sorts by name
		if !e.Type().IsRegular() || strings.HasPrefix(e.Name(), ".tmp-") {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			return "", false // racing a republish; settle next poll
		}
		fmt.Fprintf(&b, "%s\x00%d\x00%d\n", e.Name(), fi.Size(), fi.ModTime().UnixNano())
	}
	return bundleStamp(b.String()), true
}

// --- activation archive ----------------------------------------------
//
// A name has exactly one bundle directory, so publishing a shadow
// generation overwrites the active generation's bytes on disk. To make
// staged deployments crash-safe, activating a disk bundle copies its
// payload into the bundle's .active/ subdirectory (invisible to
// stampBundle, which skips subdirectories). After a crash with a
// generation still staged (or freshly rolled back), Reload restores the
// archived payload as the serving active next to the resumed stage.

// activeArchiveDir is the per-bundle archive subdirectory.
const activeArchiveDir = ".active"

// archiveIDFile records the archived payload's bundle ID.
const archiveIDFile = "bundle.id"

// archiveActive copies the bundle's current payload files into its
// .active archive; a failure is logged, not fatal (the in-memory active
// keeps serving; only crash recovery of a staged state degrades).
func (r *Registry) archiveActive(name, bundleID string) {
	if r.dir == "" {
		return
	}
	src := filepath.Join(r.dir, name)
	dst := filepath.Join(src, activeArchiveDir)
	if raw, err := os.ReadFile(filepath.Join(dst, archiveIDFile)); err == nil && strings.TrimSpace(string(raw)) == bundleID {
		return // this exact payload is already archived
	}
	if err := copyBundlePayload(src, dst, bundleID); err != nil {
		r.logf("serve: archiving active payload of %s: %v", name, err)
	}
}

// copyBundlePayload copies every regular payload file of a bundle into
// dst and records the payload's bundle ID, each file written atomically.
func copyBundlePayload(src, dst, bundleID string) error {
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	for _, e := range entries {
		if !e.Type().IsRegular() || strings.HasPrefix(e.Name(), ".tmp-") {
			continue
		}
		in, err := os.Open(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		err = atomicWrite(filepath.Join(dst, e.Name()), func(f *os.File) error {
			_, cerr := io.Copy(f, in)
			return cerr
		})
		in.Close()
		if err != nil {
			return err
		}
	}
	return atomicWrite(filepath.Join(dst, archiveIDFile), func(f *os.File) error {
		_, err := io.WriteString(f, bundleID+"\n")
		return err
	})
}

// loadArchivedActive rebuilds the archived active generation of a name.
func (r *Registry) loadArchivedActive(name string) (*Model, error) {
	dir := filepath.Join(r.dir, name, activeArchiveDir)
	raw, err := os.ReadFile(filepath.Join(dir, archiveIDFile))
	if err != nil {
		return nil, fmt.Errorf("no archived active payload: %w", err)
	}
	m, err := LoadBundle(dir)
	if err != nil {
		return nil, fmt.Errorf("loading archived active payload: %w", err)
	}
	m.Name = name // the archive dir's base name is .active, not the model
	m.BundleID = strings.TrimSpace(string(raw))
	m.Policy = DefaultLifecyclePolicy()
	m.TargetStage = StageActive
	m.Stats = newGenStats()
	m.LoadedAt = time.Now()
	return m, nil
}

// --- per-generation evaluation stats ---------------------------------

// lifecycleErrorBuckets are the re-anchor error histogram's upper
// bounds, in meters (indoor scale: half a meter up to a wing of a
// building).
var lifecycleErrorBuckets = []float64{0.5, 1, 2, 4, 8, 16, 32}

// numErrorBuckets = len(lifecycleErrorBuckets) + 1 overflow; asserted in
// TestGenStats.
const numErrorBuckets = 8

// passLatencyWindow is the per-generation latency ring size (per-row
// forward-pass samples backing the p99 gauge).
const passLatencyWindow = 2048

// GenStats accumulates one generation's live evaluation evidence. All
// methods are safe for concurrent use; reset starts a fresh window on
// each stage entry so every stage is judged on its own evidence.
type GenStats struct {
	mu       sync.Mutex
	since    time.Time
	mirrored int64 // mirrored rows evaluated
	scores   int64 // re-anchor fixes scored
	scoreSum float64
	errHist  [numErrorBuckets]int64
	divSum   float64 // divergence vs the active's predictions, meters
	divN     int64
	dropped  int64     // mirror submissions dropped (cap or failure)
	lat      []float64 // per-row pass latency, ms, sliding ring
	latN     int64
}

func newGenStats() *GenStats {
	return &GenStats{since: time.Now(), lat: make([]float64, 0, passLatencyWindow)}
}

// reset starts a fresh evaluation window.
func (g *GenStats) reset(now time.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.since = now
	g.mirrored, g.scores, g.scoreSum = 0, 0, 0
	g.errHist = [numErrorBuckets]int64{}
	g.divSum, g.divN = 0, 0
	g.dropped = 0
	g.lat = g.lat[:0]
	g.latN = 0
}

// RecordMirror notes rows mirrored through this generation with their
// mean positional divergence (meters) from the active's predictions.
func (g *GenStats) RecordMirror(rows int, meanDivergenceM float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.mirrored += int64(rows)
	g.divSum += meanDivergenceM * float64(rows)
	g.divN += int64(rows)
}

// RecordScore notes one re-anchor score: the gap (meters) between this
// generation's prediction and the WiFi fix.
func (g *GenStats) RecordScore(errM float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.scores++
	g.scoreSum += errM
	g.errHist[errorBucket(errM)]++
}

// RecordPass notes one batched forward pass: per-row latency samples
// feed the p99 the promotion policy bounds.
func (g *GenStats) RecordPass(d time.Duration, rows int) {
	if rows <= 0 {
		return
	}
	perRowMS := d.Seconds() * 1e3 / float64(rows)
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.lat) < passLatencyWindow {
		g.lat = append(g.lat, perRowMS)
	} else {
		g.lat[g.latN%passLatencyWindow] = perRowMS
	}
	g.latN++
}

// Drop counts a mirror submission that was shed (in-flight cap) or
// failed.
func (g *GenStats) Drop() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.dropped++
}

func errorBucket(m float64) int {
	for i, le := range lifecycleErrorBuckets {
		if m <= le {
			return i
		}
	}
	return len(lifecycleErrorBuckets)
}

// GenStatsSnapshot is a point-in-time copy of one generation's
// evaluation evidence.
type GenStatsSnapshot struct {
	Since          time.Time
	Mirrored       int64
	Scores         int64
	ErrorSumM      float64
	ErrorHist      [numErrorBuckets]int64
	DivergenceSumM float64
	DivergenceN    int64
	Dropped        int64
	P99PassMS      float64

	MeanErrorM      float64
	MeanDivergenceM float64
}

// Samples is the evidence count promotion windows are measured in.
func (s GenStatsSnapshot) Samples() int64 { return s.Mirrored + s.Scores }

// Snapshot copies the current counters and derives the means and p99.
func (g *GenStats) Snapshot() GenStatsSnapshot {
	g.mu.Lock()
	snap := GenStatsSnapshot{
		Since:          g.since,
		Mirrored:       g.mirrored,
		Scores:         g.scores,
		ErrorSumM:      g.scoreSum,
		ErrorHist:      g.errHist,
		DivergenceSumM: g.divSum,
		DivergenceN:    g.divN,
		Dropped:        g.dropped,
	}
	lat := append([]float64(nil), g.lat...)
	g.mu.Unlock()
	if snap.Scores > 0 {
		snap.MeanErrorM = snap.ErrorSumM / float64(snap.Scores)
	}
	if snap.DivergenceN > 0 {
		snap.MeanDivergenceM = snap.DivergenceSumM / float64(snap.DivergenceN)
	}
	if len(lat) > 0 {
		sort.Float64s(lat)
		snap.P99PassMS = lat[int(0.99*float64(len(lat)-1))]
	}
	return snap
}

// distM is the planar distance between two points in meters.
func distM(ax, ay, bx, by float64) float64 {
	dx, dy := ax-bx, ay-by
	return math.Sqrt(dx*dx + dy*dy)
}
