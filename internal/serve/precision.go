package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"noble/internal/core"
	"noble/internal/dataset"
	"noble/internal/eval"
	"noble/internal/geo"
	"noble/internal/imu"
	"noble/internal/nn/qlinear"
)

// This file is the serving side of the quantized inference tier: the
// manifest precision block, the calibration artifact written next to the
// weights, and the publish-blocking accuracy gate. The gate runs twice
// per bundle lifetime — at train time (a bundle that fails is never
// published) and again at registry load (a bundle whose calibration was
// corrupted or hand-edited after publish is refused, and the previous
// generation keeps serving). Both checks recompute the fp64-vs-int8
// localization error from scratch on the held-out test split; the
// numbers recorded in calibration.json are provenance, not trusted
// input.

const (
	// DefaultErrorBudgetPct is the accuracy gate's default: quantization
	// may cost at most this much relative mean localization error.
	DefaultErrorBudgetPct = 2.0
	// MaxErrorBudgetPct caps manifest-declared budgets. A budget above
	// this is a hand-edited manifest trying to wave a broken calibration
	// through the gate, and is rejected outright.
	MaxErrorBudgetPct = 10.0

	// defaultCalibrationFile is the calibration artifact filename used
	// when the precision block omits one.
	defaultCalibrationFile = "calibration.json"

	// defaultCalibSamples caps how many held-out samples feed activation
	// range calibration; beyond a couple thousand rows the ranges are
	// stable and more data only slows publishing.
	defaultCalibSamples = 2048
)

// PrecisionBlock is the manifest's precision declaration. Absent (nil)
// means fp64 — every pre-existing bundle keeps loading unchanged.
type PrecisionBlock struct {
	Mode string `json:"mode"` // "fp64" or "int8"
	// Calibration names the calibration artifact inside the bundle
	// (default "calibration.json"). Only meaningful for int8.
	Calibration string `json:"calibration,omitempty"`
	// ErrorBudgetPct is the accuracy gate threshold: the maximum allowed
	// relative increase, in percent, of mean localization error under
	// int8. 0 means DefaultErrorBudgetPct.
	ErrorBudgetPct float64 `json:"error_budget_pct,omitempty"`
}

// budget validates and resolves the block's error budget.
func (p *PrecisionBlock) budget() (float64, error) {
	b := p.ErrorBudgetPct
	if b == 0 {
		return DefaultErrorBudgetPct, nil
	}
	if math.IsNaN(b) || b < 0 || b > MaxErrorBudgetPct {
		return 0, fmt.Errorf("serve: error_budget_pct %v out of range (0, %v]", b, MaxErrorBudgetPct)
	}
	return b, nil
}

// calibrationFile resolves the artifact filename.
func (p *PrecisionBlock) calibrationFile() string {
	if p.Calibration != "" {
		return p.Calibration
	}
	return defaultCalibrationFile
}

// CalibrationFile is the on-disk calibration artifact: the activation
// scales the quantized layers replay at load time, plus the gate
// evidence recorded when the bundle was published.
type CalibrationFile struct {
	Method     string  `json:"method"`               // "absmax" or "percentile"
	Percentile float64 `json:"percentile,omitempty"` // for method "percentile"
	Samples    int     `json:"samples"`              // calibration rows consumed

	// ActScales are the static per-layer activation scales, in the
	// model's canonical quantized-layer order (trunk, then heads).
	ActScales []float32 `json:"act_scales"`

	// Gate evidence from publish time (informational; the load-side gate
	// recomputes both sides rather than trusting these).
	FP64MeanErr float64 `json:"fp64_mean_err_m"`
	Int8MeanErr float64 `json:"int8_mean_err_m"`
	DeltaPct    float64 `json:"delta_pct"`
}

// QuantizeOptions configures the train-time calibration pass.
type QuantizeOptions struct {
	Method       string  // qlinear.CalibAbsMax (default) or qlinear.CalibPercentile
	Percentile   float64 // for CalibPercentile; default 99.9
	CalibSamples int     // max held-out rows for calibration (0 = default)
	BudgetPct    float64 // accuracy budget (0 = DefaultErrorBudgetPct)
}

func (o QuantizeOptions) calibrator() *qlinear.Calibrator {
	method := o.Method
	if method == "" {
		method = qlinear.CalibAbsMax
	}
	pct := o.Percentile
	if pct == 0 {
		pct = 99.9
	}
	return &qlinear.Calibrator{Method: method, Percentile: pct}
}

func (o QuantizeOptions) budget() (float64, error) {
	return (&PrecisionBlock{ErrorBudgetPct: o.BudgetPct}).budget()
}

func (o QuantizeOptions) samples() int {
	if o.CalibSamples > 0 {
		return o.CalibSamples
	}
	return defaultCalibSamples
}

// gateCheck applies the accuracy budget to a measured fp64/int8 error
// pair. A degenerate fp64 error of 0 gates on the absolute int8 error
// instead (any increase from exactly 0 would be an infinite relative
// delta).
func gateCheck(fpErr, int8Err, budgetPct float64) (deltaPct float64, err error) {
	if fpErr > 0 {
		deltaPct = (int8Err - fpErr) / fpErr * 100
	} else if int8Err > 0 {
		deltaPct = math.Inf(1)
	}
	if math.IsNaN(deltaPct) || deltaPct > budgetPct {
		return deltaPct, fmt.Errorf(
			"serve: int8 accuracy gate failed: mean error %.4f m (fp64) -> %.4f m (int8), delta %+.2f%% exceeds budget %.2f%%",
			fpErr, int8Err, deltaPct, budgetPct)
	}
	return deltaPct, nil
}

func wifiPositions(preds []core.WiFiPrediction) []geo.Point {
	out := make([]geo.Point, len(preds))
	for i, p := range preds {
		out[i] = p.Pos
	}
	return out
}

func imuEndpoints(preds []core.IMUPrediction) []geo.Point {
	out := make([]geo.Point, len(preds))
	for i, p := range preds {
		out[i] = p.End
	}
	return out
}

// wifiMeanErr is the gate metric for Wi-Fi bundles: mean localization
// error over the held-out test split.
func wifiMeanErr(m *core.WiFiModel, ds *dataset.WiFi) float64 {
	x := dataset.FeaturesMatrix(ds.Test)
	return eval.Stats(eval.Errors(wifiPositions(m.PredictMatrix(x)), dataset.Positions(ds.Test))).Mean
}

// imuMeanErr is the gate metric for IMU bundles: mean endpoint error
// over the held-out test paths.
func imuMeanErr(m *core.IMUModel, ds *imu.PathDataset) float64 {
	truth := make([]geo.Point, len(ds.Test))
	for i := range ds.Test {
		truth[i] = ds.Test[i].End
	}
	return eval.Stats(eval.Errors(imuEndpoints(m.PredictPaths(ds.Test)), truth)).Mean
}

// QuantizeWiFiModel runs the train-time calibration pass and accuracy
// gate on a trained Wi-Fi model: it measures fp64 accuracy on the test
// split, calibrates activation ranges on the validation split, switches
// the model to the int8 tier, re-measures, and enforces the budget. On
// success the model serves int8 and the returned artifact is ready to
// publish; on gate failure the error is the publish blocker.
func QuantizeWiFiModel(m *core.WiFiModel, ds *dataset.WiFi, opts QuantizeOptions) (*CalibrationFile, error) {
	budget, err := opts.budget()
	if err != nil {
		return nil, err
	}
	if len(ds.Val) == 0 {
		return nil, fmt.Errorf("serve: int8 calibration needs a validation split, dataset has none")
	}
	fpErr := wifiMeanErr(m, ds)

	calibSamples := ds.Val
	if n := opts.samples(); len(calibSamples) > n {
		calibSamples = calibSamples[:n]
	}
	cal := opts.calibrator()
	if err := m.EnableInt8(cal, dataset.FeaturesMatrix(calibSamples)); err != nil {
		return nil, err
	}
	int8Err := wifiMeanErr(m, ds)
	delta, err := gateCheck(fpErr, int8Err, budget)
	if err != nil {
		return nil, err
	}
	return &CalibrationFile{
		Method:      cal.Method,
		Percentile:  percentileFor(cal),
		Samples:     len(calibSamples),
		ActScales:   cal.Scales,
		FP64MeanErr: fpErr,
		Int8MeanErr: int8Err,
		DeltaPct:    delta,
	}, nil
}

// QuantizeIMUModel is the IMU mirror of QuantizeWiFiModel.
func QuantizeIMUModel(m *core.IMUModel, ds *imu.PathDataset, opts QuantizeOptions) (*CalibrationFile, error) {
	budget, err := opts.budget()
	if err != nil {
		return nil, err
	}
	if len(ds.Validation) == 0 {
		return nil, fmt.Errorf("serve: int8 calibration needs a validation split, dataset has none")
	}
	fpErr := imuMeanErr(m, ds)

	calibPaths := ds.Validation
	if n := opts.samples(); len(calibPaths) > n {
		calibPaths = calibPaths[:n]
	}
	cal := opts.calibrator()
	if err := m.EnableInt8(cal, calibPaths); err != nil {
		return nil, err
	}
	int8Err := imuMeanErr(m, ds)
	delta, err := gateCheck(fpErr, int8Err, budget)
	if err != nil {
		return nil, err
	}
	return &CalibrationFile{
		Method:      cal.Method,
		Percentile:  percentileFor(cal),
		Samples:     len(calibPaths),
		ActScales:   cal.Scales,
		FP64MeanErr: fpErr,
		Int8MeanErr: int8Err,
		DeltaPct:    delta,
	}, nil
}

// percentileFor records the percentile only when it was actually used.
func percentileFor(c *qlinear.Calibrator) float64 {
	if c.Method == qlinear.CalibPercentile {
		return c.Percentile
	}
	return 0
}

// CalibrationExtra packages a calibration artifact as a bundle extra
// file for WriteBundle.
func CalibrationExtra(name string, cal *CalibrationFile) ExtraFile {
	return ExtraFile{Name: name, Write: func(f *os.File) error {
		raw, err := json.MarshalIndent(cal, "", "  ")
		if err != nil {
			return err
		}
		_, err = f.Write(append(raw, '\n'))
		return err
	}}
}

// loadCalibration reads and sanity-checks a bundle's calibration
// artifact. Scale validation here is shallow (finite, non-negative);
// the deep check is structural — replaying the scales into the model
// fails if the count mismatches, and the re-run gate fails if the
// values are wrong.
func loadCalibration(path string) (*CalibrationFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: reading calibration: %w", err)
	}
	var cal CalibrationFile
	if err := json.Unmarshal(raw, &cal); err != nil {
		return nil, fmt.Errorf("serve: parsing %s: %w", path, err)
	}
	if len(cal.ActScales) == 0 {
		return nil, fmt.Errorf("serve: calibration %s has no act_scales", path)
	}
	for i, s := range cal.ActScales {
		if math.IsNaN(float64(s)) || math.IsInf(float64(s), 0) || s < 0 {
			return nil, fmt.Errorf("serve: calibration %s: act_scales[%d] = %v is not a valid scale", path, i, s)
		}
	}
	return &cal, nil
}

// applyPrecision switches a freshly loaded bundle model to its
// manifest-declared precision tier and re-runs the accuracy gate. Called
// from LoadBundle with the regenerated dataset, so a bundle whose
// calibration no longer reproduces acceptable accuracy is refused at
// load — the registry keeps the previous generation serving.
func applyPrecision(dir string, man *Manifest, m *Model, wifiDS *dataset.WiFi, imuDS *imu.PathDataset) error {
	p := man.Precision
	if p == nil || p.Mode == "" || p.Mode == core.PrecisionFP64 {
		if p != nil && p.Mode != "" && p.Mode != core.PrecisionFP64 && p.Mode != core.PrecisionInt8 {
			return fmt.Errorf("serve: bundle %s: unknown precision mode %q", m.Name, p.Mode)
		}
		return nil
	}
	if p.Mode != core.PrecisionInt8 {
		return fmt.Errorf("serve: bundle %s: unknown precision mode %q", m.Name, p.Mode)
	}
	budget, err := p.budget()
	if err != nil {
		return fmt.Errorf("serve: bundle %s: %w", m.Name, err)
	}
	cal, err := loadCalibration(filepath.Join(dir, p.calibrationFile()))
	if err != nil {
		return fmt.Errorf("serve: bundle %s: %w", m.Name, err)
	}
	scales := &qlinear.Scales{Values: cal.ActScales}
	switch {
	case m.WiFi != nil:
		fpErr := wifiMeanErr(m.WiFi, wifiDS)
		if err := m.WiFi.EnableInt8(scales, nil); err != nil {
			return fmt.Errorf("serve: bundle %s: %w", m.Name, err)
		}
		if _, err := gateCheck(fpErr, wifiMeanErr(m.WiFi, wifiDS), budget); err != nil {
			return fmt.Errorf("serve: bundle %s: load-time recheck: %w", m.Name, err)
		}
	case m.IMU != nil:
		fpErr := imuMeanErr(m.IMU, imuDS)
		if err := m.IMU.EnableInt8(scales, nil); err != nil {
			return fmt.Errorf("serve: bundle %s: %w", m.Name, err)
		}
		if _, err := gateCheck(fpErr, imuMeanErr(m.IMU, imuDS), budget); err != nil {
			return fmt.Errorf("serve: bundle %s: load-time recheck: %w", m.Name, err)
		}
	}
	return nil
}
