package serve

import (
	"context"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"noble/internal/geo"
	"noble/internal/serve/session"
	"noble/internal/store"
)

// Durability tests: kill the journal mid-write, restore, and assert the
// recovered tracker state is bit-identical to the in-memory run; replay
// a recorded run and assert zero trajectory divergence.

// newJournaledEngine wires an engine over the shared fixtures with a
// journal in dir. Batching off: these tests assert state, not batching.
func newJournaledEngine(t *testing.T, dir string, shards int) (*Engine, *store.Journal) {
	t.Helper()
	fixtures(t)
	j, err := store.Open(store.Config{Dir: dir, Shards: shards, Fsync: store.FsyncNever, Logf: t.Logf})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	reg := NewRegistry("", t.Logf)
	reg.Add(&Model{Name: "wifi-test", Kind: KindWiFi, WiFi: wifiModel})
	reg.Add(&Model{Name: "imu-test", Kind: KindIMU, IMU: imuModel})
	return NewEngine(Config{Registry: reg, Journal: j}), j
}

// newRestoredEngine recovers dir into a fresh engine sharing the
// fixture registry (same models, as after a restart).
func newRestoredEngine(t *testing.T, dir string) (*Engine, RestoreSummary) {
	t.Helper()
	rec, err := store.Load(dir)
	if err != nil {
		t.Fatalf("store.Load: %v", err)
	}
	reg := NewRegistry("", t.Logf)
	reg.Add(&Model{Name: "wifi-test", Kind: KindWiFi, WiFi: wifiModel})
	reg.Add(&Model{Name: "imu-test", Kind: KindIMU, IMU: imuModel})
	e := NewEngine(Config{Registry: reg})
	return e, e.RestoreSessions(rec)
}

// driveSessions runs a deterministic tracking workload: nsess devices,
// nreq append requests each, a WiFi fix every third request, one
// explicitly deleted session at the end.
func driveSessions(t *testing.T, e *Engine, nsess, nreq int) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	segDim := imuModel.SegmentDim()
	wifiDim := wifiModel.InputDim()
	ctx := context.Background()
	for s := 0; s < nsess; s++ {
		id := "dev-" + string(rune('a'+s))
		for r := 0; r < nreq; r++ {
			q := SegmentQuery{Session: id}
			if r == 0 {
				q.Model = "imu-test"
				q.Start = &geo.Point{X: float64(s), Y: float64(-s)}
				q.Window = 2
			}
			nseg := 1 + r%2 // vary batch sizes
			q.Features = make([]float64, nseg*segDim)
			for i := range q.Features {
				q.Features[i] = math.Round(rng.NormFloat64()*1e3) / 1e3
			}
			if r > 0 && r%3 == 0 {
				q.WiFiModel = "wifi-test"
				q.Fingerprint = make([]float64, wifiDim)
				for i := range q.Fingerprint {
					if rng.Float64() < 0.3 {
						q.Fingerprint[i] = math.Round(rng.Float64()*1e4) / 1e4
					}
				}
			}
			if _, err := e.AppendSegments(ctx, q); err != nil {
				t.Fatalf("append %s/%d: %v", id, r, err)
			}
		}
	}
	// One session lives and dies: restores must skip it, replays must
	// tear it down.
	if _, err := e.AppendSegments(ctx, SegmentQuery{
		Session: "dev-doomed", Model: "imu-test", Start: &geo.Point{X: 1, Y: 2},
		Features: make([]float64, segDim),
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.DeleteSession("dev-doomed"); err != nil {
		t.Fatal(err)
	}
}

// sessionStates snapshots every live session's full state, keyed by ID.
type sessState struct {
	Model     string
	Steps     int64
	ReAnchors int64
	Tracker   interface{}
}

func captureStates(e *Engine) map[string]sessState {
	out := map[string]sessState{}
	e.Sessions().ForEach(func(s *session.Session) {
		s.Lock()
		out[s.ID] = sessState{
			Model:     s.Model,
			Steps:     s.Steps.Load(),
			ReAnchors: s.ReAnchors.Load(),
			Tracker:   s.Tracker.State(),
		}
		s.Unlock()
	})
	return out
}

func TestJournalRestoreBitIdentical(t *testing.T) {
	dir := t.TempDir()
	e, j := newJournaledEngine(t, dir, 4)
	driveSessions(t, e, 4, 7)
	want := captureStates(e)
	if err := j.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}

	e2, sum := newRestoredEngine(t, dir)
	if sum.Restored != 4 || sum.Skipped != 0 || sum.Closed != 1 {
		t.Fatalf("restore summary %+v, want 4 restored / 0 skipped / 1 closed", sum)
	}
	got := captureStates(e2)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("restored state differs:\n want %+v\n got  %+v", want, got)
	}

	// The restored sessions must be usable: appending continues where
	// the pre-crash run stopped.
	st, err := e2.AppendSegments(context.Background(), SegmentQuery{
		Session:  "dev-a",
		Features: make([]float64, imuModel.SegmentDim()),
	})
	if err != nil {
		t.Fatalf("append after restore: %v", err)
	}
	if st.Steps != int(want["dev-a"].Steps)+1 {
		t.Fatalf("post-restore step count %d, want %d", st.Steps, want["dev-a"].Steps+1)
	}
}

// TestJournalTornTailRecovery crashes the journal mid-write: the last
// record of one shard is torn (truncated, then separately CRC-flipped)
// and recovery must restore every session bit-identically up to the
// torn tail, dropping only it.
func TestJournalTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	// One journal shard so "the newest segment" is deterministic.
	e, j := newJournaledEngine(t, dir, 1)

	// Reference run: capture state after every request, so whatever
	// prefix survives the tear has a known-good reference.
	ctx := context.Background()
	segDim := imuModel.SegmentDim()
	rng := rand.New(rand.NewSource(7))
	var after []map[string]sessState
	for r := 0; r < 5; r++ {
		q := SegmentQuery{Session: "dev-torn"}
		if r == 0 {
			q.Model = "imu-test"
			q.Start = &geo.Point{}
		}
		q.Features = make([]float64, segDim)
		for i := range q.Features {
			q.Features[i] = rng.NormFloat64()
		}
		if _, err := e.AppendSegments(ctx, q); err != nil {
			t.Fatal(err)
		}
		after = append(after, captureStates(e))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	shardDir := filepath.Join(dir, "shard-00")
	entries, err := os.ReadDir(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	var segPath string
	for _, en := range entries {
		segPath = filepath.Join(shardDir, en.Name()) // single segment
	}
	raw, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record: truncate into its payload.
	if err := os.WriteFile(segPath, raw[:len(raw)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	e2, sum := newRestoredEngine(t, dir)
	if sum.Restored != 1 || sum.Torn == 0 {
		t.Fatalf("restore summary %+v, want 1 restored with a torn tail", sum)
	}
	got := captureStates(e2)
	// The tear dropped exactly the last request's record: the restored
	// state must equal the reference after request 4 (0-based 3).
	if want := after[3]; !reflect.DeepEqual(want, got) {
		t.Fatalf("torn-tail restore:\n want %+v\n got  %+v", want, got)
	}
}

func TestCompactionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e, j := newJournaledEngine(t, dir, 2)
	driveSessions(t, e, 3, 5)
	if err := e.CompactJournal(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	// Traffic after the compaction replays on top of the snapshots.
	if _, err := e.AppendSegments(context.Background(), SegmentQuery{
		Session: "dev-a", Features: make([]float64, imuModel.SegmentDim()),
	}); err != nil {
		t.Fatal(err)
	}
	want := captureStates(e)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Snapshots exist and pre-compaction segments are pruned.
	snaps := 0
	for sh := 0; sh < 2; sh++ {
		entries, err := os.ReadDir(filepath.Join(dir, "shard-0"+string(rune('0'+sh))))
		if err != nil {
			t.Fatal(err)
		}
		for _, en := range entries {
			if filepath.Ext(en.Name()) == ".snap" {
				snaps++
			}
		}
	}
	if snaps == 0 {
		t.Fatal("no snapshot files written")
	}

	e2, sum := newRestoredEngine(t, dir)
	if sum.Restored != 3 {
		t.Fatalf("restore summary %+v, want 3 restored", sum)
	}
	if got := captureStates(e2); !reflect.DeepEqual(want, got) {
		t.Fatalf("compacted restore differs:\n want %+v\n got  %+v", want, got)
	}
}

// TestEvictionJournaled: a TTL-evicted session must come back as closed,
// not restored.
func TestEvictionJournaled(t *testing.T) {
	dir := t.TempDir()
	fixtures(t)
	j, err := store.Open(store.Config{Dir: dir, Shards: 1, Fsync: store.FsyncNever, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry("", t.Logf)
	reg.Add(&Model{Name: "imu-test", Kind: KindIMU, IMU: imuModel})
	e := NewEngine(Config{Registry: reg, Journal: j, SessionTTL: time.Minute})
	if _, err := e.AppendSegments(context.Background(), SegmentQuery{
		Session: "dev-evict", Model: "imu-test", Start: &geo.Point{},
		Features: make([]float64, imuModel.SegmentDim()),
	}); err != nil {
		t.Fatal(err)
	}
	if n := e.Sessions().Sweep(time.Now().Add(2 * time.Minute)); n != 1 {
		t.Fatalf("sweep evicted %d, want 1", n)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, sum := newRestoredEngine(t, dir)
	if sum.Restored != 0 || sum.Closed != 1 {
		t.Fatalf("restore summary %+v, want 0 restored / 1 closed", sum)
	}
}

// TestReplayZeroDivergence: replaying a recorded run against the same
// models reproduces every step estimate and final position exactly.
func TestReplayZeroDivergence(t *testing.T) {
	dir := t.TempDir()
	e, j := newJournaledEngine(t, dir, 4)
	driveSessions(t, e, 4, 7)
	want := captureStates(e)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := store.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry("", t.Logf)
	reg.Add(&Model{Name: "wifi-test", Kind: KindWiFi, WiFi: wifiModel})
	reg.Add(&Model{Name: "imu-test", Kind: KindIMU, IMU: imuModel})
	// Batching ON for the replay: coalesced passes must still be
	// bit-identical to the recorded (also batched) run.
	replayEngine := NewEngine(Config{Registry: reg, BatchWindow: time.Millisecond, MaxBatch: 16})

	rep, err := ReplayJournal(context.Background(), replayEngine, rec, ReplayOptions{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rep.Errors != 0 || rep.Skipped != 0 {
		t.Fatalf("replay report %+v: errors/skips", rep)
	}
	if rep.Steps == 0 || rep.ComparedSteps == 0 {
		t.Fatalf("replay report %+v: nothing compared", rep)
	}
	if rep.DivergedSteps != 0 || rep.MaxDivergence != 0 || rep.FinalDiverged != 0 {
		t.Fatalf("replay diverged: %+v", rep)
	}
	if rep.Closes != 1 {
		t.Fatalf("replay closes %d, want 1 (dev-doomed)", rep.Closes)
	}
	// Stronger than the per-step comparison: the replayed engine's final
	// session states equal the recorded engine's.
	if got := captureStates(replayEngine); !reflect.DeepEqual(want, got) {
		t.Fatalf("replayed end state differs:\n want %+v\n got  %+v", want, got)
	}
}

// TestDeleteDuringAppendReturnsNotFound: once a session is deleted, a
// handler that resolved the pointer earlier must observe the tombstone
// under the lock and fail with session_not_found instead of mutating
// orphaned state.
func TestDeleteRacingAppend(t *testing.T) {
	fixtures(t)
	reg := NewRegistry("", t.Logf)
	reg.Add(&Model{Name: "imu-test", Kind: KindIMU, IMU: imuModel})
	e := NewEngine(Config{Registry: reg})
	ctx := context.Background()
	seg := make([]float64, imuModel.SegmentDim())
	if _, err := e.AppendSegments(ctx, SegmentQuery{
		Session: "dev-race", Model: "imu-test", Start: &geo.Point{}, Features: seg,
	}); err != nil {
		t.Fatal(err)
	}
	// Simulate the interleaving: the handler's Get resolved the session,
	// then the delete (or sweeper) won the lock first.
	sess, ok := e.Sessions().Get("dev-race")
	if !ok {
		t.Fatal("session missing")
	}
	if err := e.DeleteSession("dev-race"); err != nil {
		t.Fatal(err)
	}
	if !sess.Gone() {
		t.Fatal("delete did not tombstone the session")
	}
	_, err := e.AppendSegments(ctx, SegmentQuery{Session: "dev-race", Features: seg})
	if e2 := AsError(err); e2 == nil || e2.Code != CodeSessionNotFound {
		// (The Get inside AppendSegments misses, so the create-validation
		// path rejects it — but critically not by appending.)
		if e2 == nil || e2.Code != CodeBadRequest {
			t.Fatalf("append after delete: %v", err)
		}
	}
	if tr := sess.Tracker; tr.Steps() != 1 {
		t.Fatalf("orphaned tracker mutated: %d steps", tr.Steps())
	}
}

// TestCompactionRetainsUnrestorableSessions: a session whose model is
// missing at restart must survive journal compaction — its history is
// carried forward so a later restart (with the bundle republished) can
// still restore it.
func TestCompactionRetainsUnrestorableSessions(t *testing.T) {
	dir := t.TempDir()
	e, j := newJournaledEngine(t, dir, 2)
	driveSessions(t, e, 2, 4)
	want := captureStates(e)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart with the IMU model missing: nothing restores, everything
	// is retained; compaction must not erase the histories.
	rec, err := store.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := store.Open(store.Config{Dir: dir, Shards: 2, Fsync: store.FsyncNever, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	bareReg := NewRegistry("", t.Logf)
	bareReg.Add(&Model{Name: "wifi-test", Kind: KindWiFi, WiFi: wifiModel})
	e2 := NewEngine(Config{Registry: bareReg, Journal: j2})
	if sum := e2.RestoreSessions(rec); sum.Restored != 0 || sum.Skipped != 2 {
		t.Fatalf("restore without the model: %+v, want 0 restored / 2 skipped", sum)
	}
	for i := 0; i < 3; i++ { // several rounds: carry-forward must be stable
		if err := e2.CompactJournal(); err != nil {
			t.Fatalf("compact round %d: %v", i, err)
		}
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	// Third restart, model back: the full state comes home.
	e3, sum := newRestoredEngine(t, dir)
	if sum.Restored != 2 {
		t.Fatalf("restore after model returns: %+v, want 2 restored", sum)
	}
	if got := captureStates(e3); !reflect.DeepEqual(want, got) {
		t.Fatalf("carried-forward state differs:\n want %+v\n got  %+v", want, got)
	}
}
