package serve

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

func TestParseLocalizeRequestMatchesEncodingJSON(t *testing.T) {
	cases := []string{
		`{"model":"m","fingerprints":[[0.1,0.25,0],[1,2.5e-3,-4]]}`,
		`{"fingerprints":[[0.5]],"model":"other"}`, // key order
		`{"model":"m","fingerprints":[[]]}`,
		`{"model":"m","fingerprints":[]}`,
		"{ \"model\" : \"m\" ,\n \"fingerprints\" : [ [ 1 , 2 ] ] }",
		// Duplicate keys are valid JSON; encoding/json is last-wins and
		// the fast path must agree.
		`{"model":"a","model":"b","fingerprints":[[1]],"fingerprints":[[2],[3]]}`,
	}
	for _, raw := range cases {
		var want LocalizeRequest
		if err := json.Unmarshal([]byte(raw), &want); err != nil {
			t.Fatalf("bad test case %q: %v", raw, err)
		}
		var got LocalizeRequest
		if !parseLocalizeRequest([]byte(raw), &got) {
			t.Fatalf("fast parse rejected valid request %q", raw)
		}
		if got.Model != want.Model || len(got.Fingerprints) != len(want.Fingerprints) {
			t.Fatalf("fast parse of %q: got %+v, want %+v", raw, got, want)
		}
		for i := range want.Fingerprints {
			if len(want.Fingerprints[i]) == 0 && len(got.Fingerprints[i]) == 0 {
				continue
			}
			if !reflect.DeepEqual(got.Fingerprints[i], want.Fingerprints[i]) {
				t.Fatalf("fast parse of %q: fingerprint %d %v, want %v",
					raw, i, got.Fingerprints[i], want.Fingerprints[i])
			}
		}
	}
}

func TestParseLocalizeRequestBailsToSlowPath(t *testing.T) {
	// Inputs the fast scanner must *reject* (not mis-parse): the handler
	// then falls back to encoding/json, which accepts the valid ones.
	for _, raw := range []string{
		`{"model":"a\"b","fingerprints":[[1]]}`,    // escape in string
		`{"model":"m","fingerprints":[[1]],"x":1}`, // unknown key
		`{"model":"m","fingerprints":[[1]]} trail`, // trailing garbage
		`{"model":"m","fingerprints":[["1"]]}`,     // non-number element
		`{"model":"m","fingerprints":[[1],[2],]}`,  // trailing comma
		`{"model":"m"`, // truncated
		`[]`,           // wrong top level
		// Number forms RFC 8259 forbids but strconv.ParseFloat accepts:
		// the fast path must reject them so validation stays identical
		// to the encoding/json fallback.
		`{"model":"m","fingerprints":[[.5]]}`,
		`{"model":"m","fingerprints":[[+1]]}`,
		`{"model":"m","fingerprints":[[01]]}`,
		`{"model":"m","fingerprints":[[1.]]}`,
		`{"model":"m","fingerprints":[[1.5e]]}`,
		`{"model":"m","fingerprints":[[0x1]]}`,
	} {
		var req LocalizeRequest
		if parseLocalizeRequest([]byte(raw), &req) {
			t.Fatalf("fast parse accepted %q", raw)
		}
	}
}

func TestAppendLocalizeResponseRoundTrips(t *testing.T) {
	resp := LocalizeResponse{
		Model: "m",
		Results: []Position{
			{X: 1.5, Y: -2.25, Class: 3, Building: 1, Floor: 2},
			{X: math.Pi, Y: 0, Class: 0, Building: 0, Floor: 0},
		},
	}
	raw := appendLocalizeResponse(nil, &resp)
	var back LocalizeResponse
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("hand-encoded response is not valid JSON: %v\n%s", err, raw)
	}
	if !reflect.DeepEqual(back, resp) {
		t.Fatalf("round trip changed the response: %+v != %+v", back, resp)
	}
}

func TestParseLocalizeRequestV2MatchesEncodingJSON(t *testing.T) {
	cases := []string{
		`{"model":"m","fingerprints":[[0.1,0.2]],"deadline_ms":250}`,
		`{"deadline_ms":10,"model":"m","fingerprints":[[1]]}`,
		`{"model":"m","fingerprints":[[1]]}`,                                 // deadline absent
		`{"deadline_ms":5,"deadline_ms":9,"model":"m","fingerprints":[[1]]}`, // last-wins
	}
	for _, raw := range cases {
		var want localizeRequestV2
		if err := json.Unmarshal([]byte(raw), &want); err != nil {
			t.Fatalf("bad test case %q: %v", raw, err)
		}
		var got localizeRequestV2
		if !parseLocalizeRequestV2([]byte(raw), &got) {
			t.Fatalf("fast parse rejected valid /v2 request %q", raw)
		}
		if got.Model != want.Model || got.DeadlineMs != want.DeadlineMs ||
			!reflect.DeepEqual(got.Fingerprints, want.Fingerprints) {
			t.Fatalf("fast parse of %q: got %+v, want %+v", raw, got, want)
		}
	}
	// Forms the fast path must hand to the encoding/json fallback —
	// including integer-VALUED non-integer syntax (2000.0, 1e3), which
	// json.Unmarshal into int64 rejects, so accepting them here would
	// make validation depend on which parser a request hit.
	for _, raw := range []string{
		`{"model":"m","fingerprints":[[1]],"deadline_ms":12.5}`,   // non-integer
		`{"model":"m","fingerprints":[[1]],"deadline_ms":2000.0}`, // integer-valued fraction
		`{"model":"m","fingerprints":[[1]],"deadline_ms":1e3}`,    // exponent
		`{"model":"m","fingerprints":[[1]],"deadline_ms":"10"}`,   // string
		`{"model":"m","fingerprints":[[1]],"deadline":10}`,        // unknown key
	} {
		var req localizeRequestV2
		if parseLocalizeRequestV2([]byte(raw), &req) {
			t.Fatalf("fast parse accepted %q", raw)
		}
	}
	// The /v1 parser must NOT accept the /v2-only key.
	var v1 LocalizeRequest
	if parseLocalizeRequest([]byte(`{"model":"m","fingerprints":[[1]],"deadline_ms":5}`), &v1) {
		t.Fatal("/v1 fast parse accepted deadline_ms")
	}
}

func TestAppendLocalizeResponseV2MatchesEncodingJSON(t *testing.T) {
	resp := LocalizeResponse{
		Model: "m",
		Results: []Position{
			{X: 1.5, Y: -2.25, Class: 3, Building: 1, Floor: 2},
			{X: math.Pi, Y: 0},
		},
	}
	got := appendLocalizeResponseV2(nil, "req-7", &resp)
	want, err := json.Marshal(localizeResponseV2{RequestID: "req-7", Model: resp.Model, Results: resp.Results})
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if string(got) != string(want) {
		t.Fatalf("hand-encoded /v2 response differs from encoding/json:\n got %s\nwant %s", got, want)
	}
}
