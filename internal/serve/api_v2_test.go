package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"noble/internal/imu"
)

// decodeEnvelope parses a /v2 structured error body.
func decodeEnvelope(t *testing.T, body []byte) v2Error {
	t.Helper()
	var env v2Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("body %q is not a /v2 error envelope: %v", body, err)
	}
	return env.Error
}

func TestV2ErrorEnvelope(t *testing.T) {
	s := newTestServer(t, 0)
	cases := []struct {
		name   string
		path   string
		body   string
		status int
		code   Code
	}{
		{"unknown model", "/v2/localize", `{"model":"nope","fingerprints":[[0.1]]}`, http.StatusNotFound, CodeModelNotFound},
		{"wrong kind", "/v2/localize", `{"model":"imu-test","fingerprints":[[0.1]]}`, http.StatusBadRequest, CodeWrongModelKind},
		{"bad body", "/v2/localize", `{not json`, http.StatusBadRequest, CodeBadBody},
		{"bad fingerprint", "/v2/localize", `{"model":"wifi-test","fingerprints":[[0.1]]}`, http.StatusBadRequest, CodeBadFingerprint},
		{"no paths", "/v2/track", `{"model":"imu-test","paths":[]}`, http.StatusBadRequest, CodeBadPath},
		{"missing model", "/v2/localize", `{"fingerprints":[[0.1]]}`, http.StatusBadRequest, CodeBadRequest},
		{"bad deadline body", "/v2/localize", `{"model":"wifi-test","fingerprints":[[0.1]],"deadline_ms":-5}`, http.StatusBadRequest, CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postJSON(t, s.Handler(), tc.path, tc.body)
			if w.Code != tc.status {
				t.Fatalf("status %d, want %d; body %s", w.Code, tc.status, w.Body)
			}
			e := decodeEnvelope(t, w.Body.Bytes())
			if e.Code != tc.code {
				t.Fatalf("code %q, want %q (message %q)", e.Code, tc.code, e.Message)
			}
			if e.Message == "" {
				t.Fatal("envelope must carry a message")
			}
			if e.RequestID == "" || w.Header().Get("X-Request-Id") != e.RequestID {
				t.Fatalf("request id: body %q, header %q — must match and be non-empty",
					e.RequestID, w.Header().Get("X-Request-Id"))
			}
		})
	}

	// Malformed deadline header.
	req := httptest.NewRequest(http.MethodPost, "/v2/localize", strings.NewReader(`{"model":"wifi-test","fingerprints":[[0.1]]}`))
	req.Header.Set("X-Deadline-Ms", "soon")
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest || decodeEnvelope(t, w.Body.Bytes()).Code != CodeBadRequest {
		t.Fatalf("bad X-Deadline-Ms: %d %s", w.Code, w.Body)
	}
}

func TestV2LocalizeAndTrackHappyPath(t *testing.T) {
	s := newTestServer(t, 0)

	raw, _ := json.Marshal(LocalizeRequest{Model: "wifi-test", Fingerprints: [][]float64{wifiDS.Test[0].Features}})
	w := postJSON(t, s.Handler(), "/v2/localize", string(raw))
	if w.Code != http.StatusOK {
		t.Fatalf("localize: %d %s", w.Code, w.Body)
	}
	var lresp localizeResponseV2
	if err := json.Unmarshal(w.Body.Bytes(), &lresp); err != nil {
		t.Fatal(err)
	}
	if lresp.RequestID == "" || lresp.RequestID != w.Header().Get("X-Request-Id") {
		t.Fatalf("request id missing or mismatched: %+v", lresp)
	}
	want := wifiModel.Predict(wifiDS.Test[0].Features)
	if len(lresp.Results) != 1 || lresp.Results[0].X != want.Pos.X || lresp.Results[0].Class != want.Class {
		t.Fatalf("v2 result %+v != model %+v", lresp.Results, want)
	}

	p := imuDS.Test[0]
	rawT, _ := json.Marshal(TrackRequest{Model: "imu-test", Paths: []TrackPath{{
		Start: XY{X: p.Start.X, Y: p.Start.Y}, Features: p.Features,
	}}})
	w = postJSON(t, s.Handler(), "/v2/track", string(rawT))
	if w.Code != http.StatusOK {
		t.Fatalf("track: %d %s", w.Code, w.Body)
	}
	var tresp trackResponseV2
	if err := json.Unmarshal(w.Body.Bytes(), &tresp); err != nil {
		t.Fatal(err)
	}
	wantT := imuModel.PredictPaths([]imu.Path{p})[0]
	if tresp.Results[0].End.X != wantT.End.X || tresp.Results[0].Class != wantT.Class {
		t.Fatalf("v2 track %+v != model %+v", tresp.Results[0], wantT)
	}
	if tresp.RequestID == "" {
		t.Fatal("track response must carry a request id")
	}

	// Distinct requests get distinct IDs.
	if lresp.RequestID == tresp.RequestID {
		t.Fatalf("request ids must be unique: %q", lresp.RequestID)
	}
}

func TestV2DeadlineExpiresInBatchQueue(t *testing.T) {
	// Batch window far longer than the deadline: a lone request's pass
	// fires after the arrival-gap grace (window/32 = 62ms here), so a
	// 15ms deadline expires while the job is still queued. It must come
	// back 504/deadline_exceeded, and its rows must be dropped from the
	// queue rather than spent in a forward pass.
	s := newTestServer(t, 2*time.Second)
	raw, _ := json.Marshal(LocalizeRequest{Model: "wifi-test", Fingerprints: [][]float64{wifiDS.Test[0].Features}})

	req := httptest.NewRequest(http.MethodPost, "/v2/localize", bytes.NewReader(raw))
	req.Header.Set("X-Deadline-Ms", "15")
	w := httptest.NewRecorder()
	start := time.Now()
	s.Handler().ServeHTTP(w, req)
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Fatalf("deadline not honored: request took %v", elapsed)
	}
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %s", w.Code, w.Body)
	}
	if e := decodeEnvelope(t, w.Body.Bytes()); e.Code != CodeDeadlineExceeded {
		t.Fatalf("code %q, want deadline_exceeded", e.Code)
	}

	// Wait for the window to elapse so the dispatcher processed (and
	// dropped) the abandoned job.
	deadline := time.Now().Add(2 * time.Second)
	for s.metrics.BatchDropped("localize") == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if d := s.metrics.BatchDropped("localize"); d != 1 {
		t.Fatalf("dropped rows %d, want 1", d)
	}
	if _, rows := s.metrics.BatchStats("localize"); rows != 0 {
		t.Fatalf("forward passes consumed %d rows for a request that was canceled", rows)
	}

	// The body field works too (and the stricter of the two wins).
	raw2, _ := json.Marshal(map[string]any{
		"model": "wifi-test", "fingerprints": [][]float64{wifiDS.Test[0].Features}, "deadline_ms": 10,
	})
	w = postJSON(t, s.Handler(), "/v2/localize", string(raw2))
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("deadline_ms body field: status %d, want 504", w.Code)
	}
}

func TestV2SessionDeadlinePartialCommitIs504(t *testing.T) {
	// A deadline expiring while a segment waits in the track batcher
	// answers with the error's own status (504), not a generic 500, and
	// the body still carries the session identity for the
	// resend-the-tail protocol.
	s := newTestServer(t, 2*time.Second)
	seg := imuDS.Test[0].Features[:imuModel.SegmentDim()]
	raw, _ := json.Marshal(SessionSegmentsRequest{Model: "imu-test", Start: &XY{}, Features: seg})
	req := httptest.NewRequest(http.MethodPost, "/v2/sessions/dl504/segments", bytes.NewReader(raw))
	req.Header.Set("X-Deadline-Ms", "15")
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %s", w.Code, w.Body)
	}
	var resp sessionResponseV2
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Session != "dl504" || resp.Error == nil || resp.Error.Code != CodeDeadlineExceeded {
		t.Fatalf("partial-commit body %s", w.Body)
	}
}

func TestV2SessionsLifecycle(t *testing.T) {
	s := newTestServer(t, 0)
	seg := imuDS.Test[0].Features[:imuModel.SegmentDim()]

	create, _ := json.Marshal(SessionSegmentsRequest{Model: "imu-test", Start: &XY{X: 1, Y: 2}})
	w := postJSON(t, s.Handler(), "/v2/sessions/v2dev/segments", string(create))
	if w.Code != http.StatusOK {
		t.Fatalf("create: %d %s", w.Code, w.Body)
	}
	var resp sessionResponseV2
	json.Unmarshal(w.Body.Bytes(), &resp)
	if !resp.Created || resp.RequestID == "" || resp.Session != "v2dev" {
		t.Fatalf("create response %+v", resp)
	}

	app, _ := json.Marshal(SessionSegmentsRequest{Features: seg})
	w = postJSON(t, s.Handler(), "/v2/sessions/v2dev/segments", string(app))
	if w.Code != http.StatusOK {
		t.Fatalf("append: %d %s", w.Code, w.Body)
	}
	json.Unmarshal(w.Body.Bytes(), &resp)
	if resp.Steps != 1 || len(resp.Results) != 1 {
		t.Fatalf("append response %+v", resp)
	}

	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v2/sessions/v2dev", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("get: %d %s", w.Code, w.Body)
	}

	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodDelete, "/v2/sessions/v2dev", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("delete: %d %s", w.Code, w.Body)
	}

	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v2/sessions/v2dev", nil))
	if w.Code != http.StatusNotFound || decodeEnvelope(t, w.Body.Bytes()).Code != CodeSessionNotFound {
		t.Fatalf("get after delete: %d %s", w.Code, w.Body)
	}
}

func TestV2TrackStream(t *testing.T) {
	s := newTestServer(t, 0)
	segDim := imuModel.SegmentDim()
	seg := func(i int) []float64 { return imuDS.Test[i].Features[:segDim] }

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.Encode(streamOpen{SessionSegmentsRequest: SessionSegmentsRequest{
		Model: "imu-test", Start: &XY{X: 3, Y: 4},
	}})
	enc.Encode(SessionSegmentsRequest{Features: seg(0)})
	enc.Encode(SessionSegmentsRequest{Features: seg(1)})

	req := httptest.NewRequest(http.MethodPost, "/v2/track/stream", &buf)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("stream: %d %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	var lines []streamLine
	sc := bufio.NewScanner(bytes.NewReader(w.Body.Bytes()))
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var l streamLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if len(lines) != 3 {
		t.Fatalf("%d response lines for 3 input lines:\n%s", len(lines), w.Body)
	}
	for i, l := range lines {
		if l.Seq != i+1 {
			t.Fatalf("line %d has seq %d", i, l.Seq)
		}
		if l.Error != nil {
			t.Fatalf("line %d unexpected error %+v", i, l.Error)
		}
		if l.Steps != i {
			t.Fatalf("line %d reports %d steps, want %d", i, l.Steps, i)
		}
	}

	// The per-line estimates must match a stateful session fed the same
	// segments one request at a time.
	sessResp := func(id string, req SessionSegmentsRequest) SessionState {
		st, err := s.engine.AppendSegments(context.Background(), segmentQuery(id, &req))
		if err != nil {
			t.Fatalf("reference session: %v", err)
		}
		return st
	}
	sessResp("stream-ref", SessionSegmentsRequest{Model: "imu-test", Start: &XY{X: 3, Y: 4}})
	for i := 1; i <= 2; i++ {
		ref := sessResp("stream-ref", SessionSegmentsRequest{Features: seg(i - 1)})
		got := lines[i]
		if got.Position.X != ref.Position.X || got.Position.Y != ref.Position.Y || got.Class != ref.Class {
			t.Fatalf("stream line %d estimate (%v, class %d) != session reference (%v, class %d)",
				i, got.Position, got.Class, ref.Position, ref.Class)
		}
	}

	// The ephemeral stream session is gone; the named reference remains.
	if n := s.Sessions().Len(); n != 1 {
		t.Fatalf("%d live sessions after stream end, want 1 (the reference)", n)
	}
}

func TestV2TrackStreamNamedSessionPersists(t *testing.T) {
	s := newTestServer(t, 0)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.Encode(streamOpen{Session: "keeper", SessionSegmentsRequest: SessionSegmentsRequest{
		Model: "imu-test", Start: &XY{},
	}})
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v2/track/stream", &buf))
	if w.Code != http.StatusOK {
		t.Fatalf("stream: %d %s", w.Code, w.Body)
	}
	if _, ok := s.Sessions().Get("keeper"); !ok {
		t.Fatal("named stream session must survive the connection")
	}
}

func TestV2TrackStreamErrorLine(t *testing.T) {
	s := newTestServer(t, 0)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.Encode(streamOpen{SessionSegmentsRequest: SessionSegmentsRequest{Model: "nope", Start: &XY{}}})
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v2/track/stream", &buf))
	var l streamLine
	if err := json.Unmarshal(bytes.TrimSpace(w.Body.Bytes()), &l); err != nil {
		t.Fatalf("bad error line %q: %v", w.Body, err)
	}
	if l.Seq != 1 || l.Error == nil || l.Error.Code != CodeModelNotFound {
		t.Fatalf("error line %+v", l)
	}
}

func TestDrainRejectsNewCompletesInflight(t *testing.T) {
	// In-flight batched requests complete during a drain; new requests
	// get 503 with the structured envelope.
	s := newTestServer(t, 60*time.Millisecond)
	raw, _ := json.Marshal(LocalizeRequest{Model: "wifi-test", Fingerprints: [][]float64{wifiDS.Test[0].Features}})

	var wg sync.WaitGroup
	inflight := httptest.NewRecorder()
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Handler().ServeHTTP(inflight, httptest.NewRequest(http.MethodPost, "/v1/localize", bytes.NewReader(raw)))
	}()
	time.Sleep(15 * time.Millisecond) // let it enter the batch queue
	s.StartDraining()

	// New work on every inference endpoint: 503 + envelope.
	for _, ep := range []string{"/v1/localize", "/v2/localize", "/v1/track", "/v2/track", "/v2/track/stream", "/v1/sessions/d/segments"} {
		w := postJSON(t, s.Handler(), ep, string(raw))
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s during drain: status %d, want 503 (body %s)", ep, w.Code, w.Body)
		}
		if e := decodeEnvelope(t, w.Body.Bytes()); e.Code != CodeDraining {
			t.Fatalf("%s during drain: code %q, want server_draining", ep, e.Code)
		}
	}

	wg.Wait()
	if inflight.Code != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d, want 200 (body %s)", inflight.Code, inflight.Body)
	}

	// Health still answers and reports the drain.
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v2/health", nil))
	var h healthResponseV2
	json.Unmarshal(w.Body.Bytes(), &h)
	if w.Code != http.StatusOK || !h.Draining || h.Status != "draining" {
		t.Fatalf("health during drain: %d %+v", w.Code, h)
	}
}

// TestGracefulDrainOverHTTP drives a real http.Server through the full
// noble-serve shutdown sequence: StartDraining, then Shutdown — the
// in-flight batched request completes, the late request is refused.
func TestGracefulDrainOverHTTP(t *testing.T) {
	s := newTestServer(t, 60*time.Millisecond)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	raw, _ := json.Marshal(LocalizeRequest{Model: "wifi-test", Fingerprints: [][]float64{wifiDS.Test[0].Features}})

	type result struct {
		status int
		body   []byte
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/localize", "application/json", bytes.NewReader(raw))
		if err != nil {
			inflight <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		inflight <- result{status: resp.StatusCode, body: buf.Bytes()}
	}()
	time.Sleep(15 * time.Millisecond)

	s.StartDraining()
	resp, err := http.Post(ts.URL+"/v2/localize", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("late request: %v", err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("late request: status %d, want 503 (%s)", resp.StatusCode, buf.Bytes())
	}
	if e := decodeEnvelope(t, buf.Bytes()); e.Code != CodeDraining {
		t.Fatalf("late request code %q", e.Code)
	}

	// Shutdown must wait for (and deliver) the batched in-flight answer.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ts.Config.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	r := <-inflight
	if r.err != nil || r.status != http.StatusOK {
		t.Fatalf("in-flight request across shutdown: status %d err %v (%s)", r.status, r.err, r.body)
	}
	var lr LocalizeResponse
	if err := json.Unmarshal(r.body, &lr); err != nil || len(lr.Results) != 1 {
		t.Fatalf("in-flight body %s: %v", r.body, err)
	}
}
