package serve

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"noble/internal/core"
	"noble/internal/geo"
	"noble/internal/store"
)

// Lifecycle tests: staged placement racing hot reload, stage recovery
// across a journal restart, and the two live evaluation signals
// (mirrored traffic, re-anchor scoring) that feed promotion decisions.

// publishWiFiGen writes (or republishes) the fixture-shaped WiFi bundle
// under name with the given model, bumping mtimes mtimeSkew into the
// future so consecutive publishes within filesystem timestamp
// granularity still re-stamp.
func publishWiFiGen(t *testing.T, dir, name string, model *core.WiFiModel, cfg core.WiFiConfig, mtimeSkew time.Duration) {
	t.Helper()
	man := Manifest{Kind: KindWiFi, WiFi: &WiFiBundle{Plan: "ipin", Dataset: tinyWiFiDatasetCfg(), Config: cfg}}
	if err := WriteBundle(dir, name, man, func(f *os.File) error { return model.Save(f) }); err != nil {
		t.Fatal(err)
	}
	stamp := time.Now().Add(mtimeSkew)
	for _, f := range []string{"manifest.json", "weights.gob"} {
		if err := os.Chtimes(filepath.Join(dir, name, f), stamp, stamp); err != nil {
			t.Fatal(err)
		}
	}
}

// retrainedWiFi trains a second fixture model with a different seed:
// same shapes, different weights — a new generation worth staging.
func retrainedWiFi(t *testing.T) (*core.WiFiModel, core.WiFiConfig) {
	t.Helper()
	fixtures(t)
	cfg2 := wifiCfg
	cfg2.Seed = 99
	return core.TrainWiFi(wifiDS, cfg2), cfg2
}

// TestPromotionRacingReload races the promotion path against hot
// reload: with Reload polling concurrently, a staged generation is
// promoted and a later one rolled back, and the retired generation must
// never be resurrected by a poll that raced the transition — the
// registry remembers rolled-back bundle bytes until they change on
// disk. Run under -race this also checks the locking of the two paths.
func TestPromotionRacingReload(t *testing.T) {
	fixtures(t)
	dir := t.TempDir()
	publishWiFiGen(t, dir, "m", wifiModel, wifiCfg, 0)

	reg := NewRegistry(dir, t.Logf)
	if _, _, err := reg.Reload(); err != nil {
		t.Fatal(err)
	}

	model2, cfg2 := retrainedWiFi(t)
	publishWiFiGen(t, dir, "m", model2, cfg2, 2*time.Second)
	if loaded, _, err := reg.Reload(); err != nil || loaded != 1 {
		t.Fatalf("shadow publish: loaded=%d err=%v", loaded, err)
	}

	// Background reload poller, as reg.Watch would run it.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, _, err := reg.Reload(); err != nil {
					t.Errorf("racing reload: %v", err)
					return
				}
			}
		}
	}()

	// Promote gen2 shadow → canary → active while reloads race.
	if err := reg.Transition("m", StageCanary, "race test"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Transition("m", StageActive, "race test"); err != nil {
		t.Fatal(err)
	}

	// Publish gen3 (the original weights again, new stamp), let the
	// poller stage it, then roll it back mid-poll.
	publishWiFiGen(t, dir, "m", wifiModel, wifiCfg, 4*time.Second)
	deadline := time.After(5 * time.Second)
	for {
		if st, ok := reg.Staged("m"); ok && st.Generation == 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("poller never staged gen3")
		case <-time.After(time.Millisecond):
		}
	}
	if err := reg.RollbackStaged("m", "race test"); err != nil {
		t.Fatal(err)
	}

	// Keep polling after the rollback: the retired bundle's unchanged
	// bytes must not come back as a fresh staged generation.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	if st, ok := reg.Staged("m"); ok {
		t.Fatalf("rolled-back generation resurrected by reload: gen=%d stage=%s", st.Generation, st.Stage)
	}
	active, ok := reg.Get("m")
	if !ok || active.Generation != 2 || active.Stage != StageActive {
		t.Fatalf("active after race: ok=%v gen=%d stage=%s, want gen=2 active", ok, active.Generation, active.Stage)
	}
}

// TestLifecycleStageSurvivesRestart journals transitions through the
// engine hook, "crashes" (journal close + fresh process state), and
// asserts recovery resumes each generation at its recorded stage: a
// canary comes back as canary with the archived active still serving,
// and a rolled-back generation stays retired instead of re-entering
// shadow.
func TestLifecycleStageSurvivesRestart(t *testing.T) {
	fixtures(t)
	models := t.TempDir()
	state := t.TempDir()
	publishWiFiGen(t, models, "m", wifiModel, wifiCfg, 0)

	boot := func() (*Registry, *Engine, *store.Journal) {
		t.Helper()
		j, err := store.Open(store.Config{Dir: state, Fsync: store.FsyncNever, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := j.Recover()
		if err != nil {
			t.Fatal(err)
		}
		reg := NewRegistry(models, t.Logf)
		reg.SetRecoveredStages(RecoveredStages(rec))
		e := NewEngine(Config{Registry: reg, Journal: j})
		if _, _, err := reg.Reload(); err != nil {
			t.Fatal(err)
		}
		return reg, e, j
	}

	reg, _, j := boot()
	active1, ok := reg.Get("m")
	if !ok || active1.Stage != StageActive {
		t.Fatalf("boot active: ok=%v %+v", ok, active1)
	}

	// Stage gen2 and walk it to canary; both transitions are journaled
	// through the engine's OnTransition hook.
	model2, cfg2 := retrainedWiFi(t)
	publishWiFiGen(t, models, "m", model2, cfg2, 2*time.Second)
	if loaded, _, err := reg.Reload(); err != nil || loaded != 1 {
		t.Fatalf("shadow publish: loaded=%d err=%v", loaded, err)
	}
	if err := reg.Transition("m", StageCanary, "test window complete"); err != nil {
		t.Fatal(err)
	}
	staged, _ := reg.Staged("m")
	canaryID := staged.BundleID
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart 1: the canary must resume as canary — not re-enter shadow,
	// not swap to active — and the archived gen1 payload must serve.
	reg2, _, j2 := boot()
	active, ok := reg2.Get("m")
	if !ok || active.Stage != StageActive {
		t.Fatalf("restart active: ok=%v %+v", ok, active)
	}
	smp := wifiDS.Test[0]
	if got, want := active.WiFi.Predict(smp.Features), wifiModel.Predict(smp.Features); got != want {
		t.Fatalf("restart must serve the archived gen1 weights: got %+v want %+v", got, want)
	}
	st2, ok := reg2.Staged("m")
	if !ok || st2.Stage != StageCanary || st2.BundleID != canaryID {
		t.Fatalf("canary after restart: ok=%v %+v, want canary bundle %s", ok, st2, canaryID)
	}
	if got, want := st2.WiFi.Predict(smp.Features), model2.Predict(smp.Features); got != want {
		t.Fatalf("recovered canary must carry the gen2 weights")
	}

	// Roll the canary back, crash again: the bundle is still on disk,
	// but recovery must keep it retired.
	if err := reg2.RollbackStaged("m", "regressed in test"); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	reg3, _, j3 := boot()
	defer j3.Close()
	if st, ok := reg3.Staged("m"); ok {
		t.Fatalf("rolled-back generation resurrected after restart: %+v", st)
	}
	if active, ok := reg3.Get("m"); !ok || active.Stage != StageActive {
		t.Fatalf("active after rollback restart: ok=%v %+v", ok, active)
	}
}

// waitForSamples polls a generation's stats until the async mirror /
// scoring goroutines have recorded at least want samples.
func waitForSamples(t *testing.T, m *Model, want int64) GenStatsSnapshot {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		snap := m.Stats.Snapshot()
		if snap.Samples() >= want {
			return snap
		}
		select {
		case <-deadline:
			t.Fatalf("stats stuck at %d samples, want ≥ %d: %+v", snap.Samples(), want, snap)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// TestShadowMirrorsWithoutServing drives localize traffic with a
// different-weights shadow staged at full mirror rate: every response
// must come from the active generation (the shadow is invisible to
// users), while the shadow accumulates mirrored rows and a non-zero
// divergence against the active's predictions.
func TestShadowMirrorsWithoutServing(t *testing.T) {
	fixtures(t)
	model2, _ := retrainedWiFi(t)
	reg := NewRegistry("", t.Logf)
	reg.Add(&Model{Name: "wifi-test", Kind: KindWiFi, WiFi: wifiModel})
	if err := reg.AddStaged(&Model{Name: "wifi-test", Kind: KindWiFi, WiFi: model2}, StageShadow); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(Config{Registry: reg, MirrorRate: 1.0})

	ctx := context.Background()
	var diverged bool
	for i := 0; i < 32; i++ {
		smp := wifiDS.Test[i%len(wifiDS.Test)]
		preds, err := e.Localize(ctx, LocalizeQuery{Model: "wifi-test", Fingerprints: [][]float64{smp.Features}})
		if err != nil {
			t.Fatal(err)
		}
		want := wifiModel.Predict(smp.Features)
		if preds[0].Pos != want.Pos || preds[0].Class != want.Class {
			t.Fatalf("request %d served from the wrong generation: got %+v want %+v", i, preds[0], want)
		}
		if shadow := model2.Predict(smp.Features); shadow.Pos != want.Pos {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("fixture models agree on every test sample; divergence assertion is vacuous")
	}

	staged, _ := reg.Staged("wifi-test")
	snap := waitForSamples(t, staged, 32)
	if snap.Mirrored != 32 {
		t.Fatalf("mirrored rows %d, want 32 at mirror rate 1.0", snap.Mirrored)
	}
	if snap.MeanDivergenceM <= 0 {
		t.Fatalf("different weights must show positive mean divergence: %+v", snap)
	}
	// The active generation records pass latency but no divergence.
	if act, _ := reg.Get("wifi-test"); act.Stats.Snapshot().Mirrored != 0 {
		t.Fatal("active generation must not count mirrored rows")
	}
}

// TestReAnchorScoresEveryLiveStage drives a tracking session through
// WiFi fixes with a staged IMU generation present: each fix must score
// the ACTIVE tracker's drift and the staged generation's prediction of
// the same window against the fix — the free ground-truth signal — even
// with sampled mirroring disabled.
func TestReAnchorScoresEveryLiveStage(t *testing.T) {
	fixtures(t)
	cfgB := imuBundle.Config
	cfgB.Seed = 77
	imuModel2 := core.TrainIMU(imuDS, cfgB)

	reg := NewRegistry("", t.Logf)
	reg.Add(&Model{Name: "wifi-test", Kind: KindWiFi, WiFi: wifiModel})
	reg.Add(&Model{Name: "imu-test", Kind: KindIMU, IMU: imuModel})
	if err := reg.AddStaged(&Model{Name: "imu-test", Kind: KindIMU, IMU: imuModel2}, StageShadow); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(Config{Registry: reg}) // MirrorRate 0: scoring must still run

	ctx := context.Background()
	segDim := imuModel.SegmentDim()
	smp := wifiDS.Test[0]
	for r := 0; r < 6; r++ {
		q := SegmentQuery{Session: "dev", Features: make([]float64, segDim)}
		if r == 0 {
			q.Model = "imu-test"
			q.Start = &geo.Point{}
			q.Window = 2
		}
		if r > 0 && r%2 == 0 {
			q.WiFiModel = "wifi-test"
			q.Fingerprint = smp.Features
		}
		if _, err := e.AppendSegments(ctx, q); err != nil {
			t.Fatalf("append %d: %v", r, err)
		}
	}

	// Fixes at r=2 and r=4 each score active and staged; the session's
	// very first fix-less appends never score (no window yet on create).
	staged, _ := reg.Staged("imu-test")
	if snap := waitForSamples(t, staged, 2); snap.Scores < 2 {
		t.Fatalf("staged re-anchor scores %d, want ≥ 2", snap.Scores)
	}
	act, _ := reg.Get("imu-test")
	if snap := act.Stats.Snapshot(); snap.Scores < 2 {
		t.Fatalf("active re-anchor scores %d, want ≥ 2: %+v", snap.Scores, snap)
	}
}
