package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"noble/internal/core"
	"noble/internal/dataset"
	"noble/internal/imu"
)

// Model kinds accepted in manifests.
const (
	KindWiFi = "wifi"
	KindIMU  = "imu"
)

// defaultWeightsFile is the weights filename used when a manifest omits
// one.
const defaultWeightsFile = "weights.gob"

// Manifest describes one model bundle on disk: the directory
// <models>/<name>/ holds a manifest.json in this schema next to the gob
// weight snapshot written by the model's Save. The manifest records the
// *complete* dataset-generation spec, not a preset name: model
// architecture (quantization codebook, scalers, head sizes) is
// reconstructed deterministically from the dataset, so the bundle stays
// loadable even if preset defaults drift.
type Manifest struct {
	Kind    string      `json:"kind"`              // "wifi" or "imu"
	Weights string      `json:"weights,omitempty"` // weight file, default "weights.gob"
	WiFi    *WiFiBundle `json:"wifi,omitempty"`
	IMU     *IMUBundle  `json:"imu,omitempty"`

	// Precision selects the serving tier. Nil (every pre-existing
	// bundle) means fp64; mode "int8" makes LoadBundle replay the
	// bundle's calibration artifact and re-run the accuracy gate before
	// the model is allowed to serve (see precision.go).
	Precision *PrecisionBlock `json:"precision,omitempty"`
}

// WiFiBundle reconstructs a Wi-Fi localizer: regenerate the synthetic
// survey, build the architecture, load weights.
type WiFiBundle struct {
	Plan    string             `json:"plan"` // "uji" or "ipin"
	Dataset dataset.WiFiConfig `json:"dataset"`
	Config  core.WiFiConfig    `json:"config"`
}

// IMUBundle reconstructs a tracking model from the campus-walk collection
// protocol.
type IMUBundle struct {
	Spacing float64        `json:"spacing"` // reference spacing of the campus network
	Sensors imu.Config     `json:"sensors"`
	Seed    int64          `json:"seed"`
	Paths   imu.PathConfig `json:"paths"`
	Config  core.IMUConfig `json:"config"`
}

// BuildWiFiDataset regenerates the survey a Wi-Fi bundle was trained on.
func (b *WiFiBundle) BuildWiFiDataset() (*dataset.WiFi, error) {
	switch b.Plan {
	case "uji":
		return dataset.SynthUJI(b.Dataset), nil
	case "ipin":
		return dataset.SynthIPIN(b.Dataset), nil
	default:
		return nil, fmt.Errorf("serve: unknown wifi plan %q (want uji or ipin)", b.Plan)
	}
}

// BuildIMUDataset regenerates the path dataset an IMU bundle was trained
// on.
func (b *IMUBundle) BuildIMUDataset() *imu.PathDataset {
	net := imu.NewCampusNetwork(b.Spacing)
	track := imu.Synthesize(net, b.Sensors, b.Seed)
	return imu.BuildPaths(track, b.Paths)
}

// openBundle reads a bundle's manifest and opens its weights file; the
// caller owns closing the returned file.
func openBundle(dir string) (*Manifest, *os.File, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, nil, fmt.Errorf("serve: reading bundle manifest: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, nil, fmt.Errorf("serve: parsing %s: %w", filepath.Join(dir, "manifest.json"), err)
	}
	weights := man.Weights
	if weights == "" {
		weights = defaultWeightsFile
	}
	wf, err := os.Open(filepath.Join(dir, weights))
	if err != nil {
		return nil, nil, fmt.Errorf("serve: opening bundle weights: %w", err)
	}
	return &man, wf, nil
}

// LoadBundle reads the bundle in dir, rebuilds the model architecture from
// the manifest's dataset spec, restores the saved weights, and — for an
// int8 bundle — replays the calibration and re-runs the accuracy gate.
// The returned Model is named after the bundle directory.
func LoadBundle(dir string) (*Model, error) {
	manp, wf, err := openBundle(dir)
	if err != nil {
		return nil, err
	}
	man := *manp
	defer wf.Close()

	m := &Model{Name: filepath.Base(dir), Kind: man.Kind}
	var (
		wifiDS *dataset.WiFi
		imuDS  *imu.PathDataset
	)
	switch man.Kind {
	case KindWiFi:
		if man.WiFi == nil {
			return nil, fmt.Errorf("serve: bundle %s: kind wifi without wifi spec", m.Name)
		}
		wifiDS, err = man.WiFi.BuildWiFiDataset()
		if err != nil {
			return nil, err
		}
		model := core.NewWiFiModel(wifiDS, man.WiFi.Config)
		if err := model.Load(wf); err != nil {
			return nil, fmt.Errorf("serve: bundle %s: %w", m.Name, err)
		}
		m.WiFi = model
	case KindIMU:
		if man.IMU == nil {
			return nil, fmt.Errorf("serve: bundle %s: kind imu without imu spec", m.Name)
		}
		imuDS = man.IMU.BuildIMUDataset()
		model := core.NewIMUModel(imuDS, man.IMU.Config)
		if err := model.Load(wf); err != nil {
			return nil, fmt.Errorf("serve: bundle %s: %w", m.Name, err)
		}
		m.IMU = model
	default:
		return nil, fmt.Errorf("serve: bundle %s: unknown kind %q", m.Name, man.Kind)
	}
	// Precision tier: replay the calibration and re-run the accuracy
	// gate against the regenerated held-out split. A bundle that fails
	// here never reaches the registry.
	if err := applyPrecision(dir, &man, m, wifiDS, imuDS); err != nil {
		return nil, err
	}
	return m, nil
}

// ExtraFile is an additional bundle payload file (e.g. the int8
// calibration artifact) written atomically alongside the weights.
type ExtraFile struct {
	Name  string
	Write func(f *os.File) error
}

// WriteBundle persists a trained model as a loadable bundle at
// <dir>/<name>/. Every file is written to a temporary and renamed into
// place — weights first, then extras, manifest last — so a watching
// registry never observes a manifest without its full payload.
func WriteBundle(dir, name string, man Manifest, save func(f *os.File) error, extras ...ExtraFile) error {
	bundle := filepath.Join(dir, name)
	if err := os.MkdirAll(bundle, 0o755); err != nil {
		return fmt.Errorf("serve: creating bundle dir: %w", err)
	}
	if man.Weights == "" {
		man.Weights = defaultWeightsFile
	}
	if err := atomicWrite(filepath.Join(bundle, man.Weights), save); err != nil {
		return err
	}
	for _, ex := range extras {
		if err := atomicWrite(filepath.Join(bundle, ex.Name), ex.Write); err != nil {
			return err
		}
	}
	raw, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: encoding manifest: %w", err)
	}
	return atomicWrite(filepath.Join(bundle, "manifest.json"), func(f *os.File) error {
		_, err := f.Write(append(raw, '\n'))
		return err
	})
}

// atomicWrite writes via a temp file in the target directory plus rename,
// reporting write, sync, close and rename errors.
func atomicWrite(path string, fill func(f *os.File) error) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("serve: creating temp file: %w", err)
	}
	tmp := f.Name()
	cleanup := func() { os.Remove(tmp) }
	if err := fill(f); err != nil {
		f.Close()
		cleanup()
		return fmt.Errorf("serve: writing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		cleanup()
		return fmt.Errorf("serve: syncing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		cleanup()
		return fmt.Errorf("serve: closing %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		cleanup()
		return fmt.Errorf("serve: publishing %s: %w", path, err)
	}
	return nil
}
