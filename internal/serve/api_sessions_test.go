package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"noble/internal/imu"
)

// TestBodySizeAndDecodeErrors pins the 400-vs-413 contract on every
// JSON endpoint: only an oversized body is 413; malformed JSON and
// trailing garbage are the client's 400.
func TestBodySizeAndDecodeErrors(t *testing.T) {
	s := newTestServer(t, 0)
	oversized := `{"pad":"` + strings.Repeat("a", maxBodyBytes+1) + `"}`
	endpoints := []string{"/v1/localize", "/v1/track", "/v1/sessions/dev-err/segments"}
	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad json", `{not json`, http.StatusBadRequest},
		{"wrong top-level type", `[1,2,3]`, http.StatusBadRequest},
		{"trailing garbage", `{"model":"imu-test"} extra`, http.StatusBadRequest},
		{"oversized body", oversized, http.StatusRequestEntityTooLarge},
	}
	for _, ep := range endpoints {
		for _, tc := range cases {
			w := postJSON(t, s.Handler(), ep, tc.body)
			if w.Code != tc.want {
				t.Errorf("%s %s: status %d, want %d (body %.120s)", ep, tc.name, w.Code, tc.want, w.Body)
			}
		}
	}
}

// postSession is a typed helper for the session endpoint.
func postSession(t *testing.T, s *Server, id string, req SessionSegmentsRequest) (*httptest.ResponseRecorder, SessionResponse) {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	w := postJSON(t, s.Handler(), "/v1/sessions/"+id+"/segments", string(raw))
	var resp SessionResponse
	if w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decoding session response: %v (%s)", err, w.Body)
		}
	}
	return w, resp
}

func TestSessionValidation(t *testing.T) {
	s := newTestServer(t, 0)
	seg := make([]float64, imuModel.SegmentDim())
	cases := []struct {
		name string
		id   string
		req  SessionSegmentsRequest
		want int
	}{
		{"create without model", "v0", SessionSegmentsRequest{Start: &XY{}, Features: seg}, http.StatusBadRequest},
		{"create with unknown model", "v1", SessionSegmentsRequest{Model: "nope", Start: &XY{}}, http.StatusNotFound},
		{"create with wifi model", "v2", SessionSegmentsRequest{Model: "wifi-test", Start: &XY{}}, http.StatusBadRequest},
		{"create without origin", "v3", SessionSegmentsRequest{Model: "imu-test", Features: seg}, http.StatusBadRequest},
		{"wifi_model without fingerprint", "v4", SessionSegmentsRequest{Model: "imu-test", Start: &XY{}, WiFiModel: "wifi-test"}, http.StatusBadRequest},
		{"fingerprint without wifi_model", "v5", SessionSegmentsRequest{Model: "imu-test", Start: &XY{}, Fingerprint: []float64{0.1}}, http.StatusBadRequest},
		{"fingerprint with wrong dim", "v6", SessionSegmentsRequest{Model: "imu-test", Start: &XY{}, WiFiModel: "wifi-test", Fingerprint: []float64{0.1}}, http.StatusBadRequest},
		{"features not a segment multiple", "v7", SessionSegmentsRequest{Model: "imu-test", Start: &XY{}, Features: seg[:len(seg)-1]}, http.StatusBadRequest},
		{"too many segments", "v8", SessionSegmentsRequest{Model: "imu-test", Start: &XY{},
			Features: make([]float64, (maxSegmentsPerRequest+1)*imuModel.SegmentDim())}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if w, _ := postSession(t, s, tc.id, tc.req); w.Code != tc.want {
			t.Errorf("%s: status %d, want %d (body %s)", tc.name, w.Code, tc.want, w.Body)
		}
	}

	// Model mismatch against an existing session is a conflict.
	if w, _ := postSession(t, s, "bound", SessionSegmentsRequest{Model: "imu-test", Start: &XY{}}); w.Code != http.StatusOK {
		t.Fatalf("create: %d %s", w.Code, w.Body)
	}
	if w, _ := postSession(t, s, "bound", SessionSegmentsRequest{Model: "other-model"}); w.Code != http.StatusConflict {
		t.Errorf("model mismatch: status %d, want 409", w.Code)
	}

	// A 400 must leave the session untouched: a valid fingerprint
	// riding on rejected features must NOT re-anchor the trajectory.
	if w, _ := postSession(t, s, "bound", SessionSegmentsRequest{
		WiFiModel:   "wifi-test",
		Fingerprint: wifiDS.Test[0].Features,
		Features:    seg[:len(seg)-1],
	}); w.Code != http.StatusBadRequest {
		t.Fatalf("bad features with fix: status %d, want 400", w.Code)
	}
	g := httptest.NewRecorder()
	s.Handler().ServeHTTP(g, httptest.NewRequest(http.MethodGet, "/v1/sessions/bound", nil))
	var state SessionResponse
	if err := json.Unmarshal(g.Body.Bytes(), &state); err != nil {
		t.Fatal(err)
	}
	if state.Position != (XY{}) || state.Steps != 0 {
		t.Fatalf("rejected request mutated the session: %+v", state)
	}

	// A rejected create must not leave a session behind either.
	if w, _ := postSession(t, s, "v9", SessionSegmentsRequest{
		Model: "imu-test", Start: &XY{}, Features: seg[:len(seg)-1],
	}); w.Code != http.StatusBadRequest {
		t.Fatalf("create with bad features: status %d, want 400", w.Code)
	}
	g = httptest.NewRecorder()
	s.Handler().ServeHTTP(g, httptest.NewRequest(http.MethodGet, "/v1/sessions/v9", nil))
	if g.Code != http.StatusNotFound {
		t.Fatalf("rejected create left a session behind: GET status %d", g.Code)
	}
}

// TestSessionTrackingMatchesPathTracker drives a session over HTTP and
// mirrors it with a local core.PathTracker: every step must be
// bit-identical, and a WiFi fix must re-anchor the trajectory to the
// localize path's answer.
func TestSessionTrackingMatchesPathTracker(t *testing.T) {
	s := newTestServer(t, 0)
	var p imu.Path
	for _, cand := range imuDS.Test {
		if cand.NumSegments >= 3 {
			p = cand
			break
		}
	}
	if p.NumSegments < 3 {
		t.Fatal("fixture has no path with 3+ segments")
	}
	segDim := imuModel.SegmentDim()
	mirror := imuModel.NewPathTracker(p.Start, defaultSessionWindow)

	w, resp := postSession(t, s, "dev-a", SessionSegmentsRequest{
		Model: "imu-test",
		Start: &XY{X: p.Start.X, Y: p.Start.Y},
	})
	if w.Code != http.StatusOK || !resp.Created || resp.Steps != 0 {
		t.Fatalf("create: %d %+v (%s)", w.Code, resp, w.Body)
	}

	for step := 0; step < 3; step++ {
		seg := p.Features[step*segDim : (step+1)*segDim]
		w, resp := postSession(t, s, "dev-a", SessionSegmentsRequest{Features: seg})
		if w.Code != http.StatusOK {
			t.Fatalf("step %d: %d %s", step, w.Code, w.Body)
		}
		path, err := mirror.Step(seg)
		if err != nil {
			t.Fatal(err)
		}
		want := imuModel.PredictPaths([]imu.Path{path})[0]
		mirror.Commit(seg, want)
		if len(resp.Results) != 1 {
			t.Fatalf("step %d: %d results", step, len(resp.Results))
		}
		got := resp.Results[0]
		if got.End.X != want.End.X || got.End.Y != want.End.Y || got.Class != want.Class ||
			got.Displacement.X != want.Displacement.X || got.Displacement.Y != want.Displacement.Y {
			t.Fatalf("step %d: session %+v, direct %+v", step, got, want)
		}
		if got.Step != step+1 || resp.Steps != step+1 {
			t.Fatalf("step %d: counted as %d/%d", step, got.Step, resp.Steps)
		}
		if resp.Position != got.End {
			t.Fatalf("step %d: position %+v != end %+v", step, resp.Position, got.End)
		}
	}

	// GET reflects the same state.
	g := httptest.NewRecorder()
	s.Handler().ServeHTTP(g, httptest.NewRequest(http.MethodGet, "/v1/sessions/dev-a", nil))
	var got SessionResponse
	if g.Code != http.StatusOK || json.Unmarshal(g.Body.Bytes(), &got) != nil {
		t.Fatalf("GET session: %d %s", g.Code, g.Body)
	}
	est := mirror.Estimate()
	if got.Steps != 3 || got.Position.X != est.End.X || got.Position.Y != est.End.Y {
		t.Fatalf("GET state %+v, tracker estimate %+v", got, est)
	}

	// A WiFi fix re-anchors: the estimate must jump to exactly what the
	// localize path answers for that fingerprint, shifting the end
	// estimate away from dead reckoning, and travel restarts from it.
	before := got.Position
	fp := wifiDS.Test[0].Features
	fix := wifiModel.Predict(fp)
	w, resp = postSession(t, s, "dev-a", SessionSegmentsRequest{
		WiFiModel: "wifi-test", Fingerprint: fp,
	})
	if w.Code != http.StatusOK || !resp.ReAnchored || resp.Anchor == nil {
		t.Fatalf("fix: %d %+v (%s)", w.Code, resp, w.Body)
	}
	if resp.Position.X != fix.Pos.X || resp.Position.Y != fix.Pos.Y {
		t.Fatalf("fixed position %+v, localize says %+v", resp.Position, fix.Pos)
	}
	if resp.Position == before {
		t.Fatal("the fix did not shift the end estimate")
	}
	if resp.Traveled.X != 0 || resp.Traveled.Y != 0 {
		t.Fatalf("travel after fix %+v, want zero", resp.Traveled)
	}
	mirror.ReAnchor(fix.Pos)

	// The next step dead-reckons from the fix — still bit-identical.
	seg := p.Features[:segDim]
	w, resp = postSession(t, s, "dev-a", SessionSegmentsRequest{Features: seg})
	if w.Code != http.StatusOK {
		t.Fatalf("post-fix step: %d %s", w.Code, w.Body)
	}
	path, _ := mirror.Step(seg)
	if path.Start != fix.Pos || path.NumSegments != 1 {
		t.Fatalf("mirror path after fix %+v", path)
	}
	want := imuModel.PredictPaths([]imu.Path{path})[0]
	if resp.Results[0].End.X != want.End.X || resp.Results[0].Class != want.Class {
		t.Fatalf("post-fix step: session %+v, direct %+v", resp.Results[0], want)
	}

	// Delete ends the session.
	d := httptest.NewRecorder()
	s.Handler().ServeHTTP(d, httptest.NewRequest(http.MethodDelete, "/v1/sessions/dev-a", nil))
	if d.Code != http.StatusOK {
		t.Fatalf("DELETE: %d %s", d.Code, d.Body)
	}
	g = httptest.NewRecorder()
	s.Handler().ServeHTTP(g, httptest.NewRequest(http.MethodGet, "/v1/sessions/dev-a", nil))
	if g.Code != http.StatusNotFound {
		t.Fatalf("GET after delete: %d", g.Code)
	}
}

// TestBatchedSessionStepsMatchUnbatched is the tentpole's equivalence
// claim: concurrent session steps coalesce through the track batcher
// into shared PredictPaths passes while every device receives exactly
// the prediction it would have computed alone.
func TestBatchedSessionStepsMatchUnbatched(t *testing.T) {
	s := newTestServer(t, 5*time.Millisecond)
	const n = 16
	paths := imuDS.Test
	if len(paths) < n {
		t.Fatalf("fixture too small: %d test paths", len(paths))
	}
	segDim := imuModel.SegmentDim()

	// Create sessions sequentially (cheap), then fire all first steps
	// concurrently so they meet in the batcher.
	for i := 0; i < n; i++ {
		w, _ := postSession(t, s, fmt.Sprintf("dev-%d", i), SessionSegmentsRequest{
			Model: "imu-test",
			Start: &XY{X: paths[i].Start.X, Y: paths[i].Start.Y},
		})
		if w.Code != http.StatusOK {
			t.Fatalf("create %d: %d %s", i, w.Code, w.Body)
		}
	}
	var wg sync.WaitGroup
	results := make([]SessionResponse, n)
	codes := make([]int, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raw, _ := json.Marshal(SessionSegmentsRequest{Features: paths[i].Features[:segDim]})
			<-start
			w := postJSON(t, s.Handler(), fmt.Sprintf("/v1/sessions/dev-%d/segments", i), string(raw))
			codes[i] = w.Code
			json.Unmarshal(w.Body.Bytes(), &results[i])
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("device %d: status %d", i, codes[i])
		}
		want := imuModel.PredictPaths([]imu.Path{{
			Start:       paths[i].Start,
			NumSegments: 1,
			Features:    paths[i].Features[:segDim],
		}})[0]
		got := results[i].Results[0]
		if got.End.X != want.End.X || got.End.Y != want.End.Y || got.Class != want.Class {
			t.Fatalf("device %d: batched step %+v != direct %+v", i, got, want)
		}
	}
	passes, rows := s.metrics.BatchStats("track")
	if rows != n {
		t.Fatalf("track batcher saw %d rows, want %d", rows, n)
	}
	if passes >= n {
		t.Fatalf("no coalescing: %d passes for %d concurrent steps", passes, n)
	}
	t.Logf("coalesced %d session steps into %d forward passes", n, passes)
}

// TestBatchedTrackMatchesUnbatched covers the same property for the
// stateless /v1/track endpoint, which now rides the track batcher too.
func TestBatchedTrackMatchesUnbatched(t *testing.T) {
	s := newTestServer(t, 5*time.Millisecond)
	const n = 12
	paths := imuDS.Test
	if len(paths) < n {
		t.Fatalf("fixture too small: %d test paths", len(paths))
	}
	var wg sync.WaitGroup
	results := make([]TrackResult, n)
	codes := make([]int, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raw, _ := json.Marshal(TrackRequest{Model: "imu-test", Paths: []TrackPath{{
				Start:    XY{X: paths[i].Start.X, Y: paths[i].Start.Y},
				Features: paths[i].Features,
			}}})
			<-start
			w := postJSON(t, s.Handler(), "/v1/track", string(raw))
			codes[i] = w.Code
			var resp TrackResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err == nil && len(resp.Results) == 1 {
				results[i] = resp.Results[0]
			}
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		want := imuModel.PredictPaths([]imu.Path{paths[i]})[0]
		if results[i].End.X != want.End.X || results[i].End.Y != want.End.Y || results[i].Class != want.Class {
			t.Fatalf("request %d: batched %+v != direct %+v", i, results[i], want)
		}
	}
	if passes, _ := s.metrics.BatchStats("track"); passes >= n {
		t.Fatalf("no coalescing: %d passes for %d concurrent requests", passes, n)
	}
}

// TestSessionEvictionAndMetrics checks TTL eviction through the store
// the server owns, and the session series on /metrics.
func TestSessionEvictionAndMetrics(t *testing.T) {
	fixtures(t)
	reg := NewRegistry("", t.Logf)
	reg.Add(&Model{Name: "imu-test", Kind: KindIMU, IMU: imuModel})
	reg.Add(&Model{Name: "wifi-test", Kind: KindWiFi, WiFi: wifiModel})
	s := New(Config{Registry: reg, SessionTTL: time.Minute})

	if w, _ := postSession(t, s, "ttl-dev", SessionSegmentsRequest{Model: "imu-test", Start: &XY{}}); w.Code != http.StatusOK {
		t.Fatalf("create: %d %s", w.Code, w.Body)
	}
	if n := s.Sessions().Sweep(time.Now()); n != 0 {
		t.Fatalf("fresh session evicted (%d)", n)
	}
	sess, _ := s.Sessions().Get("ttl-dev")
	sess.Touch(time.Now().Add(-2 * time.Minute))
	if n := s.Sessions().Sweep(time.Now()); n != 1 {
		t.Fatalf("idle session not evicted (%d)", n)
	}
	g := httptest.NewRecorder()
	s.Handler().ServeHTTP(g, httptest.NewRequest(http.MethodGet, "/v1/sessions/ttl-dev", nil))
	if g.Code != http.StatusNotFound {
		t.Fatalf("GET after eviction: %d", g.Code)
	}

	m := httptest.NewRecorder()
	s.Handler().ServeHTTP(m, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := m.Body.String()
	for _, want := range []string{
		"noble_sessions_active 0",
		`noble_sessions_total{event="created"} 1`,
		`noble_sessions_total{event="evicted"} 1`,
		"noble_session_steps_total",
		"noble_session_reanchors_total",
		`noble_batch_rows_count{kind="track"}`,
		`noble_batch_rows_count{kind="localize"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, body)
		}
	}
}
