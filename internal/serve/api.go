package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"time"

	"noble/internal/geo"
	"noble/internal/obs"
)

// This file is the /v1 HTTP adapter (plus the shared transport
// plumbing): handlers decode the legacy wire shapes, call the Engine,
// and re-encode its typed results and errors into the original free-text
// protocol byte-for-byte — pinned by the golden-file tests in
// golden_test.go. All validation and inference logic lives in the
// Engine; nothing here inspects models or sessions directly.

// LocalizeRequest is the POST /v1/localize body: one or more normalized
// fingerprints (values in [0,1], as produced by radio.Normalize) for one
// named Wi-Fi model. A typical device sends exactly one fingerprint; the
// server's micro-batcher coalesces across devices.
type LocalizeRequest struct {
	Model        string      `json:"model"`
	Fingerprints [][]float64 `json:"fingerprints"`
}

// Position is a decoded localization result.
type Position struct {
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	Class    int     `json:"class"`
	Building int     `json:"building"`
	Floor    int     `json:"floor"`
}

// LocalizeResponse answers /v1/localize in request order.
type LocalizeResponse struct {
	Model   string     `json:"model"`
	Results []Position `json:"results"`
}

// TrackPath is one IMU path to decode: the anchor position plus the
// concatenated per-segment features (a multiple of the model's
// segment_dim, at most max_segments segments).
type TrackPath struct {
	Start    XY        `json:"start"`
	Features []float64 `json:"features"`
}

// XY is a planar point.
type XY struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// TrackRequest is the POST /v1/track body.
type TrackRequest struct {
	Model string      `json:"model"`
	Paths []TrackPath `json:"paths"`
}

// TrackResult is one decoded path end.
type TrackResult struct {
	End          XY  `json:"end"`
	Class        int `json:"class"`
	Displacement XY  `json:"displacement"`
}

// TrackResponse answers /v1/track in request order.
type TrackResponse struct {
	Model   string        `json:"model"`
	Results []TrackResult `json:"results"`
}

// apiError is the /v1 JSON error body.
type apiError struct {
	Error string `json:"error"`
}

// Request limits: the serving port is open to fleets of devices, so a
// single request must not be able to exhaust server memory or smuggle an
// unbounded batch past MaxBatch.
const (
	maxBodyBytes       = 4 << 20 // 4 MiB
	maxFingerprints    = 256     // per localize request
	maxPathsPerRequest = 64      // per track request
)

// routes installs all handlers on the server mux.
func (s *Server) routes() {
	// /v1: the legacy free-text protocol.
	s.mux.HandleFunc("POST /v1/localize", s.instrument("localize", s.gate(s.handleLocalize)))
	s.mux.HandleFunc("POST /v1/track", s.instrument("track", s.gate(s.handleTrack)))
	s.mux.HandleFunc("POST /v1/sessions/{id}/segments", s.instrument("sessions", s.gate(s.handleSessionSegments)))
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.instrument("sessions_get", s.handleSessionGet))
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.instrument("sessions_delete", s.handleSessionDelete))
	s.mux.HandleFunc("GET /v1/models", s.instrument("models", s.handleModels))
	// /v2: structured errors, request IDs, deadlines, streaming.
	s.routesV2()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	// /debug: the introspection plane. Traces and runtime are cheap JSON
	// reads; the full pprof family additionally lives on the opt-in
	// admin mux (see DebugHandler).
	s.mux.HandleFunc("GET /debug/traces", s.handleDebugTraces)
	s.mux.HandleFunc("GET /debug/runtime", s.handleDebugRuntime)
	s.mux.HandleFunc("GET /debug/lifecycle", s.handleDebugLifecycle)
	s.mux.HandleFunc("GET /debug/retrain", s.handleDebugRetrain)
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
}

// gate rejects new inference work while the server drains. The 503 body
// is the structured /v2 envelope on every protocol version: /v1 never
// had drain semantics, so no legacy client depends on its shape, and a
// machine-readable code is strictly more useful to a retrying fleet.
func (s *Server) gate(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.engine.Draining() {
			w.Header().Set("Retry-After", "1")
			writeEnvelope(w, s.engine.NextRequestID(),
				errf(CodeDraining, http.StatusServiceUnavailable, "server is draining"))
			return
		}
		h(w, r)
	}
}

// instrument wraps a handler with request counting, latency recording,
// and the request trace: every instrumented request gets a Trace on its
// context (honoring a client-supplied X-Trace-Id, echoed back on the
// response) whose spans the handler, the batcher, and the journal glue
// fill in; the trace finishes with the response status when the handler
// returns.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		cw := &codeWriter{ResponseWriter: w, code: http.StatusOK}
		if t := s.engine.Tracer(); t != nil {
			ctx, tr := t.Start(r.Context(), name, r.Header.Get("X-Trace-Id"))
			w.Header().Set("X-Trace-Id", tr.ID())
			r = r.WithContext(ctx)
			defer func() { tr.Finish(cw.code) }()
		}
		h(cw, r)
		s.metrics.Observe(name, cw.code, time.Since(start))
	}
}

// codeWriter captures the status code written by a handler.
type codeWriter struct {
	http.ResponseWriter
	code int
}

func (w *codeWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying writer's
// Flush (the /v2 NDJSON stream needs it through the instrument wrapper).
func (w *codeWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// writeJSON encodes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// fail writes a /v1 JSON error body.
func fail(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// failEngine maps an Engine error onto the /v1 wire: its suggested
// status with the free-text message as the body.
func failEngine(w http.ResponseWriter, err error) {
	e := AsError(err)
	fail(w, e.Status, "%s", e.Message)
}

// failBodyError maps a request-body read/decode error onto the /v1
// wire: only an oversized body (*http.MaxBytesError) is 413; anything
// else is the client's malformed request, reported as 400 with the
// given message. Classification is shared with /v2 (see bodyError).
func failBodyError(w http.ResponseWriter, err error, format string, args ...any) {
	e := bodyError(err, format, args...)
	fail(w, e.Status, "%s", e.Message)
}

// decodeStrict decodes a size-capped JSON request body into v, rejecting
// trailing garbage, and writes the error response itself on failure: an
// oversized body is 413, anything else malformed is 400.
//
//vet:strictdecode-impl
func decodeStrict(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		failBodyError(w, err, "decoding request: %v", err)
		return false
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		failBodyError(w, err, "trailing data after JSON body")
		return false
	}
	return true
}

func (s *Server) handleLocalize(w http.ResponseWriter, r *http.Request) {
	dec := obs.Begin(r.Context(), obs.StageDecode)
	//vet:ignore strictdecode -- localize fast path: the body is read whole for the hand-rolled fastjson parser; MaxBytesReader keeps the 413 cap and bodyError keeps the typed mapping (pinned by the golden-file tests)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		dec.End()
		failBodyError(w, err, "reading request: %v", err)
		return
	}
	var req LocalizeRequest
	if !parseLocalizeRequest(body, &req) {
		req = LocalizeRequest{}
		if err := json.Unmarshal(body, &req); err != nil {
			dec.End()
			fail(w, http.StatusBadRequest, "decoding request: %v", err)
			return
		}
	}
	dec.End()
	preds, err := s.engine.Localize(r.Context(), LocalizeQuery{
		Model:        req.Model,
		Fingerprints: req.Fingerprints,
	})
	if err != nil {
		failEngine(w, err)
		return
	}
	enc := obs.Begin(r.Context(), obs.StageEncode)
	resp := LocalizeResponse{Model: req.Model, Results: make([]Position, len(preds))}
	for i, p := range preds {
		resp.Results[i] = Position{
			X: p.Pos.X, Y: p.Pos.Y,
			Class: p.Class, Building: p.Building, Floor: p.Floor,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(appendLocalizeResponse(nil, &resp))
	enc.End()
}

func (s *Server) handleTrack(w http.ResponseWriter, r *http.Request) {
	dec := obs.Begin(r.Context(), obs.StageDecode)
	var req TrackRequest
	if !decodeStrict(w, r, &req) {
		dec.End()
		return
	}
	dec.End()
	q := TrackQuery{Model: req.Model, Paths: make([]PathQuery, len(req.Paths))}
	for i, p := range req.Paths {
		q.Paths[i] = PathQuery{Start: geo.Point{X: p.Start.X, Y: p.Start.Y}, Features: p.Features}
	}
	preds, err := s.engine.Track(r.Context(), q)
	if err != nil {
		failEngine(w, err)
		return
	}
	enc := obs.Begin(r.Context(), obs.StageEncode)
	resp := TrackResponse{Model: req.Model, Results: make([]TrackResult, len(preds))}
	for i, p := range preds {
		resp.Results[i] = TrackResult{
			End:          XY{X: p.End.X, Y: p.End.Y},
			Class:        p.Class,
			Displacement: XY{X: p.Displacement.X, Y: p.Displacement.Y},
		}
	}
	writeJSON(w, http.StatusOK, resp)
	enc.End()
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"models": s.engine.Models()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.engine.Health()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         h.Status,
		"models":         h.Models,
		"batching":       h.Batching,
		"sessions":       h.Sessions,
		"uptime_seconds": int64(h.Uptime.Seconds()),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w)
	s.engine.Registry().WritePrometheus(w)
	s.engine.Sessions().WritePrometheus(w)
	if j := s.engine.Journal(); j != nil {
		j.WritePrometheus(w)
	}
	s.engine.Tracer().WritePrometheus(w) // nil-safe no-op with tracing off
	if s.retrain != nil {
		s.retrain.WritePrometheus(w)
	}
	obs.WriteRuntimePrometheus(w)
}
