package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"time"

	"noble/internal/core"
	"noble/internal/geo"
	"noble/internal/imu"
)

// LocalizeRequest is the POST /v1/localize body: one or more normalized
// fingerprints (values in [0,1], as produced by radio.Normalize) for one
// named Wi-Fi model. A typical device sends exactly one fingerprint; the
// server's micro-batcher coalesces across devices.
type LocalizeRequest struct {
	Model        string      `json:"model"`
	Fingerprints [][]float64 `json:"fingerprints"`
}

// Position is a decoded localization result.
type Position struct {
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	Class    int     `json:"class"`
	Building int     `json:"building"`
	Floor    int     `json:"floor"`
}

// LocalizeResponse answers /v1/localize in request order.
type LocalizeResponse struct {
	Model   string     `json:"model"`
	Results []Position `json:"results"`
}

// TrackPath is one IMU path to decode: the anchor position plus the
// concatenated per-segment features (a multiple of the model's
// segment_dim, at most max_segments segments).
type TrackPath struct {
	Start    XY        `json:"start"`
	Features []float64 `json:"features"`
}

// XY is a planar point.
type XY struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// TrackRequest is the POST /v1/track body.
type TrackRequest struct {
	Model string      `json:"model"`
	Paths []TrackPath `json:"paths"`
}

// TrackResult is one decoded path end.
type TrackResult struct {
	End          XY  `json:"end"`
	Class        int `json:"class"`
	Displacement XY  `json:"displacement"`
}

// TrackResponse answers /v1/track in request order.
type TrackResponse struct {
	Model   string        `json:"model"`
	Results []TrackResult `json:"results"`
}

// apiError is the JSON error body.
type apiError struct {
	Error string `json:"error"`
}

// Request limits: the serving port is open to fleets of devices, so a
// single request must not be able to exhaust server memory or smuggle an
// unbounded batch past MaxBatch.
const (
	maxBodyBytes       = 4 << 20 // 4 MiB
	maxFingerprints    = 256     // per localize request
	maxPathsPerRequest = 64      // per track request
)

// routes installs all handlers on the server mux.
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/localize", s.instrument("localize", s.handleLocalize))
	s.mux.HandleFunc("POST /v1/track", s.instrument("track", s.handleTrack))
	s.mux.HandleFunc("POST /v1/sessions/{id}/segments", s.instrument("sessions", s.handleSessionSegments))
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.instrument("sessions_get", s.handleSessionGet))
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.instrument("sessions_delete", s.handleSessionDelete))
	s.mux.HandleFunc("GET /v1/models", s.instrument("models", s.handleModels))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
}

// instrument wraps a handler with request counting and latency recording.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		cw := &codeWriter{ResponseWriter: w, code: http.StatusOK}
		h(cw, r)
		s.metrics.Observe(name, cw.code, time.Since(start))
	}
}

// codeWriter captures the status code written by a handler.
type codeWriter struct {
	http.ResponseWriter
	code int
}

func (w *codeWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// writeJSON encodes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// fail writes a JSON error body.
func fail(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// resolve looks a model up and enforces its kind, writing the error
// response itself on failure.
func (s *Server) resolve(w http.ResponseWriter, name, kind string) (*Model, bool) {
	if name == "" {
		fail(w, http.StatusBadRequest, "missing model name")
		return nil, false
	}
	m, ok := s.reg.Get(name)
	if !ok {
		fail(w, http.StatusNotFound, "unknown model %q", name)
		return nil, false
	}
	if m.Kind != kind {
		fail(w, http.StatusBadRequest, "model %q is kind %q, endpoint wants %q", name, m.Kind, kind)
		return nil, false
	}
	return m, true
}

// predictWiFiBatch is the localize Batcher's callback: resolve the model
// at flush time (so batches formed across a hot reload run on the newest
// generation) and run one batched forward pass.
func (s *Server) predictWiFiBatch(model string, rows [][]float64) ([]core.WiFiPrediction, error) {
	m, ok := s.reg.Get(model)
	if !ok || m.WiFi == nil {
		return nil, fmt.Errorf("model %q disappeared", model)
	}
	return m.WiFi.PredictBatch(rows), nil
}

// predictIMUBatch is the track Batcher's callback, coalescing /v1/track
// paths and session steps into one PredictPaths pass.
func (s *Server) predictIMUBatch(model string, paths []imu.Path) ([]core.IMUPrediction, error) {
	m, ok := s.reg.Get(model)
	if !ok || m.IMU == nil {
		return nil, fmt.Errorf("model %q disappeared", model)
	}
	return m.IMU.PredictPaths(paths), nil
}

// failBodyError maps a request-body read/decode error: only an
// oversized body (*http.MaxBytesError) is 413; anything else is the
// client's malformed request, reported as 400 with the given message.
func failBodyError(w http.ResponseWriter, err error, format string, args ...any) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		fail(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", maxBodyBytes)
		return
	}
	fail(w, http.StatusBadRequest, format, args...)
}

// decodeStrict decodes a size-capped JSON request body into v, rejecting
// trailing garbage, and writes the error response itself on failure: an
// oversized body is 413, anything else malformed is 400.
func decodeStrict(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		failBodyError(w, err, "decoding request: %v", err)
		return false
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		failBodyError(w, err, "trailing data after JSON body")
		return false
	}
	return true
}

func (s *Server) handleLocalize(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		failBodyError(w, err, "reading request: %v", err)
		return
	}
	var req LocalizeRequest
	if !parseLocalizeRequest(body, &req) {
		req = LocalizeRequest{}
		if err := json.Unmarshal(body, &req); err != nil {
			fail(w, http.StatusBadRequest, "decoding request: %v", err)
			return
		}
	}
	m, ok := s.resolve(w, req.Model, KindWiFi)
	if !ok {
		return
	}
	if len(req.Fingerprints) == 0 {
		fail(w, http.StatusBadRequest, "no fingerprints")
		return
	}
	if len(req.Fingerprints) > maxFingerprints {
		fail(w, http.StatusBadRequest, "%d fingerprints exceeds the per-request limit of %d",
			len(req.Fingerprints), maxFingerprints)
		return
	}
	dim := m.WiFi.InputDim()
	for i, fp := range req.Fingerprints {
		if len(fp) != dim {
			fail(w, http.StatusBadRequest, "fingerprint %d has %d features, model %q wants %d",
				i, len(fp), req.Model, dim)
			return
		}
	}
	preds, err := s.wifiBatcher.Submit(r.Context(), req.Model, req.Fingerprints)
	if err != nil {
		fail(w, http.StatusInternalServerError, "inference: %v", err)
		return
	}
	resp := LocalizeResponse{Model: req.Model, Results: make([]Position, len(preds))}
	for i, p := range preds {
		resp.Results[i] = Position{
			X: p.Pos.X, Y: p.Pos.Y,
			Class: p.Class, Building: p.Building, Floor: p.Floor,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(appendLocalizeResponse(nil, &resp))
}

func (s *Server) handleTrack(w http.ResponseWriter, r *http.Request) {
	var req TrackRequest
	if !decodeStrict(w, r, &req) {
		return
	}
	m, ok := s.resolve(w, req.Model, KindIMU)
	if !ok {
		return
	}
	if len(req.Paths) == 0 {
		fail(w, http.StatusBadRequest, "no paths")
		return
	}
	if len(req.Paths) > maxPathsPerRequest {
		fail(w, http.StatusBadRequest, "%d paths exceeds the per-request limit of %d",
			len(req.Paths), maxPathsPerRequest)
		return
	}
	segDim, maxLen := m.IMU.SegmentDim(), m.IMU.MaxLen()
	paths := make([]imu.Path, len(req.Paths))
	for i, p := range req.Paths {
		n := len(p.Features)
		if n == 0 || n%segDim != 0 || n/segDim > maxLen {
			fail(w, http.StatusBadRequest,
				"path %d has %d feature values; model %q wants a non-empty multiple of %d up to %d segments",
				i, n, req.Model, segDim, maxLen)
			return
		}
		paths[i] = imu.Path{
			Start:       geo.Point{X: p.Start.X, Y: p.Start.Y},
			NumSegments: n / segDim,
			Features:    p.Features,
		}
	}
	preds, err := s.imuBatcher.Submit(r.Context(), req.Model, paths)
	if err != nil {
		fail(w, http.StatusInternalServerError, "inference: %v", err)
		return
	}
	resp := TrackResponse{Model: req.Model, Results: make([]TrackResult, len(preds))}
	for i, p := range preds {
		resp.Results[i] = TrackResult{
			End:          XY{X: p.End.X, Y: p.End.Y},
			Class:        p.Class,
			Displacement: XY{X: p.Displacement.X, Y: p.Displacement.Y},
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"models": s.reg.List()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"models":         s.reg.Len(),
		"batching":       s.Batching(),
		"sessions":       s.sessions.Len(),
		"uptime_seconds": int64(time.Since(s.started).Seconds()),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w)
	s.sessions.WritePrometheus(w)
}
