package serve

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"noble/internal/core"
	"noble/internal/geo"
	"noble/internal/imu"
	"noble/internal/obs"
	"noble/internal/serve/session"
	"noble/internal/store"
)

// Engine is the transport-independent inference facade: it owns the
// model registry, the micro-batchers, and the tracking-session store,
// and exposes the full serving surface — Localize, Track,
// AppendSegments, Session, DeleteSession, Models, Health — as plain
// context-aware methods returning typed results and typed errors
// (*Error, with machine-readable codes and suggested HTTP statuses).
//
// HTTP is just one adapter over it: the /v1 handlers map Engine errors
// back to the legacy free-text bodies byte-for-byte, /v2 wraps them in
// the structured envelope, and embedders (tests, other transports, the
// NDJSON stream) call the Engine directly. Validation lives here, so
// every transport enforces identical limits with identical messages.
type Engine struct {
	reg         *Registry
	wifiBatcher *Batcher[[]float64, core.WiFiPrediction]
	imuBatcher  *Batcher[imu.Path, core.IMUPrediction]
	sessions    *session.Store
	journal     *store.Journal // nil when persistence is off
	// retained holds journal histories that could not be restored at
	// startup (model missing); compaction re-records them instead of
	// pruning them. Written once by RestoreSessions before the listener
	// (and any compaction loop) starts, read-only afterwards.
	retained []*store.SessionHistory
	metrics  *Metrics
	tracer   *obs.Tracer // nil when tracing is off
	started  time.Time

	// Shadow/canary mirroring (see mirror.go): every mirrorEvery-th
	// localize/track request is replayed through the staged generation
	// off the request path, bounded by the mirrorSlots in-flight cap.
	mirrorEvery int64
	mirrorSeq   atomic.Int64
	mirrorSlots chan struct{}
	lcSeq       atomic.Int64 // WAL lifecycle event sequence

	draining atomic.Bool
	reqSeq   atomic.Int64
	idPrefix string
}

// NewEngine wires an Engine from cfg.
func NewEngine(cfg Config) *Engine {
	if cfg.Registry == nil {
		panic("serve: Config.Registry is required")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	e := &Engine{
		reg:      cfg.Registry,
		metrics:  NewMetrics(),
		sessions: session.NewStore(cfg.SessionTTL),
		journal:  cfg.Journal,
		tracer:   cfg.Tracer,
		started:  time.Now(),
	}
	// Tracing defaults ON at full sampling: observability that must be
	// switched on is off exactly when it is needed, and running every
	// test with it on is what shakes out instrumentation races.
	if e.tracer == nil && !cfg.NoTrace {
		e.tracer = obs.NewTracer(obs.Options{})
	}
	if e.journal != nil {
		// The sweeper fires this after tombstoning and unmapping the
		// session, with no locks held (journal appends can rotate, which
		// fsyncs — never under a store shard lock); by then the sweeper
		// is the session's only writer, and sequence-ordered recovery
		// keeps the close record in order regardless of file position.
		// Durability rides the next interval sync — an eviction is not a
		// client-visible acknowledgement, so it never forces an fsync.
		e.sessions.SetOnEvict(func(s *session.Session) {
			//vet:ignore journalock -- eviction runs after MarkGone under the sweeper's lock hold: the tombstone makes the sweeper the session's sole writer, so no append can race this close record
			e.journalClose(context.Background(), s, true)
		})
	}
	if cfg.MirrorRate > 0 {
		rate := cfg.MirrorRate
		if rate > 1 {
			rate = 1
		}
		e.mirrorEvery = int64(math.Round(1 / rate))
	}
	e.mirrorSlots = make(chan struct{}, mirrorInFlightCap)
	if e.journal != nil {
		// Journal every stage transition as a WAL lifecycle event so the
		// deployment pipeline's state survives crash recovery.
		e.reg.SetOnTransition(e.journalLifecycle)
	}
	// Request IDs are unique per process run: a per-start prefix plus a
	// sequence number, cheap enough for the localize hot path.
	e.idPrefix = strconv.FormatInt(e.started.UnixNano()&0xffffffffff, 36)
	e.wifiBatcher = NewBatcher("localize", cfg.BatchWindow, cfg.MaxBatch, e.predictWiFiBatch, e.metrics)
	e.imuBatcher = NewBatcher("track", cfg.BatchWindow, cfg.MaxBatch, e.predictIMUBatch, e.metrics)
	return e
}

// Registry exposes the model registry (hot-reload wiring, tests).
func (e *Engine) Registry() *Registry { return e.reg }

// Sessions exposes the tracking-session store (TTL sweeper, tests).
func (e *Engine) Sessions() *session.Store { return e.sessions }

// Metrics exposes the metrics collector shared by all transports.
func (e *Engine) Metrics() *Metrics { return e.metrics }

// Tracer exposes the request tracer (nil when tracing is off). All
// tracer methods are nil-safe, so callers use the result directly.
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// BatchSnapshot copies one batcher kind's counters ("localize",
// "track"): passes, rows, max pass size, dropped rows, and the
// batch-size histogram. Embedders that need coalescing behavior as data
// rather than Prometheus text — the benchmark rig above all — diff two
// snapshots around a measured window.
func (e *Engine) BatchSnapshot(kind string) BatchSnapshot { return e.metrics.Snapshot(kind) }

// Batching reports whether micro-batching is enabled.
func (e *Engine) Batching() bool { return e.wifiBatcher.Window > 0 }

// StartDraining flips the engine into drain mode: Health reports it and
// transports reject new work with CodeDraining while in-flight requests
// (including batched passes already queued) run to completion.
func (e *Engine) StartDraining() { e.draining.Store(true) }

// Draining reports whether the engine is shutting down.
func (e *Engine) Draining() bool { return e.draining.Load() }

// NextRequestID assigns a server-side request ID (unique per process).
func (e *Engine) NextRequestID() string {
	n := e.reqSeq.Add(1)
	if e.metrics != nil {
		e.metrics.noteRequestID()
	}
	return e.idPrefix + "-" + strconv.FormatInt(n, 10)
}

// resolveModel looks a model up and enforces its kind.
func (e *Engine) resolveModel(name, kind string) (*Model, *Error) {
	if name == "" {
		return nil, errf(CodeBadRequest, http.StatusBadRequest, "missing model name")
	}
	m, ok := e.reg.Get(name)
	if !ok {
		return nil, errf(CodeModelNotFound, http.StatusNotFound, "unknown model %q", name)
	}
	if m.Kind != kind {
		return nil, errf(CodeWrongModelKind, http.StatusBadRequest,
			"model %q is kind %q, endpoint wants %q", name, m.Kind, kind)
	}
	return m, nil
}

// predictWiFiBatch is the localize Batcher's callback: resolve the model
// at flush time (so batches formed across a hot reload run on the newest
// generation) and run one batched forward pass. A plain model name
// resolves to the active generation; mirrored rows arrive under a
// generation-qualified key (see genKey) so they coalesce into their own
// passes on the exact staged generation — and go unanswered once it is
// retired. Per-row pass latency is recorded on the generation, feeding
// the p99 the promotion policy bounds.
func (e *Engine) predictWiFiBatch(model string, rows [][]float64) ([]core.WiFiPrediction, error) {
	m, ok := e.reg.ResolveGen(model)
	if !ok || m.WiFi == nil {
		name, _, _ := splitGenKey(model)
		return nil, fmt.Errorf("model %q disappeared", name)
	}
	t0 := time.Now()
	preds := m.WiFi.PredictBatch(rows)
	if m.Stats != nil {
		m.Stats.RecordPass(time.Since(t0), len(rows))
	}
	return preds, nil
}

// predictIMUBatch is the track Batcher's callback, coalescing track
// paths and session steps into one PredictPaths pass. Generation
// resolution and latency recording mirror predictWiFiBatch.
func (e *Engine) predictIMUBatch(model string, paths []imu.Path) ([]core.IMUPrediction, error) {
	m, ok := e.reg.ResolveGen(model)
	if !ok || m.IMU == nil {
		name, _, _ := splitGenKey(model)
		return nil, fmt.Errorf("model %q disappeared", name)
	}
	t0 := time.Now()
	preds := m.IMU.PredictPaths(paths)
	if m.Stats != nil {
		m.Stats.RecordPass(time.Since(t0), len(paths))
	}
	return preds, nil
}

// submitErr maps a batcher Submit failure: context expiry keeps its
// code; a failed pass is an inference error with the legacy "inference:"
// message /v1 always used.
func submitErr(err error) *Error {
	e := AsError(err)
	if e.Code == CodeInference {
		return errf(CodeInference, http.StatusInternalServerError, "inference: %v", err)
	}
	return e
}

// LocalizeQuery asks for positions for one or more fingerprints on one
// named Wi-Fi model.
type LocalizeQuery struct {
	Model        string
	Fingerprints [][]float64
}

// Localize validates q and answers it through the localize batcher,
// sharing a forward pass with concurrent callers. Results are in
// fingerprint order.
func (e *Engine) Localize(ctx context.Context, q LocalizeQuery) ([]core.WiFiPrediction, error) {
	m, eerr := e.resolveModel(q.Model, KindWiFi)
	if eerr != nil {
		return nil, eerr
	}
	if len(q.Fingerprints) == 0 {
		return nil, errf(CodeBadFingerprint, http.StatusBadRequest, "no fingerprints")
	}
	if len(q.Fingerprints) > maxFingerprints {
		return nil, errf(CodeBadFingerprint, http.StatusBadRequest,
			"%d fingerprints exceeds the per-request limit of %d", len(q.Fingerprints), maxFingerprints)
	}
	dim := m.WiFi.InputDim()
	for i, fp := range q.Fingerprints {
		if len(fp) != dim {
			return nil, errf(CodeBadFingerprint, http.StatusBadRequest,
				"fingerprint %d has %d features, model %q wants %d", i, len(fp), q.Model, dim)
		}
	}
	preds, err := e.wifiBatcher.Submit(ctx, q.Model, q.Fingerprints)
	if err != nil {
		return nil, submitErr(err)
	}
	e.mirrorLocalize(q.Model, q.Fingerprints, preds)
	return preds, nil
}

// PathQuery is one IMU path to decode: the anchor position plus the
// concatenated per-segment features.
type PathQuery struct {
	Start    geo.Point
	Features []float64
}

// TrackQuery asks for decoded path ends on one named IMU model.
type TrackQuery struct {
	Model string
	Paths []PathQuery
}

// Track validates q and answers it through the track batcher. Results
// are in path order.
func (e *Engine) Track(ctx context.Context, q TrackQuery) ([]core.IMUPrediction, error) {
	m, eerr := e.resolveModel(q.Model, KindIMU)
	if eerr != nil {
		return nil, eerr
	}
	if len(q.Paths) == 0 {
		return nil, errf(CodeBadPath, http.StatusBadRequest, "no paths")
	}
	if len(q.Paths) > maxPathsPerRequest {
		return nil, errf(CodeBadPath, http.StatusBadRequest,
			"%d paths exceeds the per-request limit of %d", len(q.Paths), maxPathsPerRequest)
	}
	segDim, maxLen := m.IMU.SegmentDim(), m.IMU.MaxLen()
	paths := make([]imu.Path, len(q.Paths))
	for i, p := range q.Paths {
		n := len(p.Features)
		if n == 0 || n%segDim != 0 || n/segDim > maxLen {
			return nil, errf(CodeBadPath, http.StatusBadRequest,
				"path %d has %d feature values; model %q wants a non-empty multiple of %d up to %d segments",
				i, n, q.Model, segDim, maxLen)
		}
		paths[i] = imu.Path{Start: p.Start, NumSegments: n / segDim, Features: p.Features}
	}
	preds, err := e.imuBatcher.Submit(ctx, q.Model, paths)
	if err != nil {
		return nil, submitErr(err)
	}
	e.mirrorTrack(q.Model, paths, preds)
	return preds, nil
}

// SegmentQuery appends IMU segments (and optionally fuses a WiFi fix)
// into one device's tracking session. The first query for a session ID
// creates it and must name the IMU model plus an origin — an explicit
// Start anchor, a WiFi fingerprint, or both.
type SegmentQuery struct {
	Session string
	Model   string     // IMU model; required on create
	Start   *geo.Point // origin anchor (create only)
	Window  int        // decode window in segments (create only; default 2)

	Features []float64 // k × segment_dim, appended in order

	WiFiModel   string
	Fingerprint []float64

	// Anchor re-anchors an existing session at an explicit absolute
	// position without running the localize path — the journal-replay
	// and surveyed-ground-truth entry. Mutually exclusive with a WiFi
	// fingerprint; not exposed on the HTTP wire.
	Anchor *geo.Point
}

// StepResult is one decoded tracking step.
type StepResult struct {
	Step int // 1-based lifetime step index
	core.IMUPrediction
}

// SessionState describes a session after an Engine call: identity,
// what the call did (Created, ReAnchored, per-step Results), and the
// tracker's current estimate.
type SessionState struct {
	Session    string
	Model      string
	Created    bool
	ReAnchored bool
	Anchor     *geo.Point // the fused WiFi fix
	Steps      int
	Position   geo.Point // current end estimate
	Class      int
	Traveled   geo.Point // displacement since origin / last fix
	Results    []StepResult
}

// checkSegmentsQ validates a segment payload width against a model's
// segment width and returns the segment count.
func checkSegmentsQ(n, segDim int, model string) (int, *Error) {
	if n%segDim != 0 {
		return 0, errf(CodeBadSegment, http.StatusBadRequest,
			"%d feature values is not a multiple of model %q's segment_dim %d", n, model, segDim)
	}
	k := n / segDim
	if k > maxSegmentsPerRequest {
		return 0, errf(CodeBadSegment, http.StatusBadRequest,
			"%d segments exceeds the per-request limit of %d", k, maxSegmentsPerRequest)
	}
	return k, nil
}

// AppendSegments runs one session request: fuse the WiFi fix (if any),
// create the session on first use, then decode each appended segment as
// one tracking step through the track batcher.
//
// On a mid-request inference failure the returned error has
// CodeInference AND the returned state is still populated (Session set,
// Results holding the steps that DID commit); the failing segment and
// everything after it were not applied, so the caller reports the
// committed prefix and the client resends exactly the unreported tail.
// Every other error returns a zero state.
func (e *Engine) AppendSegments(ctx context.Context, q SegmentQuery) (SessionState, error) {
	var zero SessionState

	// Fuse the WiFi fix first: it may be the origin of a brand-new
	// session, and for an existing one the paper's tracking setup
	// re-anchors before dead reckoning continues. The localize pass runs
	// through the same batcher as stateless localize traffic.
	var fix *core.WiFiPrediction
	if q.Anchor != nil && (len(q.Fingerprint) > 0 || q.WiFiModel != "") {
		return zero, errf(CodeBadRequest, http.StatusBadRequest,
			"an explicit anchor and a wifi fingerprint cannot be combined")
	}
	if len(q.Fingerprint) > 0 {
		wm, eerr := e.resolveModel(q.WiFiModel, KindWiFi)
		if eerr != nil {
			return zero, eerr
		}
		if dim := wm.WiFi.InputDim(); len(q.Fingerprint) != dim {
			return zero, errf(CodeBadFingerprint, http.StatusBadRequest,
				"fingerprint has %d features, model %q wants %d", len(q.Fingerprint), q.WiFiModel, dim)
		}
		preds, err := e.wifiBatcher.Submit(ctx, q.WiFiModel, [][]float64{q.Fingerprint})
		if err != nil {
			fixErr := AsError(err)
			if fixErr.Code == CodeInference {
				fixErr = errf(CodeInference, http.StatusInternalServerError, "localizing fix: %v", err)
			}
			return zero, fixErr
		}
		fix = &preds[0]
	} else if q.WiFiModel != "" {
		return zero, errf(CodeBadRequest, http.StatusBadRequest, "wifi_model given without a fingerprint")
	}

	id := q.Session
	sess, ok := e.sessions.Get(id)
	created := false
	lockHeld := false // the create path locks the session pre-publication
	if !ok {
		// Validate the whole creation spec — including the segment
		// payload — outside the shard lock and BEFORE inserting anything:
		// a rejected request must not leave a session behind. The init
		// closure then only assembles state; racing creators both pass
		// validation and exactly one wins.
		if q.Model == "" {
			return zero, errf(CodeBadRequest, http.StatusBadRequest, "new session %q needs an IMU model name", id)
		}
		m, eerr := e.resolveModel(q.Model, KindIMU)
		if eerr != nil {
			return zero, eerr
		}
		if _, eerr := checkSegmentsQ(len(q.Features), m.IMU.SegmentDim(), q.Model); eerr != nil {
			return zero, eerr
		}
		var start geo.Point
		switch {
		case q.Start != nil:
			start = *q.Start
		case fix != nil:
			start = fix.Pos
		default:
			return zero, errf(CodeBadRequest, http.StatusBadRequest,
				"new session %q needs a start anchor or a wifi fingerprint", id)
		}
		window := q.Window
		if window <= 0 {
			window = defaultSessionWindow
		}
		var createEv *store.Event
		sess, created, _ = e.sessions.GetOrCreate(id, func() (*session.Session, error) {
			s := session.New(id, q.Model, m.IMU.NewPathTracker(start, window))
			// Only capture the create record here — the init closure runs
			// under the store's shard write lock, which must never wait on
			// journal I/O (an append can rotate, which fsyncs). Reserving
			// the sequence number now (seq 1, before publication) is what
			// lets the record be written after the lock is gone: recovery
			// folds a session's records in sequence order, not file order,
			// so a step journaled by a faster racer cannot get ahead of it.
			createEv = e.captureCreate(s)
			// Lock the session before it is published (uncontended — no
			// other goroutine can hold an unpublished session's mutex, and
			// locking costs no I/O, so the shard lock is not held up). A
			// racing request resolving the session from the map then blocks
			// on this lock until the create record below is appended:
			// under -fsync=always its commit fsyncs the same shard, so it
			// can never ack a later-seq record before seq 1 is durable.
			s.Lock()
			return s, nil
		})
		if created {
			lockHeld = true
			if createEv != nil {
				e.journalAppend(ctx, createEv)
			}
		}
	}
	if q.Model != "" && q.Model != sess.Model {
		if lockHeld {
			sess.Unlock()
		}
		return zero, errf(CodeSessionConflict, http.StatusConflict,
			"session %q is bound to model %q, not %q", id, sess.Model, q.Model)
	}

	if !lockHeld {
		lockWait := obs.Begin(ctx, obs.StageSessionLock)
		sess.Lock()
		lockWait.End()
	}
	defer sess.Unlock()
	// Stamp activity when the call finishes, not when the lock is
	// acquired (deferred args evaluate immediately; the closure does not).
	defer func() { sess.Touch(time.Now()) }()

	// The TTL sweeper (or a concurrent delete) may have removed this
	// session between the map lookup and the lock acquire — at a TTL
	// boundary the sweeper's TryLock wins that race. Removal always sets
	// the tombstone first, under this same lock, so checking it here
	// detects the eviction; past this point neither the sweeper (which
	// only TryLocks) nor a delete (which takes the lock) can remove the
	// session until we unlock. Without this check a step would apply to
	// an orphaned session and silently vanish.
	if sess.Gone() {
		return zero, errf(CodeSessionNotFound, http.StatusNotFound, "session %q expired", id)
	}
	// Request-boundary durability: under -fsync=always everything this
	// request journals is fsynced (group-committed) before the response.
	if e.journal != nil {
		defer e.journalCommit(ctx, id)
	}

	// Validate the segment payload before mutating anything: a rejected
	// request must leave the session untouched (in particular, its fix
	// must not re-anchor a trajectory whose segments were rejected).
	segDim := sess.Tracker.SegmentDim()
	k, eerr := checkSegmentsQ(len(q.Features), segDim, sess.Model)
	if eerr != nil {
		return zero, eerr
	}

	state := SessionState{Session: id, Model: sess.Model, Created: created}
	if fix != nil || q.Anchor != nil {
		var pos geo.Point
		if q.Anchor != nil {
			pos = *q.Anchor
		} else {
			pos = fix.Pos
		}
		// The fix is a free live label: before it snaps the trajectory,
		// score every live generation's prediction against it — the
		// active IMU's dead-reckoned estimate, the staged IMU's decode of
		// the same window, and (when the fix came from a fingerprint) the
		// staged WiFi's localization. This is the ground-truth signal the
		// promotion controller weighs.
		if !created {
			e.scoreReAnchor(sess, pos, q.WiFiModel, q.Fingerprint)
		}
		// On a fresh session whose origin IS the fix this is a no-op
		// (empty window, estimate already at the fix); otherwise it snaps
		// the trajectory to the absolute position.
		sess.Tracker.ReAnchor(pos)
		sess.ReAnchors.Add(1)
		e.sessions.NoteReAnchor()
		e.journalReAnchor(ctx, sess, pos, q.WiFiModel, q.Fingerprint)
		state.ReAnchored = true
		state.Anchor = &pos
	}

	// Each appended segment is one tracking step: the windowed path goes
	// through the track batcher, coalescing with other devices' steps
	// (and stateless track traffic) into shared PredictPaths passes.
	var committed []core.IMUPrediction // journaled alongside their segments
	for i := 0; i < k; i++ {
		seg := q.Features[i*segDim : (i+1)*segDim]
		path, err := sess.Tracker.Step(seg)
		if err != nil {
			return zero, errf(CodeBadSegment, http.StatusBadRequest, "segment %d: %v", i, err)
		}
		preds, err := e.imuBatcher.Submit(ctx, sess.Model, []imu.Path{path})
		if err != nil {
			// Step is pure, so this segment (and the ones after it) were
			// NOT applied; the committed prefix is reported with the
			// error so the client resends only the tail. The journal
			// records exactly that prefix — restore must reproduce the
			// committed state, not the requested one.
			if i > 0 {
				sess.Steps.Add(int64(i))
				e.sessions.NoteSteps(i)
				e.journalSteps(ctx, sess, segDim, q.Features[:i*segDim], committed)
			}
			e.fillSessionState(&state, sess)
			stepErr := AsError(err)
			if stepErr.Code == CodeInference {
				stepErr = errf(CodeInference, http.StatusInternalServerError, "inference at segment %d: %v", i, err)
			}
			return state, stepErr
		}
		sess.Tracker.Commit(seg, preds[0])
		if e.journal != nil {
			committed = append(committed, preds[0])
		}
		state.Results = append(state.Results, StepResult{
			Step:          sess.Tracker.Steps(),
			IMUPrediction: preds[0],
		})
	}
	if k > 0 {
		sess.Steps.Add(int64(k))
		e.sessions.NoteSteps(k)
		e.journalSteps(ctx, sess, segDim, q.Features[:k*segDim], committed)
	}

	e.fillSessionState(&state, sess)
	return state, nil
}

// Session returns a session's current state.
func (e *Engine) Session(id string) (SessionState, error) {
	sess, ok := e.sessions.Get(id)
	if !ok {
		return SessionState{}, errf(CodeSessionNotFound, http.StatusNotFound, "unknown session %q", id)
	}
	sess.Lock()
	defer sess.Unlock()
	if sess.Gone() {
		return SessionState{}, errf(CodeSessionNotFound, http.StatusNotFound, "unknown session %q", id)
	}
	state := SessionState{Session: id, Model: sess.Model}
	e.fillSessionState(&state, sess)
	return state, nil
}

// DeleteSession ends a session. It takes the session lock, so a delete
// racing an in-flight append waits for the append to finish (the append
// is acknowledged and journaled) rather than yanking the session out
// from under it; the tombstone then stops any later-locking request
// from updating the orphaned state.
func (e *Engine) DeleteSession(id string) error {
	sess, ok := e.sessions.Get(id)
	if !ok {
		return errf(CodeSessionNotFound, http.StatusNotFound, "unknown session %q", id)
	}
	sess.Lock()
	defer sess.Unlock()
	if sess.Gone() {
		// Lost the race to the sweeper or another delete.
		return errf(CodeSessionNotFound, http.StatusNotFound, "unknown session %q", id)
	}
	sess.MarkGone()
	e.sessions.Delete(id)
	e.journalClose(context.Background(), sess, false)
	if e.journal != nil {
		e.journalCommit(context.Background(), id)
	}
	return nil
}

// fillSessionState copies the tracker's current estimate into state.
// The caller holds the session lock.
func (e *Engine) fillSessionState(state *SessionState, sess *session.Session) {
	est := sess.Tracker.Estimate()
	state.Steps = sess.Tracker.Steps()
	state.Position = est.End
	state.Class = est.Class
	state.Traveled = sess.Tracker.Traveled()
}

// Models lists the registered models (active generations only — the
// user-visible catalog).
func (e *Engine) Models() []ModelInfo { return e.reg.List() }

// ModelsLifecycle lists every live generation — active and staged —
// with lifecycle state and evaluation evidence (the /v2 and /debug
// view).
func (e *Engine) ModelsLifecycle() []ModelInfo { return e.reg.ListLifecycle() }

// HealthInfo is the Engine's liveness summary.
type HealthInfo struct {
	Status   string
	Models   int
	Batching bool
	Sessions int
	Uptime   time.Duration
	Draining bool
}

// Health reports engine liveness.
func (e *Engine) Health() HealthInfo {
	status := "ok"
	if e.Draining() {
		status = "draining"
	}
	return HealthInfo{
		Status:   status,
		Models:   e.reg.Len(),
		Batching: e.Batching(),
		Sessions: e.sessions.Len(),
		Uptime:   time.Since(e.started),
		Draining: e.Draining(),
	}
}
