package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"noble/internal/core"
	"noble/internal/dataset"
	"noble/internal/imu"
)

// Demo bundle scales. Every scale trains the same four bundles —
// demo-wifi, demo-imu, plus their int8 twins demo-wifi-int8 and
// demo-imu-int8 published through the accuracy gate — so every tool
// that self-provisions models exercises both precision tiers.
const (
	// DemoTiny shrinks everything to train in seconds: enough to
	// exercise every serving path (CI smoke, crash-recovery, unit
	// tests), useless for absolute performance numbers.
	DemoTiny = "tiny"
	// DemoPerf is the benchmark spec noble-perf defaults to: large
	// enough that the forward pass (not request overhead) dominates a
	// localize request — the regime where the int8 tier's speedup is
	// measurable — while still training in well under a minute.
	DemoPerf = "perf"
	// DemoFull is sized like the paper's UJI deployment; expect minutes
	// of one-time training.
	DemoFull = "full"
)

// demoSpec is one scale's complete training recipe.
type demoSpec struct {
	note    string
	wifiDS  dataset.WiFiConfig
	wifiCfg core.WiFiConfig
	imuB    IMUBundle
	imuCfg  core.IMUConfig

	// int8Budget is the gate budget written into the twin bundles'
	// manifests; 0 means the DefaultErrorBudgetPct.
	int8Budget float64
}

func demoSpecFor(scale string) (demoSpec, error) {
	var s demoSpec
	// Shared IMU collection protocol defaults; scales override below.
	sensors := imu.DefaultConfig()
	switch scale {
	case DemoFull:
		// Production-scale survey: a 3.5 m survey grid across the
		// synthetic campus yields ~1650 neighborhood classes — the same
		// order as the real UJIIndoorLoc deployment (933 reference
		// locations, and denser in XY once its four floors project onto
		// one fine grid). The class-head width is the serving hot path,
		// so the demo model exercises the batching engine at deployment
		// scale.
		s.note = "paper scale, takes a few minutes"
		s.wifiDS = dataset.DefaultUJIConfig()
		s.wifiDS.RefSpacing = 3.5
		s.wifiDS.SamplesPerRef = 4
		s.wifiCfg = core.DefaultWiFiConfig()
		s.wifiCfg.Epochs = 8

		sensors.ReadingsPerSegment = 96
		sensors.TotalSegments = 160
		s.imuB = IMUBundle{Spacing: 6, Sensors: sensors, Seed: 2021, Paths: imu.PathConfig{
			NumPaths: 1200, MaxLen: 12, Frames: 6,
			TrainFrac: 4389.0 / 6857.0, ValFrac: 1096.0 / 6857.0, Seed: 7,
		}}
		s.imuCfg = core.DefaultIMUConfig()
		s.imuCfg.Hidden = []int{64, 64}
		s.imuCfg.Epochs = 20
		s.imuCfg.Tau = 1.0
	case DemoPerf:
		// Benchmark scale: ~1000 fine classes and a {256,256} trunk put
		// the per-request forward pass solidly ahead of HTTP/batching
		// overhead, so scenario throughput measures the model tiers —
		// the fp64-vs-int8 comparison needs the model to dominate or the
		// quantized speedup drowns in request plumbing. Few epochs — the
		// rig needs realistic compute shape, not accuracy.
		s.note = "benchmark scale, under a minute"
		s.wifiDS = dataset.DefaultUJIConfig()
		s.wifiDS.NumWAPs = 160
		s.wifiDS.RefSpacing = 4.5
		s.wifiDS.SamplesPerRef = 2
		s.wifiDS.TestSamplesPerRef = 1
		s.wifiCfg = core.DefaultWiFiConfig()
		s.wifiCfg.Hidden = []int{256, 256}
		s.wifiCfg.Epochs = 3

		sensors.ReadingsPerSegment = 48
		sensors.TotalSegments = 96
		s.imuB = IMUBundle{Spacing: 8, Sensors: sensors, Seed: 2021, Paths: imu.PathConfig{
			NumPaths: 400, MaxLen: 10, Frames: 5,
			TrainFrac: 0.7, ValFrac: 0.1, Seed: 7,
		}}
		s.imuCfg = core.DefaultIMUConfig()
		s.imuCfg.ProjDim = 16
		s.imuCfg.Hidden = []int{128, 128}
		s.imuCfg.Epochs = 8
		s.imuCfg.Tau = 1.0
	case DemoTiny:
		s.note = "tiny scale, a few seconds"
		s.wifiDS = dataset.DefaultUJIConfig()
		s.wifiDS.NumWAPs = 24
		s.wifiDS.RefSpacing = 10
		s.wifiDS.SamplesPerRef = 2
		s.wifiCfg = core.DefaultWiFiConfig()
		s.wifiCfg.Hidden = []int{32}
		s.wifiCfg.Epochs = 3

		sensors.ReadingsPerSegment = 32
		sensors.TotalSegments = 48
		s.imuB = IMUBundle{Spacing: 12, Sensors: sensors, Seed: 2021, Paths: imu.PathConfig{
			NumPaths: 160, MaxLen: 6, Frames: 3,
			TrainFrac: 0.7, ValFrac: 0.1, Seed: 7,
		}}
		s.imuCfg = core.DefaultIMUConfig()
		s.imuCfg.ProjDim = 8
		s.imuCfg.Hidden = []int{16, 16}
		s.imuCfg.Tau = 2
		s.imuCfg.Epochs = 4
		// Tiny models are barely trained, so their (already small)
		// localization error is noisier under quantization than the
		// production-scale bundles'; give the gate headroom while
		// keeping it far below the hand-edit cap.
		s.int8Budget = 5.0
	default:
		return s, fmt.Errorf("serve: unknown demo scale %q (want %s, %s or %s)", scale, DemoTiny, DemoPerf, DemoFull)
	}
	return s, nil
}

// TrainDemoBundles trains a Wi-Fi localizer ("demo-wifi") and IMU
// tracker ("demo-imu") at the named scale (DemoTiny, DemoPerf,
// DemoFull) and publishes them as bundles under dir, each alongside an
// int8 twin ("demo-wifi-int8", "demo-imu-int8") calibrated and passed
// through the accuracy gate. Bundles that already exist are kept — an
// int8 twin missing next to an existing base bundle is rebuilt from the
// base bundle's weights, not retrained. Shared by `noble-serve
// -demo`/`-demo-tiny` and `noble-perf`, so every tool that
// self-provisions models trains the same spec.
func TrainDemoBundles(dir string, scale string, logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	spec, err := demoSpecFor(scale)
	if err != nil {
		return err
	}
	if err := ensureWiFiDemo(dir, spec, logf); err != nil {
		return err
	}
	return ensureIMUDemo(dir, spec, logf)
}

func bundleExists(dir, name string) bool {
	_, err := os.Stat(filepath.Join(dir, name, "manifest.json"))
	return err == nil
}

func ensureWiFiDemo(dir string, spec demoSpec, logf func(string, ...any)) error {
	needBase := !bundleExists(dir, "demo-wifi")
	needInt8 := !bundleExists(dir, "demo-wifi-int8")
	if !needBase && !needInt8 {
		return nil
	}
	wifi := &WiFiBundle{Plan: "uji", Dataset: spec.wifiDS, Config: spec.wifiCfg}
	var model *core.WiFiModel
	var ds *dataset.WiFi
	if needBase {
		logf("training demo-wifi (%s)...", spec.note)
		ds = dataset.SynthUJI(spec.wifiDS)
		logf("demo-wifi: %d train samples, %d WAPs", len(ds.Train), ds.NumWAPs)
		start := time.Now()
		model = core.TrainWiFi(ds, spec.wifiCfg)
		logf("demo-wifi: %d classes, trained in %v", model.Classes(), time.Since(start).Round(time.Millisecond))
		if err := WriteBundle(dir, "demo-wifi", Manifest{Kind: KindWiFi, WiFi: wifi},
			func(f *os.File) error { return model.Save(f) }); err != nil {
			return err
		}
	} else {
		// Rebuild the int8 twin from the existing base bundle rather
		// than retraining: the twin must shadow the weights actually
		// being served. The base manifest's spec wins over ours — the
		// directory may hold a different scale.
		loaded, man, lds, err := loadWiFiBundle(filepath.Join(dir, "demo-wifi"))
		if err != nil {
			return fmt.Errorf("serve: rebuilding demo-wifi-int8 from existing base: %w", err)
		}
		model, ds, wifi = loaded, lds, man.WiFi
	}
	if needInt8 {
		logf("calibrating demo-wifi-int8 (accuracy gate, budget %.1f%%)...",
			nonzeroOr(spec.int8Budget, DefaultErrorBudgetPct))
		cal, err := QuantizeWiFiModel(model, ds, QuantizeOptions{BudgetPct: spec.int8Budget})
		if err != nil {
			return err
		}
		logf("demo-wifi-int8: gate passed, mean error %.2f m -> %.2f m (%+.2f%%)",
			cal.FP64MeanErr, cal.Int8MeanErr, cal.DeltaPct)
		return WriteBundle(dir, "demo-wifi-int8", Manifest{
			Kind: KindWiFi, WiFi: wifi,
			Precision: &PrecisionBlock{Mode: core.PrecisionInt8, ErrorBudgetPct: spec.int8Budget},
		}, func(f *os.File) error { return model.Save(f) },
			CalibrationExtra(defaultCalibrationFile, cal))
	}
	return nil
}

func ensureIMUDemo(dir string, spec demoSpec, logf func(string, ...any)) error {
	needBase := !bundleExists(dir, "demo-imu")
	needInt8 := !bundleExists(dir, "demo-imu-int8")
	if !needBase && !needInt8 {
		return nil
	}
	bundle := spec.imuB
	bundle.Config = spec.imuCfg
	var model *core.IMUModel
	var ds *imu.PathDataset
	if needBase {
		logf("training demo-imu (%s)...", spec.note)
		ds = bundle.BuildIMUDataset()
		start := time.Now()
		model = core.TrainIMU(ds, spec.imuCfg)
		logf("demo-imu: %d classes, trained in %v", model.Classes(), time.Since(start).Round(time.Millisecond))
		if err := WriteBundle(dir, "demo-imu", Manifest{Kind: KindIMU, IMU: &bundle},
			func(f *os.File) error { return model.Save(f) }); err != nil {
			return err
		}
	} else {
		loaded, man, lds, err := loadIMUBundle(filepath.Join(dir, "demo-imu"))
		if err != nil {
			return fmt.Errorf("serve: rebuilding demo-imu-int8 from existing base: %w", err)
		}
		model, ds, bundle = loaded, lds, *man.IMU
	}
	if needInt8 {
		logf("calibrating demo-imu-int8 (accuracy gate, budget %.1f%%)...",
			nonzeroOr(spec.int8Budget, DefaultErrorBudgetPct))
		cal, err := QuantizeIMUModel(model, ds, QuantizeOptions{BudgetPct: spec.int8Budget})
		if err != nil {
			return err
		}
		logf("demo-imu-int8: gate passed, mean error %.2f m -> %.2f m (%+.2f%%)",
			cal.FP64MeanErr, cal.Int8MeanErr, cal.DeltaPct)
		return WriteBundle(dir, "demo-imu-int8", Manifest{
			Kind: KindIMU, IMU: &bundle,
			Precision: &PrecisionBlock{Mode: core.PrecisionInt8, ErrorBudgetPct: spec.int8Budget},
		}, func(f *os.File) error { return model.Save(f) },
			CalibrationExtra(defaultCalibrationFile, cal))
	}
	return nil
}

func nonzeroOr(v, def float64) float64 {
	if v != 0 {
		return v
	}
	return def
}

// loadWiFiBundle restores a wifi bundle's model together with its
// manifest and regenerated dataset — what the twin-publishing path
// needs beyond LoadBundle's *Model.
func loadWiFiBundle(dir string) (*core.WiFiModel, *Manifest, *dataset.WiFi, error) {
	man, wf, err := openBundle(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	defer wf.Close()
	if man.Kind != KindWiFi || man.WiFi == nil {
		return nil, nil, nil, fmt.Errorf("serve: %s is not a wifi bundle", dir)
	}
	ds, err := man.WiFi.BuildWiFiDataset()
	if err != nil {
		return nil, nil, nil, err
	}
	model := core.NewWiFiModel(ds, man.WiFi.Config)
	if err := model.Load(wf); err != nil {
		return nil, nil, nil, err
	}
	return model, man, ds, nil
}

// loadIMUBundle is loadWiFiBundle's IMU mirror.
func loadIMUBundle(dir string) (*core.IMUModel, *Manifest, *imu.PathDataset, error) {
	man, wf, err := openBundle(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	defer wf.Close()
	if man.Kind != KindIMU || man.IMU == nil {
		return nil, nil, nil, fmt.Errorf("serve: %s is not an imu bundle", dir)
	}
	ds := man.IMU.BuildIMUDataset()
	model := core.NewIMUModel(ds, man.IMU.Config)
	if err := model.Load(wf); err != nil {
		return nil, nil, nil, err
	}
	return model, man, ds, nil
}
