package serve

import (
	"os"
	"path/filepath"
	"time"

	"noble/internal/core"
	"noble/internal/dataset"
	"noble/internal/imu"
)

// TrainDemoBundles trains a small Wi-Fi localizer ("demo-wifi") and IMU
// tracker ("demo-imu") and publishes them as bundles under dir, skipping
// any that already exist. tiny shrinks both models to train in seconds —
// enough to exercise every serving path (CI smoke, crash-recovery, the
// noble-perf rig), useless for absolute benchmark numbers; the full-size
// variant takes minutes and is sized like the paper's UJI deployment.
// Shared by `noble-serve -demo`/`-demo-tiny` and `noble-perf`, so every
// tool that self-provisions models trains the same spec.
func TrainDemoBundles(dir string, tiny bool, logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if _, err := os.Stat(filepath.Join(dir, "demo-wifi", "manifest.json")); err != nil {
		// Production-scale survey: a 3.5 m survey grid across the
		// synthetic campus yields ~1650 neighborhood classes — the same
		// order as the real UJIIndoorLoc deployment (933 reference
		// locations, and denser in XY once its four floors project onto
		// one fine grid). The class-head width is the serving hot path,
		// so the demo model exercises the batching engine at deployment
		// scale. Expect a few minutes of one-time training.
		dsCfg := dataset.DefaultUJIConfig()
		dsCfg.RefSpacing = 3.5
		dsCfg.SamplesPerRef = 4
		cfg := core.DefaultWiFiConfig()
		cfg.Epochs = 8
		if tiny {
			logf("training demo-wifi (tiny scale, a few seconds)...")
			dsCfg.NumWAPs = 24
			dsCfg.RefSpacing = 10
			dsCfg.SamplesPerRef = 2
			cfg.Hidden = []int{32}
			cfg.Epochs = 3
		} else {
			logf("training demo-wifi (synthetic UJI survey at paper scale, takes a few minutes)...")
		}
		ds := dataset.SynthUJI(dsCfg)
		logf("demo-wifi: %d train samples, %d WAPs", len(ds.Train), ds.NumWAPs)
		start := time.Now()
		model := core.TrainWiFi(ds, cfg)
		logf("demo-wifi: %d classes, trained in %v", model.Classes(), time.Since(start).Round(time.Millisecond))
		err := WriteBundle(dir, "demo-wifi", Manifest{
			Kind: KindWiFi,
			WiFi: &WiFiBundle{Plan: "uji", Dataset: dsCfg, Config: cfg},
		}, func(f *os.File) error { return model.Save(f) })
		if err != nil {
			return err
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "demo-imu", "manifest.json")); err != nil {
		logf("training demo-imu (small synthetic campus walks)...")
		sensors := imu.DefaultConfig()
		sensors.ReadingsPerSegment = 96
		sensors.TotalSegments = 160
		paths := imu.PathConfig{
			NumPaths: 1200, MaxLen: 12, Frames: 6,
			TrainFrac: 4389.0 / 6857.0, ValFrac: 1096.0 / 6857.0, Seed: 7,
		}
		bundle := &IMUBundle{Spacing: 6, Sensors: sensors, Seed: 2021, Paths: paths}
		cfg := core.DefaultIMUConfig()
		cfg.Hidden = []int{64, 64}
		cfg.Epochs = 20
		cfg.Tau = 1.0
		if tiny {
			sensors.ReadingsPerSegment = 32
			sensors.TotalSegments = 48
			bundle.Sensors = sensors
			bundle.Spacing = 12
			bundle.Paths = imu.PathConfig{
				NumPaths: 160, MaxLen: 6, Frames: 3,
				TrainFrac: 0.7, ValFrac: 0.1, Seed: 7,
			}
			cfg.ProjDim = 8
			cfg.Hidden = []int{16, 16}
			cfg.Tau = 2
			cfg.Epochs = 4
		}
		bundle.Config = cfg
		start := time.Now()
		model := core.TrainIMU(bundle.BuildIMUDataset(), cfg)
		logf("demo-imu: %d classes, trained in %v", model.Classes(), time.Since(start).Round(time.Millisecond))
		err := WriteBundle(dir, "demo-imu", Manifest{Kind: KindIMU, IMU: bundle},
			func(f *os.File) error { return model.Save(f) })
		if err != nil {
			return err
		}
	}
	return nil
}
