package session

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"noble/internal/core"
	"noble/internal/imu"
)

// tinyTracker trains one small IMU model per test binary to back real
// PathTrackers in the store tests.
var trackerModel = sync.OnceValue(func() *core.IMUModel {
	net := imu.NewCampusNetwork(12)
	cfg := imu.DefaultConfig()
	cfg.ReadingsPerSegment = 32
	cfg.TotalSegments = 40
	track := imu.Synthesize(net, cfg, 5)
	ds := imu.BuildPaths(track, imu.PathConfig{
		NumPaths: 120, MaxLen: 4, Frames: 3,
		TrainFrac: 0.7, ValFrac: 0.1, Seed: 7,
	})
	mcfg := core.DefaultIMUConfig()
	mcfg.ProjDim = 8
	mcfg.Hidden = []int{16, 16}
	mcfg.Tau = 2
	mcfg.Epochs = 2
	return core.TrainIMU(ds, mcfg)
})

func newSession(id string) *Session {
	m := trackerModel()
	return New(id, "imu-test", m.NewPathTracker(m.Grid.Decode(0), 2))
}

func TestStoreLifecycle(t *testing.T) {
	st := NewStore(time.Hour)
	s, created, err := st.GetOrCreate("dev-1", func() (*Session, error) { return newSession("dev-1"), nil })
	if err != nil || !created || s == nil {
		t.Fatalf("create: s=%v created=%v err=%v", s, created, err)
	}
	again, created, err := st.GetOrCreate("dev-1", func() (*Session, error) {
		t.Fatal("init must not run for an existing session")
		return nil, nil
	})
	if err != nil || created || again != s {
		t.Fatalf("get: same=%v created=%v err=%v", again == s, created, err)
	}
	if got, ok := st.Get("dev-1"); !ok || got != s {
		t.Fatal("Get must resolve the created session")
	}
	if _, ok := st.Get("dev-2"); ok {
		t.Fatal("Get must miss unknown ids")
	}
	if st.Len() != 1 {
		t.Fatalf("Len %d, want 1", st.Len())
	}
	if !st.Delete("dev-1") || st.Delete("dev-1") {
		t.Fatal("Delete must report presence exactly once")
	}
	snap := st.Snapshot()
	if snap.Active != 0 || snap.Created != 1 || snap.Deleted != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
}

func TestStoreInitError(t *testing.T) {
	st := NewStore(0)
	_, created, err := st.GetOrCreate("bad", func() (*Session, error) { return nil, fmt.Errorf("nope") })
	if err == nil || created {
		t.Fatalf("failed init: created=%v err=%v", created, err)
	}
	if st.Len() != 0 || st.Snapshot().Created != 0 {
		t.Fatal("failed init must not register a session")
	}
}

func TestStoreSweepEvictsIdleOnly(t *testing.T) {
	st := NewStore(time.Minute)
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("dev-%d", i)
		st.GetOrCreate(id, func() (*Session, error) { return newSession(id), nil })
	}
	// Nothing is idle yet.
	if n := st.Sweep(time.Now()); n != 0 {
		t.Fatalf("eager sweep evicted %d", n)
	}
	// Half go idle.
	past := time.Now().Add(-2 * time.Minute)
	for i := 0; i < 5; i++ {
		s, _ := st.Get(fmt.Sprintf("dev-%d", i))
		s.Touch(past)
	}
	// A busy idle session (mutex held) must survive the sweep.
	busy, _ := st.Get("dev-0")
	busy.Lock()
	if n := st.Sweep(time.Now()); n != 4 {
		t.Fatalf("sweep evicted %d, want 4 (busy session skipped)", n)
	}
	busy.Unlock()
	if _, ok := st.Get("dev-0"); !ok {
		t.Fatal("busy session must survive the sweep")
	}
	if n := st.Sweep(time.Now()); n != 1 {
		t.Fatalf("follow-up sweep evicted %d, want 1", n)
	}
	if st.Len() != 5 {
		t.Fatalf("%d sessions left, want 5", st.Len())
	}
	snap := st.Snapshot()
	if snap.Evicted != 5 {
		t.Fatalf("evicted counter %d, want 5", snap.Evicted)
	}
}

// TestStoreConcurrency hammers create/append/delete/sweep from many
// goroutines; run under -race this is the store's data-race proof. The
// quiesced bookkeeping must balance: created = active + evicted + deleted.
func TestStoreConcurrency(t *testing.T) {
	m := trackerModel()
	st := NewStore(50 * time.Millisecond)
	const (
		workers = 16
		ops     = 200
		devices = 24
	)
	segDim := m.SegmentDim()
	seg := make([]float64, segDim)
	var workersWG, sweepWG sync.WaitGroup
	stop := make(chan struct{})
	// Background sweeper racing the workers.
	sweepWG.Add(1)
	go func() {
		defer sweepWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				st.Sweep(time.Now())
				time.Sleep(time.Millisecond)
			}
		}
	}()
	for w := 0; w < workers; w++ {
		workersWG.Add(1)
		go func(w int) {
			defer workersWG.Done()
			for i := 0; i < ops; i++ {
				id := fmt.Sprintf("dev-%d", (w+i)%devices)
				switch {
				case i%17 == 0:
					st.Delete(id)
				default:
					s, _, err := st.GetOrCreate(id, func() (*Session, error) { return newSession(id), nil })
					if err != nil {
						t.Error(err)
						return
					}
					s.Lock()
					path, err := s.Tracker.Step(seg)
					if err != nil {
						s.Unlock()
						t.Error(err)
						return
					}
					s.Tracker.Commit(seg, m.PredictPaths([]imu.Path{path})[0])
					s.Touch(time.Now())
					s.Unlock()
					st.NoteSteps(1)
					s.Steps.Add(1)
				}
			}
		}(w)
	}
	// Workers first, then the sweeper, so no eviction races the final count.
	workersWG.Wait()
	close(stop)
	sweepWG.Wait()
	snap := st.Snapshot()
	if int64(snap.Active)+snap.Evicted+snap.Deleted != snap.Created {
		t.Fatalf("unbalanced lifecycle: %+v", snap)
	}
	if snap.Steps == 0 {
		t.Fatal("no steps recorded")
	}
}

// TestEvictionTombstoneDeterministic pins the exact interleaving of the
// eviction/append race: a handler resolves the session (Get), the
// sweeper's TryLock wins at the TTL boundary and evicts it, and only
// then does the handler acquire the lock. The tombstone is what tells
// the handler the session it holds is orphaned.
func TestEvictionTombstoneDeterministic(t *testing.T) {
	st := NewStore(time.Minute)
	s, _, _ := st.GetOrCreate("dev-1", func() (*Session, error) { return newSession("dev-1"), nil })

	// Handler half: Get done, Lock not yet taken.
	got, ok := st.Get("dev-1")
	if !ok || got != s {
		t.Fatal("Get must resolve the session")
	}
	if got.Gone() {
		t.Fatal("live session must not be tombstoned")
	}

	// Sweeper half runs to completion in the window.
	var evictHook *Session
	st.SetOnEvict(func(es *Session) { evictHook = es })
	got.Touch(time.Now().Add(-2 * time.Minute))
	if n := st.Sweep(time.Now()); n != 1 {
		t.Fatalf("sweep evicted %d, want 1", n)
	}
	if evictHook != s {
		t.Fatal("OnEvict hook must see the evicted session")
	}

	// Handler resumes: the lock succeeds (nobody holds it) but the
	// tombstone reports the eviction — appending here would update
	// orphaned state the store no longer resolves.
	got.Lock()
	defer got.Unlock()
	if !got.Gone() {
		t.Fatal("evicted session must be tombstoned under the lock")
	}
	if _, ok := st.Get("dev-1"); ok {
		t.Fatal("evicted session still resolvable")
	}
}

// TestEvictionAppendRace provokes the Get/Sweep/Lock interleaving from
// many goroutines under -race: appenders that lose their session to the
// sweeper must observe the tombstone, and no append may ever land in a
// session after its eviction. The handler protocol mirrors
// Engine.AppendSegments: Get, Lock, check Gone, mutate, Touch, Unlock.
func TestEvictionAppendRace(t *testing.T) {
	m := trackerModel()
	st := NewStore(time.Millisecond) // razor-thin TTL: every append sits at the boundary
	seg := make([]float64, m.SegmentDim())
	var (
		workersWG, sweepWG sync.WaitGroup
		lost               atomic.Int64 // tombstone observed under the lock
		appends            atomic.Int64
		orphanSteps        atomic.Int64 // steps that landed in an evicted session (the bug)
	)
	stop := make(chan struct{})
	sweepWG.Add(1)
	go func() {
		defer sweepWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				st.Sweep(time.Now())
			}
		}
	}()
	for w := 0; w < 8; w++ {
		workersWG.Add(1)
		go func(w int) {
			defer workersWG.Done()
			for i := 0; i < 400; i++ {
				id := fmt.Sprintf("dev-%d", i%4)
				s, _, err := st.GetOrCreate(id, func() (*Session, error) { return newSession(id), nil })
				if err != nil {
					t.Error(err)
					return
				}
				// The race window: the sweeper may evict between this
				// point and the Lock below.
				s.Lock()
				if s.Gone() {
					lost.Add(1)
					s.Unlock()
					continue
				}
				path, err := s.Tracker.Step(seg)
				if err != nil {
					s.Unlock()
					t.Error(err)
					return
				}
				s.Tracker.Commit(seg, m.PredictPaths([]imu.Path{path})[0])
				s.Touch(time.Now())
				// Still under the lock: eviction is impossible past the
				// Gone check, so the session must still resolve.
				if cur, ok := st.Get(id); !ok || cur != s {
					orphanSteps.Add(1)
				}
				appends.Add(1)
				s.Unlock()
			}
		}(w)
	}
	// Workers first, then stop the sweeper, as in TestStoreConcurrency.
	workersWG.Wait()
	close(stop)
	sweepWG.Wait()
	if orphanSteps.Load() != 0 {
		t.Fatalf("%d append(s) landed in evicted sessions", orphanSteps.Load())
	}
	if appends.Load() == 0 {
		t.Fatal("no appends committed")
	}
	t.Logf("appends=%d tombstones-observed=%d", appends.Load(), lost.Load())
}
