package session

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"noble/internal/core"
	"noble/internal/imu"
)

// tinyTracker trains one small IMU model per test binary to back real
// PathTrackers in the store tests.
var trackerModel = sync.OnceValue(func() *core.IMUModel {
	net := imu.NewCampusNetwork(12)
	cfg := imu.DefaultConfig()
	cfg.ReadingsPerSegment = 32
	cfg.TotalSegments = 40
	track := imu.Synthesize(net, cfg, 5)
	ds := imu.BuildPaths(track, imu.PathConfig{
		NumPaths: 120, MaxLen: 4, Frames: 3,
		TrainFrac: 0.7, ValFrac: 0.1, Seed: 7,
	})
	mcfg := core.DefaultIMUConfig()
	mcfg.ProjDim = 8
	mcfg.Hidden = []int{16, 16}
	mcfg.Tau = 2
	mcfg.Epochs = 2
	return core.TrainIMU(ds, mcfg)
})

func newSession(id string) *Session {
	m := trackerModel()
	return New(id, "imu-test", m.NewPathTracker(m.Grid.Decode(0), 2))
}

func TestStoreLifecycle(t *testing.T) {
	st := NewStore(time.Hour)
	s, created, err := st.GetOrCreate("dev-1", func() (*Session, error) { return newSession("dev-1"), nil })
	if err != nil || !created || s == nil {
		t.Fatalf("create: s=%v created=%v err=%v", s, created, err)
	}
	again, created, err := st.GetOrCreate("dev-1", func() (*Session, error) {
		t.Fatal("init must not run for an existing session")
		return nil, nil
	})
	if err != nil || created || again != s {
		t.Fatalf("get: same=%v created=%v err=%v", again == s, created, err)
	}
	if got, ok := st.Get("dev-1"); !ok || got != s {
		t.Fatal("Get must resolve the created session")
	}
	if _, ok := st.Get("dev-2"); ok {
		t.Fatal("Get must miss unknown ids")
	}
	if st.Len() != 1 {
		t.Fatalf("Len %d, want 1", st.Len())
	}
	if !st.Delete("dev-1") || st.Delete("dev-1") {
		t.Fatal("Delete must report presence exactly once")
	}
	snap := st.Snapshot()
	if snap.Active != 0 || snap.Created != 1 || snap.Deleted != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
}

func TestStoreInitError(t *testing.T) {
	st := NewStore(0)
	_, created, err := st.GetOrCreate("bad", func() (*Session, error) { return nil, fmt.Errorf("nope") })
	if err == nil || created {
		t.Fatalf("failed init: created=%v err=%v", created, err)
	}
	if st.Len() != 0 || st.Snapshot().Created != 0 {
		t.Fatal("failed init must not register a session")
	}
}

func TestStoreSweepEvictsIdleOnly(t *testing.T) {
	st := NewStore(time.Minute)
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("dev-%d", i)
		st.GetOrCreate(id, func() (*Session, error) { return newSession(id), nil })
	}
	// Nothing is idle yet.
	if n := st.Sweep(time.Now()); n != 0 {
		t.Fatalf("eager sweep evicted %d", n)
	}
	// Half go idle.
	past := time.Now().Add(-2 * time.Minute)
	for i := 0; i < 5; i++ {
		s, _ := st.Get(fmt.Sprintf("dev-%d", i))
		s.Touch(past)
	}
	// A busy idle session (mutex held) must survive the sweep.
	busy, _ := st.Get("dev-0")
	busy.Lock()
	if n := st.Sweep(time.Now()); n != 4 {
		t.Fatalf("sweep evicted %d, want 4 (busy session skipped)", n)
	}
	busy.Unlock()
	if _, ok := st.Get("dev-0"); !ok {
		t.Fatal("busy session must survive the sweep")
	}
	if n := st.Sweep(time.Now()); n != 1 {
		t.Fatalf("follow-up sweep evicted %d, want 1", n)
	}
	if st.Len() != 5 {
		t.Fatalf("%d sessions left, want 5", st.Len())
	}
	snap := st.Snapshot()
	if snap.Evicted != 5 {
		t.Fatalf("evicted counter %d, want 5", snap.Evicted)
	}
}

// TestStoreConcurrency hammers create/append/delete/sweep from many
// goroutines; run under -race this is the store's data-race proof. The
// quiesced bookkeeping must balance: created = active + evicted + deleted.
func TestStoreConcurrency(t *testing.T) {
	m := trackerModel()
	st := NewStore(50 * time.Millisecond)
	const (
		workers = 16
		ops     = 200
		devices = 24
	)
	segDim := m.SegmentDim()
	seg := make([]float64, segDim)
	var workersWG, sweepWG sync.WaitGroup
	stop := make(chan struct{})
	// Background sweeper racing the workers.
	sweepWG.Add(1)
	go func() {
		defer sweepWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				st.Sweep(time.Now())
				time.Sleep(time.Millisecond)
			}
		}
	}()
	for w := 0; w < workers; w++ {
		workersWG.Add(1)
		go func(w int) {
			defer workersWG.Done()
			for i := 0; i < ops; i++ {
				id := fmt.Sprintf("dev-%d", (w+i)%devices)
				switch {
				case i%17 == 0:
					st.Delete(id)
				default:
					s, _, err := st.GetOrCreate(id, func() (*Session, error) { return newSession(id), nil })
					if err != nil {
						t.Error(err)
						return
					}
					s.Lock()
					path, err := s.Tracker.Step(seg)
					if err != nil {
						s.Unlock()
						t.Error(err)
						return
					}
					s.Tracker.Commit(seg, m.PredictPaths([]imu.Path{path})[0])
					s.Touch(time.Now())
					s.Unlock()
					st.NoteSteps(1)
					s.Steps.Add(1)
				}
			}
		}(w)
	}
	// Workers first, then the sweeper, so no eviction races the final count.
	workersWG.Wait()
	close(stop)
	sweepWG.Wait()
	snap := st.Snapshot()
	if int64(snap.Active)+snap.Evicted+snap.Deleted != snap.Created {
		t.Fatalf("unbalanced lifecycle: %+v", snap)
	}
	if snap.Steps == 0 {
		t.Fatal("no steps recorded")
	}
}
