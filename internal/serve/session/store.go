package session

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// numShards is the lock-stripe width. 64 shards keep the per-shard maps
// small and make same-instant lookups for different devices effectively
// contention-free; the constant cost (64 mutexes + map headers) is
// negligible next to one session.
const numShards = 64

// Store is the sharded session registry. The zero value is not usable;
// construct with NewStore.
type Store struct {
	ttl     time.Duration
	shards  [numShards]shard
	onEvict func(*Session) // see SetOnEvict

	created   atomic.Int64
	evicted   atomic.Int64
	deleted   atomic.Int64
	steps     atomic.Int64
	reanchors atomic.Int64
}

type shard struct {
	mu sync.RWMutex
	m  map[string]*Session
}

// NewStore returns a store evicting sessions idle longer than ttl;
// ttl <= 0 disables eviction (sessions live until deleted).
func NewStore(ttl time.Duration) *Store {
	st := &Store{ttl: ttl}
	for i := range st.shards {
		st.shards[i].m = make(map[string]*Session)
	}
	return st
}

// TTL returns the idle eviction threshold (0 = never).
func (st *Store) TTL() time.Duration { return st.ttl }

// SetOnEvict installs a hook the sweeper calls once for each session it
// evicts, after the tombstone is set and the session is unmapped, with
// no store or session lock held (the hook may do I/O — the durability
// journal records the eviction through it). By then the sweeper is the
// session's only remaining writer: every later resolver of the pointer
// sees Gone() under the lock and backs off. Call before any sweeping
// starts; the hook must not call back into the store.
func (st *Store) SetOnEvict(fn func(*Session)) { st.onEvict = fn }

// ForEach calls fn for every session resolvable at the time of the
// scan, without holding any shard lock during the calls — fn may take
// session locks freely (a session deleted between the scan and the call
// reports Gone under its lock). Used by journal compaction to snapshot
// live sessions.
func (st *Store) ForEach(fn func(*Session)) {
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		batch := make([]*Session, 0, len(sh.m))
		for _, s := range sh.m {
			batch = append(batch, s)
		}
		sh.mu.RUnlock()
		for _, s := range batch {
			fn(s)
		}
	}
}

// shardFor hashes id (FNV-1a) onto its stripe.
func (st *Store) shardFor(id string) *shard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return &st.shards[h%numShards]
}

// Get resolves a live session.
func (st *Store) Get(id string) (*Session, bool) {
	sh := st.shardFor(id)
	sh.mu.RLock()
	s, ok := sh.m[id]
	sh.mu.RUnlock()
	return s, ok
}

// GetOrCreate resolves a session, calling init to build it when absent.
// created reports whether this call inserted the session; under a
// racing create exactly one caller builds it and the rest observe it.
// init runs under the shard's write lock, so it must be cheap and must
// not call back into the store.
func (st *Store) GetOrCreate(id string, init func() (*Session, error)) (s *Session, created bool, err error) {
	sh := st.shardFor(id)
	sh.mu.RLock()
	s = sh.m[id]
	sh.mu.RUnlock()
	if s != nil {
		return s, false, nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s = sh.m[id]; s != nil {
		return s, false, nil
	}
	s, err = init()
	if err != nil {
		return nil, false, err
	}
	sh.m[id] = s
	st.created.Add(1)
	return s, true, nil
}

// Delete removes a session, reporting whether it existed. Callers that
// can race an in-flight request (anything beyond tests and teardown)
// must hold the session's lock and MarkGone it first — the tombstone is
// what tells a handler that resolved the pointer before the removal
// that its session is orphaned (see Session.Gone). Lock order is safe:
// session lock then shard lock never deadlocks against the sweeper,
// which only TryLocks sessions.
func (st *Store) Delete(id string) bool {
	sh := st.shardFor(id)
	sh.mu.Lock()
	_, ok := sh.m[id]
	delete(sh.m, id)
	sh.mu.Unlock()
	if ok {
		st.deleted.Add(1)
	}
	return ok
}

// Len counts live sessions across all shards.
func (st *Store) Len() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Sweep evicts sessions idle longer than the TTL as of now, one shard
// at a time, and returns how many it removed. A session whose mutex is
// held (a request mid-step) is skipped: it is live no matter what its
// last-touch stamp says.
func (st *Store) Sweep(now time.Time) int {
	if st.ttl <= 0 {
		return 0
	}
	cutoff := now.Add(-st.ttl)
	evicted := 0
	var hooked []*Session // evicted this shard pass; hook runs lock-free
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for id, s := range sh.m {
			if s.LastUsed().After(cutoff) || !s.TryLock() {
				continue
			}
			// Re-check under the session lock: a request may have
			// touched it between the stamp read and the acquire.
			if !s.LastUsed().After(cutoff) {
				// Tombstone before removal, still under the session
				// lock: a handler that did Get before this eviction won
				// the pointer but not the lock — when it finally locks,
				// Gone() tells it the session no longer exists, so it
				// reports session_not_found instead of silently updating
				// orphaned state.
				s.MarkGone()
				delete(sh.m, id)
				evicted++
				if st.onEvict != nil {
					hooked = append(hooked, s)
				}
			}
			s.Unlock()
		}
		sh.mu.Unlock()
		// The hook may do I/O (the durability journal records the
		// eviction), so it runs after the shard lock is gone. Safe
		// without the session lock too: the session is tombstoned and
		// unmapped, so this sweeper is its only remaining writer.
		for _, s := range hooked {
			st.onEvict(s)
		}
		hooked = hooked[:0]
	}
	st.evicted.Add(int64(evicted))
	return evicted
}

// Run sweeps at the given interval until ctx is done. interval <= 0
// defaults to a quarter of the TTL (bounding how long past its TTL a
// session can linger); with no TTL Run returns immediately.
func (st *Store) Run(ctx context.Context, interval time.Duration) {
	if st.ttl <= 0 {
		return
	}
	if interval <= 0 {
		interval = st.ttl / 4
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			st.Sweep(time.Now())
		}
	}
}

// NoteSteps adds n committed tracking steps to the aggregate counter.
func (st *Store) NoteSteps(n int) { st.steps.Add(int64(n)) }

// NoteReAnchor counts one fused absolute fix.
func (st *Store) NoteReAnchor() { st.reanchors.Add(1) }

// Stats is a consistent-enough snapshot of the aggregate counters for
// introspection endpoints.
type Stats struct {
	Active    int
	Created   int64
	Evicted   int64
	Deleted   int64
	Steps     int64
	ReAnchors int64
}

// Snapshot reads the counters.
func (st *Store) Snapshot() Stats {
	return Stats{
		Active:    st.Len(),
		Created:   st.created.Load(),
		Evicted:   st.evicted.Load(),
		Deleted:   st.deleted.Load(),
		Steps:     st.steps.Load(),
		ReAnchors: st.reanchors.Load(),
	}
}

// WritePrometheus renders the session gauges and counters in the
// Prometheus text exposition format.
func (st *Store) WritePrometheus(w io.Writer) {
	s := st.Snapshot()
	fmt.Fprintln(w, "# HELP noble_sessions_active Live tracking sessions.")
	fmt.Fprintln(w, "# TYPE noble_sessions_active gauge")
	fmt.Fprintf(w, "noble_sessions_active %d\n", s.Active)
	fmt.Fprintln(w, "# HELP noble_sessions_total Tracking sessions by lifecycle event.")
	fmt.Fprintln(w, "# TYPE noble_sessions_total counter")
	fmt.Fprintf(w, "noble_sessions_total{event=\"created\"} %d\n", s.Created)
	fmt.Fprintf(w, "noble_sessions_total{event=\"evicted\"} %d\n", s.Evicted)
	fmt.Fprintf(w, "noble_sessions_total{event=\"deleted\"} %d\n", s.Deleted)
	fmt.Fprintln(w, "# HELP noble_session_steps_total IMU segments committed across all sessions.")
	fmt.Fprintln(w, "# TYPE noble_session_steps_total counter")
	fmt.Fprintf(w, "noble_session_steps_total %d\n", s.Steps)
	fmt.Fprintln(w, "# HELP noble_session_reanchors_total WiFi fixes fused into session trajectories.")
	fmt.Fprintln(w, "# TYPE noble_session_reanchors_total counter")
	fmt.Fprintf(w, "noble_session_reanchors_total %d\n", s.ReAnchors)
}
