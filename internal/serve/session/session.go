// Package session holds the server-side state for stateful tracking
// sessions: a sharded, lock-striped store keyed by device ID, per-device
// path state (a core.PathTracker fed incrementally over HTTP), TTL
// eviction driven by a background sweeper, and aggregate counters
// exported on /metrics.
//
// The store is built for the ROADMAP's millions-of-devices shape: reads
// and writes for different devices hash to independent shards (each a
// small map under its own RWMutex), so session lookups never contend
// globally, and the sweeper walks one shard at a time instead of
// stopping the world. Inference itself never runs under a shard lock —
// handlers resolve the *Session, release the shard, and serialize on the
// session's own mutex, which the sweeper only TryLocks (a busy session
// is by definition not idle, so it is skipped, never evicted mid-step).
package session

import (
	"sync"
	"sync/atomic"
	"time"

	"noble/internal/core"
)

// Session is one device's tracking state. The embedded tracker (and any
// other mutable state) is guarded by the session mutex; ID, Model, and
// CreatedAt are immutable after New.
type Session struct {
	ID        string
	Model     string // IMU model name, bound at creation
	CreatedAt time.Time

	mu       sync.Mutex
	Tracker  *core.PathTracker
	lastUsed atomic.Int64 // unix nanoseconds

	Steps     atomic.Int64 // committed segments
	ReAnchors atomic.Int64 // absolute fixes fused
}

// New builds a session around a tracker.
func New(id, model string, tracker *core.PathTracker) *Session {
	s := &Session{ID: id, Model: model, CreatedAt: time.Now(), Tracker: tracker}
	s.Touch(s.CreatedAt)
	return s
}

// Lock serializes access to the session's mutable state. Handlers hold
// it across a whole step (append → predict → commit) so concurrent
// requests for the same device cannot interleave half-steps; requests
// for different devices only ever meet in the batcher.
func (s *Session) Lock() { s.mu.Lock() }

// TryLock is the sweeper's non-blocking acquire: failure means a request
// is mid-step, so the session is live and must not be evicted.
func (s *Session) TryLock() bool { return s.mu.TryLock() }

// Unlock releases the session.
func (s *Session) Unlock() { s.mu.Unlock() }

// Touch records activity for TTL accounting. Safe without the lock.
func (s *Session) Touch(t time.Time) { s.lastUsed.Store(t.UnixNano()) }

// LastUsed returns the last Touch time.
func (s *Session) LastUsed() time.Time { return time.Unix(0, s.lastUsed.Load()) }
