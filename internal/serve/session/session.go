// Package session holds the server-side state for stateful tracking
// sessions: a sharded, lock-striped store keyed by device ID, per-device
// path state (a core.PathTracker fed incrementally over HTTP), TTL
// eviction driven by a background sweeper, and aggregate counters
// exported on /metrics.
//
// The store is built for the ROADMAP's millions-of-devices shape: reads
// and writes for different devices hash to independent shards (each a
// small map under its own RWMutex), so session lookups never contend
// globally, and the sweeper walks one shard at a time instead of
// stopping the world. Inference itself never runs under a shard lock —
// handlers resolve the *Session, release the shard, and serialize on the
// session's own mutex, which the sweeper only TryLocks (a busy session
// is by definition not idle, so it is skipped, never evicted mid-step).
package session

import (
	"sync"
	"sync/atomic"
	"time"

	"noble/internal/core"
)

// Session is one device's tracking state. The embedded tracker (and any
// other mutable state) is guarded by the session mutex; ID, Model, and
// CreatedAt are immutable after New.
type Session struct {
	ID        string
	Model     string // IMU model name, bound at creation
	CreatedAt time.Time

	mu       sync.Mutex
	Tracker  *core.PathTracker
	lastUsed atomic.Int64 // unix nanoseconds
	gone     atomic.Bool  // tombstone: removed from the store (set under mu)
	seq      int64        // durability journal sequence (guarded by mu)

	Steps     atomic.Int64 // committed segments
	ReAnchors atomic.Int64 // absolute fixes fused
}

// New builds a session around a tracker.
func New(id, model string, tracker *core.PathTracker) *Session {
	s := &Session{ID: id, Model: model, CreatedAt: time.Now(), Tracker: tracker}
	s.Touch(s.CreatedAt)
	return s
}

// Restore rebuilds a session recovered from a durability journal, with
// its recorded identity, timestamps, lifetime counters, and journal
// sequence intact.
func Restore(id, model string, tracker *core.PathTracker, createdAt, lastUsed time.Time, steps, reanchors, seq int64) *Session {
	s := &Session{ID: id, Model: model, CreatedAt: createdAt, Tracker: tracker, seq: seq}
	s.Steps.Store(steps)
	s.ReAnchors.Store(reanchors)
	s.Touch(lastUsed)
	return s
}

// Lock serializes access to the session's mutable state. Handlers hold
// it across a whole step (append → predict → commit) so concurrent
// requests for the same device cannot interleave half-steps; requests
// for different devices only ever meet in the batcher.
func (s *Session) Lock() { s.mu.Lock() }

// TryLock is the sweeper's non-blocking acquire: failure means a request
// is mid-step, so the session is live and must not be evicted.
func (s *Session) TryLock() bool { return s.mu.TryLock() }

// Unlock releases the session.
func (s *Session) Unlock() { s.mu.Unlock() }

// Touch records activity for TTL accounting. Safe without the lock.
func (s *Session) Touch(t time.Time) { s.lastUsed.Store(t.UnixNano()) }

// LastUsed returns the last Touch time.
func (s *Session) LastUsed() time.Time { return time.Unix(0, s.lastUsed.Load()) }

// MarkGone tombstones the session. The store's invariant is that a
// session is removed from its shard map only by a holder of the session
// lock that has FIRST called MarkGone — so a handler that resolved the
// session before the removal detects the eviction the moment it
// acquires the lock, instead of appending into orphaned state. Callers
// must hold the session lock.
func (s *Session) MarkGone() { s.gone.Store(true) }

// Gone reports whether the session has been evicted or deleted. A
// handler holding the session lock and seeing Gone()==false is
// guaranteed the session is still live: the sweeper only TryLocks, and
// deletion takes the lock, so neither can remove it until the handler
// unlocks.
func (s *Session) Gone() bool { return s.gone.Load() }

// NextSeq returns the next durability-journal sequence number. Caller
// holds the session lock (or is constructing the session).
func (s *Session) NextSeq() int64 {
	s.seq++
	return s.seq
}

// Seq returns the last assigned journal sequence number. Caller holds
// the session lock.
func (s *Session) Seq() int64 { return s.seq }
