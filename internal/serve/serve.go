// Package serve is the online inference layer: it turns the offline NObLe
// models into a long-lived localization service in the shape FIND3 uses
// for fingerprint localization — a model registry keyed by name, an HTTP
// JSON API, and operational introspection — plus a micro-batching engine
// that coalesces concurrent inference requests into single batched
// forward passes, and a stateful tracking-session layer that fuses the
// paper's two model kinds (IMU dead reckoning re-anchored by WiFi fixes)
// per device.
//
// The package is layered transport-first:
//
//   - Engine is the transport-independent facade: it owns the registry,
//     the batchers and the session store, and exposes Localize / Track /
//     AppendSegments / Session / Models / Health as plain context-aware
//     methods with typed errors (machine-readable codes + suggested HTTP
//     statuses). Embedders and tests drive it directly.
//   - Server is the HTTP adapter over an Engine: the /v1 handlers keep
//     the original free-text wire protocol byte-for-byte (pinned by
//     golden-file tests), and /v2 adds the structured error envelope,
//     server-assigned request IDs, per-request deadlines, and NDJSON
//     streaming tracking.
//
// The registry loads named model bundles (manifest.json + weights.gob,
// written by WriteBundle / `noble-train -bundle`) from a directory and
// hot-reloads them atomically: a changed bundle is rebuilt fully off the
// request path and swapped in under a write lock, so in-flight requests
// always see a complete model and a bundle that fails to load leaves the
// previous generation serving.
//
// Hot reload is a staged deployment pipeline, not "latest load wins": a
// changed bundle of a served name enters SHADOW (never answering user
// traffic), accumulates live evidence — a sampled fraction of real
// requests mirrored through it off the request path, plus re-anchor
// fixes scoring every live generation's prediction against ground truth
// — advances to CANARY, and is promoted to active (or automatically
// rolled back) by the policy controller in internal/serve/lifecycle
// according to the bundle's lifecycle.json sidecar. Stage transitions
// are journaled as WAL lifecycle events, so the pipeline's state
// survives a crash. See Registry, Stage, and the lifecycle package.
//
// Micro-batching exploits the shape of the paper's workload — millions of
// devices issuing tiny single-fingerprint or single-segment queries —
// where the per-request matmul is too small to amortize dispatch cost.
// Requests arriving within a short window (default 2 ms) are packed into
// one matrix and answered by one batched forward pass; see Batcher. The
// engine is generic: one instance coalesces localize fingerprints into
// (*core.WiFiModel).PredictBatch, another coalesces track and session
// steps into (*core.IMUModel).PredictPaths. A request whose context is
// canceled while queued is dropped before the pass fires, so abandoned
// work never consumes forward-pass rows.
//
// Tracking sessions (POST /v{1,2}/sessions/{id}/segments) keep per-device
// path state server-side in a sharded, lock-striped store with TTL
// eviction, so a device streams one IMU segment per request instead of
// resending its whole path; see the session package.
//
// Sessions can be made durable: with Config.Journal set, every session
// mutation is appended (under the session lock, off the inference hot
// path) to a write-ahead log (see internal/store), RestoreSessions
// rebuilds bit-identical tracker state after a restart, and
// ReplayJournal re-runs a recorded journal against an Engine as an
// offline benchmark/regression scenario (cmd/noble-replay).
package serve

import (
	"net/http"
	"time"

	"noble/internal/obs"
	"noble/internal/serve/session"
	"noble/internal/store"
)

// Config assembles an Engine (and, via New, a Server over it).
type Config struct {
	// Registry resolves model names; required.
	Registry *Registry
	// BatchWindow is how long a localize or track request may wait for
	// companions to share a forward pass. Zero or negative disables
	// micro-batching (every request runs its own pass) — the comparison
	// baseline for noble-loadgen.
	BatchWindow time.Duration
	// MaxBatch caps rows (fingerprints or paths) per coalesced forward
	// pass; a full batch flushes immediately without waiting out the
	// window. Defaults to 64.
	MaxBatch int
	// SessionTTL evicts tracking sessions idle longer than this. Zero
	// disables eviction; the sweeper itself only runs when the caller
	// starts it (see Sessions().Run).
	SessionTTL time.Duration
	// Journal, when set, makes tracking sessions durable: every session
	// mutation is appended to this write-ahead log (see internal/store)
	// and RestoreSessions reads it back after a restart. Nil disables
	// persistence. The caller owns the journal's lifecycle (Open,
	// Recover, the Run sync loop, Close).
	Journal *store.Journal
	// Tracer collects per-request traces (see internal/obs). Nil gets a
	// default tracer at 100% sampling — tracing is on by default, and
	// the tier-1 suite runs with it on, so instrumentation races cannot
	// hide behind an opt-in flag. Set NoTrace to run untraced.
	Tracer *obs.Tracer
	// NoTrace disables request tracing entirely (the overhead-measurement
	// baseline for noble-perf -trace=false).
	NoTrace bool
	// MirrorRate is the fraction of localize/track traffic mirrored
	// through staged (shadow/canary) model generations for live
	// evaluation, in (0, 1]. Zero disables sampled mirroring; re-anchor
	// scoring of staged generations still runs (fixes are the lifecycle's
	// ground-truth labels and are far rarer than inference traffic).
	MirrorRate float64
}

// Server is the HTTP adapter over an Engine. Construct with New (or
// NewServer over an existing Engine), expose with Handler.
type Server struct {
	engine  *Engine
	metrics *Metrics
	mux     *http.ServeMux
	retrain RetrainController // nil until SetRetrain
}

// New wires an Engine from cfg and a Server over it.
func New(cfg Config) *Server { return NewServer(NewEngine(cfg)) }

// NewServer builds the HTTP adapter for an existing Engine.
func NewServer(e *Engine) *Server {
	s := &Server{engine: e, metrics: e.Metrics(), mux: http.NewServeMux()}
	s.routes()
	return s
}

// Engine returns the transport-independent core this server adapts.
func (s *Server) Engine() *Engine { return s.engine }

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Batching reports whether micro-batching is enabled.
func (s *Server) Batching() bool { return s.engine.Batching() }

// Sessions exposes the tracking-session store (for the TTL sweeper and
// introspection).
func (s *Server) Sessions() *session.Store { return s.engine.Sessions() }

// StartDraining rejects new inference requests with 503 (structured
// error envelope, code "server_draining") while in-flight requests —
// including batched passes already queued — run to completion. Call it
// before http.Server.Shutdown for a graceful drain.
func (s *Server) StartDraining() { s.engine.StartDraining() }
