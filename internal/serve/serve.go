// Package serve is the online inference layer: it turns the offline NObLe
// models into a long-lived localization service in the shape FIND3 uses
// for fingerprint localization — a model registry keyed by name, an HTTP
// JSON API, and operational introspection — plus a micro-batching engine
// that coalesces concurrent inference requests into single batched
// forward passes, and a stateful tracking-session layer that fuses the
// paper's two model kinds (IMU dead reckoning re-anchored by WiFi fixes)
// per device.
//
// The registry loads named model bundles (manifest.json + weights.gob,
// written by WriteBundle / `noble-train -bundle`) from a directory and
// hot-reloads them atomically: a changed bundle is rebuilt fully off the
// request path and swapped in under a write lock, so in-flight requests
// always see a complete model and a bundle that fails to load leaves the
// previous generation serving.
//
// Micro-batching exploits the shape of the paper's workload — millions of
// devices issuing tiny single-fingerprint or single-segment queries —
// where the per-request matmul is too small to amortize dispatch cost.
// Requests arriving within a short window (default 2 ms) are packed into
// one matrix and answered by one batched forward pass; see Batcher. The
// engine is generic: one instance coalesces localize fingerprints into
// (*core.WiFiModel).PredictBatch, another coalesces track and session
// steps into (*core.IMUModel).PredictPaths.
//
// Tracking sessions (POST /v1/sessions/{id}/segments) keep per-device
// path state server-side in a sharded, lock-striped store with TTL
// eviction, so a device streams one IMU segment per request instead of
// resending its whole path; see the session package.
package serve

import (
	"net/http"
	"time"

	"noble/internal/core"
	"noble/internal/imu"
	"noble/internal/serve/session"
)

// Config assembles a Server.
type Config struct {
	// Registry resolves model names; required.
	Registry *Registry
	// BatchWindow is how long a localize or track request may wait for
	// companions to share a forward pass. Zero or negative disables
	// micro-batching (every request runs its own pass) — the comparison
	// baseline for noble-loadgen.
	BatchWindow time.Duration
	// MaxBatch caps rows (fingerprints or paths) per coalesced forward
	// pass; a full batch flushes immediately without waiting out the
	// window. Defaults to 64.
	MaxBatch int
	// SessionTTL evicts tracking sessions idle longer than this. Zero
	// disables eviction; the sweeper itself only runs when the caller
	// starts it (see Sessions().Run).
	SessionTTL time.Duration
}

// Server is the HTTP inference service. Construct with New, expose with
// Handler.
type Server struct {
	reg         *Registry
	wifiBatcher *Batcher[[]float64, core.WiFiPrediction]
	imuBatcher  *Batcher[imu.Path, core.IMUPrediction]
	sessions    *session.Store
	metrics     *Metrics
	mux         *http.ServeMux
	started     time.Time
}

// New wires a Server from cfg.
func New(cfg Config) *Server {
	if cfg.Registry == nil {
		panic("serve: Config.Registry is required")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	s := &Server{
		reg:      cfg.Registry,
		metrics:  NewMetrics(),
		sessions: session.NewStore(cfg.SessionTTL),
		started:  time.Now(),
	}
	s.wifiBatcher = NewBatcher("localize", cfg.BatchWindow, cfg.MaxBatch, s.predictWiFiBatch, s.metrics)
	s.imuBatcher = NewBatcher("track", cfg.BatchWindow, cfg.MaxBatch, s.predictIMUBatch, s.metrics)
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Batching reports whether micro-batching is enabled.
func (s *Server) Batching() bool { return s.wifiBatcher.Window > 0 }

// Sessions exposes the tracking-session store (for the TTL sweeper and
// introspection).
func (s *Server) Sessions() *session.Store { return s.sessions }
