// Package serve is the online inference layer: it turns the offline NObLe
// models into a long-lived localization service in the shape FIND3 uses
// for fingerprint localization — a model registry keyed by name, an HTTP
// JSON API, and operational introspection — plus a micro-batching engine
// that coalesces concurrent localize requests into single batched forward
// passes.
//
// The registry loads named model bundles (manifest.json + weights.gob,
// written by WriteBundle / `noble-train -bundle`) from a directory and
// hot-reloads them atomically: a changed bundle is rebuilt fully off the
// request path and swapped in under a write lock, so in-flight requests
// always see a complete model and a bundle that fails to load leaves the
// previous generation serving.
//
// Micro-batching exploits the shape of the paper's workload — millions of
// devices issuing tiny single-fingerprint queries — where the per-request
// matmul is too small to amortize dispatch cost. Requests arriving within
// a short window (default 2 ms) are packed into one matrix and answered by
// one (*core.WiFiModel).PredictBatch call; see Batcher.
package serve

import (
	"net/http"
	"time"
)

// Config assembles a Server.
type Config struct {
	// Registry resolves model names; required.
	Registry *Registry
	// BatchWindow is how long a localize request may wait for companions
	// to share a forward pass. Zero or negative disables micro-batching
	// (every request runs its own pass) — the comparison baseline for
	// noble-loadgen.
	BatchWindow time.Duration
	// MaxBatch caps fingerprints per coalesced forward pass; a full
	// batch flushes immediately without waiting out the window.
	// Defaults to 64.
	MaxBatch int
}

// Server is the HTTP inference service. Construct with New, expose with
// Handler.
type Server struct {
	reg     *Registry
	batcher *Batcher
	metrics *Metrics
	mux     *http.ServeMux
	started time.Time
}

// New wires a Server from cfg.
func New(cfg Config) *Server {
	if cfg.Registry == nil {
		panic("serve: Config.Registry is required")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	s := &Server{
		reg:     cfg.Registry,
		metrics: NewMetrics(),
		started: time.Now(),
	}
	s.batcher = NewBatcher(cfg.BatchWindow, cfg.MaxBatch, s.predictForBatch, s.metrics)
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Batching reports whether micro-batching is enabled.
func (s *Server) Batching() bool { return s.batcher.Window > 0 }
