package serve

import (
	"net/http"
	"net/http/pprof"

	"noble/internal/obs"
)

// This file is the /debug introspection plane: the retained request
// traces, the process runtime view, and (on the standalone admin mux)
// the full net/http/pprof family. The serving mux carries the cheap
// JSON endpoints plus the two pprof routes it always had; everything
// heavier is opt-in via DebugHandler on a separate listener, so the
// profiling surface is never exposed on the fleet-facing port unless
// the operator asked for it.

// handleDebugTraces dumps the tracer's retained traces: the sampled
// recent ring plus the tail-sampled slowest and errored sets, each
// trace a full per-stage timeline.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	t := s.engine.Tracer()
	if t == nil {
		fail(w, http.StatusNotFound, "tracing is disabled")
		return
	}
	writeJSON(w, http.StatusOK, t.Dump())
}

// handleDebugRuntime reports goroutines, heap, and GC pause state as
// JSON — the numbers to read next to a latency regression.
func (s *Server) handleDebugRuntime(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, obs.ReadRuntime())
}

// handleDebugLifecycle dumps the deployment pipeline: every live
// generation (active and staged) with stage, policy, and evaluation
// evidence, plus the bundle names the registry currently refuses.
func (s *Server) handleDebugLifecycle(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"models":         s.engine.ModelsLifecycle(),
		"broken_bundles": s.engine.Registry().FailedBundles(),
	})
}

// handleLifecyclePromote is the manual override: advance a model's
// staged generation one stage (shadow→canary, canary→active),
// regardless of its policy window. Admin mux only.
func (s *Server) handleLifecyclePromote(w http.ResponseWriter, r *http.Request) {
	model := r.PathValue("model")
	to, err := s.engine.Registry().PromoteStaged(model, "manual promote via admin endpoint")
	if err != nil {
		fail(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"model": model, "stage": string(to)})
}

// handleLifecycleRollback retires a model's staged generation. Admin
// mux only.
func (s *Server) handleLifecycleRollback(w http.ResponseWriter, r *http.Request) {
	model := r.PathValue("model")
	if err := s.engine.Registry().RollbackStaged(model, "manual rollback via admin endpoint"); err != nil {
		fail(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"model": model, "stage": string(StageRetired)})
}

// DebugHandler returns the standalone admin mux for an opt-in debug
// listener (noble-serve -admin-addr): the full pprof family, the trace
// and runtime dumps, and a metrics scrape — everything operational,
// nothing fleet-facing. Serve it on a loopback or otherwise restricted
// address; pprof profiles can stall and heap dumps are not free.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/traces", s.handleDebugTraces)
	mux.HandleFunc("GET /debug/runtime", s.handleDebugRuntime)
	mux.HandleFunc("GET /debug/lifecycle", s.handleDebugLifecycle)
	mux.HandleFunc("GET /debug/retrain", s.handleDebugRetrain)
	mux.HandleFunc("POST /admin/lifecycle/{model}/promote", s.handleLifecyclePromote)
	mux.HandleFunc("POST /admin/lifecycle/{model}/rollback", s.handleLifecycleRollback)
	mux.HandleFunc("POST /admin/retrain/{model}", s.handleAdminRetrain)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
