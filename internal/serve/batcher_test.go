package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBatcherDropsCanceledJobs pins the cancellation contract: a job
// whose context is done before its pass fires is dropped from the queue
// — its rows never reach the predict callback — and the drop is counted
// in metrics.
func TestBatcherDropsCanceledJobs(t *testing.T) {
	var seen atomic.Int64
	m := NewMetrics()
	b := NewBatcher("t", 40*time.Millisecond, 64, func(model string, rows []int) ([]int, error) {
		seen.Add(int64(len(rows)))
		out := make([]int, len(rows))
		for i, r := range rows {
			out[i] = r * 2
		}
		return out, nil
	}, m)

	// A job submitted with an already-canceled context returns
	// immediately and must be dropped when the pass forms.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.Submit(canceled, "m", []int{1, 2, 3}); err == nil {
		t.Fatal("canceled submit must return the context error")
	}

	// A live job in the same queue still gets its answer.
	got, err := b.Submit(context.Background(), "m", []int{10})
	if err != nil || len(got) != 1 || got[0] != 20 {
		t.Fatalf("live submit: got %v, %v", got, err)
	}

	if n := seen.Load(); n != 1 {
		t.Fatalf("predict saw %d rows, want 1 (canceled rows must not reach the pass)", n)
	}
	if d := m.BatchDropped("t"); d != 3 {
		t.Fatalf("dropped counter %d, want 3", d)
	}
}

// TestBatcherUnbatchedCanceled pins the Window<=0 path: an
// already-canceled context short-circuits before the pass runs.
func TestBatcherUnbatchedCanceled(t *testing.T) {
	var seen atomic.Int64
	b := NewBatcher("t", 0, 64, func(model string, rows []int) ([]int, error) {
		seen.Add(int64(len(rows)))
		return rows, nil
	}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.Submit(ctx, "m", []int{1}); err == nil {
		t.Fatal("want context error")
	}
	if seen.Load() != 0 {
		t.Fatalf("predict ran %d rows for a canceled request", seen.Load())
	}
}

// TestBatcherCancellationUnderLoad hammers one queue from many
// goroutines, canceling half mid-flight, and checks conservation: every
// row submitted is either predicted or dropped, never both, and every
// surviving caller gets exactly its own answer. Run with -race in CI.
func TestBatcherCancellationUnderLoad(t *testing.T) {
	var seen atomic.Int64
	m := NewMetrics()
	b := NewBatcher("t", 2*time.Millisecond, 8, func(model string, rows []int) ([]int, error) {
		seen.Add(int64(len(rows)))
		time.Sleep(200 * time.Microsecond) // make passes slow enough to queue behind
		out := make([]int, len(rows))
		for i, r := range rows {
			out[i] = r + 1000
		}
		return out, nil
	}, m)

	const n = 200
	var wg sync.WaitGroup
	var okCount, cancelCount atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			var cancel context.CancelFunc = func() {}
			if i%2 == 0 {
				ctx, cancel = context.WithTimeout(ctx, time.Duration(i%5)*100*time.Microsecond)
			}
			defer cancel()
			got, err := b.Submit(ctx, "m", []int{i})
			if err != nil {
				cancelCount.Add(1)
				return
			}
			if len(got) != 1 || got[0] != i+1000 {
				t.Errorf("request %d: got %v", i, got)
			}
			okCount.Add(1)
		}(i)
	}
	wg.Wait()
	// Let the dispatcher retire so all drops are accounted.
	time.Sleep(10 * time.Millisecond)

	if okCount.Load()+cancelCount.Load() != n {
		t.Fatalf("accounting: %d ok + %d canceled != %d", okCount.Load(), cancelCount.Load(), n)
	}
	// Conservation: rows predicted + rows dropped covers every canceled
	// submit that was dequeued; rows predicted must include every OK
	// submit. A canceled submit may still have been predicted (the
	// cancellation raced the pass), so predicted >= ok and
	// predicted+dropped <= n.
	predicted, dropped := seen.Load(), m.BatchDropped("t")
	if predicted < okCount.Load() {
		t.Fatalf("predicted %d rows < %d successful requests", predicted, okCount.Load())
	}
	if predicted+dropped > n {
		t.Fatalf("predicted %d + dropped %d exceeds %d submitted", predicted, dropped, n)
	}
	t.Logf("n=%d ok=%d canceled=%d predicted_rows=%d dropped_rows=%d",
		n, okCount.Load(), cancelCount.Load(), predicted, dropped)
}

// TestBatcherErrorFansOut pins that a failing pass reports the error to
// every job it coalesced (regression guard on the flush fan-out).
func TestBatcherErrorFansOut(t *testing.T) {
	b := NewBatcher("t", 5*time.Millisecond, 64, func(model string, rows []int) ([]int, error) {
		return nil, fmt.Errorf("boom")
	}, nil)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = b.Submit(context.Background(), "m", []int{i})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil || err.Error() != "boom" {
			t.Fatalf("job %d: err %v, want boom", i, err)
		}
	}
}
