package serve

import (
	"fmt"
	"net/http"
	"time"

	"noble/internal/core"
	"noble/internal/geo"
	"noble/internal/imu"
	"noble/internal/serve/session"
)

// SessionSegmentsRequest is the POST /v1/sessions/{id}/segments body.
// The first request for a device creates the session and must name the
// IMU model plus an origin — an explicit start anchor, a WiFi
// fingerprint, or both. Every request may carry zero or more IMU
// segments (a multiple of the model's segment_dim) and, optionally, a
// WiFi fingerprint that re-anchors the session's origin through the
// localize path before the segments are applied.
type SessionSegmentsRequest struct {
	Model  string `json:"model,omitempty"`  // IMU model; required on create
	Start  *XY    `json:"start,omitempty"`  // origin anchor (create only)
	Window int    `json:"window,omitempty"` // decode window in segments (create only; default 2)

	Features []float64 `json:"features,omitempty"` // k × segment_dim, appended in order

	WiFiModel   string    `json:"wifi_model,omitempty"`
	Fingerprint []float64 `json:"fingerprint,omitempty"`
}

// SessionStepResult is one decoded tracking step.
type SessionStepResult struct {
	Step         int `json:"step"` // 1-based lifetime step index
	End          XY  `json:"end"`
	Class        int `json:"class"`
	Displacement XY  `json:"displacement"` // model displacement over the decode window
}

// SessionResponse describes a session's state after a request. On a
// mid-request inference failure the response carries status 500 with
// Error set and Results holding the steps that DID commit; the failing
// segment and everything after it were not applied (PathTracker.Step is
// pure), so the client resends exactly the unreported tail.
type SessionResponse struct {
	Session    string              `json:"session"`
	Model      string              `json:"model"`
	Created    bool                `json:"created,omitempty"`
	ReAnchored bool                `json:"re_anchored,omitempty"`
	Anchor     *XY                 `json:"anchor,omitempty"` // the fused WiFi fix
	Steps      int                 `json:"steps"`
	Position   XY                  `json:"position"` // current end estimate
	Class      int                 `json:"class"`
	Traveled   XY                  `json:"traveled"` // displacement since origin / last fix
	Results    []SessionStepResult `json:"results,omitempty"`
	Error      string              `json:"error,omitempty"`
}

// maxSegmentsPerRequest bounds how many tracking steps one request may
// smuggle in, mirroring maxPathsPerRequest on /v1/track.
const maxSegmentsPerRequest = 64

// defaultSessionWindow is the decode window when a session does not ask
// for one: short windows snap accumulated drift to the location codebook
// at every step (see core.PathTracker).
const defaultSessionWindow = 2

// checkSegments validates a session request's feature payload against a
// model's segment width, writing the 400 itself on failure, and returns
// the segment count.
func checkSegments(w http.ResponseWriter, n, segDim int, model string) (int, bool) {
	if n%segDim != 0 {
		fail(w, http.StatusBadRequest,
			"%d feature values is not a multiple of model %q's segment_dim %d", n, model, segDim)
		return 0, false
	}
	k := n / segDim
	if k > maxSegmentsPerRequest {
		fail(w, http.StatusBadRequest, "%d segments exceeds the per-request limit of %d", k, maxSegmentsPerRequest)
		return 0, false
	}
	return k, true
}

func (s *Server) handleSessionSegments(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req SessionSegmentsRequest
	if !decodeStrict(w, r, &req) {
		return
	}

	// Fuse the WiFi fix first: it may be the origin of a brand-new
	// session, and for an existing one the paper's tracking setup
	// re-anchors before dead reckoning continues. The localize pass runs
	// through the same batcher as /v1/localize traffic.
	var fix *core.WiFiPrediction
	if len(req.Fingerprint) > 0 {
		wm, ok := s.resolve(w, req.WiFiModel, KindWiFi)
		if !ok {
			return
		}
		if dim := wm.WiFi.InputDim(); len(req.Fingerprint) != dim {
			fail(w, http.StatusBadRequest, "fingerprint has %d features, model %q wants %d",
				len(req.Fingerprint), req.WiFiModel, dim)
			return
		}
		preds, err := s.wifiBatcher.Submit(r.Context(), req.WiFiModel, [][]float64{req.Fingerprint})
		if err != nil {
			fail(w, http.StatusInternalServerError, "localizing fix: %v", err)
			return
		}
		fix = &preds[0]
	} else if req.WiFiModel != "" {
		fail(w, http.StatusBadRequest, "wifi_model given without a fingerprint")
		return
	}

	sess, ok := s.sessions.Get(id)
	created := false
	if !ok {
		// Validate the whole creation spec — including the segment
		// payload — outside the shard lock and BEFORE inserting
		// anything: a request answered 400 must not leave a session
		// behind. The init closure then only assembles state; racing
		// creators both pass validation and exactly one wins.
		if req.Model == "" {
			fail(w, http.StatusBadRequest, "new session %q needs an IMU model name", id)
			return
		}
		m, resolved := s.resolve(w, req.Model, KindIMU)
		if !resolved {
			return
		}
		if _, ok := checkSegments(w, len(req.Features), m.IMU.SegmentDim(), req.Model); !ok {
			return
		}
		var start geo.Point
		switch {
		case req.Start != nil:
			start = geo.Point{X: req.Start.X, Y: req.Start.Y}
		case fix != nil:
			start = fix.Pos
		default:
			fail(w, http.StatusBadRequest, "new session %q needs a start anchor or a wifi fingerprint", id)
			return
		}
		window := req.Window
		if window <= 0 {
			window = defaultSessionWindow
		}
		sess, created, _ = s.sessions.GetOrCreate(id, func() (*session.Session, error) {
			return session.New(id, req.Model, m.IMU.NewPathTracker(start, window)), nil
		})
	}
	if req.Model != "" && req.Model != sess.Model {
		fail(w, http.StatusConflict, "session %q is bound to model %q, not %q", id, sess.Model, req.Model)
		return
	}

	sess.Lock()
	defer sess.Unlock()
	// Stamp activity when the request finishes, not when the lock is
	// acquired (deferred args evaluate immediately; the closure does not).
	defer func() { sess.Touch(time.Now()) }()

	// The TTL sweeper (or a concurrent DELETE) may have removed this
	// session between the map lookup and the lock acquire. Re-verify
	// membership now that we hold the mutex — the sweeper only TryLocks,
	// so it cannot evict us past this point — or a step would apply to
	// an orphaned session and silently vanish.
	if cur, ok := s.sessions.Get(id); !ok || cur != sess {
		fail(w, http.StatusNotFound, "session %q expired", id)
		return
	}

	// Validate the segment payload before mutating anything: a request
	// answered 400 must leave the session untouched (in particular, its
	// fix must not re-anchor a trajectory whose segments were rejected).
	segDim := sess.Tracker.SegmentDim()
	k, ok := checkSegments(w, len(req.Features), segDim, sess.Model)
	if !ok {
		return
	}

	resp := SessionResponse{Session: id, Model: sess.Model, Created: created}
	if fix != nil {
		// On a fresh session whose origin IS the fix this is a no-op
		// (empty window, estimate already at the fix); otherwise it
		// snaps the trajectory to the absolute position.
		sess.Tracker.ReAnchor(fix.Pos)
		sess.ReAnchors.Add(1)
		s.sessions.NoteReAnchor()
		resp.ReAnchored = true
		resp.Anchor = &XY{X: fix.Pos.X, Y: fix.Pos.Y}
	}

	// Each appended segment is one tracking step: the windowed path goes
	// through the track batcher, coalescing with other devices' steps
	// (and plain /v1/track traffic) into shared PredictPaths passes.
	for i := 0; i < k; i++ {
		seg := req.Features[i*segDim : (i+1)*segDim]
		path, err := sess.Tracker.Step(seg)
		if err != nil {
			fail(w, http.StatusBadRequest, "segment %d: %v", i, err)
			return
		}
		preds, err := s.imuBatcher.Submit(r.Context(), sess.Model, []imu.Path{path})
		if err != nil {
			// Step is pure, so this segment (and the ones after it) were
			// NOT applied; the committed prefix is reported with the
			// error so the client resends only the tail (see
			// SessionResponse).
			resp.Error = fmt.Sprintf("inference at segment %d: %v", i, err)
			if i > 0 {
				sess.Steps.Add(int64(i))
				s.sessions.NoteSteps(i)
			}
			fillSessionState(&resp, sess)
			writeJSON(w, http.StatusInternalServerError, resp)
			return
		}
		sess.Tracker.Commit(seg, preds[0])
		resp.Results = append(resp.Results, SessionStepResult{
			Step:         sess.Tracker.Steps(),
			End:          XY{X: preds[0].End.X, Y: preds[0].End.Y},
			Class:        preds[0].Class,
			Displacement: XY{X: preds[0].Displacement.X, Y: preds[0].Displacement.Y},
		})
	}
	if k > 0 {
		sess.Steps.Add(int64(k))
		s.sessions.NoteSteps(k)
	}

	fillSessionState(&resp, sess)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess, ok := s.sessions.Get(id)
	if !ok {
		fail(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	sess.Lock()
	defer sess.Unlock()
	resp := SessionResponse{Session: id, Model: sess.Model}
	fillSessionState(&resp, sess)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.sessions.Delete(id) {
		fail(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"session": id, "deleted": true})
}

// fillSessionState copies the tracker's current estimate into resp. The
// caller holds the session lock.
func fillSessionState(resp *SessionResponse, sess *session.Session) {
	est := sess.Tracker.Estimate()
	trav := sess.Tracker.Traveled()
	resp.Steps = sess.Tracker.Steps()
	resp.Position = XY{X: est.End.X, Y: est.End.Y}
	resp.Class = est.Class
	resp.Traveled = XY{X: trav.X, Y: trav.Y}
}
