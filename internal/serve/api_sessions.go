package serve

import (
	"net/http"

	"noble/internal/geo"
	"noble/internal/obs"
)

// /v1 session adapter: wire shapes for the stateful tracking endpoints.
// All session logic (creation, WiFi fusion, per-segment decoding) lives
// in Engine.AppendSegments; this file only translates between the
// legacy JSON protocol and the Engine's typed queries and states.

// SessionSegmentsRequest is the POST /v1/sessions/{id}/segments body.
// The first request for a device creates the session and must name the
// IMU model plus an origin — an explicit start anchor, a WiFi
// fingerprint, or both. Every request may carry zero or more IMU
// segments (a multiple of the model's segment_dim) and, optionally, a
// WiFi fingerprint that re-anchors the session's origin through the
// localize path before the segments are applied.
type SessionSegmentsRequest struct {
	Model  string `json:"model,omitempty"`  // IMU model; required on create
	Start  *XY    `json:"start,omitempty"`  // origin anchor (create only)
	Window int    `json:"window,omitempty"` // decode window in segments (create only; default 2)

	Features []float64 `json:"features,omitempty"` // k × segment_dim, appended in order

	WiFiModel   string    `json:"wifi_model,omitempty"`
	Fingerprint []float64 `json:"fingerprint,omitempty"`
}

// SessionStepResult is one decoded tracking step.
type SessionStepResult struct {
	Step         int `json:"step"` // 1-based lifetime step index
	End          XY  `json:"end"`
	Class        int `json:"class"`
	Displacement XY  `json:"displacement"` // model displacement over the decode window
}

// SessionResponse describes a session's state after a request. On a
// mid-request inference failure the response carries status 500 with
// Error set and Results holding the steps that DID commit; the failing
// segment and everything after it were not applied (PathTracker.Step is
// pure), so the client resends exactly the unreported tail.
type SessionResponse struct {
	Session    string              `json:"session"`
	Model      string              `json:"model"`
	Created    bool                `json:"created,omitempty"`
	ReAnchored bool                `json:"re_anchored,omitempty"`
	Anchor     *XY                 `json:"anchor,omitempty"` // the fused WiFi fix
	Steps      int                 `json:"steps"`
	Position   XY                  `json:"position"` // current end estimate
	Class      int                 `json:"class"`
	Traveled   XY                  `json:"traveled"` // displacement since origin / last fix
	Results    []SessionStepResult `json:"results,omitempty"`
	Error      string              `json:"error,omitempty"`
}

// maxSegmentsPerRequest bounds how many tracking steps one request may
// smuggle in, mirroring maxPathsPerRequest on /v1/track.
const maxSegmentsPerRequest = 64

// defaultSessionWindow is the decode window when a session does not ask
// for one: short windows snap accumulated drift to the location codebook
// at every step (see core.PathTracker).
const defaultSessionWindow = 2

// segmentQuery maps the wire request onto the Engine's typed query.
func segmentQuery(id string, req *SessionSegmentsRequest) SegmentQuery {
	q := SegmentQuery{
		Session:     id,
		Model:       req.Model,
		Window:      req.Window,
		Features:    req.Features,
		WiFiModel:   req.WiFiModel,
		Fingerprint: req.Fingerprint,
	}
	if req.Start != nil {
		q.Start = &geo.Point{X: req.Start.X, Y: req.Start.Y}
	}
	return q
}

// sessionResponse maps an Engine session state onto the wire shape.
func sessionResponse(st SessionState) SessionResponse {
	resp := SessionResponse{
		Session:    st.Session,
		Model:      st.Model,
		Created:    st.Created,
		ReAnchored: st.ReAnchored,
		Steps:      st.Steps,
		Position:   XY{X: st.Position.X, Y: st.Position.Y},
		Class:      st.Class,
		Traveled:   XY{X: st.Traveled.X, Y: st.Traveled.Y},
	}
	if st.Anchor != nil {
		resp.Anchor = &XY{X: st.Anchor.X, Y: st.Anchor.Y}
	}
	for _, r := range st.Results {
		resp.Results = append(resp.Results, SessionStepResult{
			Step:         r.Step,
			End:          XY{X: r.End.X, Y: r.End.Y},
			Class:        r.Class,
			Displacement: XY{X: r.Displacement.X, Y: r.Displacement.Y},
		})
	}
	return resp
}

func (s *Server) handleSessionSegments(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	dec := obs.Begin(r.Context(), obs.StageDecode)
	var req SessionSegmentsRequest
	if !decodeStrict(w, r, &req) {
		dec.End()
		return
	}
	dec.End()
	st, err := s.engine.AppendSegments(r.Context(), segmentQuery(id, &req))
	if err != nil {
		// A populated state alongside the error is the partial-commit
		// contract: report the committed prefix with the failure so the
		// client resends only the tail (see SessionResponse). The status
		// comes from the typed error — 500 for a failed pass, 504 when a
		// deadline expired mid-append.
		if e := AsError(err); st.Session != "" {
			resp := sessionResponse(st)
			resp.Error = e.Message
			writeJSON(w, e.Status, resp)
			return
		}
		failEngine(w, err)
		return
	}
	enc := obs.Begin(r.Context(), obs.StageEncode)
	writeJSON(w, http.StatusOK, sessionResponse(st))
	enc.End()
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.engine.Session(r.PathValue("id"))
	if err != nil {
		failEngine(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sessionResponse(st))
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.engine.DeleteSession(id); err != nil {
		failEngine(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"session": id, "deleted": true})
}
