package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"noble/internal/obs"
)

// PredictFunc answers one coalesced forward pass for a named model: R is
// the per-request row type (a fingerprint, a path), P the per-row
// prediction.
type PredictFunc[R, P any] func(model string, rows []R) ([]P, error)

// Batcher is the micro-batching engine: concurrent requests for the same
// model are packed into one batch and answered by a single batched
// forward pass. It is generic over the row and prediction types, so the
// same engine coalesces localize traffic (fingerprint rows through
// (*core.WiFiModel).PredictBatch) and track/session traffic (imu.Path
// rows through (*core.IMUModel).PredictPaths).
//
// It runs continuous batching with arrival-gap pass boundaries: a
// per-model dispatcher goroutine accumulates requests while they keep
// streaming in, fires a pass at the first pause in the stream (or at
// MaxBatch rows, or Window after the pass's first request — whichever
// comes first), and immediately starts accumulating the next pass while
// the results fan out. Under sustained load passes run back to back with
// whatever arrived during the previous pass; the Window bounds how long
// any single request can sit waiting for companions. After Window of
// complete silence the dispatcher exits; the next request starts a fresh
// one.
//
// With Window <= 0 every request runs its own pass (the unbatched
// baseline). Results are split back per request in arrival order. The
// model is resolved at flush time, so a batch formed across a hot reload
// simply runs on the newest generation.
type Batcher[R, P any] struct {
	Window   time.Duration
	MaxBatch int

	kind    string // metrics label ("localize", "track")
	predict PredictFunc[R, P]
	metrics *Metrics

	mu     sync.Mutex
	queues map[string]*batchQueue[R, P]
}

// batchJob is one request waiting for its pass. ctx is the submitting
// request's context: the dispatcher drops a job whose ctx is already
// done when its pass forms, so an abandoned request (client gone,
// deadline expired while queued) never consumes forward-pass rows. It
// also carries the request's trace, which is how the dispatcher
// stitches the shared pass back into every rider's timeline.
type batchJob[R, P any] struct {
	ctx   context.Context
	rows  []R
	enq   time.Time // when Submit queued the job (queue_wait span start)
	preds []P
	err   error
	done  chan struct{}
}

// batchQueue accumulates jobs for one model between passes.
type batchQueue[R, P any] struct {
	jobs    []*batchJob[R, P]
	rows    int
	running bool          // a dispatcher goroutine is active for this model
	notify  chan struct{} // cap 1; poked on every enqueue
}

// NewBatcher builds a batcher over a predict callback. kind labels the
// batcher's passes in /metrics; metrics may be nil.
func NewBatcher[R, P any](kind string, window time.Duration, maxBatch int, predict PredictFunc[R, P], metrics *Metrics) *Batcher[R, P] {
	if maxBatch <= 0 {
		maxBatch = 64
	}
	if metrics != nil {
		metrics.registerBatchKind(kind)
	}
	return &Batcher[R, P]{
		Window:   window,
		MaxBatch: maxBatch,
		kind:     kind,
		predict:  predict,
		metrics:  metrics,
		queues:   make(map[string]*batchQueue[R, P]),
	}
}

// Submit predicts rows on the named model, sharing a forward pass with
// concurrent callers when batching is enabled. It blocks until the pass
// containing the request completes or ctx is done.
func (b *Batcher[R, P]) Submit(ctx context.Context, model string, rows []R) ([]P, error) {
	if b.Window <= 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start := time.Now()
		preds, err := b.run(model, rows)
		obs.AddBatchSpan(ctx, b.kind, len(rows), start, time.Now())
		return preds, err
	}

	job := &batchJob[R, P]{ctx: ctx, rows: rows, enq: time.Now(), done: make(chan struct{})}
	b.mu.Lock()
	q := b.queues[model]
	if q == nil {
		q = &batchQueue[R, P]{notify: make(chan struct{}, 1)}
		b.queues[model] = q
	}
	q.jobs = append(q.jobs, job)
	q.rows += len(rows)
	spawn := !q.running
	if spawn {
		q.running = true
	}
	b.mu.Unlock()
	if spawn {
		go b.dispatch(model, q)
	} else {
		select {
		case q.notify <- struct{}{}:
		default: // a wakeup is already pending
		}
	}

	select {
	case <-job.done:
		return job.preds, job.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// dispatch drains one model's queue in passes until the queue stays
// silent for a full Window, then exits.
//
// Pass boundaries come from arrival-gap detection: while requests keep
// streaming in (inter-arrival gaps below the grace threshold, a small
// fraction of Window), the dispatcher keeps accumulating; the first
// pause in the stream — the sign that the
// concurrent cohort has fully arrived — fires the pass. The wait is also
// bounded by Window in total and by MaxBatch rows, so a pass fires at
// most Window after its first request no matter how traffic trickles.
// This is stateless, so it cannot lock into a degenerate batch size: a
// lone request waits only one gap, a burst coalesces into one pass, and
// sustained load runs full passes back to back.
func (b *Batcher[R, P]) dispatch(model string, q *batchQueue[R, P]) {
	timer := time.NewTimer(b.Window)
	defer timer.Stop()
	// The gap threshold needs to exceed the per-request ingest time (so a
	// streaming cohort is not split) while staying far below the pass
	// compute time (so the tail wait is cheap); a small fraction of the
	// window fits both on current hardware.
	grace := b.Window / 32
	if grace < 40*time.Microsecond {
		grace = 40 * time.Microsecond
	}
	graceTimer := time.NewTimer(grace)
	defer graceTimer.Stop()
	for {
		// Idle stage: wait for the first job of the next pass. A full
		// Window of silence retires the dispatcher.
		resetTimer(timer, b.Window)
		idle := false
		for !idle {
			b.mu.Lock()
			rows := q.rows
			b.mu.Unlock()
			if rows > 0 {
				break
			}
			select {
			case <-q.notify:
			case <-timer.C:
				idle = true
			}
		}

		if !idle {
			// Fill stage: accumulate while the arrival stream is hot,
			// bounded by Window overall and MaxBatch rows.
			resetTimer(timer, b.Window)
			resetTimer(graceTimer, grace)
		fill:
			for {
				b.mu.Lock()
				rows := q.rows
				b.mu.Unlock()
				if rows >= b.MaxBatch {
					break
				}
				select {
				case <-q.notify:
					resetTimer(graceTimer, grace)
				case <-graceTimer.C:
					break fill
				case <-timer.C:
					break fill
				}
			}
		}

		b.mu.Lock()
		if len(q.jobs) == 0 {
			// A full Window of silence: retire this dispatcher.
			q.running = false
			b.mu.Unlock()
			return
		}
		// Take whole jobs up to MaxBatch rows; a single oversized job
		// still goes through as its own pass. A job whose submitter is
		// already gone (context canceled or deadline expired while
		// queued) is dropped here instead of taken: its submitter has
		// returned, so running it would only waste forward-pass rows.
		var (
			take    []*batchJob[R, P]
			taken   int
			dropped int
		)
		for len(q.jobs) > 0 {
			j := q.jobs[0]
			if j.ctx.Err() != nil {
				q.jobs = q.jobs[1:]
				q.rows -= len(j.rows)
				dropped += len(j.rows)
				j.err = j.ctx.Err()
				close(j.done)
				continue
			}
			if len(take) > 0 && taken+len(j.rows) > b.MaxBatch {
				break
			}
			take = append(take, j)
			taken += len(j.rows)
			q.jobs = q.jobs[1:]
		}
		q.rows -= taken
		if len(q.jobs) == 0 {
			q.jobs = nil // let the drained backing array be reclaimed
		}
		b.mu.Unlock()

		if dropped > 0 && b.metrics != nil {
			b.metrics.ObserveBatchDrop(b.kind, dropped)
		}
		if len(take) > 0 {
			b.flush(model, take)
		}
	}
}

// resetTimer restarts a (possibly fired, possibly drained) timer. The
// stop-drain-reset sequence is only race-free under the synchronous
// timer semantics of go >= 1.23 (declared in go.mod): pre-1.23 async
// timers could deliver a stale fire after the drain.
func resetTimer(t *time.Timer, d time.Duration) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	t.Reset(d)
}

// flush runs one forward pass for the coalesced jobs and fans results
// back out in arrival order. Each rider's trace gets two spans from
// here: its own queue_wait (enqueue to pass start) and the shared
// batch_pass, annotated with the pass's kind and total row count —
// recorded before done is closed, so the submitting goroutine never
// observes its job finished with the spans still missing.
func (b *Batcher[R, P]) flush(model string, jobs []*batchJob[R, P]) {
	var rows []R
	for _, j := range jobs {
		rows = append(rows, j.rows...)
	}
	passStart := time.Now()
	preds, err := b.run(model, rows)
	passEnd := time.Now()
	off := 0
	for _, j := range jobs {
		if err != nil {
			j.err = err
		} else {
			j.preds = preds[off : off+len(j.rows)]
		}
		off += len(j.rows)
		obs.AddSpan(j.ctx, obs.StageQueueWait, j.enq, passStart)
		obs.AddBatchSpan(j.ctx, b.kind, len(rows), passStart, passEnd)
		close(j.done)
	}
}

// run invokes the predict callback for one batch, converting panics (e.g.
// a shape mismatch that slipped past validation) into errors so one bad
// request cannot take down the server, and records the batch size.
func (b *Batcher[R, P]) run(model string, rows []R) (preds []P, err error) {
	defer func() {
		if r := recover(); r != nil {
			preds, err = nil, fmt.Errorf("inference panic: %v", r)
		}
	}()
	if b.metrics != nil {
		b.metrics.ObserveBatch(b.kind, len(rows))
	}
	return b.predict(model, rows)
}
