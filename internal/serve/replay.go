package serve

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"noble/internal/geo"
	"noble/internal/serve/session"
	"noble/internal/store"
)

// Replay turns a recorded journal back into live traffic: every session
// history is driven against an Engine through the same AppendSegments
// entry the HTTP handlers use (so batching, validation, and session
// semantics all engage), at a configurable multiple of the recorded
// timeline or as fast as possible, and every replayed step's decoded
// estimate is compared against the recorded one. With the same model
// bundles loaded, divergence is zero — the forward pass is
// deterministic — which is what turns any production trace into an
// offline regression scenario: re-run it after a change and a non-zero
// divergence report is the diff.

// ReplayOptions tunes ReplayJournal.
type ReplayOptions struct {
	// Speed is the timeline multiplier: 1 replays at recorded pacing, 10
	// at ten times that, 0 (or negative) as fast as possible.
	Speed float64
	// Eps is the distance (in position units) above which a replayed
	// step counts as diverged. Zero means exact.
	Eps float64
}

// ReplayReport summarizes a replay.
type ReplayReport struct {
	Sessions int // histories driven
	Seeded   int // sessions seeded from a compaction snapshot
	Skipped  int // histories not replayable (damaged, model gone)

	Steps     int // tracking steps replayed through the engine
	ReAnchors int
	Closes    int
	Errors    int // engine call failures mid-replay

	DivergedSteps int
	MaxDivergence float64
	SumDivergence float64
	ComparedSteps int
	FinalCompared int // sessions whose final estimate was checked
	FinalDiverged int
	RecordedSpan  time.Duration
	Elapsed       time.Duration
}

// MeanDivergence is the average per-step divergence.
func (r *ReplayReport) MeanDivergence() float64 {
	if r.ComparedSteps == 0 {
		return 0
	}
	return r.SumDivergence / float64(r.ComparedSteps)
}

// SeedSessionSnapshot installs a session from a compaction snapshot
// without replaying events — the base a replay continues from when the
// journal's early history was compacted away.
func (e *Engine) SeedSessionSnapshot(snap *store.SessionSnapshot) error {
	sess, err := e.restoreSession(&store.SessionHistory{ID: snap.ID, Gen: snap.Gen, Snapshot: snap})
	if err != nil {
		return err
	}
	_, created, _ := e.sessions.GetOrCreate(snap.ID, func() (*session.Session, error) { return sess, nil })
	if !created {
		return fmt.Errorf("session %q already exists", snap.ID)
	}
	return nil
}

// ReplayJournal drives a recovered journal against the engine and
// reports trajectory divergence versus the recorded run. Sessions
// replay concurrently (their recorded traffic was concurrent), each
// one's events in order; pacing follows the recorded timestamps scaled
// by opts.Speed.
func ReplayJournal(ctx context.Context, e *Engine, rec *store.Recovery, opts ReplayOptions) (*ReplayReport, error) {
	rep := &ReplayReport{}
	first, last := rec.Span()
	if first > 0 {
		rep.RecordedSpan = time.Duration(last - first)
	}
	start := time.Now()
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	runOne := func(h *store.SessionHistory) {
		r := e.replayHistory(ctx, h, opts, first, start)
		mu.Lock()
		rep.Seeded += r.Seeded
		rep.Skipped += r.Skipped
		rep.Steps += r.Steps
		rep.ReAnchors += r.ReAnchors
		rep.Closes += r.Closes
		rep.Errors += r.Errors
		rep.DivergedSteps += r.DivergedSteps
		rep.SumDivergence += r.SumDivergence
		rep.ComparedSteps += r.ComparedSteps
		rep.FinalCompared += r.FinalCompared
		rep.FinalDiverged += r.FinalDiverged
		if r.MaxDivergence > rep.MaxDivergence {
			rep.MaxDivergence = r.MaxDivergence
		}
		mu.Unlock()
	}
	var todo []*store.SessionHistory
	for _, h := range rec.Histories {
		if h.Damaged {
			rep.Skipped++
			continue
		}
		rep.Sessions++
		todo = append(todo, h)
	}
	if opts.Speed > 0 {
		// Paced: one goroutine per session — each is its own recorded
		// timeline, sleeping until its next event, so a shared worker
		// pool would let one sleeping session block another's due event.
		for _, h := range todo {
			wg.Add(1)
			go func(h *store.SessionHistory) { defer wg.Done(); runOne(h) }(h)
		}
	} else {
		// As fast as possible: no timelines to honor, so a bounded pool
		// keeps a fleet-sized journal (hundreds of thousands of recorded
		// sessions) from costing a goroutine apiece. Wide enough to keep
		// the micro-batcher coalescing.
		workers := runtime.GOMAXPROCS(0) * 8
		if workers > len(todo) {
			workers = len(todo)
		}
		queue := make(chan *store.SessionHistory)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for h := range queue {
					runOne(h)
				}
			}()
		}
		for _, h := range todo {
			queue <- h
		}
		close(queue)
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	return rep, ctx.Err()
}

// replayHistory drives one session's recorded events.
func (e *Engine) replayHistory(ctx context.Context, h *store.SessionHistory, opts ReplayOptions, epoch int64, start time.Time) ReplayReport {
	var r ReplayReport

	// The recorded estimate the session should end at, tracked as events
	// replay so the final comparison needs no second pass.
	var lastEst *geo.Point
	if h.Snapshot != nil {
		if err := e.SeedSessionSnapshot(h.Snapshot); err != nil {
			r.Skipped++
			r.Errors++
			return r
		}
		r.Seeded++
		lastEst = &geo.Point{X: h.Snapshot.Tracker.Est.EndX, Y: h.Snapshot.Tracker.Est.EndY}
	}

	diverge := func(recorded geo.Point, got geo.Point, recClass, gotClass int) {
		d := math.Hypot(recorded.X-got.X, recorded.Y-got.Y)
		r.ComparedSteps++
		r.SumDivergence += d
		if d > r.MaxDivergence {
			r.MaxDivergence = d
		}
		if d > opts.Eps || recClass != gotClass {
			r.DivergedSteps++
		}
	}

	for _, ev := range h.Events {
		if ctx.Err() != nil {
			return r
		}
		// Pace against the recorded timeline. As-fast-as-possible when
		// Speed <= 0.
		if opts.Speed > 0 && ev.Time > epoch {
			target := start.Add(time.Duration(float64(ev.Time-epoch) / opts.Speed))
			if d := time.Until(target); d > 0 {
				select {
				case <-ctx.Done():
					return r
				case <-time.After(d):
				}
			}
		}
		switch ev.Type {
		case store.EvCreate:
			c := ev.Create
			st, err := e.AppendSegments(ctx, SegmentQuery{
				Session: h.ID,
				Model:   c.Model,
				Start:   &geo.Point{X: c.StartX, Y: c.StartY},
				Window:  c.Window,
			})
			if err != nil || !st.Created {
				r.Errors++
				return r
			}
			lastEst = &geo.Point{X: c.StartX, Y: c.StartY}
		case store.EvSteps:
			s := ev.Steps
			st, err := e.AppendSegments(ctx, SegmentQuery{Session: h.ID, Features: s.Features})
			if err != nil {
				r.Errors++
				return r
			}
			for i, res := range st.Results {
				if i >= len(s.Preds) {
					break
				}
				diverge(geo.Point{X: s.Preds[i].EndX, Y: s.Preds[i].EndY}, res.End,
					int(s.Preds[i].Class), res.Class)
			}
			r.Steps += s.Count
			if s.Count > 0 {
				p := s.Preds[s.Count-1]
				lastEst = &geo.Point{X: p.EndX, Y: p.EndY}
			}
		case store.EvReAnchor:
			a := ev.ReAnchor
			pt := geo.Point{X: a.X, Y: a.Y}
			if _, err := e.AppendSegments(ctx, SegmentQuery{Session: h.ID, Anchor: &pt}); err != nil {
				r.Errors++
				return r
			}
			r.ReAnchors++
			lastEst = &pt
		case store.EvClose:
			if err := e.DeleteSession(h.ID); err != nil {
				r.Errors++
				return r
			}
			r.Closes++
		}
	}

	// A session still live at the end of its record: its final replayed
	// estimate must land where the recorded run ended.
	if !h.Closed && lastEst != nil {
		st, err := e.Session(h.ID)
		if err != nil {
			r.Errors++
			return r
		}
		r.FinalCompared++
		if math.Hypot(st.Position.X-lastEst.X, st.Position.Y-lastEst.Y) > opts.Eps {
			r.FinalDiverged++
		}
	}
	return r
}
