package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"noble/internal/geo"
	"noble/internal/obs"
	"noble/internal/store"
)

// findTrace pulls one retained trace out of a tracer dump by ID,
// searching the recent ring first, then the tail-sampled sets.
func findTrace(d obs.DumpResult, id string) (obs.TraceDump, bool) {
	for _, set := range [][]obs.TraceDump{d.Recent, d.Slowest, d.ErroredRing} {
		for _, tr := range set {
			if tr.ID == id {
				return tr, true
			}
		}
	}
	return obs.TraceDump{}, false
}

// spanOf returns the first span with the given stage.
func spanOf(tr obs.TraceDump, stage string) (obs.SpanDump, bool) {
	for _, sp := range tr.Spans {
		if sp.Stage == stage {
			return sp, true
		}
	}
	return obs.SpanDump{}, false
}

// postTraced is postJSON plus a client-supplied X-Trace-Id header.
func postTraced(t *testing.T, h http.Handler, path, body, traceID string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", traceID)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// segFeatures returns k segments' worth of IMU features from the test
// fixture.
func segFeatures(t *testing.T, k int) []float64 {
	t.Helper()
	segDim := imuModel.SegmentDim()
	if len(imuDS.Test[0].Features) < k*segDim {
		t.Fatalf("fixture path too short for %d segments", k)
	}
	return imuDS.Test[0].Features[:k*segDim]
}

// TestTraceStitchesAcrossBatchPass pins the batcher-boundary stitching
// deterministically: the first pass is held open inside predict while
// two more requests enqueue, so when it releases they MUST coalesce
// into one shared pass — and each rider's trace must carry its own
// queue_wait plus the shared batch_pass annotated with the pass's total
// row count, not its own.
func TestTraceStitchesAcrossBatchPass(t *testing.T) {
	tracer := obs.NewTracer(obs.Options{})
	entered := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int32
	predict := func(model string, rows []int) ([]int, error) {
		if calls.Add(1) == 1 {
			close(entered)
			<-release
		}
		return make([]int, len(rows)), nil
	}
	b := NewBatcher[int, int]("stitch", 10*time.Millisecond, 64, predict, nil)

	submit := func(name string) (id string, done chan error) {
		ctx, tr := tracer.Start(context.Background(), name, "")
		done = make(chan error, 1)
		go func() {
			_, err := b.Submit(ctx, "m", []int{1})
			tr.Finish(http.StatusOK)
			done <- err
		}()
		return tr.ID(), done
	}

	id1, done1 := submit("first")
	<-entered // pass 1 formed (request 1 alone) and is now blocked mid-predict

	id2, done2 := submit("second")
	id3, done3 := submit("third")
	// Wait until both riders are actually enqueued before releasing the
	// blocked pass; Submit enqueues synchronously before parking, so the
	// queue row count is the deterministic signal.
	for {
		b.mu.Lock()
		rows := b.queues["m"].rows
		b.mu.Unlock()
		if rows == 2 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	for _, done := range []chan error{done1, done2, done3} {
		if err := <-done; err != nil {
			t.Fatalf("submit: %v", err)
		}
	}

	dump := tracer.Dump()
	first, ok := findTrace(dump, id1)
	if !ok {
		t.Fatalf("trace %s not retained", id1)
	}
	if sp, ok := spanOf(first, obs.StageBatchPass); !ok || sp.Rows != 1 || sp.Kind != "stitch" {
		t.Fatalf("first request's batch pass = %+v, want its solo pass (rows=1 kind=stitch)", sp)
	}
	for _, id := range []string{id2, id3} {
		tr, ok := findTrace(dump, id)
		if !ok {
			t.Fatalf("trace %s not retained", id)
		}
		if _, ok := spanOf(tr, obs.StageQueueWait); !ok {
			t.Fatalf("trace %s has no queue_wait span: %+v", id, tr.Spans)
		}
		sp, ok := spanOf(tr, obs.StageBatchPass)
		if !ok {
			t.Fatalf("trace %s has no batch_pass span: %+v", id, tr.Spans)
		}
		if sp.Rows != 2 || sp.Kind != "stitch" {
			t.Fatalf("trace %s batch pass = %+v, want the shared pass (rows=2 kind=stitch)", id, sp)
		}
	}
}

// newJournaledTestServer wires a server with batching on and a durable
// journal under -fsync=always, so request traces carry the full span
// set: decode, queue_wait, batch_pass, journal_append, journal_fsync,
// encode.
func newJournaledTestServer(t *testing.T) *Server {
	t.Helper()
	fixtures(t)
	journal, err := store.Open(store.Config{Dir: t.TempDir(), Fsync: store.FsyncAlways, Logf: t.Logf})
	if err != nil {
		t.Fatalf("opening journal: %v", err)
	}
	t.Cleanup(func() { journal.Close() })
	reg := NewRegistry("", t.Logf)
	reg.Add(&Model{Name: "wifi-test", Kind: KindWiFi, WiFi: wifiModel})
	reg.Add(&Model{Name: "imu-test", Kind: KindIMU, IMU: imuModel})
	return New(Config{Registry: reg, BatchWindow: 2 * time.Millisecond, MaxBatch: 64, Journal: journal})
}

// TestDebugTracesEndToEnd drives localize, track, and session requests
// through the full HTTP stack and asserts /debug/traces returns their
// complete multi-stage timelines — including the batch-queue wait and,
// for the journaled session append, the journal fsync span — with a
// client-supplied X-Trace-Id honored and echoed.
func TestDebugTracesEndToEnd(t *testing.T) {
	s := newJournaledTestServer(t)
	h := s.Handler()

	locBody, _ := json.Marshal(LocalizeRequest{
		Model: "wifi-test", Fingerprints: [][]float64{wifiDS.Test[0].Features},
	})
	lw := postTraced(t, h, "/v1/localize", string(locBody), "trace-localize")
	if lw.Code != http.StatusOK {
		t.Fatalf("localize: %d %s", lw.Code, lw.Body)
	}
	if got := lw.Header().Get("X-Trace-Id"); got != "trace-localize" {
		t.Fatalf("X-Trace-Id echo = %q, want trace-localize", got)
	}

	p := imuDS.Test[0]
	trkBody, _ := json.Marshal(TrackRequest{
		Model: "imu-test",
		Paths: []TrackPath{{Start: XY{X: p.Start.X, Y: p.Start.Y}, Features: p.Features}},
	})
	tw := postTraced(t, h, "/v1/track", string(trkBody), "trace-track")
	if tw.Code != http.StatusOK {
		t.Fatalf("track: %d %s", tw.Code, tw.Body)
	}

	sesBody, _ := json.Marshal(SessionSegmentsRequest{
		Model: "imu-test", Start: &XY{}, Features: segFeatures(t, 2),
	})
	sw := postTraced(t, h, "/v1/sessions/dev-trace/segments", string(sesBody), "trace-session")
	if sw.Code != http.StatusOK {
		t.Fatalf("session append: %d %s", sw.Code, sw.Body)
	}

	req := httptest.NewRequest(http.MethodGet, "/debug/traces", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("/debug/traces: %d %s", w.Code, w.Body)
	}
	var dump obs.DumpResult
	if err := json.Unmarshal(w.Body.Bytes(), &dump); err != nil {
		t.Fatalf("decoding /debug/traces: %v\n%s", err, w.Body)
	}

	loc, ok := findTrace(dump, "trace-localize")
	if !ok {
		t.Fatalf("localize trace not in dump: %s", w.Body)
	}
	for _, stage := range []string{obs.StageDecode, obs.StageQueueWait, obs.StageBatchPass, obs.StageEncode} {
		if _, ok := spanOf(loc, stage); !ok {
			t.Fatalf("localize trace missing %s span: %+v", stage, loc.Spans)
		}
	}
	if sp, _ := spanOf(loc, obs.StageBatchPass); sp.Kind != "localize" || sp.Rows < 1 {
		t.Fatalf("localize batch span = %+v", sp)
	}

	trk, ok := findTrace(dump, "trace-track")
	if !ok {
		t.Fatalf("track trace not in dump: %s", w.Body)
	}
	for _, stage := range []string{obs.StageDecode, obs.StageQueueWait, obs.StageBatchPass, obs.StageEncode} {
		if _, ok := spanOf(trk, stage); !ok {
			t.Fatalf("track trace missing %s span: %+v", stage, trk.Spans)
		}
	}
	if sp, _ := spanOf(trk, obs.StageBatchPass); sp.Kind != "track" {
		t.Fatalf("track batch span = %+v", sp)
	}

	ses, ok := findTrace(dump, "trace-session")
	if !ok {
		t.Fatalf("session trace not in dump: %s", w.Body)
	}
	for _, stage := range []string{obs.StageDecode, obs.StageQueueWait, obs.StageBatchPass,
		obs.StageJournalAppend, obs.StageJournalFsync, obs.StageEncode} {
		if _, ok := spanOf(ses, stage); !ok {
			t.Fatalf("session trace missing %s span: %+v", stage, ses.Spans)
		}
	}
}

// TestMetricsExposesStageHistograms asserts the per-stage histograms
// and runtime gauges land on the serving /metrics endpoint.
func TestMetricsExposesStageHistograms(t *testing.T) {
	s := newTestServer(t, 2*time.Millisecond)
	h := s.Handler()
	locBody, _ := json.Marshal(LocalizeRequest{
		Model: "wifi-test", Fingerprints: [][]float64{wifiDS.Test[0].Features},
	})
	if w := postJSON(t, h, "/v1/localize", string(locBody)); w.Code != http.StatusOK {
		t.Fatalf("localize: %d %s", w.Code, w.Body)
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	body := w.Body.String()
	for _, want := range []string{
		`noble_stage_seconds_bucket{stage="total"`,
		`noble_stage_seconds_bucket{stage="batch_pass"`,
		`noble_traces_total{class="all"}`,
		"noble_goroutines",
		"noble_gc_pause_seconds_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// TestConcurrentSessionCreateFsyncAlways races many creators on one
// brand-new session under -fsync=always and then replays the journal:
// the create record (seq 1) must be present and the history gap-free —
// the regression this pins is a racing later-seq commit fsyncing and
// acking before seq 1 was appended.
func TestConcurrentSessionCreateFsyncAlways(t *testing.T) {
	fixtures(t)
	dir := t.TempDir()
	journal, err := store.Open(store.Config{Dir: dir, Fsync: store.FsyncAlways, Logf: t.Logf})
	if err != nil {
		t.Fatalf("opening journal: %v", err)
	}
	reg := NewRegistry("", t.Logf)
	reg.Add(&Model{Name: "wifi-test", Kind: KindWiFi, WiFi: wifiModel})
	reg.Add(&Model{Name: "imu-test", Kind: KindIMU, IMU: imuModel})
	engine := NewEngine(Config{Registry: reg, BatchWindow: time.Millisecond, MaxBatch: 64, Journal: journal})

	origin := geo.Point{}
	seg := segFeatures(t, 1)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Every worker sends a full create spec: exactly one wins the
			// create, the rest race it as plain appends that must commit
			// AFTER the create record is durable.
			_, err := engine.AppendSegments(context.Background(), SegmentQuery{
				Session:  "dev-race",
				Model:    "imu-test",
				Start:    &origin,
				Features: seg,
			})
			if err != nil {
				t.Errorf("append: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := journal.Close(); err != nil {
		t.Fatalf("closing journal: %v", err)
	}

	rec, err := store.Load(dir)
	if err != nil {
		t.Fatalf("loading journal: %v", err)
	}
	if len(rec.Histories) != 1 {
		t.Fatalf("histories = %d, want 1", len(rec.Histories))
	}
	hist := rec.Histories[0]
	if hist.Damaged {
		t.Fatalf("history damaged: %+v", hist.Events)
	}
	if len(hist.Events) == 0 || hist.Events[0].Type != store.EvCreate || hist.Events[0].Seq != 1 {
		t.Fatalf("first event = %+v, want the seq-1 create record", hist.Events[0])
	}
	if hist.LastSeq != int64(workers)+1 {
		t.Fatalf("last seq = %d, want %d (create + %d step records)", hist.LastSeq, workers+1, workers)
	}
}

// TestSessionModelConflictDoesNotLeakLock pins the create-path lock
// discipline: after a model-conflict rejection the session must still
// be appendable — a leaked lock would deadlock the follow-up request.
func TestSessionModelConflictDoesNotLeakLock(t *testing.T) {
	fixtures(t)
	reg := NewRegistry("", t.Logf)
	reg.Add(&Model{Name: "wifi-test", Kind: KindWiFi, WiFi: wifiModel})
	reg.Add(&Model{Name: "imu-test", Kind: KindIMU, IMU: imuModel})
	engine := NewEngine(Config{Registry: reg, MaxBatch: 64})

	ctx := context.Background()
	origin := geo.Point{}
	if _, err := engine.AppendSegments(ctx, SegmentQuery{
		Session: "dev-conflict", Model: "imu-test", Start: &origin,
	}); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := engine.AppendSegments(ctx, SegmentQuery{
		Session: "dev-conflict", Model: "wifi-test",
	}); err == nil {
		t.Fatal("conflicting model accepted")
	}
	done := make(chan error, 1)
	go func() {
		_, err := engine.AppendSegments(ctx, SegmentQuery{
			Session: "dev-conflict", Features: segFeatures(t, 1),
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("append after conflict: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("append after conflict deadlocked: session lock leaked")
	}
}
