package serve

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"noble/internal/core"
	"noble/internal/dataset"
)

// int8Spec is a small quantizable Wi-Fi spec (every layer at or above
// qlinear's eligibility floor) that trains in well under a second.
func int8Spec() (dataset.WiFiConfig, core.WiFiConfig) {
	dcfg := dataset.SmallIPINConfig()
	dcfg.NumWAPs = 24
	dcfg.RefSpacing = 4
	dcfg.SamplesPerRef = 4
	dcfg.TestSamplesPerRef = 1
	dcfg.Seed = 11
	cfg := core.DefaultWiFiConfig()
	cfg.Hidden = []int{32, 32}
	cfg.Epochs = 10
	cfg.TauFine = 1
	cfg.TauCoarse = 8
	return dcfg, cfg
}

// publishInt8Bundle trains the spec, runs the train-time gate, and
// publishes an int8 bundle under dir/name, returning the in-memory
// quantized model for comparison. Budget is wide: a barely-trained toy
// model's delta is noise, and the gate's fail path is tested separately
// with corrupted scales.
func publishInt8Bundle(t *testing.T, dir, name string) *core.WiFiModel {
	t.Helper()
	dcfg, cfg := int8Spec()
	ds := dataset.SynthIPIN(dcfg)
	model := core.TrainWiFi(ds, cfg)
	cal, err := QuantizeWiFiModel(model, ds, QuantizeOptions{BudgetPct: MaxErrorBudgetPct})
	if err != nil {
		t.Fatalf("train-time gate: %v", err)
	}
	if model.Precision() != core.PrecisionInt8 {
		t.Fatalf("precision %q after QuantizeWiFiModel", model.Precision())
	}
	err = WriteBundle(dir, name, Manifest{
		Kind:      KindWiFi,
		WiFi:      &WiFiBundle{Plan: "ipin", Dataset: dcfg, Config: cfg},
		Precision: &PrecisionBlock{Mode: core.PrecisionInt8, ErrorBudgetPct: MaxErrorBudgetPct},
	}, func(f *os.File) error { return model.Save(f) },
		CalibrationExtra("calibration.json", cal))
	if err != nil {
		t.Fatal(err)
	}
	return model
}

// TestInt8BundleRoundTrip: publishing an int8 bundle and loading it
// back reproduces the quantized predictions bit-for-bit — the
// calibration replay path is exact, not approximately equal.
func TestInt8BundleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	model := publishInt8Bundle(t, dir, "wifi-q")

	loaded, err := LoadBundle(filepath.Join(dir, "wifi-q"))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.WiFi == nil || loaded.WiFi.Precision() != core.PrecisionInt8 {
		t.Fatalf("loaded bundle is not int8: %+v", loaded.Info())
	}
	if got := loaded.Info().Precision; got != "int8" {
		t.Fatalf("Info().Precision = %q", got)
	}
	dcfg, _ := int8Spec()
	ds := dataset.SynthIPIN(dcfg)
	for i, s := range ds.Test[:8] {
		if got, want := loaded.WiFi.Predict(s.Features), model.Predict(s.Features); got != want {
			t.Fatalf("sample %d: loaded %+v != published %+v", i, got, want)
		}
	}
}

// corruptCalibration rewrites a bundle's act_scales multiplied by the
// factor — the hand-corruption the load-time gate exists to catch.
func corruptCalibration(t *testing.T, bundleDir string, factor float32) {
	t.Helper()
	path := filepath.Join(bundleDir, "calibration.json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var cal CalibrationFile
	if err := json.Unmarshal(raw, &cal); err != nil {
		t.Fatal(err)
	}
	for i := range cal.ActScales {
		cal.ActScales[i] *= factor
	}
	out, err := json.MarshalIndent(&cal, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestInt8BundleCorruptedCalibrationRefused: a bundle whose scales were
// corrupted after publish must fail the load-time gate recheck.
func TestInt8BundleCorruptedCalibrationRefused(t *testing.T) {
	dir := t.TempDir()
	publishInt8Bundle(t, dir, "wifi-q")
	bundleDir := filepath.Join(dir, "wifi-q")
	corruptCalibration(t, bundleDir, 1e6)

	_, err := LoadBundle(bundleDir)
	if err == nil {
		t.Fatal("corrupted calibration loaded without error")
	}
	if !strings.Contains(err.Error(), "gate") {
		t.Fatalf("want accuracy-gate error, got: %v", err)
	}

	// Structurally invalid scales are refused before any evaluation.
	corruptCalibration(t, bundleDir, -1)
	if _, err := LoadBundle(bundleDir); err == nil {
		t.Fatal("negative scales loaded without error")
	}
}

// TestRegistryStampCoversCalibration pins the stamp fix: a change to a
// payload file other than manifest/weights (here the calibration
// artifact) must register as a bundle change — both for hot reload and
// for retrying a bundle out of failed-load backoff.
func TestRegistryStampCoversCalibration(t *testing.T) {
	dir := t.TempDir()
	publishInt8Bundle(t, dir, "wifi-q")
	bundleDir := filepath.Join(dir, "wifi-q")
	goodCal, err := os.ReadFile(filepath.Join(bundleDir, "calibration.json"))
	if err != nil {
		t.Fatal(err)
	}
	// Republishes here pin the pre-lifecycle direct-swap path.
	writeImmediateLifecycle(t, bundleDir)

	reg := NewRegistry(dir, t.Logf)
	if _, _, err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	m, ok := reg.Get("wifi-q")
	if !ok || m.Generation != 1 {
		t.Fatalf("initial load: ok=%v gen=%d", ok, m.Generation)
	}

	// Corrupt ONLY the calibration file: the stamp must change, the
	// reload must notice, and the broken generation must be refused
	// (previous generation keeps serving).
	corruptCalibration(t, bundleDir, 1e6)
	if _, _, err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	if m, _ := reg.Get("wifi-q"); m.Generation != 1 {
		t.Fatalf("corrupted bundle replaced the serving generation (gen=%d)", m.Generation)
	}
	if failed := reg.FailedBundles(); len(failed) != 1 || failed[0] != "wifi-q" {
		t.Fatalf("FailedBundles = %v, want [wifi-q]", failed)
	}

	// Fix ONLY the calibration file: the new stamp must clear the
	// failed-load backoff and load generation 2.
	if err := os.WriteFile(filepath.Join(bundleDir, "calibration.json"), goodCal, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	m, _ = reg.Get("wifi-q")
	if m.Generation != 2 || m.WiFi.Precision() != core.PrecisionInt8 {
		t.Fatalf("after fix: gen=%d precision=%q, want gen=2 int8", m.Generation, m.WiFi.Precision())
	}
	if failed := reg.FailedBundles(); len(failed) != 0 {
		t.Fatalf("FailedBundles = %v after recovery", failed)
	}
}

// TestReloadPrecisionFlipUnderTraffic hot-swaps a bundle from fp64 to
// int8 while concurrent localize traffic runs against it. Under -race
// this is the torn-read check for the registry swap and the model's
// quantized-path dispatch; in any mode every response must stay valid
// across the generation flip.
func TestReloadPrecisionFlipUnderTraffic(t *testing.T) {
	dir := t.TempDir()
	dcfg, cfg := int8Spec()
	ds := dataset.SynthIPIN(dcfg)
	model := core.TrainWiFi(ds, cfg)
	spec := &WiFiBundle{Plan: "ipin", Dataset: dcfg, Config: cfg}
	if err := WriteBundle(dir, "flip", Manifest{Kind: KindWiFi, WiFi: spec},
		func(f *os.File) error { return model.Save(f) }); err != nil {
		t.Fatal(err)
	}
	// The mid-traffic republish below pins the direct-swap path; the
	// shadow pipeline has its own tests.
	writeImmediateLifecycle(t, filepath.Join(dir, "flip"))

	reg := NewRegistry(dir, t.Logf)
	if _, _, err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Registry: reg, BatchWindow: 500 * time.Microsecond, MaxBatch: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, err := json.Marshal(LocalizeRequest{
		Model:        "flip",
		Fingerprints: [][]float64{ds.Test[0].Features, ds.Test[1].Features},
	})
	if err != nil {
		t.Fatal(err)
	}

	var (
		stop     atomic.Bool
		requests atomic.Int64
		wg       sync.WaitGroup
	)
	fail := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				resp, err := ts.Client().Post(ts.URL+"/v1/localize", "application/json", strings.NewReader(string(body)))
				if err != nil {
					select {
					case fail <- err.Error():
					default:
					}
					return
				}
				var out LocalizeResponse
				derr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if derr != nil || resp.StatusCode != 200 || len(out.Results) != 2 {
					select {
					case fail <- "bad response during flip":
					default:
					}
					return
				}
				requests.Add(1)
			}
		}()
	}

	// Mid-traffic: quantize a fresh copy of the same weights and
	// republish the bundle as int8, then hot-reload.
	qmodel, man, qds, err := loadWiFiBundle(filepath.Join(dir, "flip"))
	if err != nil {
		t.Fatal(err)
	}
	cal, err := QuantizeWiFiModel(qmodel, qds, QuantizeOptions{BudgetPct: MaxErrorBudgetPct})
	if err != nil {
		t.Fatal(err)
	}
	err = WriteBundle(dir, "flip", Manifest{
		Kind: KindWiFi, WiFi: man.WiFi,
		Precision: &PrecisionBlock{Mode: core.PrecisionInt8, ErrorBudgetPct: MaxErrorBudgetPct},
	}, func(f *os.File) error { return qmodel.Save(f) },
		CalibrationExtra("calibration.json", cal))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	m, _ := reg.Get("flip")
	if m.Generation != 2 || m.WiFi.Precision() != core.PrecisionInt8 {
		t.Fatalf("after flip: gen=%d precision=%q", m.Generation, m.WiFi.Precision())
	}

	// Let post-flip traffic run against the int8 generation.
	deadline := time.Now().Add(150 * time.Millisecond)
	for time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatalf("request failed during precision flip: %s", msg)
	default:
	}
	if requests.Load() == 0 {
		t.Fatal("no successful requests recorded")
	}
}
