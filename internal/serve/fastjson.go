package serve

import (
	"strconv"
	"unsafe"
)

// Hand-rolled JSON fast paths for the localize hot loop. At production
// request rates the reflection-driven encoding/json machinery costs more
// CPU than the batched forward pass itself (measured ~40% of server CPU
// at 7k req/s), so the exact request shape
// {"model":"...","fingerprints":[[...],...]} is parsed by a small
// scanner. Anything it does not recognize — escapes, unknown keys,
// unexpected nesting — makes it bail out and the caller falls back to
// encoding/json, keeping behavior identical for every valid request.

// parseLocalizeRequest attempts the fast parse of data into req,
// reporting whether it succeeded. On false the caller must re-parse with
// encoding/json (req may be partially filled).
func parseLocalizeRequest(data []byte, req *LocalizeRequest) bool {
	return parseLocalizeFields(data, req, nil)
}

// parseLocalizeRequestV2 is the /v2 fast parse: the /v1 shape plus the
// optional integer "deadline_ms" key.
func parseLocalizeRequestV2(data []byte, req *localizeRequestV2) bool {
	return parseLocalizeFields(data, &req.LocalizeRequest, &req.DeadlineMs)
}

// parseLocalizeFields is the shared scanner loop. deadlineMs non-nil
// additionally accepts the /v2 "deadline_ms" key (integer values only —
// anything else bails to the encoding/json fallback, which rejects it).
func parseLocalizeFields(data []byte, req *LocalizeRequest, deadlineMs *int64) bool {
	p := &scanner{buf: data}
	if !p.expect('{') {
		return false
	}
	for {
		key, ok := p.simpleString()
		if !ok || !p.expect(':') {
			return false
		}
		switch key {
		case "model":
			if req.Model, ok = p.simpleString(); !ok {
				return false
			}
		case "deadline_ms":
			if deadlineMs == nil {
				return false
			}
			v, ok := p.integer()
			if !ok {
				return false
			}
			*deadlineMs = v // duplicate keys are last-wins, like encoding/json
		case "fingerprints":
			req.Fingerprints = nil // duplicate keys are last-wins, like encoding/json
			if !p.expect('[') {
				return false
			}
			if p.peek() == ']' {
				p.pos++
			} else {
				for {
					fp, ok := p.floatArray()
					if !ok {
						return false
					}
					req.Fingerprints = append(req.Fingerprints, fp)
					if p.peek() == ',' {
						p.pos++
						continue
					}
					break
				}
				if !p.expect(']') {
					return false
				}
			}
		default:
			return false // unknown key: let encoding/json decide
		}
		if p.peek() == ',' {
			p.pos++
			continue
		}
		break
	}
	if !p.expect('}') {
		return false
	}
	p.skipSpace()
	return p.pos == len(p.buf)
}

// appendLocalizeResponse renders the /v1 resp without reflection. The
// output is identical in structure to encoding/json's (shortest
// round-trip float formatting).
func appendLocalizeResponse(b []byte, resp *LocalizeResponse) []byte {
	b = append(b, `{"model":`...)
	b = strconv.AppendQuote(b, resp.Model)
	return appendLocalizeResults(b, resp.Results)
}

// appendLocalizeResponseV2 renders the /v2 response: the /v1 body with
// the request_id field first, byte-identical to encoding/json of
// localizeResponseV2.
func appendLocalizeResponseV2(b []byte, reqID string, resp *LocalizeResponse) []byte {
	b = append(b, `{"request_id":`...)
	b = strconv.AppendQuote(b, reqID)
	b = append(b, `,"model":`...)
	b = strconv.AppendQuote(b, resp.Model)
	return appendLocalizeResults(b, resp.Results)
}

// appendLocalizeResults renders the shared `,"results":[...]}` tail.
func appendLocalizeResults(b []byte, results []Position) []byte {
	b = append(b, `,"results":[`...)
	for i := range results {
		r := &results[i]
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"x":`...)
		b = appendJSONFloat(b, r.X)
		b = append(b, `,"y":`...)
		b = appendJSONFloat(b, r.Y)
		b = append(b, `,"class":`...)
		b = strconv.AppendInt(b, int64(r.Class), 10)
		b = append(b, `,"building":`...)
		b = strconv.AppendInt(b, int64(r.Building), 10)
		b = append(b, `,"floor":`...)
		b = strconv.AppendInt(b, int64(r.Floor), 10)
		b = append(b, '}')
	}
	b = append(b, ']', '}', '\n')
	return b
}

// appendJSONFloat formats a float as a JSON number (shortest form that
// round-trips, like encoding/json for the values produced here).
func appendJSONFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// scanner is a minimal JSON tokenizer over a byte slice.
type scanner struct {
	buf []byte
	pos int
}

func (p *scanner) skipSpace() {
	for p.pos < len(p.buf) {
		switch p.buf[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// peek returns the next non-space byte without consuming it (0 at EOF).
func (p *scanner) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.buf) {
		return 0
	}
	return p.buf[p.pos]
}

// expect consumes c, reporting whether it was next.
func (p *scanner) expect(c byte) bool {
	if p.peek() != c {
		return false
	}
	p.pos++
	return true
}

// simpleString parses a quoted string without escape sequences (any
// backslash bails out to the slow path).
func (p *scanner) simpleString() (string, bool) {
	if !p.expect('"') {
		return "", false
	}
	start := p.pos
	for p.pos < len(p.buf) {
		switch p.buf[p.pos] {
		case '\\':
			return "", false
		case '"':
			s := string(p.buf[start:p.pos])
			p.pos++
			return s, true
		default:
			p.pos++
		}
	}
	return "", false
}

// floatArray parses a [n, n, ...] array of JSON numbers.
func (p *scanner) floatArray() ([]float64, bool) {
	if !p.expect('[') {
		return nil, false
	}
	out := make([]float64, 0, 64)
	if p.peek() == ']' {
		p.pos++
		return out, true
	}
	for {
		v, ok := p.number()
		if !ok {
			return nil, false
		}
		out = append(out, v)
		if p.peek() == ',' {
			p.pos++
			continue
		}
		break
	}
	if !p.expect(']') {
		return nil, false
	}
	return out, true
}

// number parses one JSON number token. The grammar check matters:
// strconv.ParseFloat accepts forms JSON forbids (leading '+', bare '.5',
// '1.', leading zeros), and accepting them here would make validation
// depend on which parser a request happened to hit — so anything outside
// the RFC 8259 grammar bails to the encoding/json fallback, which
// rejects it.
func (p *scanner) number() (float64, bool) {
	p.skipSpace()
	start := p.pos
	if !p.jsonNumber() {
		return 0, false
	}
	// Zero-copy view of the number token: ParseFloat does not retain its
	// argument, and p.buf is not mutated, so the unsafe.String is sound.
	// This avoids one small allocation per number — hundreds per
	// fingerprint — which at serving rates is real GC pressure.
	tok := unsafe.String(&p.buf[start], p.pos-start)
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// integer parses one JSON number token that is syntactically an
// integer — no fraction or exponent. The syntax check matters:
// encoding/json rejects 1500.0 and 1e3 when decoding into int64, and
// accepting them here would make validation depend on which parser a
// request happened to hit — so anything non-integer bails to the
// fallback, which rejects it.
func (p *scanner) integer() (int64, bool) {
	p.skipSpace()
	start := p.pos
	if !p.jsonNumber() {
		return 0, false
	}
	tok := p.buf[start:p.pos]
	for _, c := range tok {
		if c == '.' || c == 'e' || c == 'E' {
			return 0, false
		}
	}
	v, err := strconv.ParseInt(string(tok), 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// jsonNumber consumes one number matching the RFC 8259 grammar:
// -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
func (p *scanner) jsonNumber() bool {
	digits := func() int {
		n := 0
		for p.pos < len(p.buf) && p.buf[p.pos] >= '0' && p.buf[p.pos] <= '9' {
			p.pos++
			n++
		}
		return n
	}
	if p.pos < len(p.buf) && p.buf[p.pos] == '-' {
		p.pos++
	}
	switch {
	case p.pos >= len(p.buf):
		return false
	case p.buf[p.pos] == '0':
		p.pos++ // a leading zero must stand alone
	case p.buf[p.pos] >= '1' && p.buf[p.pos] <= '9':
		digits()
	default:
		return false
	}
	if p.pos < len(p.buf) && p.buf[p.pos] == '.' {
		p.pos++
		if digits() == 0 {
			return false
		}
	}
	if p.pos < len(p.buf) && (p.buf[p.pos] == 'e' || p.buf[p.pos] == 'E') {
		p.pos++
		if p.pos < len(p.buf) && (p.buf[p.pos] == '+' || p.buf[p.pos] == '-') {
			p.pos++
		}
		if digits() == 0 {
			return false
		}
	}
	return true
}
