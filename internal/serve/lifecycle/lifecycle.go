// Package lifecycle is the promotion controller for staged model
// generations: the policy half of the deployment pipeline whose
// mechanism lives in the serve registry.
//
// The registry owns the stage machine (shadow → canary → active →
// retired) and the single Transition entry point; this package decides
// WHEN to call it. The controller periodically snapshots every
// deployment's live evaluation evidence — mirrored-traffic divergence,
// re-anchor error scores, per-row pass latency — and compares each
// staged generation against the generation currently serving:
//
//   - a shadow that has mirrored enough traffic advances to canary
//     (sample count is the only gate; shadow exists to accumulate
//     evidence, not to be judged on it),
//   - a canary whose live error or pass-latency p99 regresses beyond
//     the bundle's declared policy is rolled back immediately,
//   - a canary that completes its evaluation window inside the policy
//     bounds is promoted to active via the registry's atomic swap.
//
// Every decision is applied through Registry.Transition, so the
// registry's OnTransition hook journals it as a WAL lifecycle event and
// the stage survives crash recovery. The controller holds no state of
// its own beyond the tick loop: restarting it mid-window is always
// safe, because the evidence lives with the generation.
package lifecycle

import (
	"context"
	"fmt"
	"log"
	"time"

	"noble/internal/serve"
)

// Action is a controller decision for one staged generation.
type Action string

const (
	// ActionHold leaves the generation where it is (window not complete,
	// or its target stage caps further promotion).
	ActionHold Action = "hold"
	// ActionAdvance moves a shadow with a complete sample window to
	// canary.
	ActionAdvance Action = "advance"
	// ActionPromote swaps a passing canary to active.
	ActionPromote Action = "promote"
	// ActionRollback retires a canary whose live error or latency
	// regressed beyond policy.
	ActionRollback Action = "rollback"
)

// Verdict is one evaluated deployment: what the comparator concluded
// and the evidence it weighed.
type Verdict struct {
	Model    string
	BundleID string
	Stage    serve.Stage
	Action   Action
	Reason   string

	// Evidence behind the decision (meaningful for canaries).
	Samples      int64
	ErrorDeltaM  float64
	LatencyDelta float64 // p99 pass latency delta, ms
}

// minRollbackEvidence bounds how early a canary may be rolled back: a
// regression verdict needs at least a quarter of the canary window (and
// never fewer than one sample), so a single unlucky mirror pass cannot
// kill a healthy candidate.
func minRollbackEvidence(p serve.LifecyclePolicy) int64 {
	if n := p.MinCanaryRequests / 4; n > 1 {
		return n
	}
	return 1
}

// errorDelta measures how much worse the staged generation's live error
// is than the active's, in meters. Re-anchor scores are the primary
// signal — both generations are scored against the same WiFi fixes —
// and mirror divergence is the fallback when no fixes have flowed
// (divergence measures distance from the active's own predictions, so
// the active's reference value is identically zero).
func errorDelta(active, staged serve.GenStatsSnapshot) (float64, bool) {
	if staged.Scores > 0 && active.Scores > 0 {
		return staged.MeanErrorM - active.MeanErrorM, true
	}
	if staged.DivergenceN > 0 {
		return staged.MeanDivergenceM, true
	}
	return 0, false
}

// latencyDelta measures the staged generation's per-row pass-latency
// p99 regression versus the active, in milliseconds.
func latencyDelta(active, staged serve.GenStatsSnapshot) (float64, bool) {
	if staged.P99PassMS <= 0 {
		return 0, false
	}
	return staged.P99PassMS - active.P99PassMS, true
}

// Evaluate runs the comparator over one deployment snapshot and returns
// the verdict for its staged generation (nil when nothing is staged).
// Pure: it never touches the registry, which makes policy decisions
// unit-testable from synthetic snapshots.
func Evaluate(d serve.DeploymentStatus) *Verdict {
	st := d.Staged
	if st == nil {
		return nil
	}
	v := &Verdict{
		Model:    d.Name,
		BundleID: st.BundleID,
		Stage:    st.Stage,
		Action:   ActionHold,
		Samples:  st.Stats.Samples(),
	}
	switch st.Stage {
	case serve.StageShadow:
		if v.Samples < st.Policy.MinShadowRequests {
			v.Reason = fmt.Sprintf("shadow window %d/%d samples", v.Samples, st.Policy.MinShadowRequests)
			return v
		}
		if st.Target == serve.StageShadow {
			v.Reason = "shadow window complete; held at target stage shadow"
			return v
		}
		v.Action = ActionAdvance
		v.Reason = fmt.Sprintf("shadow window complete (%d samples)", v.Samples)
		return v

	case serve.StageCanary:
		var active serve.GenStatsSnapshot
		if d.Active != nil {
			active = d.Active.Stats
		}
		errD, haveErr := errorDelta(active, st.Stats)
		latD, haveLat := latencyDelta(active, st.Stats)
		v.ErrorDeltaM, v.LatencyDelta = errD, latD

		if v.Samples >= minRollbackEvidence(st.Policy) {
			if haveErr && errD > st.Policy.MaxErrorDeltaM {
				v.Action = ActionRollback
				v.Reason = fmt.Sprintf("live error regressed: delta %.3fm exceeds policy max %.3fm over %d samples",
					errD, st.Policy.MaxErrorDeltaM, v.Samples)
				return v
			}
			if haveLat && latD > st.Policy.MaxP99DeltaMS {
				v.Action = ActionRollback
				v.Reason = fmt.Sprintf("pass latency regressed: p99 delta %.3fms exceeds policy max %.3fms",
					latD, st.Policy.MaxP99DeltaMS)
				return v
			}
		}
		if v.Samples < st.Policy.MinCanaryRequests {
			v.Reason = fmt.Sprintf("canary window %d/%d samples", v.Samples, st.Policy.MinCanaryRequests)
			return v
		}
		if st.Target != serve.StageActive {
			v.Reason = "canary window complete; held at target stage canary"
			return v
		}
		v.Action = ActionPromote
		v.Reason = fmt.Sprintf("canary window complete inside policy (error delta %.3fm ≤ %.3fm, p99 delta %.3fms ≤ %.3fms, %d samples)",
			errD, st.Policy.MaxErrorDeltaM, latD, st.Policy.MaxP99DeltaMS, v.Samples)
		return v
	}
	v.Reason = "no staged evaluation for stage " + string(st.Stage)
	return v
}

// Controller drives the policy loop against a registry.
type Controller struct {
	Registry *serve.Registry
	// Interval between evaluation ticks; Run defaults it to 5s.
	Interval time.Duration
	// Logf defaults to log.Printf.
	Logf func(format string, args ...any)
}

func (c *Controller) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// Tick evaluates every deployment once and applies the resulting
// transitions. Returns the non-hold verdicts it acted on. A transition
// that fails (e.g. a concurrent Reload superseded the staged
// generation between snapshot and apply) is logged and skipped — the
// registry's Transition re-validates legality under its own lock, so
// the snapshot being stale is never unsafe, only wasted work.
func (c *Controller) Tick() []Verdict {
	var acted []Verdict
	for _, d := range c.Registry.Deployments() {
		v := Evaluate(d)
		if v == nil || v.Action == ActionHold {
			continue
		}
		var err error
		switch v.Action {
		case ActionAdvance:
			err = c.Registry.Transition(v.Model, serve.StageCanary, v.Reason)
		case ActionPromote:
			err = c.Registry.Transition(v.Model, serve.StageActive, v.Reason)
		case ActionRollback:
			err = c.Registry.Transition(v.Model, serve.StageRetired, v.Reason)
		}
		if err != nil {
			c.logf("lifecycle: %s %s skipped: %v", v.Action, v.Model, err)
			continue
		}
		acted = append(acted, *v)
	}
	return acted
}

// Run ticks until ctx is canceled.
func (c *Controller) Run(ctx context.Context) {
	interval := c.Interval
	if interval <= 0 {
		interval = 5 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.Tick()
		}
	}
}
