package lifecycle

import (
	"testing"

	"noble/internal/serve"
)

// Synthetic-snapshot tests for the pure comparator: every verdict the
// controller can reach, from hand-built deployment snapshots.

func policy() serve.LifecyclePolicy {
	return serve.LifecyclePolicy{
		MinShadowRequests: 100,
		MinCanaryRequests: 200,
		MaxErrorDeltaM:    1.0,
		MaxP99DeltaMS:     5.0,
	}
}

// dep builds a deployment snapshot: an active with baseline stats and a
// staged generation at the given stage/target with the given stats.
func dep(stage, target serve.Stage, staged serve.GenStatsSnapshot, active serve.GenStatsSnapshot) serve.DeploymentStatus {
	return serve.DeploymentStatus{
		Name:   "m",
		Active: &serve.GenStatus{Name: "m", Generation: 1, Stage: serve.StageActive, Stats: active},
		Staged: &serve.GenStatus{
			Name: "m", Generation: 2, BundleID: "beef02",
			Stage: stage, Target: target, Policy: policy(), Stats: staged,
		},
	}
}

// scored builds stats with n re-anchor scores at the given mean error
// and a pass-latency p99.
func scored(n int64, meanErr, p99 float64) serve.GenStatsSnapshot {
	return serve.GenStatsSnapshot{
		Scores: n, ErrorSumM: meanErr * float64(n), MeanErrorM: meanErr, P99PassMS: p99,
	}
}

func TestEvaluateNothingStaged(t *testing.T) {
	d := serve.DeploymentStatus{Name: "m", Active: &serve.GenStatus{Name: "m"}}
	if v := Evaluate(d); v != nil {
		t.Fatalf("verdict for a staged-less deployment: %+v", v)
	}
}

func TestEvaluateShadowHoldsUntilWindow(t *testing.T) {
	d := dep(serve.StageShadow, serve.StageActive,
		serve.GenStatsSnapshot{Mirrored: 99}, scored(500, 2.0, 1.0))
	v := Evaluate(d)
	if v.Action != ActionHold || v.Samples != 99 {
		t.Fatalf("verdict %+v, want hold at 99/100 samples", v)
	}
}

func TestEvaluateShadowAdvancesOnCount(t *testing.T) {
	// Shadow advancement is count-only: terrible divergence must not
	// block it — judgment happens at canary.
	d := dep(serve.StageShadow, serve.StageActive,
		serve.GenStatsSnapshot{Mirrored: 60, Scores: 40, DivergenceN: 60, MeanDivergenceM: 50},
		scored(500, 2.0, 1.0))
	v := Evaluate(d)
	if v.Action != ActionAdvance {
		t.Fatalf("verdict %+v, want advance at 100 samples", v)
	}
}

func TestEvaluateShadowHeldAtTargetStage(t *testing.T) {
	d := dep(serve.StageShadow, serve.StageShadow,
		serve.GenStatsSnapshot{Mirrored: 500}, scored(500, 2.0, 1.0))
	if v := Evaluate(d); v.Action != ActionHold {
		t.Fatalf("verdict %+v, want hold: lifecycle.json pinned target shadow", v)
	}
}

func TestEvaluateCanaryPromotes(t *testing.T) {
	// 0.5 m worse and 2 ms slower: inside the 1 m / 5 ms policy.
	d := dep(serve.StageCanary, serve.StageActive, scored(200, 2.5, 3.0), scored(500, 2.0, 1.0))
	v := Evaluate(d)
	if v.Action != ActionPromote {
		t.Fatalf("verdict %+v, want promote", v)
	}
	if v.ErrorDeltaM != 0.5 || v.LatencyDelta != 2.0 {
		t.Fatalf("evidence deltas %+v, want error 0.5 latency 2.0", v)
	}
}

func TestEvaluateCanaryHoldsInsideWindow(t *testing.T) {
	d := dep(serve.StageCanary, serve.StageActive, scored(199, 2.0, 1.0), scored(500, 2.0, 1.0))
	if v := Evaluate(d); v.Action != ActionHold {
		t.Fatalf("verdict %+v, want hold at 199/200 samples", v)
	}
}

func TestEvaluateCanaryRollsBackOnError(t *testing.T) {
	// Error regression past policy trips rollback as soon as the
	// evidence floor (window/4 = 50) is met — well before the full
	// window.
	d := dep(serve.StageCanary, serve.StageActive, scored(50, 3.5, 1.0), scored(500, 2.0, 1.0))
	v := Evaluate(d)
	if v.Action != ActionRollback {
		t.Fatalf("verdict %+v, want rollback at +1.5m error delta", v)
	}
}

func TestEvaluateCanaryRollsBackOnLatency(t *testing.T) {
	d := dep(serve.StageCanary, serve.StageActive, scored(50, 2.0, 7.5), scored(500, 2.0, 1.0))
	v := Evaluate(d)
	if v.Action != ActionRollback {
		t.Fatalf("verdict %+v, want rollback at +6.5ms p99 delta", v)
	}
}

func TestEvaluateCanaryRegressionNeedsEvidence(t *testing.T) {
	// Same regression, below the window/4 evidence floor: one unlucky
	// pass must not kill the candidate.
	d := dep(serve.StageCanary, serve.StageActive, scored(49, 3.5, 7.5), scored(500, 2.0, 1.0))
	if v := Evaluate(d); v.Action != ActionHold {
		t.Fatalf("verdict %+v, want hold below the rollback evidence floor", v)
	}
}

func TestEvaluateDivergenceFallback(t *testing.T) {
	// A WiFi deployment: the active never scores against fixes (the fix
	// IS its prediction), so the comparator must judge the staged
	// generation on mirror divergence alone.
	staged := serve.GenStatsSnapshot{Mirrored: 200, DivergenceN: 200, MeanDivergenceM: 2.5, P99PassMS: 1.0}
	d := dep(serve.StageCanary, serve.StageActive, staged, serve.GenStatsSnapshot{P99PassMS: 1.0})
	v := Evaluate(d)
	if v.Action != ActionRollback {
		t.Fatalf("verdict %+v, want rollback: 2.5m divergence vs 1m policy", v)
	}

	staged.MeanDivergenceM = 0.25
	d = dep(serve.StageCanary, serve.StageActive, staged, serve.GenStatsSnapshot{P99PassMS: 1.0})
	if v := Evaluate(d); v.Action != ActionPromote {
		t.Fatalf("verdict %+v, want promote on in-policy divergence", v)
	}
}

func TestEvaluateCanaryHeldAtTargetStage(t *testing.T) {
	d := dep(serve.StageCanary, serve.StageCanary, scored(500, 2.0, 1.0), scored(500, 2.0, 1.0))
	if v := Evaluate(d); v.Action != ActionHold {
		t.Fatalf("verdict %+v, want hold: lifecycle.json pinned target canary", v)
	}
}
