package serve

import (
	"context"
	"fmt"
	"time"

	"noble/internal/core"
	"noble/internal/geo"
	"noble/internal/obs"
	"noble/internal/serve/session"
	"noble/internal/store"
)

// This file is the Engine's durability glue: it maps session mutations
// onto journal events (under the session lock, so one session's records
// are in mutation order), restores sessions from a recovered journal
// before the listener opens, and drives periodic compaction so recovery
// cost tracks the live-session count.
//
// Journaling is strictly off the inference path: localize and stateless
// track requests never touch the journal, and session appends only pay
// a buffered write (plus, under -fsync=always, one group-committed
// fsync per request). A journal append failure is logged and counted
// but never fails the request — the server keeps serving; durability
// degrades, silently losing nothing that /metrics does not show.

// Journal exposes the engine's durability journal (nil when off).
func (e *Engine) Journal() *store.Journal { return e.journal }

// journalAppend writes one event, absorbing (but counting) failures.
// The append is a buffered write (no fsync), but it still shows up as a
// span: a rotation-triggered fsync or a filesystem stall on this path
// is exactly the kind of tail latency the tracer exists to attribute.
func (e *Engine) journalAppend(ctx context.Context, ev *store.Event) {
	sp := obs.Begin(ctx, obs.StageJournalAppend)
	err := e.journal.Append(ev)
	sp.End()
	if err != nil {
		e.reg.logf("serve: journal append (%s %s): %v", ev.Type, ev.Session, err)
	}
}

// captureCreate builds a session's create record (reserving sequence
// number 1) without touching the journal. It runs inside the store's
// GetOrCreate init closure — pre-publication, so the field reads are
// exclusive and cheap — and the caller appends the record after the
// shard lock is released; sequence-ordered recovery makes the late file
// position harmless. Returns nil when journaling is off.
func (e *Engine) captureCreate(s *session.Session) *store.Event {
	if e.journal == nil {
		return nil
	}
	tr := s.Tracker
	origin := tr.Origin()
	return &store.Event{
		Type:    store.EvCreate,
		Session: s.ID,
		Gen:     s.CreatedAt.UnixNano(),
		Seq:     s.NextSeq(),
		Time:    time.Now().UnixNano(),
		Create: &store.CreateEvent{
			Model:  s.Model,
			StartX: origin.X,
			StartY: origin.Y,
			Window: tr.Window(),
			SegDim: tr.SegmentDim(),
		},
	}
}

// journalReAnchor records an absolute fix fused into the trajectory.
// The decoded position is authoritative (restore applies it without a
// WiFi model); the fingerprint rides along for provenance and replay.
// Caller holds the session lock.
func (e *Engine) journalReAnchor(ctx context.Context, s *session.Session, pos geo.Point, wifiModel string, fingerprint []float64) {
	if e.journal == nil {
		return
	}
	e.journalAppend(ctx, &store.Event{
		Type:    store.EvReAnchor,
		Session: s.ID,
		Gen:     s.CreatedAt.UnixNano(),
		Seq:     s.NextSeq(),
		Time:    time.Now().UnixNano(),
		ReAnchor: &store.ReAnchorEvent{
			X: pos.X, Y: pos.Y,
			WiFiModel:   wifiModel,
			Fingerprint: fingerprint,
		},
	})
}

// journalSteps records a batch of committed segments with their decoded
// predictions — replaying Commit(seg, pred) pairs restores the tracker
// without inference. Caller holds the session lock; feats is the flat
// committed prefix (len(preds) × segDim).
func (e *Engine) journalSteps(ctx context.Context, s *session.Session, segDim int, feats []float64, preds []core.IMUPrediction) {
	if e.journal == nil {
		return
	}
	recs := make([]store.PredRecord, len(preds))
	for i, p := range preds {
		recs[i] = store.PredRecord{
			EndX: p.End.X, EndY: p.End.Y,
			Class: int32(p.Class),
			DispX: p.Displacement.X, DispY: p.Displacement.Y,
		}
	}
	e.journalAppend(ctx, &store.Event{
		Type:    store.EvSteps,
		Session: s.ID,
		Gen:     s.CreatedAt.UnixNano(),
		Seq:     s.NextSeq(),
		Time:    time.Now().UnixNano(),
		Steps: &store.StepsEvent{
			SegDim:   segDim,
			Count:    len(preds),
			Features: feats,
			Preds:    recs,
		},
	})
}

// journalClose records a session's end (delete or eviction). Caller
// holds the session lock.
func (e *Engine) journalClose(ctx context.Context, s *session.Session, evicted bool) {
	if e.journal == nil {
		return
	}
	e.journalAppend(ctx, &store.Event{
		Type:    store.EvClose,
		Session: s.ID,
		Gen:     s.CreatedAt.UnixNano(),
		Seq:     s.NextSeq(),
		Time:    time.Now().UnixNano(),
		Close:   &store.CloseEvent{Evicted: evicted},
	})
}

// journalCommit marks a request boundary (group-committed fsync under
// -fsync=always). The journal_fsync span is the durability tax a
// request actually paid — near zero when it group-committed behind a
// neighbor's sync, a full fsync when it led one.
func (e *Engine) journalCommit(ctx context.Context, id string) {
	sp := obs.Begin(ctx, obs.StageJournalFsync)
	err := e.journal.Commit(id)
	sp.End()
	if err != nil {
		e.reg.logf("serve: journal commit (%s): %v", id, err)
	}
}

// journalLifecycle records one stage transition as a WAL lifecycle
// event — the registry's OnTransition hook when persistence is on. The
// event is keyed by model (store.LifecycleKey), not by session, so one
// model's transitions share a shard and recover in append order; the
// engine-wide sequence breaks ties among same-nanosecond events.
func (e *Engine) journalLifecycle(ev TransitionEvent) {
	if e.journal == nil {
		return
	}
	//vet:ignore journalock -- lifecycle events are keyed by model under the reserved lifecycle namespace, not by session: there is no session (or session lock) involved, and the registry serializes transition delivery
	e.journalAppend(context.Background(), &store.Event{
		Type:    store.EvLifecycle,
		Session: store.LifecycleKey(ev.Model),
		Seq:     e.lcSeq.Add(1),
		Time:    ev.Time.UnixNano(),
		Lifecycle: &store.LifecycleEvent{
			Model:    ev.Model,
			BundleID: ev.BundleID,
			From:     string(ev.From),
			To:       string(ev.To),
			Reason:   ev.Reason,
		},
	})
}

// RecoveredStages reduces a recovery's lifecycle events to the latest
// stage per (model, bundle) — keyed as Registry.SetRecoveredStages
// expects — so the first Reload after a restart re-places each bundle
// at the stage it held at the crash. Later events win by (Time, Seq);
// Seq alone cannot order events because it restarts at 1 each boot.
func RecoveredStages(rec *store.Recovery) map[string]Stage {
	type order struct{ t, seq int64 }
	latest := make(map[string]order)
	out := make(map[string]Stage)
	for _, ev := range rec.Lifecycle {
		l := ev.Lifecycle
		k := recoveredKey(l.Model, l.BundleID)
		o := order{ev.Time, ev.Seq}
		if prev, ok := latest[k]; ok && (prev.t > o.t || (prev.t == o.t && prev.seq > o.seq)) {
			continue
		}
		latest[k] = o
		out[k] = Stage(l.To)
	}
	return out
}

// lifecycleCarryEvents builds one current-stage lifecycle event per
// disk-backed live generation — plus one retired event per rolled-back
// bundle whose bytes are still on disk — for compaction carry-forward.
// Without this, compaction would prune the segments holding the stage
// history, and a post-compaction restart would re-place a rolled-back
// bundle in shadow (resurrecting it) or restart a canary's evaluation
// from scratch.
func (e *Engine) lifecycleCarryEvents() []*store.Event {
	now := time.Now().UnixNano()
	var evs []*store.Event
	add := func(model, bundleID string, stage Stage) {
		if bundleID == "" {
			return // programmatic generation; nothing on disk to recover
		}
		evs = append(evs, &store.Event{
			Type:    store.EvLifecycle,
			Session: store.LifecycleKey(model),
			Seq:     e.lcSeq.Add(1),
			Time:    now,
			Lifecycle: &store.LifecycleEvent{
				Model:    model,
				BundleID: bundleID,
				From:     string(stage),
				To:       string(stage),
				Reason:   "compaction carry-forward",
			},
		})
	}
	for _, d := range e.reg.Deployments() {
		if d.Active != nil {
			add(d.Name, d.Active.BundleID, d.Active.Stage)
		}
		if d.Staged != nil {
			add(d.Name, d.Staged.BundleID, d.Staged.Stage)
		}
	}
	for name, id := range e.reg.RetiredDisk() {
		add(name, id, StageRetired)
	}
	return evs
}

// RestoreSummary reports a startup restore.
type RestoreSummary struct {
	Restored int
	Skipped  int // model missing/mismatched or history damaged
	Closed   int // sessions that ended before the crash (not restored)
	Torn     int64
}

// RestoreSessions folds a recovered journal into the session store:
// every live history becomes a session with bit-identical tracker state
// (snapshot base, then Commit/ReAnchor replay of the post-snapshot
// events — no inference runs). Call once after NewEngine, before the
// listener opens and before any sweeper starts. Sessions whose model is
// gone or whose history is damaged are skipped and counted, not fatal:
// a model swap must not take restart-recovery down with it.
func (e *Engine) RestoreSessions(rec *store.Recovery) RestoreSummary {
	sum := RestoreSummary{Torn: rec.Stats.TornRecords + rec.Stats.BadRecords}
	sum.Closed = rec.Stats.Closed
	sum.Skipped = rec.Stats.Damaged
	for _, h := range rec.Live() {
		sess, err := e.restoreSession(h)
		if err != nil {
			e.reg.logf("serve: retaining session %q in the journal without restoring it: %v", h.ID, err)
			sum.Skipped++
			// Keep the history alive on disk: compaction re-records it
			// (see CompactJournal) instead of pruning it away, so a later
			// restart — e.g. after the missing model bundle is republished
			// — can still restore it, and replay still sees it.
			e.retained = append(e.retained, h)
			continue
		}
		e.sessions.GetOrCreate(h.ID, func() (*session.Session, error) { return sess, nil })
		sum.Restored++
	}
	if e.journal != nil {
		e.journal.NoteRecovered(sum.Restored, sum.Skipped)
	}
	return sum
}

// restoreSession rebuilds one session from its history.
func (e *Engine) restoreSession(h *store.SessionHistory) (*session.Session, error) {
	modelName := ""
	if h.Snapshot != nil {
		modelName = h.Snapshot.Model
	} else if len(h.Events) > 0 && h.Events[0].Type == store.EvCreate {
		modelName = h.Events[0].Create.Model
	}
	if modelName == "" {
		return nil, fmt.Errorf("history has no model binding")
	}
	m, ok := e.reg.Get(modelName)
	if !ok || m.IMU == nil {
		return nil, fmt.Errorf("model %q not registered (or not an IMU model)", modelName)
	}

	var (
		tr        *core.PathTracker
		err       error
		createdAt = time.Unix(0, h.Gen)
		steps     int64
		reanchors int64
	)
	if snap := h.Snapshot; snap != nil {
		tr, err = m.IMU.RestoreTracker(trackerStateFromSnapshot(&snap.Tracker))
		if err != nil {
			return nil, err
		}
		steps, reanchors = snap.Steps, snap.ReAnchors
	}
	for _, ev := range h.Events {
		switch ev.Type {
		case store.EvCreate:
			if tr != nil {
				return nil, fmt.Errorf("create event on an already-seeded tracker")
			}
			c := ev.Create
			if c.SegDim != m.IMU.SegmentDim() {
				return nil, fmt.Errorf("recorded segment_dim %d, model %q now wants %d", c.SegDim, modelName, m.IMU.SegmentDim())
			}
			tr = m.IMU.NewPathTracker(geo.Point{X: c.StartX, Y: c.StartY}, c.Window)
		case store.EvSteps:
			s := ev.Steps
			if tr == nil {
				return nil, fmt.Errorf("steps before create")
			}
			if s.SegDim != tr.SegmentDim() {
				return nil, fmt.Errorf("recorded segment_dim %d, tracker wants %d", s.SegDim, tr.SegmentDim())
			}
			for i := 0; i < s.Count; i++ {
				tr.Commit(s.Features[i*s.SegDim:(i+1)*s.SegDim], core.IMUPrediction{
					End:          geo.Point{X: s.Preds[i].EndX, Y: s.Preds[i].EndY},
					Class:        int(s.Preds[i].Class),
					Displacement: geo.Point{X: s.Preds[i].DispX, Y: s.Preds[i].DispY},
				})
			}
			steps += int64(s.Count)
		case store.EvReAnchor:
			if tr == nil {
				return nil, fmt.Errorf("reanchor before create")
			}
			tr.ReAnchor(geo.Point{X: ev.ReAnchor.X, Y: ev.ReAnchor.Y})
			reanchors++
		default:
			return nil, fmt.Errorf("unexpected %s event in a live history", ev.Type)
		}
	}
	if tr == nil {
		return nil, fmt.Errorf("history has no snapshot and no create event")
	}
	lastUsed := createdAt
	if h.LastTime > 0 {
		lastUsed = time.Unix(0, h.LastTime)
	}
	return session.Restore(h.ID, modelName, tr, createdAt, lastUsed, steps, reanchors, h.LastSeq), nil
}

// trackerStateFromSnapshot maps the journal's plain-data tracker
// snapshot onto the core type.
func trackerStateFromSnapshot(t *store.TrackerSnapshot) core.TrackerState {
	anchors := make([]geo.Point, len(t.Anchors)/2)
	for i := range anchors {
		anchors[i] = geo.Point{X: t.Anchors[2*i], Y: t.Anchors[2*i+1]}
	}
	return core.TrackerState{
		Window: t.Window,
		SegDim: t.SegDim,
		Origin: geo.Point{X: t.OriginX, Y: t.OriginY},
		Est: core.IMUPrediction{
			End:          geo.Point{X: t.Est.EndX, Y: t.Est.EndY},
			Class:        int(t.Est.Class),
			Displacement: geo.Point{X: t.Est.DispX, Y: t.Est.DispY},
		},
		Steps:    t.Steps,
		Segments: t.Segments,
		Anchors:  anchors,
	}
}

// snapshotSession captures one session's compacted state. Caller holds
// the session lock.
func snapshotSession(s *session.Session) store.SessionSnapshot {
	st := s.Tracker.State()
	anchors := make([]float64, 0, 2*len(st.Anchors))
	for _, a := range st.Anchors {
		anchors = append(anchors, a.X, a.Y)
	}
	return store.SessionSnapshot{
		ID:        s.ID,
		Model:     s.Model,
		Gen:       s.CreatedAt.UnixNano(),
		LastUsed:  s.LastUsed().UnixNano(),
		Seq:       s.Seq(),
		Steps:     s.Steps.Load(),
		ReAnchors: s.ReAnchors.Load(),
		Tracker: store.TrackerSnapshot{
			Window:  st.Window,
			SegDim:  st.SegDim,
			OriginX: st.Origin.X,
			OriginY: st.Origin.Y,
			Est: store.PredRecord{
				EndX: st.Est.End.X, EndY: st.Est.End.Y,
				Class: int32(st.Est.Class),
				DispX: st.Est.Displacement.X, DispY: st.Est.Displacement.Y,
			},
			Steps:    st.Steps,
			Segments: st.Segments,
			Anchors:  anchors,
		},
	}
}

// CompactJournal writes one round of compaction snapshots: per journal
// shard, the live sessions hashing there are snapshotted (briefly
// holding each session lock, never a store shard lock) and the WAL
// segments they supersede are pruned. Sessions that could not be
// restored at startup (model missing) are carried forward — their base
// snapshot rides into the new snapshot file and their event records are
// re-appended into the fresh segment — so compaction never erases a
// trajectory just because its model is temporarily gone.
func (e *Engine) CompactJournal() error {
	if e.journal == nil {
		return nil
	}
	return e.journal.Compact(func(shard int) []store.SessionSnapshot {
		var snaps []store.SessionSnapshot
		e.sessions.ForEach(func(s *session.Session) {
			if e.journal.ShardFor(s.ID) != shard {
				return
			}
			s.Lock()
			if !s.Gone() {
				snaps = append(snaps, snapshotSession(s))
			}
			s.Unlock()
		})
		for _, h := range e.retained {
			if e.journal.ShardFor(h.ID) != shard {
				continue
			}
			if h.Snapshot != nil {
				snaps = append(snaps, *h.Snapshot)
			}
			for i := range h.Events {
				// Duplicates across compaction rounds are harmless:
				// recovery deduplicates by (Gen, Seq).
				e.journalAppend(context.Background(), &h.Events[i])
			}
		}
		// Re-record lifecycle stage state the same way: these appends land
		// in the post-rotation segment, so they survive the prune that
		// takes the original stage events away.
		for _, ev := range e.lifecycleCarryEvents() {
			if e.journal.ShardFor(ev.Session) != shard {
				continue
			}
			e.journalAppend(context.Background(), ev)
		}
		return snaps
	})
}

// RunJournalCompaction compacts at the given interval until ctx is
// done. interval <= 0 disables compaction (the WAL still rotates by
// size; recovery replays every segment).
func (e *Engine) RunJournalCompaction(ctx context.Context, interval time.Duration) {
	if e.journal == nil || interval <= 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := e.CompactJournal(); err != nil {
				e.reg.logf("serve: journal compaction: %v", err)
			}
		}
	}
}
