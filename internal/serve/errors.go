package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
)

// Code is a machine-readable error code. Every error the Engine returns
// carries one; the /v2 wire protocol exposes it verbatim in the error
// envelope so clients can branch on the failure class instead of
// pattern-matching messages. /v1 keeps its original free-text error
// bodies — the code only picks the HTTP status there.
type Code string

const (
	// CodeBadRequest is a malformed or incomplete request (missing model
	// name, missing origin, wifi_model without a fingerprint, ...).
	CodeBadRequest Code = "bad_request"
	// CodeBadBody is an unparseable request body (invalid JSON, trailing
	// garbage, an NDJSON line that is not an object).
	CodeBadBody Code = "bad_body"
	// CodeBodyTooLarge is a request body over the per-request byte cap.
	CodeBodyTooLarge Code = "body_too_large"
	// CodeModelNotFound names a model the registry does not hold.
	CodeModelNotFound Code = "model_not_found"
	// CodeWrongModelKind names a model of the other kind (wifi vs imu).
	CodeWrongModelKind Code = "wrong_model_kind"
	// CodeBadFingerprint is a fingerprint payload the model cannot take:
	// empty, over the per-request row cap, or the wrong feature width.
	CodeBadFingerprint Code = "bad_fingerprint"
	// CodeBadPath is a track path payload the model cannot take.
	CodeBadPath Code = "bad_path"
	// CodeBadSegment is a session segment payload the model cannot take.
	CodeBadSegment Code = "bad_segment"
	// CodeSessionNotFound names a session that does not exist (or was
	// evicted mid-request).
	CodeSessionNotFound Code = "session_not_found"
	// CodeSessionConflict binds a session to a different model than it
	// was created with.
	CodeSessionConflict Code = "session_conflict"
	// CodeDeadlineExceeded means the per-request deadline expired before
	// the forward pass containing the request completed.
	CodeDeadlineExceeded Code = "deadline_exceeded"
	// CodeCanceled means the caller went away before the result was ready.
	CodeCanceled Code = "canceled"
	// CodeInference is a failed forward pass (model vanished mid-flight,
	// an inference panic, a mid-session step failure).
	CodeInference Code = "inference_failed"
	// CodeDraining rejects new work while the server shuts down.
	CodeDraining Code = "server_draining"
)

// Error is the Engine's error type: a machine-readable Code, the HTTP
// status a transport adapter should map it to, and a human-readable
// message. The /v1 adapters write Message as the legacy free-text error
// body; /v2 wraps Code+Message in the structured envelope.
type Error struct {
	Code    Code
	Status  int
	Message string
}

func (e *Error) Error() string { return e.Message }

// errf builds an *Error with a formatted message.
func errf(code Code, status int, format string, args ...any) *Error {
	return &Error{Code: code, Status: status, Message: fmt.Sprintf(format, args...)}
}

// AsError coerces any error into an *Error, mapping context
// cancellation/deadline to their codes and everything else to an
// internal inference failure.
func AsError(err error) *Error {
	var e *Error
	if errors.As(err, &e) {
		return e
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return &Error{Code: CodeDeadlineExceeded, Status: http.StatusGatewayTimeout, Message: "deadline exceeded before inference completed"}
	case errors.Is(err, context.Canceled):
		// 499 (client closed request, nginx's convention): the caller is
		// gone, the status is for metrics only.
		return &Error{Code: CodeCanceled, Status: 499, Message: "request canceled"}
	}
	return &Error{Code: CodeInference, Status: http.StatusInternalServerError, Message: err.Error()}
}
