package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyWindow is how many recent samples per endpoint back the quantile
// estimates. A power-of-two ring keeps Observe O(1); quantiles sort a copy
// at scrape time only.
const latencyWindow = 8192

// Metrics collects request counts per endpoint and status code, latency
// quantiles over a sliding window, and micro-batch occupancy per batcher
// kind (localize, track). All methods are safe for concurrent use.
type Metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointStats
	batches   map[string]*batchKindStats

	requestIDs atomic.Int64 // server-assigned request IDs handed out
}

// batchSizeBuckets are the upper bounds of the batch-size histogram:
// every forward pass lands in the first bucket whose bound is >= its row
// count, or the overflow bucket past the last bound. Powers of two match
// how occupancy actually clusters (1 = unbatched, MaxBatch = saturated).
var batchSizeBuckets = []int{1, 2, 4, 8, 16, 32, 64}

// batchKindStats is one batcher kind's coalescing counters.
type batchKindStats struct {
	count   int64 // forward passes
	rows    int64 // rows across all passes
	max     int64 // largest pass observed
	dropped int64 // rows dropped because their request was canceled while queued

	hist [numSizeBuckets]int64 // per batchSizeBuckets bound, +1 overflow
}

// numSizeBuckets = len(batchSizeBuckets) + 1 (the overflow slot); array
// sizes need a constant, so the pairing is asserted in TestMetrics.
const numSizeBuckets = 8

// sizeBucket maps a pass's row count onto its histogram slot.
func sizeBucket(size int) int {
	for i, le := range batchSizeBuckets {
		if size <= le {
			return i
		}
	}
	return len(batchSizeBuckets)
}

// BatchSnapshot is a point-in-time copy of one batcher kind's counters —
// the machine-readable view the benchmark rig (internal/benchrig) diffs
// around a measured pass. SizeCounts is indexed like BatchSizeBuckets,
// with one extra overflow slot for passes past the last bound.
type BatchSnapshot struct {
	Passes      int64
	Rows        int64
	MaxRows     int64
	DroppedRows int64
	SizeCounts  []int64
}

// BatchSizeBuckets returns the batch-size histogram's upper bounds
// (shared by every kind; the final overflow bucket is implicit).
func BatchSizeBuckets() []int {
	return append([]int(nil), batchSizeBuckets...)
}

type endpointStats struct {
	codes map[int]int64
	ring  []float64 // seconds
	n     int64     // total observations (ring index = n % len)
}

// NewMetrics returns an empty collector.
func NewMetrics() *Metrics {
	return &Metrics{
		endpoints: make(map[string]*endpointStats),
		batches:   make(map[string]*batchKindStats),
	}
}

// registerBatchKind pre-creates a kind's counters so its series appear
// in /metrics (at zero) before the first pass — scrapers can diff
// before/after without special-casing absent series.
func (m *Metrics) registerBatchKind(kind string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.batches[kind] == nil {
		m.batches[kind] = &batchKindStats{}
	}
}

// Observe records one finished request.
func (m *Metrics) Observe(endpoint string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.endpoints[endpoint]
	if s == nil {
		s = &endpointStats{codes: make(map[int]int64), ring: make([]float64, 0, latencyWindow)}
		m.endpoints[endpoint] = s
	}
	s.codes[code]++
	sec := d.Seconds()
	if len(s.ring) < latencyWindow {
		s.ring = append(s.ring, sec)
	} else {
		s.ring[s.n%latencyWindow] = sec
	}
	s.n++
}

// ObserveBatch records one coalesced forward pass of the given size for
// the given batcher kind.
func (m *Metrics) ObserveBatch(kind string, size int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.batches[kind]
	if s == nil {
		s = &batchKindStats{}
		m.batches[kind] = s
	}
	s.count++
	s.rows += int64(size)
	if int64(size) > s.max {
		s.max = int64(size)
	}
	s.hist[sizeBucket(size)]++
}

// ObserveBatchDrop records rows dropped from a batch queue because
// their request's context was done before the pass fired.
func (m *Metrics) ObserveBatchDrop(kind string, rows int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.batches[kind]
	if s == nil {
		s = &batchKindStats{}
		m.batches[kind] = s
	}
	s.dropped += int64(rows)
}

// BatchStats returns the number of forward passes and total rows batched
// so far for one batcher kind.
func (m *Metrics) BatchStats(kind string) (passes, rows int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.batches[kind]
	if s == nil {
		return 0, 0
	}
	return s.count, s.rows
}

// Snapshot copies one batcher kind's full counter set, including the
// batch-size histogram. A kind with no recorded passes returns a zero
// snapshot with a zeroed histogram, so callers can diff unconditionally.
func (m *Metrics) Snapshot(kind string) BatchSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := BatchSnapshot{SizeCounts: make([]int64, numSizeBuckets)}
	s := m.batches[kind]
	if s == nil {
		return snap
	}
	snap.Passes, snap.Rows, snap.MaxRows, snap.DroppedRows = s.count, s.rows, s.max, s.dropped
	copy(snap.SizeCounts, s.hist[:])
	return snap
}

// BatchDropped returns how many rows were dropped from one kind's batch
// queue due to cancellation.
func (m *Metrics) BatchDropped(kind string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.batches[kind]
	if s == nil {
		return 0
	}
	return s.dropped
}

// noteRequestID counts one server-assigned request ID.
func (m *Metrics) noteRequestID() { m.requestIDs.Add(1) }

// quantile returns the q-th quantile of vals (sorted in place).
func quantile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	idx := int(q * float64(len(vals)-1))
	return vals[idx]
}

// WritePrometheus renders the collected metrics in the Prometheus text
// exposition format.
func (m *Metrics) WritePrometheus(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintln(w, "# HELP noble_requests_total Requests served, by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE noble_requests_total counter")
	for _, name := range names {
		s := m.endpoints[name]
		codes := make([]int, 0, len(s.codes))
		for c := range s.codes {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "noble_requests_total{endpoint=%q,code=\"%d\"} %d\n", name, c, s.codes[c])
		}
	}

	fmt.Fprintln(w, "# HELP noble_request_latency_seconds Request latency quantiles over a sliding window.")
	fmt.Fprintln(w, "# TYPE noble_request_latency_seconds summary")
	for _, name := range names {
		s := m.endpoints[name]
		vals := append([]float64(nil), s.ring...)
		sort.Float64s(vals)
		for _, q := range []float64{0.5, 0.9, 0.99} {
			fmt.Fprintf(w, "noble_request_latency_seconds{endpoint=%q,quantile=\"%g\"} %.6f\n",
				name, q, quantile(vals, q))
		}
		fmt.Fprintf(w, "noble_request_latency_seconds_count{endpoint=%q} %d\n", name, s.n)
	}

	kinds := make([]string, 0, len(m.batches))
	for kind := range m.batches {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	fmt.Fprintln(w, "# HELP noble_batch_rows Rows (fingerprints or paths) coalesced into batched forward passes, by batcher kind.")
	fmt.Fprintln(w, "# TYPE noble_batch_rows counter")
	for _, kind := range kinds {
		s := m.batches[kind]
		fmt.Fprintf(w, "noble_batch_rows_sum{kind=%q} %d\n", kind, s.rows)
		fmt.Fprintf(w, "noble_batch_rows_count{kind=%q} %d\n", kind, s.count)
		fmt.Fprintf(w, "noble_batch_rows_max{kind=%q} %d\n", kind, s.max)
	}
	fmt.Fprintln(w, "# HELP noble_batch_size Forward-pass sizes (rows per pass) as a cumulative histogram, by batcher kind.")
	fmt.Fprintln(w, "# TYPE noble_batch_size histogram")
	for _, kind := range kinds {
		s := m.batches[kind]
		var cum int64
		for i, le := range batchSizeBuckets {
			cum += s.hist[i]
			fmt.Fprintf(w, "noble_batch_size_bucket{kind=%q,le=\"%d\"} %d\n", kind, le, cum)
		}
		fmt.Fprintf(w, "noble_batch_size_bucket{kind=%q,le=\"+Inf\"} %d\n", kind, s.count)
		fmt.Fprintf(w, "noble_batch_size_sum{kind=%q} %d\n", kind, s.rows)
		fmt.Fprintf(w, "noble_batch_size_count{kind=%q} %d\n", kind, s.count)
	}
	fmt.Fprintln(w, "# HELP noble_batch_dropped_rows_total Rows dropped from batch queues because their request was canceled before the pass fired.")
	fmt.Fprintln(w, "# TYPE noble_batch_dropped_rows_total counter")
	for _, kind := range kinds {
		fmt.Fprintf(w, "noble_batch_dropped_rows_total{kind=%q} %d\n", kind, m.batches[kind].dropped)
	}
	fmt.Fprintln(w, "# HELP noble_request_ids_assigned_total Server-assigned request IDs handed out (the /v2 X-Request-Id sequence).")
	fmt.Fprintln(w, "# TYPE noble_request_ids_assigned_total counter")
	fmt.Fprintf(w, "noble_request_ids_assigned_total %d\n", m.requestIDs.Load())
}
