package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// latencyWindow is how many recent samples per endpoint back the quantile
// estimates. A power-of-two ring keeps Observe O(1); quantiles sort a copy
// at scrape time only.
const latencyWindow = 8192

// Metrics collects request counts per endpoint and status code, latency
// quantiles over a sliding window, and micro-batch occupancy. All methods
// are safe for concurrent use.
type Metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointStats

	batchCount int64 // forward passes
	batchRows  int64 // fingerprints across all passes
	batchMax   int64 // largest pass observed
}

type endpointStats struct {
	codes map[int]int64
	ring  []float64 // seconds
	n     int64     // total observations (ring index = n % len)
}

// NewMetrics returns an empty collector.
func NewMetrics() *Metrics {
	return &Metrics{endpoints: make(map[string]*endpointStats)}
}

// Observe records one finished request.
func (m *Metrics) Observe(endpoint string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.endpoints[endpoint]
	if s == nil {
		s = &endpointStats{codes: make(map[int]int64), ring: make([]float64, 0, latencyWindow)}
		m.endpoints[endpoint] = s
	}
	s.codes[code]++
	sec := d.Seconds()
	if len(s.ring) < latencyWindow {
		s.ring = append(s.ring, sec)
	} else {
		s.ring[s.n%latencyWindow] = sec
	}
	s.n++
}

// ObserveBatch records one coalesced forward pass of the given size.
func (m *Metrics) ObserveBatch(size int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batchCount++
	m.batchRows += int64(size)
	if int64(size) > m.batchMax {
		m.batchMax = int64(size)
	}
}

// BatchStats returns the number of forward passes and total rows batched
// so far.
func (m *Metrics) BatchStats() (passes, rows int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.batchCount, m.batchRows
}

// quantile returns the q-th quantile of vals (sorted in place).
func quantile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	idx := int(q * float64(len(vals)-1))
	return vals[idx]
}

// WritePrometheus renders the collected metrics in the Prometheus text
// exposition format.
func (m *Metrics) WritePrometheus(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintln(w, "# HELP noble_requests_total Requests served, by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE noble_requests_total counter")
	for _, name := range names {
		s := m.endpoints[name]
		codes := make([]int, 0, len(s.codes))
		for c := range s.codes {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "noble_requests_total{endpoint=%q,code=\"%d\"} %d\n", name, c, s.codes[c])
		}
	}

	fmt.Fprintln(w, "# HELP noble_request_latency_seconds Request latency quantiles over a sliding window.")
	fmt.Fprintln(w, "# TYPE noble_request_latency_seconds summary")
	for _, name := range names {
		s := m.endpoints[name]
		vals := append([]float64(nil), s.ring...)
		sort.Float64s(vals)
		for _, q := range []float64{0.5, 0.9, 0.99} {
			fmt.Fprintf(w, "noble_request_latency_seconds{endpoint=%q,quantile=\"%g\"} %.6f\n",
				name, q, quantile(vals, q))
		}
		fmt.Fprintf(w, "noble_request_latency_seconds_count{endpoint=%q} %d\n", name, s.n)
	}

	fmt.Fprintln(w, "# HELP noble_batch_rows Fingerprints coalesced into batched forward passes.")
	fmt.Fprintln(w, "# TYPE noble_batch_rows counter")
	fmt.Fprintf(w, "noble_batch_rows_sum %d\n", m.batchRows)
	fmt.Fprintf(w, "noble_batch_rows_count %d\n", m.batchCount)
	fmt.Fprintf(w, "noble_batch_rows_max %d\n", m.batchMax)
}
