package floorplan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"noble/internal/geo"
)

func TestRingBuildingAccessibility(t *testing.T) {
	b := ring(0, "r", geo.Point{X: 0, Y: 0}, 100, 80, 20, 4)
	// In the ring wall: accessible.
	if !b.ContainsXY(geo.Point{X: 10, Y: 40}) {
		t.Fatal("wall interior must be accessible")
	}
	// Courtyard center: blocked.
	if b.ContainsXY(geo.Point{X: 50, Y: 40}) {
		t.Fatal("courtyard must be inaccessible")
	}
	// Outside entirely.
	if b.ContainsXY(geo.Point{X: -5, Y: 40}) {
		t.Fatal("outside footprint must be inaccessible")
	}
	// Courtyard boundary counts as accessible walkway.
	if !b.ContainsXY(geo.Point{X: 20, Y: 40}) {
		t.Fatal("courtyard boundary must be accessible")
	}
}

func TestUJICampusShape(t *testing.T) {
	plan := UJICampus()
	if len(plan.Buildings) != 3 {
		t.Fatalf("buildings=%d want 3", len(plan.Buildings))
	}
	for _, b := range plan.Buildings {
		if b.Floors != 4 {
			t.Fatalf("building %d floors=%d want 4", b.ID, b.Floors)
		}
	}
	bounds := plan.Bounds()
	if bounds.Width() < 300 || bounds.Width() > 397 {
		t.Fatalf("campus width %v out of UJI range", bounds.Width())
	}
	if bounds.Height() < 180 || bounds.Height() > 273 {
		t.Fatalf("campus height %v out of UJI range", bounds.Height())
	}
}

func TestUJICampusDeadSpace(t *testing.T) {
	plan := UJICampus()
	// A point between the buildings is dead space.
	if plan.Accessible(geo.Point{X: 140, Y: 200}) {
		t.Fatal("gap between buildings must be inaccessible")
	}
	if plan.BuildingAt(geo.Point{X: 140, Y: 200}) != -1 {
		t.Fatal("BuildingAt in dead space must be -1")
	}
	// A point in the first building's wall.
	p := geo.Point{X: 25, Y: 200}
	if !plan.Accessible(p) {
		t.Fatal("building wall must be accessible")
	}
	if plan.BuildingAt(p) != 0 {
		t.Fatalf("BuildingAt=%d want 0", plan.BuildingAt(p))
	}
}

func TestIPINBuilding(t *testing.T) {
	plan := IPINBuilding()
	if len(plan.Buildings) != 1 || plan.Buildings[0].Floors != 3 {
		t.Fatal("IPIN plan must be one 3-floor building")
	}
	if !plan.Accessible(geo.Point{X: 20, Y: 8}) {
		t.Fatal("building interior must be accessible")
	}
	if plan.Accessible(geo.Point{X: 50, Y: 8}) {
		t.Fatal("outside must be inaccessible")
	}
	if plan.FloorCount() != 3 {
		t.Fatalf("FloorCount=%d", plan.FloorCount())
	}
}

func TestOutdoorCampus(t *testing.T) {
	plan := OutdoorCampus()
	bounds := plan.Bounds()
	if bounds.Width() != 160 || bounds.Height() != 60 {
		t.Fatalf("outdoor campus %vx%v want 160x60", bounds.Width(), bounds.Height())
	}
	// Sidewalk along the south edge.
	if !plan.Accessible(geo.Point{X: 80, Y: 6}) {
		t.Fatal("sidewalk must be accessible")
	}
	// Lawn centers blocked.
	if plan.Accessible(geo.Point{X: 40, Y: 30}) || plan.Accessible(geo.Point{X: 120, Y: 30}) {
		t.Fatal("lawns must be inaccessible")
	}
	// Middle cut-through between the two lawns is walkable.
	if !plan.Accessible(geo.Point{X: 80, Y: 30}) {
		t.Fatal("cut-through must be accessible")
	}
}

func TestProjectIdentityOnAccessible(t *testing.T) {
	plan := UJICampus()
	p := geo.Point{X: 25, Y: 200}
	if plan.Project(p) != p {
		t.Fatal("accessible points must project to themselves")
	}
}

func TestProjectFromDeadSpace(t *testing.T) {
	plan := UJICampus()
	// From inside a courtyard, projection lands on the courtyard ring.
	b := plan.Buildings[0]
	center := b.Courtyards[0].Bounds().Center()
	proj := plan.Project(center)
	if !plan.Accessible(proj) {
		t.Fatalf("projection %v must be accessible", proj)
	}
	if geo.Dist(center, proj) == 0 {
		t.Fatal("courtyard center must move")
	}
	// From far outside the campus, projection lands on some footprint.
	out := geo.Point{X: -50, Y: -50}
	proj = plan.Project(out)
	if !plan.Accessible(proj) {
		t.Fatalf("projection %v from outside must be accessible", proj)
	}
}

func TestProjectImprovesOrKeepsDistanceProperty(t *testing.T) {
	plan := UJICampus()
	rng := rand.New(rand.NewSource(3))
	f := func(x8, y8 uint16) bool {
		p := geo.Point{X: float64(x8 % 400), Y: float64(y8 % 280)}
		proj := plan.Project(p)
		if !plan.Accessible(proj) {
			return false
		}
		// Projection of an accessible point is the identity.
		if plan.Accessible(p) && proj != p {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestProjectIsNearestAmongSamples(t *testing.T) {
	plan := IPINBuilding()
	p := geo.Point{X: 60, Y: 8} // 20 m east of the building
	proj := plan.Project(p)
	want := geo.Point{X: 40, Y: 8}
	if geo.Dist(proj, want) > 1e-9 {
		t.Fatalf("Project=%v want %v", proj, want)
	}
}

func TestReferencePointsAccessibleAndPerFloor(t *testing.T) {
	plan := UJICampus()
	rng := rand.New(rand.NewSource(4))
	refs := plan.ReferencePoints(rng, 10, 0)
	if len(refs) == 0 {
		t.Fatal("no reference points generated")
	}
	floorsSeen := map[int]bool{}
	buildingsSeen := map[int]bool{}
	for _, r := range refs {
		if !plan.Accessible(r.Pos) {
			t.Fatalf("reference point %v not accessible", r.Pos)
		}
		if plan.BuildingAt(r.Pos) != r.Building {
			t.Fatalf("reference point %v building mismatch", r.Pos)
		}
		floorsSeen[r.Floor] = true
		buildingsSeen[r.Building] = true
	}
	for f := 0; f < 4; f++ {
		if !floorsSeen[f] {
			t.Fatalf("floor %d has no reference points", f)
		}
	}
	for b := 0; b < 3; b++ {
		if !buildingsSeen[b] {
			t.Fatalf("building %d has no reference points", b)
		}
	}
}

func TestReferencePointsSpacingControlsCount(t *testing.T) {
	plan := IPINBuilding()
	rng := rand.New(rand.NewSource(5))
	coarse := plan.ReferencePoints(rng, 8, 0)
	fine := plan.ReferencePoints(rand.New(rand.NewSource(5)), 2, 0)
	if len(fine) <= len(coarse) {
		t.Fatalf("finer spacing must yield more points: %d vs %d", len(fine), len(coarse))
	}
}

func TestReferencePointsJitterStaysAccessible(t *testing.T) {
	plan := UJICampus()
	rng := rand.New(rand.NewSource(6))
	refs := plan.ReferencePoints(rng, 8, 2)
	for _, r := range refs {
		if !plan.Accessible(r.Pos) {
			t.Fatalf("jittered reference %v not accessible", r.Pos)
		}
	}
}

func TestReferencePointsBadSpacingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	UJICampus().ReferencePoints(rand.New(rand.NewSource(1)), 0, 0)
}

func TestOutdoorRegionRefPoints(t *testing.T) {
	plan := &Plan{
		Name:    "outdoor-only",
		Outdoor: []geo.Polygon{geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 20, Y: 20}).Polygon()},
	}
	rng := rand.New(rand.NewSource(7))
	refs := plan.ReferencePoints(rng, 5, 0)
	if len(refs) == 0 {
		t.Fatal("outdoor regions must produce reference points")
	}
	for _, r := range refs {
		if r.Building != -1 || r.Floor != 0 {
			t.Fatal("outdoor refs must have building=-1 floor=0")
		}
	}
	if !plan.Accessible(geo.Point{X: 10, Y: 10}) {
		t.Fatal("outdoor region must be accessible")
	}
	if plan.Project(geo.Point{X: 30, Y: 10}) != (geo.Point{X: 20, Y: 10}) {
		t.Fatal("projection onto outdoor region")
	}
}
