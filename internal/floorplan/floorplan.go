// Package floorplan models the structured localization spaces at the heart
// of the paper's argument: buildings with inaccessible courtyards, multiple
// floors, and the dead space between buildings. The Wi-Fi experiments use a
// UJIIndoorLoc-like three-building campus and an IPIN2016-like single
// building; the Deep Regression Projection baseline uses Plan.Project to
// snap off-map predictions to the nearest accessible position, exactly the
// map-projection post-processing of [8]/[19].
package floorplan

import (
	"fmt"
	"math"
	"math/rand"

	"noble/internal/geo"
)

// Building is one structure on a plan: an outer footprint, optional
// inaccessible courtyards (holes), and a floor count. The UJI buildings in
// Fig. 1 are rectangular rings around central courtyards.
type Building struct {
	ID         int
	Name       string
	Footprint  geo.Polygon
	Courtyards []geo.Polygon
	Floors     int
}

// ContainsXY reports whether the planar point lies in the building's
// accessible area: inside the footprint and not strictly inside any
// courtyard (courtyard boundaries count as accessible walkway).
func (b *Building) ContainsXY(p geo.Point) bool {
	if !b.Footprint.Contains(p) {
		return false
	}
	for _, c := range b.Courtyards {
		if strictlyInside(c, p) {
			return false
		}
	}
	return true
}

func strictlyInside(poly geo.Polygon, p geo.Point) bool {
	if !poly.Contains(p) {
		return false
	}
	return geo.Dist(poly.ClosestBoundaryPoint(p), p) > 1e-9
}

// Plan is a localization space: a set of buildings plus optional accessible
// outdoor regions (walkways between buildings).
type Plan struct {
	Name      string
	Buildings []*Building
	Outdoor   []geo.Polygon
}

// Bounds returns the bounding box of everything on the plan.
func (pl *Plan) Bounds() geo.Rect {
	var r geo.Rect
	first := true
	grow := func(b geo.Rect) {
		if first {
			r, first = b, false
		} else {
			r = r.Union(b)
		}
	}
	for _, b := range pl.Buildings {
		grow(b.Footprint.Bounds())
	}
	for _, o := range pl.Outdoor {
		grow(o.Bounds())
	}
	return r
}

// Accessible reports whether p lies in any building's accessible area or
// any outdoor region. This is the ground-truth structure that NObLe's
// quantization discovers implicitly from data.
func (pl *Plan) Accessible(p geo.Point) bool {
	for _, b := range pl.Buildings {
		if b.ContainsXY(p) {
			return true
		}
	}
	for _, o := range pl.Outdoor {
		if o.Contains(p) {
			return true
		}
	}
	return false
}

// BuildingAt returns the ID of the building whose accessible area contains
// p, or -1 when p is outdoors or in dead space.
func (pl *Plan) BuildingAt(p geo.Point) int {
	for _, b := range pl.Buildings {
		if b.ContainsXY(p) {
			return b.ID
		}
	}
	return -1
}

// Project returns the accessible point nearest to p — itself when p is
// already accessible. This implements the Deep Regression Projection
// baseline's "project the predicted coordinates to the nearest position on
// the map" step.
func (pl *Plan) Project(p geo.Point) geo.Point {
	if pl.Accessible(p) {
		return p
	}
	best := p
	bestD := math.Inf(1)
	consider := func(c geo.Point) {
		if d := geo.Dist2(c, p); d < bestD {
			bestD, best = d, c
		}
	}
	for _, b := range pl.Buildings {
		if b.Footprint.Contains(p) {
			// Inside the footprint but blocked by a courtyard:
			// project to the courtyard ring.
			for _, cy := range b.Courtyards {
				if strictlyInside(cy, p) {
					consider(cy.ClosestBoundaryPoint(p))
				}
			}
			continue
		}
		consider(b.Footprint.ClosestBoundaryPoint(p))
	}
	for _, o := range pl.Outdoor {
		if !o.Contains(p) {
			consider(o.ClosestBoundaryPoint(p))
		}
	}
	return best
}

// RefPoint is one survey location: a position, the building it belongs to
// (-1 for outdoor) and the floor index.
type RefPoint struct {
	Pos      geo.Point
	Building int
	Floor    int
}

// ReferencePoints lays out the offline survey grid: accessible positions at
// the given spacing (with optional uniform jitter) on every floor of every
// building, plus ground-floor points in outdoor regions. This mirrors how
// fingerprint datasets such as UJIIndoorLoc are collected — only reachable
// positions are ever sampled, which is what lets NObLe's quantization drop
// dead space.
func (pl *Plan) ReferencePoints(rng *rand.Rand, spacing, jitter float64) []RefPoint {
	if spacing <= 0 {
		panic(fmt.Sprintf("floorplan: non-positive spacing %v", spacing))
	}
	var out []RefPoint
	for _, b := range pl.Buildings {
		bounds := b.Footprint.Bounds()
		for y := bounds.Min.Y + spacing/2; y < bounds.Max.Y; y += spacing {
			for x := bounds.Min.X + spacing/2; x < bounds.Max.X; x += spacing {
				p := geo.Point{X: x, Y: y}
				if jitter > 0 {
					p.X += (rng.Float64() - 0.5) * jitter
					p.Y += (rng.Float64() - 0.5) * jitter
				}
				if !b.ContainsXY(p) {
					continue
				}
				for f := 0; f < b.Floors; f++ {
					out = append(out, RefPoint{Pos: p, Building: b.ID, Floor: f})
				}
			}
		}
	}
	for _, o := range pl.Outdoor {
		bounds := o.Bounds()
		for y := bounds.Min.Y + spacing/2; y < bounds.Max.Y; y += spacing {
			for x := bounds.Min.X + spacing/2; x < bounds.Max.X; x += spacing {
				p := geo.Point{X: x, Y: y}
				if jitter > 0 {
					p.X += (rng.Float64() - 0.5) * jitter
					p.Y += (rng.Float64() - 0.5) * jitter
				}
				if o.Contains(p) && pl.Accessible(p) {
					out = append(out, RefPoint{Pos: p, Building: -1, Floor: 0})
				}
			}
		}
	}
	return out
}

// FloorCount returns the maximum floor count across buildings (at least 1).
func (pl *Plan) FloorCount() int {
	n := 1
	for _, b := range pl.Buildings {
		if b.Floors > n {
			n = b.Floors
		}
	}
	return n
}

// ring builds a rectangular building footprint with a centered rectangular
// courtyard hole, the shape of the UJI buildings in Fig. 1.
func ring(id int, name string, origin geo.Point, w, h, wall float64, floors int) *Building {
	outer := geo.NewRect(origin, origin.Add(geo.Point{X: w, Y: h}))
	inner := geo.NewRect(
		origin.Add(geo.Point{X: wall, Y: wall}),
		origin.Add(geo.Point{X: w - wall, Y: h - wall}),
	)
	return &Building{
		ID:         id,
		Name:       name,
		Footprint:  outer.Polygon(),
		Courtyards: []geo.Polygon{inner.Polygon()},
		Floors:     floors,
	}
}

// UJICampus returns the synthetic stand-in for the UJIIndoorLoc space: a
// 397 m × 273 m campus with three ring-shaped buildings (four floors each)
// arranged along a diagonal, as in the satellite view of Fig. 1. The space
// between and inside the rings is inaccessible — the structure NObLe should
// discover.
func UJICampus() *Plan {
	return &Plan{
		Name: "uji-synthetic",
		Buildings: []*Building{
			ring(0, "TI", geo.Point{X: 20, Y: 150}, 110, 90, 22, 4),
			ring(1, "TD", geo.Point{X: 150, Y: 80}, 110, 90, 22, 4),
			ring(2, "TC", geo.Point{X: 275, Y: 15}, 110, 90, 22, 4),
		},
	}
}

// IPINBuilding returns the synthetic stand-in for the IPIN2016 Tutorial
// dataset: one small building (~40 m × 17 m, three floors) without a
// courtyard.
func IPINBuilding() *Plan {
	b := &Building{
		ID:        0,
		Name:      "UB",
		Footprint: geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 40, Y: 17}).Polygon(),
		Floors:    3,
	}
	return &Plan{Name: "ipin-synthetic", Buildings: []*Building{b}}
}

// OutdoorCampus returns the 160 m × 60 m outdoor tracking space of §V: a
// rectangular campus quad whose walkable surface is a sidewalk loop plus a
// diagonal cut-through, matching the "user travel paths" of Fig. 5(b).
// The interior lawn is inaccessible, giving the output space the structure
// NObLe exploits.
func OutdoorCampus() *Plan {
	outerRect := geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 160, Y: 60})
	lawnA := geo.NewRect(geo.Point{X: 12, Y: 12}, geo.Point{X: 72, Y: 48}).Polygon()
	lawnB := geo.NewRect(geo.Point{X: 88, Y: 12}, geo.Point{X: 148, Y: 48}).Polygon()
	quad := &Building{
		ID:         0,
		Name:       "quad",
		Footprint:  outerRect.Polygon(),
		Courtyards: []geo.Polygon{lawnA, lawnB},
		Floors:     1,
	}
	return &Plan{Name: "campus-outdoor", Buildings: []*Building{quad}}
}
