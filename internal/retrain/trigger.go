package retrain

import (
	"fmt"
	"sort"
	"time"
)

// TriggerPolicy is when to retrain.
type TriggerPolicy struct {
	// MaxErrorDeltaM fires the drift trigger when a model's rolling
	// re-anchor error (mean over the scores accumulated since its
	// promotion-time baseline) exceeds the baseline mean by this many
	// meters. <= 0 disables the error trigger.
	MaxErrorDeltaM float64
	// MinSamples is how many post-baseline scores a judgment needs; the
	// trigger never fires on thin evidence.
	MinSamples int64
	// Every fires on a wall-clock schedule regardless of drift — the
	// find3-style periodic refresh, and the only trigger available to a
	// model whose active generation accumulates no error scores (an
	// active WiFi generation is never scored against its own fixes, so
	// its drift shows up in the session models it re-anchors, not in its
	// own histogram). <= 0 disables the schedule.
	Every time.Duration
}

// Sample is one observation of a model's ACTIVE generation, taken from
// the noble_lifecycle_reanchor_error_meters histogram (its cumulative
// _count/_sum) plus the generation number from noble_model_info — via
// an HTTP /metrics scrape (ScrapeLifecycle) or directly from the
// registry in process.
type Sample struct {
	Model      string
	Generation int     // active generation identity; a change resets the baseline
	Scores     int64   // cumulative re-anchor score count
	ErrorSumM  float64 // cumulative re-anchor error sum, meters
}

// Decision says a model's deployment should retrain, and why.
type Decision struct {
	Model  string `json:"model"`
	Reason string `json:"reason"` // "drift" or "schedule"
	// DeltaM is the rolling-vs-baseline mean error gap for drift
	// decisions (0 for schedule).
	DeltaM float64 `json:"delta_m,omitempty"`
}

// Trigger reason values.
const (
	ReasonDrift    = "drift"
	ReasonSchedule = "schedule"
)

// TriggerState is one model's published trigger view (for
// /debug/retrain and tests).
type TriggerState struct {
	Generation   int       `json:"generation"`
	BaselineMean float64   `json:"baseline_mean_m"`
	RollingMean  float64   `json:"rolling_mean_m"`
	Samples      int64     `json:"samples"` // scores since baseline
	LastFired    time.Time `json:"last_fired,omitempty"`
	NextSchedule time.Time `json:"next_schedule,omitempty"`
}

// baseline pins a generation's promotion-time error level: the
// cumulative (scores, sum) at the first observation of that generation,
// whose mean is the evidence it earned promotion on.
type baseline struct {
	gen     int
	scores  int64
	sum     float64
	mean    float64
	meanSet bool
	fired   time.Time
	first   time.Time
	rolling float64
	samples int64
}

// Trigger turns a stream of Sample observations into retrain
// Decisions. It is a pure state machine over the values it is fed — no
// clocks, no I/O — so the drift policy is unit-testable on synthetic
// error series. Not safe for concurrent use.
type Trigger struct {
	policy TriggerPolicy
	models map[string]*baseline
}

// NewTrigger builds a trigger with the given policy.
func NewTrigger(p TriggerPolicy) *Trigger {
	return &Trigger{policy: p, models: map[string]*baseline{}}
}

// Observe folds one scrape into the trigger state and returns at most
// one Decision per model:
//
//   - A model's first observation (or its first after the active
//     generation changed) establishes the baseline — promotion-time
//     cumulative scores/sum — and never fires.
//   - Once MinSamples scores accumulate past the baseline, the rolling
//     mean of those post-baseline scores is compared to the baseline
//     mean; exceeding it by MaxErrorDeltaM fires a drift decision. A
//     generation whose baseline had zero scores sets its baseline mean
//     from the first MinSamples window instead (there is no promotion
//     evidence to compare against).
//   - Independently, Every fires a schedule decision when that much
//     wall clock passed since the model's baseline was established or
//     the trigger last fired for it.
//
// Firing (either reason) re-baselines the model at the current
// cumulative state, so one drift episode yields one retrain, not one
// per scrape.
func (t *Trigger) Observe(now time.Time, samples []Sample) []Decision {
	var out []Decision
	for _, s := range samples {
		b, ok := t.models[s.Model]
		if !ok || b.gen != s.Generation {
			nb := &baseline{gen: s.Generation, scores: s.Scores, sum: s.ErrorSumM, first: now}
			if s.Scores > 0 {
				nb.mean = s.ErrorSumM / float64(s.Scores)
				nb.meanSet = true
			}
			t.models[s.Model] = nb
			continue
		}
		newScores := s.Scores - b.scores
		b.samples = newScores
		if newScores > 0 {
			b.rolling = (s.ErrorSumM - b.sum) / float64(newScores)
		}
		if d := t.judge(now, s, b); d != nil {
			out = append(out, *d)
		}
	}
	return out
}

func (t *Trigger) judge(now time.Time, s Sample, b *baseline) *Decision {
	if t.policy.MaxErrorDeltaM > 0 && b.samples >= t.policy.MinSamples && b.samples > 0 {
		if !b.meanSet {
			// No promotion-time evidence: adopt the first full window as
			// the baseline level instead of firing against zero.
			b.mean = b.rolling
			b.meanSet = true
			b.scores = s.Scores
			b.sum = s.ErrorSumM
			b.samples = 0
			return nil
		}
		if delta := b.rolling - b.mean; delta > t.policy.MaxErrorDeltaM {
			b.fired = now
			b.scores = s.Scores
			b.sum = s.ErrorSumM
			b.samples = 0
			// The episode's level becomes the new reference: holding at
			// the degraded mean never refires (one episode, one retrain —
			// recovery is the promoted retrain resetting the baseline via
			// its generation change), only degrading FURTHER does.
			b.mean = b.rolling
			return &Decision{Model: s.Model, Reason: ReasonDrift, DeltaM: delta}
		}
	}
	if t.policy.Every > 0 {
		since := b.first
		if !b.fired.IsZero() {
			since = b.fired
		}
		if now.Sub(since) >= t.policy.Every {
			b.fired = now
			return &Decision{Model: s.Model, Reason: ReasonSchedule}
		}
	}
	return nil
}

// NoteRun marks a retrain as having run for the model (however it was
// initiated), resetting its schedule clock.
func (t *Trigger) NoteRun(model string, at time.Time) {
	if b, ok := t.models[model]; ok {
		b.fired = at
	}
}

// State snapshots the per-model trigger view, keyed by model.
func (t *Trigger) State() map[string]TriggerState {
	out := make(map[string]TriggerState, len(t.models))
	for m, b := range t.models {
		st := TriggerState{
			Generation:   b.gen,
			BaselineMean: b.mean,
			RollingMean:  b.rolling,
			Samples:      b.samples,
			LastFired:    b.fired,
		}
		if t.policy.Every > 0 {
			since := b.first
			if !b.fired.IsZero() {
				since = b.fired
			}
			st.NextSchedule = since.Add(t.policy.Every)
		}
		out[m] = st
	}
	return out
}

// Describe renders the policy for logs and status pages.
func (p TriggerPolicy) Describe() string {
	parts := ""
	if p.MaxErrorDeltaM > 0 {
		parts = fmt.Sprintf("drift >%.2fm over baseline (min %d samples)", p.MaxErrorDeltaM, p.MinSamples)
	}
	if p.Every > 0 {
		if parts != "" {
			parts += ", "
		}
		parts += "every " + p.Every.String()
	}
	if parts == "" {
		return "manual only"
	}
	return parts
}

// Models returns the watched model names, sorted (for deterministic
// logs).
func (t *Trigger) Models() []string {
	out := make([]string, 0, len(t.models))
	for m := range t.models {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}
