package retrain

import (
	"fmt"
	"time"

	"noble/internal/store"
)

// HarvestOptions tunes one harvest pass.
type HarvestOptions struct {
	// Retention drops corpus fixes older than this window (0 keeps
	// everything). Retention is what keeps a long-lived corpus tracking
	// the CURRENT RF environment instead of averaging over every
	// environment the deployment ever saw.
	Retention time.Duration
	// MaxPerModel caps each model's corpus at the newest N fixes
	// (0 = unbounded).
	MaxPerModel int
	// Now is the retention reference clock (zero value = time.Now()).
	Now time.Time
}

// HarvestStats summarizes a pass.
type HarvestStats struct {
	Sessions int   `json:"sessions"` // histories scanned
	Scanned  int   `json:"scanned"`  // fingerprint-carrying fixes visible in the WAL
	Added    int   `json:"added"`    // new to the corpus after dedup
	Pruned   int   `json:"pruned"`   // dropped by retention/caps
	Total    int   `json:"total"`    // corpus size after the pass
	Torn     int64 `json:"torn"`     // torn frames skipped by the reader (live tail)
}

// Harvest scans the session WAL at stateDir — the same read path
// noble-replay recovers from, including closed sessions — merges every
// visible re-anchor fix into the corpus, applies retention, and
// persists a new corpus generation. The scan is read-only, so it is
// safe against a live journal: a partially flushed tail parses as a
// torn frame and is simply picked up by the next pass. Fixes already
// compacted into snapshots are gone (snapshots keep tracker state, not
// fingerprints) — harvesting on a schedule shorter than the compaction
// interval is what drains fixes before compaction retires them.
func Harvest(stateDir string, c *Corpus, o HarvestOptions) (HarvestStats, error) {
	rec, err := store.Load(stateDir)
	if err != nil {
		return HarvestStats{}, fmt.Errorf("loading journal at %s: %w", stateDir, err)
	}
	fixes := rec.ReAnchorFixes()
	now := o.Now
	if now.IsZero() {
		now = time.Now()
	}
	stats := HarvestStats{
		Sessions: len(rec.Histories),
		Scanned:  len(fixes),
		Added:    c.Add(fixes),
		Torn:     rec.Stats.TornRecords,
	}
	stats.Pruned = c.Prune(now, o.Retention, o.MaxPerModel)
	stats.Total = c.Len()
	if err := c.Save(); err != nil {
		return stats, err
	}
	return stats, nil
}
