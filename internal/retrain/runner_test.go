package retrain

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"noble/internal/core"
	"noble/internal/dataset"
	"noble/internal/serve"
	"noble/internal/store"
)

// publishTinyWiFiBundle trains a miniature synthetic WiFi bundle into
// dir under the given name and returns its seed survey.
func publishTinyWiFiBundle(t *testing.T, dir, name string) *dataset.WiFi {
	t.Helper()
	dcfg := dataset.SmallIPINConfig()
	dcfg.NumWAPs = 16
	dcfg.RefSpacing = 8
	dcfg.SamplesPerRef = 3
	dcfg.TestSamplesPerRef = 1
	dcfg.Seed = 11
	cfg := core.DefaultWiFiConfig()
	cfg.Hidden = []int{16}
	cfg.Epochs = 2
	ds := dataset.SynthIPIN(dcfg)
	model := core.TrainWiFi(ds, cfg)
	man := serve.Manifest{Kind: serve.KindWiFi, WiFi: &serve.WiFiBundle{Plan: "ipin", Dataset: dcfg, Config: cfg}}
	if err := serve.WriteBundle(dir, name, man, func(f *os.File) error { return model.Save(f) }); err != nil {
		t.Fatal(err)
	}
	return ds
}

// corpusFromSurvey fills a corpus with fixes whose fingerprints are
// real survey test vectors labeled by their true positions — the
// harvested shape, minus the WAL.
func corpusFromSurvey(t *testing.T, dir, model string, ds *dataset.WiFi, n int) *Corpus {
	t.Helper()
	c, err := OpenCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	var fixes []store.ReAnchorFix
	for i := 0; i < n && i < len(ds.Test); i++ {
		s := ds.Test[i]
		fixes = append(fixes, store.ReAnchorFix{
			Session: "dev", Gen: 1, Seq: int64(i + 1), Time: int64(i + 1),
			WiFiModel: model, Fingerprint: s.Features, X: s.Pos.X, Y: s.Pos.Y,
		})
	}
	if added := c.Add(fixes); added != len(fixes) {
		t.Fatalf("added %d of %d fixes", added, len(fixes))
	}
	return c
}

// TestRetrainLandsInShadow is the loop's safety property: a retrained
// bundle republished over a served name must stage as SHADOW on the
// next reload — the active generation keeps serving, untouched, until
// the lifecycle controller promotes the retrain on live evidence.
func TestRetrainLandsInShadow(t *testing.T) {
	modelsDir := t.TempDir()
	ds := publishTinyWiFiBundle(t, modelsDir, "wifi-test")

	reg := serve.NewRegistry(modelsDir, t.Logf)
	if loaded, _, err := reg.Reload(); err != nil || loaded != 1 {
		t.Fatalf("initial reload: loaded=%d err=%v", loaded, err)
	}
	active, ok := reg.Get("wifi-test")
	if !ok || active.Stage != serve.StageActive || active.Generation != 1 {
		t.Fatalf("seed bundle not active: %+v", active)
	}

	c := corpusFromSurvey(t, filepath.Join(t.TempDir(), "corpus"), "wifi-test", ds, 10)
	res, err := Run(RunOptions{
		ModelsDir: modelsDir,
		Model:     "wifi-test",
		Corpus:    c,
		MinFixes:  1,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.SeedSamples != len(ds.Train) || res.UsedFixes != 10 || res.Int8 {
		t.Fatalf("result %+v, want %d seed samples, 10 used fixes, fp64", res, len(ds.Train))
	}

	// Bump mtimes past filesystem granularity so the republish is a
	// distinct generation stamp even on coarse-timestamp filesystems.
	future := time.Now().Add(2 * time.Second)
	for _, f := range []string{"manifest.json", "weights.gob"} {
		if err := os.Chtimes(filepath.Join(modelsDir, "wifi-test", f), future, future); err != nil {
			t.Fatal(err)
		}
	}
	if loaded, _, err := reg.Reload(); err != nil || loaded != 1 {
		t.Fatalf("reload after retrain: loaded=%d err=%v", loaded, err)
	}

	// Active is byte-for-byte the pre-retrain generation; the retrain
	// waits in shadow.
	nowActive, _ := reg.Get("wifi-test")
	if nowActive.Generation != 1 || nowActive.Stage != serve.StageActive || nowActive.WiFi != active.WiFi {
		t.Fatalf("active changed under a retrain publish: gen=%d stage=%s", nowActive.Generation, nowActive.Stage)
	}
	staged, ok := reg.Staged("wifi-test")
	if !ok || staged.Stage != serve.StageShadow || staged.Generation != 2 {
		t.Fatalf("retrain not staged as shadow: ok=%v %+v", ok, staged)
	}
	if staged.WiFi == active.WiFi {
		t.Fatal("shadow generation must be a fresh model instance")
	}
}

// TestRunRefusesTooFewFixes: a near-empty corpus must refuse rather
// than republish a model indistinguishable from the seed.
func TestRunRefusesTooFewFixes(t *testing.T) {
	modelsDir := t.TempDir()
	ds := publishTinyWiFiBundle(t, modelsDir, "wifi-test")
	c := corpusFromSurvey(t, filepath.Join(t.TempDir(), "corpus"), "wifi-test", ds, 2)
	_, err := Run(RunOptions{ModelsDir: modelsDir, Model: "wifi-test", Corpus: c, MinFixes: 5, Logf: t.Logf})
	if !errors.Is(err, ErrTooFewFixes) {
		t.Fatalf("err = %v, want ErrTooFewFixes", err)
	}
}

// TestRunRefusesNonWiFiBundles: only synthetic WiFi bundles carry a
// reproducible training recipe.
func TestRunRefusesNonWiFiBundles(t *testing.T) {
	modelsDir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(modelsDir, "imu-x"), 0o755); err != nil {
		t.Fatal(err)
	}
	manifest := []byte(`{"kind":"imu"}`)
	if err := os.WriteFile(filepath.Join(modelsDir, "imu-x", "manifest.json"), manifest, 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCorpus(filepath.Join(t.TempDir(), "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(RunOptions{ModelsDir: modelsDir, Model: "imu-x", Corpus: c}); err == nil {
		t.Fatal("retraining an IMU bundle must fail")
	}
}
