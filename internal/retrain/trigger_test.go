package retrain

import (
	"strings"
	"testing"
	"time"
)

// obs builds one cumulative observation for model "m", generation 1.
func obs(scores int64, sum float64) Sample {
	return Sample{Model: "m", Generation: 1, Scores: scores, ErrorSumM: sum}
}

// TestDriftTriggerFiresOnSyntheticSeries: a model promoted at 1 m mean
// error that degrades to 4 m must fire once the post-baseline window is
// full, and firing must re-baseline so one drift episode yields one
// retrain.
func TestDriftTriggerFiresOnSyntheticSeries(t *testing.T) {
	tr := NewTrigger(TriggerPolicy{MaxErrorDeltaM: 2, MinSamples: 5})
	now := time.Unix(1000, 0)

	// First sight establishes the promotion-time baseline: 100 scores
	// at 1 m mean. Never fires.
	if d := tr.Observe(now, []Sample{obs(100, 100)}); len(d) != 0 {
		t.Fatalf("baseline observation fired: %+v", d)
	}
	// 3 new scores at 4 m: over the delta but under MinSamples.
	if d := tr.Observe(now, []Sample{obs(103, 112)}); len(d) != 0 {
		t.Fatalf("fired on thin evidence (3 samples): %+v", d)
	}
	// 6 new scores at 4 m mean: rolling 4.0, baseline 1.0, delta 3 > 2.
	d := tr.Observe(now, []Sample{obs(106, 124)})
	if len(d) != 1 || d[0].Reason != ReasonDrift || d[0].Model != "m" {
		t.Fatalf("drift decision: %+v", d)
	}
	if d[0].DeltaM < 2.9 || d[0].DeltaM > 3.1 {
		t.Fatalf("delta %.2f, want ~3.0", d[0].DeltaM)
	}
	// Re-baselined at the fired state: the same degraded level does not
	// refire (one retrain per episode, the rest is the lifecycle's job).
	if d := tr.Observe(now, []Sample{obs(112, 148)}); len(d) != 0 {
		t.Fatalf("refired within the same episode: %+v", d)
	}
}

// TestDriftTriggerStaysQuietWithoutDrift: errors holding at the
// baseline level never fire.
func TestDriftTriggerStaysQuietWithoutDrift(t *testing.T) {
	tr := NewTrigger(TriggerPolicy{MaxErrorDeltaM: 2, MinSamples: 5})
	now := time.Unix(1000, 0)
	tr.Observe(now, []Sample{obs(100, 100)})
	for i := int64(1); i <= 10; i++ {
		if d := tr.Observe(now, []Sample{obs(100+10*i, 100+10*float64(i))}); len(d) != 0 {
			t.Fatalf("fired with rolling == baseline: %+v", d)
		}
	}
}

// TestGenerationChangeResetsBaseline: a promotion (new active
// generation) must re-baseline instead of comparing across generations.
func TestGenerationChangeResetsBaseline(t *testing.T) {
	tr := NewTrigger(TriggerPolicy{MaxErrorDeltaM: 2, MinSamples: 5})
	now := time.Unix(1000, 0)
	tr.Observe(now, []Sample{obs(100, 100)})
	// New generation appears with its counters reset — the old 1 m
	// baseline must not apply, and the first observation never fires.
	g2 := Sample{Model: "m", Generation: 2, Scores: 20, ErrorSumM: 100}
	if d := tr.Observe(now, []Sample{g2}); len(d) != 0 {
		t.Fatalf("fired on generation change: %+v", d)
	}
	if st := tr.State()["m"]; st.Generation != 2 || st.BaselineMean != 5 {
		t.Fatalf("baseline after generation change: %+v", st)
	}
}

// TestZeroScoreBaselineAdoptsFirstWindow: a generation promoted without
// any scored evidence has no baseline mean; the first full window must
// become the baseline instead of firing against zero.
func TestZeroScoreBaselineAdoptsFirstWindow(t *testing.T) {
	tr := NewTrigger(TriggerPolicy{MaxErrorDeltaM: 2, MinSamples: 5})
	now := time.Unix(1000, 0)
	tr.Observe(now, []Sample{obs(0, 0)})
	// 10 scores at 6 m: would be "infinite drift" vs a zero baseline.
	if d := tr.Observe(now, []Sample{obs(10, 60)}); len(d) != 0 {
		t.Fatalf("fired against an evidence-free baseline: %+v", d)
	}
	if st := tr.State()["m"]; st.BaselineMean != 6 {
		t.Fatalf("adopted baseline %.2f, want 6.0", st.BaselineMean)
	}
	// Holding at 6 m stays quiet; degrading past 8 m fires.
	if d := tr.Observe(now, []Sample{obs(20, 120)}); len(d) != 0 {
		t.Fatalf("fired at the adopted level: %+v", d)
	}
	if d := tr.Observe(now, []Sample{obs(30, 240)}); len(d) != 1 || d[0].Reason != ReasonDrift {
		t.Fatalf("no drift decision after real degradation: %+v", d)
	}
}

// TestScheduleTrigger: the wall-clock trigger fires Every after the
// baseline (or the last run), independent of error evidence — it is
// the only automatic path for a model whose active generation never
// accumulates scores.
func TestScheduleTrigger(t *testing.T) {
	tr := NewTrigger(TriggerPolicy{Every: time.Hour})
	t0 := time.Unix(1000, 0)
	tr.Observe(t0, []Sample{obs(0, 0)})
	if d := tr.Observe(t0.Add(30*time.Minute), []Sample{obs(0, 0)}); len(d) != 0 {
		t.Fatalf("schedule fired early: %+v", d)
	}
	d := tr.Observe(t0.Add(time.Hour), []Sample{obs(0, 0)})
	if len(d) != 1 || d[0].Reason != ReasonSchedule {
		t.Fatalf("schedule decision: %+v", d)
	}
	// A manual retrain (NoteRun) resets the schedule clock.
	tr.NoteRun("m", t0.Add(90*time.Minute))
	if d := tr.Observe(t0.Add(2*time.Hour), []Sample{obs(0, 0)}); len(d) != 0 {
		t.Fatalf("schedule ignored NoteRun: %+v", d)
	}
	if d := tr.Observe(t0.Add(151*time.Minute), []Sample{obs(0, 0)}); len(d) != 1 {
		t.Fatalf("schedule did not resume after NoteRun: %+v", d)
	}
}

// TestParseLifecycleMetrics: the scraper reduces the exposition to
// active-generation samples, ignoring staged stages, malformed lines,
// and unrelated families.
func TestParseLifecycleMetrics(t *testing.T) {
	exposition := strings.Join([]string{
		`# HELP noble_lifecycle_reanchor_error_meters Live re-anchor error.`,
		`# TYPE noble_lifecycle_reanchor_error_meters histogram`,
		`noble_lifecycle_reanchor_error_meters_sum{model="demo-imu",stage="active"} 123.5`,
		`noble_lifecycle_reanchor_error_meters_count{model="demo-imu",stage="active"} 47`,
		`noble_lifecycle_reanchor_error_meters_sum{model="demo-imu",stage="shadow"} 9.9`,
		`noble_lifecycle_reanchor_error_meters_count{model="demo-imu",stage="shadow"} 3`,
		`noble_model_info{name="demo-imu",kind="imu",stage="active",generation="4"} 1`,
		`noble_model_info{name="demo-wifi",kind="wifi",stage="active",generation="2"} 1`,
		`noble_requests_total{route="localize"} 9000`,
		`garbage line without a value`,
	}, "\n")
	samples, err := ParseLifecycleMetrics(strings.NewReader(exposition))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 {
		t.Fatalf("%d samples, want 2: %+v", len(samples), samples)
	}
	imu := samples[0]
	if imu.Model != "demo-imu" || imu.Generation != 4 || imu.Scores != 47 || imu.ErrorSumM != 123.5 {
		t.Fatalf("imu sample: %+v", imu)
	}
	wifi := samples[1]
	if wifi.Model != "demo-wifi" || wifi.Generation != 2 || wifi.Scores != 0 {
		t.Fatalf("wifi sample: %+v", wifi)
	}
}
