package retrain

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"noble/internal/serve"
)

// ManagerConfig wires a Manager.
type ManagerConfig struct {
	// StateDir is the session WAL directory the harvester scans.
	StateDir string
	// ModelsDir is the bundle directory retrained bundles republish to.
	ModelsDir string
	// CorpusDir is where the harvested corpus lives.
	CorpusDir string

	// Harvest policy.
	Retention   time.Duration
	MaxPerModel int
	// MinFixes refuses retrains below this corpus size (default 1).
	MinFixes int

	// Trigger is the automatic retrain policy; a zero policy makes the
	// manager manual-only (admin endpoint / CLI kicks).
	Trigger TriggerPolicy
	// Samples feeds the trigger (nil disables the automatic loop even
	// if Trigger is set). In-process this snapshots the registry;
	// out-of-process it scrapes /metrics.
	Samples func() []Sample

	// Lifecycle, when set, is written as the republished bundle's
	// lifecycle.json sidecar; nil keeps the bundle's existing policy.
	Lifecycle *serve.LifecycleSpec

	// Reload, when set, is poked after a successful publish so a
	// co-resident registry stages the new generation without waiting
	// for its directory watcher.
	Reload func() error

	Logf func(format string, args ...any)
}

// RunRecord is one retrain attempt, as shown on /debug/retrain.
type RunRecord struct {
	Model    string     `json:"model"`
	Reason   string     `json:"reason"` // "admin", "cli", "drift", "schedule"
	Status   string     `json:"status"` // "ok" or "error"
	Error    string     `json:"error,omitempty"`
	Started  time.Time  `json:"started"`
	Finished time.Time  `json:"finished"`
	Result   *RunResult `json:"result,omitempty"`
}

// Retrain-run reason values (trigger reasons ReasonDrift/ReasonSchedule
// are used as-is).
const (
	ReasonAdmin = "admin"
	ReasonCLI   = "cli"
)

// Manager owns the harvest→trigger→retrain loop for one deployment:
// one corpus, one WAL, one bundle directory. All entry points — the
// periodic trigger loop, the admin endpoint's Kick, the CLI's RunOnce —
// serialize on one mutex, and retrains are single-flight: a kick while
// one is running is refused, not queued, so a flapping trigger cannot
// pile up training jobs.
type Manager struct {
	cfg     ManagerConfig
	trigger *Trigger

	mu          sync.Mutex
	busy        bool
	busyModel   string
	runs        int64
	failures    int64
	harvests    int64
	harvested   int64 // cumulative fixes added across harvests
	lastHarvest *HarvestStats
	lastRun     *RunRecord
	corpusGen   int64
	corpusFixes map[string]int
}

// NewManager builds a Manager; it performs no I/O until a harvest or
// kick runs.
func NewManager(cfg ManagerConfig) *Manager {
	if cfg.MinFixes <= 0 {
		cfg.MinFixes = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Manager{
		cfg:         cfg,
		trigger:     NewTrigger(cfg.Trigger),
		corpusFixes: map[string]int{},
	}
}

// HarvestNow runs one harvest pass into the corpus and records its
// stats.
func (m *Manager) HarvestNow() (HarvestStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.harvestLocked()
}

func (m *Manager) harvestLocked() (HarvestStats, error) {
	c, err := OpenCorpus(m.cfg.CorpusDir)
	if err != nil {
		return HarvestStats{}, err
	}
	stats, err := Harvest(m.cfg.StateDir, c, HarvestOptions{
		Retention:   m.cfg.Retention,
		MaxPerModel: m.cfg.MaxPerModel,
	})
	if err != nil {
		return stats, err
	}
	m.harvests++
	m.harvested += int64(stats.Added)
	m.lastHarvest = &stats
	m.corpusGen = c.Generation()
	m.corpusFixes = c.Counts()
	return stats, nil
}

// Kick starts an asynchronous harvest+retrain of one model, returning
// immediately. It fails fast when a retrain is already in flight or
// the model has no retrainable bundle on disk.
func (m *Manager) Kick(model, reason string) error {
	if _, err := os.Stat(filepath.Join(m.cfg.ModelsDir, model, "manifest.json")); err != nil {
		return fmt.Errorf("no bundle named %s under %s", model, m.cfg.ModelsDir)
	}
	m.mu.Lock()
	if m.busy {
		busy := m.busyModel
		m.mu.Unlock()
		return fmt.Errorf("retrain of %s already in flight", busy)
	}
	m.busy = true
	m.busyModel = model
	m.mu.Unlock()
	go m.runOne(model, reason)
	return nil
}

// RunOnce harvests and retrains one model synchronously (the CLI
// one-shot path).
func (m *Manager) RunOnce(model, reason string) (*RunRecord, error) {
	m.mu.Lock()
	if m.busy {
		busy := m.busyModel
		m.mu.Unlock()
		return nil, fmt.Errorf("retrain of %s already in flight", busy)
	}
	m.busy = true
	m.busyModel = model
	m.mu.Unlock()
	rec := m.runOne(model, reason)
	if rec.Status != "ok" {
		return rec, fmt.Errorf("retrain %s: %s", model, rec.Error)
	}
	return rec, nil
}

// runOne performs harvest + retrain + publish for one model and clears
// the busy flag. Callers must have set busy.
func (m *Manager) runOne(model, reason string) *RunRecord {
	rec := &RunRecord{Model: model, Reason: reason, Started: time.Now()}
	err := m.retrain(model, rec)
	rec.Finished = time.Now()
	m.mu.Lock()
	m.runs++
	if err != nil {
		m.failures++
		rec.Status = "error"
		rec.Error = err.Error()
	} else {
		rec.Status = "ok"
	}
	m.lastRun = rec
	m.busy = false
	m.busyModel = ""
	m.trigger.NoteRun(model, rec.Finished)
	m.mu.Unlock()
	if err != nil {
		m.cfg.Logf("retrain %s failed (%s): %v", model, reason, err)
	} else if rec.Result != nil {
		m.cfg.Logf("retrained %s (%s): %d seed + %d harvested samples, mean %.2fm, published to %s — entering shadow",
			model, reason, rec.Result.SeedSamples, rec.Result.UsedFixes, rec.Result.MeanErrM, rec.Result.BundlePath)
	}
	return rec
}

func (m *Manager) retrain(model string, rec *RunRecord) error {
	m.mu.Lock()
	_, err := m.harvestLocked()
	m.mu.Unlock()
	if err != nil {
		return fmt.Errorf("harvest: %w", err)
	}
	c, err := OpenCorpus(m.cfg.CorpusDir)
	if err != nil {
		return err
	}
	res, err := Run(RunOptions{
		ModelsDir: m.cfg.ModelsDir,
		Model:     model,
		Corpus:    c,
		MinFixes:  m.cfg.MinFixes,
		Lifecycle: m.cfg.Lifecycle,
		Logf:      m.cfg.Logf,
	})
	if err != nil {
		return err
	}
	rec.Result = res
	if m.cfg.Reload != nil {
		if err := m.cfg.Reload(); err != nil {
			return fmt.Errorf("published %s but reload failed: %w", res.BundlePath, err)
		}
	}
	return nil
}

// Tick runs one trigger evaluation: harvest, observe the sample
// source, and kick a retrain for each decision. Drift on a model that
// is not itself a retrainable bundle (an IMU session model — its
// active generation is the one that accumulates re-anchor error when
// the RF environment moves) retrains the WiFi bundles holding corpus
// fixes instead, since those produced the fixes the drift was measured
// against.
func (m *Manager) Tick(now time.Time) {
	if m.cfg.Samples == nil {
		return
	}
	if _, err := m.HarvestNow(); err != nil {
		m.cfg.Logf("retrain harvest failed: %v", err)
	}
	samples := m.cfg.Samples()
	m.mu.Lock()
	decisions := m.trigger.Observe(now, samples)
	m.mu.Unlock()
	for _, d := range decisions {
		for _, target := range m.targetsFor(d.Model) {
			m.cfg.Logf("retrain trigger fired: model=%s reason=%s delta=%.2fm -> retraining %s", d.Model, d.Reason, d.DeltaM, target)
			if err := m.Kick(target, d.Reason); err != nil {
				m.cfg.Logf("retrain kick %s: %v", target, err)
			}
		}
	}
}

// targetsFor maps a trigger decision to retrainable bundle names.
func (m *Manager) targetsFor(model string) []string {
	if m.retrainable(model) {
		return []string{model}
	}
	m.mu.Lock()
	counts := m.corpusFixes
	m.mu.Unlock()
	var out []string
	for name := range counts {
		if m.retrainable(name) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// retrainable reports whether a wifi bundle by that name exists.
func (m *Manager) retrainable(model string) bool {
	raw, err := os.ReadFile(filepath.Join(m.cfg.ModelsDir, model, "manifest.json"))
	if err != nil {
		return false
	}
	var man serve.Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return false
	}
	return man.Kind == serve.KindWiFi && man.WiFi != nil
}

// Run drives Tick on the given interval until ctx is done — the
// automatic half of the loop, started by noble-serve (when a retrain
// policy is configured) or by noble-retrain -watch.
func (m *Manager) Run(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			m.Tick(now)
		}
	}
}

// Status is the /debug/retrain view.
func (m *Manager) Status() any {
	m.mu.Lock()
	defer m.mu.Unlock()
	return map[string]any{
		"corpus": map[string]any{
			"dir":        m.cfg.CorpusDir,
			"generation": m.corpusGen,
			"fixes":      m.corpusFixes,
			"total":      totalFixes(m.corpusFixes),
		},
		"busy":         m.busy,
		"busy_model":   m.busyModel,
		"runs":         m.runs,
		"failures":     m.failures,
		"harvests":     m.harvests,
		"harvested":    m.harvested,
		"last_harvest": m.lastHarvest,
		"last_run":     m.lastRun,
		"trigger": map[string]any{
			"policy": m.cfg.Trigger.Describe(),
			"models": m.trigger.State(),
		},
	}
}

func totalFixes(counts map[string]int) int {
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}

// WritePrometheus renders the noble_retrain_* metric family.
func (m *Manager) WritePrometheus(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fmt.Fprintln(w, "# HELP noble_retrain_corpus_fixes Harvested re-anchor fixes in the training corpus, by model.")
	fmt.Fprintln(w, "# TYPE noble_retrain_corpus_fixes gauge")
	models := make([]string, 0, len(m.corpusFixes))
	for model := range m.corpusFixes {
		models = append(models, model)
	}
	sort.Strings(models)
	for _, model := range models {
		fmt.Fprintf(w, "noble_retrain_corpus_fixes{model=%q} %d\n", model, m.corpusFixes[model])
	}
	fmt.Fprintln(w, "# HELP noble_retrain_corpus_generation Persisted corpus generation (bumped by every harvest save).")
	fmt.Fprintln(w, "# TYPE noble_retrain_corpus_generation gauge")
	fmt.Fprintf(w, "noble_retrain_corpus_generation %d\n", m.corpusGen)
	fmt.Fprintln(w, "# HELP noble_retrain_harvested_fixes_total Fixes newly added to the corpus across all harvest passes.")
	fmt.Fprintln(w, "# TYPE noble_retrain_harvested_fixes_total counter")
	fmt.Fprintf(w, "noble_retrain_harvested_fixes_total %d\n", m.harvested)
	fmt.Fprintln(w, "# HELP noble_retrain_runs_total Retrain attempts, by outcome.")
	fmt.Fprintln(w, "# TYPE noble_retrain_runs_total counter")
	fmt.Fprintf(w, "noble_retrain_runs_total{status=\"ok\"} %d\n", m.runs-m.failures)
	fmt.Fprintf(w, "noble_retrain_runs_total{status=\"error\"} %d\n", m.failures)
	fmt.Fprintln(w, "# HELP noble_retrain_last_run_unixtime Wall clock of the last finished retrain (0 before any).")
	fmt.Fprintln(w, "# TYPE noble_retrain_last_run_unixtime gauge")
	last := int64(0)
	if m.lastRun != nil {
		last = m.lastRun.Finished.Unix()
	}
	fmt.Fprintf(w, "noble_retrain_last_run_unixtime %d\n", last)
	fmt.Fprintln(w, "# HELP noble_retrain_busy Whether a retrain is in flight.")
	fmt.Fprintln(w, "# TYPE noble_retrain_busy gauge")
	busy := 0
	if m.busy {
		busy = 1
	}
	fmt.Fprintf(w, "noble_retrain_busy %d\n", busy)
}
