package retrain

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"noble/internal/dataset"
	"noble/internal/geo"
	"noble/internal/serve"
	"noble/internal/train"
)

// ErrTooFewFixes is returned when the corpus holds fewer fixes for the
// model than RunOptions.MinFixes — a retrain on a near-empty corpus
// would just reproduce the seed model, so the runner refuses.
var ErrTooFewFixes = errors.New("retrain: too few harvested fixes")

// RunOptions is one retrain of one bundle.
type RunOptions struct {
	// ModelsDir is the bundle directory noble-serve watches; the model's
	// existing manifest supplies the generation spec, training recipe,
	// and precision tier the retrain reproduces.
	ModelsDir string
	// Model is the bundle name to retrain. Must be a WiFi bundle with a
	// synthetic generation spec (the only kind whose architecture can be
	// rebuilt deterministically).
	Model string
	// Corpus supplies the harvested fixes mixed into the training split.
	Corpus *Corpus
	// MinFixes refuses to retrain below this corpus size (default 1).
	MinFixes int
	// Lifecycle, when set, replaces the bundle's lifecycle.json sidecar
	// on publish; nil leaves whatever sidecar the bundle already
	// declares (or the default full-auto pipeline). Either way the new
	// generation enters SHADOW and must earn promotion — Immediate is
	// ignored on retrain publishes, exactly because nobody validated
	// these weights yet.
	Lifecycle *serve.LifecycleSpec
	// Logf receives progress lines (nil discards).
	Logf func(format string, args ...any)
}

// RunResult is what a retrain produced.
type RunResult struct {
	Model       string        `json:"model"`
	SeedSamples int           `json:"seed_samples"`
	CorpusFixes int           `json:"corpus_fixes"` // fixes in corpus for the model
	UsedFixes   int           `json:"used_fixes"`   // after dimension filtering
	MeanErrM    float64       `json:"mean_err_m"`   // on the seed test split
	Int8        bool          `json:"int8"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	BundlePath  string        `json:"bundle_path"`
}

// Run retrains one bundle on its seed survey plus the model's harvested
// corpus and republishes it in place. The publish path is the same one
// noble-train uses — including the int8 calibration gate for quantized
// bundles — and the registry's reload places the republished bundle in
// shadow, so the retrained generation serves nothing until the
// lifecycle controller (or an operator) promotes it on live evidence.
func Run(o RunOptions) (*RunResult, error) {
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if o.MinFixes <= 0 {
		o.MinFixes = 1
	}

	raw, err := os.ReadFile(filepath.Join(o.ModelsDir, o.Model, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("reading bundle manifest: %w", err)
	}
	var man serve.Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("decoding bundle manifest: %w", err)
	}
	if man.Kind != serve.KindWiFi || man.WiFi == nil {
		return nil, fmt.Errorf("bundle %s is kind %q without a generation spec; only synthetic wifi bundles can be retrained", o.Model, man.Kind)
	}

	ds, err := man.WiFi.BuildWiFiDataset()
	if err != nil {
		return nil, fmt.Errorf("rebuilding seed survey: %w", err)
	}

	fixes := o.Corpus.Fixes(o.Model)
	if len(fixes) < o.MinFixes {
		return nil, fmt.Errorf("%w: %d for %s (want >= %d)", ErrTooFewFixes, len(fixes), o.Model, o.MinFixes)
	}
	extra, skipped := FixesToSamples(fixes, ds)
	if skipped > 0 {
		logf("retrain %s: skipped %d fixes with mismatched fingerprint dimension", o.Model, skipped)
	}
	if len(extra) < o.MinFixes {
		return nil, fmt.Errorf("%w: %d usable for %s (want >= %d)", ErrTooFewFixes, len(extra), o.Model, o.MinFixes)
	}

	opts := train.Options{
		Data:       ds,
		Spec:       man.WiFi,
		Config:     man.WiFi.Config,
		Extra:      extra,
		BundleDir:  o.ModelsDir,
		BundleName: o.Model,
		Lifecycle:  o.Lifecycle,
		Printf: func(format string, args ...any) {
			logf("retrain %s: %s", o.Model, strings.TrimSuffix(fmt.Sprintf(format, args...), "\n"))
		},
	}
	if man.Precision != nil {
		opts.Precision = man.Precision.Mode
		opts.ErrorBudgetPct = man.Precision.ErrorBudgetPct
	}

	start := time.Now()
	res, err := train.Run(opts)
	if err != nil {
		return nil, err
	}
	out := &RunResult{
		Model:       o.Model,
		SeedSamples: len(ds.Train),
		CorpusFixes: len(fixes),
		UsedFixes:   len(extra),
		Int8:        res.Calib != nil,
		Elapsed:     time.Since(start),
		BundlePath:  res.BundlePath,
	}
	if res.TestStats != nil {
		out.MeanErrM = res.TestStats.Mean
	}
	return out, nil
}

// FixesToSamples converts corpus fixes into training samples for the
// given seed survey: the fingerprint is already a normalized
// model-input vector (it is byte-for-byte what the session submitted
// and the journal recorded), the fix position is the label, and
// building/floor — which fixes don't carry — are copied from the
// nearest seed training sample so the auxiliary heads keep valid
// targets. Fixes whose fingerprint dimension doesn't match the survey
// (produced by a different model) are skipped and counted.
func FixesToSamples(fixes []Fix, ds *dataset.WiFi) (samples []dataset.WiFiSample, skipped int) {
	for i := range fixes {
		f := &fixes[i]
		if len(f.Fingerprint) != ds.NumWAPs {
			skipped++
			continue
		}
		b, fl := nearestLabels(ds, f.X, f.Y)
		samples = append(samples, dataset.WiFiSample{
			Features: f.Fingerprint,
			Pos:      geo.Point{X: f.X, Y: f.Y},
			Building: b,
			Floor:    fl,
		})
	}
	return samples, skipped
}

// nearestLabels finds the building/floor of the seed training sample
// closest to (x, y).
func nearestLabels(ds *dataset.WiFi, x, y float64) (building, floor int) {
	best := -1.0
	for i := range ds.Train {
		s := &ds.Train[i]
		dx, dy := s.Pos.X-x, s.Pos.Y-y
		d := dx*dx + dy*dy
		if best < 0 || d < best {
			best = d
			building, floor = s.Building, s.Floor
		}
	}
	return building, floor
}
