package retrain

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"noble/internal/store"
)

// Journal event builders for harvest tests.

func createEvent(id string, gen, seq int64) *store.Event {
	return &store.Event{
		Type: store.EvCreate, Session: id, Gen: gen, Seq: seq, Time: gen + seq,
		Create: &store.CreateEvent{Model: "imu-m", Window: 2, SegDim: 3},
	}
}

func stepsEvent(id string, gen, seq int64) *store.Event {
	return &store.Event{
		Type: store.EvSteps, Session: id, Gen: gen, Seq: seq, Time: gen + seq,
		Steps: &store.StepsEvent{
			SegDim: 3, Count: 1, Features: []float64{1, 2, 3},
			Preds: []store.PredRecord{{EndX: 1, EndY: 2, Class: 3}},
		},
	}
}

func fixEvent(id string, gen, seq int64, model string, x, y float64) *store.Event {
	return &store.Event{
		Type: store.EvReAnchor, Session: id, Gen: gen, Seq: seq, Time: gen + seq,
		ReAnchor: &store.ReAnchorEvent{X: x, Y: y, WiFiModel: model, Fingerprint: []float64{0.1, 0.5, 0.9}},
	}
}

func openJournal(t *testing.T, dir string) *store.Journal {
	t.Helper()
	j, err := store.Open(store.Config{Dir: dir, Shards: 1, Fsync: store.FsyncNever, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j
}

func mustAppend(t *testing.T, j *store.Journal, evs ...*store.Event) {
	t.Helper()
	for _, e := range evs {
		if err := j.Append(e); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := j.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
}

// TestHarvestDedupAcrossOverlappingScans drives the corpus through the
// journal's real lifecycle: repeated harvests of a LIVE journal re-read
// the same segment files (full overlap — dedup must add nothing),
// compaction folds scanned fixes into a fingerprint-less snapshot
// (making them unharvestable, which is why the corpus is the durable
// copy), and post-compaction fixes arrive as new corpus entries.
func TestHarvestDedupAcrossOverlappingScans(t *testing.T) {
	state := t.TempDir()
	corpusDir := filepath.Join(t.TempDir(), "corpus")
	j := openJournal(t, state)
	mustAppend(t, j,
		createEvent("dev-a", 100, 1),
		stepsEvent("dev-a", 100, 2),
		fixEvent("dev-a", 100, 3, "wifi-m", 1, 2),
		fixEvent("dev-a", 100, 4, "wifi-m", 3, 4),
	)

	// First harvest against the live journal.
	c, err := OpenCorpus(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Harvest(state, c, HarvestOptions{})
	if err != nil {
		t.Fatalf("harvest 1: %v", err)
	}
	if stats.Scanned != 2 || stats.Added != 2 || stats.Total != 2 {
		t.Fatalf("harvest 1 stats %+v, want 2 scanned / 2 added / 2 total", stats)
	}

	// Second harvest with nothing new: the scan re-reads the exact same
	// segment files, and (session, gen, seq) dedup must absorb all of it.
	c2, err := OpenCorpus(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	stats, err = Harvest(state, c2, HarvestOptions{})
	if err != nil {
		t.Fatalf("harvest 2: %v", err)
	}
	if stats.Scanned != 2 || stats.Added != 0 || stats.Total != 2 {
		t.Fatalf("harvest 2 stats %+v, want 2 scanned / 0 added / 2 total", stats)
	}

	// Compact: the harvested fixes fold into a snapshot (no
	// fingerprints) and their segments are pruned. A fix appended after
	// compaction is the only one the next scan can see.
	err = j.Compact(func(shard int) []store.SessionSnapshot {
		return []store.SessionSnapshot{{
			ID: "dev-a", Model: "imu-m", Gen: 100, LastUsed: 104, Seq: 4, Steps: 1,
			Tracker: store.TrackerSnapshot{Window: 2, SegDim: 3, Segments: []float64{1, 2, 3}},
		}}
	})
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	mustAppend(t, j, fixEvent("dev-a", 100, 5, "wifi-m", 5, 6))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	c3, err := OpenCorpus(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	stats, err = Harvest(state, c3, HarvestOptions{})
	if err != nil {
		t.Fatalf("harvest 3: %v", err)
	}
	if stats.Scanned != 1 || stats.Added != 1 || stats.Total != 3 {
		t.Fatalf("harvest 3 stats %+v, want 1 scanned / 1 added / 3 total", stats)
	}

	// The corpus generation advanced once per save, and a cold reopen
	// sees all three fixes in time order.
	final, err := OpenCorpus(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if final.Generation() != 3 || final.Len() != 3 {
		t.Fatalf("reopened corpus: gen=%d len=%d, want gen=3 len=3", final.Generation(), final.Len())
	}
	fixes := final.Fixes("wifi-m")
	for i := 1; i < len(fixes); i++ {
		if fixes[i].Time < fixes[i-1].Time {
			t.Fatalf("corpus not time-ordered: %+v", fixes)
		}
	}
	if fixes[2].X != 5 || fixes[2].Y != 6 {
		t.Fatalf("post-compaction fix payload: %+v", fixes[2])
	}
}

// TestCorpusPruneRetentionAndCap: retention drops by record wall clock,
// the per-model cap keeps the newest N, and pruned keys leave the dedup
// set.
func TestCorpusPruneRetentionAndCap(t *testing.T) {
	c, err := OpenCorpus(filepath.Join(t.TempDir(), "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000000, 0)
	mk := func(seq int64, age time.Duration) store.ReAnchorFix {
		return store.ReAnchorFix{
			Session: "s", Gen: 1, Seq: seq, Time: now.Add(-age).UnixNano(),
			WiFiModel: "wifi-m", Fingerprint: []float64{1}, X: float64(seq),
		}
	}
	added := c.Add([]store.ReAnchorFix{
		mk(1, 10*time.Hour), // too old
		mk(2, 3*time.Hour),
		mk(3, 2*time.Hour),
		mk(4, time.Hour),
	})
	if added != 4 {
		t.Fatalf("added %d, want 4", added)
	}
	if pruned := c.Prune(now, 5*time.Hour, 2); pruned != 2 {
		t.Fatalf("pruned %d, want 2 (1 by age, 1 by cap)", pruned)
	}
	fixes := c.Fixes("wifi-m")
	if len(fixes) != 2 || fixes[0].Seq != 3 || fixes[1].Seq != 4 {
		t.Fatalf("kept %+v, want the newest two (seq 3, 4)", fixes)
	}
	// Pruned keys left the dedup set: the same fix can be re-added.
	if re := c.Add([]store.ReAnchorFix{mk(2, 3*time.Hour)}); re != 1 {
		t.Fatalf("re-add after prune: added %d, want 1", re)
	}
}

// TestCorpusSaveSweepsOldShards: each Save writes generation-named
// shards and removes the previous generation's files, so the corpus
// directory never accumulates garbage.
func TestCorpusSaveSweepsOldShards(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	c, err := OpenCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Add([]store.ReAnchorFix{{Session: "s", Gen: 1, Seq: 1, Time: 1, WiFiModel: "m", Fingerprint: []float64{1}}})
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	c.Add([]store.ReAnchorFix{{Session: "s", Gen: 1, Seq: 2, Time: 2, WiFiModel: "m", Fingerprint: []float64{1}}})
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var shards []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "fixes-") {
			shards = append(shards, e.Name())
		}
	}
	if len(shards) != 1 || !strings.Contains(shards[0], "-g2") {
		t.Fatalf("shard files after two saves: %v, want only the g2 shard", shards)
	}
}
