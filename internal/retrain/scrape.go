package retrain

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// This file feeds the drift trigger from a LIVE noble-serve over HTTP:
// ScrapeLifecycle reads the /metrics exposition and reduces the
// noble_lifecycle_reanchor_error_meters histogram (cumulative count and
// sum per model) plus the active generation number from
// noble_model_info into trigger Samples. Driving the trigger off the
// public metrics plane — rather than a private RPC — means the
// noble-retrain daemon needs nothing from the server that an operator's
// dashboard doesn't already have, and the numbers the trigger fires on
// are exactly the numbers on the graphs.

// Metric names and labels consumed by the scraper.
const (
	metricErrSum   = "noble_lifecycle_reanchor_error_meters_sum"
	metricErrCount = "noble_lifecycle_reanchor_error_meters_count"
	metricInfo     = "noble_model_info"
	labelActive    = "active"
)

// ScrapeLifecycle fetches url (a noble-serve /metrics endpoint) and
// returns one Sample per model with an active generation.
func ScrapeLifecycle(url string) ([]Sample, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scraping %s: %s", url, resp.Status)
	}
	return ParseLifecycleMetrics(resp.Body)
}

// ParseLifecycleMetrics reduces a Prometheus text exposition to
// per-model active-generation Samples.
func ParseLifecycleMetrics(r io.Reader) ([]Sample, error) {
	byModel := map[string]*Sample{}
	get := func(model string) *Sample {
		s, ok := byModel[model]
		if !ok {
			s = &Sample{Model: model}
			byModel[model] = s
		}
		return s
	}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, value, ok := parseMetricLine(line)
		if !ok {
			continue
		}
		switch name {
		case metricErrSum, metricErrCount:
			if labels["stage"] != labelActive {
				continue
			}
			model := labels["model"]
			if model == "" {
				continue
			}
			if _, seen := byModel[model]; !seen {
				order = append(order, model)
			}
			s := get(model)
			if name == metricErrSum {
				s.ErrorSumM = value
			} else {
				s.Scores = int64(value)
			}
		case metricInfo:
			if labels["stage"] != labelActive {
				continue
			}
			model := labels["name"]
			if model == "" {
				continue
			}
			if _, seen := byModel[model]; !seen {
				order = append(order, model)
			}
			gen, err := strconv.Atoi(labels["generation"])
			if err == nil {
				get(model).Generation = gen
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Sample, 0, len(order))
	for _, m := range order {
		out = append(out, *byModel[m])
	}
	return out, nil
}

// parseMetricLine splits `name{k="v",...} value` (labels optional).
// Label values are Go-quoted by the exporters this reads, so
// strconv.Unquote round-trips them exactly.
func parseMetricLine(line string) (name string, labels map[string]string, value float64, ok bool) {
	rest := line
	labels = map[string]string{}
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", nil, 0, false
		}
		for _, pair := range splitLabels(rest[i+1 : j]) {
			k, v, found := strings.Cut(pair, "=")
			if !found {
				continue
			}
			if uq, err := strconv.Unquote(v); err == nil {
				labels[k] = uq
			}
		}
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		var found bool
		name, rest, found = strings.Cut(rest, " ")
		if !found {
			return "", nil, 0, false
		}
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", nil, 0, false
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, false
	}
	return name, labels, v, true
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
