// Package retrain closes the model lifecycle loop: it harvests the
// WiFi re-anchor fixes the session WAL already records into a durable
// training corpus, decides when accumulated drift warrants a retrain,
// and re-runs the noble-train path (internal/train) on seed data
// augmented with the harvested corpus — publishing the result back
// into the bundle directory, where the PR-9 deployment pipeline places
// it in SHADOW and the lifecycle controller decides, on live evidence,
// whether it ever serves. The package never touches the registry or
// deployment state directly: a bad retrain is structurally incapable
// of reaching traffic.
//
// NObLe's premise makes this loop cheap: every re-anchor fix is a
// fingerprint labeled with the position the deployment accepted as
// ground truth — free supervision (the find3/UNILoc argument for
// server-side refresh under RF drift). The fix position for a
// fingerprint-produced anchor is the serving model's own localize
// answer, so retraining on the corpus alone would only distill the
// teacher; mixing it with the seed survey anchors the grid geometry
// while the harvested mass re-weights training toward the regions
// devices actually occupy. The accuracy gate and the shadow→canary→
// active pipeline are what make that safe to do unattended.
package retrain

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"noble/internal/store"
)

// corpusVersion is the on-disk corpus format version.
const corpusVersion = 1

// metaFile is the corpus index filename.
const metaFile = "corpus.json"

// Fix is one corpus entry: a harvested store.ReAnchorFix with JSON
// field names pinned (the corpus is an on-disk format read across
// retrain generations, not an in-memory convenience).
type Fix struct {
	Session string `json:"session"`
	Gen     int64  `json:"gen"`
	Seq     int64  `json:"seq"`
	Time    int64  `json:"time"`

	WiFiModel   string    `json:"wifi_model"`
	Fingerprint []float64 `json:"fingerprint"`
	X           float64   `json:"x"`
	Y           float64   `json:"y"`

	SegDim int       `json:"seg_dim,omitempty"`
	Window []float64 `json:"window,omitempty"`
}

// key is the dedup identity: a session incarnation plus sequence number
// names exactly one WAL record, so re-harvesting overlapping segment
// files (or a snapshot-covered prefix re-read through later segments)
// can never double-count a fix.
func (f *Fix) key() string {
	return f.Session + "\x00" + strconv.FormatInt(f.Gen, 10) + "\x00" + strconv.FormatInt(f.Seq, 10)
}

// corpusMeta is the corpus.json index: version, a monotonically
// increasing generation (bumped by every Save), and the per-model shard
// files the fixes live in.
type corpusMeta struct {
	Version    int                    `json:"version"`
	Generation int64                  `json:"generation"`
	Models     map[string]*modelShard `json:"models"`
}

type modelShard struct {
	File     string `json:"file"`
	Fixes    int    `json:"fixes"`
	OldestNS int64  `json:"oldest_ns"`
	NewestNS int64  `json:"newest_ns"`
}

// Corpus is the on-disk training corpus: corpus.json plus one JSON
// shard per WiFi model. Load with OpenCorpus, mutate with Add/Prune,
// persist with Save. Not safe for concurrent use; the manager and the
// CLI both serialize access.
type Corpus struct {
	dir   string
	meta  corpusMeta
	fixes map[string][]Fix // per model, (Time, Session, Seq) order
	seen  map[string]struct{}
}

// OpenCorpus loads the corpus at dir, or returns an empty corpus when
// the directory (or its index) does not exist yet.
func OpenCorpus(dir string) (*Corpus, error) {
	c := &Corpus{
		dir:   dir,
		meta:  corpusMeta{Version: corpusVersion, Models: map[string]*modelShard{}},
		fixes: map[string][]Fix{},
		seen:  map[string]struct{}{},
	}
	raw, err := os.ReadFile(filepath.Join(dir, metaFile))
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("reading corpus index: %w", err)
	}
	if err := json.Unmarshal(raw, &c.meta); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", metaFile, err)
	}
	if c.meta.Version != corpusVersion {
		return nil, fmt.Errorf("corpus version %d (this build reads %d)", c.meta.Version, corpusVersion)
	}
	if c.meta.Models == nil {
		c.meta.Models = map[string]*modelShard{}
	}
	for model, sh := range c.meta.Models {
		raw, err := os.ReadFile(filepath.Join(dir, sh.File))
		if err != nil {
			return nil, fmt.Errorf("reading corpus shard %s: %w", sh.File, err)
		}
		var fixes []Fix
		if err := json.Unmarshal(raw, &fixes); err != nil {
			return nil, fmt.Errorf("decoding corpus shard %s: %w", sh.File, err)
		}
		c.fixes[model] = fixes
		for i := range fixes {
			c.seen[fixes[i].key()] = struct{}{}
		}
	}
	return c, nil
}

// Dir returns the corpus directory.
func (c *Corpus) Dir() string { return c.dir }

// Generation returns the persisted corpus generation (0 before the
// first Save).
func (c *Corpus) Generation() int64 { return c.meta.Generation }

// Add merges harvested fixes into the corpus, deduplicating by
// (session, gen, seq), and reports how many were new.
func (c *Corpus) Add(fixes []store.ReAnchorFix) int {
	added := 0
	for i := range fixes {
		f := Fix{
			Session:     fixes[i].Session,
			Gen:         fixes[i].Gen,
			Seq:         fixes[i].Seq,
			Time:        fixes[i].Time,
			WiFiModel:   fixes[i].WiFiModel,
			Fingerprint: fixes[i].Fingerprint,
			X:           fixes[i].X,
			Y:           fixes[i].Y,
			SegDim:      fixes[i].SegDim,
			Window:      fixes[i].Window,
		}
		k := f.key()
		if _, dup := c.seen[k]; dup {
			continue
		}
		c.seen[k] = struct{}{}
		c.fixes[f.WiFiModel] = append(c.fixes[f.WiFiModel], f)
		added++
	}
	return added
}

// Prune applies the retention policy: fixes older than the retention
// window (by record wall clock) are dropped, then each model's set is
// capped to the newest maxPerModel entries. Zero disables either
// bound. It reports how many fixes were removed.
func (c *Corpus) Prune(now time.Time, retention time.Duration, maxPerModel int) int {
	removed := 0
	cutoff := int64(0)
	if retention > 0 {
		cutoff = now.Add(-retention).UnixNano()
	}
	for model, fixes := range c.fixes {
		sort.SliceStable(fixes, func(i, j int) bool { return fixes[i].Time < fixes[j].Time })
		kept := fixes[:0]
		for i := range fixes {
			if cutoff > 0 && fixes[i].Time < cutoff {
				delete(c.seen, fixes[i].key())
				removed++
				continue
			}
			kept = append(kept, fixes[i])
		}
		if maxPerModel > 0 && len(kept) > maxPerModel {
			for i := range kept[:len(kept)-maxPerModel] {
				delete(c.seen, kept[i].key())
				removed++
			}
			kept = append(kept[:0], kept[len(kept)-maxPerModel:]...)
		}
		if len(kept) == 0 {
			delete(c.fixes, model)
			continue
		}
		c.fixes[model] = kept
	}
	return removed
}

// Fixes returns the model's corpus entries in time order.
func (c *Corpus) Fixes(model string) []Fix { return c.fixes[model] }

// Models returns the model names with at least one fix, sorted.
func (c *Corpus) Models() []string {
	out := make([]string, 0, len(c.fixes))
	for m := range c.fixes {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Len returns the total fix count across models.
func (c *Corpus) Len() int {
	n := 0
	for _, fixes := range c.fixes {
		n += len(fixes)
	}
	return n
}

// Counts returns the per-model fix counts.
func (c *Corpus) Counts() map[string]int {
	out := make(map[string]int, len(c.fixes))
	for m, fixes := range c.fixes {
		out[m] = len(fixes)
	}
	return out
}

// Save persists the corpus as a new generation: every model's fixes are
// written to a fresh generation-named shard (atomic tmp+rename, fsync
// before the rename lands), corpus.json is swapped to point at the new
// shards, and the previous generation's shard files are removed. A
// crash mid-save leaves the old index intact and at worst some
// unreferenced shard files, which the next Save sweeps.
func (c *Corpus) Save() error {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	gen := c.meta.Generation + 1
	meta := corpusMeta{Version: corpusVersion, Generation: gen, Models: map[string]*modelShard{}}
	for _, model := range c.Models() {
		fixes := c.fixes[model]
		sort.SliceStable(fixes, func(i, j int) bool { return fixes[i].Time < fixes[j].Time })
		sh := &modelShard{
			File:     fmt.Sprintf("fixes-%s-g%d.json", model, gen),
			Fixes:    len(fixes),
			OldestNS: fixes[0].Time,
			NewestNS: fixes[len(fixes)-1].Time,
		}
		if err := writeFileAtomic(filepath.Join(c.dir, sh.File), fixes); err != nil {
			return fmt.Errorf("writing corpus shard for %s: %w", model, err)
		}
		meta.Models[model] = sh
	}
	if err := writeFileAtomic(filepath.Join(c.dir, metaFile), &meta); err != nil {
		return fmt.Errorf("writing corpus index: %w", err)
	}
	old := c.meta
	c.meta = meta
	// The old generation's shards are garbage once the index no longer
	// references them; removal failures are harmless (swept next Save).
	for _, sh := range old.Models {
		still := false
		for _, now := range meta.Models {
			if now.File == sh.File {
				still = true
			}
		}
		if !still {
			os.Remove(filepath.Join(c.dir, sh.File))
		}
	}
	return nil
}

// writeFileAtomic marshals v as JSON and lands it at path via a
// same-directory tmp file, fsync, and rename — the corpus must never be
// half-written, and Close/Sync errors are checked because a dropped
// buffer here silently loses training evidence.
func writeFileAtomic(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
