package energy

import (
	"math"
	"testing"
)

func TestInferenceMonotoneInMACs(t *testing.T) {
	p := JetsonTX2()
	small := p.Inference(1e5)
	big := p.Inference(1e7)
	if big.Energy <= small.Energy || big.Latency <= small.Latency {
		t.Fatal("cost must grow with MACs")
	}
}

func TestInferenceZeroMACsIsOverheadOnly(t *testing.T) {
	p := JetsonTX2()
	e := p.Inference(0)
	if e.Energy != p.BaseEnergy || e.Latency != p.BaseLatency {
		t.Fatalf("zero-MAC inference %+v", e)
	}
}

func TestInferenceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	JetsonTX2().Inference(-1)
}

func TestWiFiCalibrationNearPaper(t *testing.T) {
	// The paper's Wi-Fi model is a 2×128 trunk over ~520 inputs with a
	// ~1000-class output: roughly 0.3 MMAC. Its measured cost was
	// 0.00518 J at 2 ms. Our profile should land within 2× on both.
	p := JetsonTX2()
	est := p.Inference(300_000)
	if est.Energy < 0.00518/2 || est.Energy > 0.00518*2 {
		t.Fatalf("WiFi-class energy %v J, paper 0.00518 J", est.Energy)
	}
	if est.Latency < 0.002/2 || est.Latency > 0.002*2 {
		t.Fatalf("WiFi-class latency %v s, paper 0.002 s", est.Latency)
	}
}

func TestIMUCalibrationNearPaper(t *testing.T) {
	// The IMU model's projection over 50 segments of 768×6 readings is
	// roughly 4 MMAC; the paper measured 0.08599 J at 5 ms.
	p := JetsonTX2()
	est := p.Inference(4_000_000)
	if est.Energy < 0.08599/2 || est.Energy > 0.08599*2 {
		t.Fatalf("IMU-class energy %v J, paper 0.08599 J", est.Energy)
	}
	if est.Latency < 0.005/2 || est.Latency > 0.005*2 {
		t.Fatalf("IMU-class latency %v s, paper 0.005 s", est.Latency)
	}
}

func TestTrackPathReproduces27x(t *testing.T) {
	// §V-D: 8 s path, ~0.086 J inference + 0.1356 J sensors ≈ 0.22 J
	// vs GPS 5.925 J ⇒ ≈27×.
	p := JetsonTX2()
	b := p.TrackPath(4_000_000, 8)
	if math.Abs(b.Sensor-0.1356) > 1e-9 {
		t.Fatalf("sensor energy %v want 0.1356", b.Sensor)
	}
	if b.GPS != GPSEnergyPerFix {
		t.Fatal("GPS constant")
	}
	if b.Ratio < 15 || b.Ratio > 45 {
		t.Fatalf("GPS ratio %v, paper reports ≈27", b.Ratio)
	}
	if math.Abs(b.Total-(b.Inference.Energy+b.Sensor)) > 1e-12 {
		t.Fatal("total must be inference + sensor")
	}
}

func TestTrackPathNegativeDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	JetsonTX2().TrackPath(1000, -1)
}

func TestPaperConstants(t *testing.T) {
	if GPSEnergyPerFix != 5.925 {
		t.Fatal("GPS constant must match the paper")
	}
	if math.Abs(IMUSensorPower*8-0.1356) > 1e-12 {
		t.Fatal("IMU sensor power must integrate to the paper's 0.1356 J per 8 s")
	}
}
