// Package energy is the analytical substitute for the paper's physical
// power measurements on the Nvidia Jetson TX2 (§IV-C, §V-D): inference
// energy is modeled as a fixed per-invocation overhead plus a per-MAC
// cost, latency as a fixed overhead plus MACs over throughput, with the
// device constants calibrated so the paper's own models land near their
// reported numbers (Wi-Fi: 0.00518 J / 2 ms; IMU: 0.08599 J / 5 ms). GPS
// and inertial-sensor energy constants come from the paper's reference
// [8], which underlies its headline "27× less energy than GPS" claim.
package energy

import "fmt"

// Paper-quoted constants (§V-D, citing [8]).
const (
	// GPSEnergyPerFix is the energy of one GPS position fix in joules.
	GPSEnergyPerFix = 5.925
	// IMUSensorPower is the inertial sensor draw in watts
	// (0.1356 J over an 8 s path in the paper).
	IMUSensorPower = 0.1356 / 8.0
)

// DeviceProfile models an edge inference device.
type DeviceProfile struct {
	Name string
	// EnergyPerMAC is joules per multiply-accumulate.
	EnergyPerMAC float64
	// BaseEnergy is the fixed per-inference overhead in joules
	// (kernel launch, memory wake-up).
	BaseEnergy float64
	// MACRate is sustained multiply-accumulates per second.
	MACRate float64
	// BaseLatency is the fixed per-inference latency in seconds.
	BaseLatency float64
}

// JetsonTX2 returns the TX2-class profile calibrated against the paper's
// measurements.
func JetsonTX2() DeviceProfile {
	return DeviceProfile{
		Name:         "jetson-tx2",
		EnergyPerMAC: 1.5e-8,
		BaseEnergy:   8e-4,
		MACRate:      1.2e9,
		BaseLatency:  1.5e-3,
	}
}

// Estimate is one inference cost prediction.
type Estimate struct {
	Energy  float64 // joules
	Latency float64 // seconds
}

// Inference estimates the cost of a single forward pass of macs
// multiply-accumulates.
func (p DeviceProfile) Inference(macs int64) Estimate {
	if macs < 0 {
		panic(fmt.Sprintf("energy: negative MAC count %d", macs))
	}
	return Estimate{
		Energy:  p.BaseEnergy + float64(macs)*p.EnergyPerMAC,
		Latency: p.BaseLatency + float64(macs)/p.MACRate,
	}
}

// PathBudget is the full §V-D accounting for one tracked path.
type PathBudget struct {
	Inference Estimate
	Sensor    float64 // joules spent by the IMU sensors over the path
	Total     float64 // inference + sensor energy
	GPS       float64 // energy of the GPS alternative
	Ratio     float64 // GPS / Total — the paper reports ≈27×
}

// TrackPath estimates the energy budget of tracking one path of the given
// duration with a model of macs multiply-accumulates, and compares it to a
// single GPS fix, reproducing the paper's 27× comparison.
func (p DeviceProfile) TrackPath(macs int64, durationSec float64) PathBudget {
	if durationSec < 0 {
		panic(fmt.Sprintf("energy: negative duration %v", durationSec))
	}
	inf := p.Inference(macs)
	sensor := IMUSensorPower * durationSec
	total := inf.Energy + sensor
	return PathBudget{
		Inference: inf,
		Sensor:    sensor,
		Total:     total,
		GPS:       GPSEnergyPerFix,
		Ratio:     GPSEnergyPerFix / total,
	}
}
