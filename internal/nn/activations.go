package nn

import (
	"math"
	"math/rand"

	"noble/internal/mat"
)

// Tanh is the hyperbolic tangent activation used throughout the paper's
// Wi-Fi model ("We used hyperbolic tangent activation functions", §IV-A).
type Tanh struct {
	out *mat.Dense
}

// NewTanh returns a tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward applies tanh element-wise.
func (t *Tanh) Forward(x *mat.Dense, train bool) *mat.Dense {
	out := x.Map(math.Tanh)
	if train {
		t.out = out
	}
	return out
}

// Backward multiplies by 1 - tanh²(x) element-wise.
func (t *Tanh) Backward(dout *mat.Dense) *mat.Dense {
	if t.out == nil {
		panic("nn: Tanh.Backward before Forward(train=true)")
	}
	dx := dout.Clone()
	for i, y := range t.out.Data {
		dx.Data[i] *= 1 - y*y
	}
	return dx
}

// Params returns nil; tanh has no learnable parameters.
func (t *Tanh) Params() []*Param { return nil }

// ReLU is the rectified linear activation, provided for ablations.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward applies max(0, x) element-wise.
func (r *ReLU) Forward(x *mat.Dense, train bool) *mat.Dense {
	out := x.Clone()
	if train {
		r.mask = make([]bool, len(x.Data))
	}
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		} else if train {
			r.mask[i] = true
		}
	}
	return out
}

// Backward zeroes gradients where the input was negative.
func (r *ReLU) Backward(dout *mat.Dense) *mat.Dense {
	if r.mask == nil {
		panic("nn: ReLU.Backward before Forward(train=true)")
	}
	dx := dout.Clone()
	for i := range dx.Data {
		if !r.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params returns nil; ReLU has no learnable parameters.
func (r *ReLU) Params() []*Param { return nil }

// Sigmoid is the logistic activation, used in the multi-label output
// interpretation of §III-C.
type Sigmoid struct {
	out *mat.Dense
}

// NewSigmoid returns a sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward applies 1/(1+e^-x) element-wise.
func (s *Sigmoid) Forward(x *mat.Dense, train bool) *mat.Dense {
	out := x.Map(sigmoid)
	if train {
		s.out = out
	}
	return out
}

// Backward multiplies by σ(x)·(1-σ(x)).
func (s *Sigmoid) Backward(dout *mat.Dense) *mat.Dense {
	if s.out == nil {
		panic("nn: Sigmoid.Backward before Forward(train=true)")
	}
	dx := dout.Clone()
	for i, y := range s.out.Data {
		dx.Data[i] *= y * (1 - y)
	}
	return dx
}

// Params returns nil; sigmoid has no learnable parameters.
func (s *Sigmoid) Params() []*Param { return nil }

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// Dropout randomly zeroes activations during training with probability P
// and rescales the survivors by 1/(1-P) (inverted dropout), acting as the
// identity at inference time. Included as a regularization extension.
type Dropout struct {
	P   float64
	rng *rand.Rand

	keep []float64
}

// NewDropout creates a dropout layer with drop probability p drawing from
// rng.
func NewDropout(p float64, rng *rand.Rand) *Dropout {
	return &Dropout{P: p, rng: rng}
}

// Forward drops units at random during training.
func (d *Dropout) Forward(x *mat.Dense, train bool) *mat.Dense {
	if !train || d.P <= 0 {
		d.keep = nil
		return x
	}
	out := x.Clone()
	d.keep = make([]float64, len(x.Data))
	scale := 1 / (1 - d.P)
	for i := range out.Data {
		if d.rng.Float64() < d.P {
			out.Data[i] = 0
			d.keep[i] = 0
		} else {
			out.Data[i] *= scale
			d.keep[i] = scale
		}
	}
	return out
}

// Backward applies the same mask to the gradient.
func (d *Dropout) Backward(dout *mat.Dense) *mat.Dense {
	if d.keep == nil {
		return dout
	}
	dx := dout.Clone()
	for i := range dx.Data {
		dx.Data[i] *= d.keep[i]
	}
	return dx
}

// Params returns nil; dropout has no learnable parameters.
func (d *Dropout) Params() []*Param { return nil }
