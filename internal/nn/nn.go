// Package nn is a small, dependency-free neural network framework built for
// the NObLe reproduction. It provides exactly the pieces the paper's models
// need — fully connected layers, batch normalization, tanh/relu/sigmoid
// activations, Xavier/He initialization, softmax cross-entropy, multi-label
// binary cross-entropy and mean-squared-error losses, SGD-with-momentum and
// Adam optimizers, a Sequential container, a MultiHead container (shared
// trunk with per-task heads, the paper's multi-label formulation), and a
// deterministic minibatch trainer.
//
// There is no autodiff: every layer implements an explicit Backward. The
// graphs in this repository are small and static, and explicit gradients
// keep the code auditable and allow exact numeric gradient checking (see
// GradCheck in the tests).
//
// Conventions: activations flow through *mat.Dense matrices in batch-major
// layout (rows are samples, columns are features). Forward(x, train) may
// cache whatever it needs for the next Backward; Backward(dout) returns the
// gradient with respect to the layer input and accumulates parameter
// gradients into Param.G. Callers zero gradients between steps with
// ZeroGrads.
package nn

import (
	"fmt"

	"noble/internal/mat"
)

// Param is one learnable tensor: its value W and accumulated gradient G,
// always shaped identically. Name is used for serialization and debugging.
type Param struct {
	Name string
	W    *mat.Dense
	G    *mat.Dense
}

// NewParam allocates a named r×c parameter with a zeroed gradient.
func NewParam(name string, r, c int) *Param {
	return &Param{Name: name, W: mat.New(r, c), G: mat.New(r, c)}
}

// Layer is the unit of composition: a differentiable transformation with
// optional learnable parameters.
type Layer interface {
	// Forward computes the layer output for the batch x. When train is
	// true the layer may behave stochastically (dropout) or use batch
	// statistics (batch norm) and must cache what Backward needs.
	Forward(x *mat.Dense, train bool) *mat.Dense
	// Backward takes dL/d(output) and returns dL/d(input), accumulating
	// dL/d(param) into the layer's Params. It must be called after a
	// Forward with train=true.
	Backward(dout *mat.Dense) *mat.Dense
	// Params returns the layer's learnable parameters (possibly empty).
	Params() []*Param
}

// StatHolder is implemented by layers carrying non-learnable state that
// must survive serialization (batch-norm running statistics). StatParams
// returns pseudo-parameters whose W matrices alias the live state.
type StatHolder interface {
	StatParams() []*Param
}

// ZeroGrads clears the gradient of every parameter in params.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.G.Zero()
	}
}

// ParamCount returns the total number of scalar learnable values.
func ParamCount(params []*Param) int {
	n := 0
	for _, p := range params {
		n += len(p.W.Data)
	}
	return n
}

// OneHotBatch encodes class indices as a len(classes)×k one-hot matrix.
// It panics if any class index is outside [0, k).
func OneHotBatch(classes []int, k int) *mat.Dense {
	out := mat.New(len(classes), k)
	for i, c := range classes {
		if c < 0 || c >= k {
			panic(fmt.Sprintf("nn: OneHotBatch class %d outside [0,%d)", c, k))
		}
		out.Set(i, c, 1)
	}
	return out
}

// Concat concatenates a and b column-wise: the result has a.Cols+b.Cols
// columns. Row counts must match.
func Concat(a, b *mat.Dense) *mat.Dense {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("nn: Concat row mismatch %d vs %d", a.Rows, b.Rows))
	}
	out := mat.New(a.Rows, a.Cols+b.Cols)
	for i := 0; i < a.Rows; i++ {
		row := out.Row(i)
		copy(row[:a.Cols], a.Row(i))
		copy(row[a.Cols:], b.Row(i))
	}
	return out
}

// SplitCols splits m column-wise at column c, returning copies of the left
// (first c columns) and right (remaining) parts. Used to route gradients
// back through Concat.
func SplitCols(m *mat.Dense, c int) (left, right *mat.Dense) {
	if c < 0 || c > m.Cols {
		panic(fmt.Sprintf("nn: SplitCols at %d of %d", c, m.Cols))
	}
	left = mat.New(m.Rows, c)
	right = mat.New(m.Rows, m.Cols-c)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		copy(left.Row(i), row[:c])
		copy(right.Row(i), row[c:])
	}
	return left, right
}

// SelectRows gathers the given rows of m into a new matrix, in order.
func SelectRows(m *mat.Dense, idx []int) *mat.Dense {
	out := mat.New(len(idx), m.Cols)
	for i, r := range idx {
		copy(out.Row(i), m.Row(r))
	}
	return out
}
