package nn

import (
	"fmt"
	"math"
	"math/rand"

	"noble/internal/mat"
)

// InitScheme selects the weight initialization used by NewDense.
type InitScheme int

// Initialization schemes. The paper trains with Xavier (Glorot) uniform
// initialization [20]; He initialization is provided for the ReLU ablations.
const (
	InitXavier InitScheme = iota
	InitHe
	InitZero
)

// Dense is a fully connected layer computing y = x·W + b for a batch x.
// W is in×out, b is 1×out.
type Dense struct {
	In, Out int
	Weight  *Param
	Bias    *Param

	x *mat.Dense // cached input for Backward
}

// NewDense creates an in→out fully connected layer with the given
// initialization drawn from rng. The name prefixes the parameter names.
func NewDense(name string, in, out int, scheme InitScheme, rng *rand.Rand) *Dense {
	d := &Dense{
		In:     in,
		Out:    out,
		Weight: NewParam(name+".W", in, out),
		Bias:   NewParam(name+".b", 1, out),
	}
	switch scheme {
	case InitXavier:
		// Glorot uniform: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
		a := math.Sqrt(6 / float64(in+out))
		mat.FillUniform(d.Weight.W, rng, -a, a)
	case InitHe:
		mat.FillNormal(d.Weight.W, rng, 0, math.Sqrt(2/float64(in)))
	case InitZero:
		// weights stay zero
	default:
		panic(fmt.Sprintf("nn: unknown init scheme %d", scheme))
	}
	return d
}

// Forward computes x·W + b.
func (d *Dense) Forward(x *mat.Dense, train bool) *mat.Dense {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: Dense %d→%d got input with %d cols", d.In, d.Out, x.Cols))
	}
	if train {
		d.x = x
	}
	out := mat.MatMul(x, d.Weight.W)
	out.AddRowVec(d.Bias.W.Data)
	return out
}

// Backward accumulates dW = xᵀ·dout and db = Σ dout, returning dx = dout·Wᵀ.
func (d *Dense) Backward(dout *mat.Dense) *mat.Dense {
	if d.x == nil {
		panic("nn: Dense.Backward before Forward(train=true)")
	}
	d.Weight.G.AddInPlace(mat.MatMulATB(d.x, dout))
	bias := dout.SumRows()
	for j, v := range bias {
		d.Bias.G.Data[j] += v
	}
	return mat.MatMulABT(dout, d.Weight.W)
}

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.Weight, d.Bias} }

// FLOPs returns the approximate multiply-accumulate count for a single
// forward pass with batch size 1; used by the energy model.
func (d *Dense) FLOPs() int64 { return int64(2*d.In*d.Out + d.Out) }

// BlockDense applies one shared Dense transform to each of Blocks
// consecutive column-groups of the input. The input is batch×(Blocks·In);
// the output is batch×(Blocks·Out). It implements the paper's IMU
// "projection module", in which every IMU segment g_i is multiplied by the
// same trainable projection weight before concatenation (Fig. 5a).
type BlockDense struct {
	Blocks int
	Inner  *Dense
}

// NewBlockDense creates a shared projection applied independently to each
// of blocks segments of width in, producing out features per segment.
func NewBlockDense(name string, blocks, in, out int, scheme InitScheme, rng *rand.Rand) *BlockDense {
	return &BlockDense{Blocks: blocks, Inner: NewDense(name, in, out, scheme, rng)}
}

// Forward reshapes (batch, Blocks·In) to (batch·Blocks, In), applies the
// shared dense layer, and reshapes back. With train=false it writes no
// layer state — like every other layer's inference pass — so concurrent
// inference on a shared model is race-free (the serving layer relies on
// this when micro-batching is disabled).
func (b *BlockDense) Forward(x *mat.Dense, train bool) *mat.Dense {
	if x.Cols != b.Blocks*b.Inner.In {
		panic(fmt.Sprintf("nn: BlockDense expected %d cols, got %d", b.Blocks*b.Inner.In, x.Cols))
	}
	flat := x.Reshape(x.Rows*b.Blocks, b.Inner.In)
	out := b.Inner.Forward(flat, train)
	return out.Reshape(x.Rows, b.Blocks*b.Inner.Out)
}

// Backward routes the gradient through the shared dense layer. The batch
// size is recovered from dout, which matches the last Forward by the
// Layer contract.
func (b *BlockDense) Backward(dout *mat.Dense) *mat.Dense {
	batch := dout.Rows
	flat := dout.Reshape(batch*b.Blocks, b.Inner.Out)
	dx := b.Inner.Backward(flat)
	return dx.Reshape(batch, b.Blocks*b.Inner.In)
}

// Params returns the shared dense parameters.
func (b *BlockDense) Params() []*Param { return b.Inner.Params() }

// FLOPs returns the MAC count for one forward pass at batch size 1.
func (b *BlockDense) FLOPs() int64 { return int64(b.Blocks) * b.Inner.FLOPs() }
