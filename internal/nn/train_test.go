package nn

import (
	"bytes"
	"math"
	"testing"

	"noble/internal/mat"
)

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = ½‖w - c‖².
	p := NewParam("w", 1, 3)
	c := []float64{1, -2, 3}
	opt := NewSGD(0.1, 0.0)
	for i := 0; i < 200; i++ {
		for j := range p.W.Data {
			p.G.Data[j] = p.W.Data[j] - c[j]
		}
		opt.Step([]*Param{p})
		ZeroGrads([]*Param{p})
	}
	for j, want := range c {
		if math.Abs(p.W.Data[j]-want) > 1e-6 {
			t.Fatalf("w[%d]=%v want %v", j, p.W.Data[j], want)
		}
	}
}

func TestSGDMomentumFasterOnIllConditioned(t *testing.T) {
	run := func(momentum float64) int {
		p := NewParam("w", 1, 2)
		p.W.SetRow(0, []float64{5, 5})
		opt := NewSGD(0.02, momentum)
		for i := 0; i < 3000; i++ {
			// f = ½(w0² + 20·w1²) — ill-conditioned bowl.
			p.G.Data[0] = p.W.Data[0]
			p.G.Data[1] = 20 * p.W.Data[1]
			opt.Step([]*Param{p})
			ZeroGrads([]*Param{p})
			if math.Abs(p.W.Data[0]) < 1e-4 && math.Abs(p.W.Data[1]) < 1e-4 {
				return i
			}
		}
		return 3000
	}
	plain, withMomentum := run(0), run(0.9)
	if withMomentum >= plain {
		t.Fatalf("momentum (%d iters) should beat plain SGD (%d iters)", withMomentum, plain)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	p := NewParam("w", 1, 2)
	p.W.SetRow(0, []float64{4, -4})
	opt := NewAdam(0.05)
	for i := 0; i < 1000; i++ {
		p.G.Data[0] = p.W.Data[0]
		p.G.Data[1] = 100 * p.W.Data[1]
		opt.Step([]*Param{p})
		ZeroGrads([]*Param{p})
	}
	if math.Abs(p.W.Data[0]) > 1e-3 || math.Abs(p.W.Data[1]) > 1e-3 {
		t.Fatalf("Adam failed to converge: %v", p.W.Data)
	}
}

func TestSGDWeightDecayShrinks(t *testing.T) {
	p := NewParam("w", 1, 1)
	p.W.Data[0] = 1
	opt := NewSGD(0.1, 0)
	opt.WeightDecay = 0.5
	opt.Step([]*Param{p}) // grad 0, decay pulls toward 0
	if p.W.Data[0] >= 1 {
		t.Fatal("weight decay must shrink weights")
	}
}

func TestScaleLR(t *testing.T) {
	sgd := NewSGD(1.0, 0)
	sgd.ScaleLR(0.5)
	if sgd.LR != 0.5 {
		t.Fatalf("SGD LR=%v", sgd.LR)
	}
	adam := NewAdam(1.0)
	adam.ScaleLR(0.1)
	if math.Abs(adam.LR-0.1) > 1e-15 {
		t.Fatalf("Adam LR=%v", adam.LR)
	}
}

func TestClipGrads(t *testing.T) {
	p := NewParam("w", 1, 2)
	p.G.SetRow(0, []float64{3, 4}) // norm 5
	ClipGrads([]*Param{p}, 1)
	norm := math.Hypot(p.G.Data[0], p.G.Data[1])
	if math.Abs(norm-1) > 1e-12 {
		t.Fatalf("clipped norm=%v", norm)
	}
	// No-op cases.
	p.G.SetRow(0, []float64{0.1, 0.1})
	before := append([]float64(nil), p.G.Data...)
	ClipGrads([]*Param{p}, 10)
	ClipGrads([]*Param{p}, 0)
	for i := range before {
		if p.G.Data[i] != before[i] {
			t.Fatal("ClipGrads must not touch small gradients")
		}
	}
}

// xorProblem returns the classic non-linearly-separable toy task.
func xorProblem() (x, y *mat.Dense) {
	x = mat.FromRows([][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	y = mat.FromRows([][]float64{{0}, {1}, {1}, {0}})
	return
}

func TestTrainLearnsXOR(t *testing.T) {
	rng := mat.NewRand(30)
	net := NewSequential(
		NewDense("fc1", 2, 8, InitXavier, rng),
		NewTanh(),
		NewDense("fc2", 8, 1, InitXavier, rng),
	)
	x, y := xorProblem()
	loss := NewMSE()
	params := net.Params()
	cfg := TrainConfig{
		Epochs:    800,
		BatchSize: 4,
		Seed:      1,
		Optimizer: NewAdam(0.02),
	}
	final := Train(cfg, x.Rows, params, func(batch []int) float64 {
		bx, by := SelectRows(x, batch), SelectRows(y, batch)
		out := net.Forward(bx, true)
		l := loss.Forward(out, by)
		net.Backward(loss.Backward())
		return l
	}, nil)
	if final > 0.01 {
		t.Fatalf("XOR final loss %v", final)
	}
	pred := net.Forward(x, false)
	for i := 0; i < 4; i++ {
		if math.Abs(pred.At(i, 0)-y.At(i, 0)) > 0.25 {
			t.Fatalf("XOR pred[%d]=%v want %v", i, pred.At(i, 0), y.At(i, 0))
		}
	}
}

func TestTrainEarlyStop(t *testing.T) {
	p := NewParam("w", 1, 1)
	epochs := 0
	Train(TrainConfig{Epochs: 100, BatchSize: 1, Optimizer: NewSGD(0.1, 0)}, 2, []*Param{p},
		func(batch []int) float64 { return 0 },
		func(s EpochStats) bool {
			epochs++
			return s.Epoch >= 4 // stop after 5 epochs
		})
	if epochs != 5 {
		t.Fatalf("ran %d epochs want 5", epochs)
	}
}

func TestTrainLRDecayApplied(t *testing.T) {
	p := NewParam("w", 1, 1)
	opt := NewSGD(1.0, 0)
	Train(TrainConfig{Epochs: 3, BatchSize: 1, Optimizer: opt, LRDecay: 0.5}, 1, []*Param{p},
		func(batch []int) float64 { return 0 }, nil)
	if math.Abs(opt.LR-0.125) > 1e-12 {
		t.Fatalf("LR after 3 decays = %v want 0.125", opt.LR)
	}
}

func TestTrainDeterministic(t *testing.T) {
	run := func() float64 {
		rng := mat.NewRand(55)
		net := NewSequential(
			NewDense("fc1", 2, 4, InitXavier, rng),
			NewTanh(),
			NewDense("fc2", 4, 1, InitXavier, rng),
		)
		x, y := xorProblem()
		loss := NewMSE()
		return Train(TrainConfig{Epochs: 20, BatchSize: 2, Seed: 9, Optimizer: NewAdam(0.01)},
			x.Rows, net.Params(), func(batch []int) float64 {
				bx, by := SelectRows(x, batch), SelectRows(y, batch)
				out := net.Forward(bx, true)
				l := loss.Forward(out, by)
				net.Backward(loss.Backward())
				return l
			}, nil)
	}
	if run() != run() {
		t.Fatal("training must be bit-deterministic for a fixed seed")
	}
}

func TestMultiHeadStepDecreasesLoss(t *testing.T) {
	rng := mat.NewRand(31)
	trunk := NewSequential(
		NewDense("fc", 3, 16, InitXavier, rng),
		NewTanh(),
	)
	headA := &Head{Name: "cls", Layer: NewDense("ha", 16, 4, InitXavier, rng), Loss: NewSoftmaxCE(), Weight: 1}
	headB := &Head{Name: "reg", Layer: NewDense("hb", 16, 2, InitXavier, rng), Loss: NewMSE(), Weight: 0.5}
	m := NewMultiHead(trunk, headA, headB)

	x := mat.New(32, 3)
	mat.FillNormal(x, rng, 0, 1)
	cls := make([]int, 32)
	reg := mat.New(32, 2)
	for i := 0; i < 32; i++ {
		cls[i] = i % 4
		reg.Set(i, 0, float64(cls[i]))
		reg.Set(i, 1, -float64(cls[i]))
	}
	targets := []*mat.Dense{OneHotBatch(cls, 4), reg}

	opt := NewAdam(0.01)
	params := m.Params()
	first := m.Step(x, targets)
	opt.Step(params)
	ZeroGrads(params)
	var last float64
	for i := 0; i < 200; i++ {
		last = m.Step(x, targets)
		opt.Step(params)
		ZeroGrads(params)
	}
	if last >= first/2 {
		t.Fatalf("multi-head loss %v → %v: insufficient progress", first, last)
	}
}

func TestMultiHeadNilTargetSkipsHead(t *testing.T) {
	rng := mat.NewRand(32)
	trunk := NewSequential(NewDense("fc", 2, 4, InitXavier, rng), NewTanh())
	headA := &Head{Name: "a", Layer: NewDense("ha", 4, 2, InitXavier, rng), Loss: NewSoftmaxCE(), Weight: 1}
	headB := &Head{Name: "b", Layer: NewDense("hb", 4, 1, InitXavier, rng), Loss: NewMSE(), Weight: 1}
	m := NewMultiHead(trunk, headA, headB)
	x := mat.New(4, 2)
	mat.FillNormal(x, rng, 0, 1)
	loss := m.Step(x, []*mat.Dense{OneHotBatch([]int{0, 1, 0, 1}, 2), nil})
	if math.IsNaN(loss) {
		t.Fatal("loss NaN")
	}
	for _, p := range headB.Layer.Params() {
		if p.G.Norm() != 0 {
			t.Fatal("skipped head must receive no gradient")
		}
	}
	for _, p := range headA.Layer.Params() {
		if p.G.Norm() == 0 {
			t.Fatal("active head must receive gradient")
		}
	}
}

func TestMultiHeadForwardShapes(t *testing.T) {
	rng := mat.NewRand(33)
	trunk := NewSequential(NewDense("fc", 5, 7, InitXavier, rng))
	h := &Head{Name: "h", Layer: NewDense("h", 7, 3, InitXavier, rng), Loss: NewSoftmaxCE(), Weight: 1}
	m := NewMultiHead(trunk, h)
	emb, outs := m.Forward(mat.New(2, 5), false)
	if emb.Cols != 7 || len(outs) != 1 || outs[0].Cols != 3 {
		t.Fatalf("shapes: emb %d, outs %d", emb.Cols, outs[0].Cols)
	}
	if m.FLOPs() <= 0 {
		t.Fatal("FLOPs must be positive")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := mat.NewRand(34)
	net := NewSequential(
		NewDense("fc1", 3, 5, InitXavier, rng),
		NewBatchNorm("bn", 5),
		NewTanh(),
		NewDense("fc2", 5, 2, InitXavier, rng),
	)
	var buf bytes.Buffer
	if err := SaveParams(&buf, net.Params()); err != nil {
		t.Fatal(err)
	}
	rng2 := mat.NewRand(99)
	net2 := NewSequential(
		NewDense("fc1", 3, 5, InitXavier, rng2),
		NewBatchNorm("bn", 5),
		NewTanh(),
		NewDense("fc2", 5, 2, InitXavier, rng2),
	)
	if err := LoadParams(&buf, net2.Params()); err != nil {
		t.Fatal(err)
	}
	for i, p := range net.Params() {
		if !mat.Equal(p.W, net2.Params()[i].W, 0) {
			t.Fatalf("param %s not restored", p.Name)
		}
	}
}

func TestLoadParamsMismatchErrors(t *testing.T) {
	rng := mat.NewRand(35)
	a := NewDense("a", 2, 2, InitXavier, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, a.Params()); err != nil {
		t.Fatal(err)
	}
	wrongName := NewDense("b", 2, 2, InitXavier, rng)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), wrongName.Params()); err == nil {
		t.Fatal("name mismatch must error")
	}
	wrongShape := NewDense("a", 2, 3, InitXavier, rng)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), wrongShape.Params()); err == nil {
		t.Fatal("shape mismatch must error")
	}
	if err := LoadParams(bytes.NewReader(buf.Bytes()), nil); err == nil {
		t.Fatal("count mismatch must error")
	}
}

func TestLoadParamsGarbageErrors(t *testing.T) {
	if err := LoadParams(bytes.NewReader([]byte("not gob")), nil); err == nil {
		t.Fatal("garbage input must error")
	}
}

func TestBatchNormStatParamsAliasLiveState(t *testing.T) {
	bn := NewBatchNorm("bn", 2)
	stats := bn.StatParams()
	if len(stats) != 2 {
		t.Fatalf("stat params %d", len(stats))
	}
	// Writing through the pseudo-param must update the layer...
	stats[0].W.Data[0] = 42
	if bn.RunningMean[0] != 42 {
		t.Fatal("stat params must alias RunningMean")
	}
	// ...and training must be visible through a previously obtained view.
	rng := mat.NewRand(60)
	x := mat.New(16, 2)
	mat.FillNormal(x, rng, 5, 1)
	bn.Forward(x, true)
	if stats[0].W.Data[0] == 42 {
		t.Fatal("training must update the aliased running mean")
	}
}

func TestStatParamsRoundTripThroughSaveLoad(t *testing.T) {
	rng := mat.NewRand(61)
	net := NewSequential(
		NewDense("fc", 3, 4, InitXavier, rng),
		NewBatchNorm("bn", 4),
	)
	// Train a little so running stats move off their defaults.
	x := mat.New(32, 3)
	mat.FillNormal(x, rng, 2, 1)
	net.Forward(x, true)

	var buf bytes.Buffer
	all := append(net.Params(), net.StatParams()...)
	if err := SaveParams(&buf, all); err != nil {
		t.Fatal(err)
	}
	rng2 := mat.NewRand(99)
	net2 := NewSequential(
		NewDense("fc", 3, 4, InitXavier, rng2),
		NewBatchNorm("bn", 4),
	)
	all2 := append(net2.Params(), net2.StatParams()...)
	if err := LoadParams(&buf, all2); err != nil {
		t.Fatal(err)
	}
	// Inference outputs must now agree exactly.
	q := mat.New(5, 3)
	mat.FillNormal(q, mat.NewRand(62), 0, 1)
	if !mat.Equal(net.Forward(q, false), net2.Forward(q, false), 0) {
		t.Fatal("restored network diverges at inference")
	}
}

func TestMultiHeadStatParams(t *testing.T) {
	rng := mat.NewRand(63)
	trunk := NewSequential(
		NewDense("fc", 2, 4, InitXavier, rng),
		NewBatchNorm("bn", 4),
	)
	h := &Head{Name: "h", Layer: NewDense("h", 4, 2, InitXavier, rng), Loss: NewSoftmaxCE(), Weight: 1}
	m := NewMultiHead(trunk, h)
	// One BN layer → two stat params (mean, var); plain Dense heads add none.
	if got := len(m.StatParams()); got != 2 {
		t.Fatalf("multi-head stat params %d want 2", got)
	}
}

func TestSequentialStatParamsSkipsStatlessLayers(t *testing.T) {
	rng := mat.NewRand(64)
	s := NewSequential(
		NewDense("a", 2, 3, InitXavier, rng),
		NewTanh(),
		NewBatchNorm("bn1", 3),
		NewBatchNorm("bn2", 3),
	)
	if got := len(s.StatParams()); got != 4 {
		t.Fatalf("stat params %d want 4 (2 per batch norm)", got)
	}
}
