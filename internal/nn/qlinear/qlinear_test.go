package qlinear

import (
	"math"
	"math/rand"
	"testing"

	"noble/internal/mat"
	"noble/internal/nn"
)

func randDense(rng *rand.Rand, rows, cols int, scale float64) *mat.Dense {
	m := mat.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * scale
	}
	return m
}

func newTestModel(rng *rand.Rand, in int) *nn.MultiHead {
	trunk := nn.NewMLP("t", in, []int{32, 32}, true, rng)
	heads := []*nn.Head{
		{Name: "big", Layer: nn.NewDense("t.big", 32, 40, nn.InitXavier, rng), Weight: 1},
		{Name: "tiny", Layer: nn.NewDense("t.tiny", 32, 3, nn.InitXavier, rng), Weight: 1},
	}
	return nn.NewMultiHead(trunk, heads...)
}

// TestQDenseMatchesIntegerReference recomputes a QDense forward with
// explicit scalar integer arithmetic — the layer must match it
// bit-for-bit, since both sides do exact int32 accumulation followed by
// the identical dequantization expression.
func TestQDenseMatchesIntegerReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := nn.NewDense("d", 50, 20, nn.InitXavier, rng)
	for i := range d.Bias.W.Data {
		d.Bias.W.Data[i] = rng.NormFloat64()
	}
	const actScale = float32(0.02)
	q := NewQDense(d, actScale)
	x := randDense(rng, 7, 50, 1)
	got := q.Forward(x)
	for r := 0; r < x.Rows; r++ {
		arow := make([]int8, q.W.Kp)
		mat.QuantizeRowInto(arow, x.Row(r), actScale)
		for j := 0; j < q.Out; j++ {
			var acc int32
			for k := 0; k < q.In; k++ {
				acc += int32(arow[k]) * int32(q.W.At(k, j))
			}
			want := float64(acc)*float64(actScale)*float64(q.W.Scale[j]) + d.Bias.W.Data[j]
			if got.At(r, j) != want {
				t.Fatalf("out(%d,%d) = %v, want %v", r, j, got.At(r, j), want)
			}
		}
	}
}

// TestCalibrateThenReplayIdentical is the lifecycle contract: scales
// measured by a Calibrator at train time and replayed through Scales at
// load time must build a byte-for-byte identical network.
func TestCalibrateThenReplayIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := newTestModel(rng, 24)
	calib := randDense(rng, 64, 24, 2)

	cal := &Calibrator{Method: CalibAbsMax}
	qm1, err := FromMultiHead(m, cal, calib)
	if err != nil {
		t.Fatal(err)
	}
	// Trunk has two eligible Dense layers, plus the one eligible head.
	if len(cal.Scales) != 3 {
		t.Fatalf("calibrator emitted %d scales, want 3", len(cal.Scales))
	}

	replay := &Scales{Values: cal.Scales}
	qm2, err := FromMultiHead(m, replay, nil)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Remaining() != 0 {
		t.Fatalf("replay left %d scales unconsumed", replay.Remaining())
	}

	x := randDense(rng, 9, 24, 2)
	emb1, outs1 := qm1.Forward(x)
	emb2, outs2 := qm2.Forward(x)
	for i := range emb1.Data {
		if emb1.Data[i] != emb2.Data[i] {
			t.Fatalf("embedding diverges at %d: %v vs %v", i, emb1.Data[i], emb2.Data[i])
		}
	}
	for h := range outs1 {
		for i := range outs1[h].Data {
			if outs1[h].Data[i] != outs2[h].Data[i] {
				t.Fatalf("head %d diverges at %d", h, i)
			}
		}
	}
}

// TestQuantizedCloseToFP64 bounds the quantization error on a
// well-conditioned model: int8 outputs track the fp64 outputs closely.
func TestQuantizedCloseToFP64(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := newTestModel(rng, 24)
	calib := randDense(rng, 128, 24, 1)
	qm, err := FromMultiHead(m, &Calibrator{Method: CalibAbsMax}, calib)
	if err != nil {
		t.Fatal(err)
	}
	x := randDense(rng, 16, 24, 1)
	fpEmb, fpOuts := m.Forward(x, false)
	qEmb, qOuts := qm.Forward(x)
	maxDiff := func(a, b *mat.Dense) float64 {
		var d float64
		for i := range a.Data {
			if v := math.Abs(a.Data[i] - b.Data[i]); v > d {
				d = v
			}
		}
		return d
	}
	if d := maxDiff(fpEmb, qEmb); d > 0.15 {
		t.Fatalf("embedding drifted %v from fp64", d)
	}
	for h := range fpOuts {
		if d := maxDiff(fpOuts[h], qOuts[h]); d > 0.35 {
			t.Fatalf("head %d drifted %v from fp64", h, d)
		}
	}
}

// TestSmallLayersStayFP64: heads below MinQuantDim must pass through
// the exact fp64 layer.
func TestSmallLayersStayFP64(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := newTestModel(rng, 24)
	qm, err := FromMultiHead(m, &Calibrator{}, randDense(rng, 32, 24, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := qm.Heads[0].(*QDense); !ok {
		t.Fatalf("eligible head not quantized: %T", qm.Heads[0])
	}
	if _, ok := qm.Heads[1].(Wrap); !ok {
		t.Fatalf("tiny head should stay fp64, got %T", qm.Heads[1])
	}
	// The wrapped head on the same embedding must agree with fp64 exactly.
	x := randDense(rng, 5, 24, 1)
	qEmb, qOuts := qm.Forward(x)
	want := m.Heads[1].Layer.Forward(qEmb, false)
	for i := range want.Data {
		if qOuts[1].Data[i] != want.Data[i] {
			t.Fatalf("wrapped head diverges at %d", i)
		}
	}
}

// TestPercentileCalibration: a percentile bound must ignore a gross
// outlier that absmax would let dominate the scale.
func TestPercentileCalibration(t *testing.T) {
	x := mat.New(100, 10)
	for i := range x.Data {
		x.Data[i] = 1
	}
	x.Data[0] = 1e6

	abs := &Calibrator{Method: CalibAbsMax}
	sAbs, err := abs.next(x)
	if err != nil {
		t.Fatal(err)
	}
	pct := &Calibrator{Method: CalibPercentile, Percentile: 99.5}
	sPct, err := pct.next(x)
	if err != nil {
		t.Fatal(err)
	}
	if sAbs < 1e6/127*0.99 {
		t.Fatalf("absmax scale %v should reflect the outlier", sAbs)
	}
	if math.Abs(float64(sPct)-1.0/127) > 1e-6 {
		t.Fatalf("percentile scale %v, want ~%v", sPct, 1.0/127)
	}
}

// TestScalesValidation: replay must reject exhaustion and invalid
// values — this is what refuses a truncated or corrupted
// calibration.json at load time.
func TestScalesValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := newTestModel(rng, 24)
	if _, err := FromMultiHead(m, &Scales{Values: []float32{0.1}}, nil); err == nil {
		t.Fatal("expected error for too-few scales")
	}
	bad := float32(math.NaN())
	if _, err := FromMultiHead(m, &Scales{Values: []float32{0.1, bad, 0.1}}, nil); err == nil {
		t.Fatal("expected error for NaN scale")
	}
	if _, err := FromMultiHead(m, &Calibrator{Method: "bogus"}, mat.New(4, 24)); err == nil {
		t.Fatal("expected error for unknown calibration method")
	}
	if _, err := FromMultiHead(m, &Calibrator{}, nil); err == nil {
		t.Fatal("expected error for calibrator without data")
	}
}
