// Package qlinear is the int8 inference mirror of package nn: a
// quantized serving tier built from a trained fp64 network, never
// trained itself. Eligible fully connected layers (both matrix
// dimensions ≥ MinQuantDim) are re-expressed as symmetric per-channel
// int8 weights (mat.QMat) plus one static activation scale per layer,
// and everything else — batch norm, activations, small projections —
// runs through the original fp64 layer unchanged via Wrap.
//
// Activation scales are static: they come from a one-time calibration
// pass over held-out data (Calibrator), not from the batch being
// served. That choice buys the batch-size determinism contract for
// free — a row's quantized output can never depend on its batchmates —
// and makes the scales a small, auditable artifact (the bundle's
// calibration.json) instead of runtime state.
//
// Layers here implement the single-parameter Forward(x) signature.
// That is deliberate: there is no train mode, so there is nothing the
// signature could cache, and the repository's readonlyinfer vet rule
// treats one-parameter Forward methods as inference-only and flags any
// receiver write inside them.
package qlinear

import (
	"fmt"
	"math"
	"sort"

	"noble/internal/mat"
	"noble/internal/nn"
)

// MinQuantDim is the eligibility floor for quantizing a Dense layer:
// both In and Out must reach it. Below this a layer's GEMM is too small
// for int8 to pay for the quantize/dequantize round trip, and tiny
// output heads (building/floor probes) keep full precision for
// accuracy at negligible cost.
const MinQuantDim = 16

// Layer is a quantized-inference transformation. Forward takes only
// the batch — no train flag — because this tier cannot train; the
// readonlyinfer vet rule enforces that implementations write no
// receiver state, which is what makes concurrent serving on a shared
// model race-free.
type Layer interface {
	Forward(x *mat.Dense) *mat.Dense
}

// Wrap adapts an fp64 nn.Layer into the inference-only interface by
// pinning train=false. Non-quantized layers (batch norm, activations,
// below-threshold Dense) pass through it unchanged.
type Wrap struct {
	L nn.Layer
}

// Forward runs the wrapped layer's inference pass.
func (w Wrap) Forward(x *mat.Dense) *mat.Dense { return w.L.Forward(x, false) }

// QDense is the int8 image of a trained nn.Dense: per-channel int8
// weight codes, the fp64 bias carried over verbatim, and one static
// activation scale. Forward quantizes each input row against ActScale,
// runs the integer GEMM, and dequantizes with per-channel combined
// scales, so the arithmetic inside the matrix product is pure int8×int8
// with exact int32 accumulation.
type QDense struct {
	In, Out  int
	W        *mat.QMat
	Bias     []float64
	ActScale float32

	// deq[j] = float64(ActScale) · float64(W.Scale[j]), precomputed so
	// dequantization is one multiply per output element.
	deq []float64
}

// NewQDense quantizes a trained Dense layer against the given static
// activation scale.
func NewQDense(d *nn.Dense, actScale float32) *QDense {
	return newQDense(d.Weight.W, d.Bias.W.Data, actScale)
}

func newQDense(w *mat.Dense, bias []float64, actScale float32) *QDense {
	q := &QDense{
		In:       w.Rows,
		Out:      w.Cols,
		W:        mat.QuantizeWeights(w),
		Bias:     append([]float64(nil), bias...),
		ActScale: actScale,
	}
	q.deq = make([]float64, q.Out)
	for j := range q.deq {
		q.deq[j] = float64(actScale) * float64(q.W.Scale[j])
	}
	return q
}

// foldBatchNorm composes a trained Dense with the inference-time affine
// of the BatchNorm that follows it: y = γ·(x·W + b − μ)/√(σ²+ε) + β is
// itself a dense layer with W′ = W·diag(g) and b′ = (b−μ)·g + β, where
// g = γ/√(σ²+ε). The quantized tier always folds this pattern — it
// removes the separate normalization pass from the serving path, and
// per-channel weight scales absorb g exactly, so folding costs no
// quantization headroom.
func foldBatchNorm(d *nn.Dense, bn *nn.BatchNorm) (*mat.Dense, []float64) {
	w := mat.New(d.In, d.Out)
	bias := make([]float64, d.Out)
	for j := 0; j < d.Out; j++ {
		g := bn.Gamma.W.Data[j] / math.Sqrt(bn.RunningVar[j]+bn.Eps)
		for i := 0; i < d.In; i++ {
			w.Set(i, j, d.Weight.W.At(i, j)*g)
		}
		bias[j] = (d.Bias.W.Data[j]-bn.RunningMean[j])*g + bn.Beta.W.Data[j]
	}
	return w, bias
}

// Tanh is the quantized tier's activation: a degree-13 Lambert
// continued-fraction rational, clamped to ±1 beyond |x| = 5. Its
// absolute error is below 1.5e-5 for |x| ≤ 4 and below ~1e-4
// everywhere — one to two orders of magnitude finer than the 1/127
// quantization step the very next layer rounds to — and it avoids the
// exp-based math.Tanh, which profiles as one of the largest non-GEMM
// costs on the serving path. The fp64 tier keeps exact math.Tanh; this
// approximation exists only behind the accuracy gate.
type Tanh struct{}

// Forward applies the rational tanh elementwise.
func (Tanh) Forward(x *mat.Dense) *mat.Dense {
	out := mat.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		out.Data[i] = ratTanh(v)
	}
	return out
}

func ratTanh(x float64) float64 {
	switch {
	case x > 5:
		return 1
	case x < -5:
		return -1
	case x != x:
		return x
	}
	x2 := x * x
	p := x * (135135 + x2*(17325+x2*(378+x2)))
	q := 135135 + x2*(62370+x2*(3150+x2*28))
	return p / q
}

// Forward computes x·W + b through the int8 path. Each input row is
// quantized independently against the static scale, so the result for a
// row is identical whatever batch it arrives in.
func (q *QDense) Forward(x *mat.Dense) *mat.Dense {
	if x.Cols != q.In {
		panic(fmt.Sprintf("qlinear: QDense %d→%d got input with %d cols", q.In, q.Out, x.Cols))
	}
	rows := x.Rows
	a := make([]int8, rows*q.W.Kp)
	for r := 0; r < rows; r++ {
		mat.QuantizeRowInto(a[r*q.W.Kp:(r+1)*q.W.Kp], x.Row(r), q.ActScale)
	}
	acc := make([]int32, rows*q.Out)
	q.W.MulInto(acc, a, rows)
	out := mat.New(rows, q.Out)
	for r := 0; r < rows; r++ {
		dst := out.Row(r)
		src := acc[r*q.Out : (r+1)*q.Out]
		for j, v := range src {
			dst[j] = float64(v)*q.deq[j] + q.Bias[j]
		}
	}
	return out
}

// QBlockDense mirrors nn.BlockDense: the shared quantized transform is
// applied to each of Blocks consecutive column groups via the same
// reshape trick as the fp64 layer.
type QBlockDense struct {
	Blocks int
	Inner  *QDense
}

// Forward reshapes (batch, Blocks·In) to (batch·Blocks, In), applies
// the shared quantized layer, and reshapes back.
func (b *QBlockDense) Forward(x *mat.Dense) *mat.Dense {
	if x.Cols != b.Blocks*b.Inner.In {
		panic(fmt.Sprintf("qlinear: QBlockDense expected %d cols, got %d", b.Blocks*b.Inner.In, x.Cols))
	}
	flat := x.Reshape(x.Rows*b.Blocks, b.Inner.In)
	out := b.Inner.Forward(flat)
	return out.Reshape(x.Rows, b.Blocks*b.Inner.Out)
}

// Seq chains quantized-inference layers.
type Seq struct {
	Layers []Layer
}

// Forward runs the layers in order.
func (s *Seq) Forward(x *mat.Dense) *mat.Dense {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// MultiHead mirrors nn.MultiHead for inference: a quantized trunk whose
// final activation is the embedding, feeding one output layer per head.
type MultiHead struct {
	Trunk *Seq
	Heads []Layer
}

// Forward returns the trunk embedding and every head's raw output, in
// head order.
func (m *MultiHead) Forward(x *mat.Dense) (emb *mat.Dense, outs []*mat.Dense) {
	emb = m.Trunk.Forward(x)
	outs = make([]*mat.Dense, len(m.Heads))
	for i, h := range m.Heads {
		outs[i] = h.Forward(emb)
	}
	return emb, outs
}

// ScaleSource supplies one activation scale per quantized layer, in the
// canonical build order (trunk layers first, then heads). The two
// implementations are the two halves of the bundle lifecycle: a
// Calibrator measures scales from held-out data at train time, and
// Scales replays the stored values at load time. Because both are
// consumed through the same builder walk, the orders agree by
// construction.
type ScaleSource interface {
	// next returns the scale for the upcoming quantized layer. x holds
	// the fp64 activations entering that layer when the caller is
	// propagating calibration data, or nil when scales are replayed
	// without data.
	next(x *mat.Dense) (float32, error)
}

// Calibrator derives static activation scales from a calibration
// matrix as it flows through the fp64 network. Method is "absmax"
// (scale = max|x|/127) or "percentile" (scale = p-th percentile of
// |x| divided by 127, clipping outliers that would otherwise waste the
// int8 range).
type Calibrator struct {
	Method     string
	Percentile float64

	// Scales accumulates the emitted scales in canonical order; this is
	// exactly what the bundle's calibration.json persists.
	Scales []float32
}

// CalibAbsMax and CalibPercentile name the supported calibration
// methods.
const (
	CalibAbsMax     = "absmax"
	CalibPercentile = "percentile"
)

func (c *Calibrator) next(x *mat.Dense) (float32, error) {
	if x == nil {
		return 0, fmt.Errorf("qlinear: calibrator needs activation data")
	}
	var bound float64
	switch c.Method {
	case CalibAbsMax, "":
		for _, v := range x.Data {
			if a := math.Abs(v); a > bound {
				bound = a
			}
		}
	case CalibPercentile:
		p := c.Percentile
		if p <= 0 || p > 100 {
			return 0, fmt.Errorf("qlinear: percentile %v outside (0, 100]", p)
		}
		abs := make([]float64, len(x.Data))
		for i, v := range x.Data {
			abs[i] = math.Abs(v)
		}
		sort.Float64s(abs)
		idx := int(math.Ceil(p/100*float64(len(abs)))) - 1
		if idx < 0 {
			idx = 0
		}
		bound = abs[idx]
	default:
		return 0, fmt.Errorf("qlinear: unknown calibration method %q", c.Method)
	}
	s := float32(bound / 127)
	c.Scales = append(c.Scales, s)
	return s, nil
}

// Scales replays stored activation scales in canonical order — the
// load-time half of the calibration lifecycle.
type Scales struct {
	Values []float32
	i      int
}

func (s *Scales) next(*mat.Dense) (float32, error) {
	if s.i >= len(s.Values) {
		return 0, fmt.Errorf("qlinear: calibration has %d activation scales but the model needs more", len(s.Values))
	}
	v := s.Values[s.i]
	s.i++
	if v < 0 || math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
		return 0, fmt.Errorf("qlinear: activation scale %d is invalid (%v)", s.i-1, v)
	}
	return v, nil
}

// Remaining reports how many stored scales were not consumed; a loader
// treats a nonzero remainder as a corrupt calibration.
func (s *Scales) Remaining() int { return len(s.Values) - s.i }

// quantizable reports whether a Dense layer is worth quantizing.
func quantizable(d *nn.Dense) bool { return d.In >= MinQuantDim && d.Out >= MinQuantDim }

// FromSequential builds the quantized mirror of a trained fp64
// Sequential. Eligible Dense (and BlockDense) layers become their int8
// counterparts with scales drawn from src — a Dense immediately
// followed by a BatchNorm is folded into a single quantized layer, and
// tanh activations switch to the tier's rational approximation;
// everything else is wrapped. When calib is non-nil it is propagated
// through the fp64 layers so a Calibrator can observe each quantized
// layer's input distribution, and the final activations are returned
// (nil otherwise). Calibration always propagates through the exact
// fp64 layers, so recorded scales are independent of the folding and
// approximation choices above.
func FromSequential(s *nn.Sequential, src ScaleSource, calib *mat.Dense) (*Seq, *mat.Dense, error) {
	out := &Seq{Layers: make([]Layer, 0, len(s.Layers))}
	for i := 0; i < len(s.Layers); i++ {
		l := s.Layers[i]
		folded := 1 // fp64 layers this step consumes
		switch t := l.(type) {
		case *nn.Dense:
			if quantizable(t) {
				scale, err := src.next(calib)
				if err != nil {
					return nil, nil, err
				}
				if i+1 < len(s.Layers) {
					if bn, ok := s.Layers[i+1].(*nn.BatchNorm); ok {
						w, bias := foldBatchNorm(t, bn)
						out.Layers = append(out.Layers, newQDense(w, bias, scale))
						folded = 2
						break
					}
				}
				out.Layers = append(out.Layers, NewQDense(t, scale))
			} else {
				out.Layers = append(out.Layers, Wrap{t})
			}
		case *nn.BlockDense:
			if quantizable(t.Inner) {
				// The reshape that feeds the shared inner layer only
				// regroups values, so the block input's distribution is
				// the inner layer's input distribution.
				scale, err := src.next(calib)
				if err != nil {
					return nil, nil, err
				}
				out.Layers = append(out.Layers, &QBlockDense{Blocks: t.Blocks, Inner: NewQDense(t.Inner, scale)})
			} else {
				out.Layers = append(out.Layers, Wrap{t})
			}
		case *nn.Tanh:
			out.Layers = append(out.Layers, Tanh{})
		default:
			out.Layers = append(out.Layers, Wrap{l})
		}
		for n := 0; n < folded; n++ {
			if calib != nil {
				calib = s.Layers[i+n].Forward(calib, false)
			}
		}
		i += folded - 1
	}
	return out, calib, nil
}

// FromMultiHead builds the quantized mirror of a trained multi-head
// model: the trunk via FromSequential, then each head (in declaration
// order) against the trunk's output embedding. The canonical scale
// order is therefore trunk-quantized-layers then head-quantized-layers.
func FromMultiHead(m *nn.MultiHead, src ScaleSource, calib *mat.Dense) (*MultiHead, error) {
	trunk, emb, err := FromSequential(m.Trunk, src, calib)
	if err != nil {
		return nil, err
	}
	out := &MultiHead{Trunk: trunk, Heads: make([]Layer, len(m.Heads))}
	for i, h := range m.Heads {
		if d, ok := h.Layer.(*nn.Dense); ok && quantizable(d) {
			scale, err := src.next(emb)
			if err != nil {
				return nil, err
			}
			out.Heads[i] = NewQDense(d, scale)
			continue
		}
		out.Heads[i] = Wrap{h.Layer}
	}
	return out, nil
}
