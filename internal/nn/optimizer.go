package nn

import "math"

// Optimizer updates parameter values from their accumulated gradients.
// Implementations keep any per-parameter state keyed by *Param identity, so
// one optimizer instance must be used with a stable parameter set.
type Optimizer interface {
	// Step applies one update using the gradients currently in params and
	// leaves the gradients untouched (callers zero them via ZeroGrads).
	Step(params []*Param)
}

// LRScheduler is implemented by optimizers whose learning rate can be
// rescaled between epochs (used by the trainer's decay schedule).
type LRScheduler interface {
	ScaleLR(factor float64)
}

// SGD is stochastic gradient descent with classical momentum and optional
// L2 weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*Param][]float64
}

// NewSGD returns an SGD optimizer with the given learning rate and
// momentum.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*Param][]float64)}
}

// Step applies v ← μv - lr·(g + wd·w); w ← w + v to every parameter.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		v, ok := o.velocity[p]
		if !ok {
			v = make([]float64, len(p.W.Data))
			o.velocity[p] = v
		}
		for i := range p.W.Data {
			g := p.G.Data[i] + o.WeightDecay*p.W.Data[i]
			v[i] = o.Momentum*v[i] - o.LR*g
			p.W.Data[i] += v[i]
		}
	}
}

// ScaleLR multiplies the learning rate by factor.
func (o *SGD) ScaleLR(factor float64) { o.LR *= factor }

// Adam implements the Adam optimizer (Kingma & Ba) with bias correction and
// optional decoupled weight decay.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	t int
	m map[*Param][]float64
	v map[*Param][]float64
}

// NewAdam returns an Adam optimizer with standard betas (0.9, 0.999).
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param][]float64),
		v: make(map[*Param][]float64),
	}
}

// Step applies one Adam update to every parameter.
func (o *Adam) Step(params []*Param) {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = make([]float64, len(p.W.Data))
			o.m[p] = m
			o.v[p] = make([]float64, len(p.W.Data))
		}
		v := o.v[p]
		for i := range p.W.Data {
			g := p.G.Data[i]
			if o.WeightDecay != 0 {
				g += o.WeightDecay * p.W.Data[i]
			}
			m[i] = o.Beta1*m[i] + (1-o.Beta1)*g
			v[i] = o.Beta2*v[i] + (1-o.Beta2)*g*g
			mhat := m[i] / bc1
			vhat := v[i] / bc2
			p.W.Data[i] -= o.LR * mhat / (math.Sqrt(vhat) + o.Eps)
		}
	}
}

// ScaleLR multiplies the learning rate by factor.
func (o *Adam) ScaleLR(factor float64) { o.LR *= factor }

// ClipGrads rescales all gradients so their global L2 norm does not exceed
// maxNorm; a no-op when already within bounds or maxNorm <= 0.
func ClipGrads(params []*Param, maxNorm float64) {
	if maxNorm <= 0 {
		return
	}
	var total float64
	for _, p := range params {
		for _, g := range p.G.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm <= maxNorm {
		return
	}
	scale := maxNorm / norm
	for _, p := range params {
		p.G.Scale(scale)
	}
}
