package nn

import (
	"math"

	"noble/internal/mat"
)

// TrainConfig controls the deterministic minibatch loop in Train.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	Seed      int64
	Optimizer Optimizer
	// LRDecay, when in (0,1), multiplies the optimizer learning rate by
	// this factor after every epoch (requires the optimizer to implement
	// LRScheduler).
	LRDecay float64
	// ClipNorm, when > 0, clips the global gradient norm before each
	// optimizer step.
	ClipNorm float64
	// Logf, when non-nil, receives one progress line per epoch.
	Logf func(format string, args ...any)
}

// EpochStats summarizes one epoch for the OnEpoch callback.
type EpochStats struct {
	Epoch    int
	MeanLoss float64
}

// Train runs a shuffled minibatch loop over n samples. For every batch it
// calls step with the selected sample indices; step must run the model
// forward/backward (accumulating gradients into params) and return the
// batch loss. Train then clips, applies the optimizer, and zeroes the
// gradients. After each epoch onEpoch (if non-nil) may return true to stop
// early. Train returns the final epoch's mean loss.
func Train(cfg TrainConfig, n int, params []*Param, step func(batch []int) float64, onEpoch func(EpochStats) bool) float64 {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	rng := mat.NewRand(cfg.Seed)
	lastMean := math.NaN()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		order := rng.Perm(n)
		var lossSum float64
		batches := 0
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			batch := order[start:end]
			lossSum += step(batch)
			batches++
			if cfg.ClipNorm > 0 {
				ClipGrads(params, cfg.ClipNorm)
			}
			cfg.Optimizer.Step(params)
			ZeroGrads(params)
		}
		lastMean = lossSum / float64(batches)
		if cfg.Logf != nil {
			cfg.Logf("epoch %3d/%d  loss %.5f", epoch+1, cfg.Epochs, lastMean)
		}
		if onEpoch != nil && onEpoch(EpochStats{Epoch: epoch, MeanLoss: lastMean}) {
			break
		}
		if cfg.LRDecay > 0 && cfg.LRDecay < 1 {
			if sched, ok := cfg.Optimizer.(LRScheduler); ok {
				sched.ScaleLR(cfg.LRDecay)
			}
		}
	}
	return lastMean
}
