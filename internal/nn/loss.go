package nn

import (
	"fmt"
	"math"

	"noble/internal/mat"
)

// Loss scores a batch of predictions against targets and produces the
// gradient of the mean loss with respect to the predictions.
type Loss interface {
	// Forward returns the mean loss over the batch.
	Forward(pred, target *mat.Dense) float64
	// Backward returns dLoss/dPred for the most recent Forward.
	Backward() *mat.Dense
}

// MSE is the mean squared error loss, L = 1/(2n) Σᵢ ‖predᵢ-targetᵢ‖². This
// is the objective of the paper's Deep Regression baseline and of NObLe's
// IMU displacement module.
type MSE struct {
	diff *mat.Dense
	n    float64
}

// NewMSE returns a mean-squared-error loss.
func NewMSE() *MSE { return &MSE{} }

// Forward computes the mean squared error over the batch.
func (l *MSE) Forward(pred, target *mat.Dense) float64 {
	shapeCheck("MSE", pred, target)
	l.diff = mat.Sub(pred, target)
	l.n = float64(pred.Rows)
	var s float64
	for _, v := range l.diff.Data {
		s += v * v
	}
	return s / (2 * l.n)
}

// Backward returns (pred-target)/n.
func (l *MSE) Backward() *mat.Dense {
	if l.diff == nil {
		panic("nn: MSE.Backward before Forward")
	}
	g := l.diff.Clone()
	g.Scale(1 / l.n)
	return g
}

// SoftmaxCE is the softmax cross-entropy loss over mutually exclusive
// classes; target rows are probability distributions (typically one-hot).
// Used by NObLe's building / floor / neighborhood-class heads.
type SoftmaxCE struct {
	probs  *mat.Dense
	target *mat.Dense
	n      float64
}

// NewSoftmaxCE returns a softmax cross-entropy loss.
func NewSoftmaxCE() *SoftmaxCE { return &SoftmaxCE{} }

// Forward computes mean(-Σ target·log softmax(pred)).
func (l *SoftmaxCE) Forward(pred, target *mat.Dense) float64 {
	shapeCheck("SoftmaxCE", pred, target)
	l.probs = Softmax(pred)
	l.target = target
	l.n = float64(pred.Rows)
	var loss float64
	for i, t := range target.Data {
		if t != 0 {
			loss -= t * math.Log(l.probs.Data[i]+1e-12)
		}
	}
	return loss / l.n
}

// Backward returns (softmax(pred) - target)/n.
func (l *SoftmaxCE) Backward() *mat.Dense {
	if l.probs == nil {
		panic("nn: SoftmaxCE.Backward before Forward")
	}
	g := mat.Sub(l.probs, l.target)
	g.Scale(1 / l.n)
	return g
}

// BCEWithLogits is the element-wise binary cross-entropy over logits, the
// multi-label objective J(h, ĥ) of §III-C: every output unit is an
// independent Bernoulli, so a sample may carry several positive labels
// (fine class plus its adjacent cells, building, floor...).
type BCEWithLogits struct {
	probs  *mat.Dense
	target *mat.Dense
	n      float64
}

// NewBCEWithLogits returns a multi-label binary cross-entropy loss.
func NewBCEWithLogits() *BCEWithLogits { return &BCEWithLogits{} }

// Forward computes mean over samples of Σ_c -[t log σ(z) + (1-t) log(1-σ(z))]
// using the numerically stable log-sum-exp form.
func (l *BCEWithLogits) Forward(pred, target *mat.Dense) float64 {
	shapeCheck("BCEWithLogits", pred, target)
	l.target = target
	l.n = float64(pred.Rows)
	l.probs = pred.Map(sigmoid)
	var loss float64
	for i, z := range pred.Data {
		t := target.Data[i]
		// max(z,0) - z·t + log(1+exp(-|z|))
		loss += math.Max(z, 0) - z*t + math.Log1p(math.Exp(-math.Abs(z)))
	}
	return loss / l.n
}

// Backward returns (σ(pred) - target)/n.
func (l *BCEWithLogits) Backward() *mat.Dense {
	if l.probs == nil {
		panic("nn: BCEWithLogits.Backward before Forward")
	}
	g := mat.Sub(l.probs, l.target)
	g.Scale(1 / l.n)
	return g
}

// Softmax returns row-wise softmax probabilities with the usual max-shift
// for numerical stability.
func Softmax(logits *mat.Dense) *mat.Dense {
	out := mat.New(logits.Rows, logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		row, orow := logits.Row(i), out.Row(i)
		mx := row[0]
		for _, v := range row[1:] {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - mx)
			orow[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range orow {
			orow[j] *= inv
		}
	}
	return out
}

func shapeCheck(op string, a, b *mat.Dense) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("nn: %s shape mismatch %d×%d vs %d×%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
